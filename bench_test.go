package rankties

// The benchmark harness regenerates every reproduction table (experiments
// E1-E14; one benchmark per table) and measures the core engines. Run:
//
//	go test -bench=. -benchmem
//
// BenchmarkExperimentEx reports the wall-clock cost of regenerating the
// corresponding table in EXPERIMENTS.md; the table contents themselves are
// printed by cmd/experiments.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/randrank"
	"repro/internal/ranking"
	"repro/internal/topk"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, 2004); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExperimentE1(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkExperimentE2(b *testing.B)  { benchExperiment(b, "E2") }
func BenchmarkExperimentE3(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkExperimentE4(b *testing.B)  { benchExperiment(b, "E4") }
func BenchmarkExperimentE5(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkExperimentE6(b *testing.B)  { benchExperiment(b, "E6") }
func BenchmarkExperimentE7(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkExperimentE8(b *testing.B)  { benchExperiment(b, "E8") }
func BenchmarkExperimentE9(b *testing.B)  { benchExperiment(b, "E9") }
func BenchmarkExperimentE10(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkExperimentE11(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkExperimentE12(b *testing.B) { benchExperiment(b, "E12") }
func BenchmarkExperimentE13(b *testing.B) { benchExperiment(b, "E13") }
func BenchmarkExperimentE14(b *testing.B) { benchExperiment(b, "E14") }

// --- Core engine micro-benchmarks -----------------------------------------

func benchPair(n, maxBucket int) (*ranking.PartialRanking, *ranking.PartialRanking) {
	rng := rand.New(rand.NewSource(int64(n)))
	return randrank.Partial(rng, n, maxBucket), randrank.Partial(rng, n, maxBucket)
}

func BenchmarkKProf(b *testing.B) {
	for _, n := range []int{100, 1000, 10000, 100000} {
		a, c := benchPair(n, 6)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := metrics.KProf(a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFProf(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		a, c := benchPair(n, 6)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := metrics.FProf(a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKHaus(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		a, c := benchPair(n, 6)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := metrics.KHaus(a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFHaus(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		a, c := benchPair(n, 6)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := metrics.FHaus(a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Workspace kernel benchmarks ------------------------------------------
//
// Each pair compares the retained pre-workspace engine ("alloc") against the
// zero-allocation workspace kernel ("workspace") on the same inputs. Run
// with -benchmem; cmd/benchjson emits the same measurements as
// BENCH_PR1.json.

func BenchmarkCountPairsKernel(b *testing.B) {
	a, c := benchPair(1000, 6)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := metrics.CountPairsAlloc(a, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workspace", func(b *testing.B) {
		ws := metrics.NewWorkspace()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ws.CountPairs(a, c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFHausKernel(b *testing.B) {
	a, c := benchPair(1000, 6)
	b.Run("refinement", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := metrics.FHausViaRefinement(a, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workspace", func(b *testing.B) {
		ws := metrics.NewWorkspace()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ws.FHaus(a, c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchEnsemble(m, n int) []*ranking.PartialRanking {
	rng := rand.New(rand.NewSource(42))
	out := make([]*ranking.PartialRanking, m)
	for i := range out {
		out[i] = randrank.Partial(rng, n, 6)
	}
	return out
}

// BenchmarkDistanceMatrixKProf is the m=64, n=1000 ensemble sweep of the
// PR 1 acceptance criteria: the workspace path must at least halve total
// allocations versus the seed-style closure over the allocating engine.
func BenchmarkDistanceMatrixKProf(b *testing.B) {
	in := benchEnsemble(64, 1000)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := metrics.DistanceMatrix(in, func(x, y *ranking.PartialRanking) (float64, error) {
				pc, err := metrics.CountPairsAlloc(x, y)
				if err != nil {
					return 0, err
				}
				return metrics.KProfFromCounts(pc), nil
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workspace", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := metrics.DistanceMatrixWith(in, metrics.KProfWS); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSumDistanceKProf(b *testing.B) {
	in := benchEnsemble(64, 1000)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := aggregate.SumDistance(in[0], in, func(x, y *ranking.PartialRanking) (float64, error) {
				pc, err := metrics.CountPairsAlloc(x, y)
				if err != nil {
					return 0, err
				}
				return metrics.KProfFromCounts(pc), nil
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workspace", func(b *testing.B) {
		ws := metrics.NewWorkspace()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := aggregate.SumDistanceWith(ws, in[0], in, metrics.KProfWS); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompareAllEnsemble measures the batched four-metric sweep.
func BenchmarkCompareAllEnsemble(b *testing.B) {
	in := benchEnsemble(32, 500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.CompareAll(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDPOptimalPartial exhibits the O(n^2) shape of the Figure 1 DP.
func BenchmarkDPOptimalPartial(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		rng := rand.New(rand.NewSource(int64(n)))
		f := make([]float64, n)
		for i := range f {
			f[i] = float64(rng.Intn(2*n)) / 2
		}
		b.Run(fmt.Sprintf("figure1/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := aggregate.OptimalPartialFigure1(f); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("general/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := aggregate.OptimalPartial(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFootruleOptimal measures the Hungarian matching the paper calls
// computationally heavy (O(n^3)) — the price median aggregation avoids.
func BenchmarkFootruleOptimal(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		rng := rand.New(rand.NewSource(int64(n)))
		in, _ := randrank.MallowsEnsemble(rng, n, 5, 0.5)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := aggregate.FootruleOptimalFull(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMedianFull(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		rng := rand.New(rand.NewSource(int64(n)))
		in, _ := randrank.MallowsEnsemble(rng, n, 5, 0.5)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := aggregate.MedianFull(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMedRank measures the streaming top-k engine on correlated vs
// uniform inputs; the correlated case must be dramatically cheaper.
func BenchmarkMedRank(b *testing.B) {
	for _, tc := range []struct {
		name  string
		theta float64
	}{
		{"correlated", 2.0},
		{"uniform", 0.0},
	} {
		rng := rand.New(rand.NewSource(5))
		in, _ := randrank.MallowsEnsemble(rng, 5000, 5, tc.theta)
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := topk.MedRank(in, 10, topk.GlobalMerge); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
