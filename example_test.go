package rankties_test

import (
	"fmt"

	rankties "repro"
)

// Two critics rank three dishes; the second cannot separate the first two.
func ExampleKProf() {
	a := rankties.MustFromOrder([]int{0, 1, 2})
	b := rankties.MustFromBuckets(3, [][]int{{0, 1}, {2}})
	d, _ := rankties.KProf(a, b)
	fmt.Println(d)
	// Output: 0.5
}

func ExampleDistances() {
	a := rankties.MustFromOrder([]int{0, 1, 2, 3})
	c := rankties.MustFromBuckets(4, [][]int{{0, 1}, {2, 3}})
	d, _ := rankties.Distances(a, c)
	fmt.Printf("Kprof=%g Fprof=%g KHaus=%d FHaus=%d\n", d.KProf, d.FProf, d.KHaus, d.FHaus)
	// Output: Kprof=1 Fprof=2 KHaus=2 FHaus=4
}

func ExampleMedianFull() {
	judges := []*rankties.PartialRanking{
		rankties.MustFromOrder([]int{0, 1, 2}),
		rankties.MustFromOrder([]int{1, 0, 2}),
		rankties.MustFromOrder([]int{0, 2, 1}),
	}
	agg, _ := rankties.MedianFull(judges)
	fmt.Println(agg)
	// Output: 0 | 1 | 2
}

func ExampleOptimalPartialAggregate() {
	// Two of three judges tie the leaders, so the optimal partial ranking
	// keeps them tied.
	judges := []*rankties.PartialRanking{
		rankties.MustFromBuckets(3, [][]int{{0, 1}, {2}}),
		rankties.MustFromBuckets(3, [][]int{{0, 1}, {2}}),
		rankties.MustFromOrder([]int{1, 0, 2}),
	}
	agg, _ := rankties.OptimalPartialAggregate(judges)
	fmt.Println(agg)
	// Output: 0 1 | 2
}

func ExampleMedRank() {
	lists := []*rankties.PartialRanking{
		rankties.MustFromOrder([]int{3, 0, 1, 2}),
		rankties.MustFromOrder([]int{3, 1, 0, 2}),
		rankties.MustFromOrder([]int{0, 3, 2, 1}),
	}
	res, _ := rankties.MedRank(lists, 1, rankties.GlobalMerge)
	fmt.Printf("winner %d after %d probes (full scan would be %d)\n",
		res.Winners[0], res.Stats.Total, rankties.FullScanCost(lists).Total)
	// Output: winner 3 after 2 probes (full scan would be 12)
}

func ExampleParseText() {
	dom := rankties.NewDomain()
	pr, _ := rankties.ParseText(dom, "sushi thai | bbq | deli")
	fmt.Println(pr.NumBuckets(), dom.Render(pr))
	// Output: 3 sushi thai | bbq | deli
}

func ExampleKendallTauB() {
	a := rankties.MustFromOrder([]int{0, 1, 2, 3})
	b := rankties.MustFromBuckets(4, [][]int{{0, 1}, {2}, {3}})
	tb, _ := rankties.KendallTauB(a, b)
	fmt.Printf("%.3f\n", tb)
	// Output: 0.913
}
