// Package rankties is a complete Go implementation of
//
//	Ronald Fagin, Ravi Kumar, Mohammad Mahdian, D. Sivakumar, Erik Vee.
//	"Comparing and Aggregating Rankings with Ties." PODS 2004.
//
// It provides:
//
//   - Partial rankings (bucket orders): construction, refinement (the
//     paper's tau*sigma operator), reversal, top-k lists, text and JSON
//     codecs (PartialRanking, Domain).
//
//   - The paper's four metrics between partial rankings — Kprof, Fprof,
//     KHaus, FHaus — together with the penalty-parameter family K^(p)
//     (Proposition 13), the classical Kendall tau and Spearman footrule on
//     full rankings, the top-k measures Kavg and F^(l) of Appendix A.3, and
//     Goodman-Kruskal gamma. All four metrics are within constant factors
//     of each other (Theorem 7); all engines run in O(n log n).
//
//   - Rank aggregation (Section 6): median rank aggregation with its
//     approximation guarantees — MedianTopK (factor 3, Theorem 9),
//     MedianFull (factor 2 for full inputs, Theorem 11),
//     OptimalPartialAggregate (the Figure 1 dynamic program, Theorem 10) —
//     plus the exact footrule optimum via Hungarian matching and the
//     standard baselines (Borda, Markov chains MC1-MC4, local
//     Kemenization, best-of-inputs).
//
//   - A database-friendly streaming top-k engine (MedRank) that reads each
//     input ranking only as deeply as needed to certify the winners, with
//     full access accounting, and an in-memory catalog substrate (Table)
//     whose attribute sorts produce exactly the heavily-tied rankings the
//     paper's database scenario describes.
//
// Elements of a ranking are dense integers 0..n-1; use Domain to intern
// human-readable names. All positions are integral multiples of 1/2 and are
// computed exactly.
package rankties

import (
	"io"

	"repro/internal/ranking"
)

// PartialRanking is a bucket order over the domain {0..n-1}: a linear order
// with ties. See the ranking constructors below.
type PartialRanking = ranking.PartialRanking

// Domain interns human-readable element names onto integer IDs.
type Domain = ranking.Domain

// ErrDomainMismatch is returned when two rankings have different domains.
var ErrDomainMismatch = ranking.ErrDomainMismatch

// FromBuckets builds a partial ranking from an ordered bucket partition of
// {0..n-1}.
func FromBuckets(n int, buckets [][]int) (*PartialRanking, error) {
	return ranking.FromBuckets(n, buckets)
}

// MustFromBuckets is FromBuckets that panics on invalid input.
func MustFromBuckets(n int, buckets [][]int) *PartialRanking {
	return ranking.MustFromBuckets(n, buckets)
}

// FromOrder builds a full ranking from a best-first permutation.
func FromOrder(order []int) (*PartialRanking, error) { return ranking.FromOrder(order) }

// MustFromOrder is FromOrder that panics on invalid input.
func MustFromOrder(order []int) *PartialRanking { return ranking.MustFromOrder(order) }

// FromScores builds the partial ranking induced by a score vector: ascending
// scores, exact ties share a bucket.
func FromScores(scores []float64) *PartialRanking { return ranking.FromScores(scores) }

// TopKList builds a top-k list: the first k entries of order become
// singleton buckets and the rest of the domain shares the bottom bucket.
func TopKList(n, k int, order []int) (*PartialRanking, error) {
	return ranking.TopKList(n, k, order)
}

// ConsistentOfType returns a partial ranking of the given type (bucket-size
// sequence) consistent with the score vector f (Appendix A.6.1).
func ConsistentOfType(f []float64, alpha []int) (*PartialRanking, error) {
	return ranking.ConsistentOfType(f, alpha)
}

// ForEachPartialRanking enumerates all Fubini(n) bucket orders over
// {0..n-1}; see ranking.ForEachPartialRanking.
func ForEachPartialRanking(n int, fn func(pr *PartialRanking) bool) {
	ranking.ForEachPartialRanking(n, fn)
}

// NewDomain creates an empty name-interning domain.
func NewDomain() *Domain { return ranking.NewDomain() }

// DomainOf creates a domain with exactly the given names.
func DomainOf(names ...string) (*Domain, error) { return ranking.DomainOf(names...) }

// ParseText parses one ranking in the text codec ("a b | c | d") against a
// domain.
func ParseText(dom *Domain, line string) (*PartialRanking, error) {
	return ranking.ParseText(dom, line)
}

// ParseLines reads rankings (one per line, shared domain) from r.
func ParseLines(r io.Reader) ([]*PartialRanking, *Domain, error) { return ranking.ParseLines(r) }

// WriteLines writes rankings in the text codec.
func WriteLines(w io.Writer, dom *Domain, rankings []*PartialRanking) error {
	return ranking.WriteLines(w, dom, rankings)
}
