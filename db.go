package rankties

import (
	"io"

	"repro/internal/db"
)

// Table is the in-memory catalog substrate of the paper's database
// scenario: typed columns whose sorts produce heavily-tied partial
// rankings, queried via median rank aggregation.
type Table = db.Table

// Row is one record's values keyed by column name.
type Row = db.Row

// ColumnType enumerates table attribute types.
type ColumnType = db.ColumnType

// Column types.
const (
	StringCol = db.StringCol
	IntCol    = db.IntCol
	FloatCol  = db.FloatCol
)

// Direction orients a sort preference.
type Direction = db.Direction

// Sort directions.
const (
	Ascending  = db.Ascending
	Descending = db.Descending
)

// Preference is one user sort criterion, optionally coarsened (numeric) or
// value-ordered (categorical).
type Preference = db.Preference

// Query is a multi-criteria top-k preference query.
type Query = db.Query

// QueryResult carries a query's winners and its access accounting.
type QueryResult = db.QueryResult

// NewTable creates an empty catalog table.
func NewTable(name string) *Table { return db.NewTable(name) }

// Condition is a WHERE-style predicate for filtered queries.
type Condition = db.Condition

// CompareOp is a filter comparison operator.
type CompareOp = db.CompareOp

// Filter operators.
const (
	Eq = db.Eq
	Ne = db.Ne
	Lt = db.Lt
	Le = db.Le
	Gt = db.Gt
	Ge = db.Ge
)

// FilteredQuery is a top-k preference query restricted by conditions.
type FilteredQuery = db.FilteredQuery

// LoadCSV builds a catalog table from CSV data; the keyColumn supplies
// primary keys and types declares every other column.
func LoadCSV(name string, r io.Reader, keyColumn string, types map[string]ColumnType) (*Table, error) {
	return db.LoadCSV(name, r, keyColumn, types)
}
