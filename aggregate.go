package rankties

import (
	"repro/internal/aggregate"
)

// MedianChoice selects the even-m median policy; see aggregate.MedianChoice.
type MedianChoice = aggregate.MedianChoice

// Median policies for even ensemble sizes.
const (
	LowerMedian = aggregate.LowerMedian
	UpperMedian = aggregate.UpperMedian
	MeanMedian  = aggregate.MeanMedian
)

// MedianScores returns the coordinate-wise median position vector of the
// inputs. By Lemma 8 it minimizes the summed L1 distance to the inputs over
// all score vectors.
func MedianScores(rankings []*PartialRanking, choice MedianChoice) ([]float64, error) {
	return aggregate.MedianScores(rankings, choice)
}

// MedianTopK aggregates the inputs into a top-k list via median ranks
// (Theorem 9): within factor 3 of the optimal top-k list under the summed
// Fprof objective. For a streaming variant with sequential access and probe
// accounting, see MedRank.
func MedianTopK(rankings []*PartialRanking, k int) (*PartialRanking, error) {
	return aggregate.MedianTopK(rankings, k)
}

// MedianFull aggregates the inputs into a full ranking via median ranks
// (Theorem 11): with full-ranking inputs, within factor 2 of the best
// partial ranking under the summed Fprof objective — the open problem of
// Dwork et al. answered by the paper.
func MedianFull(rankings []*PartialRanking) (*PartialRanking, error) {
	return aggregate.MedianFull(rankings)
}

// OptimalPartialAggregate aggregates the inputs into the partial ranking
// L1-closest to their median position vector, via the Figure 1 dynamic
// program (Theorem 10): O(n^2) time and within factor 2 of the best partial
// ranking when inputs are partial rankings.
func OptimalPartialAggregate(rankings []*PartialRanking) (*PartialRanking, error) {
	return aggregate.OptimalPartialAggregate(rankings)
}

// DPResult is the outcome of the optimal-partial-ranking dynamic program.
type DPResult = aggregate.DPResult

// OptimalPartial returns the partial ranking minimizing L1 to an arbitrary
// score vector, by O(n^2) dynamic programming.
func OptimalPartial(f []float64) (DPResult, error) { return aggregate.OptimalPartial(f) }

// OptimalPartialFigure1 is the paper's Figure 1 pseudocode: exact integer
// arithmetic, requires every score to be a multiple of 1/2.
func OptimalPartialFigure1(f []float64) (DPResult, error) {
	return aggregate.OptimalPartialFigure1(f)
}

// FootruleOptimalFull returns the exact footrule-optimal full aggregation
// via minimum-cost perfect matching (Hungarian algorithm, O(n^3)) — the
// computationally heavy optimum that median aggregation 2-approximates.
func FootruleOptimalFull(rankings []*PartialRanking) (*PartialRanking, float64, error) {
	return aggregate.FootruleOptimalFull(rankings)
}

// Borda aggregates by mean position (average rank), the classical baseline.
func Borda(rankings []*PartialRanking) (*PartialRanking, error) {
	return aggregate.Borda(rankings)
}

// MCVariant selects a Markov-chain aggregation heuristic (MC1-MC4 of Dwork
// et al.).
type MCVariant = aggregate.MCVariant

// Markov-chain variants.
const (
	MC1 = aggregate.MC1
	MC2 = aggregate.MC2
	MC3 = aggregate.MC3
	MC4 = aggregate.MC4
)

// MarkovChainOptions tunes the stationary-distribution computation.
type MarkovChainOptions = aggregate.MarkovChainOptions

// MarkovChain aggregates with one of the MC1-MC4 heuristics.
func MarkovChain(rankings []*PartialRanking, variant MCVariant, opts MarkovChainOptions) (*PartialRanking, error) {
	return aggregate.MarkovChain(rankings, variant, opts)
}

// LocalKemenize locally optimizes a candidate full ranking by majority
// adjacent swaps (Dwork et al.).
func LocalKemenize(candidate *PartialRanking, rankings []*PartialRanking) (*PartialRanking, error) {
	return aggregate.LocalKemenize(candidate, rankings)
}

// SumL1Ranking returns the aggregation objective sum_i L1(candidate,
// sigma_i) (the summed Fprof distance).
func SumL1Ranking(candidate *PartialRanking, rankings []*PartialRanking) (float64, error) {
	return aggregate.SumL1Ranking(candidate, rankings)
}

// StrongMedianTopK returns the median top-k list together with the
// Theorem 35 witness: a partial ranking consistent with the top-k list that
// is itself within factor 2 of every partial ranking (for partial-ranking
// inputs) under the summed Fprof objective.
func StrongMedianTopK(rankings []*PartialRanking, k int) (topK, witness *PartialRanking, err error) {
	return aggregate.StrongMedianTopK(rankings, k)
}

// OrderPreservingMatchingCost returns the minimum-cost perfect matching
// total under |a-b| costs, achieved by the order-preserving matching
// (Lemma 26).
func OrderPreservingMatchingCost(a, b []float64) float64 {
	return aggregate.OrderPreservingMatchingCost(a, b)
}

// MedianPartialOfType aggregates into a partial ranking of the given type
// consistent with the median scores (Corollary 30: factor 3 vs same-type
// candidates, factor 2 when the inputs share that type).
func MedianPartialOfType(rankings []*PartialRanking, alpha []int) (*PartialRanking, error) {
	return aggregate.MedianPartialOfType(rankings, alpha)
}

// MedianInduced returns the bucket order induced by the median score vector
// itself: elements with equal medians stay tied.
func MedianInduced(rankings []*PartialRanking) (*PartialRanking, error) {
	return aggregate.MedianInduced(rankings)
}

// MajorityMargins returns the pairwise strict-majority margin matrix of the
// ensemble (ties abstain).
func MajorityMargins(rankings []*PartialRanking) ([][]int, error) {
	return aggregate.MajorityMargins(rankings)
}

// CondorcetWinner returns the element beating every other by strict
// majority, if one exists. The Kemeny optimum and LocalKemenize outputs
// always rank it first.
func CondorcetWinner(rankings []*PartialRanking) (int, bool, error) {
	return aggregate.CondorcetWinner(rankings)
}

// CondorcetLoser returns the element beaten by every other by strict
// majority, if one exists.
func CondorcetLoser(rankings []*PartialRanking) (int, bool, error) {
	return aggregate.CondorcetLoser(rankings)
}

// KemenyOptimalDP returns the exact Kemeny optimum (the full ranking
// minimizing the summed Kprof distance) by subset dynamic programming, for
// domains up to 18 elements — well beyond exhaustive enumeration. It always
// ranks a Condorcet winner first.
func KemenyOptimalDP(rankings []*PartialRanking) (*PartialRanking, float64, error) {
	return aggregate.KemenyOptimalDP(rankings)
}
