package rankties

import (
	"context"

	"repro/internal/topk"
)

// MedRankResult is the outcome of a streaming MEDRANK run, including
// sequential-access accounting.
type MedRankResult = topk.Result

// AccessStats records how much of each input list an engine probed.
type AccessStats = topk.AccessStats

// MedRankPolicy selects the probe schedule of the streaming engine.
type MedRankPolicy = topk.Policy

// Probe schedules.
const (
	// GlobalMerge probes the list with the smallest frontier position.
	GlobalMerge = topk.GlobalMerge
	// RoundRobin probes lists cyclically, the schedule of Section 6.
	RoundRobin = topk.RoundRobin
	// GlobalMergeBuckets charges one I/O per bucket (an index scan returns
	// a whole run of tied rows); see AccessStats.BucketProbes.
	GlobalMergeBuckets = topk.GlobalMergeBuckets
	// RoundRobinBuckets is RoundRobin at bucket granularity.
	RoundRobinBuckets = topk.RoundRobinBuckets
)

// MedRank runs the streaming median-rank top-k aggregation of Section 6:
// it returns exactly MedianTopK's answer while reading each input only as
// deeply as needed to certify the winners, with every probe counted. In
// the sequential-access model this algorithm is instance-optimal.
func MedRank(rankings []*PartialRanking, k int, policy MedRankPolicy) (*MedRankResult, error) {
	return topk.MedRank(rankings, k, policy)
}

// MedRankContext is MedRank under a caller context: cancellation or deadline
// expiry aborts the run between probes with ctx.Err().
func MedRankContext(ctx context.Context, rankings []*PartialRanking, k int, policy MedRankPolicy) (*MedRankResult, error) {
	return topk.MedRankContext(ctx, rankings, k, policy)
}

// Degraded annotates a MedRankResult whose input lists partially died
// mid-query (fallible-source runs only); see the internal faults package and
// topk.MedRankOver for building fallible pipelines.
type Degraded = topk.Degraded

// FullScanCost returns the access cost of reading every list completely,
// the baseline MedRank is measured against.
func FullScanCost(rankings []*PartialRanking) AccessStats {
	return topk.FullScanCost(rankings)
}

// CertificateLowerBound returns a conservative per-instance lower bound on
// the probes any correct sequential-access algorithm needs to certify the
// given winners.
func CertificateLowerBound(rankings []*PartialRanking, winners []int) int {
	return topk.CertificateLowerBound(rankings, winners)
}
