// Flights: the paper's travelocity-style reservation scenario. "Number of
// connections" is a numeric attribute that "usually has no more than four
// values" (Section 1) — the canonical few-valued column — and the user
// coarsens departure times into morning/afternoon/evening blocks. The
// catalog is loaded from CSV, filtered (WHERE stops <= 1), and the
// preference sorts are aggregated with median ranks.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	rankties "repro"
)

func main() {
	// Build a CSV catalog of 300 flights.
	rng := rand.New(rand.NewSource(11))
	airlines := []string{"united", "american", "delta", "southwest", "alaska"}
	var csvData strings.Builder
	csvData.WriteString("flight,price,stops,depart,airline\n")
	for i := 0; i < 300; i++ {
		stops := rng.Intn(3) // 0..2: a three-valued attribute
		price := 180 + float64(stops)*-20 + rng.Float64()*400
		depart := float64(rng.Intn(24*60)) / 60 // fractional hour
		airline := airlines[rng.Intn(len(airlines))]
		fmt.Fprintf(&csvData, "%s%03d,%.2f,%d,%.2f,%s\n",
			strings.ToUpper(airline[:2]), i, price, stops, depart, airline)
	}

	tbl, err := rankties.LoadCSV("flights", strings.NewReader(csvData.String()), "flight",
		map[string]rankties.ColumnType{
			"price":   rankties.FloatCol,
			"stops":   rankties.IntCol,
			"depart":  rankties.FloatCol,
			"airline": rankties.StringCol,
		})
	if err != nil {
		log.Fatal(err)
	}

	// The few-valued attributes produce massive ties.
	for _, col := range []string{"stops", "airline", "price"} {
		d, err := tbl.DistinctValues(col)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("attribute %-8s: %3d distinct values over %d flights\n", col, d, tbl.NumRows())
	}

	// The user: at most one stop; cheap; prefers morning departures (8h
	// blocks treated the same); likes united, settles for alaska.
	query := rankties.FilteredQuery{
		Conditions: []rankties.Condition{
			{Column: "stops", Op: rankties.Le, Value: 1},
		},
		Preferences: []rankties.Preference{
			{Column: "price", Direction: rankties.Ascending},
			{Column: "stops", Direction: rankties.Ascending},
			{Column: "depart", Direction: rankties.Ascending, CoarsenStep: 8},
			{Column: "airline", ValueOrder: []string{"united", "alaska"}},
		},
		K: 5,
	}
	res, err := tbl.TopKWhere(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop 5 flights (at most one stop), by median rank across 4 criteria:")
	for i, key := range res.Keys {
		fmt.Printf("  %d. %-6s (median position %.1f)\n", i+1, key, res.MedianPositions[i])
	}
	fmt.Printf("\nindex entries read: %d of %d (%.1f%% of scanning every index)\n",
		res.Access.Total, res.FullScan.Total,
		100*float64(res.Access.Total)/float64(res.FullScan.Total))
}
