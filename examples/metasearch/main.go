// Metasearch: aggregate the result lists of several search engines. Each
// engine returns only its top 10 of a 60-document corpus — exactly the
// "top k list" special case of partial rankings (k singleton buckets plus
// one bottom bucket, Section 2). The example compares median aggregation
// against Borda, MC4, and the exact footrule optimum, and shows the
// equivalence of the four metrics on the engines' lists.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	rankties "repro"
)

const (
	docs    = 60
	topK    = 10
	engines = 5
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Ground truth relevance order, unknown to the engines.
	truth := rng.Perm(docs)
	rank := make([]int, docs)
	for r, d := range truth {
		rank[d] = r
	}

	// Each engine sees a noisy version of the truth and reports its top 10.
	var lists []*rankties.PartialRanking
	for e := 0; e < engines; e++ {
		noisy := make([]float64, docs)
		for d := 0; d < docs; d++ {
			noisy[d] = float64(rank[d]) + rng.NormFloat64()*float64(4+3*e)
		}
		order := make([]int, docs)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return noisy[order[a]] < noisy[order[b]] })
		list, err := rankties.TopKList(docs, topK, order)
		if err != nil {
			log.Fatal(err)
		}
		lists = append(lists, list)
	}

	// How different are the engines? All four metrics, pairwise extremes.
	var minK, maxK float64
	for i := 0; i < engines; i++ {
		for j := i + 1; j < engines; j++ {
			d, err := rankties.Distances(lists[i], lists[j])
			if err != nil {
				log.Fatal(err)
			}
			if minK == 0 || d.KProf < minK {
				minK = d.KProf
			}
			if d.KProf > maxK {
				maxK = d.KProf
			}
		}
	}
	fmt.Printf("pairwise engine disagreement (Kprof): %.1f .. %.1f\n\n", minK, maxK)

	// Aggregate with each method and score against the hidden truth:
	// how many of the true top 10 made the aggregated top 10?
	trueTop := map[int]bool{}
	for _, d := range truth[:topK] {
		trueTop[d] = true
	}
	hits := func(pr *rankties.PartialRanking) int {
		h := 0
		for _, d := range pr.Order()[:topK] {
			if trueTop[d] {
				h++
			}
		}
		return h
	}

	median, err := rankties.MedianTopK(lists, topK)
	if err != nil {
		log.Fatal(err)
	}
	borda, err := rankties.Borda(lists)
	if err != nil {
		log.Fatal(err)
	}
	mc4, err := rankties.MarkovChain(lists, rankties.MC4, rankties.MarkovChainOptions{})
	if err != nil {
		log.Fatal(err)
	}
	footOpt, _, err := rankties.FootruleOptimalFull(lists)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("true-top-10 recall and sum-Fprof objective per method:")
	for _, m := range []struct {
		name string
		pr   *rankties.PartialRanking
	}{
		{"median (Thm 9)", median},
		{"Borda", borda},
		{"MC4", mc4},
		{"footrule optimum", footOpt},
		{"engine 1 alone", lists[0]},
	} {
		obj, err := rankties.SumL1Ranking(m.pr, lists)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-17s recall %2d/%d   objective %7.1f\n", m.name, hits(m.pr), topK, obj)
	}

	// The streaming engine reads only the tops of the lists.
	res, err := rankties.MedRank(lists, 3, rankties.GlobalMerge)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreaming top-3 winners: %v using %d probes (full scan: %d)\n",
		res.Winners, res.Stats.Total, rankties.FullScanCost(lists).Total)
}
