// Concordance: panel diagnostics before aggregating. Given a judging panel
// with two factions and one contrarian, the example measures overall
// agreement with Kendall's tie-corrected W, computes the pairwise Kprof
// distance matrix in parallel, identifies the outlier judge, and shows how
// median rank aggregation (Lemma 8's robustness) shrugs the outlier off
// while Borda's mean ranks get dragged toward it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	rankties "repro"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	const n = 12

	// A hidden consensus order, five honest judges sampling around it with
	// ties, plus a coordinated bloc of three contrarians who reverse it.
	const honest, contrarians = 5, 3
	base := rng.Perm(n)
	var panel []*rankties.PartialRanking
	for j := 0; j < honest; j++ {
		scores := make([]float64, n)
		for pos, e := range base {
			scores[e] = float64(pos) + rng.NormFloat64()*1.2
		}
		// Coarse scale: ties.
		for i := range scores {
			scores[i] = float64(int(scores[i] / 2))
		}
		panel = append(panel, rankties.FromScores(scores))
	}
	reversed := make([]int, n)
	for i, e := range base {
		reversed[n-1-i] = e
	}
	for j := 0; j < contrarians; j++ {
		panel = append(panel, rankties.MustFromOrder(reversed))
	}

	w, err := rankties.KendallW(panel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("panel concordance (Kendall's W, tie-corrected): %.3f\n", w)
	wHonest, err := rankties.KendallW(panel[:honest])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("honest judges only:                             %.3f\n\n", wHonest)

	// Pairwise distances expose the outlier: its average distance to the
	// rest dwarfs everyone else's.
	mat, err := rankties.DistanceMatrix(panel, rankties.KProf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mean Kprof distance of each judge to the rest:")
	worst, worstJudge := 0.0, -1
	for i := range panel {
		var sum float64
		for j := range panel {
			sum += mat[i][j]
		}
		mean := sum / float64(len(panel)-1)
		fmt.Printf("  judge %d: %6.1f\n", i+1, mean)
		if mean > worst {
			worst, worstJudge = mean, i
		}
	}
	fmt.Printf("most discordant: judge %d (the contrarian bloc is judges %d-%d)\n\n",
		worstJudge+1, honest+1, honest+contrarians)

	// Aggregate with and without the outlier; median barely moves.
	kendallTo := func(a, b *rankties.PartialRanking) float64 {
		d, err := rankties.KProf(a, b)
		if err != nil {
			log.Fatal(err)
		}
		return d
	}
	truth := rankties.MustFromOrder(base)
	medianAll, err := rankties.MedianFull(panel)
	if err != nil {
		log.Fatal(err)
	}
	bordaAll, err := rankties.Borda(panel)
	if err != nil {
		log.Fatal(err)
	}
	medianHonest, err := rankties.MedianFull(panel[:honest])
	if err != nil {
		log.Fatal(err)
	}
	bordaHonest, err := rankties.Borda(panel[:honest])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Kprof distance of the aggregate to the hidden consensus:")
	fmt.Printf("  median, full panel (5 honest + 3 contrarians): %5.1f\n", kendallTo(medianAll, truth))
	fmt.Printf("  median, honest judges only:                    %5.1f\n", kendallTo(medianHonest, truth))
	fmt.Printf("  Borda,  full panel (5 honest + 3 contrarians): %5.1f\n", kendallTo(bordaAll, truth))
	fmt.Printf("  Borda,  honest judges only:                    %5.1f\n", kendallTo(bordaHonest, truth))
	fmt.Println("\nmedian ranks follow the honest majority (Lemma 8's robustness);")
	fmt.Println("mean ranks are dragged toward the bloc.")
}
