// Quickstart: the core workflow of the rankties library in one file —
// build partial rankings (rankings with ties), compare them under the
// paper's four metrics, and aggregate them with the median-rank algorithms
// and their provable guarantees.
package main

import (
	"fmt"
	"log"

	rankties "repro"
)

func main() {
	// Three critics rank four restaurants (IDs 0..3). Critic C cannot
	// separate the pairs, so their ranking has ties — a partial ranking.
	criticA := rankties.MustFromOrder([]int{0, 1, 2, 3})
	criticB := rankties.MustFromOrder([]int{1, 0, 3, 2})
	criticC := rankties.MustFromBuckets(4, [][]int{{0, 1}, {2, 3}})
	inputs := []*rankties.PartialRanking{criticA, criticB, criticC}

	names := []string{"Thai Palace", "Noodle Bar", "Sushi Ko", "Taco Shack"}

	// --- Comparing rankings -------------------------------------------
	// The paper defines four metrics on partial rankings and proves they
	// are within constant factors of each other (Theorem 7).
	d, err := rankties.Distances(criticA, criticC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("distance between critic A and critic C:")
	fmt.Printf("  Kprof = %-5g (Kendall with half-penalty for ties)\n", d.KProf)
	fmt.Printf("  Fprof = %-5g (L1 between position vectors)\n", d.FProf)
	fmt.Printf("  KHaus = %-5d (Hausdorff-Kendall)\n", d.KHaus)
	fmt.Printf("  FHaus = %-5d (Hausdorff-footrule)\n", d.FHaus)
	fmt.Printf("  equivalence: Kprof <= Fprof <= 2*Kprof? %v\n\n",
		d.KProf <= d.FProf && d.FProf <= 2*d.KProf)

	// --- Aggregating rankings -----------------------------------------
	// The median position of each element minimizes the summed L1 distance
	// (Lemma 8); rounding the median yields provably near-optimal
	// aggregations.
	full, err := rankties.MedianFull(inputs) // Theorem 11: factor 2
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("median aggregation (full ranking, Theorem 11):")
	for rank, e := range full.Order() {
		fmt.Printf("  %d. %s\n", rank+1, names[e])
	}

	// Theorem 10: the partial ranking closest to the median, via the
	// Figure 1 dynamic program — keeps honest ties in the output.
	partial, err := rankties.OptimalPartialAggregate(inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimal partial aggregation (Theorem 10):")
	for b := 0; b < partial.NumBuckets(); b++ {
		fmt.Printf("  tier %d:", b+1)
		for _, e := range partial.Bucket(b) {
			fmt.Printf(" %s", names[e])
		}
		fmt.Println()
	}

	// --- Database-friendly top-k --------------------------------------
	// MedRank reads the inputs like index scans and stops as soon as the
	// winners are certified (instance-optimal in the sequential-access
	// model).
	res, err := rankties.MedRank(inputs, 1, rankties.RoundRobin)
	if err != nil {
		log.Fatal(err)
	}
	fullScan := rankties.FullScanCost(inputs)
	fmt.Printf("\nstreaming top-1: %s (median position %g)\n",
		names[res.Winners[0]], float64(res.Medians2[0])/2)
	fmt.Printf("probes used: %d of %d entries (%0.f%% of a full scan)\n",
		res.Stats.Total, fullScan.Total,
		100*float64(res.Stats.Total)/float64(fullScan.Total))
}
