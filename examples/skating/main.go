// Skating: Olympic figure-skating style judging. The paper (footnote 2)
// notes that median-rank aggregation, with tie-breaking rules, is how
// figure skating has been judged. Nine judges rank eight skaters; some
// judges award tied ordinals. The example computes each skater's median
// ordinal, breaks ties with the Theorem 11 refinement, and cross-checks the
// podium against the exact footrule optimum and the brute-force Kemeny
// optimum (feasible at eight skaters).
package main

import (
	"fmt"
	"log"
	"math/rand"

	rankties "repro"
	"repro/internal/aggregate"
)

func main() {
	skaters := []string{
		"Arakawa", "Baiul", "Henie", "Kwan", "Lipinski", "Witt", "Yamaguchi", "Zagitova",
	}
	n := len(skaters)
	rng := rand.New(rand.NewSource(1998))

	// A hidden "true" quality order, from which each judge deviates; a few
	// judges give tied ordinals (they genuinely cannot separate skaters).
	truth := rng.Perm(n)
	var panel []*rankties.PartialRanking
	for j := 0; j < 9; j++ {
		scores := make([]float64, n)
		for i, s := range truth {
			scores[s] = float64(i) + rng.NormFloat64()*1.2
		}
		if j%3 == 0 {
			// This judge scores on a coarse 4-point scale: ties abound.
			for i := range scores {
				scores[i] = float64(int(scores[i]/2) * 2)
			}
		}
		panel = append(panel, rankties.FromScores(scores))
	}

	fmt.Println("judges' ordinals (position of each skater):")
	for j, p := range panel {
		fmt.Printf("  judge %d:", j+1)
		for s := range skaters {
			fmt.Printf(" %4.1f", p.Pos(s))
		}
		fmt.Println()
	}

	medians, err := rankties.MedianScores(panel, rankties.LowerMedian)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmedian ordinals:")
	for s, name := range skaters {
		fmt.Printf("  %-10s %4.1f\n", name, medians[s])
	}

	final, err := rankties.MedianFull(panel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal standings (median ranks, Theorem 11 tie-break):")
	for place, s := range final.Order() {
		marker := ""
		if place < 3 {
			marker = []string{" *gold*", " *silver*", " *bronze*"}[place]
		}
		fmt.Printf("  %d. %s%s\n", place+1, skaters[s], marker)
	}

	// Sanity: the factor-2 guarantee against the exact footrule optimum.
	medianObj, err := rankties.SumL1Ranking(final, panel)
	if err != nil {
		log.Fatal(err)
	}
	_, optObj, err := rankties.FootruleOptimalFull(panel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsum-Fprof: median %.1f vs exact optimum %.1f (factor %.3f, bound 2)\n",
		medianObj, optObj, medianObj/optObj)

	// Eight skaters is small enough for the exact Kemeny (sum-Kprof)
	// optimum by enumeration of all 8! candidate standings.
	kemeny, kemObj, err := aggregate.KemenyOptimalBrute(panel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact Kemeny standings agree on gold? %v (Kemeny objective %.1f)\n",
		kemeny.Order()[0] == final.Order()[0], kemObj)
}
