// Restaurants: the paper's Section 1 motivating scenario end-to-end — a
// dine.com-style catalog search. The user states preferences over four
// attributes; each preference sorts the catalog, producing a partial
// ranking with heavy ties (cuisine has five values, distance is coarsened
// to "any distance up to ten miles is the same"); and the engine aggregates
// the sorts with median ranks, reading each index only as deeply as needed.
package main

import (
	"fmt"
	"log"
	"math/rand"

	rankties "repro"
)

func main() {
	tbl := rankties.NewTable("restaurants")
	for _, c := range []struct {
		name string
		typ  rankties.ColumnType
	}{
		{"cuisine", rankties.StringCol},
		{"distance", rankties.FloatCol},
		{"price", rankties.FloatCol},
		{"stars", rankties.IntCol},
	} {
		if err := tbl.AddColumn(c.name, c.typ); err != nil {
			log.Fatal(err)
		}
	}

	// A synthetic city: 500 restaurants over five cuisines (Zipf-ish mix),
	// distances up to 25 miles, prices correlated with stars.
	rng := rand.New(rand.NewSource(42))
	cuisines := []string{"thai", "italian", "mexican", "japanese", "american"}
	for i := 0; i < 500; i++ {
		cuisine := cuisines[zipfPick(rng, len(cuisines))]
		stars := 1 + rng.Intn(5)
		price := 8 + float64(stars)*6 + rng.Float64()*12
		dist := rng.Float64() * 25
		key := fmt.Sprintf("%s-%03d", cuisine, i)
		if err := tbl.Insert(key, rankties.Row{
			"cuisine": cuisine, "distance": dist, "price": price, "stars": stars,
		}); err != nil {
			log.Fatal(err)
		}
	}

	// The user: loves thai, will settle for japanese; treats every distance
	// under 10 miles the same; wants cheap and well-starred.
	prefs := []rankties.Preference{
		{Column: "cuisine", ValueOrder: []string{"thai", "japanese"}},
		{Column: "distance", Direction: rankties.Ascending, CoarsenStep: 10},
		{Column: "price", Direction: rankties.Ascending},
		{Column: "stars", Direction: rankties.Descending},
	}

	// How tied are the attribute sorts? This is why full-ranking methods
	// fall over on database attributes.
	fmt.Println("attribute sorts (few-valued attributes => huge ties):")
	for _, p := range prefs {
		pr, err := tbl.IndexScan(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s -> %3d buckets over %d rows\n", p.Column, pr.NumBuckets(), pr.N())
	}

	res, err := tbl.TopK(rankties.Query{Preferences: prefs, K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop 5 restaurants by median rank aggregation:")
	for i, key := range res.Keys {
		fmt.Printf("  %d. %-14s (median position %.1f)\n", i+1, key, res.MedianPositions[i])
	}
	fmt.Printf("\nindex entries read: %d of %d (%.1f%% of a full scan)\n",
		res.Access.Total, res.FullScan.Total,
		100*float64(res.Access.Total)/float64(res.FullScan.Total))

	// The same result as a tiered (partial) ranking of the top of the
	// catalog, via the Theorem 10 dynamic program.
	groups, err := tbl.RankPartial(prefs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 10 tiering: %d tiers; first tier has %d restaurants\n",
		len(groups), len(groups[0]))
}

// zipfPick samples an index with probability proportional to 1/(i+1).
func zipfPick(rng *rand.Rand, n int) int {
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / float64(i+1)
	}
	u := rng.Float64() * total
	for i := 0; i < n; i++ {
		u -= 1 / float64(i+1)
		if u <= 0 {
			return i
		}
	}
	return n - 1
}
