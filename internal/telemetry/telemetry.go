// Package telemetry is the zero-dependency observability layer of the
// reproduction: atomic counters and bounded histograms behind a Registry
// with an expvar-published JSON snapshot, a lightweight span/trace API with
// runtime/pprof label propagation, and the unified AccessAccountant that
// implements the middleware cost model of Fagin, Lotem, and Naor (counted
// sequential and random accesses) under which the paper's MEDRANK algorithm
// is instance optimal.
//
// The layer has two regimes:
//
//   - Gated instrumentation (counters, histograms, spans, pprof labels) is
//     active only while Enabled() reports true. The disabled path is a single
//     atomic load and performs no allocation, so the zero-allocation metric
//     kernels stay at 0 allocs/op with telemetry compiled in. Enable
//     telemetry programmatically (Enable), or for a whole test run by setting
//     RANKTIES_TELEMETRY=1 in the environment.
//
//   - Always-on cost accounting (AccessAccountant) is part of the engines'
//     semantics, not optional instrumentation: MEDRANK's access statistics
//     are an experimental result of the paper, so they are counted whether or
//     not telemetry is enabled.
package telemetry

import (
	"os"
	"sync/atomic"
)

// EnvVar is the environment variable that, when set to "1", enables
// telemetry at process start. CI uses it to run the telemetry-enabled test
// variant without code changes.
const EnvVar = "RANKTIES_TELEMETRY"

var enabled atomic.Bool

func init() {
	if os.Getenv(EnvVar) == "1" {
		enabled.Store(true)
	}
}

// Enabled reports whether gated instrumentation is active. It is a single
// atomic load, safe to call on any hot path.
func Enabled() bool { return enabled.Load() }

// Enable turns gated instrumentation on.
func Enable() { enabled.Store(true) }

// Disable turns gated instrumentation off. Counter values already recorded
// are retained; see Registry.Reset to clear them.
func Disable() { enabled.Store(false) }
