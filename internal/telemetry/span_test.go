package telemetry

import (
	"context"
	"runtime/pprof"
	"testing"
)

func TestSpanDisabledIsNoop(t *testing.T) {
	was := Enabled()
	Disable()
	defer func() {
		if was {
			Enable()
		}
	}()
	ResetTrace()
	ctx := context.Background()
	ctx2, s := Start(ctx, "noop")
	if ctx2 != ctx {
		t.Error("disabled Start changed the context")
	}
	s.End()
	if ev := TraceEvents(); len(ev) != 0 {
		t.Errorf("disabled span recorded %d events", len(ev))
	}
	if allocs := testing.AllocsPerRun(100, func() {
		_, sp := Start(ctx, "noop")
		sp.End()
	}); allocs != 0 {
		t.Errorf("disabled span: %.1f allocs/op, want 0", allocs)
	}
}

func TestSpanRecordsEventAndHistogram(t *testing.T) {
	withEnabled(t, func() {
		ResetTrace()
		before := GetHistogram("span.test_phase").Snapshot().Count
		sp := StartSpan("test_phase")
		sp.End()
		ev := TraceEvents()
		if len(ev) != 1 || ev[0].Name != "test_phase" {
			t.Fatalf("trace = %+v, want one test_phase event", ev)
		}
		if ev[0].DurationNs < 0 {
			t.Errorf("negative duration %d", ev[0].DurationNs)
		}
		if got := GetHistogram("span.test_phase").Snapshot().Count; got != before+1 {
			t.Errorf("span histogram count = %d, want %d", got, before+1)
		}
	})
}

func TestSpanCarriesPprofLabel(t *testing.T) {
	withEnabled(t, func() {
		ctx, sp := Start(context.Background(), "labeled_phase")
		defer sp.End()
		v, ok := pprof.Label(ctx, "span")
		if !ok || v != "labeled_phase" {
			t.Errorf(`pprof label "span" = %q, %v; want "labeled_phase", true`, v, ok)
		}
	})
}

func TestDoCarriesKernelLabel(t *testing.T) {
	withEnabled(t, func() {
		ran := false
		Do(context.Background(), "kernel", "khaus", func(ctx context.Context) {
			ran = true
			v, ok := pprof.Label(ctx, "kernel")
			if !ok || v != "khaus" {
				t.Errorf(`pprof label "kernel" = %q, %v; want "khaus", true`, v, ok)
			}
		})
		if !ran {
			t.Fatal("Do did not run f")
		}
	})
	// Disabled: f still runs, context untouched.
	was := Enabled()
	Disable()
	defer func() {
		if was {
			Enable()
		}
	}()
	ran := false
	Do(context.Background(), "kernel", "khaus", func(ctx context.Context) {
		ran = true
		if _, ok := pprof.Label(ctx, "kernel"); ok {
			t.Error("disabled Do applied a label")
		}
	})
	if !ran {
		t.Fatal("disabled Do did not run f")
	}
}

func TestTraceRingWrapsKeepingNewest(t *testing.T) {
	withEnabled(t, func() {
		ResetTrace()
		for i := 0; i < traceCap+10; i++ {
			sp := StartSpan("wrap")
			sp.End()
		}
		ev := TraceEvents()
		if len(ev) != traceCap {
			t.Fatalf("retained %d events, want %d", len(ev), traceCap)
		}
		// Oldest-first ordering: starts must be non-decreasing.
		for i := 1; i < len(ev); i++ {
			if ev[i].Start.Before(ev[i-1].Start) {
				t.Fatalf("events out of order at %d", i)
			}
		}
		ResetTrace()
		if len(TraceEvents()) != 0 {
			t.Error("ResetTrace left events behind")
		}
	})
}
