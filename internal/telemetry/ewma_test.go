package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestEWMAUnsetIsZero(t *testing.T) {
	e := NewEWMA(0.5)
	if v := e.Value(); v != 0 {
		t.Fatalf("unset EWMA = %v, want 0", v)
	}
}

func TestEWMAFirstSampleSeeds(t *testing.T) {
	e := NewEWMA(0.1)
	e.Observe(1000)
	if v := e.Value(); v != 1000 {
		t.Fatalf("after first sample = %v, want 1000", v)
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(0.0001) // non-zero seed far from the target
	for i := 0; i < 60; i++ {
		e.Observe(500)
	}
	if v := e.Value(); math.Abs(v-500) > 1e-6 {
		t.Fatalf("converged value = %v, want ~500", v)
	}
}

func TestEWMAZeroSampleStaysSeeded(t *testing.T) {
	e := NewEWMA(1) // alpha 1: value tracks the last sample exactly
	e.Observe(0)
	if v := e.Value(); v < 0 || v > 1e-300 {
		t.Fatalf("zero sample = %v, want denormal-nudged ~0", v)
	}
	// The point: a zero average still reads as "seeded", so a later Observe
	// blends instead of re-seeding.
	e2 := NewEWMA(0.5)
	e2.Observe(0)
	e2.Observe(100)
	if v := e2.Value(); math.Abs(v-50) > 1e-6 {
		t.Fatalf("blend after zero seed = %v, want 50", v)
	}
}

func TestEWMAIgnoresNonFinite(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(42)
	e.Observe(math.NaN())
	e.Observe(math.Inf(1))
	if v := e.Value(); v != 42 {
		t.Fatalf("after non-finite samples = %v, want 42", v)
	}
}

func TestEWMABadAlphaClamped(t *testing.T) {
	for _, alpha := range []float64{0, -1, 2, math.NaN()} {
		e := NewEWMA(alpha)
		e.Observe(10)
		e.Observe(20)
		v := e.Value()
		if v <= 10 || v >= 20 {
			t.Fatalf("alpha %v: value %v not strictly between samples", alpha, v)
		}
	}
}

// TestEWMAConcurrent is the -race certificate: concurrent observers must
// leave the average finite and within the observed range.
func TestEWMAConcurrent(t *testing.T) {
	e := NewEWMA(0.2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				e.Observe(float64(100 + g))
			}
		}(g)
	}
	wg.Wait()
	if v := e.Value(); v < 100 || v > 107 {
		t.Fatalf("concurrent EWMA = %v, want within [100, 107]", v)
	}
}
