package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A self-contained well-formedness checker for the Prometheus text exposition
// format, so CI can lint GET /metrics without any external Prometheus
// dependency. The parser is reusable on its own: rankload's -scrape mode uses
// it to read server-side histograms back out of an exposition.

// Problem is one lint finding, anchored to a 1-based line number (0 when the
// problem is about the exposition as a whole).
type Problem struct {
	Line int
	Msg  string
}

func (p Problem) String() string {
	if p.Line > 0 {
		return fmt.Sprintf("line %d: %s", p.Line, p.Msg)
	}
	return p.Msg
}

// Sample is one parsed sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
	Line   int
}

// Exposition is the parsed form of one scrape.
type Exposition struct {
	Samples []Sample
	// Types and Helps map family name to the declared TYPE / HELP text.
	Types map[string]string
	Helps map[string]string
}

// Histogram reconstructs the cumulative bucket map (le -> count), sum, and
// count of the histogram series with the given family name whose labels
// (minus "le") equal sel. ok is false when no such series exists.
func (e *Exposition) Histogram(family string, sel map[string]string) (buckets map[float64]float64, sum, count float64, ok bool) {
	match := func(l map[string]string, dropLe bool) bool {
		n := 0
		for k, v := range l {
			if dropLe && k == "le" {
				continue
			}
			if sel[k] != v {
				return false
			}
			n++
		}
		return n == len(sel)
	}
	buckets = make(map[float64]float64)
	for _, s := range e.Samples {
		switch s.Name {
		case family + "_bucket":
			if match(s.Labels, true) {
				le, err := parseLe(s.Labels["le"])
				if err == nil {
					buckets[le] = s.Value
					ok = true
				}
			}
		case family + "_sum":
			if match(s.Labels, false) {
				sum = s.Value
			}
		case family + "_count":
			if match(s.Labels, false) {
				count = s.Value
				ok = true
			}
		}
	}
	return buckets, sum, count, ok
}

// QuantileFromBuckets returns an upper bound on the q-quantile implied by a
// cumulative le->count bucket map (the smallest finite upper edge at which
// the cumulative count reaches q of the total). Returns 0 on an empty map.
func QuantileFromBuckets(buckets map[float64]float64, q float64) float64 {
	if len(buckets) == 0 {
		return 0
	}
	edges := make([]float64, 0, len(buckets))
	for le := range buckets {
		edges = append(edges, le)
	}
	sort.Float64s(edges)
	total := buckets[edges[len(edges)-1]]
	if total <= 0 {
		return 0
	}
	need := q * total
	if need < 1 {
		need = 1
	}
	var lastFinite float64
	for _, le := range edges {
		if buckets[le] >= need {
			if math.IsInf(le, 1) {
				return lastFinite
			}
			return le
		}
		if !math.IsInf(le, 1) {
			lastFinite = le
		}
	}
	return lastFinite
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && !(c >= '0' && c <= '9' && i > 0) {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && !(c >= '0' && c <= '9' && i > 0) {
			return false
		}
	}
	return true
}

// parseLabels parses `k1="v1",k2="v2"}` starting just past the '{'; returns
// the labels and the rest of the line after the '}'.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label set: missing '='")
		}
		name := strings.TrimSpace(s[:eq])
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		s = strings.TrimLeft(s[eq+1:], " \t")
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s: value not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for {
			if i >= len(s) {
				return nil, "", fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[i]
			if c == '"' {
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: bad escape \\%c", name, s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("label %s repeated in one label set", name)
		}
		labels[name] = val.String()
		s = strings.TrimLeft(s[i+1:], " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		return nil, "", fmt.Errorf("label set: expected ',' or '}' after label %s", name)
	}
}

// ParseExposition parses one text-format scrape. Syntax problems are
// collected per line (a bad line is skipped, parsing continues); duplicate
// HELP/TYPE declarations are also reported here since they are properties of
// the comment stream.
func ParseExposition(r io.Reader) (*Exposition, []Problem) {
	exp := &Exposition{Types: make(map[string]string), Helps: make(map[string]string)}
	var problems []Problem
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				name := fields[2]
				if !validMetricName(name) {
					problems = append(problems, Problem{lineNo, fmt.Sprintf("%s for invalid metric name %q", fields[1], name)})
					continue
				}
				rest := ""
				if len(fields) == 4 {
					rest = fields[3]
				}
				if fields[1] == "HELP" {
					if _, dup := exp.Helps[name]; dup {
						problems = append(problems, Problem{lineNo, fmt.Sprintf("duplicate HELP for family %s", name)})
					}
					exp.Helps[name] = rest
				} else {
					if _, dup := exp.Types[name]; dup {
						problems = append(problems, Problem{lineNo, fmt.Sprintf("duplicate TYPE for family %s", name)})
					}
					switch rest {
					case "counter", "gauge", "histogram", "summary", "untyped":
						exp.Types[name] = rest
					default:
						problems = append(problems, Problem{lineNo, fmt.Sprintf("family %s: unknown TYPE %q", name, rest)})
					}
				}
			}
			continue
		}
		name := line
		rest := ""
		if i := strings.IndexAny(line, "{ \t"); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if !validMetricName(name) {
			problems = append(problems, Problem{lineNo, fmt.Sprintf("invalid metric name %q", name)})
			continue
		}
		var labels map[string]string
		if strings.HasPrefix(rest, "{") {
			var err error
			labels, rest, err = parseLabels(rest[1:])
			if err != nil {
				problems = append(problems, Problem{lineNo, fmt.Sprintf("metric %s: %v", name, err)})
				continue
			}
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			problems = append(problems, Problem{lineNo, fmt.Sprintf("metric %s: expected value [timestamp], got %q", name, strings.TrimSpace(rest))})
			continue
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			problems = append(problems, Problem{lineNo, fmt.Sprintf("metric %s: bad value %q", name, fields[0])})
			continue
		}
		if len(fields) == 2 {
			if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
				problems = append(problems, Problem{lineNo, fmt.Sprintf("metric %s: bad timestamp %q", name, fields[1])})
				continue
			}
		}
		exp.Samples = append(exp.Samples, Sample{Name: name, Labels: labels, Value: v, Line: lineNo})
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, Problem{0, fmt.Sprintf("read: %v", err)})
	}
	return exp, problems
}

// familyOf maps a sample name to its declared family: histogram (and
// summary) samples use suffixed names, everything else is its own family.
func (e *Exposition) familyOf(name string) string {
	if _, ok := e.Types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, found := strings.CutSuffix(name, suf); found {
			if t := e.Types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

func labelsetKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

// LintExposition checks one scrape for well-formedness: metric/label name
// syntax, unique HELP/TYPE per family, TYPE declared before the family's
// samples, no duplicate (name, label set) series, and — for histograms —
// ascending le edges, monotone cumulative bucket counts, a "+Inf" bucket
// present and equal to _count, with _sum and _count series present. An empty
// slice means the exposition is clean.
func LintExposition(r io.Reader) []Problem {
	exp, problems := ParseExposition(r)

	// Duplicate series + TYPE-before-sample ordering.
	seen := make(map[string]int)
	firstSample := make(map[string]int)
	for _, s := range exp.Samples {
		key := s.Name + "|" + labelsetKey(s.Labels)
		if prev, dup := seen[key]; dup {
			problems = append(problems, Problem{s.Line, fmt.Sprintf("duplicate series %s%s (first at line %d)", s.Name, labelsetKey(s.Labels), prev)})
		} else {
			seen[key] = s.Line
		}
		fam := exp.familyOf(s.Name)
		if _, ok := firstSample[fam]; !ok {
			firstSample[fam] = s.Line
		}
		for k := range s.Labels {
			if !validLabelName(k) {
				problems = append(problems, Problem{s.Line, fmt.Sprintf("metric %s: invalid label name %q", s.Name, k)})
			}
		}
	}

	// Histogram families: group buckets by labels-minus-le.
	type group struct {
		les    []float64
		counts []float64
		lines  []int
		sum    bool
		count  float64
		hasCnt bool
	}
	groups := make(map[string]*group)
	order := []string{}
	gkey := func(fam string, labels map[string]string) string {
		l2 := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				l2[k] = v
			}
		}
		return fam + "|" + labelsetKey(l2)
	}
	get := func(k string) *group {
		g, ok := groups[k]
		if !ok {
			g = &group{}
			groups[k] = g
			order = append(order, k)
		}
		return g
	}
	for _, s := range exp.Samples {
		fam := exp.familyOf(s.Name)
		if exp.Types[fam] != "histogram" {
			continue
		}
		switch s.Name {
		case fam + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				problems = append(problems, Problem{s.Line, fmt.Sprintf("histogram %s: _bucket sample without le label", fam)})
				continue
			}
			v, err := parseLe(le)
			if err != nil {
				problems = append(problems, Problem{s.Line, fmt.Sprintf("histogram %s: bad le %q", fam, le)})
				continue
			}
			g := get(gkey(fam, s.Labels))
			g.les = append(g.les, v)
			g.counts = append(g.counts, s.Value)
			g.lines = append(g.lines, s.Line)
		case fam + "_sum":
			get(gkey(fam, s.Labels)).sum = true
		case fam + "_count":
			g := get(gkey(fam, s.Labels))
			g.count = s.Value
			g.hasCnt = true
		default:
			problems = append(problems, Problem{s.Line, fmt.Sprintf("histogram family %s has non-histogram sample %s", fam, s.Name)})
		}
	}
	for _, k := range order {
		g := groups[k]
		name := strings.SplitN(k, "|", 2)[0]
		if len(g.les) == 0 {
			if g.sum || g.hasCnt {
				problems = append(problems, Problem{0, fmt.Sprintf("histogram %s: series %q has _sum/_count but no buckets", name, k)})
			}
			continue
		}
		hasInf := false
		for i := range g.les {
			if math.IsInf(g.les[i], 1) {
				hasInf = true
			}
			if i > 0 {
				if g.les[i] <= g.les[i-1] {
					problems = append(problems, Problem{g.lines[i], fmt.Sprintf("histogram %s: le edges not ascending (%v after %v)", name, g.les[i], g.les[i-1])})
				}
				if g.counts[i] < g.counts[i-1] {
					problems = append(problems, Problem{g.lines[i], fmt.Sprintf("histogram %s: cumulative bucket counts decrease (%v after %v)", name, g.counts[i], g.counts[i-1])})
				}
			}
		}
		if !hasInf {
			problems = append(problems, Problem{g.lines[len(g.lines)-1], fmt.Sprintf("histogram %s: missing +Inf bucket", name)})
		}
		if !g.sum {
			problems = append(problems, Problem{g.lines[0], fmt.Sprintf("histogram %s: missing _sum", name)})
		}
		if !g.hasCnt {
			problems = append(problems, Problem{g.lines[0], fmt.Sprintf("histogram %s: missing _count", name)})
		} else if hasInf && g.counts[len(g.counts)-1] != g.count {
			problems = append(problems, Problem{g.lines[len(g.lines)-1], fmt.Sprintf("histogram %s: +Inf bucket (%v) != _count (%v)", name, g.counts[len(g.counts)-1], g.count)})
		}
	}
	return problems
}
