package telemetry

import (
	"encoding/json"
	"testing"
)

// withEnabled runs f with telemetry forced on, restoring the previous state.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	was := Enabled()
	Enable()
	defer func() {
		if !was {
			Disable()
		}
	}()
	f()
}

func TestCounterGatedOnEnabled(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.gated")
	was := Enabled()
	Disable()
	c.Inc()
	c.Add(10)
	if was {
		Enable()
	}
	if c.Value() != 0 {
		t.Errorf("disabled counter recorded %d, want 0", c.Value())
	}
	withEnabled(t, func() {
		c.Inc()
		c.Add(4)
	})
	if c.Value() != 5 {
		t.Errorf("enabled counter = %d, want 5", c.Value())
	}
}

// Supervision counters must record through a disabled registry: a contained
// panic is an operational fact, not a trace sample.
func TestCounterForcePathsIgnoreGate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.forced")
	was := Enabled()
	Disable()
	c.ForceInc()
	c.ForceAdd(9)
	if was {
		Enable()
	}
	if c.Value() != 10 {
		t.Errorf("forced counter = %d, want 10 with telemetry disabled", c.Value())
	}
}

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("same name returned distinct counters")
	}
	if r.Counter("x") == r.Counter("y") {
		t.Error("distinct names returned the same counter")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Error("same name returned distinct histograms")
	}
}

func TestHistogramSummary(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.hist")
	withEnabled(t, func() {
		for v := int64(1); v <= 1000; v++ {
			h.Observe(v)
		}
		h.Observe(-5) // clamps to 0
	})
	s := h.Snapshot()
	if s.Count != 1001 {
		t.Fatalf("count = %d, want 1001", s.Count)
	}
	if s.Max != 1000 {
		t.Errorf("max = %d, want 1000", s.Max)
	}
	wantSum := int64(1000 * 1001 / 2)
	if s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
	// Quantiles are bucket upper bounds: p50 of 1..1000 lies in [500, 1023],
	// and the bound is clamped to the observed max.
	if s.P50 < 500 || s.P50 > 1000 {
		t.Errorf("p50 = %d, want in [500, 1000]", s.P50)
	}
	if s.P99 < 990 || s.P99 > 1000 {
		t.Errorf("p99 = %d, want in [990, 1000]", s.P99)
	}
	// q=0 returns the first non-empty bucket's bound: the clamped -5
	// observation lives in the zero bucket.
	if q := h.Quantile(0); q != 0 {
		t.Errorf("Quantile(0) = %d, want 0", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	r := NewRegistry()
	if q := r.Histogram("empty").Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %d, want 0", q)
	}
}

func TestSnapshotOmitsZeroAndMarshals(t *testing.T) {
	r := NewRegistry()
	r.Counter("zero")
	h := r.Histogram("used")
	withEnabled(t, func() {
		r.Counter("nonzero").Add(7)
		h.Observe(42)
	})
	s := r.Snapshot()
	if _, ok := s.Counters["zero"]; ok {
		t.Error("snapshot includes zero-valued counter")
	}
	if s.Counters["nonzero"] != 7 {
		t.Errorf("nonzero = %d, want 7", s.Counters["nonzero"])
	}
	if s.Histograms["used"].Count != 1 {
		t.Errorf("histogram count = %d, want 1", s.Histograms["used"].Count)
	}
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Counters["nonzero"] != 7 {
		t.Errorf("round-trip lost counter value: %v", back.Counters)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	withEnabled(t, func() {
		c.Add(3)
		h.Observe(9)
	})
	r.Reset()
	if c.Value() != 0 {
		t.Errorf("counter after reset = %d", c.Value())
	}
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 || s.Max != 0 || s.P99 != 0 {
		t.Errorf("histogram after reset = %+v", s)
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Counter("a")
	r.Histogram("c")
	got := r.Names()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestCounterZeroAllocsDisabled(t *testing.T) {
	was := Enabled()
	Disable()
	defer func() {
		if was {
			Enable()
		}
	}()
	r := NewRegistry()
	c := r.Counter("alloc.probe")
	h := r.Histogram("alloc.probe")
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		h.Observe(17)
	}); allocs != 0 {
		t.Errorf("disabled instruments: %.1f allocs/op, want 0", allocs)
	}
}
