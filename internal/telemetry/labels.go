package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labeled instruments: one metric family ("rankserve_requests_total") fanning
// out into series distinguished by label values ({tenant="acme",
// endpoint="topk", status="200"}). A vec owns its family's fixed label keys;
// With(values...) get-or-creates the series for one value tuple. This is what
// lets per-tenant series share one family instead of requiring one Registry
// per tenant.
//
// Series creation takes a lock; the returned instruments are the same atomic
// Counter/Gauge/Histogram types as the unlabeled registry, so hot paths that
// cache the series pointer pay no lookup at all.

// Gauge is a settable instrument (current value, not monotone). Unlike
// Counter it is NOT gated on Enabled(): gauges track states (tenant count,
// in-flight requests) whose bookkeeping must not drift with the telemetry
// switch — a request admitted while disabled still has to decrement on the
// way out.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// labelSep joins label values into a series key; 0x1f (ASCII unit separator)
// cannot collide with printable label values' own bytes ambiguously enough to
// matter for our controlled label sets (tenant names are admission-checked,
// endpoints and statuses are program constants).
const labelSep = "\x1f"

func seriesKey(vec string, keys, values []string) string {
	if len(values) != len(keys) {
		panic(fmt.Sprintf("telemetry: %s expects %d label values %v, got %d",
			vec, len(keys), keys, len(values)))
	}
	return strings.Join(values, labelSep)
}

// series pairs one value tuple with its instrument.
type series[T any] struct {
	values []string
	inst   *T
}

// vec is the shared shape of CounterVec/GaugeVec/HistogramVec.
type vec[T any] struct {
	name   string
	help   string
	keys   []string
	mu     sync.Mutex
	series map[string]*series[T]
}

func newVec[T any](name, help string, keys []string) *vec[T] {
	return &vec[T]{name: name, help: help, keys: keys, series: make(map[string]*series[T])}
}

func (v *vec[T]) with(values ...string) *T {
	k := seriesKey(v.name, v.keys, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	s, ok := v.series[k]
	if !ok {
		s = &series[T]{values: append([]string(nil), values...), inst: new(T)}
		v.series[k] = s
	}
	return s.inst
}

// snapshot returns the series sorted by value tuple for deterministic
// exposition output.
func (v *vec[T]) snapshot() []*series[T] {
	v.mu.Lock()
	out := make([]*series[T], 0, len(v.series))
	for _, s := range v.series {
		out = append(out, s)
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].values, labelSep) < strings.Join(out[j].values, labelSep)
	})
	return out
}

// CounterVec is a counter family with fixed label keys.
type CounterVec struct{ *vec[Counter] }

// With returns the counter for the given label values (one per key, in key
// order), creating it on first use. Panics on arity mismatch.
func (v CounterVec) With(values ...string) *Counter { return v.with(values...) }

// GaugeVec is a gauge family with fixed label keys.
type GaugeVec struct{ *vec[Gauge] }

// With returns the gauge for the given label values; see CounterVec.With.
func (v GaugeVec) With(values ...string) *Gauge { return v.with(values...) }

// HistogramVec is a histogram family with fixed label keys.
type HistogramVec struct{ *vec[Histogram] }

// With returns the histogram for the given label values; see
// CounterVec.With.
func (v HistogramVec) With(values ...string) *Histogram { return v.with(values...) }

// LabeledRegistry is a named collection of labeled instrument families,
// get-or-create like Registry. Re-declaring a family with different label
// keys panics: a family's schema is fixed for the life of the process, and a
// silent second schema would corrupt the exposition.
type LabeledRegistry struct {
	mu       sync.Mutex
	counters map[string]CounterVec
	gauges   map[string]GaugeVec
	hists    map[string]HistogramVec
}

// NewLabeledRegistry returns an empty labeled registry.
func NewLabeledRegistry() *LabeledRegistry {
	return &LabeledRegistry{
		counters: make(map[string]CounterVec),
		gauges:   make(map[string]GaugeVec),
		hists:    make(map[string]HistogramVec),
	}
}

func checkKeys(name string, have, want []string) {
	if len(have) == len(want) {
		same := true
		for i := range have {
			if have[i] != want[i] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	panic(fmt.Sprintf("telemetry: family %s re-declared with keys %v (was %v)", name, want, have))
}

// CounterVec returns the registry's counter family with the given name,
// creating it with the given help text and label keys on first use.
func (r *LabeledRegistry) CounterVec(name, help string, keys ...string) CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counters[name]
	if !ok {
		v = CounterVec{newVec[Counter](name, help, append([]string(nil), keys...))}
		r.counters[name] = v
		return v
	}
	checkKeys(name, v.keys, keys)
	return v
}

// GaugeVec returns the registry's gauge family with the given name; see
// CounterVec.
func (r *LabeledRegistry) GaugeVec(name, help string, keys ...string) GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gauges[name]
	if !ok {
		v = GaugeVec{newVec[Gauge](name, help, append([]string(nil), keys...))}
		r.gauges[name] = v
		return v
	}
	checkKeys(name, v.keys, keys)
	return v
}

// HistogramVec returns the registry's histogram family with the given name;
// see CounterVec.
func (r *LabeledRegistry) HistogramVec(name, help string, keys ...string) HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.hists[name]
	if !ok {
		v = HistogramVec{newVec[Histogram](name, help, append([]string(nil), keys...))}
		r.hists[name] = v
		return v
	}
	checkKeys(name, v.keys, keys)
	return v
}

// familyNames returns the sorted names of every family of one kind, for
// deterministic exposition order.
func (r *LabeledRegistry) familyNames() (counters, gauges, hists []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for n := range r.counters {
		counters = append(counters, n)
	}
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	for n := range r.hists {
		hists = append(hists, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return
}
