package telemetry

import (
	"context"
	"sync"
	"testing"
)

func TestParseTraceIDRoundTrip(t *testing.T) {
	for _, id := range []uint64{0, 1, 0xdeadbeef, ^uint64(0), 0x0123456789abcdef} {
		s := TraceIDString(id)
		if len(s) != 16 {
			t.Fatalf("TraceIDString(%d) = %q, want 16 hex digits", id, s)
		}
		got, ok := ParseTraceID(s)
		if !ok || got != id {
			t.Errorf("ParseTraceID(%q) = %d, %v; want %d, true", s, got, ok, id)
		}
	}
	for _, bad := range []string{"", "xyz", "0123456789abcde", "0123456789abcdef0", "0123456789abcdeg"} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
	// Uppercase hex parses to the same ID.
	if got, ok := ParseTraceID("DEADBEEF00000000"); !ok || got != 0xdeadbeef00000000 {
		t.Errorf("uppercase parse = %x, %v", got, ok)
	}
}

func TestSampleTraceDeterministicAndCalibrated(t *testing.T) {
	if !SampleTrace(42, 1.0) || SampleTrace(42, 0.0) {
		t.Fatal("rate 1 must always sample, rate 0 never")
	}
	// Deterministic: same ID, same decision.
	for id := uint64(0); id < 100; id++ {
		if SampleTrace(id, 0.3) != SampleTrace(id, 0.3) {
			t.Fatalf("SampleTrace(%d, 0.3) not deterministic", id)
		}
	}
	// Calibrated: over sequential IDs (the worst, lowest-entropy case) the
	// hit rate should land near the requested rate.
	const n = 100_000
	hits := 0
	for id := uint64(0); id < n; id++ {
		if SampleTrace(id, 0.1) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.08 || frac > 0.12 {
		t.Errorf("rate 0.1 sampled %.4f of sequential IDs", frac)
	}
	// Monotone in rate for a fixed ID: sampled at r implies sampled at r' > r.
	for id := uint64(0); id < 1000; id++ {
		if SampleTrace(id, 0.2) && !SampleTrace(id, 0.8) {
			t.Fatalf("id %d sampled at 0.2 but not 0.8", id)
		}
	}
}

func TestSpanTreeParentChildLinks(t *testing.T) {
	withEnabled(t, func() {
		ResetRecentTraces()
		defer ResetRecentTraces()
		const id = uint64(0xabcdef0123456789)
		ctx := WithTrace(context.Background(), id, true)
		if tc, ok := TraceFrom(ctx); !ok || tc.TraceID != id || !tc.Sampled || tc.SpanID != 0 {
			t.Fatalf("TraceFrom = %+v, %v", tc, ok)
		}
		rctx, root := Start(ctx, "http.topk")
		if tc, _ := TraceFrom(rctx); tc.SpanID == 0 {
			t.Fatal("root span did not become the context's open span")
		}
		actx, admission := Start(rctx, "admission")
		admission.End()
		ectx, engine := Start(rctx, "engine.medrank")
		engine.SetAttr("sequential", 123)
		engine.SetAttr("random", 4)
		_, inner := Start(ectx, "engine.inner")
		inner.End()
		engine.End()
		_ = actx
		root.End()
		tr, ok := FinishTrace(ctx, TraceMeta{Tenant: "acme", Endpoint: "topk", Status: 200})
		if !ok {
			t.Fatal("FinishTrace found no sampled trace")
		}
		if tr.TraceID != TraceIDString(id) || tr.Tenant != "acme" || tr.Endpoint != "topk" || tr.Status != 200 {
			t.Fatalf("trace meta = %+v", tr)
		}
		if len(tr.Spans) != 4 {
			t.Fatalf("got %d spans, want 4: %+v", len(tr.Spans), tr.Spans)
		}
		rootRec, ok := tr.Root()
		if !ok || rootRec.Name != "http.topk" {
			t.Fatalf("root = %+v, %v", rootRec, ok)
		}
		kids := tr.Children(rootRec.SpanID)
		if len(kids) != 2 {
			t.Fatalf("root has %d children, want 2 (admission, engine): %+v", len(kids), kids)
		}
		names := map[string]SpanRecord{}
		for _, k := range kids {
			names[k.Name] = k
		}
		if _, ok := names["admission"]; !ok {
			t.Error("missing admission child")
		}
		eng, ok := names["engine.medrank"]
		if !ok {
			t.Fatal("missing engine child")
		}
		if eng.Attrs["sequential"] != 123 || eng.Attrs["random"] != 4 {
			t.Errorf("engine attrs = %v", eng.Attrs)
		}
		if grand := tr.Children(eng.SpanID); len(grand) != 1 || grand[0].Name != "engine.inner" {
			t.Errorf("engine children = %+v", grand)
		}
		// Retrievable from the recent-traces buffer by hex ID.
		got, ok := FindTrace(TraceIDString(id))
		if !ok || len(got.Spans) != 4 {
			t.Fatalf("FindTrace = %+v, %v", got, ok)
		}
		// Ring-buffer events carry the same linkage.
		found := false
		for _, e := range TraceEvents() {
			if e.Name == "engine.medrank" && e.TraceID == TraceIDString(id) {
				found = true
				if e.ParentID != rootRec.SpanID {
					t.Errorf("ring event parent = %d, want %d", e.ParentID, rootRec.SpanID)
				}
			}
		}
		if !found {
			t.Error("engine span missing from ring buffer with trace linkage")
		}
	})
}

func TestUnsampledTraceCollectsNothing(t *testing.T) {
	withEnabled(t, func() {
		ResetRecentTraces()
		defer ResetRecentTraces()
		ctx := WithTrace(context.Background(), 7, false)
		sctx, sp := Start(ctx, "unsampled.work")
		_, inner := Start(sctx, "unsampled.inner")
		inner.End()
		sp.End()
		if _, ok := FinishTrace(ctx, TraceMeta{}); ok {
			t.Fatal("unsampled trace finished ok")
		}
		if got := RecentTraces(); len(got) != 0 {
			t.Fatalf("unsampled request left %d traces", len(got))
		}
		if tc, ok := TraceFrom(sctx); !ok || tc.TraceID != 7 || tc.Sampled {
			t.Errorf("unsampled TraceFrom = %+v, %v", tc, ok)
		}
	})
}

func TestRecentTracesCapacityOldestEvicted(t *testing.T) {
	withEnabled(t, func() {
		SetRecentTraceCapacity(4)
		defer SetRecentTraceCapacity(defaultRecentTraceCap)
		for i := uint64(1); i <= 10; i++ {
			ctx := WithTrace(context.Background(), i, true)
			_, sp := Start(ctx, "cap.test")
			sp.End()
			FinishTrace(ctx, TraceMeta{Endpoint: "t"})
		}
		got := RecentTraces()
		if len(got) != 4 {
			t.Fatalf("retained %d traces, want 4", len(got))
		}
		for i, tr := range got {
			want := TraceIDString(uint64(7 + i))
			if tr.TraceID != want {
				t.Errorf("trace[%d] = %s, want %s", i, tr.TraceID, want)
			}
		}
		if _, ok := FindTrace(TraceIDString(1)); ok {
			t.Error("evicted trace still findable")
		}
	})
}

// TestFinishTraceConcurrentSpans exercises the collector under fan-out: one
// request's spans recorded from many goroutines (run with -race).
func TestFinishTraceConcurrentSpans(t *testing.T) {
	withEnabled(t, func() {
		ResetRecentTraces()
		defer ResetRecentTraces()
		ctx := WithTrace(context.Background(), 99, true)
		rctx, root := Start(ctx, "fanout.root")
		var wg sync.WaitGroup
		const workers = 8
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					_, sp := Start(rctx, "fanout.worker")
					sp.SetAttr("i", int64(i))
					sp.End()
				}
			}()
		}
		wg.Wait()
		root.End()
		tr, ok := FinishTrace(ctx, TraceMeta{})
		if !ok || len(tr.Spans) != workers*50+1 {
			t.Fatalf("got %d spans, want %d", len(tr.Spans), workers*50+1)
		}
		rootRec, _ := tr.Root()
		if got := len(tr.Children(rootRec.SpanID)); got != workers*50 {
			t.Errorf("root has %d children, want %d", got, workers*50)
		}
		// Span IDs unique.
		ids := map[uint64]bool{}
		for _, s := range tr.Spans {
			if ids[s.SpanID] {
				t.Fatalf("duplicate span ID %d", s.SpanID)
			}
			ids[s.SpanID] = true
		}
	})
}

// TestTraceEventsDeepCopiesAttrs is the satellite regression for the ring
// buffer aliasing bug: readers of TraceEvents must be able to mutate the
// returned events (attribute maps included) while writers keep recording.
// Run with -race to make aliasing fail loudly.
func TestTraceEventsDeepCopiesAttrs(t *testing.T) {
	withEnabled(t, func() {
		ResetTrace()
		defer ResetTrace()
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					ctx := WithTrace(context.Background(), uint64(w*1_000_000+i), true)
					_, sp := Start(ctx, "copy.writer")
					sp.SetAttr("i", int64(i))
					sp.SetAttr("w", int64(w))
					sp.End()
					FinishTrace(ctx, TraceMeta{})
				}
			}(w)
		}
		for r := 0; r < 4; r++ {
			for _, e := range TraceEvents() {
				// Mutating the returned event must never race with writers.
				if e.Attrs != nil {
					e.Attrs["mutated"] = 1
					delete(e.Attrs, "i")
				}
			}
			for _, tr := range RecentTraces() {
				for i := range tr.Spans {
					if tr.Spans[i].Attrs != nil {
						tr.Spans[i].Attrs["mutated"] = 1
					}
					tr.Spans[i].Name = "clobbered"
				}
			}
		}
		close(stop)
		wg.Wait()
		ResetRecentTraces()
	})
}
