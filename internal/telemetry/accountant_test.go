package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestAccountantCountsWithoutTelemetry(t *testing.T) {
	// Access accounting is part of the engines' semantics: it must count
	// even when gated telemetry is disabled.
	was := Enabled()
	Disable()
	defer func() {
		if was {
			Enable()
		}
	}()
	a := NewAccessAccountant(3)
	if a.Lists() != 3 {
		t.Fatalf("Lists = %d, want 3", a.Lists())
	}
	a.Sequential(0)
	a.Sequential(0)
	a.Sequential(2)
	a.BucketIO(0)
	a.Random(1)
	a.Random(1)
	a.Random(1)
	r := a.Report()
	if r.Sequential != 3 || r.Random != 3 || r.BucketIOs != 1 {
		t.Errorf("report = %+v, want 3 sequential, 3 random, 1 bucket I/O", r)
	}
	if r.MaxDepth != 2 {
		t.Errorf("max depth = %d, want 2", r.MaxDepth)
	}
	if r.PerList[0] != 2 || r.PerList[1] != 0 || r.PerList[2] != 1 {
		t.Errorf("per-list = %v", r.PerList)
	}
	if r.RandomPerList[1] != 3 {
		t.Errorf("random per-list = %v", r.RandomPerList)
	}
	if a.SequentialIn(0) != 2 {
		t.Errorf("SequentialIn(0) = %d, want 2", a.SequentialIn(0))
	}
}

func TestAccountantConcurrent(t *testing.T) {
	a := NewAccessAccountant(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Sequential(w % 4)
				a.Random((w + 1) % 4)
			}
		}(w)
	}
	wg.Wait()
	r := a.Report()
	if r.Sequential != 8000 || r.Random != 8000 {
		t.Errorf("sequential = %d, random = %d, want 8000 each", r.Sequential, r.Random)
	}
}

func TestMiddlewareCostAndOptimality(t *testing.T) {
	a := NewAccessAccountant(2)
	for i := 0; i < 10; i++ {
		a.Sequential(0)
	}
	for i := 0; i < 5; i++ {
		a.Random(1)
	}
	r := a.Report()
	if got := r.MiddlewareCost(1, 3); got != 10+15 {
		t.Errorf("cost = %d, want 25", got)
	}
	if got := r.OptimalityRatio(5); math.Abs(got-3) > 1e-12 {
		t.Errorf("ratio = %v, want 3", got)
	}
	if got := r.OptimalityRatio(0); got != 0 {
		t.Errorf("ratio with zero bound = %v, want 0", got)
	}
}

func TestAccountantFailuresAndRetries(t *testing.T) {
	// Fault accounting shares the always-on regime of access counts: the
	// retry layer reports through it whether or not telemetry is enabled.
	a := NewAccessAccountant(3)
	a.Failure(0)
	a.Failure(0)
	a.Failure(2)
	a.Retry(0)
	a.Retry(2)
	r := a.Report()
	if r.Failed != 3 || r.Retried != 2 {
		t.Errorf("failed = %d, retried = %d, want 3 and 2", r.Failed, r.Retried)
	}
	if r.FailedPerList[0] != 2 || r.FailedPerList[1] != 0 || r.FailedPerList[2] != 1 {
		t.Errorf("failed per-list = %v", r.FailedPerList)
	}
	if r.RetriedPerList[0] != 1 || r.RetriedPerList[2] != 1 {
		t.Errorf("retried per-list = %v", r.RetriedPerList)
	}
	// Failures and retries are bookkeeping, not accesses: they must not
	// leak into the middleware cost model.
	if r.Sequential != 0 || r.Random != 0 || r.MiddlewareCost(1, 1) != 0 {
		t.Errorf("fault counts leaked into access counts: %+v", r)
	}
}
