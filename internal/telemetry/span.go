package telemetry

import (
	"context"
	"runtime/pprof"
	"sync"
	"time"
)

// Event is one completed span in the trace ring buffer.
type Event struct {
	// Name is the span name ("aggregate.kemeny_dp", "db.topk", ...).
	Name string `json:"name"`
	// Start is the span's wall-clock start time.
	Start time.Time `json:"start"`
	// DurationNs is the span's duration in nanoseconds.
	DurationNs int64 `json:"duration_ns"`
	// TraceID is the owning request's hex trace ID; empty for spans recorded
	// outside a sampled request.
	TraceID string `json:"trace_id,omitempty"`
	// SpanID and ParentID link the span into its request's tree; 0 outside a
	// sampled request (and ParentID 0 marks a trace root).
	SpanID   uint64 `json:"span_id,omitempty"`
	ParentID uint64 `json:"parent_id,omitempty"`
	// Attrs carries the integer attributes attached via Span.SetAttr.
	Attrs map[string]int64 `json:"attrs,omitempty"`
}

// traceCap bounds the trace ring buffer: the most recent traceCap completed
// spans are retained, older ones are overwritten in place.
const traceCap = 1024

type traceRing struct {
	mu    sync.Mutex
	buf   [traceCap]Event
	next  int
	total int64
}

var trace traceRing

func (t *traceRing) record(e Event) {
	t.mu.Lock()
	t.buf[t.next] = e
	t.next = (t.next + 1) % traceCap
	t.total++
	t.mu.Unlock()
}

// TraceEvents returns the retained completed spans, oldest first. The events
// are deep copies (attribute maps included), so callers may read or mutate
// them without racing against concurrent span recording.
func TraceEvents() []Event {
	trace.mu.Lock()
	defer trace.mu.Unlock()
	n := trace.total
	if n > traceCap {
		n = traceCap
	}
	out := make([]Event, 0, n)
	start := 0
	if trace.total > traceCap {
		start = trace.next
	}
	for i := int64(0); i < n; i++ {
		e := trace.buf[(start+int(i))%traceCap]
		e.Attrs = copyAttrs(e.Attrs)
		out = append(out, e)
	}
	return out
}

// ResetTrace clears the trace ring buffer.
func ResetTrace() {
	trace.mu.Lock()
	trace.next = 0
	trace.total = 0
	trace.mu.Unlock()
}

// Span is one timed region of a pipeline. The zero Span is the disabled
// span: End is a no-op. Spans are values, so starting and ending one on the
// disabled path allocates nothing.
type Span struct {
	name  string
	start time.Time
	prev  context.Context // goroutine labels to restore at End

	// Trace linkage; zero outside a sampled request.
	rt       *requestTrace
	spanID   uint64
	parentID uint64
	attrs    map[string]int64
}

// Start opens a span: the returned context (and the calling goroutine, until
// End) carries the pprof label "span"=name, so CPU profiles attribute
// samples inside the span to the named phase. When the context carries a
// sampled trace (WithTrace), the span additionally joins the request's span
// tree — it is assigned a span ID, its parent is the context's innermost
// open span, and the returned context makes it the parent of any span
// started beneath it. When telemetry is disabled the context is returned
// unchanged and the zero Span is returned.
func Start(ctx context.Context, name string) (context.Context, Span) {
	if !enabled.Load() {
		return ctx, Span{}
	}
	sp := Span{name: name, start: time.Now(), prev: ctx}
	lctx := pprof.WithLabels(ctx, pprof.Labels("span", name))
	if st, ok := ctx.Value(traceCtxKey{}).(*traceState); ok && st.rt != nil {
		sp.rt = st.rt
		sp.parentID = st.SpanID
		sp.spanID = st.rt.nextID.Add(1)
		child := &traceState{TraceContext: st.TraceContext, rt: st.rt}
		child.SpanID = sp.spanID
		lctx = context.WithValue(lctx, traceCtxKey{}, child)
	}
	pprof.SetGoroutineLabels(lctx)
	return lctx, sp
}

// StartSpan is Start without a caller context, for instrumenting functions
// that do not take one.
func StartSpan(name string) Span {
	_, s := Start(context.Background(), name)
	return s
}

// SetAttr attaches an integer attribute to the span, surfaced in both the
// ring buffer event and the request's span tree at End. No-op on the zero
// Span. Not safe for concurrent use on one Span (a span belongs to the
// goroutine that started it).
func (s *Span) SetAttr(key string, v int64) {
	if s.prev == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]int64, 4)
	}
	s.attrs[key] = v
}

// End closes the span: the event is appended to the trace ring buffer, the
// duration is recorded in the default registry's "span.<name>" histogram,
// the goroutine's pprof labels are restored, and — inside a sampled request —
// the span is appended to the request's span tree. No-op on the zero Span.
func (s Span) End() {
	if s.prev == nil {
		return
	}
	d := time.Since(s.start)
	e := Event{Name: s.name, Start: s.start, DurationNs: d.Nanoseconds(), Attrs: s.attrs}
	if s.rt != nil {
		e.TraceID = TraceIDString(s.rt.traceID)
		e.SpanID = s.spanID
		e.ParentID = s.parentID
		s.rt.append(SpanRecord{
			SpanID:     s.spanID,
			ParentID:   s.parentID,
			Name:       s.name,
			Start:      s.start,
			DurationNs: d.Nanoseconds(),
			Attrs:      s.attrs,
		})
	}
	trace.record(e)
	GetHistogram("span." + s.name).Observe(d.Nanoseconds())
	pprof.SetGoroutineLabels(s.prev)
}

// Do runs f with the pprof label key=value applied to the goroutine (and to
// the context f receives), so CPU profile samples taken inside f are
// attributed to the labeled kernel. When telemetry is disabled f runs with
// the caller's context unchanged. Unlike Start/End, Do records no trace
// event: it is meant for long-lived worker loops where per-call spans would
// flood the ring buffer.
func Do(ctx context.Context, key, value string, f func(ctx context.Context)) {
	if !enabled.Load() {
		f(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels(key, value), f)
}
