package telemetry

import (
	"context"
	"runtime/pprof"
	"sync"
	"time"
)

// Event is one completed span in the trace ring buffer.
type Event struct {
	// Name is the span name ("aggregate.kemeny_dp", "db.topk", ...).
	Name string `json:"name"`
	// Start is the span's wall-clock start time.
	Start time.Time `json:"start"`
	// DurationNs is the span's duration in nanoseconds.
	DurationNs int64 `json:"duration_ns"`
}

// traceCap bounds the trace ring buffer: the most recent traceCap completed
// spans are retained, older ones are overwritten in place.
const traceCap = 1024

type traceRing struct {
	mu    sync.Mutex
	buf   [traceCap]Event
	next  int
	total int64
}

var trace traceRing

func (t *traceRing) record(e Event) {
	t.mu.Lock()
	t.buf[t.next] = e
	t.next = (t.next + 1) % traceCap
	t.total++
	t.mu.Unlock()
}

// TraceEvents returns the retained completed spans, oldest first.
func TraceEvents() []Event {
	trace.mu.Lock()
	defer trace.mu.Unlock()
	n := trace.total
	if n > traceCap {
		n = traceCap
	}
	out := make([]Event, 0, n)
	start := 0
	if trace.total > traceCap {
		start = trace.next
	}
	for i := int64(0); i < n; i++ {
		out = append(out, trace.buf[(start+int(i))%traceCap])
	}
	return out
}

// ResetTrace clears the trace ring buffer.
func ResetTrace() {
	trace.mu.Lock()
	trace.next = 0
	trace.total = 0
	trace.mu.Unlock()
}

// Span is one timed region of a pipeline. The zero Span is the disabled
// span: End is a no-op. Spans are values, so starting and ending one on the
// disabled path allocates nothing.
type Span struct {
	name  string
	start time.Time
	prev  context.Context // goroutine labels to restore at End
}

// Start opens a span: the returned context (and the calling goroutine, until
// End) carries the pprof label "span"=name, so CPU profiles attribute
// samples inside the span to the named phase. When telemetry is disabled the
// context is returned unchanged and the zero Span is returned.
func Start(ctx context.Context, name string) (context.Context, Span) {
	if !enabled.Load() {
		return ctx, Span{}
	}
	lctx := pprof.WithLabels(ctx, pprof.Labels("span", name))
	pprof.SetGoroutineLabels(lctx)
	return lctx, Span{name: name, start: time.Now(), prev: ctx}
}

// StartSpan is Start without a caller context, for instrumenting functions
// that do not take one.
func StartSpan(name string) Span {
	_, s := Start(context.Background(), name)
	return s
}

// End closes the span: the event is appended to the trace ring buffer, the
// duration is recorded in the default registry's "span.<name>" histogram,
// and the goroutine's pprof labels are restored. No-op on the zero Span.
func (s Span) End() {
	if s.prev == nil {
		return
	}
	d := time.Since(s.start)
	trace.record(Event{Name: s.name, Start: s.start, DurationNs: d.Nanoseconds()})
	GetHistogram("span." + s.name).Observe(d.Nanoseconds())
	pprof.SetGoroutineLabels(s.prev)
}

// Do runs f with the pprof label key=value applied to the goroutine (and to
// the context f receives), so CPU profile samples taken inside f are
// attributed to the labeled kernel. When telemetry is disabled f runs with
// the caller's context unchanged. Unlike Start/End, Do records no trace
// event: it is meant for long-lived worker loops where per-call spans would
// flood the ring buffer.
func Do(ctx context.Context, key, value string, f func(ctx context.Context)) {
	if !enabled.Load() {
		f(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels(key, value), f)
}
