package telemetry

import (
	"encoding/json"
	"expvar"
	"testing"
)

// expvarJSON fetches one published expvar by name and decodes its JSON.
func expvarJSON(t *testing.T, name string) map[string]any {
	t.Helper()
	v := expvar.Get(name)
	if v == nil {
		t.Fatalf("expvar %q not published", name)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(v.String()), &out); err != nil {
		t.Fatalf("expvar %q is not valid JSON: %v", name, err)
	}
	return out
}

func TestPublishExpvarNamedMultiRegistry(t *testing.T) {
	// The default registry publishes under "rankties" with the trace ring;
	// a second, component-owned registry publishes under a namespaced name
	// without colliding. Both survive repeat publication.
	PublishExpvar()
	PublishExpvar() // idempotent

	reg := NewRegistry()
	reg.Counter("test.expvar.counter").ForceAdd(7)
	PublishExpvarNamed("rankties.test", reg)
	PublishExpvarNamed("rankties.test", reg) // idempotent, no panic

	doc := expvarJSON(t, "rankties")
	if _, ok := doc["trace"]; !ok {
		t.Errorf("default publication should carry the trace ring, got keys %v", doc)
	}

	named := expvarJSON(t, "rankties.test")
	if _, ok := named["trace"]; ok {
		t.Errorf("namespaced publication of a non-default registry must not carry the global trace")
	}
	tel, ok := named["telemetry"].(map[string]any)
	if !ok {
		t.Fatalf("namespaced publication missing telemetry snapshot: %v", named)
	}
	counters, _ := tel["counters"].(map[string]any)
	if got := counters["test.expvar.counter"]; got != float64(7) {
		t.Errorf("namespaced registry counter = %v, want 7", got)
	}
}

func TestPublishExpvarNamedFirstWins(t *testing.T) {
	// Re-publishing an already-claimed name with a different registry is a
	// no-op: the first registration owns the name for the process lifetime.
	a := NewRegistry()
	a.Counter("firstwins.c").ForceAdd(1)
	PublishExpvarNamed("rankties.firstwins", a)

	b := NewRegistry()
	b.Counter("firstwins.c").ForceAdd(99)
	PublishExpvarNamed("rankties.firstwins", b) // must not panic or replace

	doc := expvarJSON(t, "rankties.firstwins")
	tel := doc["telemetry"].(map[string]any)
	counters, _ := tel["counters"].(map[string]any)
	if got := counters["firstwins.c"]; got != float64(1) {
		t.Errorf("second publication replaced the first: got %v, want 1", got)
	}
}
