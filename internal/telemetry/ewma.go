package telemetry

import (
	"math"
	"sync/atomic"
)

// EWMA is a lock-free exponentially weighted moving average. It is always-on
// (not gated by Enable) because admission control consumes it on the request
// hot path: a shedding decision cannot depend on whether an operator turned
// profiling instruments on.
//
// The value is stored as float64 bits in one atomic word and updated by CAS;
// concurrent observers may each fold their sample into the same prior value,
// which for a moving average is an acceptable (and bounded) race: every
// sample is folded exactly once against *some* recent state.
type EWMA struct {
	bits  atomic.Uint64
	alpha float64
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]: each
// observation contributes alpha of the new value. Out-of-range alphas are
// clamped to 0.2.
func NewEWMA(alpha float64) *EWMA {
	if !(alpha > 0 && alpha <= 1) {
		alpha = 0.2
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample in. The first sample seeds the average directly.
func (e *EWMA) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	for {
		old := e.bits.Load()
		var next float64
		if old == 0 {
			next = v
		} else {
			prev := math.Float64frombits(old)
			next = prev + e.alpha*(v-prev)
		}
		nb := math.Float64bits(next)
		if nb == 0 {
			// A true zero average is indistinguishable from "unset"; nudge to
			// the smallest denormal so Value() keeps reporting it as seeded.
			nb = 1
		}
		if e.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// Value returns the current average, or 0 when nothing has been observed.
func (e *EWMA) Value() float64 {
	b := e.bits.Load()
	if b == 0 {
		return 0
	}
	return math.Float64frombits(b)
}
