package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestPromNameSanitize(t *testing.T) {
	cases := map[string]string{
		"span.topk.medrank":  "span_topk_medrank",
		"cache.distance-hit": "cache_distance_hit",
		"ok_name:total":      "ok_name:total",
		"9lives":             "_9lives",
		"a9":                 "a9",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLabelValueEscaping(t *testing.T) {
	got := formatLabels([]string{"tenant"}, []string{"a\"b\\c\nd"})
	want := `{tenant="a\"b\\c\nd"}`
	if got != want {
		t.Errorf("formatLabels = %s, want %s", got, want)
	}
	// And the parser reverses it.
	labels, rest, err := parseLabels(strings.TrimPrefix(got, "{"))
	if err != nil || rest != "" || labels["tenant"] != "a\"b\\c\nd" {
		t.Errorf("parseLabels round trip = %v, %q, %v", labels, rest, err)
	}
}

func TestRegistryWritePrometheusLintsClean(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		r.Counter("queries.total").Add(17)
		h := r.Histogram("latency.ns")
		for _, v := range []int64{0, 1, 3, 7, 100, 5000, 5000, 1 << 20} {
			h.Observe(v)
		}
		var b strings.Builder
		if err := r.WritePrometheus(&b, "rankties."); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		if !strings.Contains(out, "rankties_queries_total 17") {
			t.Errorf("counter sample missing:\n%s", out)
		}
		if !strings.Contains(out, "# TYPE rankties_latency_ns histogram") {
			t.Errorf("histogram TYPE missing:\n%s", out)
		}
		if probs := LintExposition(strings.NewReader(out)); len(probs) != 0 {
			t.Fatalf("lint problems: %v\n%s", probs, out)
		}
		// Base-2 mapping: v=0 lands in le="0"; v in [2,4) under le="3".
		exp, _ := ParseExposition(strings.NewReader(out))
		buckets, sum, count, ok := exp.Histogram("rankties_latency_ns", nil)
		if !ok {
			t.Fatal("histogram not parsed back")
		}
		if count != 8 || sum != 0+1+3+7+100+5000+5000+(1<<20) {
			t.Errorf("count=%v sum=%v", count, sum)
		}
		if buckets[0] != 1 {
			t.Errorf("le=0 cumulative = %v, want 1 (just v=0)", buckets[0])
		}
		if buckets[1] != 2 {
			t.Errorf("le=1 cumulative = %v, want 2", buckets[1])
		}
		if buckets[3] != 3 {
			t.Errorf("le=3 cumulative = %v, want 3", buckets[3])
		}
		if buckets[math.Inf(1)] != 8 {
			t.Errorf("+Inf = %v, want 8", buckets[math.Inf(1)])
		}
	})
}

func TestLabeledRegistryWritePrometheusLintsClean(t *testing.T) {
	withEnabled(t, func() {
		lr := NewLabeledRegistry()
		req := lr.CounterVec("rankserve_requests_total", "Requests by tenant, endpoint, status.", "tenant", "endpoint", "status")
		req.With("acme", "topk", "200").Add(3)
		req.With("acme", "topk", "400").Add(1)
		req.With("beta", "aggregate", "200").Add(2)
		lr.GaugeVec("rankserve_tenants", "Live tenants.").With().Set(2)
		lat := lr.HistogramVec("rankserve_request_latency_ns", "Request latency.", "tenant", "endpoint")
		for i := int64(1); i <= 100; i++ {
			lat.With("acme", "topk").Observe(i * 1000)
		}
		lat.With("beta", "aggregate").Observe(5)

		var b strings.Builder
		if err := lr.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		if probs := LintExposition(strings.NewReader(out)); len(probs) != 0 {
			t.Fatalf("lint problems: %v\n%s", probs, out)
		}
		for _, want := range []string{
			`rankserve_requests_total{tenant="acme",endpoint="topk",status="200"} 3`,
			`rankserve_requests_total{tenant="beta",endpoint="aggregate",status="200"} 2`,
			`rankserve_tenants 2`,
			`rankserve_request_latency_ns_count{tenant="acme",endpoint="topk"} 100`,
		} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q in:\n%s", want, out)
			}
		}
		// Histogram readable per label set, quantile consistent with the
		// in-process upper-bound quantile.
		exp, _ := ParseExposition(strings.NewReader(out))
		buckets, _, count, ok := exp.Histogram("rankserve_request_latency_ns", map[string]string{"tenant": "acme", "endpoint": "topk"})
		if !ok || count != 100 {
			t.Fatalf("acme histogram: ok=%v count=%v", ok, count)
		}
		gotP50 := QuantileFromBuckets(buckets, 0.50)
		wantP50 := float64(lat.With("acme", "topk").Quantile(0.50))
		// Both are bucket upper edges; the scrape-side edge is the raw
		// 2^i - 1 while the in-process one clamps to the observed max, so
		// they agree except at the top bucket.
		if gotP50 < wantP50 {
			t.Errorf("scrape p50 %v < in-process p50 %v", gotP50, wantP50)
		}
	})
}

func TestLintCatchesMalformedExpositions(t *testing.T) {
	cases := map[string]string{
		"duplicate TYPE": `# TYPE x counter
# TYPE x counter
x 1
`,
		"duplicate series": `# TYPE x counter
x{a="1"} 1
x{a="1"} 2
`,
		"non-monotone buckets": `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 9
h_count 5
`,
		"missing +Inf": `# TYPE h histogram
h_bucket{le="1"} 5
h_sum 9
h_count 5
`,
		"inf != count": `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="+Inf"} 5
h_sum 9
h_count 6
`,
		"descending le": `# TYPE h histogram
h_bucket{le="3"} 1
h_bucket{le="1"} 1
h_bucket{le="+Inf"} 1
h_sum 1
h_count 1
`,
		"bad label name": `x{9bad="1"} 1
`,
		"bad value": `x notanumber
`,
		"unterminated labels": `x{a="1" 1
`,
	}
	for name, body := range cases {
		if probs := LintExposition(strings.NewReader(body)); len(probs) == 0 {
			t.Errorf("%s: lint found no problems in:\n%s", name, body)
		}
	}
	// A clean hand-written exposition passes.
	clean := `# HELP x Things.
# TYPE x counter
x{a="1"} 1
x{a="2"} 2
# TYPE g gauge
g 5
# TYPE h histogram
h_bucket{le="0"} 1
h_bucket{le="7"} 4
h_bucket{le="+Inf"} 4
h_sum 12
h_count 4
`
	if probs := LintExposition(strings.NewReader(clean)); len(probs) != 0 {
		t.Errorf("clean exposition flagged: %v", probs)
	}
}

func TestVecArityAndRedeclarePanics(t *testing.T) {
	lr := NewLabeledRegistry()
	v := lr.CounterVec("x_total", "X.", "a", "b")
	mustPanic(t, "arity", func() { v.With("only-one") })
	mustPanic(t, "redeclare", func() { lr.CounterVec("x_total", "X.", "a") })
	// Same keys: get-or-create returns the same family.
	v2 := lr.CounterVec("x_total", "X.", "a", "b")
	v2.With("1", "2").ForceAdd(5)
	if got := v.With("1", "2").Value(); got != 5 {
		t.Errorf("families not shared: %d", got)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	f()
}

func TestGaugeNotGatedOnEnabled(t *testing.T) {
	was := Enabled()
	Disable()
	defer func() {
		if was {
			Enable()
		}
	}()
	var g Gauge
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Errorf("disabled gauge = %d, want 2", g.Value())
	}
}
