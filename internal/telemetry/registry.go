package telemetry

import (
	"expvar"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. Increments are gated
// on Enabled(), so a disabled counter costs one atomic load and never
// allocates; reads always return whatever was recorded while enabled.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registry name.
func (c *Counter) Name() string { return c.name }

// Inc adds one when telemetry is enabled.
func (c *Counter) Inc() {
	if enabled.Load() {
		c.v.Add(1)
	}
}

// Add adds d when telemetry is enabled.
func (c *Counter) Add(d int64) {
	if enabled.Load() {
		c.v.Add(d)
	}
}

// ForceInc adds one regardless of Enabled(). Reserve it for supervision
// events — contained panics, dropped inputs — that operators must be able to
// count after the fact even when tracing was off; ordinary hot-path
// instruments stay gated so disabled telemetry stays free.
func (c *Counter) ForceInc() { c.v.Add(1) }

// ForceAdd adds d regardless of Enabled(); see ForceInc.
func (c *Counter) ForceAdd(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// histBuckets is the fixed bucket count of a Histogram: bucket i holds
// observations v with bits.Len64(v) == i, i.e. exponential base-2 buckets
// [2^(i-1), 2^i). 65 buckets cover every non-negative int64.
const histBuckets = 65

// Histogram is a bounded, allocation-free histogram over non-negative int64
// observations (durations in nanoseconds, sizes, depths) with exponential
// base-2 buckets. Like Counter, observations are gated on Enabled().
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Name returns the histogram's registry name.
func (h *Histogram) Name() string { return h.name }

// Observe records v when telemetry is enabled. Negative values clamp to 0.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Quantile returns an upper bound on the q-quantile (q in [0, 1]) of the
// recorded observations: the upper edge of the bucket where the cumulative
// count crosses q, clamped to the observed maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := int64(q * float64(total))
	if need < 1 {
		need = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= need {
			hi := int64(1)<<uint(i) - 1 // upper edge of bucket i
			if m := h.max.Load(); hi > m {
				hi = m
			}
			return hi
		}
	}
	return h.max.Load()
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// Snapshot returns the histogram's current summary.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	return s
}

// Registry is a named collection of counters and histograms. Counter and
// Histogram get-or-create by name, so independent packages can bind package
// level instrument variables at init time and share the process-wide view.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry used by the package-level Counter and
// Histogram helpers and by PublishExpvar.
var Default = NewRegistry()

// Counter returns the registry's counter with the given name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the registry's histogram with the given name, creating
// it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// GetCounter is Counter on the default registry.
func GetCounter(name string) *Counter { return Default.Counter(name) }

// GetHistogram is Histogram on the default registry.
func GetHistogram(name string) *Histogram { return Default.Histogram(name) }

// Snapshot is a point-in-time JSON-marshalable view of a registry: counter
// values and histogram summaries keyed by name, zero-valued instruments
// omitted for compactness.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		if v := c.Value(); v != 0 {
			s.Counters[name] = v
		}
	}
	for name, h := range r.hists {
		if hs := h.Snapshot(); hs.Count != 0 {
			s.Histograms[name] = hs
		}
	}
	return s
}

// Names returns the sorted names of all registered instruments.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes every instrument in the registry. Intended for tests and for
// per-run stats in command-line tools; instruments stay registered so bound
// package variables remain valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, h := range r.hists {
		h.count.Store(0)
		h.sum.Store(0)
		h.max.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
}

// expvar publication bookkeeping. expvar.Publish panics on a duplicate name
// and has no unpublish, so each name is claimed at most once per process;
// the map records which names this package has already published.
var (
	expvarMu    sync.Mutex
	expvarNames = map[string]bool{}
)

// PublishExpvar publishes the default registry (and the trace ring buffer)
// under the expvar name "rankties", so any net/http server with the expvar
// handler mounted exposes the live snapshot at /debug/vars. Safe to call
// more than once; only the first call publishes.
func PublishExpvar() { PublishExpvarNamed("rankties", Default) }

// PublishExpvarNamed publishes a registry under an arbitrary expvar name, so
// components with their own registries coexist at /debug/vars instead of
// colliding on the one "rankties" slot: the convention is
// "rankties.<component>" (e.g. "rankties.server" for rankserve's
// endpoint-latency registry) next to the CLI-historical "rankties" for the
// process-wide Default.
//
// Constraint: expvar names are process-global and cannot be unpublished, so
// the first publication under a name wins for the life of the process —
// repeat calls with the same name are no-ops regardless of which registry
// they carry. The trace ring buffer is likewise global and is therefore
// attached only to the Default registry's publications.
func PublishExpvarNamed(name string, r *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarNames[name] {
		return
	}
	expvarNames[name] = true
	if r == Default {
		expvar.Publish(name, expvar.Func(func() any {
			return struct {
				Telemetry Snapshot `json:"telemetry"`
				Trace     []Event  `json:"trace"`
			}{Default.Snapshot(), TraceEvents()}
		}))
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		return struct {
			Telemetry Snapshot `json:"telemetry"`
		}{r.Snapshot()}
	}))
}
