package telemetry

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-scoped half of the tracing layer. The flat span
// ring buffer of span.go answers "what ran recently in this process"; the
// types here answer "what did THIS request do": a TraceContext (trace ID,
// current span ID, sampling decision) rides the context.Context through the
// service handlers into the engines, sampled requests collect their spans
// into a parent/child-linked tree, and finished trees land in a bounded
// recent-traces buffer that a server exposes at GET /debug/traces.
//
// Cost discipline: when telemetry is disabled nothing here runs at all
// (Start's enabled gate short-circuits first). When telemetry is enabled but
// a request is NOT sampled, the only added cost per span is one ctx.Value
// lookup; no per-request allocation happens beyond the TraceContext itself.
// The sampling decision is a pure function of the trace ID, so a load
// generator replaying trace IDs replays sampling exactly.

// TraceContext identifies one request's trace: the trace ID shared by every
// span of the request, the innermost open span (the parent of any span
// started next), and the sampling decision.
type TraceContext struct {
	// TraceID is the request-unique trace identifier (rendered as 16 hex
	// digits on the wire: X-Trace-Id header, access log, /debug/traces).
	TraceID uint64
	// SpanID is the innermost open span's ID; 0 before the root span opens.
	SpanID uint64
	// Sampled reports whether this request collects a span tree.
	Sampled bool
}

// traceState is what actually lives in the context: the public TraceContext
// plus the sampled request's span collector (nil when unsampled).
type traceState struct {
	TraceContext
	rt *requestTrace
}

type traceCtxKey struct{}

// WithTrace installs a trace context for one request. When sampled is true
// the returned context also carries a span collector: every Span started
// under it (directly or through child contexts) records into the request's
// span tree, to be sealed by FinishTrace.
func WithTrace(ctx context.Context, traceID uint64, sampled bool) context.Context {
	st := &traceState{TraceContext: TraceContext{TraceID: traceID, Sampled: sampled}}
	if sampled {
		st.rt = &requestTrace{traceID: traceID, start: time.Now()}
	}
	return context.WithValue(ctx, traceCtxKey{}, st)
}

// TraceFrom returns the context's trace context, ok=false when none is
// installed.
func TraceFrom(ctx context.Context) (TraceContext, bool) {
	st, ok := ctx.Value(traceCtxKey{}).(*traceState)
	if !ok {
		return TraceContext{}, false
	}
	return st.TraceContext, true
}

// TraceIDString renders a trace ID the way the wire does: 16 lowercase hex
// digits.
func TraceIDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseTraceID parses a 16-hex-digit trace ID; ok=false when s is not one.
func ParseTraceID(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	var id uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		id = id<<4 | d
	}
	return id, true
}

// SampleTrace is the deterministic sampling decision: a pure function of the
// trace ID and the rate, so a retried or replayed request (same trace ID)
// lands on the same side of the cut, and so every process in a fleet agrees
// about a propagated ID. The ID is scrambled (splitmix-style) first so
// sequential or low-entropy IDs still sample uniformly.
func SampleTrace(traceID uint64, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	x := traceID
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x%1_000_000) < rate*1_000_000
}

// SpanRecord is one completed span of a sampled request: parent/child links
// via SpanID/ParentID, plus the integer attributes the instrumented code
// attached (access totals, cache hits, ...).
type SpanRecord struct {
	SpanID     uint64           `json:"span_id"`
	ParentID   uint64           `json:"parent_id"` // 0 = root of the trace
	Name       string           `json:"name"`
	Start      time.Time        `json:"start"`
	DurationNs int64            `json:"duration_ns"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
}

// requestTrace collects the spans of one sampled request. Span IDs are
// allocated from an atomic counter; appends take the mutex because a request
// may fan out across goroutines (parallel engine phases).
type requestTrace struct {
	traceID uint64
	start   time.Time
	nextID  atomic.Uint64
	mu      sync.Mutex
	spans   []SpanRecord
}

func (rt *requestTrace) append(rec SpanRecord) {
	rt.mu.Lock()
	rt.spans = append(rt.spans, rec)
	rt.mu.Unlock()
}

// TraceMeta annotates a finished trace with the request facts that are not
// themselves spans.
type TraceMeta struct {
	Tenant   string
	Endpoint string
	Status   int
}

// Trace is one finished request's span tree, flattened: spans link to their
// parents through ParentID (0 marks the root).
type Trace struct {
	TraceID    string       `json:"trace_id"`
	Tenant     string       `json:"tenant,omitempty"`
	Endpoint   string       `json:"endpoint,omitempty"`
	Status     int          `json:"status,omitempty"`
	Start      time.Time    `json:"start"`
	DurationNs int64        `json:"duration_ns"`
	Spans      []SpanRecord `json:"spans"`
}

// Root returns the trace's root span (ParentID 0), ok=false when the trace
// recorded none (every request rim opens one, so this is a defect signal).
func (t Trace) Root() (SpanRecord, bool) {
	for _, s := range t.Spans {
		if s.ParentID == 0 {
			return s, true
		}
	}
	return SpanRecord{}, false
}

// Children returns the spans whose parent is spanID, in recording order.
func (t Trace) Children(spanID uint64) []SpanRecord {
	var out []SpanRecord
	for _, s := range t.Spans {
		if s.ParentID == spanID {
			out = append(out, s)
		}
	}
	return out
}

// FinishTrace seals the request's span collector into the recent-traces
// buffer and returns the finished trace. A context without a sampled trace
// finishes to ok=false and records nothing. Call it after the root span's
// End, from the request rim.
func FinishTrace(ctx context.Context, meta TraceMeta) (Trace, bool) {
	st, ok := ctx.Value(traceCtxKey{}).(*traceState)
	if !ok || st.rt == nil {
		return Trace{}, false
	}
	st.rt.mu.Lock()
	spans := st.rt.spans
	st.rt.spans = nil
	st.rt.mu.Unlock()
	tr := Trace{
		TraceID:    TraceIDString(st.rt.traceID),
		Tenant:     meta.Tenant,
		Endpoint:   meta.Endpoint,
		Status:     meta.Status,
		Start:      st.rt.start,
		DurationNs: time.Since(st.rt.start).Nanoseconds(),
		Spans:      spans,
	}
	recentTraces.add(tr)
	return tr, true
}

// defaultRecentTraceCap bounds the recent-traces buffer: the most recent
// finished sampled traces are retained whole (span trees included), older
// ones are overwritten in place.
const defaultRecentTraceCap = 64

type traceRingBuffer struct {
	mu    sync.Mutex
	buf   []Trace
	next  int
	total int64
}

var recentTraces = &traceRingBuffer{buf: make([]Trace, defaultRecentTraceCap)}

func (b *traceRingBuffer) add(tr Trace) {
	b.mu.Lock()
	b.buf[b.next] = tr
	b.next = (b.next + 1) % len(b.buf)
	b.total++
	b.mu.Unlock()
}

// snapshot returns the retained traces oldest-first, deep-copying span slices
// and attribute maps so callers never alias buffer-owned state.
func (b *traceRingBuffer) snapshot() []Trace {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.total
	if n > int64(len(b.buf)) {
		n = int64(len(b.buf))
	}
	start := 0
	if b.total > int64(len(b.buf)) {
		start = b.next
	}
	out := make([]Trace, 0, n)
	for i := int64(0); i < n; i++ {
		out = append(out, copyTrace(b.buf[(start+int(i))%len(b.buf)]))
	}
	return out
}

func copyTrace(tr Trace) Trace {
	spans := make([]SpanRecord, len(tr.Spans))
	for i, s := range tr.Spans {
		s.Attrs = copyAttrs(s.Attrs)
		spans[i] = s
	}
	tr.Spans = spans
	return tr
}

func copyAttrs(m map[string]int64) map[string]int64 {
	if m == nil {
		return nil
	}
	cp := make(map[string]int64, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// RecentTraces returns the retained finished traces, oldest first. The
// returned traces are deep copies; callers may mutate them freely.
func RecentTraces() []Trace { return recentTraces.snapshot() }

// FindTrace returns the most recent retained trace with the given hex trace
// ID.
func FindTrace(traceID string) (Trace, bool) {
	traces := recentTraces.snapshot()
	for i := len(traces) - 1; i >= 0; i-- {
		if traces[i].TraceID == traceID {
			return traces[i], true
		}
	}
	return Trace{}, false
}

// SetRecentTraceCapacity resizes the recent-traces buffer (minimum 1),
// discarding currently retained traces. Servers call it once at startup from
// a flag.
func SetRecentTraceCapacity(n int) {
	if n < 1 {
		n = 1
	}
	recentTraces.mu.Lock()
	recentTraces.buf = make([]Trace, n)
	recentTraces.next = 0
	recentTraces.total = 0
	recentTraces.mu.Unlock()
}

// ResetRecentTraces clears the recent-traces buffer (tests).
func ResetRecentTraces() {
	recentTraces.mu.Lock()
	for i := range recentTraces.buf {
		recentTraces.buf[i] = Trace{}
	}
	recentTraces.next = 0
	recentTraces.total = 0
	recentTraces.mu.Unlock()
}
