package telemetry

import "sync/atomic"

// AccessAccountant is the unified access accounting of the middleware cost
// model of Fagin, Lotem, and Naor ("Optimal Aggregation Algorithms for
// Middleware"): every engine that reads ranked lists — MEDRANK, TA-style
// baselines, filtered database queries — charges its sequential probes,
// bucket-granular I/Os, and random accesses to one accountant and reports
// them through one AccessReport. Counting is always on (the access cost of a
// run is an experimental result of the paper, not optional telemetry);
// counters are atomic so concurrent engines can share an accountant.
type AccessAccountant struct {
	seq     []atomic.Int64
	bucket  []atomic.Int64
	random  []atomic.Int64
	failed  []atomic.Int64
	retried []atomic.Int64
}

// NewAccessAccountant returns an accountant for the given number of lists.
func NewAccessAccountant(lists int) *AccessAccountant {
	return &AccessAccountant{
		seq:     make([]atomic.Int64, lists),
		bucket:  make([]atomic.Int64, lists),
		random:  make([]atomic.Int64, lists),
		failed:  make([]atomic.Int64, lists),
		retried: make([]atomic.Int64, lists),
	}
}

// Lists returns the number of lists the accountant tracks.
func (a *AccessAccountant) Lists() int { return len(a.seq) }

// Sequential charges one sequential access (the next entry of a sorted scan)
// to the given list.
func (a *AccessAccountant) Sequential(list int) { a.seq[list].Add(1) }

// BucketIO charges one bucket-granular I/O to the given list: an index scan
// over a few-valued attribute returns the whole run of tied rows in one I/O.
func (a *AccessAccountant) BucketIO(list int) { a.bucket[list].Add(1) }

// Random charges one random access (looking an element up by identity in a
// list, rather than scanning to it) to the given list.
func (a *AccessAccountant) Random(list int) { a.random[list].Add(1) }

// Failure charges one failed access attempt (an access that returned an
// error instead of an entry) to the given list. Fault injectors and retry
// wrappers report through this, so a chaos run's failures appear in the same
// report as its probes.
func (a *AccessAccountant) Failure(list int) { a.failed[list].Add(1) }

// Retry charges one retried access attempt to the given list: a transient
// failure that a retry policy absorbed rather than surfaced.
func (a *AccessAccountant) Retry(list int) { a.retried[list].Add(1) }

// SequentialIn returns the sequential accesses charged to one list.
func (a *AccessAccountant) SequentialIn(list int) int64 { return a.seq[list].Load() }

// AccessReport is the point-in-time JSON form of an accountant: the two
// access-mode totals of the FLN cost model plus per-list depth detail.
type AccessReport struct {
	// PerList is the number of sequential accesses charged to each list.
	PerList []int64 `json:"sequential_per_list"`
	// Sequential is the total number of sequential accesses.
	Sequential int64 `json:"sequential"`
	// MaxDepth is the deepest sequential scan into any single list.
	MaxDepth int64 `json:"max_depth"`
	// BucketPerList is the number of bucket-granular I/Os per list.
	BucketPerList []int64 `json:"bucket_ios_per_list"`
	// BucketIOs is the total number of bucket-granular I/Os.
	BucketIOs int64 `json:"bucket_ios"`
	// RandomPerList is the number of random accesses per list.
	RandomPerList []int64 `json:"random_per_list"`
	// Random is the total number of random accesses.
	Random int64 `json:"random"`
	// FailedPerList is the number of failed access attempts per list.
	FailedPerList []int64 `json:"failed_per_list,omitempty"`
	// Failed is the total number of failed access attempts.
	Failed int64 `json:"failed"`
	// RetriedPerList is the number of retried access attempts per list.
	RetriedPerList []int64 `json:"retried_per_list,omitempty"`
	// Retried is the total number of retried access attempts.
	Retried int64 `json:"retried"`
}

// Report snapshots the accountant.
func (a *AccessAccountant) Report() AccessReport {
	r := AccessReport{
		PerList:        make([]int64, len(a.seq)),
		BucketPerList:  make([]int64, len(a.bucket)),
		RandomPerList:  make([]int64, len(a.random)),
		FailedPerList:  make([]int64, len(a.failed)),
		RetriedPerList: make([]int64, len(a.retried)),
	}
	for i := range a.seq {
		v := a.seq[i].Load()
		r.PerList[i] = v
		r.Sequential += v
		if v > r.MaxDepth {
			r.MaxDepth = v
		}
		b := a.bucket[i].Load()
		r.BucketPerList[i] = b
		r.BucketIOs += b
		ra := a.random[i].Load()
		r.RandomPerList[i] = ra
		r.Random += ra
		f := a.failed[i].Load()
		r.FailedPerList[i] = f
		r.Failed += f
		rt := a.retried[i].Load()
		r.RetriedPerList[i] = rt
		r.Retried += rt
	}
	return r
}

// MiddlewareCost returns the FLN middleware cost cs*sequential + cr*random.
func (r AccessReport) MiddlewareCost(cs, cr int64) int64 {
	return cs*r.Sequential + cr*r.Random
}

// OptimalityRatio divides the report's total access count (sequential plus
// random) by a per-instance lower bound on the accesses any correct
// algorithm must make.
//
// Deprecated: this equal-weights ratio prices a random access the same as a
// sequential probe, contradicting the cost model MiddlewareCost encodes. It
// is kept for comparability with historical numbers; new code should use
// CostOptimalityRatio against a bound computed at the same (cs, cr) weights
// (topk.CertificateLowerBoundCost).
func (r AccessReport) OptimalityRatio(lowerBound int64) float64 {
	if lowerBound <= 0 {
		return 0
	}
	return float64(r.Sequential+r.Random) / float64(lowerBound)
}

// CostOptimalityRatio divides the report's middleware cost at weights
// (cs, cr) by a cost-aware per-instance lower bound computed at the same
// weights; a ratio near 1 witnesses instance optimality under that cost
// model (Theorems 30-32 of the paper). Returns 0 when the bound is not
// positive (undefined, e.g. k = 0).
func (r AccessReport) CostOptimalityRatio(cs, cr, lowerBound int64) float64 {
	if lowerBound <= 0 {
		return 0
	}
	return float64(r.MiddlewareCost(cs, cr)) / float64(lowerBound)
}
