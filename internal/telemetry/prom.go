package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for both registries.
//
// Mapping for base-2 histograms: internal bucket i holds observations v with
// bits.Len64(v) == i, i.e. the half-open range [2^(i-1), 2^i). Prometheus
// buckets are cumulative and keyed by inclusive upper bound `le`, so bucket i
// is rendered with le = 2^i - 1 (bucket 0, which holds only v == 0, gets
// le="0"). Buckets are emitted up to the highest non-empty one, then "+Inf".
// To keep each scrape internally consistent without a registry-wide lock,
// "+Inf" and `_count` are both computed as the sum of the bucket loads from
// this scrape (the atomic `count` field could be mid-update relative to the
// buckets).

// promName sanitizes an internal instrument name ("span.topk.medrank") into
// a Prometheus metric name ([a-zA-Z_:][a-zA-Z0-9_:]*): every other rune
// becomes '_', and a leading digit is prefixed with '_'.
func promName(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if c >= '0' && c <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(c)
			continue
		}
		if ok {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// formatLabels renders {k1="v1",k2="v2"} (empty string for no labels).
func formatLabels(keys, values []string) string {
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(k))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// bucketEdge returns the `le` value of internal bucket i: the inclusive
// upper bound 2^i - 1 ("0" for bucket 0).
func bucketEdge(i int) string {
	if i <= 0 {
		return "0"
	}
	return fmt.Sprintf("%d", uint64(1)<<uint(i)-1)
}

// writePromHistogram renders one histogram series. labels is the pre-rendered
// label set without braces ("" for none); `le` is appended to it.
func writePromHistogram(w io.Writer, name, labels string, h *Histogram) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	hi := 0
	var loads [histBuckets]int64
	for i := 0; i < histBuckets; i++ {
		loads[i] = h.buckets[i].Load()
		if loads[i] > 0 {
			hi = i
		}
	}
	var cum int64
	for i := 0; i <= hi; i++ {
		cum += loads[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n", name, labels, sep, bucketEdge(i), cum); err != nil {
			return err
		}
	}
	total := cum
	for i := hi + 1; i < histBuckets; i++ {
		total += loads[i]
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, braceOrEmpty(labels), h.sum.Load()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, braceOrEmpty(labels), total)
	return err
}

func braceOrEmpty(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// WritePrometheus renders every instrument in the registry as an unlabeled
// family named prefix + sanitized instrument name: counters as `counter`,
// histograms as `histogram` with the base-2 bucket mapping described above.
// Families are emitted in sorted name order.
func (r *Registry) WritePrometheus(w io.Writer, prefix string) error {
	r.mu.Lock()
	counterNames := make([]string, 0, len(r.counters))
	for n := range r.counters {
		counterNames = append(counterNames, n)
	}
	histNames := make([]string, 0, len(r.hists))
	for n := range r.hists {
		histNames = append(histNames, n)
	}
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()
	sort.Strings(counterNames)
	sort.Strings(histNames)

	for _, n := range counterNames {
		pn := promName(prefix + n)
		if _, err := fmt.Fprintf(w, "# HELP %s Counter %q.\n# TYPE %s counter\n%s %d\n",
			pn, n, pn, pn, counters[n].Value()); err != nil {
			return err
		}
	}
	for _, n := range histNames {
		pn := promName(prefix + n)
		if _, err := fmt.Fprintf(w, "# HELP %s Base-2 histogram %q (ns or units).\n# TYPE %s histogram\n", pn, n, pn); err != nil {
			return err
		}
		if err := writePromHistogram(w, pn, "", hists[n]); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders every labeled family in the registry: counters,
// then gauges, then histograms, each family's series sorted by label values.
func (r *LabeledRegistry) WritePrometheus(w io.Writer) error {
	counterNames, gaugeNames, histNames := r.familyNames()

	for _, n := range counterNames {
		r.mu.Lock()
		v := r.counters[n]
		r.mu.Unlock()
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", pn, v.help, pn); err != nil {
			return err
		}
		for _, s := range v.snapshot() {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", pn, formatLabels(v.keys, s.values), s.inst.Value()); err != nil {
				return err
			}
		}
	}
	for _, n := range gaugeNames {
		r.mu.Lock()
		v := r.gauges[n]
		r.mu.Unlock()
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", pn, v.help, pn); err != nil {
			return err
		}
		for _, s := range v.snapshot() {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", pn, formatLabels(v.keys, s.values), s.inst.Value()); err != nil {
				return err
			}
		}
	}
	for _, n := range histNames {
		r.mu.Lock()
		v := r.hists[n]
		r.mu.Unlock()
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", pn, v.help, pn); err != nil {
			return err
		}
		for _, s := range v.snapshot() {
			inner := strings.TrimSuffix(strings.TrimPrefix(formatLabels(v.keys, s.values), "{"), "}")
			if err := writePromHistogram(w, pn, inner, s.inst); err != nil {
				return err
			}
		}
	}
	return nil
}
