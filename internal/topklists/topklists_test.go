package topklists

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

func randomList(rng *rand.Rand, universe, k int) *List {
	perm := rng.Perm(universe)
	return MustNew(perm[:k]...)
}

func TestListBasics(t *testing.T) {
	l := MustNew(7, 3, 9)
	if l.K() != 3 {
		t.Errorf("K = %d", l.K())
	}
	if r, ok := l.Rank(3); !ok || r != 2 {
		t.Errorf("Rank(3) = %d,%v", r, ok)
	}
	if !l.Contains(9) || l.Contains(8) {
		t.Error("Contains wrong")
	}
	items := l.Items()
	items[0] = 99
	if l.Items()[0] != 7 {
		t.Error("Items not a copy")
	}
	if _, err := New(1, 1); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestActiveDomain(t *testing.T) {
	a := MustNew(5, 1)
	b := MustNew(1, 9)
	dom := ActiveDomain(a, b)
	if len(dom) != 3 || dom[0] != 1 || dom[1] != 5 || dom[2] != 9 {
		t.Errorf("ActiveDomain = %v", dom)
	}
}

// Appendix A.3's central claim: the FKS K^(p) over the active domain equals
// this library's K^(p) on the fixed-domain embedding, for every p.
func TestKPenaltyMatchesEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		universe := 4 + rng.Intn(10)
		ka := 1 + rng.Intn(universe-1)
		kb := 1 + rng.Intn(universe-1)
		a := randomList(rng, universe, ka)
		b := randomList(rng, universe, kb)
		pa, pb, _, err := Embed(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []float64{0, 0.25, 0.5, 1} {
			fks, err := KPenalty(a, b, p)
			if err != nil {
				t.Fatal(err)
			}
			ours, err := metrics.KWithPenalty(pa, pb, p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(fks-ours) > 1e-9 {
				t.Fatalf("A.3 equality violated at p=%v: FKS=%v embedded=%v\na=%v\nb=%v",
					p, fks, ours, a.Items(), b.Items())
			}
		}
	}
}

// Same for the footrule with location parameter (same-k lists, since the
// embedded FLocation requires one k per list but the identity needs only
// l >= max k).
func TestFLocationMatchesEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		universe := 4 + rng.Intn(10)
		ka := 1 + rng.Intn(universe-1)
		kb := 1 + rng.Intn(universe-1)
		a := randomList(rng, universe, ka)
		b := randomList(rng, universe, kb)
		pa, pb, dom, err := Embed(a, b)
		if err != nil {
			t.Fatal(err)
		}
		maxK := ka
		if kb > maxK {
			maxK = kb
		}
		l := float64(maxK) + rng.Float64()*float64(len(dom))
		fks, err := FLocation(a, b, l)
		if err != nil {
			t.Fatal(err)
		}
		// Pass the true k values: the embedding cannot distinguish a
		// top-(n-1) list from a full ranking structurally.
		ours, err := metrics.FLocationK(pa, pb, ka, kb, l)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fks-ours) > 1e-9 {
			t.Fatalf("F^(l) mismatch at l=%v: FKS=%v embedded=%v", l, fks, ours)
		}
	}
}

// A.3: on same-k top-k lists over their active domain, even K^(0) is
// regular (distance 0 implies equal lists). The common k matters: a strict
// prefix of a list is at K^(0)-distance 0 from it.
func TestKZeroRegularOnLists(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		universe := 3 + rng.Intn(8)
		ka := 1 + rng.Intn(universe-1)
		a := randomList(rng, universe, ka)
		b := randomList(rng, universe, ka)
		d, err := KPenalty(a, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		same := a.K() == b.K()
		if same {
			for i, it := range a.order {
				if b.order[i] != it {
					same = false
					break
				}
			}
		}
		if (d == 0) != same {
			t.Fatalf("K^(0) regularity violated: d=%v same=%v\na=%v\nb=%v", d, same, a.Items(), b.Items())
		}
	}
}

// The appendix's structural point: with per-pair active domains the
// measures are only near metrics — the triangle inequality fails across
// lists ranking different item sets, even at the same k, while the
// fixed-domain versions are true metrics. The violation ratio stays within
// the near-metric constant 2 over a random search.
func TestVaryingDomainsOnlyNearMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	worst := 1.0
	violations := 0
	const trials = 5000
	for trial := 0; trial < trials; trial++ {
		universe := 3 + rng.Intn(5)
		k := 1 + rng.Intn(universe)
		mk := func() *List { return randomList(rng, universe, k) }
		x, y, z := mk(), mk(), mk()
		dxz, err := KPenalty(x, z, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		dxy, _ := KPenalty(x, y, 0.5)
		dyz, _ := KPenalty(y, z, 0.5)
		if sum := dxy + dyz; dxz > sum+1e-9 {
			violations++
			if sum > 0 && dxz/sum > worst {
				worst = dxz / sum
			}
		}
	}
	if violations == 0 {
		t.Error("expected triangle violations across varying domains (the [10] scenario is only a near metric)")
	}
	if worst > 2+1e-9 {
		t.Errorf("violation ratio %v exceeds the near-metric constant 2", worst)
	}
	t.Logf("triangle violations: %d/%d, worst ratio %.3f", violations, trials, worst)
}

func TestKPenaltyCaseAnalysis(t *testing.T) {
	// Hand-checked tiny instance: a = (1, 2), b = (3).
	// Active domain {1, 2, 3}; pairs:
	//  (1,2): both in a only            -> p
	//  (1,3): 1 in a only, 3 in b only  -> 1
	//  (2,3): case 3 again              -> 1
	a := MustNew(1, 2)
	b := MustNew(3)
	for _, p := range []float64{0, 0.5, 1} {
		got, err := KPenalty(a, b, p)
		if err != nil {
			t.Fatal(err)
		}
		if want := 2 + p; got != want {
			t.Errorf("p=%v: KPenalty = %v, want %v", p, got, want)
		}
	}
	// Case 2: a = (1, 2), b = (1): pair (1,2) both in a, 1 in b -> agree -> 0.
	b2 := MustNew(1)
	if got, _ := KPenalty(a, b2, 0.5); got != 0 {
		t.Errorf("case-2 agreement: %v, want 0", got)
	}
	// Case 2 disagreement: b = (2).
	b3 := MustNew(2)
	if got, _ := KPenalty(a, b3, 0.5); got != 1 {
		t.Errorf("case-2 disagreement: %v, want 1", got)
	}
}

func TestErrors(t *testing.T) {
	a := MustNew(1, 2)
	b := MustNew(2, 3)
	if _, err := KPenalty(a, b, -1); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := FLocation(a, b, 1); err == nil {
		t.Error("l below k accepted")
	}
}
