// Package topklists implements the OTHER top-k scenario the paper compares
// against in Appendix A.3: the model of Fagin, Kumar, and Sivakumar
// ("Comparing top k lists", SODA 2003 / SIDMA 17(1)), where a top-k list is
// a bijection of its OWN k-element domain onto {1..k} — there is no fixed
// universal domain and no bottom bucket, and two lists being compared may
// rank different item sets.
//
// Appendix A.3 proves that once the comparison is restricted to the active
// domain (the union of the two lists' items), the FKS definitions of K^(p)
// and F^(l) coincide exactly with this library's partial-ranking metrics
// applied to the fixed-domain embedding (each list becomes k singleton
// buckets plus one bottom bucket holding the rest of the active domain).
// This package implements the FKS case analysis directly and the embedding,
// so the tests can pin the two scenarios together — and it demonstrates the
// one structural difference the appendix highlights: with a per-pair active
// domain the measures are only NEAR metrics (the triangle inequality can
// fail across lists with different domains), while the fixed-domain
// versions are true metrics.
package topklists

import (
	"fmt"
	"sort"

	"repro/internal/ranking"
)

// List is a top-k list in the FKS sense: distinct item IDs, best first. Its
// domain is exactly its items.
type List struct {
	order []int
	rank  map[int]int // item -> 1-based rank
}

// New builds a top-k list from items listed best-first.
func New(items ...int) (*List, error) {
	l := &List{order: append([]int(nil), items...), rank: make(map[int]int, len(items))}
	for i, it := range items {
		if _, dup := l.rank[it]; dup {
			return nil, fmt.Errorf("topklists: duplicate item %d", it)
		}
		l.rank[it] = i + 1
	}
	return l, nil
}

// MustNew is New that panics on duplicates.
func MustNew(items ...int) *List {
	l, err := New(items...)
	if err != nil {
		panic(err)
	}
	return l
}

// K returns the list length.
func (l *List) K() int { return len(l.order) }

// Items returns the items best-first (copy).
func (l *List) Items() []int { return append([]int(nil), l.order...) }

// Contains reports whether the list ranks the item.
func (l *List) Contains(item int) bool {
	_, ok := l.rank[item]
	return ok
}

// Rank returns the 1-based rank of an item and whether it is in the list.
func (l *List) Rank(item int) (int, bool) {
	r, ok := l.rank[item]
	return r, ok
}

// ActiveDomain returns the sorted union of the two lists' items — the
// domain Appendix A.3 restricts the comparison to.
func ActiveDomain(a, b *List) []int {
	set := make(map[int]struct{}, a.K()+b.K())
	for _, it := range a.order {
		set[it] = struct{}{}
	}
	for _, it := range b.order {
		set[it] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for it := range set {
		out = append(out, it)
	}
	sort.Ints(out)
	return out
}

// KPenalty returns the FKS Kendall distance with penalty parameter p
// between two top-k lists, by the four-case analysis over pairs of distinct
// items of the active domain:
//
//	case 1: both items in both lists — 0 if ordered alike, else 1;
//	case 2: both in one list, one of them in the other — the absent item is
//	        implicitly ranked below, so the order is determined: 0 or 1;
//	case 3: each item in exactly one (different) list — the lists disagree
//	        by construction: 1;
//	case 4: both items in the same single list only — penalty p.
func KPenalty(a, b *List, p float64) (float64, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("topklists: penalty parameter %v out of [0,1]", p)
	}
	dom := ActiveDomain(a, b)
	var total float64
	for x := 0; x < len(dom); x++ {
		for y := x + 1; y < len(dom); y++ {
			i, j := dom[x], dom[y]
			ri, inAi := a.rank[i]
			rj, inAj := a.rank[j]
			si, inBi := b.rank[i]
			sj, inBj := b.rank[j]
			switch {
			case inAi && inAj && inBi && inBj: // case 1: in both lists
				if (ri < rj) != (si < sj) {
					total++
				}
			case inAi && inAj && !inBi && !inBj, // case 4: confined to a
				inBi && inBj && !inAi && !inAj: // case 4: confined to b
				total += p
			case inAi && inAj: // case 2 via list a (exactly one of i, j in b)
				// The item absent from b is implicitly below the present one.
				aSaysIFirst := ri < rj
				bSaysIFirst := inBi
				if aSaysIFirst != bSaysIFirst {
					total++
				}
			case inBi && inBj: // case 2 via list b (exactly one of i, j in a)
				bSaysIFirst := si < sj
				aSaysIFirst := inAi
				if aSaysIFirst != bSaysIFirst {
					total++
				}
			default: // case 3: i in one list only, j in the other only
				total++
			}
		}
	}
	return total, nil
}

// FLocation returns the FKS footrule distance with location parameter l:
// items absent from a list are treated as sitting at position l, and the L1
// distance over the active domain is taken. l must be at least both k's.
func FLocation(a, b *List, l float64) (float64, error) {
	if float64(a.K()) > l || float64(b.K()) > l {
		return 0, fmt.Errorf("topklists: location parameter %v below list length", l)
	}
	var total float64
	for _, it := range ActiveDomain(a, b) {
		pa := l
		if r, ok := a.rank[it]; ok {
			pa = float64(r)
		}
		pb := l
		if r, ok := b.rank[it]; ok {
			pb = float64(r)
		}
		d := pa - pb
		if d < 0 {
			d = -d
		}
		total += d
	}
	return total, nil
}

// Embed maps two top-k lists onto this library's fixed-domain scenario: the
// active domain becomes {0..n-1}, and each list becomes the partial ranking
// with its k items as singleton buckets followed by one bottom bucket
// holding the remaining active-domain items (the Section 2 top-k list).
// It returns the two partial rankings and the active domain in ID order.
func Embed(a, b *List) (pa, pb *ranking.PartialRanking, dom []int, err error) {
	dom = ActiveDomain(a, b)
	idx := make(map[int]int, len(dom))
	for i, it := range dom {
		idx[it] = i
	}
	embed := func(l *List) (*ranking.PartialRanking, error) {
		order := make([]int, 0, l.K())
		for _, it := range l.order {
			order = append(order, idx[it])
		}
		return ranking.TopKList(len(dom), l.K(), order)
	}
	if pa, err = embed(a); err != nil {
		return nil, nil, nil, err
	}
	if pb, err = embed(b); err != nil {
		return nil, nil, nil, err
	}
	return pa, pb, dom, nil
}
