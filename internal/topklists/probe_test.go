package topklists

import (
	"math/rand"
	"testing"
)

// TestProbeSameKViolations scans the same-k triangle-violation landscape
// across penalty parameters and asserts the near-metric constant 2 of [10]
// is never exceeded (informative counts with -v).
func TestProbeSameKViolations(t *testing.T) {
	for _, p := range []float64{0, 0.25, 0.5, 1} {
		rng := rand.New(rand.NewSource(1))
		worst := 1.0
		viol := 0
		for trial := 0; trial < 20000; trial++ {
			universe := 3 + rng.Intn(5)
			k := 1 + rng.Intn(universe)
			mk := func() *List {
				perm := rng.Perm(universe)
				return MustNew(perm[:k]...)
			}
			x, y, z := mk(), mk(), mk()
			dxz, _ := KPenalty(x, z, p)
			dxy, _ := KPenalty(x, y, p)
			dyz, _ := KPenalty(y, z, p)
			if sum := dxy + dyz; dxz > sum+1e-9 {
				viol++
				if sum > 0 && dxz/sum > worst {
					worst = dxz / sum
				}
			}
		}
		if worst > 2+1e-9 {
			t.Errorf("p=%.2f: violation ratio %.4f exceeds the near-metric constant 2", p, worst)
		}
		t.Logf("p=%.2f same-k: violations=%d worst=%.3f", p, viol, worst)
	}
}
