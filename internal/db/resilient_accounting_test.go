package db

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

// observedSource sits between the retry layer and the fault injector and
// records ground truth about what the injector actually did: successful
// accesses per mode, transient errors surfaced, and dead errors surfaced.
// The accounting layers above and below it must reconcile with these tallies
// exactly — that is what makes the chaos accounting trustworthy rather than
// merely plausible.
type observedSource struct {
	src        faults.Source
	seq        atomic.Int64 // successful sequential accesses
	random     atomic.Int64 // successful random accesses
	transients atomic.Int64 // transient errors surfaced by the injector
	deadErrs   atomic.Int64 // ErrSourceDead errors surfaced by the injector
}

func (o *observedSource) observe(err error) {
	switch {
	case err == nil:
	case faults.IsTransient(err):
		o.transients.Add(1)
	case errors.Is(err, faults.ErrSourceDead):
		o.deadErrs.Add(1)
	}
}

func (o *observedSource) Next(ctx context.Context) (faults.Entry, bool, error) {
	e, ok, err := o.src.Next(ctx)
	o.observe(err)
	if err == nil && ok {
		o.seq.Add(1)
	}
	return e, ok, err
}

func (o *observedSource) Pos2(ctx context.Context, elem int) (int64, error) {
	v, err := o.src.Pos2(ctx, elem)
	o.observe(err)
	if err == nil {
		o.random.Add(1)
	}
	return v, err
}

func (o *observedSource) Peek2() int64 { return o.src.Peek2() }
func (o *observedSource) N() int       { return o.src.N() }

// chaosWrap builds the standard resilient stack for TopKResilient — list
// source → injector → observer → retry — returning the observers and the
// external accountant the retry layer charges failures and retries to.
func chaosWrap(lists int, planFor func(i int) faults.Plan, seed int64) (faults.Wrapper, []*observedSource, *telemetry.AccessAccountant) {
	obs := make([]*observedSource, lists)
	acc := telemetry.NewAccessAccountant(lists)
	wrap := func(i int, src faults.Source) faults.Source {
		plan := planFor(i)
		plan.Sleeper = &faults.FakeSleeper{}
		inj := faults.Inject(src, plan)
		obs[i] = &observedSource{src: inj}
		pol := faults.DefaultRetryPolicy()
		pol.MaxAttempts = 8
		pol.JitterSeed = seed
		pol.Sleeper = &faults.FakeSleeper{}
		return faults.WithRetry(obs[i], pol, acc, i)
	}
	return wrap, obs, acc
}

// TestResilientAccountingReconcilesTransientSchedule runs TopKResilient
// under a transient-only fault schedule for a fixed seed matrix and
// reconciles every layer's tallies against the observer's ground truth:
//
//   - the retry accountant's Failed equals the transient errors the injector
//     surfaced (each is charged exactly once),
//   - Retried equals Failed when no access exhausted its retry budget (no
//     list died, so every transient was absorbed by a re-attempt),
//   - the engine's per-list sequential/random counts equal the successful
//     accesses the observer saw pass the injector (faults consume no entry).
func TestResilientAccountingReconcilesTransientSchedule(t *testing.T) {
	const n, k = 48, 10
	tbl := accountingTable(t, n)
	m := len(accountingPrefs)

	sawFaults := false
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		for _, rate := range []float64{0, 0.05, 0.15} {
			wrap, obs, acc := chaosWrap(m, func(i int) faults.Plan {
				return faults.Plan{Seed: seed + 31*int64(i), TransientRate: rate}
			}, seed)
			res, err := tbl.TopKResilient(context.Background(), Query{Preferences: accountingPrefs, K: k}, wrap)
			if err != nil {
				t.Fatalf("seed=%d rate=%v: %v", seed, rate, err)
			}
			if res.Degraded != nil {
				t.Fatalf("seed=%d rate=%v: unexpected degraded answer (lost %v)", seed, rate, res.Degraded.Lost)
			}
			rep := acc.Report()
			var transients int64
			for i, o := range obs {
				transients += o.transients.Load()
				if got, want := rep.FailedPerList[i], o.transients.Load(); got != want {
					t.Errorf("seed=%d rate=%v list %d: accountant failures %d, injector surfaced %d transients", seed, rate, i, got, want)
				}
				if got, want := int64(res.Access.PerList[i]), o.seq.Load(); got != want {
					t.Errorf("seed=%d rate=%v list %d: engine sequential %d, observer saw %d successes", seed, rate, i, got, want)
				}
				if got, want := int64(res.Access.RandomPerList[i]), o.random.Load(); got != want {
					t.Errorf("seed=%d rate=%v list %d: engine random %d, observer saw %d successes", seed, rate, i, got, want)
				}
				if o.deadErrs.Load() != 0 {
					t.Errorf("seed=%d rate=%v list %d: injector surfaced %d dead errors under a transient-only plan", seed, rate, i, o.deadErrs.Load())
				}
			}
			if rep.Failed != transients {
				t.Errorf("seed=%d rate=%v: accountant failures %d != injector transients %d", seed, rate, rep.Failed, transients)
			}
			// No exhaustion (no list died), so every failure was followed by a
			// re-attempt: the two tallies must be equal, not merely close.
			if rep.Retried != rep.Failed {
				t.Errorf("seed=%d rate=%v: retried %d != failed %d with no exhausted access", seed, rate, rep.Retried, rep.Failed)
			}
			if rate == 0 && rep.Failed != 0 {
				t.Errorf("seed=%d: %d failures injected under a zero-rate plan", seed, rep.Failed)
			}
			if rate > 0 && transients > 0 {
				sawFaults = true
			}
		}
	}
	if !sawFaults {
		t.Error("no seed in the matrix injected any transient fault; the reconciliation was vacuous")
	}
}

// TestResilientAccountingReconcilesDeathSchedule kills one list after a
// known number of successful accesses and reconciles the degraded answer's
// wasted-access counts against the injector's schedule: the work charged to
// the dead list equals what the observer saw succeed there, which is capped
// by the plan's DeathAfter.
func TestResilientAccountingReconcilesDeathSchedule(t *testing.T) {
	const n, k = 48, 10
	tbl := accountingTable(t, n)
	m := len(accountingPrefs)

	for _, seed := range []int64{1, 2, 3} {
		for victim := 0; victim < m; victim++ {
			const deathAfter = 5
			wrap, obs, acc := chaosWrap(m, func(i int) faults.Plan {
				if i == victim {
					return faults.Plan{Seed: seed, DeathAfter: deathAfter}
				}
				return faults.Plan{Seed: seed}
			}, seed)
			res, err := tbl.TopKResilient(context.Background(), Query{Preferences: accountingPrefs, K: k}, wrap)
			if err != nil {
				t.Fatalf("seed=%d victim=%d: %v", seed, victim, err)
			}
			if res.Degraded == nil {
				t.Fatalf("seed=%d victim=%d: query did not degrade although list %d died after %d accesses", seed, victim, victim, deathAfter)
			}
			if len(res.Degraded.Lost) != 1 || res.Degraded.Lost[0] != victim {
				t.Fatalf("seed=%d victim=%d: lost %v, want [%d]", seed, victim, res.Degraded.Lost, victim)
			}
			if res.Degraded.Survivors != m-1 {
				t.Errorf("seed=%d victim=%d: %d survivors, want %d", seed, victim, res.Degraded.Survivors, m-1)
			}

			o := obs[victim]
			succeeded := o.seq.Load() + o.random.Load()
			if succeeded != deathAfter {
				t.Errorf("seed=%d victim=%d: %d accesses succeeded on the victim, schedule allowed exactly %d", seed, victim, succeeded, deathAfter)
			}
			if o.deadErrs.Load() == 0 {
				t.Errorf("seed=%d victim=%d: observer never saw the injected death", seed, victim)
			}
			// Wasted work is exactly what the schedule let through before the
			// kill: the degraded report must agree with the observer, access
			// mode by access mode.
			if got, want := int64(res.Degraded.WastedSequential), o.seq.Load(); got != want {
				t.Errorf("seed=%d victim=%d: wasted sequential %d, observer saw %d", seed, victim, got, want)
			}
			if got, want := int64(res.Degraded.WastedRandom), o.random.Load(); got != want {
				t.Errorf("seed=%d victim=%d: wasted random %d, observer saw %d", seed, victim, got, want)
			}
			// A death is permanent, not transient: the retry layer must not
			// have charged it as an absorbable failure.
			rep := acc.Report()
			if rep.FailedPerList[victim] != 0 || rep.RetriedPerList[victim] != 0 {
				t.Errorf("seed=%d victim=%d: death charged as failed=%d retried=%d; permanent errors pass through unretried",
					seed, victim, rep.FailedPerList[victim], rep.RetriedPerList[victim])
			}
		}
	}
}

// TestResilientAccountingDeterministicReplay pins the replay guarantee the
// fixed-seed matrix relies on: the same seeds produce byte-identical
// answers, access stats, and fault tallies across runs.
func TestResilientAccountingDeterministicReplay(t *testing.T) {
	const n, k = 48, 10
	tbl := accountingTable(t, n)
	m := len(accountingPrefs)

	type runOutcome struct {
		keys       []string
		access     []int
		failed     []int64
		retried    []int64
		transients []int64
	}
	run := func() runOutcome {
		wrap, obs, acc := chaosWrap(m, func(i int) faults.Plan {
			return faults.Plan{Seed: 7 + 31*int64(i), TransientRate: 0.1}
		}, 7)
		res, err := tbl.TopKResilient(context.Background(), Query{Preferences: accountingPrefs, K: k}, wrap)
		if err != nil {
			t.Fatal(err)
		}
		rep := acc.Report()
		out := runOutcome{keys: res.Keys, access: res.Access.PerList, failed: rep.FailedPerList, retried: rep.RetriedPerList}
		for _, o := range obs {
			out.transients = append(out.transients, o.transients.Load())
		}
		return out
	}
	first, second := run(), run()
	if !equalSlices(first.keys, second.keys) {
		t.Errorf("replay changed the answer: %v vs %v", first.keys, second.keys)
	}
	if !equalSlices(first.access, second.access) {
		t.Errorf("replay changed access counts: %v vs %v", first.access, second.access)
	}
	if !equalSlices(first.failed, second.failed) || !equalSlices(first.retried, second.retried) {
		t.Errorf("replay changed fault tallies: failed %v vs %v, retried %v vs %v",
			first.failed, second.failed, first.retried, second.retried)
	}
	if !equalSlices(first.transients, second.transients) {
		t.Errorf("replay changed the injected schedule itself: %v vs %v", first.transients, second.transients)
	}
}

func equalSlices[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
