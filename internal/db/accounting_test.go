package db

import (
	"fmt"
	"testing"
)

// accountingTable builds a catalog big enough for access-count invariants to
// be meaningful: deterministic pseudo-random numeric attributes so every
// preference sort orders the rows differently.
func accountingTable(t *testing.T, n int) *Table {
	t.Helper()
	tbl := NewTable("accounting")
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if err := tbl.AddColumn(name, FloatCol); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.AddColumn("parity", IntCol); err != nil {
		t.Fatal(err)
	}
	// Small LCG keeps the fixture deterministic without extra imports.
	state := int64(12345)
	next := func() float64 {
		state = (state*1103515245 + 12921) % (1 << 31)
		return float64(state%1000) / 10
	}
	for i := 0; i < n; i++ {
		row := Row{
			"alpha":  next(),
			"beta":   next(),
			"gamma":  next(),
			"parity": i % 2,
		}
		if err := tbl.Insert(fmt.Sprintf("row-%03d", i), row); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

var accountingPrefs = []Preference{
	{Column: "alpha", Direction: Ascending},
	{Column: "beta", Direction: Descending},
	{Column: "gamma", Direction: Ascending},
}

// TestQueryAccessCountsInvariants pins the unified access accounting of
// unfiltered queries: counts are monotone in k and bounded by the catalog
// size times the criteria count (a full scan of every index).
func TestQueryAccessCountsInvariants(t *testing.T) {
	const n = 48
	tbl := accountingTable(t, n)
	m := len(accountingPrefs)
	prev := -1
	for k := 0; k <= n; k += 4 {
		res, err := tbl.TopK(Query{Preferences: accountingPrefs, K: k})
		if err != nil {
			t.Fatal(err)
		}
		total := res.Access.Total + res.Access.Random
		if total < prev {
			t.Errorf("k=%d: accesses %d dropped below k=%d's %d", k, total, k-4, prev)
		}
		prev = total
		if res.Access.Total > n*m {
			t.Errorf("k=%d: sequential accesses %d exceed table size x criteria %d", k, res.Access.Total, n*m)
		}
		if res.Access.Total > res.FullScan.Total {
			t.Errorf("k=%d: accesses %d exceed full-scan cost %d", k, res.Access.Total, res.FullScan.Total)
		}
		if k > 0 {
			if res.Certificate <= 0 {
				t.Errorf("k=%d: certificate %d, want positive", k, res.Certificate)
			}
			if res.OptimalityRatio < 1 {
				t.Errorf("k=%d: optimality ratio %v < 1", k, res.OptimalityRatio)
			}
		} else if res.OptimalityRatio != 0 {
			t.Errorf("k=0: optimality ratio %v, want 0", res.OptimalityRatio)
		}
	}
}

// TestFilteredQueryAccessCountsInvariants pins the same invariants for
// filtered queries, where the bound shrinks to the subset size.
func TestFilteredQueryAccessCountsInvariants(t *testing.T) {
	const n = 48
	tbl := accountingTable(t, n)
	conds := []Condition{{Column: "parity", Op: Eq, Value: 0}}
	subset, err := tbl.Filter(conds)
	if err != nil {
		t.Fatal(err)
	}
	s := len(subset)
	if s == 0 || s == n {
		t.Fatalf("filter selected %d of %d rows; fixture broken", s, n)
	}
	m := len(accountingPrefs)
	prev := -1
	for k := 0; k <= s; k += 3 {
		res, err := tbl.TopKWhere(FilteredQuery{Conditions: conds, Preferences: accountingPrefs, K: k})
		if err != nil {
			t.Fatal(err)
		}
		total := res.Access.Total + res.Access.Random
		if total < prev {
			t.Errorf("k=%d: accesses %d dropped below k=%d's %d", k, total, k-3, prev)
		}
		prev = total
		if res.Access.Total > s*m {
			t.Errorf("k=%d: sequential accesses %d exceed subset size x criteria %d", k, res.Access.Total, s*m)
		}
		if res.Access.Total > n*m {
			t.Errorf("k=%d: sequential accesses %d exceed table size x criteria %d", k, res.Access.Total, n*m)
		}
		if res.Access.Total > res.FullScan.Total {
			t.Errorf("k=%d: accesses %d exceed full-scan cost %d", k, res.Access.Total, res.FullScan.Total)
		}
		if k > 0 && res.OptimalityRatio < 1 {
			t.Errorf("k=%d: optimality ratio %v < 1 (certificate %d)", k, res.OptimalityRatio, res.Certificate)
		}
	}
}
