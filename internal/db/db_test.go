package db

import (
	"context"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/ranking"
)

// restaurantTable builds the paper's Section 1 example: a restaurant catalog
// with cuisine, distance, price, and star attributes.
func restaurantTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable("restaurants")
	for _, c := range []struct {
		name string
		typ  ColumnType
	}{
		{"cuisine", StringCol},
		{"distance", FloatCol},
		{"price", FloatCol},
		{"stars", IntCol},
	} {
		if err := tbl.AddColumn(c.name, c.typ); err != nil {
			t.Fatal(err)
		}
	}
	rows := []struct {
		key string
		row Row
	}{
		{"Thai Palace", Row{"cuisine": "thai", "distance": 2.5, "price": 22.0, "stars": 4}},
		{"Sushi Ko", Row{"cuisine": "japanese", "distance": 8.0, "price": 45.0, "stars": 5}},
		{"Taco Shack", Row{"cuisine": "mexican", "distance": 1.0, "price": 9.0, "stars": 3}},
		{"Bella Pasta", Row{"cuisine": "italian", "distance": 12.0, "price": 30.0, "stars": 4}},
		{"Noodle Bar", Row{"cuisine": "thai", "distance": 6.0, "price": 14.0, "stars": 4}},
		{"Burger Joint", Row{"cuisine": "american", "distance": 3.0, "price": 11.0, "stars": 2}},
	}
	for _, r := range rows {
		if err := tbl.Insert(r.key, r.row); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestTableBasics(t *testing.T) {
	tbl := restaurantTable(t)
	if tbl.NumRows() != 6 || tbl.Name() != "restaurants" {
		t.Fatalf("table shape wrong: %d rows", tbl.NumRows())
	}
	if id, ok := tbl.RowID("Sushi Ko"); !ok || tbl.RowKey(id) != "Sushi Ko" {
		t.Error("RowID/RowKey mismatch")
	}
	if _, ok := tbl.RowID("missing"); ok {
		t.Error("missing key resolved")
	}
	cols := tbl.Columns()
	if len(cols) != 4 || cols[0] != "cuisine" {
		t.Errorf("Columns = %v", cols)
	}
	if d, _ := tbl.DistinctValues("cuisine"); d != 5 {
		t.Errorf("distinct cuisines = %d, want 5", d)
	}
	if d, _ := tbl.DistinctValues("stars"); d != 4 {
		t.Errorf("distinct stars = %d, want 4", d)
	}
	if _, err := tbl.DistinctValues("nope"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestInsertValidation(t *testing.T) {
	tbl := NewTable("t")
	if err := tbl.AddColumn("a", IntCol); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddColumn("a", FloatCol); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := tbl.Insert("r1", Row{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddColumn("late", IntCol); err == nil {
		t.Error("column added after rows")
	}
	if err := tbl.Insert("r1", Row{"a": 2}); err == nil {
		t.Error("duplicate key accepted")
	}
	if err := tbl.Insert("r2", Row{"a": "x"}); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := tbl.Insert("r3", Row{}); err == nil {
		t.Error("missing column accepted")
	}
	if err := tbl.Insert("r4", Row{"a": 1, "b": 2}); err == nil {
		t.Error("extra column accepted")
	}
	// A failed insert must not partially mutate the table.
	if tbl.NumRows() != 1 {
		t.Errorf("failed inserts mutated the table: %d rows", tbl.NumRows())
	}
}

func TestIndexScanNumeric(t *testing.T) {
	tbl := restaurantTable(t)
	// Ascending price: Taco Shack(9) Burger(11) Noodle(14) Thai(22)
	// Bella(30) Sushi(45) — all distinct, full ranking.
	pr, err := tbl.IndexScan(Preference{Column: "price", Direction: Ascending})
	if err != nil {
		t.Fatal(err)
	}
	if !pr.IsFull() {
		t.Error("distinct prices should give a full ranking")
	}
	taco, _ := tbl.RowID("Taco Shack")
	if pr.Pos(taco) != 1 {
		t.Errorf("cheapest ranked %v", pr.Pos(taco))
	}

	// Descending stars: Sushi(5) | Thai,Bella,Noodle(4) | Taco(3) | Burger(2).
	pr, err = tbl.IndexScan(Preference{Column: "stars", Direction: Descending})
	if err != nil {
		t.Fatal(err)
	}
	if pr.NumBuckets() != 4 {
		t.Fatalf("stars index has %d buckets, want 4: %v", pr.NumBuckets(), pr)
	}
	sushi, _ := tbl.RowID("Sushi Ko")
	if pr.Pos(sushi) != 1 {
		t.Errorf("5-star ranked %v", pr.Pos(sushi))
	}
	thai, _ := tbl.RowID("Thai Palace")
	noodle, _ := tbl.RowID("Noodle Bar")
	if !pr.Tied(thai, noodle) {
		t.Error("equal stars not tied")
	}
}

// The paper's coarsening example: any distance up to ten miles is the same.
func TestIndexScanCoarsened(t *testing.T) {
	tbl := restaurantTable(t)
	pr, err := tbl.IndexScan(Preference{Column: "distance", Direction: Ascending, CoarsenStep: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Bucket 1: everything under 10 miles; bucket 2: Bella Pasta (12).
	if pr.NumBuckets() != 2 {
		t.Fatalf("coarsened index has %d buckets: %v", pr.NumBuckets(), pr)
	}
	bella, _ := tbl.RowID("Bella Pasta")
	if pr.BucketOf(bella) != 1 {
		t.Error("12-mile restaurant should be in the far bucket")
	}
	if pr.BucketSize(0) != 5 {
		t.Errorf("near bucket holds %d, want 5", pr.BucketSize(0))
	}
}

func TestIndexScanCategorical(t *testing.T) {
	tbl := restaurantTable(t)
	pr, err := tbl.IndexScan(Preference{Column: "cuisine", ValueOrder: []string{"thai", "japanese"}})
	if err != nil {
		t.Fatal(err)
	}
	// thai {Thai Palace, Noodle Bar} | japanese {Sushi Ko} | rest.
	if pr.NumBuckets() != 3 {
		t.Fatalf("cuisine index has %d buckets: %v", pr.NumBuckets(), pr)
	}
	thai, _ := tbl.RowID("Thai Palace")
	noodle, _ := tbl.RowID("Noodle Bar")
	sushi, _ := tbl.RowID("Sushi Ko")
	if !pr.Tied(thai, noodle) || !pr.Ahead(thai, sushi) {
		t.Error("cuisine preference order wrong")
	}
	if pr.BucketSize(2) != 3 {
		t.Errorf("unlisted cuisines bucket = %d, want 3", pr.BucketSize(2))
	}

	if _, err := tbl.IndexScan(Preference{Column: "cuisine"}); err == nil {
		t.Error("categorical scan without ValueOrder accepted")
	}
	if _, err := tbl.IndexScan(Preference{Column: "cuisine", ValueOrder: []string{"thai", "thai"}}); err == nil {
		t.Error("duplicate ValueOrder accepted")
	}
	if _, err := tbl.IndexScan(Preference{Column: "cuisine", ValueOrder: []string{"thai"}, Direction: Descending}); err == nil {
		t.Error("Descending with ValueOrder accepted")
	}
	if _, err := tbl.IndexScan(Preference{Column: "nope"}); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := tbl.IndexScan(Preference{Column: "price", CoarsenStep: -1}); err == nil {
		t.Error("negative coarsen step accepted")
	}
}

func TestTopKQuery(t *testing.T) {
	tbl := restaurantTable(t)
	q := Query{
		Preferences: []Preference{
			{Column: "cuisine", ValueOrder: []string{"thai", "japanese", "mexican"}},
			{Column: "distance", Direction: Ascending, CoarsenStep: 10},
			{Column: "price", Direction: Ascending},
			{Column: "stars", Direction: Descending},
		},
		K: 2,
	}
	res, err := tbl.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != 2 {
		t.Fatalf("TopK returned %v", res.Keys)
	}
	// Noodle Bar: thai (pos ~1.5), near, cheap-ish, 4 stars — the best
	// all-rounder; Thai Palace close behind.
	if res.Keys[0] != "Noodle Bar" && res.Keys[0] != "Thai Palace" {
		t.Errorf("winner = %q, want a thai restaurant", res.Keys[0])
	}
	if res.Access.Total > res.FullScan.Total {
		t.Errorf("query read %d > full scan %d", res.Access.Total, res.FullScan.Total)
	}
	if len(res.MedianPositions) != 2 || res.MedianPositions[0] > res.MedianPositions[1] {
		t.Errorf("median positions not sorted: %v", res.MedianPositions)
	}
}

func TestRankAndRankPartial(t *testing.T) {
	tbl := restaurantTable(t)
	prefs := []Preference{
		{Column: "price", Direction: Ascending},
		{Column: "stars", Direction: Descending},
		{Column: "distance", Direction: Ascending},
	}
	keys, err := tbl.Rank(prefs)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 6 {
		t.Fatalf("Rank returned %d keys", len(keys))
	}
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %q in ranking", k)
		}
		seen[k] = true
	}

	groups, err := tbl.RankPartial(prefs)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != 6 {
		t.Fatalf("RankPartial covers %d rows: %v", total, groups)
	}

	if _, err := tbl.Rank(nil); err == nil {
		t.Error("empty preference list accepted")
	}
	if _, err := tbl.TopK(Query{K: 1}); err == nil {
		t.Error("query without preferences accepted")
	}
	if _, err := tbl.TopK(Query{Preferences: prefs, K: 99}); err == nil {
		t.Error("k > rows accepted")
	}
}

// The TopK result agrees with ranking the whole table and truncating.
func TestTopKConsistentWithRank(t *testing.T) {
	tbl := restaurantTable(t)
	prefs := []Preference{
		{Column: "price", Direction: Ascending},
		{Column: "stars", Direction: Descending},
		{Column: "distance", Direction: Ascending, CoarsenStep: 5},
	}
	full, err := tbl.Rank(prefs)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= tbl.NumRows(); k++ {
		res, err := tbl.TopK(Query{Preferences: prefs, K: k})
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(res.Keys, "|") != strings.Join(full[:k], "|") {
			t.Fatalf("k=%d: TopK %v != Rank prefix %v", k, res.Keys, full[:k])
		}
	}
}

func TestIndexScanIsValidPartialRanking(t *testing.T) {
	tbl := restaurantTable(t)
	pr, err := tbl.IndexScan(Preference{Column: "stars", Direction: Ascending})
	if err != nil {
		t.Fatal(err)
	}
	if err := ranking.CheckSameDomain(pr); err != nil || pr.N() != tbl.NumRows() {
		t.Errorf("index scan domain wrong: n=%d", pr.N())
	}
	keys := tbl.sortedKeys()
	if len(keys) != 6 || keys[0] != "Bella Pasta" {
		t.Errorf("sortedKeys = %v", keys)
	}
}

func TestTopKOffsetPagination(t *testing.T) {
	tbl := restaurantTable(t)
	prefs := []Preference{
		{Column: "price", Direction: Ascending},
		{Column: "stars", Direction: Descending},
	}
	full, err := tbl.Rank(prefs)
	if err != nil {
		t.Fatal(err)
	}
	// Page through in twos; concatenation must equal the full ranking.
	var paged []string
	for off := 0; off < tbl.NumRows(); off += 2 {
		res, err := tbl.TopK(Query{Preferences: prefs, K: 2, Offset: off})
		if err != nil {
			t.Fatal(err)
		}
		paged = append(paged, res.Keys...)
	}
	if strings.Join(paged, "|") != strings.Join(full, "|") {
		t.Fatalf("pagination %v != full ranking %v", paged, full)
	}
	if _, err := tbl.TopK(Query{Preferences: prefs, K: 1, Offset: -1}); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := tbl.TopK(Query{Preferences: prefs, K: 3, Offset: 5}); err == nil {
		t.Error("offset+k beyond table accepted")
	}
}

// TestQueryAlgoDispatch pins the engine selector: every algo answers the same
// top-k set, NRA issues no random accesses, and the cost-weighted accounting
// fields are consistent with each run's access profile.
func TestQueryAlgoDispatch(t *testing.T) {
	tbl := restaurantTable(t)
	prefs := []Preference{
		{Column: "distance", Direction: Ascending},
		{Column: "price", Direction: Ascending},
		{Column: "stars", Direction: Descending},
	}
	base, err := tbl.TopK(Query{Preferences: prefs, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantSet := append([]string(nil), base.Keys...)
	sort.Strings(wantSet)
	for _, algo := range []string{AlgoMedRank, AlgoTA, AlgoNRA, AlgoCA} {
		res, err := tbl.TopK(Query{Preferences: prefs, K: 3, Algo: algo})
		if err != nil {
			t.Fatalf("algo %q: %v", algo, err)
		}
		got := append([]string(nil), res.Keys...)
		sort.Strings(got)
		if !reflect.DeepEqual(got, wantSet) {
			t.Fatalf("algo %q: keys %v, want %v", algo, got, wantSet)
		}
		switch algo {
		case AlgoMedRank, AlgoNRA:
			if res.Access.Random != 0 {
				t.Fatalf("algo %q made %d random accesses", algo, res.Access.Random)
			}
			if res.CostRatio != 0 {
				t.Fatalf("algo %q reported cost ratio %d, want the NRA regime 0", algo, res.CostRatio)
			}
			if res.MiddlewareCost != res.Access.Total {
				t.Fatalf("algo %q: middleware cost %d != sequential total %d", algo, res.MiddlewareCost, res.Access.Total)
			}
		case AlgoTA, AlgoCA:
			if res.CostRatio != DefaultCostRatio {
				t.Fatalf("algo %q defaulted to cost ratio %d, want %d", algo, res.CostRatio, DefaultCostRatio)
			}
			want := res.Access.Total + DefaultCostRatio*res.Access.Random
			if res.MiddlewareCost != want {
				t.Fatalf("algo %q: middleware cost %d, want %d", algo, res.MiddlewareCost, want)
			}
		}
		if res.CostCertificate <= 0 || res.CostOptimalityRatio < 1 {
			t.Fatalf("algo %q: cost certificate %d ratio %v", algo, res.CostCertificate, res.CostOptimalityRatio)
		}
	}
	// Explicit ratio overrides the default and is echoed back.
	res, err := tbl.TopK(Query{Preferences: prefs, K: 3, Algo: AlgoCA, CostRatio: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostRatio != 25 {
		t.Fatalf("explicit cost ratio not echoed: %d", res.CostRatio)
	}
	if _, err := tbl.TopK(Query{Preferences: prefs, K: 3, Algo: "bogus"}); err == nil {
		t.Fatal("unknown algo accepted")
	}
	// The resilient path dispatches the same engines.
	for _, algo := range []string{AlgoNRA, AlgoCA} {
		res, err := tbl.TopKResilient(context.Background(), Query{Preferences: prefs, K: 3, Algo: algo}, nil)
		if err != nil {
			t.Fatalf("resilient %q: %v", algo, err)
		}
		got := append([]string(nil), res.Keys...)
		sort.Strings(got)
		if !reflect.DeepEqual(got, wantSet) {
			t.Fatalf("resilient %q: keys %v, want %v", algo, got, wantSet)
		}
		if algo == AlgoNRA && res.Access.Random != 0 {
			t.Fatalf("resilient NRA made %d random accesses", res.Access.Random)
		}
	}
}
