// Package db is the in-memory database substrate for the paper's motivating
// scenario (Section 1): a catalog of records with typed attributes, where
// each user preference criterion sorts the records on one attribute. Because
// typical attributes take few distinct values ("type of cuisine", "number of
// connections", star ratings) — and because users coarsen numeric attributes
// ("any distance up to ten miles is the same") — every such sort is a
// partial ranking with large ties. Preference queries are answered by
// aggregating those partial rankings with the median-rank engine of
// internal/topk, reading each index only as deeply as necessary.
package db

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ranking"
)

// ColumnType enumerates the attribute types a table supports.
type ColumnType int

const (
	// StringCol holds categorical values ("thai", "nonstop").
	StringCol ColumnType = iota
	// IntCol holds integral values (star rating, connection count).
	IntCol
	// FloatCol holds continuous values (price, distance).
	FloatCol
)

func (t ColumnType) String() string {
	switch t {
	case StringCol:
		return "string"
	case IntCol:
		return "int"
	case FloatCol:
		return "float"
	}
	return fmt.Sprintf("ColumnType(%d)", int(t))
}

// Direction orients a sort.
type Direction int

const (
	// Ascending ranks smaller values first (price, distance).
	Ascending Direction = iota
	// Descending ranks larger values first (star rating).
	Descending
)

// column is columnar storage for one attribute.
type column struct {
	name   string
	typ    ColumnType
	strs   []string
	ints   []int64
	floats []float64
}

// Table is an append-only in-memory table with named rows and typed columns.
type Table struct {
	name    string
	cols    map[string]*column
	order   []string // column names in declaration order
	rowKeys []string
	rowIdx  map[string]int
}

// NewTable creates an empty table.
func NewTable(name string) *Table {
	return &Table{
		name:   name,
		cols:   make(map[string]*column),
		rowIdx: make(map[string]int),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return len(t.rowKeys) }

// RowKey returns the primary key of row id.
func (t *Table) RowKey(id int) string { return t.rowKeys[id] }

// RowID resolves a primary key.
func (t *Table) RowID(key string) (int, bool) {
	id, ok := t.rowIdx[key]
	return id, ok
}

// Columns returns the column names in declaration order.
func (t *Table) Columns() []string { return append([]string(nil), t.order...) }

// AddColumn declares a column. Columns must be declared before rows are
// appended.
func (t *Table) AddColumn(name string, typ ColumnType) error {
	if len(t.rowKeys) > 0 {
		return fmt.Errorf("db: cannot add column %q after rows were inserted", name)
	}
	if _, dup := t.cols[name]; dup {
		return fmt.Errorf("db: duplicate column %q", name)
	}
	t.cols[name] = &column{name: name, typ: typ}
	t.order = append(t.order, name)
	return nil
}

// Row is the value set of one record, keyed by column name. Values must be
// string, int, int64, or float64 matching the column type (ints are accepted
// for float columns).
type Row map[string]interface{}

// Insert appends a record under a unique primary key, with a value for every
// declared column.
func (t *Table) Insert(key string, row Row) error {
	if _, dup := t.rowIdx[key]; dup {
		return fmt.Errorf("db: duplicate row key %q", key)
	}
	if len(row) != len(t.order) {
		return fmt.Errorf("db: row for %q has %d values, table has %d columns", key, len(row), len(t.order))
	}
	// Validate all values before mutating anything.
	for _, name := range t.order {
		v, ok := row[name]
		if !ok {
			return fmt.Errorf("db: row for %q missing column %q", key, name)
		}
		if err := t.cols[name].check(v); err != nil {
			return fmt.Errorf("db: row %q: %w", key, err)
		}
	}
	for _, name := range t.order {
		t.cols[name].append(row[name])
	}
	t.rowIdx[key] = len(t.rowKeys)
	t.rowKeys = append(t.rowKeys, key)
	return nil
}

func (c *column) check(v interface{}) error {
	switch c.typ {
	case StringCol:
		if _, ok := v.(string); !ok {
			return fmt.Errorf("column %q wants string, got %T", c.name, v)
		}
	case IntCol:
		switch v.(type) {
		case int, int64:
		default:
			return fmt.Errorf("column %q wants int, got %T", c.name, v)
		}
	case FloatCol:
		switch v.(type) {
		case float64, int, int64:
		default:
			return fmt.Errorf("column %q wants float, got %T", c.name, v)
		}
	}
	return nil
}

func (c *column) append(v interface{}) {
	switch c.typ {
	case StringCol:
		c.strs = append(c.strs, v.(string))
	case IntCol:
		switch x := v.(type) {
		case int:
			c.ints = append(c.ints, int64(x))
		case int64:
			c.ints = append(c.ints, x)
		}
	case FloatCol:
		switch x := v.(type) {
		case float64:
			c.floats = append(c.floats, x)
		case int:
			c.floats = append(c.floats, float64(x))
		case int64:
			c.floats = append(c.floats, float64(x))
		}
	}
}

// Preference is one user criterion: sort the records on a column. A numeric
// column may be coarsened ("any distance up to ten miles is the same"); a
// categorical column may be ordered by an explicit value preference list
// (unlisted values are tied behind all listed ones).
type Preference struct {
	// Column names the attribute.
	Column string
	// Direction orients numeric sorts; ignored when ValueOrder is set.
	Direction Direction
	// CoarsenStep, when positive, buckets numeric values into intervals of
	// this width before sorting (floor(v/step)).
	CoarsenStep float64
	// ValueOrder, for categorical columns, lists values best-first. All
	// rows with unlisted values share one bottom bucket.
	ValueOrder []string
}

// IndexScan materializes the partial ranking produced by sorting the table
// according to the preference: rows with equal (possibly coarsened) sort
// keys are tied in one bucket, exactly as in the paper's Section 1.
func (t *Table) IndexScan(p Preference) (*ranking.PartialRanking, error) {
	col, ok := t.cols[p.Column]
	if !ok {
		return nil, fmt.Errorf("db: unknown column %q", p.Column)
	}
	n := t.NumRows()
	keys := make([]float64, n)
	switch col.typ {
	case StringCol:
		if len(p.ValueOrder) == 0 {
			return nil, fmt.Errorf("db: categorical column %q needs a ValueOrder preference", p.Column)
		}
		rank := make(map[string]int, len(p.ValueOrder))
		for i, v := range p.ValueOrder {
			if _, dup := rank[v]; dup {
				return nil, fmt.Errorf("db: duplicate value %q in ValueOrder", v)
			}
			rank[v] = i
		}
		for i, s := range col.strs {
			if r, ok := rank[s]; ok {
				keys[i] = float64(r)
			} else {
				keys[i] = float64(len(p.ValueOrder)) // unlisted: shared bottom bucket
			}
		}
	case IntCol:
		for i, v := range col.ints {
			keys[i] = float64(v)
		}
	case FloatCol:
		copy(keys, col.floats)
	}
	if col.typ != StringCol {
		if p.CoarsenStep < 0 {
			return nil, fmt.Errorf("db: negative CoarsenStep %v", p.CoarsenStep)
		}
		if p.CoarsenStep > 0 {
			for i, v := range keys {
				keys[i] = math.Floor(v / p.CoarsenStep)
			}
		}
		if p.Direction == Descending {
			for i := range keys {
				keys[i] = -keys[i]
			}
		}
	} else if p.Direction == Descending {
		return nil, fmt.Errorf("db: Descending is meaningless with a ValueOrder; reverse the list instead")
	}
	return ranking.FromScores(keys), nil
}

// DistinctValues returns the number of distinct (uncoarsened) values in a
// column — the paper's "few-valued attribute" statistic.
func (t *Table) DistinctValues(name string) (int, error) {
	col, ok := t.cols[name]
	if !ok {
		return 0, fmt.Errorf("db: unknown column %q", name)
	}
	switch col.typ {
	case StringCol:
		set := map[string]struct{}{}
		for _, v := range col.strs {
			set[v] = struct{}{}
		}
		return len(set), nil
	case IntCol:
		set := map[int64]struct{}{}
		for _, v := range col.ints {
			set[v] = struct{}{}
		}
		return len(set), nil
	default:
		set := map[float64]struct{}{}
		for _, v := range col.floats {
			set[v] = struct{}{}
		}
		return len(set), nil
	}
}

// sortedKeys is a test helper surface: the row keys sorted lexicographically.
func (t *Table) sortedKeys() []string {
	out := append([]string(nil), t.rowKeys...)
	sort.Strings(out)
	return out
}
