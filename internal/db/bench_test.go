package db

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchCatalog builds an n-row catalog with the paper's attribute mix.
func benchCatalog(b *testing.B, n int) *Table {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	tbl := NewTable("bench")
	cuisines := []string{"thai", "italian", "mexican", "japanese", "american"}
	mustAdd := func(name string, typ ColumnType) {
		if err := tbl.AddColumn(name, typ); err != nil {
			b.Fatal(err)
		}
	}
	mustAdd("cuisine", StringCol)
	mustAdd("distance", FloatCol)
	mustAdd("price", FloatCol)
	mustAdd("stars", IntCol)
	for i := 0; i < n; i++ {
		if err := tbl.Insert(fmt.Sprintf("r%06d", i), Row{
			"cuisine":  cuisines[rng.Intn(len(cuisines))],
			"distance": rng.Float64() * 30,
			"price":    5 + rng.Float64()*60,
			"stars":    1 + rng.Intn(5),
		}); err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

var benchPrefs = []Preference{
	{Column: "cuisine", ValueOrder: []string{"thai", "japanese"}},
	{Column: "distance", Direction: Ascending, CoarsenStep: 10},
	{Column: "price", Direction: Ascending},
	{Column: "stars", Direction: Descending},
}

func BenchmarkIndexScan(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		tbl := benchCatalog(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tbl.IndexScan(benchPrefs[3]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTopKQuery(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		tbl := benchCatalog(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tbl.TopK(Query{Preferences: benchPrefs, K: 10}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTopKWhere(b *testing.B) {
	tbl := benchCatalog(b, 100000)
	q := FilteredQuery{
		Conditions:  []Condition{{Column: "stars", Op: Ge, Value: 4}},
		Preferences: benchPrefs,
		K:           10,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.TopKWhere(q); err != nil {
			b.Fatal(err)
		}
	}
}
