package db

import (
	"strings"
	"testing"

	"repro/internal/guard"
)

var catalogTypes = map[string]ColumnType{"stars": IntCol, "price": FloatCol, "cuisine": StringCol}

// badCatalog has one defect of every row-level kind: a bad int cell, a ragged
// row, a duplicate key, and a bad float cell.
const badCatalog = `key,stars,price,cuisine
r1,4,12.5,thai
r2,many,9.0,deli
r3,3,8.0
r1,5,20.0,sushi
r4,2,cheap,bbq
r5,1,3.5,cart
`

func TestLoadCSVWithStrictMatchesLoadCSV(t *testing.T) {
	clean := "key,stars,price,cuisine\nr1,4,12.5,thai\nr2,3,9.0,deli\n"
	t1, err := LoadCSV("a", strings.NewReader(clean), "key", catalogTypes)
	if err != nil {
		t.Fatal(err)
	}
	t2, report, err := LoadCSVWith("a", strings.NewReader(clean), "key", catalogTypes, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Err() != nil {
		t.Errorf("clean catalog produced defects: %v", report)
	}
	if t1.NumRows() != t2.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", t1.NumRows(), t2.NumRows())
	}
}

func TestLoadCSVWithLenientDropsDefectiveRows(t *testing.T) {
	tbl, report, err := LoadCSVWith("cat", strings.NewReader(badCatalog), "key", catalogTypes, LoadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("kept %d rows, want 2 (r1 and r5)", tbl.NumRows())
	}
	for _, k := range []string{"r1", "r5"} {
		if _, ok := tbl.RowID(k); !ok {
			t.Errorf("clean row %q missing", k)
		}
	}
	wantLines := []int{3, 4, 5, 6} // physical lines of the four bad rows
	if len(report.Defects) != len(wantLines) {
		t.Fatalf("got %d defects, want %d: %v", len(report.Defects), len(wantLines), report)
	}
	for i, d := range report.Defects {
		if d.Line != wantLines[i] {
			t.Errorf("defect %d at line %d, want %d (%s)", i, d.Line, wantLines[i], d.Msg)
		}
	}
	// The bad int cell is localized to its byte column ("many" starts at col 4).
	if d := report.Defects[0]; d.Col != 4 || !strings.Contains(d.Msg, `"stars"`) {
		t.Errorf("cell defect not localized: %+v", d)
	}
}

func TestLoadCSVWithStrictStopsAtFirstDefect(t *testing.T) {
	_, _, err := LoadCSVWith("cat", strings.NewReader(badCatalog), "key", catalogTypes, LoadOptions{})
	if err == nil {
		t.Fatal("strict mode accepted a defective catalog")
	}
	if want := `db: CSV line 3, column "stars"`; !strings.Contains(err.Error(), want) {
		t.Errorf("err = %v, want prefix %q", err, want)
	}
}

func TestLoadCSVWithHeaderDefectsFatalEvenLenient(t *testing.T) {
	cases := []string{
		"key,stars,mystery\nr1,1,x\n", // undeclared column
		"key,key,stars\nr1,r1,1\n",    // duplicate key column
		"stars,price\n1,2.0\n",        // key column absent
	}
	for _, c := range cases {
		if _, _, err := LoadCSVWith("cat", strings.NewReader(c), "key", catalogTypes, LoadOptions{Lenient: true}); err == nil {
			t.Errorf("lenient mode repaired a broken header: %q", c)
		}
	}
}

func TestLoadCSVWithAdmissionLimits(t *testing.T) {
	input := "key,stars\nr1,1\nr2,2\nr3,3\n"
	types := map[string]ColumnType{"stars": IntCol}
	// Row cap, lenient: keeps the first two, reports the cut.
	tbl, report, err := LoadCSVWith("cat", strings.NewReader(input), "key", types, LoadOptions{
		Limits:  guard.Limits{MaxRankings: 2},
		Lenient: true,
	})
	if err != nil || tbl.NumRows() != 2 || report.Len() != 1 {
		t.Errorf("row cap lenient: %d rows, report %v, err %v", tbl.NumRows(), report, err)
	}
	// Row cap, strict: error.
	if _, _, err := LoadCSVWith("cat", strings.NewReader(input), "key", types, LoadOptions{
		Limits: guard.Limits{MaxRankings: 2},
	}); err == nil {
		t.Error("strict mode accepted over-cap table")
	}
	// Header width cap: fatal both ways.
	if _, _, err := LoadCSVWith("cat", strings.NewReader(input), "key", types, LoadOptions{
		Limits:  guard.Limits{MaxElements: 1},
		Lenient: true,
	}); err == nil {
		t.Error("over-wide header admitted")
	}
	// Record size cap, lenient: oversized row dropped, rest kept.
	big := "key,cuisine\nr1,thai\nr2," + strings.Repeat("x", 64) + "\nr3,deli\n"
	tbl, report, err = LoadCSVWith("cat", strings.NewReader(big), "key",
		map[string]ColumnType{"cuisine": StringCol}, LoadOptions{
			Limits:  guard.Limits{MaxLineBytes: 32},
			Lenient: true,
		})
	if err != nil || tbl.NumRows() != 2 || report.Len() != 1 {
		t.Errorf("record cap lenient: %d rows, report %v, err %v", tbl.NumRows(), report, err)
	}
}

func TestLoadCSVWithDefectReportCapped(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("key,stars\n")
	for i := 0; i < 30; i++ {
		sb.WriteString("r,bad\n") // duplicate keys AND bad ints; one defect each
	}
	_, report, err := LoadCSVWith("cat", strings.NewReader(sb.String()), "key",
		map[string]ColumnType{"stars": IntCol}, LoadOptions{
			Limits:  guard.Limits{MaxDefects: 4},
			Lenient: true,
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Defects) != 4 || report.Dropped != 26 {
		t.Errorf("report: %d retained, %d dropped; want 4, 26", len(report.Defects), report.Dropped)
	}
}

func TestLoadCSVWithQuotingDefectRecovers(t *testing.T) {
	input := "key,cuisine\nr1,thai\nr2,\"unterminated\nr3,deli\n"
	tbl, report, err := LoadCSVWith("cat", strings.NewReader(input), "key",
		map[string]ColumnType{"cuisine": StringCol}, LoadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() == 0 {
		t.Error("quoting defect wiped out the whole table")
	}
	if report.Len() == 0 {
		t.Error("quoting defect not reported")
	}
}
