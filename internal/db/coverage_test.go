package db

import "testing"

func TestColumnTypeStrings(t *testing.T) {
	if StringCol.String() != "string" || IntCol.String() != "int" || FloatCol.String() != "float" {
		t.Error("ColumnType strings wrong")
	}
	if ColumnType(9).String() == "string" {
		t.Error("unknown ColumnType collides")
	}
	for op, want := range map[CompareOp]string{Eq: "=", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">="} {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	if CompareOp(42).String() == "=" {
		t.Error("unknown CompareOp collides")
	}
}

func TestInsertAcceptsIntVariants(t *testing.T) {
	tbl := NewTable("t")
	if err := tbl.AddColumn("i", IntCol); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddColumn("f", FloatCol); err != nil {
		t.Fatal(err)
	}
	// int64 for IntCol; int and int64 for FloatCol.
	if err := tbl.Insert("a", Row{"i": int64(3), "f": 7}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert("b", Row{"i": 4, "f": int64(8)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert("c", Row{"i": 5, "f": 9.5}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert("d", Row{"i": 1.5, "f": 1.0}); err == nil {
		t.Error("float accepted for IntCol")
	}
	if d, _ := tbl.DistinctValues("f"); d != 3 {
		t.Errorf("distinct floats = %d, want 3", d)
	}
	if d, _ := tbl.DistinctValues("i"); d != 3 {
		t.Errorf("distinct ints = %d, want 3", d)
	}
}

func TestFilterValueTypeVariants(t *testing.T) {
	tbl := NewTable("t")
	if err := tbl.AddColumn("f", FloatCol); err != nil {
		t.Fatal(err)
	}
	for i, v := range []float64{1, 2, 3} {
		if err := tbl.Insert(string(rune('a'+i)), Row{"f": v}); err != nil {
			t.Fatal(err)
		}
	}
	// int and int64 condition values against a float column.
	for _, cond := range []Condition{
		{"f", Ge, 2},
		{"f", Ge, int64(2)},
		{"f", Ge, 2.0},
	} {
		rows, err := tbl.Filter([]Condition{cond})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Errorf("cond %v matched %d rows, want 2", cond, len(rows))
		}
	}
	if _, err := tbl.Filter([]Condition{{"f", Ge, "two"}}); err == nil {
		t.Error("string value against float column accepted")
	}
}
