package db

import (
	"strings"
	"testing"
)

func TestFilterConditions(t *testing.T) {
	tbl := restaurantTable(t)
	cases := []struct {
		name  string
		conds []Condition
		want  int
	}{
		{"no conditions", nil, 6},
		{"cuisine eq", []Condition{{"cuisine", Eq, "thai"}}, 2},
		{"cuisine ne", []Condition{{"cuisine", Ne, "thai"}}, 4},
		{"stars ge", []Condition{{"stars", Ge, 4}}, 4},
		{"distance lt", []Condition{{"distance", Lt, 5.0}}, 3},
		{"conjunction", []Condition{{"stars", Ge, 4}, {"distance", Le, 10.0}}, 3},
		{"price eq", []Condition{{"price", Eq, 9.0}}, 1},
		{"empty result", []Condition{{"stars", Gt, 5}}, 0},
	}
	for _, tc := range cases {
		rows, err := tbl.Filter(tc.conds)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(rows) != tc.want {
			t.Errorf("%s: %d rows, want %d", tc.name, len(rows), tc.want)
		}
	}
}

func TestFilterErrors(t *testing.T) {
	tbl := restaurantTable(t)
	bad := [][]Condition{
		{{"nope", Eq, "x"}},
		{{"cuisine", Lt, "thai"}},    // ordering op on string column
		{{"cuisine", Eq, 5}},         // wrong value type
		{{"stars", Eq, "five"}},      // wrong value type
		{{"stars", CompareOp(9), 4}}, // unknown operator
	}
	for i, conds := range bad {
		if _, err := tbl.Filter(conds); err == nil {
			t.Errorf("case %d: invalid condition accepted", i)
		}
	}
	if Eq.String() != "=" || Ge.String() != ">=" {
		t.Error("CompareOp String wrong")
	}
}

func TestTopKWhere(t *testing.T) {
	tbl := restaurantTable(t)
	res, err := tbl.TopKWhere(FilteredQuery{
		Conditions: []Condition{{"distance", Le, 10.0}, {"stars", Ge, 4}},
		Preferences: []Preference{
			{Column: "price", Direction: Ascending},
			{Column: "stars", Direction: Descending},
		},
		K: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Surviving rows: Thai Palace, Sushi Ko, Noodle Bar. Noodle Bar is the
	// cheapest 4-star; it must appear in the top 2.
	if len(res.Keys) != 2 {
		t.Fatalf("TopKWhere returned %v", res.Keys)
	}
	found := false
	for _, k := range res.Keys {
		if k == "Noodle Bar" {
			found = true
		}
		if k == "Bella Pasta" || k == "Burger Joint" || k == "Taco Shack" {
			t.Errorf("filtered-out row %q in result", k)
		}
	}
	if !found {
		t.Errorf("Noodle Bar missing from %v", res.Keys)
	}
}

func TestTopKWhereEdgeCases(t *testing.T) {
	tbl := restaurantTable(t)
	// Empty result set with k=0 is fine.
	res, err := tbl.TopKWhere(FilteredQuery{
		Conditions: []Condition{{"stars", Gt, 5}},
		K:          0,
	})
	if err != nil || len(res.Keys) != 0 {
		t.Errorf("empty filter k=0: %v %v", res, err)
	}
	// Empty result set with k>0 errors.
	if _, err := tbl.TopKWhere(FilteredQuery{
		Conditions:  []Condition{{"stars", Gt, 5}},
		Preferences: []Preference{{Column: "price"}},
		K:           1,
	}); err == nil {
		t.Error("k>0 over empty filter accepted")
	}
	// No preferences errors.
	if _, err := tbl.TopKWhere(FilteredQuery{K: 1}); err == nil {
		t.Error("no preferences accepted")
	}
}

func TestIndexScanSubset(t *testing.T) {
	tbl := restaurantTable(t)
	subset, err := tbl.Filter([]Condition{{"cuisine", Eq, "thai"}})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := tbl.IndexScanSubset(Preference{Column: "price", Direction: Ascending}, subset)
	if err != nil {
		t.Fatal(err)
	}
	if pr.N() != 2 || !pr.IsFull() {
		t.Fatalf("subset scan = %v", pr)
	}
	// Noodle Bar (14) is cheaper than Thai Palace (22): relative order kept.
	var noodleSub, thaiSub int
	for i, row := range subset {
		switch tbl.RowKey(row) {
		case "Noodle Bar":
			noodleSub = i
		case "Thai Palace":
			thaiSub = i
		}
	}
	if !pr.Ahead(noodleSub, thaiSub) {
		t.Error("subset scan lost relative order")
	}
	if _, err := tbl.IndexScanSubset(Preference{Column: "price"}, []int{99}); err == nil {
		t.Error("out-of-range subset accepted")
	}
}

func TestLoadCSV(t *testing.T) {
	data := `name,price,stops,airline
UA100,320.5,0,united
AA7,250,1,american
WN4,199.99,1,southwest
`
	tbl, err := LoadCSV("flights", strings.NewReader(data), "name", map[string]ColumnType{
		"price": FloatCol, "stops": IntCol, "airline": StringCol,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("loaded %d rows", tbl.NumRows())
	}
	res, err := tbl.TopK(Query{
		Preferences: []Preference{{Column: "price", Direction: Ascending}},
		K:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Keys[0] != "WN4" {
		t.Errorf("cheapest = %q", res.Keys[0])
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
		key  string
	}{
		{"missing key column", "a,b\n1,2\n", "nope"},
		{"undeclared column", "name,mystery\nx,1\n", "name"},
		{"bad int", "name,stops\nx,abc\n", "name"},
		{"bad float", "name,price\nx,abc\n", "name"},
		{"duplicate keys", "name,stops\nx,1\nx,2\n", "name"},
		{"ragged row", "name,stops\nx\n", "name"},
		{"empty input", "", "name"},
	}
	types := map[string]ColumnType{"stops": IntCol, "price": FloatCol, "b": IntCol}
	for _, tc := range cases {
		if _, err := LoadCSV("t", strings.NewReader(tc.data), tc.key, types); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
