package db

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/guard"
	"repro/internal/telemetry"
)

// Load telemetry: accepted rows are gated like other hot-path instruments;
// dropped rows are force-counted because a catalog that needed repair is an
// operational fact worth recording even when tracing is off.
var (
	tRowsLoaded  = telemetry.GetCounter("db.load.rows")
	tRowsDropped = telemetry.GetCounter("db.load.rows_dropped")
)

// LoadOptions configures LoadCSVWith. The zero value is the historical strict
// load with no admission limits.
type LoadOptions struct {
	// Limits bounds what the loader will admit; zero fields are unlimited.
	// MaxLineBytes caps one record's encoded size, MaxElements the header
	// width, MaxRankings the data-row count.
	Limits guard.Limits
	// Lenient, when set, drops defective rows (unparsable records, ragged
	// rows, bad numeric cells, duplicate keys) with one guard.Defect each
	// instead of aborting the load. Header defects are always fatal: without
	// a trusted schema there is no table to repair into.
	Lenient bool
}

// LoadCSVWith builds a table from CSV data under the given admission limits
// and parse mode. The first record is the header; the column named keyColumn
// supplies primary keys and every other header must appear in types.
//
// In strict mode it behaves exactly like LoadCSV: the first defect aborts
// with an error naming the CSV record line (and column, for cell defects),
// and the report is empty. In lenient mode each defective row becomes one
// guard.Defect in the returned report (capped at Limits.MaxDefects) and is
// dropped; the call succeeds with every row that survived, so a corrupted
// catalog yields a usable table plus a defect report instead of one opaque
// error. Defect positions use the csv package's physical line and column
// accounting where available.
func LoadCSVWith(name string, r io.Reader, keyColumn string, types map[string]ColumnType, opts LoadOptions) (*Table, *guard.ErrorList, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("db: reading CSV header: %w", err)
	}
	if !opts.Limits.ElementsOK(len(header)) {
		return nil, nil, fmt.Errorf("db: CSV header has %d columns, limit %d", len(header), opts.Limits.MaxElements)
	}
	keyIdx := -1
	t := NewTable(name)
	for i, h := range header {
		if h == keyColumn {
			if keyIdx >= 0 {
				return nil, nil, fmt.Errorf("db: duplicate key column %q", keyColumn)
			}
			keyIdx = i
			continue
		}
		typ, ok := types[h]
		if !ok {
			return nil, nil, fmt.Errorf("db: no type declared for CSV column %q", h)
		}
		if err := t.AddColumn(h, typ); err != nil {
			return nil, nil, err
		}
	}
	if keyIdx < 0 {
		return nil, nil, fmt.Errorf("db: key column %q not in CSV header", keyColumn)
	}

	report := guard.NewErrorList(opts.Limits.DefectCap())
	line := 1 // records read, counting the header; matches LoadCSV's accounting
	for {
		prevOff := cr.InputOffset()
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			if !opts.Lenient {
				return nil, nil, fmt.Errorf("db: CSV line %d: %w", line, err)
			}
			tRowsDropped.ForceInc()
			var pe *csv.ParseError
			if errors.As(err, &pe) {
				report.Addf(pe.Line, pe.Column, "%v; row dropped", pe.Err)
			} else {
				report.Addf(line, 0, "%v; row dropped", err)
			}
			if cr.InputOffset() == prevOff {
				// The reader made no progress past the defect; bailing out is
				// the only alternative to spinning forever.
				return nil, nil, fmt.Errorf("db: CSV line %d: unrecoverable: %w", line, err)
			}
			continue
		}
		if recBytes := cr.InputOffset() - prevOff; opts.Limits.MaxLineBytes > 0 && recBytes > int64(opts.Limits.MaxLineBytes) {
			if !opts.Lenient {
				return nil, nil, fmt.Errorf("db: CSV line %d: record of %d bytes exceeds limit %d", line, recBytes, opts.Limits.MaxLineBytes)
			}
			tRowsDropped.ForceInc()
			report.Addf(line, 0, "record of %d bytes exceeds limit %d; row dropped", recBytes, opts.Limits.MaxLineBytes)
			continue
		}
		if !opts.Limits.RankingsOK(t.NumRows() + 1) {
			if !opts.Lenient {
				return nil, nil, fmt.Errorf("db: CSV line %d: row count exceeds limit %d", line, opts.Limits.MaxRankings)
			}
			tRowsDropped.ForceInc()
			report.Addf(line, 0, "row limit %d reached; remaining input dropped", opts.Limits.MaxRankings)
			break
		}
		row, defect := parseRecord(cr, header, rec, types, keyIdx, line)
		if defect != nil {
			if !opts.Lenient {
				return nil, nil, defect.strictErr
			}
			tRowsDropped.ForceInc()
			report.Add(defect.Defect)
			continue
		}
		if err := t.Insert(rec[keyIdx], row); err != nil {
			if !opts.Lenient {
				return nil, nil, fmt.Errorf("db: CSV line %d: %w", line, err)
			}
			tRowsDropped.ForceInc()
			report.Addf(line, 0, "%v; row dropped", err)
			continue
		}
		tRowsLoaded.Inc()
	}
	return t, report, nil
}

// rowDefect pairs the structured defect lenient mode records with the exact
// error string strict mode has always returned for the same problem.
type rowDefect struct {
	guard.Defect
	strictErr error
}

// parseRecord converts one clean CSV record into a Row, or describes the
// first defective cell. rec is guaranteed rectangular here (ragged rows fail
// in csv.Reader.Read), so FieldPos is safe for every index.
func parseRecord(cr *csv.Reader, header []string, rec []string, types map[string]ColumnType, keyIdx, line int) (Row, *rowDefect) {
	row := make(Row, len(header)-1)
	for i, h := range header {
		if i == keyIdx {
			continue
		}
		cell := rec[i]
		switch types[h] {
		case StringCol:
			row[h] = cell
		case IntCol:
			v, err := strconv.ParseInt(cell, 10, 64)
			if err != nil {
				return nil, cellDefect(cr, i, h, line, err)
			}
			row[h] = v
		case FloatCol:
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, cellDefect(cr, i, h, line, err)
			}
			row[h] = v
		}
	}
	return row, nil
}

// cellDefect localizes a cell-level defect to the physical line and column
// where the field starts, keeping LoadCSV's historical record-counting error
// string for strict mode.
func cellDefect(cr *csv.Reader, field int, col string, line int, err error) *rowDefect {
	physLine, physCol := cr.FieldPos(field)
	return &rowDefect{
		Defect: guard.Defect{
			Line: physLine,
			Col:  physCol,
			Msg:  fmt.Sprintf("column %q: %v; row dropped", col, err),
		},
		strictErr: fmt.Errorf("db: CSV line %d, column %q: %w", line, col, err),
	}
}
