package db

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// LoadCSV builds a table from CSV data. The first record is the header; the
// column named keyColumn supplies primary keys and every other header must
// appear in types. Numeric parsing follows strconv (IntCol via ParseInt,
// FloatCol via ParseFloat).
func LoadCSV(name string, r io.Reader, keyColumn string, types map[string]ColumnType) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("db: reading CSV header: %w", err)
	}
	keyIdx := -1
	t := NewTable(name)
	for i, h := range header {
		if h == keyColumn {
			if keyIdx >= 0 {
				return nil, fmt.Errorf("db: duplicate key column %q", keyColumn)
			}
			keyIdx = i
			continue
		}
		typ, ok := types[h]
		if !ok {
			return nil, fmt.Errorf("db: no type declared for CSV column %q", h)
		}
		if err := t.AddColumn(h, typ); err != nil {
			return nil, err
		}
	}
	if keyIdx < 0 {
		return nil, fmt.Errorf("db: key column %q not in CSV header", keyColumn)
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("db: CSV line %d: %w", line, err)
		}
		row := make(Row, len(header)-1)
		for i, h := range header {
			if i == keyIdx {
				continue
			}
			cell := rec[i]
			switch types[h] {
			case StringCol:
				row[h] = cell
			case IntCol:
				v, err := strconv.ParseInt(cell, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("db: CSV line %d, column %q: %w", line, h, err)
				}
				row[h] = v
			case FloatCol:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("db: CSV line %d, column %q: %w", line, h, err)
				}
				row[h] = v
			}
		}
		if err := t.Insert(rec[keyIdx], row); err != nil {
			return nil, fmt.Errorf("db: CSV line %d: %w", line, err)
		}
	}
	return t, nil
}
