package db

import (
	"io"
)

// LoadCSV builds a table from CSV data. The first record is the header; the
// column named keyColumn supplies primary keys and every other header must
// appear in types. Numeric parsing follows strconv (IntCol via ParseInt,
// FloatCol via ParseFloat). The first defect aborts the load with an error
// naming the CSV record line; use LoadCSVWith for admission limits and
// lenient, defect-reporting loads.
func LoadCSV(name string, r io.Reader, keyColumn string, types map[string]ColumnType) (*Table, error) {
	t, _, err := LoadCSVWith(name, r, keyColumn, types, LoadOptions{})
	if err != nil {
		return nil, err
	}
	return t, nil
}
