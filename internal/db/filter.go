package db

import (
	"context"
	"fmt"

	"repro/internal/ranking"
	"repro/internal/telemetry"
	"repro/internal/topk"
)

// The paper's database scenario lets the user "rank (and/or filter) the
// records" (Section 1). Conditions restrict the catalog to a subset before
// the preference sorts are aggregated; the subset is re-indexed onto a
// dense sub-domain so all ranking machinery applies unchanged.

// CompareOp is a filter comparison operator.
type CompareOp int

// Filter operators.
const (
	Eq CompareOp = iota // equal
	Ne                  // not equal
	Lt                  // less than (numeric only)
	Le                  // at most (numeric only)
	Gt                  // greater than (numeric only)
	Ge                  // at least (numeric only)
)

func (op CompareOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return fmt.Sprintf("CompareOp(%d)", int(op))
}

// Condition is one WHERE-style predicate: column <op> value. String columns
// support Eq and Ne with a string value; numeric columns support all
// operators with a numeric value (int, int64, or float64).
type Condition struct {
	Column string
	Op     CompareOp
	Value  interface{}
}

// Filter returns the IDs of rows satisfying every condition, in row order.
func (t *Table) Filter(conds []Condition) ([]int, error) {
	n := t.NumRows()
	keep := make([]bool, n)
	for i := range keep {
		keep[i] = true
	}
	for _, c := range conds {
		col, ok := t.cols[c.Column]
		if !ok {
			return nil, fmt.Errorf("db: unknown column %q", c.Column)
		}
		switch col.typ {
		case StringCol:
			want, ok := c.Value.(string)
			if !ok {
				return nil, fmt.Errorf("db: condition on %q wants string, got %T", c.Column, c.Value)
			}
			switch c.Op {
			case Eq:
				for i, v := range col.strs {
					keep[i] = keep[i] && v == want
				}
			case Ne:
				for i, v := range col.strs {
					keep[i] = keep[i] && v != want
				}
			default:
				return nil, fmt.Errorf("db: operator %v not supported on string column %q", c.Op, c.Column)
			}
		default:
			want, err := toFloat(c.Value)
			if err != nil {
				return nil, fmt.Errorf("db: condition on %q: %w", c.Column, err)
			}
			get := func(i int) float64 {
				if col.typ == IntCol {
					return float64(col.ints[i])
				}
				return col.floats[i]
			}
			for i := 0; i < n; i++ {
				if !keep[i] {
					continue
				}
				v := get(i)
				switch c.Op {
				case Eq:
					keep[i] = v == want
				case Ne:
					keep[i] = v != want
				case Lt:
					keep[i] = v < want
				case Le:
					keep[i] = v <= want
				case Gt:
					keep[i] = v > want
				case Ge:
					keep[i] = v >= want
				default:
					return nil, fmt.Errorf("db: unknown operator %v", c.Op)
				}
			}
		}
	}
	var out []int
	for i, k := range keep {
		if k {
			out = append(out, i)
		}
	}
	return out, nil
}

func toFloat(v interface{}) (float64, error) {
	switch x := v.(type) {
	case int:
		return float64(x), nil
	case int64:
		return float64(x), nil
	case float64:
		return x, nil
	}
	return 0, fmt.Errorf("want numeric value, got %T", v)
}

// IndexScanSubset materializes a preference sort restricted to the given
// row subset: the returned partial ranking is over the dense sub-domain
// 0..len(subset)-1, where sub-element i corresponds to row subset[i].
func (t *Table) IndexScanSubset(p Preference, subset []int) (*ranking.PartialRanking, error) {
	full, err := t.IndexScan(p)
	if err != nil {
		return nil, err
	}
	scores := make([]float64, len(subset))
	for i, row := range subset {
		if row < 0 || row >= t.NumRows() {
			return nil, fmt.Errorf("db: subset row %d out of range", row)
		}
		scores[i] = full.Pos(row)
	}
	return ranking.FromScores(scores), nil
}

// FilteredQuery is a Query restricted by WHERE-style conditions.
type FilteredQuery struct {
	Conditions  []Condition
	Preferences []Preference
	K           int
}

// TopKWhere answers a filtered preference query: the conditions select a
// sub-catalog, the preference sorts are restricted to it, and MEDRANK
// aggregates the restricted rankings.
func (t *Table) TopKWhere(q FilteredQuery) (*QueryResult, error) {
	return t.TopKWhereContext(context.Background(), q)
}

// TopKWhereContext is TopKWhere under a caller context: cancellation or
// deadline expiry aborts the aggregation mid-scan with ctx.Err().
func (t *Table) TopKWhereContext(ctx context.Context, q FilteredQuery) (*QueryResult, error) {
	ctx, sp := telemetry.Start(ctx, "db.topk_where")
	defer sp.End()
	tFilteredQueries.Inc()
	subset, err := t.Filter(q.Conditions)
	if err != nil {
		return nil, err
	}
	if len(subset) == 0 {
		if q.K > 0 {
			return nil, fmt.Errorf("db: filter matched no rows (k=%d requested)", q.K)
		}
		return &QueryResult{}, nil
	}
	if len(q.Preferences) == 0 {
		return nil, fmt.Errorf("db: query needs at least one preference")
	}
	rankings := make([]*ranking.PartialRanking, 0, len(q.Preferences))
	for _, p := range q.Preferences {
		pr, err := t.IndexScanSubset(p, subset)
		if err != nil {
			return nil, err
		}
		rankings = append(rankings, pr)
	}
	res, err := runMedRank(ctx, rankings, q.K)
	if err != nil {
		return nil, err
	}
	out := &QueryResult{
		Access:      res.Stats,
		FullScan:    fullScan(rankings),
		Certificate: topk.CertificateLowerBound(rankings, res.Winners),
	}
	out.OptimalityRatio = res.Stats.OptimalityRatio(out.Certificate)
	for i, w := range res.Winners {
		out.Keys = append(out.Keys, t.rowKeys[subset[w]])
		out.MedianPositions = append(out.MedianPositions, float64(res.Medians2[i])/2)
	}
	return out, nil
}
