package db

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/guard"
)

// FuzzLoadCSV feeds arbitrary bytes through the CSV loader: malformed
// headers, ragged rows, type mismatches, duplicate keys, and even invalid
// ColumnType values must surface as errors, never as panics, and every table
// the loader does accept must satisfy its structural invariants.
func FuzzLoadCSV(f *testing.F) {
	f.Add([]byte("key,a,b\nr1,1,2.5\nr2,3,4.5\n"), uint8(0), uint8(1))
	f.Add([]byte("key,a\nr1,1,extra\n"), uint8(0), uint8(1))     // ragged row
	f.Add([]byte("key,a\nr1\n"), uint8(0), uint8(1))             // short row
	f.Add([]byte("key,a\nr1,notanint\n"), uint8(0), uint8(1))    // type mismatch
	f.Add([]byte("key,key,a\nr1,r1,1\n"), uint8(0), uint8(1))    // duplicate key column
	f.Add([]byte("key,a,a\nr1,1,2\n"), uint8(0), uint8(1))       // duplicate data column
	f.Add([]byte("key,a\nr1,1\nr1,2\n"), uint8(0), uint8(1))     // duplicate row key
	f.Add([]byte("\"unterminated\nkey,a\n"), uint8(0), uint8(1)) // bad quoting
	f.Add([]byte(""), uint8(0), uint8(1))                        // empty input
	f.Add([]byte("key,a\nr1,\xff\xfe\n"), uint8(0), uint8(2))    // junk bytes
	f.Add([]byte("a,b,c\n1,2,3\n4,5,6\n"), uint8(2), uint8(3))   // key not first, bad type

	f.Fuzz(func(t *testing.T, data []byte, keyPick, typeSeed uint8) {
		// Derive a plausible header so the declared-types map exercises the
		// value-parsing paths, not just "no type declared" rejections. The
		// naive split intentionally disagrees with real CSV quoting sometimes;
		// those inputs must simply error out.
		firstLine := string(data)
		if i := strings.IndexAny(firstLine, "\r\n"); i >= 0 {
			firstLine = firstLine[:i]
		}
		cols := strings.Split(firstLine, ",")
		types := make(map[string]ColumnType, len(cols))
		for i, c := range cols {
			c = strings.TrimSpace(c)
			// Cycle through StringCol, IntCol, FloatCol and one invalid type.
			types[c] = ColumnType((int(typeSeed) + i) % 4)
		}
		keyCol := ""
		if len(cols) > 0 {
			keyCol = strings.TrimSpace(cols[int(keyPick)%len(cols)])
		}

		// Lenient loading under limits must never panic, and its table must
		// satisfy the same invariants as a strict one. When strict loading
		// succeeds, lenient loading must agree exactly with an empty report.
		limits := guard.Limits{MaxLineBytes: 1 << 12, MaxRankings: 64, MaxDefects: 16}
		ltbl, report, lerr := LoadCSVWith("fuzz", bytes.NewReader(data), keyCol, types, LoadOptions{Limits: limits, Lenient: true})

		tbl, err := LoadCSV("fuzz", bytes.NewReader(data), keyCol, types)
		if err != nil {
			if tbl != nil {
				t.Fatal("LoadCSV returned a table alongside an error")
			}
			return
		}
		if lerr == nil && report.Len() == 0 {
			if ltbl.NumRows() != tbl.NumRows() {
				t.Fatalf("modes disagree on clean input: %d vs %d rows", ltbl.NumRows(), tbl.NumRows())
			}
		}
		// Structural invariants of an accepted table.
		if tbl.NumRows() < 0 {
			t.Fatalf("negative row count %d", tbl.NumRows())
		}
		seen := make(map[string]bool, tbl.NumRows())
		for id := 0; id < tbl.NumRows(); id++ {
			k := tbl.RowKey(id)
			if seen[k] {
				t.Fatalf("duplicate row key %q survived loading", k)
			}
			seen[k] = true
			if got, ok := tbl.RowID(k); !ok || got != id {
				t.Fatalf("RowID(%q) = %d, %v; want %d, true", k, got, ok, id)
			}
		}
		for _, c := range tbl.Columns() {
			if c == keyCol {
				t.Fatalf("key column %q leaked into the data columns", keyCol)
			}
			// Numeric columns must be scannable end to end.
			if types[c] == IntCol || types[c] == FloatCol {
				if _, err := tbl.IndexScan(Preference{Column: c}); err != nil {
					t.Fatalf("IndexScan(%q) on a loaded table: %v", c, err)
				}
			}
		}
	})
}
