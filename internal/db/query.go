package db

import (
	"fmt"

	"repro/internal/aggregate"
	"repro/internal/ranking"
	"repro/internal/topk"
)

// Query is a multi-criteria preference query: aggregate the index scans of
// all preferences and return the best K records, optionally skipping the
// first Offset records (pagination).
type Query struct {
	Preferences []Preference
	K           int
	// Offset skips the best Offset records before returning K winners.
	Offset int
}

// QueryResult is the answer to a top-k preference query.
type QueryResult struct {
	// Keys are the winning records' primary keys, best first.
	Keys []string
	// MedianPositions holds each winner's aggregated (lower-median)
	// position across the preference sorts.
	MedianPositions []float64
	// Access is the sequential-access accounting of the MEDRANK run: how
	// much of each index scan was actually read.
	Access topk.AccessStats
	// FullScan is the cost the naive algorithm would have paid.
	FullScan topk.AccessStats
}

// runMedRank and fullScan are shared by TopK and TopKWhere.
func runMedRank(rankings []*ranking.PartialRanking, k int) (*topk.Result, error) {
	return topk.MedRank(rankings, k, topk.RoundRobin)
}

func fullScan(rankings []*ranking.PartialRanking) topk.AccessStats {
	return topk.FullScanCost(rankings)
}

// TopK answers a preference query with the streaming MEDRANK engine,
// reading each index scan only as deeply as certification requires.
func (t *Table) TopK(q Query) (*QueryResult, error) {
	if q.Offset < 0 {
		return nil, fmt.Errorf("db: negative offset %d", q.Offset)
	}
	rankings, err := t.scanAll(q.Preferences)
	if err != nil {
		return nil, err
	}
	res, err := runMedRank(rankings, q.K+q.Offset)
	if err != nil {
		return nil, err
	}
	out := &QueryResult{
		Access:   res.Stats,
		FullScan: fullScan(rankings),
	}
	for i, w := range res.Winners {
		if i < q.Offset {
			continue
		}
		out.Keys = append(out.Keys, t.rowKeys[w])
		out.MedianPositions = append(out.MedianPositions, float64(res.Medians2[i])/2)
	}
	return out, nil
}

// Rank aggregates the preference sorts into a full ranking of every record
// (Theorem 11's construction: a refinement of the median bucket order).
func (t *Table) Rank(prefs []Preference) ([]string, error) {
	rankings, err := t.scanAll(prefs)
	if err != nil {
		return nil, err
	}
	full, err := aggregate.MedianFull(rankings)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, t.NumRows())
	for _, id := range full.Order() {
		keys = append(keys, t.rowKeys[id])
	}
	return keys, nil
}

// RankPartial aggregates the preference sorts into the optimal partial
// ranking of Theorem 10 (the L1-closest bucket order to the median), useful
// when the application wants honest ties in the output.
func (t *Table) RankPartial(prefs []Preference) ([][]string, error) {
	rankings, err := t.scanAll(prefs)
	if err != nil {
		return nil, err
	}
	pr, err := aggregate.OptimalPartialAggregate(rankings)
	if err != nil {
		return nil, err
	}
	out := make([][]string, 0, pr.NumBuckets())
	for b := 0; b < pr.NumBuckets(); b++ {
		group := make([]string, 0, pr.BucketSize(b))
		for _, id := range pr.Bucket(b) {
			group = append(group, t.rowKeys[id])
		}
		out = append(out, group)
	}
	return out, nil
}

func (t *Table) scanAll(prefs []Preference) ([]*ranking.PartialRanking, error) {
	if len(prefs) == 0 {
		return nil, fmt.Errorf("db: query needs at least one preference")
	}
	rankings := make([]*ranking.PartialRanking, 0, len(prefs))
	for _, p := range prefs {
		pr, err := t.IndexScan(p)
		if err != nil {
			return nil, err
		}
		rankings = append(rankings, pr)
	}
	return rankings, nil
}
