package db

import (
	"context"
	"fmt"

	"repro/internal/aggregate"
	"repro/internal/faults"
	"repro/internal/ranking"
	"repro/internal/telemetry"
	"repro/internal/topk"
)

// Gated telemetry instruments of the query layer.
var (
	tQueries          = telemetry.GetCounter("db.queries")
	tFilteredQueries  = telemetry.GetCounter("db.filtered_queries")
	tResilientQueries = telemetry.GetCounter("db.resilient_queries")
	tIndexScans       = telemetry.GetCounter("db.index_scans")
)

// Query is a multi-criteria preference query: aggregate the index scans of
// all preferences and return the best K records, optionally skipping the
// first Offset records (pagination).
type Query struct {
	Preferences []Preference
	K           int
	// Offset skips the best Offset records before returning K winners.
	Offset int
}

// QueryResult is the answer to a top-k preference query.
type QueryResult struct {
	// Keys are the winning records' primary keys, best first.
	Keys []string
	// MedianPositions holds each winner's aggregated (lower-median)
	// position across the preference sorts.
	MedianPositions []float64
	// Access is the unified access accounting of the MEDRANK run: how much
	// of each index scan was actually read, sequential and random accesses
	// separated per the FLN middleware cost model.
	Access topk.AccessStats
	// FullScan is the cost the naive algorithm would have paid.
	FullScan topk.AccessStats
	// Certificate is the per-instance lower bound on the sequential probes
	// any correct algorithm must spend to certify these winners. On a
	// degraded run it is computed over the surviving index scans — the
	// instance that was actually solved.
	Certificate int
	// OptimalityRatio is Access accesses divided by Certificate — the
	// instance-optimality ratio of Theorems 30-32 (0 when Certificate is 0,
	// e.g. for k = 0).
	OptimalityRatio float64
	// Degraded is non-nil when index scans died mid-query (resilient path
	// only): the answer then aggregates the surviving scans and Degraded
	// carries the lost lists, wasted accesses, and per-winner quality bounds.
	Degraded *topk.Degraded
}

// runMedRank and fullScan are shared by TopK and TopKWhere.
func runMedRank(ctx context.Context, rankings []*ranking.PartialRanking, k int) (*topk.Result, error) {
	return topk.MedRankContext(ctx, rankings, k, topk.RoundRobin)
}

func fullScan(rankings []*ranking.PartialRanking) topk.AccessStats {
	return topk.FullScanCost(rankings)
}

// TopK answers a preference query with the streaming MEDRANK engine,
// reading each index scan only as deeply as certification requires.
func (t *Table) TopK(q Query) (*QueryResult, error) {
	return t.TopKContext(context.Background(), q)
}

// TopKContext is TopK under a caller context: cancellation or deadline
// expiry aborts the aggregation mid-scan with ctx.Err().
func (t *Table) TopKContext(ctx context.Context, q Query) (*QueryResult, error) {
	ctx, sp := telemetry.Start(ctx, "db.topk")
	defer sp.End()
	tQueries.Inc()
	if q.Offset < 0 {
		return nil, fmt.Errorf("db: negative offset %d", q.Offset)
	}
	rankings, err := t.scanAll(q.Preferences)
	if err != nil {
		return nil, err
	}
	res, err := runMedRank(ctx, rankings, q.K+q.Offset)
	if err != nil {
		return nil, err
	}
	return t.buildResult(q, rankings, res), nil
}

// TopKResilient answers a preference query over fallible index scans: wrap
// decorates each scan's source (typically with faults.Inject and
// faults.WithRetry; nil runs the infallible pipeline through the fallible
// engine). If scans die mid-query the answer degrades to the survivors and
// QueryResult.Degraded reports the loss; see topk.MedRankOver.
func (t *Table) TopKResilient(ctx context.Context, q Query, wrap faults.Wrapper) (*QueryResult, error) {
	ctx, sp := telemetry.Start(ctx, "db.topk_resilient")
	defer sp.End()
	tQueries.Inc()
	tResilientQueries.Inc()
	if q.Offset < 0 {
		return nil, fmt.Errorf("db: negative offset %d", q.Offset)
	}
	rankings, err := t.scanAll(q.Preferences)
	if err != nil {
		return nil, err
	}
	acc := telemetry.NewAccessAccountant(len(rankings))
	srcs := make([]faults.Source, len(rankings))
	for i, r := range rankings {
		s := topk.NewListSource(r, acc, i)
		if wrap != nil {
			s = wrap(i, s)
		}
		srcs[i] = s
	}
	res, err := topk.MedRankOver(ctx, srcs, q.K+q.Offset, topk.RoundRobin, acc)
	if err != nil {
		return nil, err
	}
	if res.Degraded != nil {
		// The instance actually solved is the surviving sub-instance; the
		// certificate bound must refer to it, not the lost lists.
		survivors := make([]*ranking.PartialRanking, 0, res.Degraded.Survivors)
		lost := make(map[int]bool, len(res.Degraded.Lost))
		for _, l := range res.Degraded.Lost {
			lost[l] = true
		}
		for i, r := range rankings {
			if !lost[i] {
				survivors = append(survivors, r)
			}
		}
		rankings = survivors
	}
	return t.buildResult(q, rankings, res), nil
}

// buildResult assembles a QueryResult from a top-k engine run over the given
// (possibly surviving-only) rankings.
func (t *Table) buildResult(q Query, rankings []*ranking.PartialRanking, res *topk.Result) *QueryResult {
	out := &QueryResult{
		Access:      res.Stats,
		FullScan:    fullScan(rankings),
		Certificate: topk.CertificateLowerBound(rankings, res.Winners),
		Degraded:    res.Degraded,
	}
	out.OptimalityRatio = res.Stats.OptimalityRatio(out.Certificate)
	for i, w := range res.Winners {
		if i < q.Offset {
			continue
		}
		out.Keys = append(out.Keys, t.rowKeys[w])
		out.MedianPositions = append(out.MedianPositions, float64(res.Medians2[i])/2)
	}
	return out
}

// Rank aggregates the preference sorts into a full ranking of every record
// (Theorem 11's construction: a refinement of the median bucket order).
func (t *Table) Rank(prefs []Preference) ([]string, error) {
	return t.RankContext(context.Background(), prefs)
}

// RankContext is Rank under a caller context, checked at the access
// boundaries between scanning and aggregation (the offline aggregation
// kernels themselves are non-blocking).
func (t *Table) RankContext(ctx context.Context, prefs []Preference) ([]string, error) {
	rankings, err := t.scanAll(prefs)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	full, err := aggregate.MedianFull(rankings)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, t.NumRows())
	for _, id := range full.Order() {
		keys = append(keys, t.rowKeys[id])
	}
	return keys, nil
}

// RankPartial aggregates the preference sorts into the optimal partial
// ranking of Theorem 10 (the L1-closest bucket order to the median), useful
// when the application wants honest ties in the output.
func (t *Table) RankPartial(prefs []Preference) ([][]string, error) {
	return t.RankPartialContext(context.Background(), prefs)
}

// RankPartialContext is RankPartial under a caller context, checked at the
// access boundaries between scanning and aggregation.
func (t *Table) RankPartialContext(ctx context.Context, prefs []Preference) ([][]string, error) {
	rankings, err := t.scanAll(prefs)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pr, err := aggregate.OptimalPartialAggregate(rankings)
	if err != nil {
		return nil, err
	}
	out := make([][]string, 0, pr.NumBuckets())
	for b := 0; b < pr.NumBuckets(); b++ {
		group := make([]string, 0, pr.BucketSize(b))
		for _, id := range pr.Bucket(b) {
			group = append(group, t.rowKeys[id])
		}
		out = append(out, group)
	}
	return out, nil
}

func (t *Table) scanAll(prefs []Preference) ([]*ranking.PartialRanking, error) {
	if len(prefs) == 0 {
		return nil, fmt.Errorf("db: query needs at least one preference")
	}
	rankings := make([]*ranking.PartialRanking, 0, len(prefs))
	for _, p := range prefs {
		pr, err := t.IndexScan(p)
		if err != nil {
			return nil, err
		}
		tIndexScans.Inc()
		rankings = append(rankings, pr)
	}
	return rankings, nil
}
