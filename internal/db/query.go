package db

import (
	"context"
	"fmt"

	"repro/internal/aggregate"
	"repro/internal/faults"
	"repro/internal/ranking"
	"repro/internal/telemetry"
	"repro/internal/topk"
)

// Gated telemetry instruments of the query layer.
var (
	tQueries          = telemetry.GetCounter("db.queries")
	tFilteredQueries  = telemetry.GetCounter("db.filtered_queries")
	tResilientQueries = telemetry.GetCounter("db.resilient_queries")
	tIndexScans       = telemetry.GetCounter("db.index_scans")
)

// Engine names accepted by Query.Algo.
const (
	AlgoMedRank = "medrank"
	AlgoTA      = "ta"
	AlgoNRA     = "nra"
	AlgoCA      = "ca"
)

// DefaultCostRatio is the random:sequential cost ratio assumed when a "ca"
// query does not set one: random access an order of magnitude more expensive
// than the next entry of an open scan, the classic middleware regime.
const DefaultCostRatio = 10

// Query is a multi-criteria preference query: aggregate the index scans of
// all preferences and return the best K records, optionally skipping the
// first Offset records (pagination).
type Query struct {
	Preferences []Preference
	K           int
	// Offset skips the best Offset records before returning K winners.
	Offset int
	// Algo selects the aggregation engine: "" or "medrank" (sorted access
	// only, certifies exact medians), "ta" (random-access heavy), "nra"
	// (sorted access only with interval certification — never issues a
	// random access), or "ca" (interval accumulation with random accesses
	// scheduled every ~CostRatio sorted rounds).
	Algo string
	// CostRatio is the random:sequential access cost ratio cR/cS. It drives
	// the "ca" engine's random-access schedule and the cost-weighted
	// optimality reporting for every engine. <= 0 selects a per-engine
	// default: DefaultCostRatio for "ca" and "ta" (their random accesses
	// have a price), 0 — the NRA regime, random access unpriced because
	// unused — for "medrank" and "nra".
	CostRatio int
}

// effectiveCostRatio resolves Query.CostRatio against the per-engine
// defaults.
func (q Query) effectiveCostRatio() int {
	if q.CostRatio > 0 {
		return q.CostRatio
	}
	switch q.Algo {
	case AlgoCA, AlgoTA:
		return DefaultCostRatio
	}
	return 0
}

// QueryResult is the answer to a top-k preference query.
type QueryResult struct {
	// Keys are the winning records' primary keys, best first.
	Keys []string
	// MedianPositions holds each winner's aggregated (lower-median)
	// position across the preference sorts.
	MedianPositions []float64
	// Access is the unified access accounting of the MEDRANK run: how much
	// of each index scan was actually read, sequential and random accesses
	// separated per the FLN middleware cost model.
	Access topk.AccessStats
	// FullScan is the cost the naive algorithm would have paid.
	FullScan topk.AccessStats
	// Certificate is the per-instance lower bound on the sequential probes
	// any correct algorithm must spend to certify these winners. On a
	// degraded run it is computed over the surviving index scans — the
	// instance that was actually solved.
	Certificate int
	// OptimalityRatio is Access accesses (sequential plus random, equal
	// weights) divided by Certificate. Kept for comparability with
	// historical numbers; CostOptimalityRatio is the cost-model-consistent
	// figure.
	OptimalityRatio float64
	// CostRatio is the random:sequential cost ratio the cost-weighted
	// figures below were computed at (Query.CostRatio resolved against the
	// per-engine defaults).
	CostRatio int
	// MiddlewareCost is the run's FLN middleware cost at (cs, cr) =
	// (1, CostRatio): sequential accesses plus CostRatio per random access.
	MiddlewareCost int
	// CostCertificate is the cost-aware per-instance lower bound at the same
	// weights (topk.CertificateLowerBoundCost).
	CostCertificate int
	// CostOptimalityRatio is MiddlewareCost / CostCertificate — the
	// instance-optimality ratio under the FLN cost model (0 when the bound
	// is 0, e.g. for k = 0).
	CostOptimalityRatio float64
	// Degraded is non-nil when index scans died mid-query (resilient path
	// only): the answer then aggregates the surviving scans and Degraded
	// carries the lost lists, wasted accesses, and per-winner quality bounds.
	Degraded *topk.Degraded
}

// runMedRank and fullScan are shared by TopK and TopKWhere.
func runMedRank(ctx context.Context, rankings []*ranking.PartialRanking, k int) (*topk.Result, error) {
	return topk.MedRankContext(ctx, rankings, k, topk.RoundRobin)
}

// runEngine dispatches the query's engine over in-memory rankings.
func runEngine(ctx context.Context, q Query, rankings []*ranking.PartialRanking, k int) (*topk.Result, error) {
	switch q.Algo {
	case "", AlgoMedRank:
		return runMedRank(ctx, rankings, k)
	case AlgoTA:
		return topk.ThresholdTopKContext(ctx, rankings, k)
	case AlgoNRA:
		return topk.NRAContext(ctx, rankings, k)
	case AlgoCA:
		return topk.CAContext(ctx, rankings, k, q.effectiveCostRatio())
	default:
		return nil, fmt.Errorf("db: unknown algo %q (want medrank, ta, nra, or ca)", q.Algo)
	}
}

// runEngineOver dispatches the query's engine over fallible sources.
func runEngineOver(ctx context.Context, q Query, srcs []faults.Source, k int, acc *telemetry.AccessAccountant) (*topk.Result, error) {
	switch q.Algo {
	case "", AlgoMedRank:
		return topk.MedRankOver(ctx, srcs, k, topk.RoundRobin, acc)
	case AlgoTA:
		return topk.ThresholdTopKOver(ctx, srcs, k, acc)
	case AlgoNRA:
		return topk.NRAOver(ctx, srcs, k, acc)
	case AlgoCA:
		return topk.CAOver(ctx, srcs, k, q.effectiveCostRatio(), acc)
	default:
		return nil, fmt.Errorf("db: unknown algo %q (want medrank, ta, nra, or ca)", q.Algo)
	}
}

func fullScan(rankings []*ranking.PartialRanking) topk.AccessStats {
	return topk.FullScanCost(rankings)
}

// TopK answers a preference query with the streaming MEDRANK engine,
// reading each index scan only as deeply as certification requires.
func (t *Table) TopK(q Query) (*QueryResult, error) {
	return t.TopKContext(context.Background(), q)
}

// TopKContext is TopK under a caller context: cancellation or deadline
// expiry aborts the aggregation mid-scan with ctx.Err().
func (t *Table) TopKContext(ctx context.Context, q Query) (*QueryResult, error) {
	ctx, sp := telemetry.Start(ctx, "db.topk")
	defer sp.End()
	tQueries.Inc()
	if q.Offset < 0 {
		return nil, fmt.Errorf("db: negative offset %d", q.Offset)
	}
	rankings, err := t.scanAll(q.Preferences)
	if err != nil {
		return nil, err
	}
	res, err := runEngine(ctx, q, rankings, q.K+q.Offset)
	if err != nil {
		return nil, err
	}
	return t.buildResult(q, rankings, res), nil
}

// TopKResilient answers a preference query over fallible index scans: wrap
// decorates each scan's source (typically with faults.Inject and
// faults.WithRetry; nil runs the infallible pipeline through the fallible
// engine). If scans die mid-query the answer degrades to the survivors and
// QueryResult.Degraded reports the loss; see topk.MedRankOver.
func (t *Table) TopKResilient(ctx context.Context, q Query, wrap faults.Wrapper) (*QueryResult, error) {
	ctx, sp := telemetry.Start(ctx, "db.topk_resilient")
	defer sp.End()
	tQueries.Inc()
	tResilientQueries.Inc()
	if q.Offset < 0 {
		return nil, fmt.Errorf("db: negative offset %d", q.Offset)
	}
	rankings, err := t.scanAll(q.Preferences)
	if err != nil {
		return nil, err
	}
	acc := telemetry.NewAccessAccountant(len(rankings))
	srcs := make([]faults.Source, len(rankings))
	for i, r := range rankings {
		s := topk.NewListSource(r, acc, i)
		if wrap != nil {
			s = wrap(i, s)
		}
		srcs[i] = s
	}
	res, err := runEngineOver(ctx, q, srcs, q.K+q.Offset, acc)
	if err != nil {
		return nil, err
	}
	if res.Degraded != nil {
		// The instance actually solved is the surviving sub-instance; the
		// certificate bound must refer to it, not the lost lists.
		survivors := make([]*ranking.PartialRanking, 0, res.Degraded.Survivors)
		lost := make(map[int]bool, len(res.Degraded.Lost))
		for _, l := range res.Degraded.Lost {
			lost[l] = true
		}
		for i, r := range rankings {
			if !lost[i] {
				survivors = append(survivors, r)
			}
		}
		rankings = survivors
	}
	return t.buildResult(q, rankings, res), nil
}

// buildResult assembles a QueryResult from a top-k engine run over the given
// (possibly surviving-only) rankings.
func (t *Table) buildResult(q Query, rankings []*ranking.PartialRanking, res *topk.Result) *QueryResult {
	out := &QueryResult{
		Access:      res.Stats,
		FullScan:    fullScan(rankings),
		Certificate: topk.CertificateLowerBound(rankings, res.Winners),
		Degraded:    res.Degraded,
		CostRatio:   q.effectiveCostRatio(),
	}
	out.OptimalityRatio = res.Stats.OptimalityRatio(out.Certificate)
	out.MiddlewareCost = res.Stats.MiddlewareCost(1, out.CostRatio)
	out.CostCertificate = topk.CertificateLowerBoundCost(rankings, res.Winners, 1, out.CostRatio)
	out.CostOptimalityRatio = res.Stats.CostOptimalityRatio(1, out.CostRatio, out.CostCertificate)
	for i, w := range res.Winners {
		if i < q.Offset {
			continue
		}
		out.Keys = append(out.Keys, t.rowKeys[w])
		out.MedianPositions = append(out.MedianPositions, float64(res.Medians2[i])/2)
	}
	return out
}

// Rank aggregates the preference sorts into a full ranking of every record
// (Theorem 11's construction: a refinement of the median bucket order).
func (t *Table) Rank(prefs []Preference) ([]string, error) {
	return t.RankContext(context.Background(), prefs)
}

// RankContext is Rank under a caller context, checked at the access
// boundaries between scanning and aggregation (the offline aggregation
// kernels themselves are non-blocking).
func (t *Table) RankContext(ctx context.Context, prefs []Preference) ([]string, error) {
	rankings, err := t.scanAll(prefs)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	full, err := aggregate.MedianFull(rankings)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, t.NumRows())
	for _, id := range full.Order() {
		keys = append(keys, t.rowKeys[id])
	}
	return keys, nil
}

// RankPartial aggregates the preference sorts into the optimal partial
// ranking of Theorem 10 (the L1-closest bucket order to the median), useful
// when the application wants honest ties in the output.
func (t *Table) RankPartial(prefs []Preference) ([][]string, error) {
	return t.RankPartialContext(context.Background(), prefs)
}

// RankPartialContext is RankPartial under a caller context, checked at the
// access boundaries between scanning and aggregation.
func (t *Table) RankPartialContext(ctx context.Context, prefs []Preference) ([][]string, error) {
	rankings, err := t.scanAll(prefs)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pr, err := aggregate.OptimalPartialAggregate(rankings)
	if err != nil {
		return nil, err
	}
	out := make([][]string, 0, pr.NumBuckets())
	for b := 0; b < pr.NumBuckets(); b++ {
		group := make([]string, 0, pr.BucketSize(b))
		for _, id := range pr.Bucket(b) {
			group = append(group, t.rowKeys[id])
		}
		out = append(out, group)
	}
	return out, nil
}

func (t *Table) scanAll(prefs []Preference) ([]*ranking.PartialRanking, error) {
	if len(prefs) == 0 {
		return nil, fmt.Errorf("db: query needs at least one preference")
	}
	rankings := make([]*ranking.PartialRanking, 0, len(prefs))
	for _, p := range prefs {
		pr, err := t.IndexScan(p)
		if err != nil {
			return nil, err
		}
		tIndexScans.Inc()
		rankings = append(rankings, pr)
	}
	return rankings, nil
}
