package faults

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Gated telemetry instruments of the retry layer. The "span.retry" histogram
// records backoff waits in nanoseconds, so -stats runs show how much time a
// query spent absorbing transient faults.
var (
	tRetries          = telemetry.GetCounter("faults.retries")
	tRetriesExhausted = telemetry.GetCounter("faults.retries_exhausted")
	hRetryBackoff     = telemetry.GetHistogram("span.retry")
)

// RetryPolicy bounds the transient-fault absorption of WithRetry:
// exponential backoff with deterministic jitter, capped attempts, capped
// delay. The zero value is normalized to DefaultRetryPolicy's fields.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per access, the first one
	// included; once exhausted the source is declared dead.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff.
	MaxDelay time.Duration
	// Multiplier grows the backoff between attempts (exponential base).
	Multiplier float64
	// JitterSeed seeds the deterministic jitter source: the same seed yields
	// the same backoff schedule, so chaos runs are reproducible.
	JitterSeed int64
	// Sleeper performs the waits; nil means WallClock. Tests inject a
	// FakeSleeper so retry paths run instantly.
	Sleeper Sleeper
}

// DefaultRetryPolicy is the production default: 4 attempts, 1ms initial
// backoff doubling to a 100ms cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Multiplier:  2,
		JitterSeed:  1,
	}
}

func (p RetryPolicy) normalized() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = def.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = def.MaxDelay
	}
	if p.Multiplier <= 1 {
		p.Multiplier = def.Multiplier
	}
	if p.Sleeper == nil {
		p.Sleeper = WallClock
	}
	return p
}

type retrySource struct {
	src  Source
	pol  RetryPolicy
	acc  *telemetry.AccessAccountant
	list int

	// mu guards the jitter RNG and the dead flag: chaos harnesses share one
	// wrapped stack across goroutines, and an unsynchronized *rand.Rand races
	// under that use. The lock is never held across the underlying access or
	// a backoff sleep, so retries on one list do not serialize the others;
	// single-goroutine runs draw the exact same jitter sequence as before.
	mu   sync.Mutex
	rng  *rand.Rand
	dead bool
}

// WithRetry wraps src so transient access failures are retried under pol
// with exponential backoff and deterministic jitter. Once MaxAttempts
// transient failures hit a single access, the wrapper declares the list dead
// (the returned error matches ErrSourceDead) and stays dead. Permanent and
// context errors pass through unretried.
//
// When acc is non-nil, every failed attempt is charged as a failure and
// every re-attempt as a retry on list `list`, so injected faults appear in
// the same access report as the probes they delayed.
//
// The wrapper's own state (jitter RNG, dead flag) is safe for concurrent
// use; concurrent accesses to the underlying source are only safe when the
// source itself is (faults.Inject's wrapper is).
func WithRetry(src Source, pol RetryPolicy, acc *telemetry.AccessAccountant, list int) Source {
	pol = pol.normalized()
	return &retrySource{
		src:  src,
		pol:  pol,
		rng:  rand.New(rand.NewSource(pol.JitterSeed)),
		acc:  acc,
		list: list,
	}
}

// markDead flips the sticky dead flag under the lock.
func (r *retrySource) markDead() {
	r.mu.Lock()
	r.dead = true
	r.mu.Unlock()
}

// isDead reads the sticky dead flag under the lock.
func (r *retrySource) isDead() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dead
}

// do runs op, absorbing transient failures per the policy. The caller's
// context gates every step: a canceled or expired context is returned before
// the first attempt, before any re-attempt, and aborts a backoff sleep
// mid-wait — the remaining deadline budget is never spent driving a source
// the caller has already abandoned.
func (r *retrySource) do(ctx context.Context, op func() error) error {
	if r.isDead() {
		return ErrSourceDead
	}
	delay := r.pol.BaseDelay
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := op()
		if err == nil {
			return nil
		}
		if IsContextErr(err) {
			return err
		}
		if !IsTransient(err) {
			// Permanent: the list is gone for good.
			r.markDead()
			return err
		}
		if r.acc != nil {
			r.acc.Failure(r.list)
		}
		if attempt >= r.pol.MaxAttempts {
			tRetriesExhausted.Inc()
			r.markDead()
			return fmt.Errorf("%w (after %d attempts: %v)", ErrSourceDead, attempt, err)
		}
		// Jittered backoff in [delay/2, delay]: deterministic given the seed.
		r.mu.Lock()
		d := delay/2 + time.Duration(r.rng.Int63n(int64(delay/2)+1))
		r.mu.Unlock()
		if err := r.pol.Sleeper.Sleep(ctx, d); err != nil {
			// The backoff was aborted by the context: no retry happens, so no
			// retry is charged — the access report must reflect work done,
			// not work planned.
			return err
		}
		tRetries.Inc()
		hRetryBackoff.Observe(int64(d))
		if r.acc != nil {
			r.acc.Retry(r.list)
		}
		delay = time.Duration(float64(delay) * r.pol.Multiplier)
		if delay > r.pol.MaxDelay {
			delay = r.pol.MaxDelay
		}
	}
}

func (r *retrySource) Next(ctx context.Context) (Entry, bool, error) {
	var e Entry
	var ok bool
	err := r.do(ctx, func() error {
		var err error
		e, ok, err = r.src.Next(ctx)
		return err
	})
	if err != nil {
		return Entry{}, false, err
	}
	return e, ok, nil
}

func (r *retrySource) Pos2(ctx context.Context, elem int) (int64, error) {
	var v int64
	err := r.do(ctx, func() error {
		var err error
		v, err = r.src.Pos2(ctx, elem)
		return err
	})
	if err != nil {
		return 0, err
	}
	return v, nil
}

func (r *retrySource) Peek2() int64 {
	if r.isDead() {
		return math.MaxInt64
	}
	return r.src.Peek2()
}

func (r *retrySource) N() int { return r.src.N() }
