package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// Adversarial voter injection: where Inject corrupts the ACCESS layer (a
// list stalls, truncates, or dies), InjectVoters corrupts the INPUT layer —
// it plants hostile rankings inside an otherwise honest ensemble, the way a
// service taking rankings from millions of untrusted users actually gets
// attacked. The injector is deterministic under its seed exactly like the
// fault Plan: the same seed over the same clean ensemble yields the same
// adversary rankings at the same positions, so robustness experiments and CI
// replay bit-for-bit.

// Gated telemetry instrument of the voter injector.
var tInjVoters = telemetry.GetCounter("faults.injected.voters")

// AdversaryKind selects the attack an injected voter mounts.
type AdversaryKind int

const (
	// ReversalSpam voters all submit the exact reverse of the clean
	// ensemble's mean-position (Borda) consensus — coordinated spam that
	// drags every score toward the anti-consensus.
	ReversalSpam AdversaryKind = iota
	// CollusionClique voters collude to promote a slate of target elements:
	// every clique member ranks the slate first (in slate order) and the
	// remaining elements in one shared random order, so the clique agrees
	// with itself perfectly and with nobody else.
	CollusionClique
	// NoiseVoters submit independent uniformly random full rankings —
	// uncoordinated garbage rather than an attack.
	NoiseVoters
)

// String returns the kind's wire/CLI name.
func (k AdversaryKind) String() string {
	switch k {
	case ReversalSpam:
		return "reversal"
	case CollusionClique:
		return "clique"
	case NoiseVoters:
		return "noise"
	default:
		return fmt.Sprintf("AdversaryKind(%d)", int(k))
	}
}

// ParseAdversaryKind resolves a kind's wire/CLI name.
func ParseAdversaryKind(s string) (AdversaryKind, error) {
	switch s {
	case "reversal":
		return ReversalSpam, nil
	case "clique":
		return CollusionClique, nil
	case "noise":
		return NoiseVoters, nil
	default:
		return 0, fmt.Errorf("faults: unknown adversary kind %q (want reversal, clique, or noise)", s)
	}
}

// AdversaryPlan configures one deterministic voter injection.
type AdversaryPlan struct {
	// Seed drives the injector's private random stream (adversary content
	// and placement).
	Seed int64
	// Kind selects the attack.
	Kind AdversaryKind
	// Count is the number of adversarial voters to inject. When 0, Count is
	// derived from Fraction.
	Count int
	// Fraction, used when Count == 0, injects ceil(Fraction * m) adversaries
	// for a clean ensemble of m voters.
	Fraction float64
	// Targets is the slate a CollusionClique promotes, best-first. Required
	// for CollusionClique; ignored by the other kinds.
	Targets []int
}

// AdversaryReport records what one injection did.
type AdversaryReport struct {
	Kind AdversaryKind `json:"kind"`
	Seed int64         `json:"seed"`
	// Injected holds the indices of the adversarial voters in the RETURNED
	// ensemble, ascending. Adversaries are interleaved at seed-determined
	// positions, never appended as a suffix, so trimming cannot succeed by
	// position alone.
	Injected []int `json:"injected"`
}

// InjectVoters returns a new ensemble of len(clean)+count voters: the clean
// voters in their original relative order with count adversarial voters of
// the planned kind spliced in at seed-determined positions. The clean
// rankings are shared, not copied. Deterministic: the same plan over the
// same clean ensemble returns identical rankings and identical placement.
func InjectVoters(clean []*ranking.PartialRanking, plan AdversaryPlan) ([]*ranking.PartialRanking, *AdversaryReport, error) {
	if len(clean) == 0 {
		return nil, nil, fmt.Errorf("faults: no clean voters to inject into")
	}
	if err := ranking.CheckSameDomain(clean...); err != nil {
		return nil, nil, err
	}
	n := clean[0].N()
	count := plan.Count
	if count == 0 && plan.Fraction > 0 {
		count = int(plan.Fraction * float64(len(clean)))
		if float64(count) < plan.Fraction*float64(len(clean)) {
			count++
		}
	}
	if count < 0 {
		return nil, nil, fmt.Errorf("faults: adversary count %d is negative", count)
	}

	rng := rand.New(rand.NewSource(plan.Seed))
	adversaries := make([]*ranking.PartialRanking, count)
	switch plan.Kind {
	case ReversalSpam:
		rev, err := reversalOfConsensus(clean)
		if err != nil {
			return nil, nil, err
		}
		for i := range adversaries {
			adversaries[i] = rev
		}
	case CollusionClique:
		if len(plan.Targets) == 0 {
			return nil, nil, fmt.Errorf("faults: collusion clique needs a non-empty target slate")
		}
		cliqueRank, err := cliqueRanking(n, plan.Targets, rng)
		if err != nil {
			return nil, nil, err
		}
		for i := range adversaries {
			adversaries[i] = cliqueRank
		}
	case NoiseVoters:
		for i := range adversaries {
			adversaries[i] = ranking.MustFromOrder(rng.Perm(n))
		}
	default:
		return nil, nil, fmt.Errorf("faults: unknown adversary kind %d", int(plan.Kind))
	}

	// Splice the adversaries in at seed-determined positions of the combined
	// ensemble.
	total := len(clean) + count
	positions := rng.Perm(total)[:count]
	sort.Ints(positions)
	isAdv := make([]bool, total)
	for _, p := range positions {
		isAdv[p] = true
	}
	out := make([]*ranking.PartialRanking, total)
	rep := &AdversaryReport{Kind: plan.Kind, Seed: plan.Seed, Injected: positions}
	ci, ai := 0, 0
	for i := 0; i < total; i++ {
		if isAdv[i] {
			out[i] = adversaries[ai]
			ai++
		} else {
			out[i] = clean[ci]
			ci++
		}
	}
	tInjVoters.Add(int64(count))
	return out, rep, nil
}

// reversalOfConsensus returns the exact reverse of the clean ensemble's
// mean-position ordering (Borda consensus; ties broken by element ID before
// reversing). Computed inline so the access layer keeps its one-directional
// import discipline toward the aggregation engines.
func reversalOfConsensus(clean []*ranking.PartialRanking) (*ranking.PartialRanking, error) {
	n := clean[0].N()
	score := make([]int64, n)
	for _, r := range clean {
		for e := 0; e < n; e++ {
			score[e] += r.Pos2(e)
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return score[order[a]] < score[order[b]] })
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return ranking.FromOrder(order)
}

// cliqueRanking builds the shared clique ranking: the slate first, in slate
// order, then every remaining element in one rng-drawn order.
func cliqueRanking(n int, targets []int, rng *rand.Rand) (*ranking.PartialRanking, error) {
	inSlate := make([]bool, n)
	order := make([]int, 0, n)
	for _, t := range targets {
		if t < 0 || t >= n {
			return nil, fmt.Errorf("faults: clique target %d out of domain [0,%d)", t, n)
		}
		if inSlate[t] {
			return nil, fmt.Errorf("faults: clique target %d listed twice", t)
		}
		inSlate[t] = true
		order = append(order, t)
	}
	rest := make([]int, 0, n-len(targets))
	for e := 0; e < n; e++ {
		if !inSlate[e] {
			rest = append(rest, e)
		}
	}
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	return ranking.FromOrder(append(order, rest...))
}
