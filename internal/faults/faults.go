// Package faults is the fallible access layer of the reproduction: it
// abstracts the ranked lists every aggregation engine reads behind a Source
// interface whose accesses can fail, and provides composable wrappers — a
// deterministic seed-driven fault injector and a bounded exponential-backoff
// retrier — that turn an infallible in-memory list into the kind of external
// middleware source the Fagin–Lotem–Naor model actually describes: one that
// can stall, drop its tail, or die mid-query.
//
// The layering is strictly one-directional: engines (internal/topk,
// internal/db) consume Source values; this package never imports them. The
// infallible implementation lives in internal/topk (a cursor over a
// PartialRanking); chaos tooling composes it as
//
//	src := topk.NewListSource(pr, acc, i)      // infallible, accounted
//	src = faults.Inject(src, plan)             // deterministic failures
//	src = faults.WithRetry(src, policy, acc, i) // transient-fault absorption
//
// so injected faults and retries show up in the same
// telemetry.AccessAccountant report as the probes themselves.
package faults

import (
	"context"
	"errors"
	"fmt"
)

// Entry is one probed item of a ranked list: an element and its (doubled)
// bucket position in that list. It is the wire type of the access layer;
// internal/topk aliases it so engine code and source code share one value
// type.
type Entry struct {
	Elem int
	Pos2 int64
}

// Source abstracts access to one ranked list under the middleware model:
// sequential access yields entries in non-decreasing position order, random
// access resolves one element's position by identity. Both can fail.
//
// Error contract:
//
//   - a transient error (IsTransient reports true) means the access failed
//     but the source may recover; WithRetry absorbs these.
//   - an error matching ErrSourceDead means the list is permanently gone and
//     no further access will succeed; engines degrade to the surviving lists.
//   - a context error (context.Canceled / context.DeadlineExceeded) aborts
//     the whole query and must be propagated unwrapped enough for errors.Is.
//
// A Source is driven by a single goroutine; implementations need not be
// concurrency-safe.
type Source interface {
	// Next returns the next entry of the sorted scan. ok is false with a nil
	// error when the list is (or appears) exhausted.
	Next(ctx context.Context) (Entry, bool, error)
	// Peek2 returns the doubled position of the next unprobed entry — the
	// frontier — or math.MaxInt64 when the scan is exhausted or the source is
	// dead. Peeking is free and infallible: a sequential scan always knows it
	// has not yet passed a given position.
	Peek2() int64
	// Pos2 random-accesses element elem's doubled position in the list.
	Pos2(ctx context.Context, elem int) (int64, error)
	// N returns the domain size of the underlying list.
	N() int
}

// Wrapper decorates one list's source in a chaos pipeline: callers hand one
// to an engine entry point (e.g. db.TopKResilient) to splice injectors and
// retry policies between the engine and its lists.
type Wrapper func(list int, src Source) Source

// ErrSourceDead marks a ranked list as permanently unavailable: every
// subsequent access fails the same way. Engines test for it (or for any
// non-transient, non-context error) and drop the list from the aggregation.
var ErrSourceDead = errors.New("faults: ranked list permanently unavailable")

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string   { return fmt.Sprintf("transient: %v", e.err) }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// Transient wraps err so IsTransient reports true for it. Returns nil for a
// nil err.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable: some error in its
// chain implements Transient() bool returning true. Context errors are never
// transient.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// IsContextErr reports whether err is (or wraps) a context cancellation or
// deadline expiry — the class of errors that aborts a whole query rather
// than killing one list.
func IsContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
