package faults

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// sliceSource is an infallible in-test Source over a fixed entry slice.
type sliceSource struct {
	entries []Entry
	next    int
	n       int
}

func newSliceSource(n int, entries ...Entry) *sliceSource {
	return &sliceSource{entries: entries, n: n}
}

func (s *sliceSource) Next(ctx context.Context) (Entry, bool, error) {
	if s.next >= len(s.entries) {
		return Entry{}, false, nil
	}
	e := s.entries[s.next]
	s.next++
	return e, true, nil
}

func (s *sliceSource) Peek2() int64 {
	if s.next >= len(s.entries) {
		return math.MaxInt64
	}
	return s.entries[s.next].Pos2
}

func (s *sliceSource) Pos2(ctx context.Context, elem int) (int64, error) {
	for _, e := range s.entries {
		if e.Elem == elem {
			return e.Pos2, nil
		}
	}
	return 0, fmt.Errorf("elem %d not present", elem)
}

func (s *sliceSource) N() int { return s.n }

// flakySource fails the first `failures` accesses with a transient error,
// then delegates.
type flakySource struct {
	Source
	failures int
	calls    int
}

func (s *flakySource) Next(ctx context.Context) (Entry, bool, error) {
	s.calls++
	if s.calls <= s.failures {
		return Entry{}, false, Transient(fmt.Errorf("flaky call %d", s.calls))
	}
	return s.Source.Next(ctx)
}

func entries(n int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{Elem: i, Pos2: int64(2 * i)}
	}
	return es
}

func TestTransientClassification(t *testing.T) {
	base := errors.New("boom")
	if !IsTransient(Transient(base)) {
		t.Error("Transient(err) not classified transient")
	}
	if IsTransient(base) {
		t.Error("plain error classified transient")
	}
	if IsTransient(ErrSourceDead) {
		t.Error("ErrSourceDead classified transient")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
	if !errors.Is(Transient(base), base) {
		t.Error("Transient does not unwrap to the cause")
	}
	if !IsContextErr(context.Canceled) || !IsContextErr(fmt.Errorf("wrap: %w", context.DeadlineExceeded)) {
		t.Error("context errors not classified")
	}
	if IsContextErr(base) {
		t.Error("plain error classified as context error")
	}
}

func TestInjectDeterministic(t *testing.T) {
	// Two injectors with the same seed over the same access sequence must
	// fail at exactly the same points.
	run := func() []bool {
		src := Inject(newSliceSource(50, entries(50)...), Plan{Seed: 7, TransientRate: 0.3})
		var fails []bool
		for i := 0; i < 80; i++ {
			_, ok, err := src.Next(context.Background())
			fails = append(fails, err != nil)
			if err == nil && !ok {
				break
			}
		}
		return fails
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	failed := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at access %d", i)
		}
		if a[i] {
			failed++
		}
	}
	if failed == 0 {
		t.Error("TransientRate=0.3 over 50+ accesses injected no faults")
	}
}

func TestInjectTransientConsumesNoEntry(t *testing.T) {
	src := Inject(newSliceSource(10, entries(10)...), Plan{Seed: 3, TransientRate: 0.5})
	var got []Entry
	for len(got) < 10 {
		e, ok, err := src.Next(context.Background())
		if err != nil {
			if !IsTransient(err) {
				t.Fatalf("unexpected permanent error: %v", err)
			}
			continue // retry: the failed access must not have eaten an entry
		}
		if !ok {
			break
		}
		got = append(got, e)
	}
	want := entries(10)
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v (transient failure consumed an entry)", i, got[i], want[i])
		}
	}
}

func TestInjectTruncation(t *testing.T) {
	src := Inject(newSliceSource(10, entries(10)...), Plan{TruncateAt: 4})
	for i := 0; i < 4; i++ {
		e, ok, err := src.Next(context.Background())
		if err != nil || !ok {
			t.Fatalf("access %d: ok=%v err=%v", i, ok, err)
		}
		if e.Elem != i {
			t.Fatalf("access %d returned elem %d", i, e.Elem)
		}
	}
	if _, ok, err := src.Next(context.Background()); ok || err != nil {
		t.Fatalf("truncated source did not end cleanly: ok=%v err=%v", ok, err)
	}
	if src.Peek2() != math.MaxInt64 {
		t.Error("truncated source's frontier not MaxInt64")
	}
	// Random access still works past the truncation point.
	if v, err := src.Pos2(context.Background(), 9); err != nil || v != 18 {
		t.Errorf("Pos2(9) = %d, %v; want 18, nil", v, err)
	}
}

func TestInjectDeathAfter(t *testing.T) {
	src := Inject(newSliceSource(10, entries(10)...), Plan{DeathAfter: 3})
	for i := 0; i < 3; i++ {
		if _, ok, err := src.Next(context.Background()); !ok || err != nil {
			t.Fatalf("access %d failed early: ok=%v err=%v", i, ok, err)
		}
	}
	for i := 0; i < 2; i++ { // death is sticky
		if _, _, err := src.Next(context.Background()); !errors.Is(err, ErrSourceDead) {
			t.Fatalf("post-death access %d: err=%v, want ErrSourceDead", i, err)
		}
	}
	if _, err := src.Pos2(context.Background(), 0); !errors.Is(err, ErrSourceDead) {
		t.Errorf("post-death random access: err=%v, want ErrSourceDead", err)
	}
	if src.Peek2() != math.MaxInt64 {
		t.Error("dead source's frontier not MaxInt64")
	}
}

func TestInjectLatencyHonorsDeadline(t *testing.T) {
	sl := &FakeSleeper{}
	src := Inject(newSliceSource(10, entries(10)...), Plan{Latency: time.Second, Sleeper: sl})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := src.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next under canceled ctx: err=%v, want Canceled", err)
	}
	if _, _, err := src.Next(context.Background()); err != nil {
		t.Fatalf("Next after cancellation recovered: %v", err)
	}
	if got := sl.Waits(); len(got) != 1 || got[0] != time.Second {
		t.Errorf("recorded waits = %v, want [1s]", got)
	}
}

func TestWithRetryAbsorbsTransients(t *testing.T) {
	sl := &FakeSleeper{}
	acc := telemetry.NewAccessAccountant(1)
	inner := &flakySource{Source: newSliceSource(5, entries(5)...), failures: 2}
	src := WithRetry(inner, RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   8 * time.Millisecond,
		MaxDelay:    time.Second,
		Multiplier:  2,
		JitterSeed:  1,
		Sleeper:     sl,
	}, acc, 0)

	e, ok, err := src.Next(context.Background())
	if err != nil || !ok || e.Elem != 0 {
		t.Fatalf("retried Next = %+v ok=%v err=%v", e, ok, err)
	}
	waits := sl.Waits()
	if len(waits) != 2 {
		t.Fatalf("recorded %d backoffs, want 2", len(waits))
	}
	// Jitter keeps each backoff in [delay/2, delay], delay doubling from base.
	if waits[0] < 4*time.Millisecond || waits[0] > 8*time.Millisecond {
		t.Errorf("backoff[0] = %v outside [4ms, 8ms]", waits[0])
	}
	if waits[1] < 8*time.Millisecond || waits[1] > 16*time.Millisecond {
		t.Errorf("backoff[1] = %v outside [8ms, 16ms]", waits[1])
	}
	rep := acc.Report()
	if rep.Failed != 2 || rep.Retried != 2 {
		t.Errorf("accountant saw failed=%d retried=%d, want 2 and 2", rep.Failed, rep.Retried)
	}
}

func TestWithRetryExhaustionKillsSource(t *testing.T) {
	sl := &FakeSleeper{}
	acc := telemetry.NewAccessAccountant(1)
	inner := &flakySource{Source: newSliceSource(5, entries(5)...), failures: 100}
	src := WithRetry(inner, RetryPolicy{MaxAttempts: 3, Sleeper: sl, JitterSeed: 1,
		BaseDelay: time.Millisecond, MaxDelay: time.Second, Multiplier: 2}, acc, 0)

	_, _, err := src.Next(context.Background())
	if !errors.Is(err, ErrSourceDead) {
		t.Fatalf("exhausted retries: err=%v, want ErrSourceDead", err)
	}
	if inner.calls != 3 {
		t.Errorf("inner saw %d attempts, want 3", inner.calls)
	}
	// Dead stays dead, without touching the inner source again.
	if _, _, err := src.Next(context.Background()); !errors.Is(err, ErrSourceDead) {
		t.Fatalf("post-death Next: err=%v", err)
	}
	if inner.calls != 3 {
		t.Errorf("dead wrapper still forwarded accesses (calls=%d)", inner.calls)
	}
	if src.Peek2() != math.MaxInt64 {
		t.Error("dead wrapper's frontier not MaxInt64")
	}
	if rep := acc.Report(); rep.Failed != 3 || rep.Retried != 2 {
		t.Errorf("accountant saw failed=%d retried=%d, want 3 and 2", rep.Failed, rep.Retried)
	}
}

func TestWithRetryDeterministicBackoff(t *testing.T) {
	run := func() []time.Duration {
		sl := &FakeSleeper{}
		inner := &flakySource{Source: newSliceSource(5, entries(5)...), failures: 3}
		src := WithRetry(inner, RetryPolicy{MaxAttempts: 5, Sleeper: sl, JitterSeed: 42,
			BaseDelay: time.Millisecond, MaxDelay: time.Second, Multiplier: 2}, nil, 0)
		if _, _, err := src.Next(context.Background()); err != nil {
			t.Fatalf("Next: %v", err)
		}
		return sl.Waits()
	}
	a, b := run(), run()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("backoff counts = %d, %d; want 3", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWithRetryPermanentPassesThrough(t *testing.T) {
	boom := errors.New("disk gone")
	inner := &errSource{err: boom}
	src := WithRetry(inner, DefaultRetryPolicy(), nil, 0)
	if _, _, err := src.Next(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("permanent error not passed through: %v", err)
	}
	if inner.calls != 1 {
		t.Errorf("permanent error was retried (%d calls)", inner.calls)
	}
	// And the wrapper is dead afterwards.
	if _, _, err := src.Next(context.Background()); !errors.Is(err, ErrSourceDead) {
		t.Fatalf("wrapper not dead after permanent error: %v", err)
	}
}

func TestWithRetryContextPassesThrough(t *testing.T) {
	inner := &flakySource{Source: newSliceSource(5, entries(5)...), failures: 100}
	src := WithRetry(inner, RetryPolicy{MaxAttempts: 10, Sleeper: &FakeSleeper{}, JitterSeed: 1,
		BaseDelay: time.Millisecond, MaxDelay: time.Second, Multiplier: 2}, nil, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := src.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: err=%v, want Canceled", err)
	}
	// Cancellation is not death: the wrapper must still work afterwards.
	inner.failures = 0
	if _, ok, err := src.Next(context.Background()); !ok || err != nil {
		t.Fatalf("wrapper dead after mere cancellation: ok=%v err=%v", ok, err)
	}
}

type errSource struct {
	err   error
	calls int
}

func (s *errSource) Next(ctx context.Context) (Entry, bool, error) {
	s.calls++
	return Entry{}, false, s.err
}
func (s *errSource) Peek2() int64 { return 0 }
func (s *errSource) Pos2(ctx context.Context, elem int) (int64, error) {
	s.calls++
	return 0, s.err
}
func (s *errSource) N() int { return 0 }
