package faults

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/telemetry"
)

// Gated telemetry instruments of the injector.
var (
	tInjTransient = telemetry.GetCounter("faults.injected.transient")
	tInjDeaths    = telemetry.GetCounter("faults.injected.deaths")
)

// Plan configures a deterministic fault injector: given the same seed and
// the same access sequence, the injected faults are identical, so chaos
// experiments and tests replay exactly. All rates are per access attempt.
type Plan struct {
	// Seed drives the injector's private random stream.
	Seed int64
	// TransientRate is the probability an access fails with a retryable
	// error (the underlying access does not happen and no entry is lost).
	TransientRate float64
	// DeathRate is the probability an access kills the list permanently.
	DeathRate float64
	// DeathAfter, when positive, kills the list permanently once this many
	// accesses (sequential plus random) have succeeded — the deterministic
	// "kill list i mid-query" knob of the chaos tests.
	DeathAfter int
	// TruncateAt, when positive, makes the sorted scan end cleanly after
	// this many entries: the tail of the list is silently dropped, the way
	// a source that caps its response size behaves.
	TruncateAt int
	// Latency is a fixed wait injected before every access, served through
	// Sleeper so deadlines interrupt it.
	Latency time.Duration
	// Sleeper performs latency waits; nil means WallClock.
	Sleeper Sleeper
}

type injectedSource struct {
	src       Source
	plan      Plan
	rng       *rand.Rand
	sleeper   Sleeper
	served    int // successful accesses, sequential + random
	seqServed int // successful sequential accesses (for truncation)
	dead      bool
}

// Inject wraps src with the deterministic fault plan. A transient failure
// consumes no entry from the underlying source, so a retried access sees
// exactly what the failed one would have; death is permanent and sticky.
func Inject(src Source, plan Plan) Source {
	s := plan.Sleeper
	if s == nil {
		s = WallClock
	}
	return &injectedSource{
		src:     src,
		plan:    plan,
		rng:     rand.New(rand.NewSource(plan.Seed)),
		sleeper: s,
	}
}

// fault decides the fate of one access attempt: nil to let it through, a
// transient error, ErrSourceDead, or a context error from the latency wait.
func (s *injectedSource) fault(ctx context.Context) error {
	if s.dead {
		return ErrSourceDead
	}
	if s.plan.Latency > 0 {
		if err := s.sleeper.Sleep(ctx, s.plan.Latency); err != nil {
			return err
		}
	}
	if s.plan.DeathAfter > 0 && s.served >= s.plan.DeathAfter {
		return s.die()
	}
	if s.plan.DeathRate > 0 && s.rng.Float64() < s.plan.DeathRate {
		return s.die()
	}
	if s.plan.TransientRate > 0 && s.rng.Float64() < s.plan.TransientRate {
		tInjTransient.Inc()
		return Transient(fmt.Errorf("injected fault after %d accesses", s.served))
	}
	return nil
}

func (s *injectedSource) die() error {
	s.dead = true
	tInjDeaths.Inc()
	return ErrSourceDead
}

func (s *injectedSource) Next(ctx context.Context) (Entry, bool, error) {
	if err := s.fault(ctx); err != nil {
		return Entry{}, false, err
	}
	if s.plan.TruncateAt > 0 && s.seqServed >= s.plan.TruncateAt {
		return Entry{}, false, nil
	}
	e, ok, err := s.src.Next(ctx)
	if err != nil || !ok {
		return e, ok, err
	}
	s.served++
	s.seqServed++
	return e, true, nil
}

func (s *injectedSource) Pos2(ctx context.Context, elem int) (int64, error) {
	if err := s.fault(ctx); err != nil {
		return 0, err
	}
	v, err := s.src.Pos2(ctx, elem)
	if err == nil {
		s.served++
	}
	return v, err
}

func (s *injectedSource) Peek2() int64 {
	if s.dead {
		return math.MaxInt64
	}
	if s.plan.TruncateAt > 0 && s.seqServed >= s.plan.TruncateAt {
		return math.MaxInt64
	}
	return s.src.Peek2()
}

func (s *injectedSource) N() int { return s.src.N() }
