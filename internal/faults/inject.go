package faults

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Gated telemetry instruments of the injector.
var (
	tInjTransient = telemetry.GetCounter("faults.injected.transient")
	tInjDeaths    = telemetry.GetCounter("faults.injected.deaths")
)

// Plan configures a deterministic fault injector: given the same seed and
// the same access sequence, the injected faults are identical, so chaos
// experiments and tests replay exactly. All rates are per access attempt.
type Plan struct {
	// Seed drives the injector's private random stream.
	Seed int64
	// TransientRate is the probability an access fails with a retryable
	// error (the underlying access does not happen and no entry is lost).
	TransientRate float64
	// DeathRate is the probability an access kills the list permanently.
	DeathRate float64
	// DeathAfter, when positive, kills the list permanently once this many
	// accesses (sequential plus random) have succeeded — the deterministic
	// "kill list i mid-query" knob of the chaos tests.
	DeathAfter int
	// TruncateAt, when positive, makes the sorted scan end cleanly after
	// this many entries: the tail of the list is silently dropped, the way
	// a source that caps its response size behaves.
	TruncateAt int
	// Latency is a fixed wait injected before every access, served through
	// Sleeper so deadlines interrupt it.
	Latency time.Duration
	// Sleeper performs latency waits; nil means WallClock.
	Sleeper Sleeper
}

type injectedSource struct {
	src     Source
	plan    Plan
	sleeper Sleeper

	// mu guards the injector's mutable state: the private RNG stream and the
	// served/death bookkeeping. A Source need not be concurrency-safe, but
	// chaos harnesses do share one wrapped stack across goroutines, and an
	// unsynchronized *rand.Rand races (and can corrupt its internal state)
	// under that use. The lock is held across the underlying access too, so
	// the wrapper serializes the inner source and the served counts stay
	// consistent with the accesses they bill. Single-goroutine runs draw the
	// exact same RNG sequence as before: the lock changes when state may be
	// touched, never the order it is touched in.
	mu        sync.Mutex
	rng       *rand.Rand
	served    int // successful accesses, sequential + random
	seqServed int // successful sequential accesses (for truncation)
	dead      bool
}

// Inject wraps src with the deterministic fault plan. A transient failure
// consumes no entry from the underlying source, so a retried access sees
// exactly what the failed one would have; death is permanent and sticky.
// The returned source is safe for concurrent use (accesses serialize on an
// internal lock); determinism of the fault sequence is per access order, so
// concurrent callers see a valid but schedule-dependent interleaving.
func Inject(src Source, plan Plan) Source {
	s := plan.Sleeper
	if s == nil {
		s = WallClock
	}
	return &injectedSource{
		src:     src,
		plan:    plan,
		rng:     rand.New(rand.NewSource(plan.Seed)),
		sleeper: s,
	}
}

// gate performs the checks that precede every access — dead check, latency
// wait, fault draws — and on success returns with s.mu HELD so the caller
// can perform the underlying access and its bookkeeping atomically. On error
// the lock is released. The latency wait happens outside the lock so
// injected latency does not serialize into injected contention.
func (s *injectedSource) gate(ctx context.Context) error {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return ErrSourceDead
	}
	s.mu.Unlock()
	if s.plan.Latency > 0 {
		if err := s.sleeper.Sleep(ctx, s.plan.Latency); err != nil {
			return err
		}
	}
	s.mu.Lock()
	if err := s.faultLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	return nil
}

// faultLocked decides the fate of one access attempt: nil to let it through,
// a transient error, or ErrSourceDead. Caller holds s.mu.
func (s *injectedSource) faultLocked() error {
	if s.dead {
		// Killed between the gate's dead check and the draws.
		return ErrSourceDead
	}
	if s.plan.DeathAfter > 0 && s.served >= s.plan.DeathAfter {
		return s.dieLocked()
	}
	if s.plan.DeathRate > 0 && s.rng.Float64() < s.plan.DeathRate {
		return s.dieLocked()
	}
	if s.plan.TransientRate > 0 && s.rng.Float64() < s.plan.TransientRate {
		tInjTransient.Inc()
		return Transient(fmt.Errorf("injected fault after %d accesses", s.served))
	}
	return nil
}

func (s *injectedSource) dieLocked() error {
	s.dead = true
	tInjDeaths.Inc()
	return ErrSourceDead
}

func (s *injectedSource) Next(ctx context.Context) (Entry, bool, error) {
	if err := s.gate(ctx); err != nil {
		return Entry{}, false, err
	}
	defer s.mu.Unlock()
	if s.plan.TruncateAt > 0 && s.seqServed >= s.plan.TruncateAt {
		return Entry{}, false, nil
	}
	e, ok, err := s.src.Next(ctx)
	if err != nil || !ok {
		return e, ok, err
	}
	s.served++
	s.seqServed++
	return e, true, nil
}

func (s *injectedSource) Pos2(ctx context.Context, elem int) (int64, error) {
	if err := s.gate(ctx); err != nil {
		return 0, err
	}
	defer s.mu.Unlock()
	v, err := s.src.Pos2(ctx, elem)
	if err == nil {
		s.served++
	}
	return v, err
}

func (s *injectedSource) Peek2() int64 {
	// The underlying peek stays under the lock like Next/Pos2: the injector is
	// the layer that makes an unsynchronized inner source shareable.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead || (s.plan.TruncateAt > 0 && s.seqServed >= s.plan.TruncateAt) {
		return math.MaxInt64
	}
	return s.src.Peek2()
}

func (s *injectedSource) N() int { return s.src.N() }
