package faults

import (
	"context"
	"sync"
	"time"
)

// Sleeper abstracts waiting, so backoff and injected latency are testable
// without wall-clock time: production code uses WallClock, tests and
// benchmarks inject a FakeSleeper and run instantly.
type Sleeper interface {
	// Sleep blocks for d or until ctx is done, whichever comes first,
	// returning ctx.Err() in the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

type wallSleeper struct{}

func (wallSleeper) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WallClock is the real Sleeper: it waits on a timer and honors context
// cancellation mid-wait.
var WallClock Sleeper = wallSleeper{}

// FakeSleeper is an instant Sleeper for tests: it records every requested
// wait and returns immediately (still honoring an already-expired context,
// so deadline paths remain testable). Safe for concurrent use.
type FakeSleeper struct {
	mu    sync.Mutex
	waits []time.Duration
}

// Sleep records d and returns ctx.Err() without waiting.
func (s *FakeSleeper) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	s.waits = append(s.waits, d)
	s.mu.Unlock()
	return nil
}

// Waits returns a copy of the recorded wait durations in request order.
func (s *FakeSleeper) Waits() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.waits...)
}
