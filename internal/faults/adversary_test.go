package faults

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

func cleanEnsemble(t *testing.T, seed int64, n, m int) []*ranking.PartialRanking {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ens := make([]*ranking.PartialRanking, m)
	for i := range ens {
		ens[i] = randrank.Full(rng, n)
	}
	return ens
}

// TestInjectVotersDeterministic: replaying the same plan over the same clean
// ensemble — including concurrently, so -race watches the injector — yields
// identical ensembles and identical reports.
func TestInjectVotersDeterministic(t *testing.T) {
	clean := cleanEnsemble(t, 9, 12, 10)
	plans := []AdversaryPlan{
		{Seed: 42, Kind: ReversalSpam, Fraction: 0.2},
		{Seed: 42, Kind: CollusionClique, Count: 3, Targets: []int{7, 2}},
		{Seed: 42, Kind: NoiseVoters, Count: 4},
	}
	for _, plan := range plans {
		plan := plan
		t.Run(plan.Kind.String(), func(t *testing.T) {
			type run struct {
				ens []*ranking.PartialRanking
				rep *AdversaryReport
			}
			const replays = 4
			runs := make([]run, replays)
			var wg sync.WaitGroup
			for g := 0; g < replays; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					ens, rep, err := InjectVoters(clean, plan)
					if err != nil {
						t.Error(err)
						return
					}
					runs[g] = run{ens, rep}
				}(g)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			for g := 1; g < replays; g++ {
				if !reflect.DeepEqual(runs[g].rep, runs[0].rep) {
					t.Fatalf("replay %d report %+v != replay 0 report %+v", g, runs[g].rep, runs[0].rep)
				}
				if len(runs[g].ens) != len(runs[0].ens) {
					t.Fatalf("replay %d ensemble size %d != %d", g, len(runs[g].ens), len(runs[0].ens))
				}
				for i := range runs[0].ens {
					if !runs[g].ens[i].Equal(runs[0].ens[i]) {
						t.Fatalf("replay %d voter %d differs from replay 0", g, i)
					}
				}
			}
		})
	}
}

// TestInjectVotersSeedsDiffer: different seeds place the adversaries at
// different positions (content may coincide for reversal, placement must not).
func TestInjectVotersSeedsDiffer(t *testing.T) {
	clean := cleanEnsemble(t, 3, 10, 20)
	_, repA, err := InjectVoters(clean, AdversaryPlan{Seed: 1, Kind: NoiseVoters, Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, repB, err := InjectVoters(clean, AdversaryPlan{Seed: 2, Kind: NoiseVoters, Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(repA.Injected, repB.Injected) {
		t.Errorf("seeds 1 and 2 placed adversaries identically: %v", repA.Injected)
	}
}

// TestInjectVotersStructure: kind-specific shape checks — ensemble size,
// interleaved placement, clean voters preserved in order, and the attack
// ranking itself.
func TestInjectVotersStructure(t *testing.T) {
	clean := cleanEnsemble(t, 5, 8, 10)

	t.Run("fraction rounds up", func(t *testing.T) {
		ens, rep, err := InjectVoters(clean, AdversaryPlan{Seed: 11, Kind: ReversalSpam, Fraction: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		// ceil(0.25 * 10) = 3
		if len(rep.Injected) != 3 || len(ens) != 13 {
			t.Fatalf("injected %d voters into ensemble of %d, want 3 into 13", len(rep.Injected), len(ens))
		}
	})

	t.Run("clean voters survive in order", func(t *testing.T) {
		ens, rep, err := InjectVoters(clean, AdversaryPlan{Seed: 11, Kind: NoiseVoters, Count: 4})
		if err != nil {
			t.Fatal(err)
		}
		isAdv := make(map[int]bool, len(rep.Injected))
		for _, p := range rep.Injected {
			isAdv[p] = true
		}
		ci := 0
		for i, r := range ens {
			if isAdv[i] {
				continue
			}
			if r != clean[ci] {
				t.Fatalf("position %d: clean voter %d not preserved in order", i, ci)
			}
			ci++
		}
		if ci != len(clean) {
			t.Fatalf("found %d clean voters, want %d", ci, len(clean))
		}
	})

	t.Run("reversal spam reverses the consensus", func(t *testing.T) {
		ens, rep, err := InjectVoters(clean, AdversaryPlan{Seed: 11, Kind: ReversalSpam, Count: 2})
		if err != nil {
			t.Fatal(err)
		}
		want, err := reversalOfConsensus(clean)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range rep.Injected {
			if !ens[p].Equal(want) {
				t.Errorf("adversary at %d is not the consensus reversal", p)
			}
		}
		// And the reversal really is the reverse of the clean Borda order:
		// recompute the consensus and check element-wise reversal.
		fwd := want.Reverse()
		for _, p := range rep.Injected {
			if !ens[p].Reverse().Equal(fwd) {
				t.Errorf("reversal at %d does not invert back to the consensus", p)
			}
		}
	})

	t.Run("clique promotes the slate first", func(t *testing.T) {
		targets := []int{6, 1, 4}
		ens, rep, err := InjectVoters(clean, AdversaryPlan{Seed: 11, Kind: CollusionClique, Count: 3, Targets: targets})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range rep.Injected {
			order := ens[p].Order()
			for i, tgt := range targets {
				if order[i] != tgt {
					t.Fatalf("adversary at %d ranks %d at position %d, want slate %v first", p, order[i], i, targets)
				}
			}
			// All clique members share one ranking.
			if !ens[p].Equal(ens[rep.Injected[0]]) {
				t.Errorf("clique member at %d disagrees with the clique", p)
			}
		}
	})
}

// TestInjectVotersValidation: bad plans are rejected.
func TestInjectVotersValidation(t *testing.T) {
	clean := cleanEnsemble(t, 5, 6, 4)
	if _, _, err := InjectVoters(nil, AdversaryPlan{Kind: ReversalSpam, Count: 1}); err == nil {
		t.Error("empty clean ensemble accepted")
	}
	if _, _, err := InjectVoters(clean, AdversaryPlan{Kind: CollusionClique, Count: 1}); err == nil {
		t.Error("clique without targets accepted")
	}
	if _, _, err := InjectVoters(clean, AdversaryPlan{Kind: CollusionClique, Count: 1, Targets: []int{9}}); err == nil {
		t.Error("out-of-domain clique target accepted")
	}
	if _, _, err := InjectVoters(clean, AdversaryPlan{Kind: CollusionClique, Count: 1, Targets: []int{1, 1}}); err == nil {
		t.Error("duplicate clique target accepted")
	}
	if _, _, err := InjectVoters(clean, AdversaryPlan{Kind: ReversalSpam, Count: -2}); err == nil {
		t.Error("negative count accepted")
	}
	if _, _, err := InjectVoters(clean, AdversaryPlan{Kind: AdversaryKind(99), Count: 1}); err == nil {
		t.Error("unknown kind accepted")
	}
}
