package faults

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// cancelingSleeper cancels the caller's context the moment a backoff sleep
// starts, simulating a cancellation (or deadline expiry) that lands
// mid-backoff — deterministically, without wall-clock timing.
type cancelingSleeper struct {
	cancel context.CancelFunc
}

func (s cancelingSleeper) Sleep(ctx context.Context, d time.Duration) error {
	s.cancel()
	<-ctx.Done()
	return ctx.Err()
}

// TestRetryBackoffAbortsOnCancelMidBackoff is the regression test of the
// overload PR's context-aware retry fix: a context canceled during a backoff
// sleep must surface context.Canceled immediately, and the aborted backoff
// must NOT be charged as a retry — the access report reflects retries that
// actually ran, not ones that were planned.
func TestRetryBackoffAbortsOnCancelMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	acc := telemetry.NewAccessAccountant(1)
	inner := &flakySource{Source: newSliceSource(5, entries(5)...), failures: 100}
	src := WithRetry(inner, RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   time.Millisecond,
		Sleeper:     cancelingSleeper{cancel: cancel},
	}, acc, 0)

	_, _, err := src.Next(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	rep := acc.Report()
	if rep.Failed != 1 {
		t.Errorf("failed = %d, want 1 (only the attempt before the aborted backoff)", rep.Failed)
	}
	if rep.Retried != 0 {
		t.Errorf("retried = %d, want 0: the aborted backoff must not count as a retry", rep.Retried)
	}
	if inner.calls != 1 {
		t.Errorf("underlying source driven %d times after cancel, want 1", inner.calls)
	}
	// The wrapper must not have declared the list dead: cancellation is the
	// caller's choice, not a source failure. A dead wrapper reports
	// ErrSourceDead even under a pre-canceled context (the dead check runs
	// first), so this probe distinguishes the two without driving a retry.
	probe, pcancel := context.WithCancel(context.Background())
	pcancel()
	if _, _, err := src.Next(probe); errors.Is(err, ErrSourceDead) {
		t.Error("source marked dead by a canceled backoff")
	}
}

// TestRetryBackoffAbortsOnWallClockCancel exercises the same path through the
// real WallClock sleeper: with a 200ms+ backoff pending and the context
// canceled ~10ms in, Next must return promptly instead of finishing the
// sleep. Generous bounds keep this stable on loaded CI machines.
func TestRetryBackoffAbortsOnWallClockCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inner := &flakySource{Source: newSliceSource(5, entries(5)...), failures: 100}
	src := WithRetry(inner, RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   400 * time.Millisecond, // jitter keeps waits ≥ 200ms
		Sleeper:     WallClock,
	}, nil, 0)

	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := src.Next(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed > 150*time.Millisecond {
		t.Errorf("Next returned after %v; the backoff sleep ran past cancellation", elapsed)
	}
}

// TestRetryPreCanceledNeverTouchesSource: an already-dead context must not
// drive the underlying source at all — no attempt, no failure charged.
func TestRetryPreCanceledNeverTouchesSource(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	acc := telemetry.NewAccessAccountant(1)
	inner := &flakySource{Source: newSliceSource(5, entries(5)...), failures: 0}
	src := WithRetry(inner, RetryPolicy{Sleeper: &FakeSleeper{}}, acc, 0)

	if _, _, err := src.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if inner.calls != 0 {
		t.Errorf("underlying source driven %d times under a pre-canceled context", inner.calls)
	}
	if rep := acc.Report(); rep.Failed != 0 || rep.Retried != 0 {
		t.Errorf("charges under pre-canceled context: %+v", rep)
	}
}
