package faults

import (
	"context"
	"sync"
	"testing"
	"time"
)

// The injector and retry wrapper each own a *rand.Rand; both must be safe
// when one wrapped source is shared across goroutines (the matrix sweep does
// exactly this). Run under -race in CI. The unsynchronized sliceSource
// underneath is legal because the injector holds its lock across underlying
// access, serializing the inner source.
func TestFaultStackConcurrent(t *testing.T) {
	const n = 512
	injected := Inject(newSliceSource(n, entries(n)...), Plan{
		Seed:          99,
		TransientRate: 0.05, // transients exercised, exhaustion vanishingly rare
		Sleeper:       &FakeSleeper{},
	})
	pol := DefaultRetryPolicy()
	pol.Sleeper = &FakeSleeper{}
	pol.JitterSeed = 5
	src := WithRetry(injected, pol, nil, 0)

	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[int]int)
	// Four goroutines drain Next; four hammer Pos2 and Peek2 concurrently.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				e, ok, err := src.Next(context.Background())
				if err != nil {
					t.Errorf("Next failed through retry: %v", err)
					return
				}
				if !ok {
					return
				}
				mu.Lock()
				seen[e.Elem]++
				mu.Unlock()
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				elem := (g*500 + i) % n
				if p2, err := src.Pos2(context.Background(), elem); err != nil {
					t.Errorf("Pos2(%d) failed through retry: %v", elem, err)
					return
				} else if p2 != int64(2*elem) {
					t.Errorf("Pos2(%d) = %d, want %d", elem, p2, 2*elem)
					return
				}
				src.Peek2()
			}
		}(g)
	}
	wg.Wait()
	// Each entry must have been consumed by exactly one drainer: the retry
	// layer absorbs transients without double-delivering.
	if len(seen) != n {
		t.Fatalf("drained %d distinct entries, want %d", len(seen), n)
	}
	for e, count := range seen {
		if count != 1 {
			t.Fatalf("entry %d delivered %d times", e, count)
		}
	}
}

// The locks exist for concurrent callers only: a single-goroutine run must
// draw from both RNGs in exactly the order the unguarded code did, so
// same-seed replays — entry sequence, fault points, and backoff schedule —
// stay bit-for-bit reproducible.
func TestFaultStackSingleGoroutineReplay(t *testing.T) {
	type trace struct {
		elems []int
		waits []time.Duration
	}
	run := func() trace {
		sleeper := &FakeSleeper{}
		injected := Inject(newSliceSource(64, entries(64)...), Plan{
			Seed:          21,
			TransientRate: 0.4,
			Sleeper:       sleeper,
		})
		pol := DefaultRetryPolicy()
		pol.Sleeper = sleeper
		pol.JitterSeed = 9
		src := WithRetry(injected, pol, nil, 0)
		var tr trace
		for {
			e, ok, err := src.Next(context.Background())
			if err != nil || !ok {
				break
			}
			tr.elems = append(tr.elems, e.Elem)
		}
		tr.waits = sleeper.Waits()
		return tr
	}
	a, b := run(), run()
	if len(a.elems) != len(b.elems) {
		t.Fatalf("entry streams diverged in length: %d vs %d", len(a.elems), len(b.elems))
	}
	for i := range a.elems {
		if a.elems[i] != b.elems[i] {
			t.Fatalf("entry streams diverged at %d: %d vs %d", i, a.elems[i], b.elems[i])
		}
	}
	if len(a.waits) != len(b.waits) {
		t.Fatalf("backoff schedules diverged in length: %d vs %d", len(a.waits), len(b.waits))
	}
	for i := range a.waits {
		if a.waits[i] != b.waits[i] {
			t.Fatalf("backoff schedules diverged at %d: %v vs %v", i, a.waits[i], b.waits[i])
		}
	}
	if len(a.waits) == 0 {
		t.Error("TransientRate=0.4 produced no retries; replay test exercised nothing")
	}
}
