package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/randrank"
	"repro/internal/ranking"
)

// E1PenaltySweep reproduces Proposition 13: K^(p) is a metric for
// p in [1/2, 1], a near metric for p in (0, 1/2), and not even a distance
// measure for p = 0. It enumerates all triples of bucket orders over a small
// domain and samples random triples on a larger one, counting regularity and
// triangle-inequality failures and the worst relaxed-polygonal constant.
func E1PenaltySweep(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "K^(p) penalty sweep over all bucket-order triples (n=3) plus random triples (n=12)",
		Claim:   "Prop. 13: metric for p>=1/2, near metric for 0<p<1/2, not a distance measure for p=0",
		Headers: []string{"p", "regularity", "triangle-violations", "worst-ratio", "verdict (expected)"},
	}
	rng := rand.New(rand.NewSource(seed))

	var small []*ranking.PartialRanking
	ranking.ForEachPartialRanking(3, func(pr *ranking.PartialRanking) bool {
		small = append(small, pr)
		return true
	})
	type triple [3]*ranking.PartialRanking
	var triples []triple
	for _, a := range small {
		for _, b := range small {
			for _, c := range small {
				triples = append(triples, triple{a, b, c})
			}
		}
	}
	for trial := 0; trial < 2000; trial++ {
		n := 12
		triples = append(triples, triple{
			randrank.Partial(rng, n, 4),
			randrank.Partial(rng, n, 4),
			randrank.Partial(rng, n, 4),
		})
	}

	for _, p := range []float64{0, 0.1, 0.25, 0.4, 0.5, 0.75, 1} {
		regularOK := true
		violations := 0
		worst := 1.0
		for _, tr := range triples {
			dxz, err := metrics.KWithPenalty(tr[0], tr[2], p)
			if err != nil {
				return nil, err
			}
			dxy, _ := metrics.KWithPenalty(tr[0], tr[1], p)
			dyz, _ := metrics.KWithPenalty(tr[1], tr[2], p)
			if dxy == 0 && !tr[0].Equal(tr[1]) {
				regularOK = false
			}
			if sum := dxy + dyz; dxz > sum+1e-12 {
				violations++
				if sum > 0 && dxz/sum > worst {
					worst = dxz / sum
				}
			}
		}
		verdict := "metric"
		switch {
		case p == 0:
			verdict = "NOT a distance measure"
		case p < 0.5:
			verdict = fmt.Sprintf("near metric (ratio <= %.3g)", 1/(2*p))
		}
		t.AddRow(p, map[bool]string{true: "holds", false: "FAILS"}[regularOK],
			violations, worst, verdict)
	}
	t.Notef("%d triples tested per p; worst-ratio is max d(x,z)/(d(x,y)+d(y,z)) over violated triples", len(triples))
	t.Notef("Prop. 13 predicts worst-ratio <= 1/(2p) for 0<p<1/2 and no violations for p>=1/2")
	return t, nil
}

// E2Hausdorff reproduces Theorem 5 and Proposition 6: the refinement
// construction and the counting formula both compute the brute-force
// Hausdorff distances, exhaustively for small n and on random instances.
func E2Hausdorff(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Hausdorff metrics: three independent computations agree",
		Claim:   "Thm 5 (refinement witnesses) and Prop 6 (|U|+max(|S|,|T|)) equal the max-min over all full refinements",
		Headers: []string{"workload", "pairs", "KHaus agree", "FHaus agree"},
	}
	rng := rand.New(rand.NewSource(seed))

	check := func(a, b *ranking.PartialRanking) (bool, bool, error) {
		kBrute, err := metrics.KHausBrute(a, b)
		if err != nil {
			return false, false, err
		}
		kProp6, _ := metrics.KHaus(a, b)
		kThm5, _ := metrics.KHausViaRefinement(a, b)
		fBrute, err := metrics.FHausBrute(a, b)
		if err != nil {
			return false, false, err
		}
		fThm5, _ := metrics.FHaus(a, b)
		return kBrute == kProp6 && kBrute == kThm5, fBrute == fThm5, nil
	}

	for n := 2; n <= 4; n++ {
		var all []*ranking.PartialRanking
		ranking.ForEachPartialRanking(n, func(pr *ranking.PartialRanking) bool {
			all = append(all, pr)
			return true
		})
		pairs, kOK, fOK := 0, 0, 0
		for _, a := range all {
			for _, b := range all {
				k, f, err := check(a, b)
				if err != nil {
					return nil, err
				}
				pairs++
				if k {
					kOK++
				}
				if f {
					fOK++
				}
			}
		}
		t.AddRow(fmt.Sprintf("exhaustive n=%d", n), pairs,
			fmt.Sprintf("%d/%d", kOK, pairs), fmt.Sprintf("%d/%d", fOK, pairs))
	}
	pairs, kOK, fOK := 0, 0, 0
	for trial := 0; trial < 200; trial++ {
		n := 6 + rng.Intn(3)
		a := randrank.Partial(rng, n, 3)
		b := randrank.Partial(rng, n, 3)
		k, f, err := check(a, b)
		if err != nil {
			return nil, err
		}
		pairs++
		if k {
			kOK++
		}
		if f {
			fOK++
		}
	}
	t.AddRow("random n=6..8, buckets<=3", pairs,
		fmt.Sprintf("%d/%d", kOK, pairs), fmt.Sprintf("%d/%d", fOK, pairs))
	return t, nil
}

// E3Equivalence reproduces Theorem 7 (Equations 4, 5, 6): the four metrics
// are within factor 2 of each other. It reports the observed extremes of
// each ratio across tie-density regimes.
func E3Equivalence(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Observed equivalence ratios across tie densities",
		Claim:   "Thm 7: KHaus<=FHaus<=2KHaus, Kprof<=Fprof<=2Kprof, Kprof<=KHaus<=2Kprof",
		Headers: []string{"n", "max bucket", "pairs", "Fprof/Kprof (min..max)", "FHaus/KHaus (min..max)", "KHaus/Kprof (min..max)"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range []int{10, 50, 200} {
		for _, maxB := range []int{2, 8} {
			const pairs = 300
			minR := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
			maxR := [3]float64{}
			for trial := 0; trial < pairs; trial++ {
				a := randrank.Partial(rng, n, maxB)
				b := randrank.Partial(rng, n, maxB)
				kp, err := metrics.KProf(a, b)
				if err != nil {
					return nil, err
				}
				fp, _ := metrics.FProf(a, b)
				kh, _ := metrics.KHaus(a, b)
				fh, _ := metrics.FHaus(a, b)
				if kp == 0 {
					continue
				}
				ratios := [3]float64{fp / kp, float64(fh) / float64(kh), float64(kh) / kp}
				for i, r := range ratios {
					if r < minR[i] {
						minR[i] = r
					}
					if r > maxR[i] {
						maxR[i] = r
					}
				}
			}
			t.AddRow(n, maxB, pairs,
				fmt.Sprintf("%.3f..%.3f", minR[0], maxR[0]),
				fmt.Sprintf("%.3f..%.3f", minR[1], maxR[1]),
				fmt.Sprintf("%.3f..%.3f", minR[2], maxR[2]))
		}
	}
	t.Notef("all ratios must stay within [1, 2]; the bound is tight only on adversarial pairs")
	return t, nil
}

// E8MetricScaling validates the O(n log n) metric engines against their
// quadratic references, then times them across domain sizes to exhibit the
// near-linear scaling claimed in Section 4.
func E8MetricScaling(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Metric computation cost (single pair, ns)",
		Claim:   "Sec. 4: all four metrics computable in polynomial time; these engines are O(n log n)",
		Headers: []string{"n", "Kprof(ns)", "Fprof(ns)", "KHaus(ns)", "FHaus(ns)", "naive pairs(ns)"},
	}
	rng := rand.New(rand.NewSource(seed))

	// Correctness gate first.
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(50)
		a := randrank.Partial(rng, n, 6)
		b := randrank.Partial(rng, n, 6)
		fast, err := metrics.CountPairs(a, b)
		if err != nil {
			return nil, err
		}
		slow, _ := metrics.CountPairsNaive(a, b)
		if fast != slow {
			return nil, fmt.Errorf("E8: CountPairs mismatch at n=%d", n)
		}
	}
	t.Notef("correctness gate: CountPairs == CountPairsNaive on 50 random pairs (passed)")

	timeIt := func(f func()) int64 {
		// Run enough iterations to get past timer resolution.
		start := time.Now()
		iters := 0
		for time.Since(start) < 20*time.Millisecond {
			f()
			iters++
		}
		return time.Since(start).Nanoseconds() / int64(iters)
	}
	for _, n := range []int{1000, 10000, 100000} {
		a := randrank.Partial(rng, n, 6)
		b := randrank.Partial(rng, n, 6)
		kp := timeIt(func() { _, _ = metrics.KProf(a, b) })
		fp := timeIt(func() { _, _ = metrics.FProf(a, b) })
		kh := timeIt(func() { _, _ = metrics.KHaus(a, b) })
		fh := timeIt(func() { _, _ = metrics.FHaus(a, b) })
		naive := int64(0)
		if n <= 10000 {
			naive = timeIt(func() { _, _ = metrics.CountPairsNaive(a, b) })
		}
		naiveCell := "-"
		if naive > 0 {
			naiveCell = fmt.Sprintf("%d", naive)
		}
		t.AddRow(n, kp, fp, kh, fh, naiveCell)
	}
	t.Notef("fast engines should grow ~n log n per decade (~12x); the naive reference grows ~100x")
	return t, nil
}

// E10TopKIdentities reproduces Appendix A.3: restricted to top-k lists (over
// their active domain), Kavg equals Kprof, Fprof equals the location-
// parameter footrule at l=(n+k+1)/2, and even K^(0) becomes a genuine
// distance measure.
func E10TopKIdentities(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Top-k list identities",
		Claim:   "App. A.3: Kavg=Kprof on active domains; Fprof=F^(l) at l=(n+k+1)/2; K^(0) regular on top-k lists",
		Headers: []string{"check", "instances", "holds"},
	}
	rng := rand.New(rand.NewSource(seed))

	// Fprof = F^(l): all pairs of same-k top-k lists, small n exhaustive via
	// permutations, plus random larger.
	flChecked, flOK := 0, 0
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(10)
		k := 1 + rng.Intn(n-1)
		a := randrank.TopK(rng, n, k)
		b := randrank.TopK(rng, n, k)
		fl, err := metrics.FLocation(a, b, float64(n+k+1)/2)
		if err != nil {
			return nil, err
		}
		fp, _ := metrics.FProf(a, b)
		flChecked++
		if fl == fp {
			flOK++
		}
	}
	t.AddRow("Fprof = F^(l) at l=(n+k+1)/2", flChecked, fmt.Sprintf("%d/%d", flOK, flChecked))

	// Kavg = Kprof on active-domain top-k pairs; K^(0) regularity there too.
	kavgChecked, kavgOK, k0OK := 0, 0, 0
	for trial := 0; trial < 500; trial++ {
		k := 2 + rng.Intn(4)
		n := k + 1 + rng.Intn(k)
		if n > 2*k {
			n = 2 * k
		}
		a, b, err := activeDomainTopKPair(rng, n, k)
		if err != nil {
			return nil, err
		}
		kavg, _ := metrics.KAvg(a, b)
		kprof, _ := metrics.KProf(a, b)
		k0, _ := metrics.KWithPenalty(a, b, 0)
		kavgChecked++
		if kavg == kprof {
			kavgOK++
		}
		if a.Equal(b) == (k0 == 0) {
			k0OK++
		}
	}
	t.AddRow("Kavg = Kprof (active domain)", kavgChecked, fmt.Sprintf("%d/%d", kavgOK, kavgChecked))
	t.AddRow("K^(0) regular on top-k lists", kavgChecked, fmt.Sprintf("%d/%d", k0OK, kavgChecked))

	// Counter-check: on general partial rankings Kavg is NOT a distance
	// measure (self-distance positive) and K^(0) is not regular.
	sigma := ranking.MustFromBuckets(3, [][]int{{0, 1}, {2}})
	selfK, _ := metrics.KAvg(sigma, sigma)
	t.AddRow("Kavg(sigma,sigma) on general partial ranking", 1,
		fmt.Sprintf("= %.2f (> 0, as A.3 warns)", selfK))
	return t, nil
}

// activeDomainTopKPair builds two top-k lists over {0..n-1} whose top sets
// cover the domain (the active-domain condition of Appendix A.3).
func activeDomainTopKPair(rng *rand.Rand, n, k int) (*ranking.PartialRanking, *ranking.PartialRanking, error) {
	perm := rng.Perm(n)
	a, err := ranking.TopKList(n, k, perm)
	if err != nil {
		return nil, nil, err
	}
	topA := map[int]bool{}
	for _, e := range perm[:k] {
		topA[e] = true
	}
	var rest, inA []int
	for e := 0; e < n; e++ {
		if topA[e] {
			inA = append(inA, e)
		} else {
			rest = append(rest, e)
		}
	}
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	rng.Shuffle(len(inA), func(i, j int) { inA[i], inA[j] = inA[j], inA[i] })
	b, err := ranking.TopKList(n, k, append(append([]int{}, rest...), inA...))
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}
