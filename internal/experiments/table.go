// Package experiments contains the runners that reproduce every evaluated
// claim of the paper as an executable experiment. The paper is a theory
// paper — its "evaluation" is a set of theorems, propositions, and the
// Figure 1 pseudocode — so each experiment validates one published claim on
// generated workloads and emits a table; EXPERIMENTS.md records the results
// and DESIGN.md maps each experiment to the claim it reproduces.
//
// All experiments are deterministic given their seed.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/guard"
)

// Table is one experiment's result: a titled grid of rows plus free-form
// notes (caveats, observed extremes, verdicts).
type Table struct {
	ID      string // experiment identifier, e.g. "E3"
	Title   string
	Claim   string // the paper claim being reproduced
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, stringifying each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Notef appends a formatted note.
func (t *Table) Notef(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Claim != "" {
		if _, err := fmt.Fprintf(w, "claim: %s\n", t.Claim); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
		return err
	}
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, strings.Join(rule, "  ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "*Claim:* %s\n\n", t.Claim)
	}
	sb.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*Note:* %s\n", n)
	}
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Spec describes one registered experiment.
type Spec struct {
	ID    string
	Title string
	Run   func(seed int64) (*Table, error)
}

// Registry lists every experiment in order. cmd/experiments and the root
// benchmark harness iterate it.
var Registry = []Spec{
	{"E1", "K^(p) penalty sweep: metric / near metric / not a distance measure", E1PenaltySweep},
	{"E2", "Hausdorff characterization: Thm 5 and Prop 6 vs brute force", E2Hausdorff},
	{"E3", "Metric equivalence constants (Thm 7, Eqs 4-6)", E3Equivalence},
	{"E4", "Median top-k 3-approximation (Thm 9)", E4Theorem9},
	{"E5", "Figure 1 DP: optimality and O(n^2) scaling (Thm 10)", E5DynamicProgram},
	{"E6", "Median full ranking vs exact footrule optimum (Thm 11)", E6Theorem11},
	{"E7", "MEDRANK sequential-access cost and instance optimality", E7InstanceOptimality},
	{"E8", "Metric computation: O(n log n) engines vs references", E8MetricScaling},
	{"E9", "Database catalog workload: median vs baselines", E9Catalog},
	{"E10", "Top-k identities: Kavg = Kprof, Fprof = F^(l) (App. A.3)", E10TopKIdentities},
	{"E11", "Reflected-duplicate construction, Lemmas 21-23 (App. A.5.2)", E11Reflection},
	{"E12", "Strong-sense near-optimality of median top-k (App. A.6.3)", E12StrongOptimality},
	{"E13", "Hidden-center recovery from noisy ties (Sec. 1 robustness)", E13Recovery},
	{"E14", "Condorcet-winner compliance of the aggregators", E14Condorcet},
	{"E15", "Degraded-mode MEDRANK under injected list death", E15Chaos},
	{"E16", "Hostile-voter injection vs robust aggregation", E16Robust},
	{"E17", "Middleware cost of MEDRANK/TA/NRA/CA across cost regimes", E17MiddlewareCost},
}

// Run looks up and runs one experiment by ID under panic supervision: a bug
// in one experiment body surfaces as an error wrapping *guard.PanicError
// (with the stack attached), so a batch run over the registry reports the
// failed experiment and carries on instead of crashing the process.
func Run(id string, seed int64) (_ *Table, err error) {
	defer guard.Capture(&err)
	for _, s := range Registry {
		if s.ID == id {
			return s.Run(seed)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}
