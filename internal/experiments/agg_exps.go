package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/aggregate"
	"repro/internal/metrics"
	"repro/internal/randrank"
	"repro/internal/ranking"
)

// E4Theorem9 reproduces Theorem 9: the top-k list read off the median
// position vector is within factor 3 of the optimal top-k list under the
// summed Fprof (L1) objective. Small domains are solved exactly by
// enumeration; the observed worst factor is reported per (m, k).
func E4Theorem9(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Median top-k vs exhaustive optimal top-k (n=6, 40 trials each)",
		Claim:   "Thm 9: sum L1(median top-k, inputs) <= 3 * optimum over all top-k lists",
		Headers: []string{"m", "k", "mean factor", "worst factor", "bound"},
	}
	rng := rand.New(rand.NewSource(seed))
	const n, trials = 6, 40
	for _, m := range []int{3, 5, 9} {
		for _, k := range []int{1, 3} {
			sum, worst := 0.0, 0.0
			counted := 0
			for trial := 0; trial < trials; trial++ {
				var in []*ranking.PartialRanking
				for i := 0; i < m; i++ {
					in = append(in, randrank.Partial(rng, n, 3))
				}
				got, err := aggregate.MedianTopK(in, k)
				if err != nil {
					return nil, err
				}
				gotObj, err := aggregate.SumL1Ranking(got, in)
				if err != nil {
					return nil, err
				}
				_, opt, err := aggregate.OptimalTopKBrute(in, k)
				if err != nil {
					return nil, err
				}
				if opt == 0 {
					continue
				}
				f := gotObj / opt
				if f > 3+1e-9 {
					return nil, fmt.Errorf("E4: Theorem 9 violated: factor %.4f", f)
				}
				sum += f
				counted++
				if f > worst {
					worst = f
				}
			}
			t.AddRow(m, k, sum/float64(counted), worst, 3)
		}
	}
	t.Notef("measured factors sit far below the worst-case bound, as the paper's analysis allows")
	return t, nil
}

// E5DynamicProgram reproduces Theorem 10 / Figure 1: the DP returns the true
// L1-closest partial ranking (validated against exhaustive search over all
// bucket orders), the end-to-end aggregate is a 2-approximation over all
// partial rankings, and the runtime scales as O(n^2).
func E5DynamicProgram(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Figure 1 dynamic program: optimality and scaling",
		Claim:   "Thm 10: f-dagger computable in O(n^2); factor 2 vs all partial rankings",
		Headers: []string{"check", "value"},
	}
	rng := rand.New(rand.NewSource(seed))

	// Optimality of the DP itself vs brute force over all bucket orders.
	agree := 0
	const optTrials = 60
	for trial := 0; trial < optTrials; trial++ {
		n := 1 + rng.Intn(7)
		f := make([]float64, n)
		for i := range f {
			f[i] = float64(rng.Intn(4*n)) / 2
		}
		fig1, err := aggregate.OptimalPartialFigure1(f)
		if err != nil {
			return nil, err
		}
		brute, err := aggregate.OptimalPartialBrute(f)
		if err != nil {
			return nil, err
		}
		if fig1.Cost4 == brute.Cost4 {
			agree++
		}
	}
	t.AddRow("DP cost == exhaustive optimum (n<=7)", fmt.Sprintf("%d/%d", agree, optTrials))

	// Factor-2 guarantee of the end-to-end aggregate.
	worst := 0.0
	const aggTrials = 40
	for trial := 0; trial < aggTrials; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		fd, err := aggregate.OptimalPartialAggregate(in)
		if err != nil {
			return nil, err
		}
		got, err := aggregate.SumL1Ranking(fd, in)
		if err != nil {
			return nil, err
		}
		_, opt, err := aggregate.OptimalPartialRankingBrute(in)
		if err != nil {
			return nil, err
		}
		if opt > 0 && got/opt > worst {
			worst = got / opt
		}
		if got > 2*opt+1e-9 {
			return nil, fmt.Errorf("E5: Theorem 10 factor violated: %.4f", got/opt)
		}
	}
	t.AddRow("worst observed Theorem 10 factor (bound 2)", worst)

	// O(n^2) scaling of the Figure 1 engine.
	prev := int64(0)
	for _, n := range []int{500, 1000, 2000, 4000} {
		f := make([]float64, n)
		for i := range f {
			f[i] = float64(rng.Intn(2*n)) / 2
		}
		start := time.Now()
		if _, err := aggregate.OptimalPartialFigure1(f); err != nil {
			return nil, err
		}
		el := time.Since(start).Nanoseconds()
		growth := "-"
		if prev > 0 {
			growth = fmt.Sprintf("%.2fx", float64(el)/float64(prev))
		}
		t.AddRow(fmt.Sprintf("Figure 1 runtime n=%d", n), fmt.Sprintf("%s (growth %s)", time.Duration(el), growth))
		prev = el
	}
	t.Notef("doubling n should roughly quadruple the runtime (O(n^2))")
	return t, nil
}

// E6Theorem11 reproduces Theorem 11: with full-ranking inputs, the median
// refinement is within factor 2 of the exact footrule-optimal full ranking,
// computed by the Hungarian algorithm — the answer to the open question of
// Dwork et al. / Fagin et al.
func E6Theorem11(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Median full ranking vs Hungarian footrule optimum (Mallows judges)",
		Claim:   "Thm 11: sum L1(median refinement, inputs) <= 2 * optimum over full rankings",
		Headers: []string{"n", "m", "theta", "mean factor", "worst factor", "bound"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range []int{20, 60} {
		for _, m := range []int{3, 5, 9} {
			for _, theta := range []float64{0.0, 0.5} {
				const trials = 15
				sum, worst := 0.0, 0.0
				counted := 0
				for trial := 0; trial < trials; trial++ {
					in, _ := randrank.MallowsEnsemble(rng, n, m, theta)
					got, err := aggregate.MedianFull(in)
					if err != nil {
						return nil, err
					}
					gotObj, err := aggregate.SumL1Ranking(got, in)
					if err != nil {
						return nil, err
					}
					_, opt, err := aggregate.FootruleOptimalFull(in)
					if err != nil {
						return nil, err
					}
					if opt == 0 {
						continue
					}
					f := gotObj / opt
					if f > 2+1e-9 {
						return nil, fmt.Errorf("E6: Theorem 11 violated: factor %.4f", f)
					}
					sum += f
					counted++
					if f > worst {
						worst = f
					}
				}
				t.AddRow(n, m, theta, sum/float64(counted), worst, 2)
			}
		}
	}
	t.Notef("theta=0 is uniform noise (hard case); larger theta concentrates the judges")
	return t, nil
}

// E9Catalog reproduces the paper's motivating database scenario: a catalog
// whose few-valued attribute sorts are aggregated. It compares median rank
// aggregation against the baselines on the summed Fprof and Kprof
// objectives (normalized by the exact Hungarian footrule optimum) and
// reports MEDRANK's access cost for the top-10.
func E9Catalog(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Catalog workload (n=200 items, Zipf few-valued attributes)",
		Claim:   "Sec. 1/6: median aggregation is competitive with heavier baselines and uniquely database-friendly",
		Headers: []string{"m", "algorithm", "output", "sum Fprof", "x class opt", "sum Kprof", "top-10 access (frac of full scan)"},
	}
	rng := rand.New(rand.NewSource(seed))
	const n = 200
	for _, m := range []int{4, 6} {
		ens := randrank.CatalogEnsemble(rng, n, m, 5, 1.0, 1.5)
		in := ens.Rankings

		// Two candidate classes: full-ranking outputs are normalized by the
		// exact Hungarian optimum over full rankings; partial-ranking
		// outputs (which can mirror the inputs' heavy ties and thus achieve
		// far smaller objectives) are normalized by the best partial
		// candidate seen.
		type algo struct {
			name    string
			partial bool
			run     func() (*ranking.PartialRanking, error)
		}
		algos := []algo{
			{"median (Thm 11)", false, func() (*ranking.PartialRanking, error) { return aggregate.MedianFull(in) }},
			{"footrule-optimal (Hungarian)", false, func() (*ranking.PartialRanking, error) {
				pr, _, err := aggregate.FootruleOptimalFull(in)
				return pr, err
			}},
			{"Borda", false, func() (*ranking.PartialRanking, error) { return aggregate.Borda(in) }},
			{"MC4", false, func() (*ranking.PartialRanking, error) {
				return aggregate.MarkovChain(in, aggregate.MC4, aggregate.MarkovChainOptions{})
			}},
			{"Borda + local Kemeny", false, func() (*ranking.PartialRanking, error) {
				b, err := aggregate.Borda(in)
				if err != nil {
					return nil, err
				}
				return aggregate.LocalKemenize(b, in)
			}},
			{"median DP (Thm 10)", true, func() (*ranking.PartialRanking, error) { return aggregate.OptimalPartialAggregate(in) }},
			{"best-of-inputs", true, func() (*ranking.PartialRanking, error) {
				_, pr, _, err := aggregate.BestOfInputs(in, func(a, b *ranking.PartialRanking) (float64, error) {
					return metrics.FProf(a, b)
				})
				return pr, err
			}},
		}

		_, fOptFull, err := aggregate.FootruleOptimalFull(in)
		if err != nil {
			return nil, err
		}
		results := make(map[string]*ranking.PartialRanking)
		fPartialBest := -1.0
		for _, a := range algos {
			pr, err := a.run()
			if err != nil {
				return nil, err
			}
			results[a.name] = pr
			if a.partial {
				fObj, err := aggregate.SumL1Ranking(pr, in)
				if err != nil {
					return nil, err
				}
				if fPartialBest < 0 || fObj < fPartialBest {
					fPartialBest = fObj
				}
			}
		}
		for _, a := range algos {
			pr := results[a.name]
			fObj, err := aggregate.SumL1Ranking(pr, in)
			if err != nil {
				return nil, err
			}
			kObj, err := aggregate.SumDistance(pr, in, func(x, y *ranking.PartialRanking) (float64, error) {
				return metrics.KProf(x, y)
			})
			if err != nil {
				return nil, err
			}
			classOpt := fOptFull
			output := "full"
			if a.partial {
				classOpt = fPartialBest
				output = "partial"
			}
			access := "-"
			if a.name == "median (Thm 11)" {
				res, err := medrankAccess(in, 10)
				if err != nil {
					return nil, err
				}
				access = res
			}
			t.AddRow(m, a.name, output, fObj, fObj/classOpt, kObj, access)
		}
	}
	t.Notef("full-ranking outputs are normalized by the Hungarian optimum; partial-ranking outputs by the best partial candidate (they mirror the inputs' ties, so their raw objectives are incomparably smaller)")
	t.Notef("only median rank aggregation admits the sequential-access top-k engine; the others need full scans")
	return t, nil
}
