package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/aggregate"
	"repro/internal/faults"
	"repro/internal/randrank"
	"repro/internal/ranking"
	"repro/internal/robust"
)

// E16Robust measures what hostile voters cost each aggregation engine: for a
// sweep of adversary kinds (coordinated consensus-reversal spam, a colluding
// clique promoting a slate of just-outside-top-k items, and uncoordinated
// random noise) and injected fractions, it corrupts clean Mallows ensembles
// with the deterministic voter injector and scores how much of the CLEAN
// consensus top-k each engine still recovers. Plain Borda is the fragile
// baseline; plain median is the classical partial defense (robust to <50%
// per-coordinate outliers); the robust engines (reliability-trimmed Borda,
// reliability-weighted median, trim-then-MinMax) get the injected count as
// their trim budget, the setting a deployment with an adversary-fraction
// estimate operates in.
func E16Robust(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E16",
		Title: "Hostile-voter injection vs robust aggregation (n=60, m=20, k=10, theta=0.15)",
		Claim: "robustness: reliability-weighted trimming recovers the clean consensus top-k that plain Borda loses to spam and collusion",
		Headers: []string{
			"attack", "fraction", "adversaries", "plain borda", "plain median",
			"trimmed borda", "weighted median", "minmax",
		},
	}
	const (
		n      = 60
		m      = 20
		k      = 10
		theta  = 0.15
		trials = 6
	)
	rng := rand.New(rand.NewSource(seed))

	// One clean ensemble per trial, shared across the whole (kind, fraction)
	// sweep so rows differ only in the injected adversaries. Every engine is
	// scored against its OWN fault-free answer on the clean ensemble: recovery
	// then isolates the damage injection does to that engine, not the engines'
	// standing disagreement about clean data (weighted median and MinMax
	// legitimately rank a clean ensemble differently from Borda, and that gap
	// is not the adversary's doing).
	type instance struct {
		clean []*ranking.PartialRanking
		slate []int // clique targets: clean Borda positions k..k+2
		// cleanTop maps each engine column to its fault-free top-k element set.
		cleanTop map[string]map[int]bool
	}
	topSet := func(agg *ranking.PartialRanking) map[int]bool {
		top := make(map[int]bool, k)
		for _, e := range agg.Order()[:k] {
			top[e] = true
		}
		return top
	}
	instances := make([]instance, trials)
	for i := range instances {
		clean, _ := randrank.MallowsEnsemble(rng, n, m, theta)
		cleanB, err := aggregate.Borda(clean)
		if err != nil {
			return nil, err
		}
		cleanM, err := aggregate.MedianFull(clean)
		if err != nil {
			return nil, err
		}
		inst := instance{
			clean: clean,
			slate: append([]int(nil), cleanB.Order()[k:k+3]...),
			cleanTop: map[string]map[int]bool{
				"borda":  topSet(cleanB),
				"median": topSet(cleanM),
			},
		}
		// Trimmed Borda with nothing to trim IS Borda; the weighted engines
		// get their own clean baselines.
		inst.cleanTop[string(robust.ModeTrimmedBorda)] = inst.cleanTop["borda"]
		for _, mode := range []robust.Mode{robust.ModeWeightedMedian, robust.ModeMinMax} {
			res, err := robust.Aggregate(clean, robust.Options{Mode: mode, Trim: 0})
			if err != nil {
				return nil, err
			}
			inst.cleanTop[string(mode)] = topSet(res.Aggregate)
		}
		instances[i] = inst
	}

	// recovery scores a full aggregate: the fraction of the engine's clean
	// top-k it still ranks in its own top k.
	recovery := func(agg *ranking.PartialRanking, top map[int]bool) float64 {
		hit := 0
		for _, e := range agg.Order()[:k] {
			if top[e] {
				hit++
			}
		}
		return float64(hit) / float64(k)
	}

	kinds := []faults.AdversaryKind{faults.ReversalSpam, faults.CollusionClique, faults.NoiseVoters}
	fractions := []float64{0.1, 0.2, 0.3}
	for ki, kind := range kinds {
		for fi, frac := range fractions {
			var advTotal int
			var sumPlainB, sumPlainM, sumTrimB, sumWMed, sumMinMax float64
			for trial := 0; trial < trials; trial++ {
				inst := instances[trial]
				plan := faults.AdversaryPlan{
					Seed:     seed + int64(trial)*1000 + int64(ki)*100 + int64(fi)*10,
					Kind:     kind,
					Fraction: frac,
				}
				if kind == faults.CollusionClique {
					plan.Targets = inst.slate
				}
				corrupted, rep, err := faults.InjectVoters(inst.clean, plan)
				if err != nil {
					return nil, err
				}
				adv := len(rep.Injected)
				advTotal += adv

				plainB, err := aggregate.Borda(corrupted)
				if err != nil {
					return nil, err
				}
				plainM, err := aggregate.MedianFull(corrupted)
				if err != nil {
					return nil, err
				}
				sumPlainB += recovery(plainB, inst.cleanTop["borda"])
				sumPlainM += recovery(plainM, inst.cleanTop["median"])

				for _, mode := range []robust.Mode{robust.ModeTrimmedBorda, robust.ModeWeightedMedian, robust.ModeMinMax} {
					res, err := robust.Aggregate(corrupted, robust.Options{Mode: mode, Trim: adv})
					if err != nil {
						return nil, err
					}
					r := recovery(res.Aggregate, inst.cleanTop[string(mode)])
					switch mode {
					case robust.ModeTrimmedBorda:
						sumTrimB += r
					case robust.ModeWeightedMedian:
						sumWMed += r
					case robust.ModeMinMax:
						sumMinMax += r
					}
				}
			}
			ft := float64(trials)
			t.AddRow(
				kind.String(), fmt.Sprintf("%.2f", frac), advTotal/trials,
				sumPlainB/ft, sumPlainM/ft, sumTrimB/ft, sumWMed/ft, sumMinMax/ft,
			)
		}
	}
	t.Notef("recovery = fraction of the engine's own fault-free top-%d (computed on the clean ensemble) that it still ranks in its top %d after injection, averaged over %d corrupted ensembles; 1 means the attack was fully absorbed", k, k, trials)
	t.Notef("the robust engines trim exactly the injected adversary count per run (the known-fraction setting); reversal spam submits the reverse of the clean consensus, the clique co-promotes the 3 items at clean positions %d..%d, noise voters are independent uniform permutations", k, k+2)
	t.Notef("plain median resists by construction until adversaries approach half the ensemble; MinMax runs AFTER the trim — un-trimmed MinMax would cater to the adversary, which is the worst-off voter by design")
	return t, nil
}
