package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/randrank"
	"repro/internal/ranking"
	"repro/internal/topk"
)

// medrankAccess runs MEDRANK for the top k and formats its total access
// cost as a fraction of the full scan.
func medrankAccess(in []*ranking.PartialRanking, k int) (string, error) {
	res, err := topk.MedRank(in, k, topk.RoundRobin)
	if err != nil {
		return "", err
	}
	full := topk.FullScanCost(in)
	return fmt.Sprintf("%d/%d (%.1f%%)", res.Stats.Total, full.Total,
		100*float64(res.Stats.Total)/float64(full.Total)), nil
}

// E7InstanceOptimality reproduces the Section 6 access-cost claim: MEDRANK
// reads "essentially as few elements of each partial ranking as are
// necessary to determine the winner(s)". For each workload it reports the
// probes of both probe policies, the full-scan cost, a per-instance
// certificate lower bound that any correct sequential-access algorithm must
// pay, and the resulting instance-optimality ratio.
func E7InstanceOptimality(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "MEDRANK access cost (m=5 lists)",
		Claim:   "Sec. 6 / [11,12]: MEDRANK is instance-optimal among sequential-access algorithms",
		Headers: []string{"workload", "n", "k", "merge probes", "round-robin probes", "bucket I/Os", "full scan", "certificate LB", "ratio (merge/LB)"},
	}
	rng := rand.New(rand.NewSource(seed))
	const m = 5

	type workload struct {
		name string
		gen  func(n int) []*ranking.PartialRanking
	}
	workloads := []workload{
		{"correlated (Mallows theta=2)", func(n int) []*ranking.PartialRanking {
			in, _ := randrank.MallowsEnsemble(rng, n, m, 2.0)
			return in
		}},
		{"semi-correlated (theta=0.5)", func(n int) []*ranking.PartialRanking {
			in, _ := randrank.MallowsEnsemble(rng, n, m, 0.5)
			return in
		}},
		{"random (theta=0)", func(n int) []*ranking.PartialRanking {
			in, _ := randrank.MallowsEnsemble(rng, n, m, 0)
			return in
		}},
		{"few-valued catalog (5 values)", func(n int) []*ranking.PartialRanking {
			return randrank.CatalogEnsemble(rng, n, m, 5, 1.0, 1.5).Rankings
		}},
	}

	for _, w := range workloads {
		for _, n := range []int{1000, 10000} {
			for _, k := range []int{1, 10} {
				in := w.gen(n)
				merge, err := topk.MedRank(in, k, topk.GlobalMerge)
				if err != nil {
					return nil, err
				}
				rr, err := topk.MedRank(in, k, topk.RoundRobin)
				if err != nil {
					return nil, err
				}
				if !merge.TopK.Equal(rr.TopK) {
					return nil, fmt.Errorf("E7: policies disagree on %s n=%d k=%d", w.name, n, k)
				}
				bucket, err := topk.MedRank(in, k, topk.GlobalMergeBuckets)
				if err != nil {
					return nil, err
				}
				if !bucket.TopK.Equal(merge.TopK) {
					return nil, fmt.Errorf("E7: bucket policy disagrees on %s n=%d k=%d", w.name, n, k)
				}
				full := topk.FullScanCost(in)
				// MEDRANK is sequential-only, so its instance-optimality
				// ratio is priced in the NRA cost regime (cs=1, cr=0) —
				// numerically identical to the old total/bound quotient, but
				// routed through the cost-aware accounting instead of the
				// deprecated equal-weights one.
				lb := topk.CertificateLowerBoundCost(in, merge.Winners, 1, 0)
				ratio := "-"
				if lb > 0 {
					ratio = fmt.Sprintf("%.2f", merge.Stats.CostOptimalityRatio(1, 0, lb))
				}
				t.AddRow(w.name, n, k, merge.Stats.Total, rr.Stats.Total,
					bucket.Stats.TotalBucketProbes, full.Total, lb, ratio)
			}
		}
	}
	t.Notef("the certificate LB is conservative (it only charges for observing the winners), so ratios overstate the true gap")
	t.Notef("bucket I/Os price the realistic access model where one index-scan I/O returns a whole run of tied rows; on the few-valued catalog it collapses the element-read blow-up")
	t.Notef("on correlated inputs the probes stay near the LB and far below the full scan; on uniform inputs every algorithm must read deep")
	return t, nil
}
