package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden experiment tables")

// goldenIDs lists the experiments whose tables are fully deterministic at a
// fixed seed (E5 and E8 contain wall-clock cells and are excluded).
var goldenIDs = []string{"E1", "E2", "E3", "E4", "E6", "E7", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17"}

// TestGoldenTables pins the byte-exact markdown of every deterministic
// experiment at seed 2004. A change here means an algorithm changed
// behaviour — rerun with -update only after confirming the change is
// intended, and refresh EXPERIMENTS.md to match.
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			tbl, err := Run(id, 2004)
			if err != nil {
				t.Fatal(err)
			}
			got := tbl.Markdown()
			path := filepath.Join("testdata", id+".golden.md")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output drifted from golden file %s;\nif intended, refresh with `go test ./internal/experiments -run TestGolden -update` and regenerate EXPERIMENTS.md\n--- got ---\n%s", id, path, got)
			}
		})
	}
}
