package experiments

import (
	"fmt"
	"strconv"
	"testing"
)

// TestE16RobustRecovery pins the PR's acceptance criterion across a seed
// matrix: under at-least-20% reversal-spam and colluding-clique injection,
// every robust variant (trimmed Borda, weighted median, trim-then-MinMax)
// recovers strictly more of its clean consensus top-k than plain Borda
// recovers of its own.
func TestE16RobustRecovery(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			tbl, err := E16Robust(seed)
			if err != nil {
				t.Fatal(err)
			}
			cell := func(row []string, i int) float64 {
				v, err := strconv.ParseFloat(row[i], 64)
				if err != nil {
					t.Fatalf("row %v cell %d: %v", row, i, err)
				}
				return v
			}
			checked := 0
			for _, row := range tbl.Rows {
				attack, frac := row[0], row[1]
				if attack == "noise" || frac == "0.10" {
					continue
				}
				plainBorda := cell(row, 3)
				for name, i := range map[string]int{"trimmed borda": 5, "weighted median": 6, "minmax": 7} {
					if v := cell(row, i); v <= plainBorda {
						t.Errorf("seed %d, %s at fraction %s: %s recovery %.4f not strictly above plain Borda %.4f",
							seed, attack, frac, name, v, plainBorda)
					}
				}
				checked++
			}
			// reversal and clique at fractions 0.20 and 0.30.
			if checked != 4 {
				t.Errorf("checked %d rows, want 4 (reversal/clique x 0.20/0.30)", checked)
			}
		})
	}
}

// TestE16Deterministic: the same seed yields byte-identical tables (the
// golden test pins seed 2004; this guards the seeds CI sweeps).
func TestE16Deterministic(t *testing.T) {
	a, err := E16Robust(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := E16Robust(7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Markdown() != b.Markdown() {
		t.Error("E16 not deterministic at a fixed seed")
	}
}
