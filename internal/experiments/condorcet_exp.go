package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/aggregate"
	"repro/internal/ranking"
)

// E14Condorcet measures Condorcet compliance: on instances that have a
// Condorcet winner (an element beating every other by strict majority, ties
// abstaining), how often does each aggregation method rank it first? The
// exact Kemeny optimum and locally Kemenized rankings must always do so
// (the extended Condorcet criterion of Dwork et al.); positional methods
// (Borda, median ranks) famously need not.
func E14Condorcet(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "Condorcet-winner compliance over random tied ballots (n=6)",
		Claim:   "Dwork et al. / classical social choice: Kemeny and local Kemenization satisfy Condorcet; positional methods do not",
		Headers: []string{"m", "instances", "Kemeny (exact)", "Borda+localKemeny", "median (Thm 11)", "Borda", "MC4"},
	}
	rng := rand.New(rand.NewSource(seed))
	const n = 6
	for _, m := range []int{3, 5, 7} {
		const want = 120
		found := 0
		hits := make(map[string]int)
		for found < want {
			var in []*ranking.PartialRanking
			for i := 0; i < m; i++ {
				in = append(in, randomTiedBallot(rng, n))
			}
			w, ok, err := aggregate.CondorcetWinner(in)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			found++

			kem, _, err := aggregate.KemenyOptimalDP(in)
			if err != nil {
				return nil, err
			}
			if kem.Order()[0] == w {
				hits["kemeny"]++
			}

			borda, err := aggregate.Borda(in)
			if err != nil {
				return nil, err
			}
			if borda.Order()[0] == w {
				hits["borda"]++
			}
			lk, err := aggregate.LocalKemenize(borda, in)
			if err != nil {
				return nil, err
			}
			if lk.Order()[0] == w {
				hits["localkemeny"]++
			}

			med, err := aggregate.MedianFull(in)
			if err != nil {
				return nil, err
			}
			if med.Order()[0] == w {
				hits["median"]++
			}

			mc4, err := aggregate.MarkovChain(in, aggregate.MC4, aggregate.MarkovChainOptions{Teleport: 0.01})
			if err != nil {
				return nil, err
			}
			if mc4.Order()[0] == w {
				hits["mc4"]++
			}
		}
		pct := func(k string) string {
			return fmt.Sprintf("%d/%d", hits[k], want)
		}
		t.AddRow(m, want, pct("kemeny"), pct("localkemeny"), pct("median"), pct("borda"), pct("mc4"))
	}
	t.Notef("Kemeny and local Kemenization must be 100%% (theorems); the positional methods' misses are genuine Condorcet violations")
	return t, nil
}

// randomTiedBallot draws a bucket order with a bias toward small buckets so
// Condorcet winners are reasonably common.
func randomTiedBallot(rng *rand.Rand, n int) *ranking.PartialRanking {
	perm := rng.Perm(n)
	var buckets [][]int
	for i := 0; i < n; {
		size := 1
		if rng.Intn(3) == 0 {
			size = 2
		}
		if i+size > n {
			size = n - i
		}
		buckets = append(buckets, perm[i:i+size])
		i += size
	}
	return ranking.MustFromBuckets(n, buckets)
}
