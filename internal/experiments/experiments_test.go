package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Every registered experiment must run cleanly and produce a non-trivial
// table. This doubles as the end-to-end reproduction check: several runners
// return errors when a paper bound is violated.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, spec := range Registry {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			t.Parallel()
			tbl, err := spec.Run(7)
			if err != nil {
				t.Fatalf("%s failed: %v", spec.ID, err)
			}
			if tbl.ID != spec.ID {
				t.Errorf("table ID %q != spec ID %q", tbl.ID, spec.ID)
			}
			if len(tbl.Rows) == 0 || len(tbl.Headers) == 0 {
				t.Errorf("%s produced an empty table", spec.ID)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Headers) {
					t.Errorf("%s row width %d != header width %d", spec.ID, len(row), len(tbl.Headers))
				}
			}
		})
	}
}

func TestE1VerdictShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tbl, err := E1PenaltySweep(1)
	if err != nil {
		t.Fatal(err)
	}
	// p=0 row must fail regularity; p>=0.5 rows must have zero violations.
	for _, row := range tbl.Rows {
		switch row[0] {
		case "0":
			if row[1] != "FAILS" {
				t.Errorf("p=0 regularity = %q, want FAILS", row[1])
			}
		case "0.5", "0.75", "1":
			if row[2] != "0" {
				t.Errorf("p=%s has %s triangle violations, want 0", row[0], row[2])
			}
			if row[1] != "holds" {
				t.Errorf("p=%s regularity = %q", row[0], row[1])
			}
		case "0.1", "0.25", "0.4":
			if row[2] == "0" {
				t.Errorf("p=%s found no triangle violations; the near-metric regime should produce some", row[0])
			}
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:      "EX",
		Title:   "demo",
		Claim:   "claim",
		Headers: []string{"a", "b"},
	}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x", "y")
	tbl.Notef("note %d", 1)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EX — demo", "claim: claim", "a  b", "x  y", "note: note 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	md := tbl.Markdown()
	for _, want := range []string{"### EX — demo", "| a | b |", "| x | y |", "*Note:* note 1"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q in:\n%s", want, md)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E999", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunByID(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tbl, err := Run("E2", 3)
	if err != nil {
		t.Fatal(err)
	}
	// E2 agreement columns must all be k/k.
	for _, row := range tbl.Rows {
		parts := strings.Split(row[2], "/")
		if len(parts) != 2 || parts[0] != parts[1] {
			t.Errorf("E2 KHaus agreement %q not total", row[2])
		}
	}
}
