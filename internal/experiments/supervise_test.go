package experiments

import (
	"strings"
	"testing"

	"repro/internal/guard"
)

// A buggy experiment body must come back from Run as an error wrapping
// *guard.PanicError with a stack, never crash the batch driver.
func TestRunContainsPanickingExperiment(t *testing.T) {
	Registry = append(Registry, Spec{
		ID:    "EPANIC",
		Title: "deliberately panicking experiment",
		Run:   func(seed int64) (*Table, error) { panic("experiment bug") },
	})
	defer func() { Registry = Registry[:len(Registry)-1] }()

	tbl, err := Run("EPANIC", 1)
	if tbl != nil {
		t.Error("panicking experiment returned a table")
	}
	pe, ok := guard.Recovered(err)
	if !ok {
		t.Fatalf("err = %v, want wrapped *guard.PanicError", err)
	}
	if pe.Value != "experiment bug" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "supervise_test") {
		t.Errorf("stack does not point at the panic site:\n%s", pe.Stack)
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("E999", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}
