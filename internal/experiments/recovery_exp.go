package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/aggregate"
	"repro/internal/metrics"
	"repro/internal/randrank"
	"repro/internal/ranking"
)

// E13Recovery measures how well each aggregation method recovers a hidden
// ground-truth order from noisy, heavily-tied votes — the robustness
// motivation of Section 1 ("combining several ranked lists in a robust
// way"). Voters are Mallows(theta) samples around a hidden center,
// coarsened into 10-valued attributes; recovery quality is the normalized
// Kendall distance between each method's output and the center (0 =
// perfect, 0.5 = random).
func E13Recovery(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Hidden-center recovery from noisy 10-valued votes (n=100, m=5, 10 trials)",
		Claim: "Sec. 1: aggregation combines noisy ranked lists robustly; median matches the heavier baselines",
		Headers: []string{"theta", "median (Thm 11)", "Borda", "MC4", "footrule-opt (Hungarian)",
			"best-of-inputs", "single voter"},
	}
	rng := rand.New(rand.NewSource(seed))
	const n, m, buckets, trials = 100, 5, 10, 10

	type method struct {
		name string
		run  func(in []*ranking.PartialRanking) (*ranking.PartialRanking, error)
	}
	methods := []method{
		{"median", func(in []*ranking.PartialRanking) (*ranking.PartialRanking, error) {
			return aggregate.MedianFull(in)
		}},
		{"borda", func(in []*ranking.PartialRanking) (*ranking.PartialRanking, error) {
			return aggregate.Borda(in)
		}},
		{"mc4", func(in []*ranking.PartialRanking) (*ranking.PartialRanking, error) {
			return aggregate.MarkovChain(in, aggregate.MC4, aggregate.MarkovChainOptions{})
		}},
		{"footrule-opt", func(in []*ranking.PartialRanking) (*ranking.PartialRanking, error) {
			pr, _, err := aggregate.FootruleOptimalFull(in)
			return pr, err
		}},
		{"best-of-inputs", func(in []*ranking.PartialRanking) (*ranking.PartialRanking, error) {
			_, pr, _, err := aggregate.BestOfInputs(in, func(a, b *ranking.PartialRanking) (float64, error) {
				return metrics.FProf(a, b)
			})
			return pr, err
		}},
		{"single voter", func(in []*ranking.PartialRanking) (*ranking.PartialRanking, error) {
			return in[0], nil
		}},
	}

	for _, theta := range []float64{0.05, 0.2, 0.5, 1, 2} {
		sums := make([]float64, len(methods))
		for trial := 0; trial < trials; trial++ {
			in, center := randrank.MallowsPartialEnsemble(rng, n, m, theta, buckets)
			for mi, meth := range methods {
				out, err := meth.run(in)
				if err != nil {
					return nil, err
				}
				d, err := metrics.NormalizedKProf(out, center)
				if err != nil {
					return nil, err
				}
				sums[mi] += d
			}
		}
		row := make([]interface{}, 0, len(methods)+1)
		row = append(row, theta)
		for _, s := range sums {
			row = append(row, fmt.Sprintf("%.4f", s/trials))
		}
		t.AddRow(row...)
	}
	t.Notef("cells are normalized Kendall (Kprof/max) distance to the hidden center: 0 = perfect recovery, 0.5 = random")
	t.Notef("larger theta = less voter noise; the aggregate should beat any single voter at every noise level")
	return t, nil
}
