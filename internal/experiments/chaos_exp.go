package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/randrank"
	"repro/internal/ranking"
	"repro/internal/telemetry"
	"repro/internal/topk"
)

// E15Chaos measures what list death costs in answer quality: for a sweep of
// per-access death rates it runs MEDRANK over fault-injected sources (with a
// retry layer absorbing a background transient-fault rate) and compares the
// possibly degraded top-k against the fault-free answer with the paper's
// distance measures. Mathieu and Mauras' analysis of aggregation from
// incomplete top lists is the theory backdrop: aggregating the surviving
// lists is a principled answer, and the distances quantify how far it drifts
// from the full aggregation as lists die.
func E15Chaos(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "Degraded-mode MEDRANK under injected list death (n=800, m=5, k=10)",
		Claim: "robustness: degraded aggregation stays close to the fault-free answer, with measured distance",
		Headers: []string{
			"death rate", "trials", "degraded", "all dead", "lists lost",
			"mean KHaus", "mean Kprof", "exact answers", "retries",
		},
	}
	const (
		n      = 800
		m      = 5
		k      = 10
		trials = 20
	)
	rng := rand.New(rand.NewSource(seed))
	deathRates := []float64{0, 0.0005, 0.002, 0.01}

	// One ensemble per trial, shared across the death-rate sweep so rows
	// differ only in the injected fault plan.
	type instance struct {
		in   []*ranking.PartialRanking
		base *topk.Result
	}
	instances := make([]instance, trials)
	for i := range instances {
		in := randrank.CatalogEnsemble(rng, n, m, 10, 1.0, 0.4).Rankings
		base, err := topk.MedRank(in, k, topk.RoundRobin)
		if err != nil {
			return nil, err
		}
		instances[i] = instance{in: in, base: base}
	}

	for _, rate := range deathRates {
		var degradedRuns, allDead, listsLost, exact, retries, completed int
		var sumKH, sumKP float64
		for trial, inst := range instances {
			acc := telemetry.NewAccessAccountant(m)
			sl := &faults.FakeSleeper{}
			srcs := make([]faults.Source, m)
			for i, r := range inst.in {
				s := topk.NewListSource(r, acc, i)
				s = faults.Inject(s, faults.Plan{
					Seed:          seed + int64(trial)*100 + int64(i),
					TransientRate: 0.002,
					DeathRate:     rate,
					Sleeper:       sl,
				})
				srcs[i] = faults.WithRetry(s, faults.RetryPolicy{
					MaxAttempts: 4,
					BaseDelay:   time.Millisecond,
					MaxDelay:    100 * time.Millisecond,
					Multiplier:  2,
					JitterSeed:  seed + int64(trial),
					Sleeper:     sl,
				}, acc, i)
			}
			res, err := topk.MedRankOver(context.Background(), srcs, k, topk.RoundRobin, acc)
			if err != nil {
				// Every list died before the answer was certified; there is
				// no degraded answer to measure. Reported separately so the
				// distance columns describe only runs that answered.
				allDead++
				listsLost += m
				continue
			}
			completed++
			retries += res.Stats.Retried
			if res.Degraded != nil {
				degradedRuns++
				listsLost += len(res.Degraded.Lost)
			}
			kh, err := metrics.KHaus(res.TopK, inst.base.TopK)
			if err != nil {
				return nil, err
			}
			kp, err := metrics.KProf(res.TopK, inst.base.TopK)
			if err != nil {
				return nil, err
			}
			sumKH += float64(kh)
			sumKP += kp
			if kh == 0 {
				exact++
			}
		}
		meanKH, meanKP := 0.0, 0.0
		if completed > 0 {
			meanKH = sumKH / float64(completed)
			meanKP = sumKP / float64(completed)
		}
		t.AddRow(
			fmt.Sprintf("%.4f", rate), trials, degradedRuns, allDead, listsLost,
			meanKH, meanKP,
			fmt.Sprintf("%d/%d", exact, completed), retries,
		)
	}
	t.Notef("distances compare the degraded top-%d list (as a partial ranking with a bottom bucket) against the fault-free MEDRANK answer on the same ensemble; means are over completed runs only, and 'exact answers' is out of completed runs", k)
	t.Notef("transient faults are injected at rate 0.002 throughout and absorbed by a 4-attempt exponential-backoff retry layer; only permanent deaths degrade the answer")
	return t, nil
}
