package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/faults"
	"repro/internal/randrank"
	"repro/internal/ranking"
	"repro/internal/telemetry"
	"repro/internal/topk"
)

// e17Engines enumerates the four engines of the FLN middleware family in the
// order the E17 rows report them.
var e17Engines = []string{"medrank", "ta", "nra", "ca"}

// e17Instance draws one E17 workload: a few-valued tie-heavy catalog (6
// distinct values per attribute, Zipf 1.0, concentration 1.5) — the database
// setting that motivates MEDRANK in Section 6. On these instances a sorted
// bucket scan reveals whole runs of tied rows, every probed element's
// median-rank interval closes within the round it is first seen, and the
// decisive cost term is whether an engine pays cR per element it encounters
// (TA) or not (NRA, CA).
func e17Instance(rng *rand.Rand, n, m int) []*ranking.PartialRanking {
	return randrank.CatalogEnsemble(rng, n, m, 6, 1.0, 1.5).Rankings
}

// e17Run executes one engine over one instance, infallible or (when a fault
// plan is given) over injected sources, and returns the result. CA is
// scheduled at the sweep's cost ratio; at ratio 0 that degenerates to NRA,
// which is exactly the regime the row documents.
func e17Run(engine string, in []*ranking.PartialRanking, k, ratio int, plan *faults.Plan, planSeed int64) (*topk.Result, error) {
	ctx := context.Background()
	if plan == nil {
		switch engine {
		case "medrank":
			return topk.MedRankContext(ctx, in, k, topk.GlobalMerge)
		case "ta":
			return topk.ThresholdTopKContext(ctx, in, k)
		case "nra":
			return topk.NRAContext(ctx, in, k)
		default:
			return topk.CAContext(ctx, in, k, ratio)
		}
	}
	m := len(in)
	acc := telemetry.NewAccessAccountant(m)
	sl := &faults.FakeSleeper{}
	srcs := make([]faults.Source, m)
	for i, r := range in {
		s := topk.NewListSource(r, acc, i)
		p := *plan
		p.Seed = planSeed + int64(i)
		p.Sleeper = sl
		s = faults.Inject(s, p)
		pol := faults.DefaultRetryPolicy()
		pol.JitterSeed = planSeed
		pol.Sleeper = sl
		srcs[i] = faults.WithRetry(s, pol, acc, i)
	}
	switch engine {
	case "medrank":
		return topk.MedRankOver(ctx, srcs, k, topk.RoundRobin, acc)
	case "ta":
		return topk.ThresholdTopKOver(ctx, srcs, k, acc)
	case "nra":
		return topk.NRAOver(ctx, srcs, k, acc)
	default:
		return topk.CAOver(ctx, srcs, k, ratio, acc)
	}
}

// E17MiddlewareCost prices the four top-k engines under the FLN middleware
// cost model cs·sequential + cr·random across cost regimes and fault rates.
// At cR/cS = 0 random access is free (the regime where TA shines); as the
// ratio grows, TA's per-element random lookups dominate its bill, NRA (which
// never pays cr) becomes the safe choice, and CA — which schedules one
// random-access resolution every ~cR/cS sorted rounds — tracks the cheaper of
// the two within a constant factor (Theorems 30-32). The fault rows rerun the
// ratio-10 column over fault-injected sources at increasing per-access death
// rates: costs there include the accesses wasted on lists that died, and the
// degraded column counts runs that lost at least one list.
func E17MiddlewareCost(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "Middleware cost of MEDRANK/TA/NRA/CA across cost regimes (n=600, m=5, k=10)",
		Claim: "Thms 30-32: NRA is optimal with no random access; CA is within a constant of the best in both regimes",
		Headers: []string{
			"cR/cS", "death rate", "engine", "sequential", "random",
			"middleware cost", "cost LB", "ratio", "degraded",
		},
	}
	const (
		n      = 600
		m      = 5
		k      = 10
		trials = 5
	)
	rng := rand.New(rand.NewSource(seed))
	instances := make([][]*ranking.PartialRanking, trials)
	for i := range instances {
		instances[i] = e17Instance(rng, n, m)
	}

	type cell struct {
		ratio int
		death float64
		plan  *faults.Plan
	}
	cells := []cell{
		{ratio: 0}, {ratio: 1}, {ratio: 10}, {ratio: 100},
	}
	for _, death := range []float64{0.002, 0.01} {
		cells = append(cells, cell{
			ratio: 10,
			death: death,
			plan:  &faults.Plan{TransientRate: 0.002, DeathRate: death},
		})
	}

	for ci, c := range cells {
		for _, engine := range e17Engines {
			var seq, ran, cost, lb, degraded, dead, completed int
			for trial, in := range instances {
				planSeed := seed + int64(ci)*1000 + int64(trial)*100
				res, err := e17Run(engine, in, k, c.ratio, c.plan, planSeed)
				if err != nil {
					if c.plan == nil {
						return nil, fmt.Errorf("E17 %s at ratio %d: %w", engine, c.ratio, err)
					}
					// Every list died before the engine certified; there is
					// no answer whose cost could be priced. Counted apart so
					// the cost columns describe only runs that answered.
					dead++
					continue
				}
				completed++
				seq += res.Stats.Total
				ran += res.Stats.Random
				cost += res.Stats.MiddlewareCost(1, c.ratio)
				lb += topk.CertificateLowerBoundCost(in, res.Winners, 1, c.ratio)
				if res.Degraded != nil {
					degraded++
				}
			}
			ratio := "-"
			if completed > 0 {
				seq /= completed
				ran /= completed
				cost /= completed
				lb /= completed
				if lb > 0 {
					ratio = fmt.Sprintf("%.2f", float64(cost)/float64(lb))
				}
			}
			deathCol := "0 (clean)"
			if c.plan != nil {
				deathCol = fmt.Sprintf("%.4f", c.death)
			}
			degCol := fmt.Sprintf("%d", degraded)
			if dead > 0 {
				degCol = fmt.Sprintf("%d (+%d all dead)", degraded, dead)
			}
			t.AddRow(c.ratio, deathCol, engine, seq, ran, cost, lb, ratio, degCol)
		}
	}
	t.Notef("all counts are means over %d shared tie-heavy catalog instances (6 values per attribute); middleware cost is cs*sequential + cr*random at cs=1, cr=cR/cS, and the cost LB is the certificate bound priced at the same weights", trials)
	t.Notef("on these few-valued catalogs every probed element's interval closes within the round it is seen, so CA never finds a profitable resolution target and coincides with NRA at every ratio: its advantage over TA is entirely in not paying cR per encountered element")
	t.Notef("the fault rows inject transients at rate 0.002 (absorbed by retries) plus the listed per-access death rate; their costs include accesses wasted on lists that died")
	return t, nil
}
