package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/aggregate"
	"repro/internal/metrics"
	"repro/internal/randrank"
	"repro/internal/ranking"
)

// E11Reflection reproduces the machinery of Appendix A.5.2 — the
// reflected-duplicate construction behind Equation 5's proof: Lemma 21
// (K(sigma_pi, tau_pi) = 4 Kprof for every pi), Lemma 23 (a nest-free pi
// exists and the proof's swap loop finds it), and Lemma 22 (under that pi,
// F(sigma_pi, tau_pi) = 4 Fprof).
func E11Reflection(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Reflected-duplicate construction (App. A.5.2)",
		Claim:   "Lemmas 21-23: K identity for every pi; constructive nest-free pi gives the F identity",
		Headers: []string{"n", "pairs", "Lemma 21 (any pi)", "Lemma 22+23 (nest-free pi)", "max swap iterations"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range []int{5, 10, 25, 50} {
		const pairs = 100
		ok21, ok22 := 0, 0
		maxSwaps := 0
		for trial := 0; trial < pairs; trial++ {
			sigma := randrank.Partial(rng, n, 5)
			tau := randrank.Partial(rng, n, 5)
			pi := randrank.Full(rng, n)

			k, err := metrics.Kendall(metrics.ReflectOrder(sigma, pi), metrics.ReflectOrder(tau, pi))
			if err != nil {
				return nil, err
			}
			kp, _ := metrics.KProf(sigma, tau)
			if float64(k) == 4*kp {
				ok21++
			}

			nf, err := metrics.NestFreeOrder(sigma, tau)
			if err != nil {
				return nil, err
			}
			// Count how far the constructed order is from the identity as a
			// proxy for the swap effort.
			swaps := 0
			for i, e := range nf.Order() {
				if e != i {
					swaps++
				}
			}
			if swaps > maxSwaps {
				maxSwaps = swaps
			}
			f, err := metrics.Footrule(metrics.ReflectOrder(sigma, nf), metrics.ReflectOrder(tau, nf))
			if err != nil {
				return nil, err
			}
			fp, _ := metrics.FProf(sigma, tau)
			if float64(f) == 4*fp {
				ok22++
			}
		}
		t.AddRow(n, pairs, fmt.Sprintf("%d/%d", ok21, pairs), fmt.Sprintf("%d/%d", ok22, pairs), maxSwaps)
	}
	t.Notef("the nest-free order usually needs few swaps; Lemma 23 guarantees at most n")
	return t, nil
}

// E12StrongOptimality reproduces Appendix A.6.3 (Theorems 33 and 35): the
// median top-k is nearly optimal in the STRONG sense — it is the type
// projection of a witness partial ranking that is itself within factor 2
// (partial-ranking inputs) of every partial ranking.
func E12StrongOptimality(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Strong-sense near-optimality of the median top-k (App. A.6.3)",
		Claim:   "Thm 35: a witness sigma' exists with topk in <sigma'>_alpha and sigma' a 2-approximation over all partial rankings",
		Headers: []string{"m", "k", "trials", "consistency holds", "mean witness factor", "worst witness factor", "bound"},
	}
	rng := rand.New(rand.NewSource(seed))
	const n, trials = 5, 40
	for _, m := range []int{3, 5} {
		for _, k := range []int{1, 2, 4} {
			consistent := 0
			sum, worst := 0.0, 0.0
			counted := 0
			for trial := 0; trial < trials; trial++ {
				var in []*ranking.PartialRanking
				for i := 0; i < m; i++ {
					in = append(in, randrank.Partial(rng, n, 3))
				}
				topK, witness, err := aggregate.StrongMedianTopK(in, k)
				if err != nil {
					return nil, err
				}
				if topK.ConsistentWith(witness.Positions()) {
					consistent++
				}
				got, err := aggregate.SumL1Ranking(witness, in)
				if err != nil {
					return nil, err
				}
				_, opt, err := aggregate.OptimalPartialRankingBrute(in)
				if err != nil {
					return nil, err
				}
				if got > 2*opt+1e-9 {
					return nil, fmt.Errorf("E12: Theorem 35 factor violated: %v > 2*%v", got, opt)
				}
				if opt > 0 {
					f := got / opt
					sum += f
					counted++
					if f > worst {
						worst = f
					}
				}
			}
			t.AddRow(m, k, trials, fmt.Sprintf("%d/%d", consistent, trials),
				sum/float64(counted), worst, 2)
		}
	}
	t.Notef("strong optimality implies the ordinary Theorem 9 bound with constant 2c+1 (Theorem 33)")
	return t, nil
}
