package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/topk"
)

// TestE17DesignRatioCACheapest pins the E17 headline claim at the design
// ratio cR/cS = 10: on the experiment's tie-heavy catalog instances the
// combined algorithm's middleware cost beats or ties BOTH the TA baseline
// (which pays cR for every element it encounters) and NRA (which CA
// coincides with here, since no profitable resolution target ever appears).
func TestE17DesignRatioCACheapest(t *testing.T) {
	const n, m, k, ratio = 600, 5, 10, 10
	rng := rand.New(rand.NewSource(2004))
	for trial := 0; trial < 4; trial++ {
		in := e17Instance(rng, n, m)
		ta, err := topk.ThresholdTopK(in, k)
		if err != nil {
			t.Fatal(err)
		}
		nra, err := topk.NRA(in, k)
		if err != nil {
			t.Fatal(err)
		}
		ca, err := topk.CA(in, k, ratio)
		if err != nil {
			t.Fatal(err)
		}
		taC := ta.Stats.MiddlewareCost(1, ratio)
		nraC := nra.Stats.MiddlewareCost(1, ratio)
		caC := ca.Stats.MiddlewareCost(1, ratio)
		if caC > taC {
			t.Errorf("trial %d: CA cost %d > TA cost %d at ratio %d", trial, caC, taC, ratio)
		}
		if caC > nraC {
			t.Errorf("trial %d: CA cost %d > NRA cost %d at ratio %d", trial, caC, nraC, ratio)
		}
		if nra.Stats.Random != 0 {
			t.Errorf("trial %d: NRA made %d random accesses", trial, nra.Stats.Random)
		}
	}
}
