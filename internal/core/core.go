// Package core ties the paper's two contributions — comparing partial
// rankings (Sections 3-5) and aggregating them (Section 6) — into one
// engine.
//
// Comparison computes the pair classification of two partial rankings once
// and derives every Kendall-family quantity from it (Kprof, K^(p), KHaus,
// Kavg, Goodman-Kruskal gamma), alongside the footrule-family metrics; a
// Report bundles all four paper metrics with the equivalence diagnostics of
// Theorem 7. Aggregate runs a chosen aggregation method and evaluates its
// objective under all four metrics, so callers can see the constant-factor
// equivalence (Theorem 7) do its work: an algorithm near-optimal under one
// metric is near-optimal under all of them.
package core

import (
	"errors"
	"fmt"

	"repro/internal/aggregate"
	"repro/internal/metrics"
	"repro/internal/ranking"
)

// Comparison caches the pair classification of two partial rankings so that
// every derived distance is O(1) after the first O(n log n) computation.
type Comparison struct {
	a, b   *ranking.PartialRanking
	counts metrics.PairCounts

	fprof2 int64
	haveF  bool
	fhaus  int64
	haveFH bool
}

// Compare classifies the element pairs of two same-domain partial rankings.
// The classification pass borrows a pooled metrics workspace; callers
// comparing many pairs should hold their own workspace and use CompareWith.
func Compare(a, b *ranking.PartialRanking) (*Comparison, error) {
	ws := metrics.GetWorkspace()
	defer metrics.PutWorkspace(ws)
	return CompareWith(ws, a, b)
}

// CompareWith is Compare on a caller-supplied workspace: the pair
// classification and the footrule profile are computed eagerly on the
// workspace's scratch state (the Hausdorff-footrule witness kernel stays
// lazy), and the returned Comparison retains no reference to the workspace,
// which may be reused immediately.
func CompareWith(ws *metrics.Workspace, a, b *ranking.PartialRanking) (*Comparison, error) {
	pc, err := ws.CountPairs(a, b)
	if err != nil {
		return nil, err
	}
	fprof2, err := ws.FProf2(a, b)
	if err != nil {
		return nil, err
	}
	return &Comparison{a: a, b: b, counts: pc, fprof2: fprof2, haveF: true}, nil
}

// Counts returns the cached pair classification.
func (c *Comparison) Counts() metrics.PairCounts { return c.counts }

// KProf returns the Kendall profile metric (Section 3.1).
func (c *Comparison) KProf() float64 { return metrics.KProfFromCounts(c.counts) }

// KWithPenalty returns K^(p) for any penalty parameter p in [0, 1].
func (c *Comparison) KWithPenalty(p float64) (float64, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("core: penalty parameter %v out of [0,1]", p)
	}
	return float64(c.counts.Discordant) + p*float64(c.counts.TiedOnlyInA+c.counts.TiedOnlyInB), nil
}

// KHaus returns the Hausdorff-Kendall metric via Proposition 6.
func (c *Comparison) KHaus() int64 { return metrics.KHausFromCounts(c.counts) }

// KAvg returns the average Kendall distance over refinement pairs
// (Appendix A.3).
func (c *Comparison) KAvg() float64 {
	return float64(c.counts.Discordant) +
		float64(c.counts.TiedOnlyInA+c.counts.TiedOnlyInB)/2 +
		float64(c.counts.TiedInBoth)/2
}

// Gamma returns the Goodman-Kruskal gamma association, or
// metrics.ErrGammaUndefined when no pair is untied in both rankings.
func (c *Comparison) Gamma() (float64, error) {
	den := c.counts.Concordant + c.counts.Discordant
	if den == 0 {
		return 0, metrics.ErrGammaUndefined
	}
	return float64(c.counts.Concordant-c.counts.Discordant) / float64(den), nil
}

// FProf returns the footrule profile metric (lazily computed, then cached).
func (c *Comparison) FProf() float64 {
	if !c.haveF {
		d2, err := metrics.FProf2(c.a, c.b)
		if err != nil {
			// Unreachable: domains were validated in Compare.
			panic(err)
		}
		c.fprof2 = d2
		c.haveF = true
	}
	return float64(c.fprof2) / 2
}

// FHaus returns the Hausdorff-footrule metric (lazily computed via the
// Theorem 5 witnesses, then cached).
func (c *Comparison) FHaus() int64 {
	if !c.haveFH {
		d, err := metrics.FHaus(c.a, c.b)
		if err != nil {
			panic(err) // unreachable, as above
		}
		c.fhaus = d
		c.haveFH = true
	}
	return c.fhaus
}

// Report bundles the four paper metrics and the Theorem 7 diagnostics for
// one pair of partial rankings.
type Report struct {
	KProf float64
	FProf float64
	KHaus int64
	FHaus int64
	// Equivalence ratios (0 when the distances are 0): each must lie in
	// [1, 2] by Theorem 7.
	FprofOverKprof float64
	FHausOverKHaus float64
	KHausOverKprof float64
}

// Report computes all four metrics and the equivalence ratios.
func (c *Comparison) Report() Report {
	r := Report{
		KProf: c.KProf(),
		FProf: c.FProf(),
		KHaus: c.KHaus(),
		FHaus: c.FHaus(),
	}
	if r.KProf > 0 {
		r.FprofOverKprof = r.FProf / r.KProf
		r.KHausOverKprof = float64(r.KHaus) / r.KProf
	}
	if r.KHaus > 0 {
		r.FHausOverKHaus = float64(r.FHaus) / float64(r.KHaus)
	}
	return r
}

// Method selects an aggregation algorithm.
type Method int

const (
	// MedianFullMethod is Theorem 11's construction: a full ranking
	// refining the median bucket order.
	MedianFullMethod Method = iota
	// OptimalPartialMethod is Theorem 10's construction: the Figure 1 DP
	// applied to the median score vector.
	OptimalPartialMethod
	// BordaMethod sorts by mean position.
	BordaMethod
	// MC4Method is the Markov-chain heuristic of Dwork et al.
	MC4Method
	// FootruleOptimalMethod is the exact Hungarian-matching optimum
	// (O(n^3); the heavyweight comparator).
	FootruleOptimalMethod
	// BestInputMethod returns the input closest (under summed Fprof) to
	// the rest, the trivial 2-approximation.
	BestInputMethod
)

func (m Method) String() string {
	switch m {
	case MedianFullMethod:
		return "median-full"
	case OptimalPartialMethod:
		return "optimal-partial"
	case BordaMethod:
		return "borda"
	case MC4Method:
		return "mc4"
	case FootruleOptimalMethod:
		return "footrule-optimal"
	case BestInputMethod:
		return "best-input"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Objectives evaluates a candidate aggregation under all four metrics:
// sum_i d(candidate, sigma_i) for each d.
type Objectives struct {
	SumKProf float64
	SumFProf float64
	SumKHaus int64
	SumFHaus int64
}

// AggregationResult is one method's output and its objective values.
type AggregationResult struct {
	Method     Method
	Ranking    *ranking.PartialRanking
	Objectives Objectives
}

// ErrUnknownMethod reports an unrecognized aggregation method.
var ErrUnknownMethod = errors.New("core: unknown aggregation method")

// Aggregate runs the chosen method over the inputs and evaluates its
// objective under all four metrics.
func Aggregate(rankings []*ranking.PartialRanking, method Method) (*AggregationResult, error) {
	var (
		out *ranking.PartialRanking
		err error
	)
	switch method {
	case MedianFullMethod:
		out, err = aggregate.MedianFull(rankings)
	case OptimalPartialMethod:
		out, err = aggregate.OptimalPartialAggregate(rankings)
	case BordaMethod:
		out, err = aggregate.Borda(rankings)
	case MC4Method:
		out, err = aggregate.MarkovChain(rankings, aggregate.MC4, aggregate.MarkovChainOptions{})
	case FootruleOptimalMethod:
		out, _, err = aggregate.FootruleOptimalFull(rankings)
	case BestInputMethod:
		ws := metrics.GetWorkspace()
		_, out, _, err = aggregate.BestOfInputsWith(ws, rankings, metrics.FProfWS)
		metrics.PutWorkspace(ws)
	default:
		return nil, ErrUnknownMethod
	}
	if err != nil {
		return nil, err
	}
	obj, err := Evaluate(out, rankings)
	if err != nil {
		return nil, err
	}
	return &AggregationResult{Method: method, Ranking: out, Objectives: obj}, nil
}

// Evaluate computes the four summed objectives of a candidate against the
// inputs on a pooled workspace.
func Evaluate(candidate *ranking.PartialRanking, rankings []*ranking.PartialRanking) (Objectives, error) {
	ws := metrics.GetWorkspace()
	defer metrics.PutWorkspace(ws)
	return EvaluateWith(ws, candidate, rankings)
}

// EvaluateWith computes the four summed objectives of a candidate against
// the inputs, reusing the caller's workspace for every term: one warm
// workspace serves the whole ensemble, so the evaluation performs O(1)
// allocations instead of O(m * n).
func EvaluateWith(ws *metrics.Workspace, candidate *ranking.PartialRanking, rankings []*ranking.PartialRanking) (Objectives, error) {
	var obj Objectives
	for _, r := range rankings {
		d, err := ws.Distances(candidate, r)
		if err != nil {
			return obj, err
		}
		obj.SumKProf += d.KProf
		obj.SumFProf += d.FProf
		obj.SumKHaus += d.KHaus
		obj.SumFHaus += d.FHaus
	}
	return obj, nil
}

// CompareAll runs every registered method and returns the results in method
// order — the one-call version of experiment E9's comparison.
func CompareAll(rankings []*ranking.PartialRanking, methods ...Method) ([]*AggregationResult, error) {
	if len(methods) == 0 {
		methods = []Method{MedianFullMethod, OptimalPartialMethod, BordaMethod, MC4Method, BestInputMethod}
	}
	out := make([]*AggregationResult, 0, len(methods))
	for _, m := range methods {
		res, err := Aggregate(rankings, m)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
