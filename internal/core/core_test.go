package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/randrank"
	"repro/internal/ranking"
)

// The cached comparison must agree with the standalone metric functions.
func TestComparisonMatchesMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(20)
		a := randrank.Partial(rng, n, 4)
		b := randrank.Partial(rng, n, 4)
		c, err := Compare(a, b)
		if err != nil {
			t.Fatal(err)
		}
		kp, _ := metrics.KProf(a, b)
		if c.KProf() != kp {
			t.Fatalf("KProf %v != %v", c.KProf(), kp)
		}
		fp, _ := metrics.FProf(a, b)
		if c.FProf() != fp {
			t.Fatalf("FProf %v != %v", c.FProf(), fp)
		}
		kh, _ := metrics.KHaus(a, b)
		if c.KHaus() != kh {
			t.Fatalf("KHaus %v != %v", c.KHaus(), kh)
		}
		fh, _ := metrics.FHaus(a, b)
		if c.FHaus() != fh {
			t.Fatalf("FHaus %v != %v", c.FHaus(), fh)
		}
		ka, _ := metrics.KAvg(a, b)
		if c.KAvg() != ka {
			t.Fatalf("KAvg %v != %v", c.KAvg(), ka)
		}
		for _, p := range []float64{0, 0.25, 0.5, 1} {
			want, _ := metrics.KWithPenalty(a, b, p)
			got, err := c.KWithPenalty(p)
			if err != nil || got != want {
				t.Fatalf("K^(%v) %v != %v (%v)", p, got, want, err)
			}
		}
		wantG, wantErr := metrics.GoodmanKruskalGamma(a, b)
		gotG, gotErr := c.Gamma()
		if (gotErr == nil) != (wantErr == nil) || (gotErr == nil && gotG != wantG) {
			t.Fatalf("gamma (%v,%v) != (%v,%v)", gotG, gotErr, wantG, wantErr)
		}
	}
}

func TestComparisonPenaltyRange(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1})
	c, err := Compare(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.KWithPenalty(-0.1); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := c.KWithPenalty(2); err == nil {
		t.Error("p > 1 accepted")
	}
}

func TestCompareDomainMismatch(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1})
	b := ranking.MustFromOrder([]int{0, 1, 2})
	if _, err := Compare(a, b); err == nil {
		t.Error("domain mismatch accepted")
	}
}

// Report ratios must respect Theorem 7's [1, 2] windows.
func TestReportRatios(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(25)
		a := randrank.Partial(rng, n, 5)
		b := randrank.Partial(rng, n, 5)
		c, err := Compare(a, b)
		if err != nil {
			t.Fatal(err)
		}
		r := c.Report()
		if r.KProf == 0 {
			continue
		}
		for name, ratio := range map[string]float64{
			"Fprof/Kprof": r.FprofOverKprof,
			"FHaus/KHaus": r.FHausOverKHaus,
			"KHaus/Kprof": r.KHausOverKprof,
		} {
			if ratio < 1-1e-12 || ratio > 2+1e-12 {
				t.Fatalf("%s = %v outside [1,2]\na=%v\nb=%v", name, ratio, a, b)
			}
		}
	}
}

func TestAggregateMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var in []*ranking.PartialRanking
	for i := 0; i < 5; i++ {
		in = append(in, randrank.Partial(rng, 12, 3))
	}
	methods := []Method{
		MedianFullMethod, OptimalPartialMethod, BordaMethod,
		MC4Method, FootruleOptimalMethod, BestInputMethod,
	}
	for _, m := range methods {
		res, err := Aggregate(in, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Ranking == nil || res.Ranking.N() != 12 {
			t.Fatalf("%v returned bad ranking", m)
		}
		// The evaluated objective must match a direct evaluation.
		direct, err := Evaluate(res.Ranking, in)
		if err != nil {
			t.Fatal(err)
		}
		if direct != res.Objectives {
			t.Fatalf("%v objectives %+v != direct %+v", m, res.Objectives, direct)
		}
		if m.String() == "" || strings.HasPrefix(m.String(), "Method(") {
			t.Fatalf("%v has suspicious String()", m)
		}
	}
	if _, err := Aggregate(in, Method(99)); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("unknown method error = %v", err)
	}
}

// Theorem 7 in action: the Theorem 10/11 constructions, optimized for
// sum-Fprof, stay within small constant factors of the footrule optimum
// under EVERY metric.
func TestEquivalenceTransfersAcrossMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var in []*ranking.PartialRanking
	for i := 0; i < 5; i++ {
		in = append(in, randrank.Partial(rng, 15, 4))
	}
	med, err := Aggregate(in, MedianFullMethod)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Aggregate(in, FootruleOptimalMethod)
	if err != nil {
		t.Fatal(err)
	}
	// With partial-ranking inputs the guarantee is Theorem 9's factor 3
	// (full rankings are top-n lists); Theorem 11's factor 2 needs full
	// inputs.
	if opt.Objectives.SumFProf > 0 {
		if f := med.Objectives.SumFProf / opt.Objectives.SumFProf; f > 3+1e-9 {
			t.Errorf("Fprof factor %v > 3", f)
		}
	}
	// Kprof <= Fprof and Fprof <= 2 Kprof transfer the bound to a 12x
	// worst case under Kprof; in practice the factor is tiny.
	if opt.Objectives.SumKProf > 0 {
		if f := med.Objectives.SumKProf / opt.Objectives.SumKProf; f > 12 {
			t.Errorf("Kprof transfer factor %v > 12", f)
		}
	}
}

func TestCompareAllDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var in []*ranking.PartialRanking
	for i := 0; i < 3; i++ {
		in = append(in, randrank.Partial(rng, 8, 3))
	}
	res, err := CompareAll(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("CompareAll returned %d results", len(res))
	}
	// The DP aggregate can never lose to the median refinement on SumFProf
	// (it optimizes L1 to the same median over a superset of candidates)...
	// but both must respect Theorem 9/10 style bounds vs best input.
	var medianRes, bestInput *AggregationResult
	for _, r := range res {
		switch r.Method {
		case OptimalPartialMethod:
			medianRes = r
		case BestInputMethod:
			bestInput = r
		}
	}
	if medianRes == nil || bestInput == nil {
		t.Fatal("missing default methods")
	}
}

func TestCountsAccessor(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1, 2})
	b := ranking.MustFromBuckets(3, [][]int{{0, 1}, {2}})
	c, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pc := c.Counts()
	want, _ := metrics.CountPairs(a, b)
	if pc != want {
		t.Errorf("Counts = %+v, want %+v", pc, want)
	}
}

// CompareWith on a shared workspace must agree with Compare, and
// EvaluateWith must agree with per-pair evaluation.
func TestCompareWithMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ws := metrics.NewWorkspace()
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(30)
		a := randrank.Partial(rng, n, 1+rng.Intn(6))
		b := randrank.Partial(rng, n, 1+rng.Intn(6))
		want, err := Compare(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CompareWith(ws, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Counts() != want.Counts() {
			t.Fatalf("counts differ: %+v vs %+v", got.Counts(), want.Counts())
		}
		if got.Report() != want.Report() {
			t.Fatalf("reports differ: %+v vs %+v", got.Report(), want.Report())
		}
	}
	if _, err := CompareWith(ws, randrank.Full(rng, 3), randrank.Full(rng, 4)); err == nil {
		t.Error("domain mismatch accepted by CompareWith")
	}
}

func TestEvaluateWithMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	in, _ := randrank.MallowsEnsemble(rng, 25, 7, 0.8)
	cand := randrank.Partial(rng, 25, 5)
	want, err := Evaluate(cand, in)
	if err != nil {
		t.Fatal(err)
	}
	ws := metrics.NewWorkspace()
	got, err := EvaluateWith(ws, cand, in)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("EvaluateWith = %+v, Evaluate = %+v", got, want)
	}
	if _, err := EvaluateWith(ws, cand, []*ranking.PartialRanking{randrank.Full(rng, 4)}); err == nil {
		t.Error("domain mismatch accepted by EvaluateWith")
	}
}
