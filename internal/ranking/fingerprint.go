package ranking

// Fingerprint is a 128-bit content hash of a partial ranking, the cache key
// of the pairwise-distance memoization layer (internal/cache). Two rankings
// with Equal bucket orders always have equal fingerprints; two distinct
// bucket orders collide with probability ~2^-128 per pair, which is the
// determinism argument of the cache layer: over any realistic ensemble the
// expected number of colliding pairs is far below one, so a cache hit can be
// treated as an equality witness.
//
// The hash is deterministic across processes and runs: it depends only on
// the bucket order's canonical content (domain size and the element ->
// bucket-index vector, which together determine the order completely), not
// on construction path, memory layout, or any per-process seed.
type Fingerprint struct {
	Hi, Lo uint64
}

// Less orders fingerprints lexicographically (Hi, then Lo); the cache layer
// uses it to canonicalize unordered pairs under symmetric metrics.
func (f Fingerprint) Less(g Fingerprint) bool {
	if f.Hi != g.Hi {
		return f.Hi < g.Hi
	}
	return f.Lo < g.Lo
}

// splitmix64-style finalizer: a bijective mixer with full avalanche, the
// standard way to turn a weak combining step into a strong chained hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Fingerprint returns the ranking's 128-bit content hash, computing it on
// first use and memoizing it on the struct. PartialRanking is immutable, so
// the memoized value never goes stale; the memo is published through an
// atomic pointer, so concurrent first calls are safe (both compute the same
// value and one of the idempotent stores wins).
func (pr *PartialRanking) Fingerprint() Fingerprint {
	if p := pr.fp.Load(); p != nil {
		return *p
	}
	// Two independently-seeded 64-bit lanes over the same word stream. The
	// stream is (n, bucketOf[0], ..., bucketOf[n-1]): the bucket-index vector
	// determines the bucket order exactly (buckets are the index's level sets
	// in index order), so content-equal rankings hash identically no matter
	// how they were built.
	h1 := mix64(uint64(pr.n) ^ 0x9e3779b97f4a7c15)
	h2 := mix64(uint64(pr.n) ^ 0xc2b2ae3d27d4eb4f)
	for _, b := range pr.bucketOf {
		w := uint64(b)
		h1 = mix64(h1 ^ (w + 0x9e3779b97f4a7c15))
		h2 = mix64(h2 ^ (w*0xff51afd7ed558ccd + 0x2545f4914f6cdd1d))
	}
	fp := Fingerprint{Hi: h1, Lo: h2}
	pr.fp.Store(&fp)
	return fp
}
