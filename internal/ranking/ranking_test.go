package ranking

import (
	"math/rand"
	"testing"
)

// randomPartial builds a uniform-ish random bucket order over n elements for
// use inside this package's tests (the shared workload generators live in
// internal/randrank, which depends on this package).
func randomPartial(rng *rand.Rand, n int) *PartialRanking {
	perm := rng.Perm(n)
	var buckets [][]int
	for i := 0; i < n; {
		size := 1 + rng.Intn(3)
		if i+size > n {
			size = n - i
		}
		buckets = append(buckets, perm[i:i+size])
		i += size
	}
	return MustFromBuckets(n, buckets)
}

func TestFromBucketsPositions(t *testing.T) {
	pr := MustFromBuckets(5, [][]int{{0, 1}, {2}, {3, 4}})
	wantPos := map[int]float64{0: 1.5, 1: 1.5, 2: 3, 3: 4.5, 4: 4.5}
	for e, want := range wantPos {
		if got := pr.Pos(e); got != want {
			t.Errorf("Pos(%d) = %v, want %v", e, got, want)
		}
	}
	if got := pr.NumBuckets(); got != 3 {
		t.Errorf("NumBuckets = %d, want 3", got)
	}
	if pr.IsFull() {
		t.Error("IsFull = true for a ranking with ties")
	}
}

func TestFromBucketsValidation(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		buckets [][]int
	}{
		{"empty bucket", 2, [][]int{{0}, {}, {1}}},
		{"duplicate element", 2, [][]int{{0}, {0}}},
		{"out of range", 2, [][]int{{0}, {2}}},
		{"missing element", 3, [][]int{{0}, {1}}},
		{"negative element", 2, [][]int{{0}, {-1}}},
		{"negative n", -1, nil},
	}
	for _, tc := range cases {
		if _, err := FromBuckets(tc.n, tc.buckets); err == nil {
			t.Errorf("%s: FromBuckets accepted invalid input", tc.name)
		}
	}
}

func TestFromOrderIsFull(t *testing.T) {
	pr := MustFromOrder([]int{2, 0, 1})
	if !pr.IsFull() {
		t.Fatal("full ranking not detected")
	}
	// Positions of a full ranking are 1..n.
	if pr.Pos(2) != 1 || pr.Pos(0) != 2 || pr.Pos(1) != 3 {
		t.Errorf("positions = %v %v %v, want 1 2 3", pr.Pos(2), pr.Pos(0), pr.Pos(1))
	}
	order := pr.Order()
	if order[0] != 2 || order[1] != 0 || order[2] != 1 {
		t.Errorf("Order() = %v, want [2 0 1]", order)
	}
}

func TestFromScores(t *testing.T) {
	pr := FromScores([]float64{3.5, 1.0, 3.5, 2.0})
	// ascending score: 1 (1.0), 3 (2.0), {0,2} (3.5)
	want := MustFromBuckets(4, [][]int{{1}, {3}, {0, 2}})
	if !pr.Equal(want) {
		t.Errorf("FromScores = %v, want %v", pr, want)
	}
}

func TestTopKList(t *testing.T) {
	pr, err := TopKList(6, 2, []int{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	k, ok := pr.IsTopK()
	if !ok || k != 2 {
		t.Fatalf("IsTopK = (%d,%v), want (2,true)", k, ok)
	}
	if pr.Pos(4) != 1 || pr.Pos(1) != 2 {
		t.Errorf("top positions = %v %v, want 1 2", pr.Pos(4), pr.Pos(1))
	}
	// Bottom bucket holds 0,2,3,5 at position 2 + (4+1)/2 = 4.5.
	for _, e := range []int{0, 2, 3, 5} {
		if pr.Pos(e) != 4.5 {
			t.Errorf("Pos(%d) = %v, want 4.5", e, pr.Pos(e))
		}
	}

	if _, err := TopKList(3, 4, []int{0, 1, 2, 0}); err == nil {
		t.Error("TopKList accepted k > n")
	}
	if _, err := TopKList(3, 2, []int{0, 0}); err == nil {
		t.Error("TopKList accepted duplicate top element")
	}
	if _, err := TopKList(3, 2, []int{0}); err == nil {
		t.Error("TopKList accepted short order")
	}

	// A full ranking is a top-n list.
	full := MustFromOrder([]int{0, 1, 2})
	if k, ok := full.IsTopK(); !ok || k != 3 {
		t.Errorf("full ranking IsTopK = (%d,%v), want (3,true)", k, ok)
	}
	// An arbitrary bucket order is not.
	pr2 := MustFromBuckets(4, [][]int{{0, 1}, {2}, {3}})
	if _, ok := pr2.IsTopK(); ok {
		t.Error("non-top-k bucket order reported as top-k")
	}
}

func TestTypeAndString(t *testing.T) {
	pr := MustFromBuckets(5, [][]int{{3, 0}, {2}, {1, 4}})
	typ := pr.Type()
	if len(typ) != 3 || typ[0] != 2 || typ[1] != 1 || typ[2] != 2 {
		t.Errorf("Type = %v, want [2 1 2]", typ)
	}
	if got, want := pr.String(), "0 3 | 2 | 1 4"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestEqualAndClone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a := randomPartial(rng, 1+rng.Intn(12))
		if !a.Equal(a.Clone()) {
			t.Fatalf("clone not equal: %v", a)
		}
		b := randomPartial(rng, a.N())
		if a.Equal(b) != b.Equal(a) {
			t.Fatalf("Equal not symmetric for %v vs %v", a, b)
		}
	}
	a := MustFromBuckets(3, [][]int{{0, 1}, {2}})
	b := MustFromBuckets(3, [][]int{{0}, {1}, {2}})
	c := MustFromBuckets(4, [][]int{{0, 1}, {2}, {3}})
	if a.Equal(b) || a.Equal(c) {
		t.Error("Equal reported distinct rankings as equal")
	}
}

func TestTiedAhead(t *testing.T) {
	pr := MustFromBuckets(4, [][]int{{0, 1}, {2}, {3}})
	if !pr.Tied(0, 1) || pr.Tied(0, 2) {
		t.Error("Tied wrong")
	}
	if !pr.Ahead(0, 2) || pr.Ahead(2, 0) || pr.Ahead(0, 1) {
		t.Error("Ahead wrong")
	}
}

func TestPositions2MatchesPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		pr := randomPartial(rng, 1+rng.Intn(20))
		p := pr.Positions()
		p2 := pr.Positions2()
		for e := range p {
			if float64(p2[e])/2 != p[e] {
				t.Fatalf("Positions2[%d]=%d inconsistent with Positions[%d]=%v", e, p2[e], e, p[e])
			}
		}
	}
}

// The sum of positions of any partial ranking over n elements equals
// n(n+1)/2, because positions average the occupied locations.
func TestPositionSumInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		pr := randomPartial(rng, n)
		var sum2 int64
		for e := 0; e < n; e++ {
			sum2 += pr.Pos2(e)
		}
		if want := int64(n) * int64(n+1); sum2 != want {
			t.Fatalf("sum of doubled positions = %d, want %d for %v", sum2, want, pr)
		}
	}
}

func TestCheckSameDomain(t *testing.T) {
	a := MustFromOrder([]int{0, 1})
	b := MustFromOrder([]int{1, 0})
	c := MustFromOrder([]int{0, 1, 2})
	if err := CheckSameDomain(a, b); err != nil {
		t.Errorf("same domain rejected: %v", err)
	}
	if err := CheckSameDomain(a, b, c); err == nil {
		t.Error("mismatched domain accepted")
	}
}
