package ranking

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"unicode"
	"unicode/utf8"

	"repro/internal/guard"
)

// The text codec represents one partial ranking per line. Buckets are
// separated by "|" (best bucket first); elements within a bucket are
// separated by whitespace. Blank lines and lines starting with '#' are
// ignored. Element names are interned into a Domain, so several rankings
// read through one Domain share IDs. Every ranking in a file must mention
// exactly the same element set (partial rankings in the paper share a fixed
// domain D).
//
// ParseText and ParseLines are the strict entry points: the first defect is
// an error. ParseLinesWith (hardened.go) adds admission limits and lenient
// parsing with deterministic repair, for corpora that cannot be trusted.

// token is one element name with the 1-based byte column it starts at, kept
// so defect reports can point into the offending line.
type token struct {
	name string
	col  int
}

// appendFields appends seg's whitespace-separated fields to dst, recording
// each field's column relative to a segment starting at byte offset base.
// The splitting matches strings.Fields (any unicode whitespace separates).
func appendFields(dst []token, seg string, base int) []token {
	i := 0
	for i < len(seg) {
		r, w := utf8.DecodeRuneInString(seg[i:])
		if unicode.IsSpace(r) {
			i += w
			continue
		}
		start := i
		for i < len(seg) {
			r, w := utf8.DecodeRuneInString(seg[i:])
			if unicode.IsSpace(r) {
				break
			}
			i += w
		}
		dst = append(dst, token{name: seg[start:i], col: base + start + 1})
	}
	return dst
}

// tokenizeLine splits a text-codec line into buckets of (name, column)
// tokens. The only structural defect detectable at this stage is an empty
// bucket, reported with the 1-based column where the bucket starts.
func tokenizeLine(line string) (buckets [][]token, emptyAt int) {
	offset := 0
	rest := line
	for {
		end := len(rest)
		for k := 0; k < len(rest); k++ {
			if rest[k] == '|' {
				end = k
				break
			}
		}
		toks := appendFields(nil, rest[:end], offset)
		if len(toks) == 0 {
			return nil, offset + 1
		}
		buckets = append(buckets, toks)
		if end == len(rest) {
			return buckets, 0
		}
		offset += end + 1
		rest = rest[end+1:]
	}
}

// ParseText parses a single ranking line ("a b | c | d e") against dom,
// interning any new names. The ranking's domain size is dom.Size() after
// interning, so callers parsing several rankings over one shared domain
// should parse all lines with ParseLines instead, which validates that every
// line covers the same element set.
//
// A failed parse leaves dom unchanged: names interned while reading the line
// are rolled back before the error is returned, so a rejected line never
// pollutes a shared domain.
func ParseText(dom *Domain, line string) (*PartialRanking, error) {
	buckets, emptyAt := tokenizeLine(line)
	if emptyAt > 0 {
		return nil, fmt.Errorf("ranking: empty bucket in %q", line)
	}
	before := dom.Size()
	idBuckets := make([][]int, len(buckets))
	for bi, b := range buckets {
		ids := make([]int, 0, len(b))
		for _, tok := range b {
			ids = append(ids, dom.Intern(tok.name))
		}
		idBuckets[bi] = ids
	}
	pr, err := FromBuckets(dom.Size(), idBuckets)
	if err != nil {
		dom.truncate(before)
		return nil, err
	}
	return pr, nil
}

// ParseLines reads rankings from r, one per line in the text codec, all over
// one shared domain. It returns the rankings and the interned domain. Every
// line must cover exactly the same set of element names; the first line
// fixes the domain. The first malformed line aborts the parse with an error
// naming its physical line (and column where known); reader failures,
// including a line longer than the 16 MiB cap, are likewise wrapped with the
// line number at which they occurred. Use ParseLinesWith for admission
// limits and lenient parsing.
func ParseLines(r io.Reader) ([]*PartialRanking, *Domain, error) {
	rs, dom, _, err := ParseLinesWith(r, ParseOptions{
		Limits: guard.Limits{MaxLineBytes: 16 << 20},
	})
	if err != nil {
		return nil, nil, err
	}
	return rs, dom, nil
}

// WriteLines writes rankings to w in the text codec using dom's names.
func WriteLines(w io.Writer, dom *Domain, rankings []*PartialRanking) error {
	bw := bufio.NewWriter(w)
	for _, pr := range rankings {
		if _, err := bw.WriteString(dom.Render(pr)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// rankingJSON is the wire form of a partial ranking: the domain size and the
// bucket partition, best bucket first.
type rankingJSON struct {
	N       int     `json:"n"`
	Buckets [][]int `json:"buckets"`
}

// MarshalJSON encodes the ranking as {"n": ..., "buckets": [[...], ...]}.
func (pr *PartialRanking) MarshalJSON() ([]byte, error) {
	return json.Marshal(rankingJSON{N: pr.n, Buckets: pr.buckets})
}

// UnmarshalJSON decodes and validates the wire form produced by MarshalJSON.
func (pr *PartialRanking) UnmarshalJSON(data []byte) error {
	var w rankingJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	built, err := FromBuckets(w.N, w.Buckets)
	if err != nil {
		return err
	}
	// Field-wise rebind rather than a struct copy: the fingerprint memo is an
	// atomic and must be reset, not copied, now that the content changed.
	pr.n = built.n
	pr.buckets = built.buckets
	pr.bucketOf = built.bucketOf
	pr.pos2 = built.pos2
	pr.fp.Store(nil)
	return nil
}
