package ranking

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// The text codec represents one partial ranking per line. Buckets are
// separated by "|" (best bucket first); elements within a bucket are
// separated by whitespace. Blank lines and lines starting with '#' are
// ignored. Element names are interned into a Domain, so several rankings
// read through one Domain share IDs. Every ranking in a file must mention
// exactly the same element set (partial rankings in the paper share a fixed
// domain D).

// ParseText parses a single ranking line ("a b | c | d e") against dom,
// interning any new names. The ranking's domain size is dom.Size() after
// interning, so callers parsing several rankings over one shared domain
// should parse all lines with ParseLines instead, which validates that every
// line covers the same element set.
func ParseText(dom *Domain, line string) (*PartialRanking, error) {
	parts := strings.Split(line, "|")
	var buckets [][]int
	for _, part := range parts {
		fields := strings.Fields(part)
		if len(fields) == 0 {
			return nil, fmt.Errorf("ranking: empty bucket in %q", line)
		}
		b := make([]int, 0, len(fields))
		for _, f := range fields {
			b = append(b, dom.Intern(f))
		}
		buckets = append(buckets, b)
	}
	return FromBuckets(dom.Size(), buckets)
}

// ParseLines reads rankings from r, one per line in the text codec, all over
// one shared domain. It returns the rankings and the interned domain. Every
// line must cover exactly the same set of element names; the first line
// fixes the domain.
func ParseLines(r io.Reader) ([]*PartialRanking, *Domain, error) {
	dom := NewDomain()
	var lines []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	var out []*PartialRanking
	for i, line := range lines {
		before := dom.Size()
		pr, err := ParseText(dom, line)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		if i > 0 && dom.Size() != before {
			return nil, nil, fmt.Errorf("line %d: introduces element names not in the first ranking's domain", i+1)
		}
		out = append(out, pr)
	}
	return out, dom, nil
}

// WriteLines writes rankings to w in the text codec using dom's names.
func WriteLines(w io.Writer, dom *Domain, rankings []*PartialRanking) error {
	bw := bufio.NewWriter(w)
	for _, pr := range rankings {
		if _, err := bw.WriteString(dom.Render(pr)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// rankingJSON is the wire form of a partial ranking: the domain size and the
// bucket partition, best bucket first.
type rankingJSON struct {
	N       int     `json:"n"`
	Buckets [][]int `json:"buckets"`
}

// MarshalJSON encodes the ranking as {"n": ..., "buckets": [[...], ...]}.
func (pr *PartialRanking) MarshalJSON() ([]byte, error) {
	return json.Marshal(rankingJSON{N: pr.n, Buckets: pr.buckets})
}

// UnmarshalJSON decodes and validates the wire form produced by MarshalJSON.
func (pr *PartialRanking) UnmarshalJSON(data []byte) error {
	var w rankingJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	built, err := FromBuckets(w.N, w.Buckets)
	if err != nil {
		return err
	}
	*pr = *built
	return nil
}
