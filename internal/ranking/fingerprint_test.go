package ranking

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
)

// Content-equal rankings fingerprint identically no matter how they were
// constructed.
func TestFingerprintContentEquality(t *testing.T) {
	a := MustFromBuckets(4, [][]int{{2}, {0, 3}, {1}})
	b := MustFromBuckets(4, [][]int{{2}, {3, 0}, {1}}) // same buckets, listed differently
	c := a.Clone()
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("equal rankings fingerprint differently: %v vs %v", a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() != c.Fingerprint() {
		t.Errorf("clone fingerprints differently: %v vs %v", a.Fingerprint(), c.Fingerprint())
	}
	full := MustFromOrder([]int{2, 0, 3, 1})
	viaScores := FromScores([]float64{1, 3, 0, 2})
	if full.Fingerprint() != viaScores.Fingerprint() {
		t.Error("same full ranking via FromOrder and FromScores fingerprints differently")
	}
}

// Every distinct bucket order of a small domain gets a distinct fingerprint:
// the hash separates the full candidate space with zero collisions.
func TestFingerprintSeparatesAllBucketOrders(t *testing.T) {
	for n := 0; n <= 5; n++ {
		seen := make(map[Fingerprint]string)
		count := 0
		ForEachPartialRanking(n, func(pr *PartialRanking) bool {
			count++
			fp := pr.Fingerprint()
			if prev, dup := seen[fp]; dup {
				t.Fatalf("n=%d: collision between %q and %q", n, prev, pr.String())
			}
			seen[fp] = pr.String()
			return true
		})
		want, _ := Fubini(n)
		if int64(count) != want {
			t.Fatalf("n=%d: enumerated %d orders, want %d", n, count, want)
		}
	}
}

// Rankings that differ only in domain size must not collide either (the
// bucket-index vector of the identity full ranking is a prefix of the larger
// one's).
func TestFingerprintDomainSizeMatters(t *testing.T) {
	a := MustFromOrder([]int{0, 1, 2})
	b := MustFromOrder([]int{0, 1, 2, 3})
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different domain sizes collided")
	}
}

// The memo is computed once and is safe under concurrent first use.
func TestFingerprintMemoConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		pr := MustFromOrder(rng.Perm(50))
		want := pr.Clone().Fingerprint()
		var wg sync.WaitGroup
		got := make([]Fingerprint, 8)
		for g := range got {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				got[g] = pr.Fingerprint()
			}(g)
		}
		wg.Wait()
		for g, fp := range got {
			if fp != want {
				t.Fatalf("goroutine %d saw %v, want %v", g, fp, want)
			}
		}
	}
}

// Reusing a ranking value through UnmarshalJSON resets the memo: the second
// decode must not serve the first decode's fingerprint.
func TestFingerprintResetOnUnmarshal(t *testing.T) {
	var pr PartialRanking
	if err := json.Unmarshal([]byte(`{"n":3,"buckets":[[0],[1],[2]]}`), &pr); err != nil {
		t.Fatal(err)
	}
	first := pr.Fingerprint()
	if err := json.Unmarshal([]byte(`{"n":3,"buckets":[[2],[1],[0]]}`), &pr); err != nil {
		t.Fatal(err)
	}
	second := pr.Fingerprint()
	if first == second {
		t.Error("fingerprint memo survived UnmarshalJSON content change")
	}
	if want := MustFromOrder([]int{2, 1, 0}).Fingerprint(); second != want {
		t.Errorf("post-unmarshal fingerprint = %v, want %v", second, want)
	}
}

// Less is a strict total order usable for pair canonicalization.
func TestFingerprintLess(t *testing.T) {
	a := Fingerprint{Hi: 1, Lo: 9}
	b := Fingerprint{Hi: 2, Lo: 0}
	c := Fingerprint{Hi: 1, Lo: 10}
	if !a.Less(b) || b.Less(a) {
		t.Error("Hi ordering broken")
	}
	if !a.Less(c) || c.Less(a) {
		t.Error("Lo tiebreak broken")
	}
	if a.Less(a) {
		t.Error("irreflexivity broken")
	}
}
