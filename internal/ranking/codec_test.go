package ranking

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func TestParseTextAndRender(t *testing.T) {
	dom := NewDomain()
	pr, err := ParseText(dom, "sushi thai | bbq | deli diner")
	if err != nil {
		t.Fatal(err)
	}
	if pr.N() != 5 || pr.NumBuckets() != 3 {
		t.Fatalf("parsed n=%d buckets=%d, want 5/3", pr.N(), pr.NumBuckets())
	}
	id, ok := dom.ID("bbq")
	if !ok || pr.Pos(id) != 3 {
		t.Errorf("bbq position = %v, want 3", pr.Pos(id))
	}
	if got, want := dom.Render(pr), "sushi thai | bbq | deli diner"; got != want {
		t.Errorf("Render = %q, want %q", got, want)
	}
}

func TestParseTextErrors(t *testing.T) {
	dom := NewDomain()
	if _, err := ParseText(dom, "a | | b"); err == nil {
		t.Error("empty bucket accepted")
	}
	dom2 := NewDomain()
	if _, err := ParseText(dom2, "a a | b"); err == nil {
		t.Error("duplicate element accepted")
	}
}

func TestParseLinesSharedDomain(t *testing.T) {
	input := `# two rankings over one domain
a b | c
c | a | b
`
	rs, dom, err := ParseLines(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || dom.Size() != 3 {
		t.Fatalf("got %d rankings over %d names", len(rs), dom.Size())
	}
	if err := CheckSameDomain(rs...); err != nil {
		t.Fatal(err)
	}

	if _, _, err := ParseLines(strings.NewReader("a | b\na | c\n")); err == nil {
		t.Error("second line with new element accepted")
	}
}

func TestWriteLinesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	names := []string{"e0", "e1", "e2", "e3", "e4", "e5", "e6"}
	dom := MustDomainOf(names...)
	var rankings []*PartialRanking
	for i := 0; i < 5; i++ {
		rankings = append(rankings, randomPartial(rng, len(names)))
	}
	var buf bytes.Buffer
	if err := WriteLines(&buf, dom, rankings); err != nil {
		t.Fatal(err)
	}
	back, dom2, err := ParseLines(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rankings) {
		t.Fatalf("round trip lost rankings: %d vs %d", len(back), len(rankings))
	}
	for i := range rankings {
		// IDs may be permuted by interning order; compare via names.
		for e := 0; e < len(names); e++ {
			name := dom.Name(e)
			id2, ok := dom2.ID(name)
			if !ok {
				t.Fatalf("name %q lost in round trip", name)
			}
			if rankings[i].Pos(e) != back[i].Pos(id2) {
				t.Fatalf("ranking %d: %q moved from %v to %v", i, name, rankings[i].Pos(e), back[i].Pos(id2))
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		pr := randomPartial(rng, 1+rng.Intn(15))
		data, err := json.Marshal(pr)
		if err != nil {
			t.Fatal(err)
		}
		var back PartialRanking
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !pr.Equal(&back) {
			t.Fatalf("JSON round trip changed ranking: %v -> %v", pr, &back)
		}
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var pr PartialRanking
	if err := json.Unmarshal([]byte(`{"n":2,"buckets":[[0],[0]]}`), &pr); err == nil {
		t.Error("invalid partition accepted")
	}
	if err := json.Unmarshal([]byte(`{bad json`), &pr); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestDomain(t *testing.T) {
	d := NewDomain()
	a := d.Intern("a")
	if again := d.Intern("a"); again != a {
		t.Error("Intern not idempotent")
	}
	b := d.Intern("b")
	if a == b {
		t.Error("distinct names share an ID")
	}
	if d.Size() != 2 {
		t.Errorf("Size = %d, want 2", d.Size())
	}
	if d.Name(a) != "a" || d.Name(b) != "b" {
		t.Error("Name mapping wrong")
	}
	if _, ok := d.ID("zzz"); ok {
		t.Error("unknown name resolved")
	}
	names := d.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	if _, err := DomainOf("x", "x"); err == nil {
		t.Error("duplicate names accepted")
	}
}
