package ranking

import "fmt"

// RefineBy returns the tau-refinement of sigma, written tau*sigma in the
// paper (Section 2): the refinement of sigma in which ties are broken
// according to tau. Within each bucket of sigma, elements are split into
// sub-buckets by their bucket in tau, ordered as in tau; elements tied in
// both sigma and tau remain tied.
//
// The * operation is associative, so rho*tau*sigma is
// sigma.RefineBy(tau).RefineBy(rho). When tau is a full ranking, the result
// is a full ranking.
func (pr *PartialRanking) RefineBy(tau *PartialRanking) *PartialRanking {
	if pr.n != tau.n {
		panic("ranking: RefineBy on rankings with different domains")
	}
	buckets := make([][]int, 0, len(pr.buckets))
	// Reused scratch map from tau-bucket index to sub-bucket.
	for _, b := range pr.buckets {
		if len(b) == 1 {
			buckets = append(buckets, b)
			continue
		}
		sub := make(map[int][]int, len(b))
		keys := make([]int, 0, len(b))
		for _, e := range b {
			tb := tau.bucketOf[e]
			if _, ok := sub[tb]; !ok {
				keys = append(keys, tb)
			}
			sub[tb] = append(sub[tb], e)
		}
		sortInts(keys)
		for _, tb := range keys {
			buckets = append(buckets, sub[tb])
		}
	}
	out, err := FromBuckets(pr.n, buckets)
	if err != nil {
		// Unreachable: refining a valid partition yields a valid partition.
		panic(err)
	}
	return out
}

// Reverse returns sigma^R defined by sigma^R(d) = |D| + 1 - sigma(d)
// (Section 2): the bucket order with the same buckets in reverse order.
func (pr *PartialRanking) Reverse() *PartialRanking {
	t := len(pr.buckets)
	buckets := make([][]int, t)
	for i := range pr.buckets {
		buckets[i] = pr.buckets[t-1-i]
	}
	out, err := FromBuckets(pr.n, buckets)
	if err != nil {
		panic(err) // unreachable
	}
	return out
}

// IsRefinementOf reports whether sigma is a refinement of tau
// (sigma <= tau in the paper's notation): for all i, j, whenever
// tau(i) < tau(j) we have sigma(i) < sigma(j).
func (pr *PartialRanking) IsRefinementOf(tau *PartialRanking) bool {
	if pr.n != tau.n {
		return false
	}
	// Each sigma-bucket must lie inside a single tau-bucket, and the
	// tau-bucket indices must be non-decreasing along sigma's bucket order.
	prev := -1
	for _, b := range pr.buckets {
		tb := tau.bucketOf[b[0]]
		for _, e := range b[1:] {
			if tau.bucketOf[e] != tb {
				return false
			}
		}
		if tb < prev {
			return false
		}
		prev = tb
	}
	// Every tau-separated pair must stay separated: with buckets nested and
	// non-decreasing, tau(i) < tau(j) implies sigma's buckets differ, except
	// that two sigma-buckets could map to tau-buckets out of order; the
	// non-decreasing check above already rules that out. It remains to rule
	// out two elements of one sigma-bucket straddling distinct tau-buckets,
	// which the nesting check rules out. Hence sigma refines tau.
	return true
}

// ForEachFullRefinement invokes fn once for every full refinement of the
// ranking, passing the refinement's best-first element order. The slice
// passed to fn is reused across calls and must not be retained. If fn
// returns false, enumeration stops early. The number of refinements is the
// product of the factorials of the bucket sizes, so this is only feasible
// for small buckets; it exists as the brute-force reference for the
// Hausdorff metrics (Section 3.2).
func (pr *PartialRanking) ForEachFullRefinement(fn func(order []int) bool) {
	order := make([]int, 0, pr.n)
	for _, b := range pr.buckets {
		order = append(order, b...)
	}
	// Permute each bucket's segment of order independently, in mixed-radix
	// fashion, using recursive Heap-like enumeration per segment.
	var rec func(bi, off int) bool
	rec = func(bi, off int) bool {
		if bi == len(pr.buckets) {
			return fn(order)
		}
		seg := order[off : off+len(pr.buckets[bi])]
		return forEachPermutation(seg, func() bool {
			return rec(bi+1, off+len(seg))
		})
	}
	rec(0, 0)
}

// NumFullRefinements returns the number of full refinements, i.e. the
// product of the factorials of the bucket sizes, and whether the value fits
// in an int64 without overflow.
func (pr *PartialRanking) NumFullRefinements() (count int64, ok bool) {
	count = 1
	for _, b := range pr.buckets {
		for k := int64(2); k <= int64(len(b)); k++ {
			if count > (1<<62)/k {
				return 0, false
			}
			count *= k
		}
	}
	return count, true
}

// forEachPermutation enumerates all permutations of seg in place, invoking
// fn after each arrangement (including the initial one). It restores seg to
// its initial arrangement before returning. If fn returns false, enumeration
// stops and forEachPermutation returns false.
func forEachPermutation(seg []int, fn func() bool) bool {
	var rec func(k int) bool
	rec = func(k int) bool {
		if k <= 1 {
			return fn()
		}
		for i := 0; i < k; i++ {
			if !rec(k - 1) {
				return false
			}
			if i < k-1 {
				if k%2 == 0 {
					seg[i], seg[k-1] = seg[k-1], seg[i]
				} else {
					seg[0], seg[k-1] = seg[k-1], seg[0]
				}
			}
		}
		return true
	}
	if len(seg) == 0 {
		return fn()
	}
	initial := append([]int(nil), seg...)
	ok := rec(len(seg))
	copy(seg, initial)
	return ok
}

// ConsistentWith reports whether the ranking is consistent with the score
// function f in the sense of Appendix A.6.1: there is no pair i, j with
// f(i) < f(j) and sigma(i) > sigma(j).
func (pr *PartialRanking) ConsistentWith(f []float64) bool {
	if len(f) != pr.n {
		return false
	}
	// Sort elements by position; f must be non-decreasing across strictly
	// increasing positions. Within a bucket any f values are allowed only if
	// they do not invert against other buckets, which reduces to: the max f
	// in each bucket must be <= the min f in every later bucket... but that
	// is exactly "no pair with f(i) < f(j) and sigma(i) > sigma(j)", i.e.
	// min f over earlier buckets can exceed values later. Check directly:
	// running max of per-bucket minimum must not exceed later values.
	// Simpler O(n log n): the minimum f over buckets j > i must be >= ...
	// We check: for consecutive prefix, maxSoFar of earlier buckets' f may
	// not strictly exceed any later bucket's f.
	maxSoFar := negInf()
	for _, b := range pr.buckets {
		lo, hi := posInf(), negInf()
		for _, e := range b {
			if f[e] < lo {
				lo = f[e]
			}
			if f[e] > hi {
				hi = f[e]
			}
		}
		if maxSoFar > lo {
			return false
		}
		if hi > maxSoFar {
			maxSoFar = hi
		}
	}
	return true
}

// ConsistentOfType returns a partial ranking of type alpha consistent with
// the score function f: elements sorted by ascending f (ties broken by
// ascending element ID) carved into buckets of sizes alpha[0], alpha[1], ...
// This realizes a member of the set <f>_alpha of Appendix A.6.1. The sizes
// must sum to len(f).
func ConsistentOfType(f []float64, alpha []int) (*PartialRanking, error) {
	n := len(f)
	sum := 0
	for _, a := range alpha {
		if a <= 0 {
			return nil, fmt.Errorf("ranking: type has non-positive bucket size %d", a)
		}
		sum += a
	}
	if sum != n {
		return nil, fmt.Errorf("ranking: type sums to %d, domain has %d elements", sum, n)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sortByScore(idx, f)
	buckets := make([][]int, len(alpha))
	off := 0
	for i, a := range alpha {
		buckets[i] = append([]int(nil), idx[off:off+a]...)
		off += a
	}
	return FromBuckets(n, buckets)
}

func sortByScore(idx []int, f []float64) {
	// Stable by element ID because idx starts sorted ascending.
	sortSliceStable(idx, func(a, b int) bool { return f[idx[a]] < f[idx[b]] })
}

// Relabel returns the ranking over the same domain with every element e
// renamed to perm[e] (perm must be a permutation of {0..n-1}). Structure is
// preserved: pos_relabeled(perm[e]) = pos(e). Metric and aggregation
// computations are equivariant under consistent relabeling, a property the
// test suites verify.
func (pr *PartialRanking) Relabel(perm []int) (*PartialRanking, error) {
	if len(perm) != pr.n {
		return nil, fmt.Errorf("ranking: Relabel permutation has length %d, domain %d", len(perm), pr.n)
	}
	seen := make([]bool, pr.n)
	for _, v := range perm {
		if v < 0 || v >= pr.n || seen[v] {
			return nil, fmt.Errorf("ranking: Relabel argument is not a permutation")
		}
		seen[v] = true
	}
	buckets := make([][]int, len(pr.buckets))
	for bi, b := range pr.buckets {
		nb := make([]int, len(b))
		for i, e := range b {
			nb[i] = perm[e]
		}
		buckets[bi] = nb
	}
	return FromBuckets(pr.n, buckets)
}
