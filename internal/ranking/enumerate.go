package ranking

// ForEachPartialRanking enumerates every bucket order over {0..n-1}, i.e.
// every ordered set partition of the domain. There are Fubini(n) of them
// (1, 1, 3, 13, 75, 541, 4683, 47293, ... for n = 0, 1, 2, ...), so this is
// only feasible for small n; it is the brute-force search space for
// aggregation optima over all partial rankings (Theorem 10) and for
// exhaustive metric validation. If fn returns false, enumeration stops.
//
// Each ordered partition is generated exactly once: element e is inserted
// either into one of the existing buckets or as a new singleton bucket into
// any of the gaps.
func ForEachPartialRanking(n int, fn func(pr *PartialRanking) bool) {
	var buckets [][]int
	stopped := false
	var rec func(e int)
	rec = func(e int) {
		if stopped {
			return
		}
		if e == n {
			cp := make([][]int, len(buckets))
			for i, b := range buckets {
				cp[i] = append([]int(nil), b...)
			}
			if !fn(MustFromBuckets(n, cp)) {
				stopped = true
			}
			return
		}
		for i := range buckets {
			buckets[i] = append(buckets[i], e)
			rec(e + 1)
			buckets[i] = buckets[i][:len(buckets[i])-1]
			if stopped {
				return
			}
		}
		for gap := 0; gap <= len(buckets); gap++ {
			buckets = append(buckets, nil)
			copy(buckets[gap+1:], buckets[gap:])
			buckets[gap] = []int{e}
			rec(e + 1)
			copy(buckets[gap:], buckets[gap+1:])
			buckets = buckets[:len(buckets)-1]
			if stopped {
				return
			}
		}
	}
	rec(0)
}

// Fubini returns the number of ordered set partitions of an n-element set
// (the ordered Bell number), and whether it fits in an int64.
func Fubini(n int) (int64, bool) {
	// a(n) = sum_{k=1..n} C(n,k) a(n-k), a(0) = 1.
	a := make([]int64, n+1)
	a[0] = 1
	for m := 1; m <= n; m++ {
		// Binomials row for m.
		c := int64(1)
		for k := 1; k <= m; k++ {
			c = c * int64(m-k+1) / int64(k)
			term := c * a[m-k]
			if a[m-k] != 0 && term/a[m-k] != c {
				return 0, false
			}
			a[m] += term
			if a[m] < 0 {
				return 0, false
			}
		}
	}
	return a[n], true
}
