package ranking

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/guard"
	"repro/internal/telemetry"
)

// Ingestion telemetry. The parsed-lines counter is gated like every hot-path
// instrument; drops and repairs are force-counted because a corpus that
// needed repair is an operational fact worth counting even when tracing is
// off.
var (
	tLinesParsed   = telemetry.GetCounter("ranking.parse.lines")
	tLinesDropped  = telemetry.GetCounter("ranking.parse.lines_dropped")
	tLinesRepaired = telemetry.GetCounter("ranking.parse.lines_repaired")
)

// ParseOptions configures ParseLinesWith. The zero value is the historical
// strict parse with no admission limits.
type ParseOptions struct {
	// Limits bounds what the parser will admit; zero fields are unlimited.
	Limits guard.Limits
	// Lenient, when set, turns per-line defects into ErrorList entries and
	// keeps parsing; the result is the repaired ensemble. When unset the
	// first defect aborts the parse with an error.
	Lenient bool
	// Repair selects the lenient-mode repair for lines that cover a strict
	// subset of the domain: DropLine discards them, CompleteBottom appends
	// the missing elements as one trailing bottom bucket (the paper's
	// Section 2 top-list convention). Lines malformed in any other way are
	// always dropped.
	Repair guard.RepairPolicy
}

// ParseLinesWith reads rankings from r, one per line in the text codec, all
// over one shared domain, under the given admission limits and parse mode.
//
// In strict mode it behaves like ParseLines: the first defect aborts with an
// error naming the physical line and, where known, the column; the report is
// empty. In lenient mode every defective line becomes one guard.Defect in
// the returned report (capped at Limits.MaxDefects), the line is repaired or
// dropped deterministically per opts.Repair, and the call succeeds with
// whatever survived — a corrupted corpus yields a usable ensemble plus a
// defect report instead of one opaque error. The repaired ensemble always
// re-parses strictly with zero defects.
//
// Reader failures (I/O errors mid-stream) are fatal in both modes, wrapped
// with the line number at which they occurred. Lines longer than
// Limits.MaxLineBytes are a defect in lenient mode and an error wrapping
// bufio.ErrTooLong in strict mode; either way the parser knows where it was.
func ParseLinesWith(r io.Reader, opts ParseOptions) ([]*PartialRanking, *Domain, *guard.ErrorList, error) {
	dom := NewDomain()
	report := guard.NewErrorList(opts.Limits.DefectCap())
	var out []*PartialRanking
	lr := newLineReader(r, opts.Limits.MaxLineBytes)
	firstN := -1 // domain size fixed by the first kept ranking
	for {
		line, lineNo, tooLong, err := lr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, nil, fmt.Errorf("ranking: line %d: %w", lineNo, err)
		}
		if tooLong {
			if !opts.Lenient {
				return nil, nil, nil, fmt.Errorf("ranking: line %d: %w", lineNo, bufio.ErrTooLong)
			}
			tLinesDropped.ForceInc()
			report.Addf(lineNo, 0, "line exceeds %d bytes; dropped", opts.Limits.MaxLineBytes)
			continue
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		tLinesParsed.Inc()
		if !opts.Limits.RankingsOK(len(out) + 1) {
			if !opts.Lenient {
				return nil, nil, nil, fmt.Errorf("ranking: line %d: ranking count exceeds limit %d", lineNo, opts.Limits.MaxRankings)
			}
			tLinesDropped.ForceInc()
			report.Addf(lineNo, 0, "ranking limit %d reached; remaining input dropped", opts.Limits.MaxRankings)
			break
		}
		pr, d := parseGuardedLine(dom, trimmed, lineNo, firstN, opts)
		if d != nil {
			if !opts.Lenient {
				return nil, nil, nil, fmt.Errorf("ranking: %s", d.String())
			}
			report.Add(*d)
			if pr == nil {
				tLinesDropped.ForceInc()
				continue
			}
			tLinesRepaired.ForceInc()
		}
		if firstN < 0 {
			firstN = dom.Size()
		}
		out = append(out, pr)
	}
	return out, dom, report, nil
}

// parseGuardedLine parses one trimmed, non-comment line against the shared
// domain under the admission limits. It returns the parsed (possibly
// repaired) ranking and/or a defect:
//
//	pr != nil, d == nil: clean line
//	pr != nil, d != nil: repaired line (lenient CompleteBottom); d.Repaired set
//	pr == nil, d != nil: defective line, dropped; the domain is rolled back
//
// firstN < 0 means no ranking has fixed the domain yet, so this line is the
// candidate domain-fixer.
func parseGuardedLine(dom *Domain, line string, lineNo, firstN int, opts ParseOptions) (*PartialRanking, *guard.Defect) {
	buckets, emptyAt := tokenizeLine(line)
	if emptyAt > 0 {
		return nil, &guard.Defect{Line: lineNo, Col: emptyAt, Msg: "empty bucket"}
	}
	if !opts.Limits.BucketsOK(len(buckets)) {
		return nil, &guard.Defect{Line: lineNo, Msg: fmt.Sprintf("ranking has %d buckets, limit %d", len(buckets), opts.Limits.MaxBuckets)}
	}
	before := dom.Size()
	seen := make(map[string]int, 8)
	total := 0
	var firstNew token
	idBuckets := make([][]int, len(buckets))
	for bi, b := range buckets {
		ids := make([]int, 0, len(b))
		for _, tok := range b {
			if col, dup := seen[tok.name]; dup {
				dom.truncate(before)
				return nil, &guard.Defect{Line: lineNo, Col: tok.col, Msg: fmt.Sprintf("element %q already appeared at col %d", tok.name, col)}
			}
			seen[tok.name] = tok.col
			preSize := dom.Size()
			id := dom.Intern(tok.name)
			if id >= preSize && firstNew.name == "" {
				firstNew = tok
			}
			ids = append(ids, id)
			total++
		}
		idBuckets[bi] = ids
	}
	if firstN >= 0 && dom.Size() > firstN {
		dom.truncate(before)
		return nil, &guard.Defect{Line: lineNo, Col: firstNew.col, Msg: fmt.Sprintf("element %q not in the first ranking's domain", firstNew.name)}
	}
	if !opts.Limits.ElementsOK(dom.Size()) {
		dom.truncate(before)
		return nil, &guard.Defect{Line: lineNo, Msg: fmt.Sprintf("domain exceeds %d elements", opts.Limits.MaxElements)}
	}
	n := dom.Size()
	var repaired *guard.Defect
	if total < n {
		// The line covers a strict subset of the fixed domain.
		if !opts.Lenient || opts.Repair != guard.CompleteBottom {
			return nil, &guard.Defect{Line: lineNo, Msg: fmt.Sprintf("covers %d of %d domain elements", total, n)}
		}
		bottom := make([]int, 0, n-total)
		for id := 0; id < n; id++ {
			if _, ok := seen[dom.Name(id)]; !ok {
				bottom = append(bottom, id)
			}
		}
		idBuckets = append(idBuckets, bottom)
		repaired = &guard.Defect{
			Line:     lineNo,
			Msg:      fmt.Sprintf("covers %d of %d domain elements; completed %d missing into a bottom bucket", total, n, len(bottom)),
			Repaired: true,
		}
	}
	pr, err := FromBuckets(n, idBuckets)
	if err != nil {
		// Unreachable in practice: duplicates, coverage, and range defects
		// are all caught above. Kept as a belt for future codec changes.
		dom.truncate(before)
		return nil, &guard.Defect{Line: lineNo, Msg: err.Error()}
	}
	return pr, repaired
}

// lineReader yields physical lines without their terminators, discarding the
// remainder of lines longer than max bytes so parsing can resume at the next
// line — the recovery bufio.Scanner cannot do (ErrTooLong is sticky).
type lineReader struct {
	br     *bufio.Reader
	max    int
	lineNo int
}

func newLineReader(r io.Reader, max int) *lineReader {
	return &lineReader{br: bufio.NewReaderSize(r, 64*1024), max: max}
}

// next returns the next line and its 1-based number. tooLong reports a line
// over the byte cap (the line content is discarded). err is io.EOF at end of
// input, or the underlying reader's error.
func (lr *lineReader) next() (line string, lineNo int, tooLong bool, err error) {
	lr.lineNo++
	var buf []byte
	for {
		frag, ferr := lr.br.ReadSlice('\n')
		if lr.max > 0 && len(buf)+len(frag) > lr.max+1 { // +1 for the newline
			// Too long: consume to end of line without retaining it.
			if derr := lr.discardLine(ferr); derr != nil && derr != io.EOF {
				return "", lr.lineNo, false, derr
			}
			return "", lr.lineNo, true, nil
		}
		buf = append(buf, frag...)
		switch ferr {
		case nil:
			return trimEOL(buf), lr.lineNo, false, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(buf) == 0 {
				return "", lr.lineNo, false, io.EOF
			}
			return trimEOL(buf), lr.lineNo, false, nil
		default:
			return "", lr.lineNo, false, ferr
		}
	}
}

// discardLine consumes input up to and including the next newline. prevErr
// is the error of the ReadSlice call that overflowed, so a line that hit the
// cap and EOF simultaneously is not re-read.
func (lr *lineReader) discardLine(prevErr error) error {
	for {
		switch prevErr {
		case nil:
			return nil // the overflowing fragment ended at the newline
		case bufio.ErrBufferFull:
			_, prevErr = lr.br.ReadSlice('\n')
		default:
			return prevErr
		}
	}
}

// trimEOL strips one trailing "\n" or "\r\n".
func trimEOL(b []byte) string {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
		if n := len(b); n > 0 && b[n-1] == '\r' {
			b = b[:n-1]
		}
	}
	return string(b)
}
