package ranking

import (
	"math"
	"sort"
)

func sortInts(s []int) { sort.Ints(s) }

func sortSliceStable(idx []int, less func(a, b int) bool) {
	sort.SliceStable(idx, less)
}

func negInf() float64 { return math.Inf(-1) }
func posInf() float64 { return math.Inf(1) }
