package ranking

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/guard"
)

// FuzzParseText checks that arbitrary input never panics the parser and
// that everything it accepts round-trips through the renderer.
func FuzzParseText(f *testing.F) {
	f.Add("a b | c")
	f.Add("x")
	f.Add("| |")
	f.Add("a a")
	f.Add("  spaced   out  |  bucket ")
	f.Add("üñïçødé | ✓")
	f.Fuzz(func(t *testing.T, line string) {
		dom := NewDomain()
		pr, err := ParseText(dom, line)
		if err != nil {
			if dom.Size() != 0 {
				t.Fatalf("failed parse polluted the domain with %v", dom.Names())
			}
			return
		}
		rendered := dom.Render(pr)
		dom2 := NewDomain()
		back, err := ParseText(dom2, rendered)
		if err != nil {
			t.Fatalf("render %q of accepted input failed to parse: %v", rendered, err)
		}
		if back.N() != pr.N() || back.NumBuckets() != pr.NumBuckets() {
			t.Fatalf("round trip changed shape: %v -> %v", pr, back)
		}
	})
}

// FuzzParseLinesWith feeds arbitrary multi-line corpora through strict and
// lenient parsing and checks the agreement contract: on a corpus strict mode
// accepts, every lenient policy returns the identical ensemble with an empty
// defect report; on any corpus, the lenient result re-parses strictly with
// zero defects (the repair fixed point).
func FuzzParseLinesWith(f *testing.F) {
	f.Add("a b | c\nc | a b\n")
	f.Add("a b\na | | b\nb a\n")
	f.Add("x\n# c\n\nx\n")
	f.Add("a a\nq r\nr | q s\n")
	f.Add("| \r\nü ✓\n✓ | ü\n")
	f.Fuzz(func(t *testing.T, corpus string) {
		if len(corpus) > 1<<16 {
			return
		}
		limits := guard.Limits{MaxLineBytes: 1 << 12, MaxRankings: 64, MaxDefects: 16}
		strictRs, strictDom, strictReport, strictErr := ParseLinesWith(strings.NewReader(corpus), ParseOptions{Limits: limits})
		if strictErr == nil && strictReport.Len() != 0 {
			t.Fatalf("strict success with non-empty report: %v", strictReport)
		}
		for _, policy := range []guard.RepairPolicy{guard.DropLine, guard.CompleteBottom} {
			rs, dom, report, err := ParseLinesWith(strings.NewReader(corpus), ParseOptions{Limits: limits, Lenient: true, Repair: policy})
			if err != nil {
				t.Fatalf("%v: lenient parse failed fatally: %v", policy, err)
			}
			if strictErr == nil {
				// Strict-vs-lenient agreement on valid input.
				if report.Len() != 0 {
					t.Fatalf("%v: clean corpus produced defects: %v", policy, report)
				}
				if len(rs) != len(strictRs) || dom.Size() != strictDom.Size() {
					t.Fatalf("%v: modes disagree on clean corpus", policy)
				}
				for i := range rs {
					if !rs[i].Equal(strictRs[i]) {
						t.Fatalf("%v: ranking %d differs between modes", policy, i)
					}
				}
			}
			// Repair fixed point: what lenient mode kept is strictly valid.
			var buf bytes.Buffer
			if err := WriteLines(&buf, dom, rs); err != nil {
				t.Fatal(err)
			}
			back, _, report2, err := ParseLinesWith(bytes.NewReader(buf.Bytes()), ParseOptions{Limits: limits})
			if err != nil {
				t.Fatalf("%v: repaired ensemble failed strict re-parse: %v", policy, err)
			}
			if report2.Len() != 0 || len(back) != len(rs) {
				t.Fatalf("%v: repaired ensemble is not a fixed point", policy)
			}
		}
	})
}

// FuzzBucketsFromBytes decodes an arbitrary byte string into a bucket
// assignment and checks that every constructed ranking satisfies the core
// position invariants.
func FuzzBucketsFromBytes(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2})
	f.Add([]byte{5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		pr := FromBytes(data)
		n := pr.N()
		if n != len(data) {
			t.Fatalf("domain size %d != input length %d", n, len(data))
		}
		var sum2 int64
		for e := 0; e < n; e++ {
			sum2 += pr.Pos2(e)
		}
		if want := int64(n) * int64(n+1); sum2 != want {
			t.Fatalf("position-sum invariant violated: %d != %d", sum2, want)
		}
		if !pr.Reverse().Reverse().Equal(pr) {
			t.Fatal("reverse involution violated")
		}
		if !pr.RefineBy(pr).Equal(pr) {
			t.Fatal("self-refinement changed the ranking")
		}
	})
}

// FromBytes deterministically maps a byte string onto a bucket order over
// {0..len(data)-1}: byte values choose bucket labels, labels order buckets.
func FromBytes(data []byte) *PartialRanking {
	n := len(data)
	groups := map[byte][]int{}
	var labels []byte
	for i, b := range data {
		lbl := b % 7 // keep bucket count small so ties are common
		if _, ok := groups[lbl]; !ok {
			labels = append(labels, lbl)
		}
		groups[lbl] = append(groups[lbl], i)
	}
	sortBytes(labels)
	buckets := make([][]int, 0, len(labels))
	for _, l := range labels {
		buckets = append(buckets, groups[l])
	}
	return MustFromBuckets(n, buckets)
}

func sortBytes(b []byte) {
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && b[j] < b[j-1]; j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
}
