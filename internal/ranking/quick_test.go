package ranking

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genRanking draws a random bucket order over 1..maxN elements; it is the
// quick.Generator shared by the property-based tests in this package.
type genRanking struct {
	PR *PartialRanking
}

func (genRanking) Generate(r *rand.Rand, size int) reflect.Value {
	maxN := size
	if maxN < 1 {
		maxN = 1
	}
	if maxN > 12 {
		maxN = 12
	}
	n := 1 + r.Intn(maxN)
	perm := r.Perm(n)
	var buckets [][]int
	for i := 0; i < n; {
		s := 1 + r.Intn(3)
		if i+s > n {
			s = n - i
		}
		buckets = append(buckets, perm[i:i+s])
		i += s
	}
	return reflect.ValueOf(genRanking{MustFromBuckets(n, buckets)})
}

// genPair draws two bucket orders over one shared domain.
type genPair struct {
	A, B *PartialRanking
}

func (genPair) Generate(r *rand.Rand, size int) reflect.Value {
	a := genRanking{}.Generate(r, size).Interface().(genRanking).PR
	b := genRanking{}.Generate(r, size).Interface().(genRanking).PR
	for b.N() != a.N() {
		b = genRanking{}.Generate(r, size).Interface().(genRanking).PR
	}
	return reflect.ValueOf(genPair{a, b})
}

var quickCfg = &quick.Config{MaxCount: 300}

func TestQuickReverseInvolution(t *testing.T) {
	f := func(g genRanking) bool {
		return g.PR.Reverse().Reverse().Equal(g.PR)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSelfRefinementIsIdentity(t *testing.T) {
	f := func(g genRanking) bool {
		return g.PR.RefineBy(g.PR).Equal(g.PR)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRefineByProducesRefinement(t *testing.T) {
	f := func(p genPair) bool {
		ref := p.A.RefineBy(p.B)
		return ref.IsRefinementOf(p.A)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRefinementTransitive(t *testing.T) {
	f := func(p genPair, g genRanking) bool {
		// Build a chain c refines b refines a and check transitivity.
		a := p.A
		b := a.RefineBy(p.B)
		tie := g.PR
		if tie.N() != a.N() {
			return true // domain mismatch in generation; skip
		}
		c := b.RefineBy(tie)
		return c.IsRefinementOf(b) && b.IsRefinementOf(a) && c.IsRefinementOf(a)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickReverseDistributesOverBuckets(t *testing.T) {
	f := func(g genRanking) bool {
		rev := g.PR.Reverse()
		n := g.PR.N()
		for e := 0; e < n; e++ {
			if rev.Pos2(e) != int64(2*(n+1))-g.PR.Pos2(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(g genRanking) bool {
		data, err := json.Marshal(g.PR)
		if err != nil {
			return false
		}
		var back PartialRanking
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return back.Equal(g.PR)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickOrderCoversDomain(t *testing.T) {
	f := func(g genRanking) bool {
		seen := make([]bool, g.PR.N())
		for _, e := range g.PR.Order() {
			if e < 0 || e >= len(seen) || seen[e] {
				return false
			}
			seen[e] = true
		}
		return len(g.PR.Order()) == g.PR.N()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickFromScoresConsistent(t *testing.T) {
	f := func(raw []int8) bool {
		scores := make([]float64, len(raw))
		for i, v := range raw {
			scores[i] = float64(v % 5) // force ties
		}
		pr := FromScores(scores)
		return pr.ConsistentWith(scores) && pr.N() == len(scores)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
