package ranking

import (
	"errors"
	"testing"
)

func TestAccessors(t *testing.T) {
	pr := MustFromBuckets(5, [][]int{{0, 1}, {2}, {3, 4}})
	if pr.BucketOf(2) != 1 || pr.BucketOf(4) != 2 {
		t.Error("BucketOf wrong")
	}
	if pr.BucketSize(0) != 2 || pr.BucketSize(1) != 1 {
		t.Error("BucketSize wrong")
	}
	if pr.BucketPos2(0) != 3 || pr.BucketPos2(1) != 6 {
		t.Errorf("BucketPos2 = %d %d, want 3 6", pr.BucketPos2(0), pr.BucketPos2(1))
	}
	b := pr.Bucket(2)
	if len(b) != 2 || b[0] != 3 {
		t.Errorf("Bucket(2) = %v", b)
	}
}

func TestMustConstructorsPanic(t *testing.T) {
	cases := []func(){
		func() { MustFromBuckets(1, nil) },
		func() { MustFromOrder([]int{0, 0}) },
		func() { MustDomainOf("x", "x") },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

// failingWriter errors after a byte budget, exercising WriteLines' error
// propagation.
type failingWriter struct{ budget int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, errors.New("disk full")
	}
	n := len(p)
	if n > w.budget {
		n = w.budget
	}
	w.budget -= n
	if n < len(p) {
		return n, errors.New("disk full")
	}
	return n, nil
}

func TestWriteLinesPropagatesErrors(t *testing.T) {
	dom := MustDomainOf("aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb")
	rs := []*PartialRanking{MustFromOrder([]int{0, 1}), MustFromOrder([]int{1, 0})}
	for _, budget := range []int{0, 1, 10} {
		if err := WriteLines(&failingWriter{budget: budget}, dom, rs); err == nil {
			t.Errorf("budget %d: error not propagated", budget)
		}
	}
}

func TestRefineByDomainMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RefineBy domain mismatch did not panic")
		}
	}()
	MustFromOrder([]int{0, 1}).RefineBy(MustFromOrder([]int{0, 1, 2}))
}

func TestCloneIsDeep(t *testing.T) {
	pr := MustFromBuckets(3, [][]int{{0, 1}, {2}})
	cp := pr.Clone()
	// Mutating the clone's internals must not affect the original; since
	// the type is immutable this is observational: equality both ways.
	if !cp.Equal(pr) || !pr.Equal(cp) {
		t.Error("clone not equal")
	}
	if &cp.buckets[0][0] == &pr.buckets[0][0] {
		t.Error("clone shares bucket storage")
	}
}

func TestEmptyDomainEdge(t *testing.T) {
	empty := MustFromBuckets(0, nil)
	if empty.N() != 0 || empty.NumBuckets() != 0 || !empty.IsFull() {
		t.Errorf("empty ranking: n=%d buckets=%d", empty.N(), empty.NumBuckets())
	}
	if k, ok := empty.IsTopK(); !ok || k != 0 {
		t.Errorf("empty IsTopK = %d,%v", k, ok)
	}
	if empty.String() != "" {
		t.Errorf("empty String = %q", empty.String())
	}
	if !empty.Reverse().Equal(empty) {
		t.Error("empty reverse")
	}
	count := 0
	empty.ForEachFullRefinement(func([]int) bool { count++; return true })
	if count != 1 {
		t.Errorf("empty has %d refinements, want 1", count)
	}
}
