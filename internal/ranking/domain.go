package ranking

import "fmt"

// Domain interns human-readable element names onto the dense integer IDs the
// library uses internally. The database and CLI layers present rankings over
// named items (restaurants, flights, documents); everything below the codec
// works with IDs.
type Domain struct {
	names []string
	index map[string]int
}

// NewDomain creates an empty domain.
func NewDomain() *Domain {
	return &Domain{index: make(map[string]int)}
}

// DomainOf creates a domain holding exactly the given names, in order.
// Duplicate names are an error.
func DomainOf(names ...string) (*Domain, error) {
	d := NewDomain()
	for _, name := range names {
		if _, dup := d.index[name]; dup {
			return nil, fmt.Errorf("ranking: duplicate domain name %q", name)
		}
		d.index[name] = len(d.names)
		d.names = append(d.names, name)
	}
	return d, nil
}

// MustDomainOf is DomainOf that panics on duplicates.
func MustDomainOf(names ...string) *Domain {
	d, err := DomainOf(names...)
	if err != nil {
		panic(err)
	}
	return d
}

// Intern returns the ID for name, assigning the next free ID on first use.
func (d *Domain) Intern(name string) int {
	if id, ok := d.index[name]; ok {
		return id
	}
	id := len(d.names)
	d.index[name] = id
	d.names = append(d.names, name)
	return id
}

// truncate rolls the domain back to its first size names, forgetting every
// name interned after that point. The codec uses it to undo the interning of
// a line that failed validation, so a rejected parse leaves the shared
// domain exactly as it found it.
func (d *Domain) truncate(size int) {
	if size < 0 || size >= len(d.names) {
		return
	}
	for _, name := range d.names[size:] {
		delete(d.index, name)
	}
	d.names = d.names[:size]
}

// ID returns the ID for name and whether it is known.
func (d *Domain) ID(name string) (int, bool) {
	id, ok := d.index[name]
	return id, ok
}

// Name returns the name for an ID. It panics if the ID is out of range.
func (d *Domain) Name(id int) string { return d.names[id] }

// Size returns the number of interned names.
func (d *Domain) Size() int { return len(d.names) }

// Names returns a copy of all names in ID order.
func (d *Domain) Names() []string { return append([]string(nil), d.names...) }

// Render formats a partial ranking using the domain's names in the text
// codec format ("a b | c | d").
func (d *Domain) Render(pr *PartialRanking) string {
	if pr.N() > d.Size() {
		return pr.String()
	}
	out := make([]byte, 0, 4*pr.N())
	for bi := 0; bi < pr.NumBuckets(); bi++ {
		if bi > 0 {
			out = append(out, ' ', '|', ' ')
		}
		for ei, e := range pr.Bucket(bi) {
			if ei > 0 {
				out = append(out, ' ')
			}
			out = append(out, d.names[e]...)
		}
	}
	return string(out)
}
