package ranking

import (
	"math/rand"
	"testing"
)

func TestRefineBySemantics(t *testing.T) {
	// sigma: {a,b,c} | {d}; tau: c | {a,b} | d
	sigma := MustFromBuckets(4, [][]int{{0, 1, 2}, {3}})
	tau := MustFromBuckets(4, [][]int{{2}, {0, 1}, {3}})
	got := sigma.RefineBy(tau) // tau * sigma
	// Within sigma's first bucket, c precedes {a,b} per tau; a,b stay tied.
	want := MustFromBuckets(4, [][]int{{2}, {0, 1}, {3}})
	if !got.Equal(want) {
		t.Errorf("tau*sigma = %v, want %v", got, want)
	}
}

func TestRefineByWithFullTauIsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(15)
		sigma := randomPartial(rng, n)
		tau := MustFromOrder(rng.Perm(n))
		ref := sigma.RefineBy(tau)
		if !ref.IsFull() {
			t.Fatalf("tau*sigma not full for full tau: %v", ref)
		}
		if !ref.IsRefinementOf(sigma) {
			t.Fatalf("tau*sigma=%v is not a refinement of sigma=%v", ref, sigma)
		}
	}
}

func TestRefineByPreservesSigmaOrderAndAppliesTau(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(12)
		sigma := randomPartial(rng, n)
		tau := randomPartial(rng, n)
		ref := sigma.RefineBy(tau)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				switch {
				case sigma.Ahead(i, j) && !ref.Ahead(i, j):
					t.Fatalf("sigma order violated: i=%d j=%d sigma=%v ref=%v", i, j, sigma, ref)
				case sigma.Tied(i, j) && tau.Ahead(i, j) && !ref.Ahead(i, j):
					t.Fatalf("tau tie-break violated: i=%d j=%d sigma=%v tau=%v ref=%v", i, j, sigma, tau, ref)
				case sigma.Tied(i, j) && tau.Tied(i, j) && !ref.Tied(i, j):
					t.Fatalf("doubly tied pair split: i=%d j=%d sigma=%v tau=%v ref=%v", i, j, sigma, tau, ref)
				}
			}
		}
	}
}

// The * operation is associative (Section 2): rho*(tau*sigma) equals
// (rho*tau)*sigma.
func TestRefineByAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(10)
		sigma := randomPartial(rng, n)
		tau := randomPartial(rng, n)
		rho := randomPartial(rng, n)
		left := sigma.RefineBy(tau).RefineBy(rho)  // rho*(tau*sigma)
		right := sigma.RefineBy(tau.RefineBy(rho)) // (rho*tau)*sigma
		if !left.Equal(right) {
			t.Fatalf("associativity fails:\nsigma=%v\ntau=%v\nrho=%v\nleft=%v\nright=%v",
				sigma, tau, rho, left, right)
		}
	}
}

func TestReverse(t *testing.T) {
	pr := MustFromBuckets(5, [][]int{{0, 1}, {2}, {3, 4}})
	rev := pr.Reverse()
	want := MustFromBuckets(5, [][]int{{3, 4}, {2}, {0, 1}})
	if !rev.Equal(want) {
		t.Errorf("Reverse = %v, want %v", rev, want)
	}
	// sigma^R(d) = n + 1 - sigma(d)
	for e := 0; e < 5; e++ {
		if got, want := rev.Pos(e), 6-pr.Pos(e); got != want {
			t.Errorf("Reverse Pos(%d) = %v, want %v", e, got, want)
		}
	}
	// Involution.
	if !rev.Reverse().Equal(pr) {
		t.Error("Reverse is not an involution")
	}
}

func TestIsRefinementOf(t *testing.T) {
	tau := MustFromBuckets(5, [][]int{{0, 1, 2}, {3, 4}})
	yes := []*PartialRanking{
		MustFromBuckets(5, [][]int{{0}, {1, 2}, {3, 4}}),
		MustFromBuckets(5, [][]int{{2}, {1}, {0}, {4}, {3}}),
		tau,
	}
	no := []*PartialRanking{
		MustFromBuckets(5, [][]int{{0, 1, 2, 3, 4}}),     // coarser
		MustFromBuckets(5, [][]int{{3}, {0, 1, 2}, {4}}), // order violated
		MustFromBuckets(5, [][]int{{0, 1}, {2, 3}, {4}}), // straddles tau buckets
	}
	for _, s := range yes {
		if !s.IsRefinementOf(tau) {
			t.Errorf("%v should refine %v", s, tau)
		}
	}
	for _, s := range no {
		if s.IsRefinementOf(tau) {
			t.Errorf("%v should not refine %v", s, tau)
		}
	}
	// Different domains never refine each other.
	if MustFromOrder([]int{0, 1}).IsRefinementOf(MustFromOrder([]int{0, 1, 2})) {
		t.Error("cross-domain refinement accepted")
	}
}

func TestRefinementPartialOrderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(10)
		a := randomPartial(rng, n)
		b := randomPartial(rng, n)
		if !a.IsRefinementOf(a) {
			t.Fatalf("refinement not reflexive: %v", a)
		}
		if a.IsRefinementOf(b) && b.IsRefinementOf(a) && !a.Equal(b) {
			t.Fatalf("refinement not antisymmetric: %v vs %v", a, b)
		}
	}
}

func TestForEachFullRefinementCount(t *testing.T) {
	pr := MustFromBuckets(5, [][]int{{0, 1, 2}, {3, 4}})
	wantCount, ok := pr.NumFullRefinements()
	if !ok || wantCount != 12 { // 3! * 2!
		t.Fatalf("NumFullRefinements = (%d,%v), want (12,true)", wantCount, ok)
	}
	seen := map[string]bool{}
	count := 0
	pr.ForEachFullRefinement(func(order []int) bool {
		count++
		full := MustFromOrder(order)
		if !full.IsRefinementOf(pr) {
			t.Fatalf("enumerated order %v is not a refinement of %v", order, pr)
		}
		seen[full.String()] = true
		return true
	})
	if count != 12 || len(seen) != 12 {
		t.Errorf("enumerated %d refinements (%d distinct), want 12", count, len(seen))
	}
}

func TestForEachFullRefinementEarlyStop(t *testing.T) {
	pr := MustFromBuckets(4, [][]int{{0, 1, 2, 3}})
	count := 0
	pr.ForEachFullRefinement(func([]int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d, want 5", count)
	}
}

func TestNumFullRefinementsOverflow(t *testing.T) {
	big := make([]int, 30)
	for i := range big {
		big[i] = i
	}
	pr := MustFromBuckets(30, [][]int{big})
	if _, ok := pr.NumFullRefinements(); ok {
		t.Error("30! reported as fitting in int64")
	}
}

func TestConsistentWith(t *testing.T) {
	f := []float64{1, 2, 2, 3}
	good := []*PartialRanking{
		MustFromBuckets(4, [][]int{{0}, {1, 2}, {3}}),
		MustFromBuckets(4, [][]int{{0}, {1}, {2}, {3}}),
		MustFromBuckets(4, [][]int{{0, 1, 2, 3}}), // constant ranking is consistent with anything
		MustFromBuckets(4, [][]int{{0, 1}, {2, 3}}),
	}
	bad := []*PartialRanking{
		MustFromBuckets(4, [][]int{{3}, {0, 1, 2}}),
		MustFromBuckets(4, [][]int{{1}, {0}, {2}, {3}}),
	}
	for _, pr := range good {
		if !pr.ConsistentWith(f) {
			t.Errorf("%v should be consistent with %v", pr, f)
		}
	}
	for _, pr := range bad {
		if pr.ConsistentWith(f) {
			t.Errorf("%v should not be consistent with %v", pr, f)
		}
	}
	if good[0].ConsistentWith([]float64{1}) {
		t.Error("length mismatch accepted")
	}
}

func TestConsistentOfType(t *testing.T) {
	f := []float64{5, 1, 3, 3, 2}
	pr, err := ConsistentOfType(f, []int{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !pr.ConsistentWith(f) {
		t.Errorf("ConsistentOfType result %v not consistent with %v", pr, f)
	}
	typ := pr.Type()
	if len(typ) != 3 || typ[0] != 2 || typ[1] != 2 || typ[2] != 1 {
		t.Errorf("Type = %v, want [2 2 1]", typ)
	}
	// ascending f: 1(1), 4(2), 2(3), 3(3), 0(5); buckets {1,4},{2,3},{0}
	want := MustFromBuckets(5, [][]int{{1, 4}, {2, 3}, {0}})
	if !pr.Equal(want) {
		t.Errorf("ConsistentOfType = %v, want %v", pr, want)
	}

	if _, err := ConsistentOfType(f, []int{2, 2}); err == nil {
		t.Error("type not summing to n accepted")
	}
	if _, err := ConsistentOfType(f, []int{5, 0}); err == nil {
		t.Error("zero bucket size accepted")
	}
}

func TestForEachPartialRankingEarlyStopAndFubini(t *testing.T) {
	count := 0
	ForEachPartialRanking(4, func(pr *PartialRanking) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop visited %d, want 10", count)
	}
	// Fubini numbers including larger known values.
	known := map[int]int64{0: 1, 1: 1, 5: 541, 6: 4683, 7: 47293, 10: 102247563}
	for n, want := range known {
		if got, ok := Fubini(n); !ok || got != want {
			t.Errorf("Fubini(%d) = (%d,%v), want %d", n, got, ok, want)
		}
	}
	if _, ok := Fubini(30); ok {
		t.Error("Fubini(30) should overflow int64")
	}
}

func TestRelabel(t *testing.T) {
	pr := MustFromBuckets(4, [][]int{{0, 1}, {2}, {3}})
	perm := []int{3, 2, 1, 0}
	got, err := pr.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromBuckets(4, [][]int{{2, 3}, {1}, {0}})
	if !got.Equal(want) {
		t.Errorf("Relabel = %v, want %v", got, want)
	}
	for e := 0; e < 4; e++ {
		if got.Pos(perm[e]) != pr.Pos(e) {
			t.Errorf("position of %d moved: %v vs %v", e, got.Pos(perm[e]), pr.Pos(e))
		}
	}
	if _, err := pr.Relabel([]int{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := pr.Relabel([]int{0, 0, 1, 2}); err == nil {
		t.Error("non-permutation accepted")
	}
}
