// Package ranking implements bucket orders and partial rankings, the core
// data model of Fagin, Kumar, Mahdian, Sivakumar, and Vee, "Comparing and
// Aggregating Rankings with Ties" (PODS 2004), Section 2.
//
// A bucket order is a linear order with ties: a partition of the domain into
// ordered buckets B1, ..., Bt. The partial ranking associated with a bucket
// order assigns every element x the position of its bucket,
//
//	pos(Bi) = sum_{j<i} |Bj| + (|Bi|+1)/2,
//
// the average location within the bucket. A full ranking is the special case
// where every bucket is a singleton, and a top-k list is the special case of
// k singleton buckets followed by one bucket holding the rest of the domain.
//
// Elements are dense integers 0..n-1; Domain interns human-readable names.
// Positions are always integral multiples of 1/2, so the package stores
// doubled positions exactly as int64 and exposes float64 at the API surface.
// PartialRanking values are immutable after construction.
package ranking

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// PartialRanking is an immutable bucket order over the domain {0, ..., n-1}.
//
// The zero value is not useful; construct values with FromBuckets, FromOrder,
// FromScores, TopKList, or the refinement operators.
type PartialRanking struct {
	n        int
	buckets  [][]int // elements of each bucket, ascending within a bucket
	bucketOf []int   // element -> index of its bucket
	pos2     []int64 // bucket index -> doubled position 2*pos(Bi)

	// fp memoizes the 128-bit content hash of Fingerprint. Lazily published
	// through an atomic pointer so the ranking stays immutable to observers;
	// nil until the first Fingerprint call.
	fp atomic.Pointer[Fingerprint]
}

// FromBuckets builds a partial ranking over {0..n-1} from an ordered list of
// buckets. The buckets must form a partition of the domain: every element
// exactly once, no empty buckets. The input slices are copied.
func FromBuckets(n int, buckets [][]int) (*PartialRanking, error) {
	if n < 0 {
		return nil, fmt.Errorf("ranking: negative domain size %d", n)
	}
	seen := make([]bool, n)
	total := 0
	for bi, b := range buckets {
		if len(b) == 0 {
			return nil, fmt.Errorf("ranking: bucket %d is empty", bi)
		}
		for _, e := range b {
			if e < 0 || e >= n {
				return nil, fmt.Errorf("ranking: element %d out of domain [0,%d)", e, n)
			}
			if seen[e] {
				return nil, fmt.Errorf("ranking: element %d appears twice", e)
			}
			seen[e] = true
			total++
		}
	}
	if total != n {
		return nil, fmt.Errorf("ranking: buckets cover %d of %d elements", total, n)
	}
	pr := &PartialRanking{
		n:        n,
		buckets:  make([][]int, len(buckets)),
		bucketOf: make([]int, n),
		pos2:     make([]int64, len(buckets)),
	}
	var before int64
	for bi, b := range buckets {
		cp := make([]int, len(b))
		copy(cp, b)
		sort.Ints(cp)
		pr.buckets[bi] = cp
		for _, e := range cp {
			pr.bucketOf[e] = bi
		}
		pr.pos2[bi] = 2*before + int64(len(b)) + 1
		before += int64(len(b))
	}
	return pr, nil
}

// MustFromBuckets is FromBuckets that panics on invalid input. It is intended
// for literals in tests and examples.
func MustFromBuckets(n int, buckets [][]int) *PartialRanking {
	pr, err := FromBuckets(n, buckets)
	if err != nil {
		panic(err)
	}
	return pr
}

// FromOrder builds a full ranking from a permutation listed best-first:
// order[0] is the top element, order[len-1] the bottom. Every bucket is a
// singleton.
func FromOrder(order []int) (*PartialRanking, error) {
	buckets := make([][]int, len(order))
	for i, e := range order {
		buckets[i] = []int{e}
	}
	return FromBuckets(len(order), buckets)
}

// MustFromOrder is FromOrder that panics on invalid input.
func MustFromOrder(order []int) *PartialRanking {
	pr, err := FromOrder(order)
	if err != nil {
		panic(err)
	}
	return pr
}

// FromScores builds the partial ranking induced by a score function: elements
// are ordered by ascending score, and elements with exactly equal scores are
// tied in one bucket. This is the "f-bar" construction of Section 6 of the
// paper (a function f: D -> R naturally defines a partial ranking).
func FromScores(scores []float64) *PartialRanking {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	var buckets [][]int
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		b := make([]int, j-i)
		copy(b, idx[i:j])
		buckets = append(buckets, b)
		i = j
	}
	pr, err := FromBuckets(n, buckets)
	if err != nil {
		// Unreachable: the construction above always yields a partition.
		panic(err)
	}
	return pr
}

// TopKList builds a top-k list over {0..n-1}: the first k entries of order
// become singleton buckets, and the remaining n-k domain elements form one
// bottom bucket. order must list at least k distinct elements; elements of
// the domain not among the first k land in the bottom bucket.
func TopKList(n, k int, order []int) (*PartialRanking, error) {
	if k < 0 || k > n {
		return nil, fmt.Errorf("ranking: k=%d out of range [0,%d]", k, n)
	}
	if len(order) < k {
		return nil, fmt.Errorf("ranking: order has %d elements, need at least k=%d", len(order), k)
	}
	inTop := make([]bool, n)
	buckets := make([][]int, 0, k+1)
	for i := 0; i < k; i++ {
		e := order[i]
		if e < 0 || e >= n {
			return nil, fmt.Errorf("ranking: element %d out of domain [0,%d)", e, n)
		}
		if inTop[e] {
			return nil, fmt.Errorf("ranking: element %d appears twice in top-k", e)
		}
		inTop[e] = true
		buckets = append(buckets, []int{e})
	}
	if k < n {
		bottom := make([]int, 0, n-k)
		for e := 0; e < n; e++ {
			if !inTop[e] {
				bottom = append(bottom, e)
			}
		}
		buckets = append(buckets, bottom)
	}
	return FromBuckets(n, buckets)
}

// N returns the domain size.
func (pr *PartialRanking) N() int { return pr.n }

// NumBuckets returns the number of buckets t.
func (pr *PartialRanking) NumBuckets() int { return len(pr.buckets) }

// Bucket returns the elements of bucket i in ascending element order. The
// returned slice is shared with the ranking and must not be modified.
func (pr *PartialRanking) Bucket(i int) []int { return pr.buckets[i] }

// BucketOf returns the index of the bucket containing element e.
func (pr *PartialRanking) BucketOf(e int) int { return pr.bucketOf[e] }

// BucketSize returns |Bi|.
func (pr *PartialRanking) BucketSize(i int) int { return len(pr.buckets[i]) }

// Pos returns sigma(e) = pos(B) for the bucket B of e, as defined in
// Section 2 of the paper. The value is always an integral multiple of 1/2.
func (pr *PartialRanking) Pos(e int) float64 { return float64(pr.pos2[pr.bucketOf[e]]) / 2 }

// Pos2 returns the doubled position 2*sigma(e) as an exact integer.
func (pr *PartialRanking) Pos2(e int) int64 { return pr.pos2[pr.bucketOf[e]] }

// BucketPos2 returns the doubled position of bucket i.
func (pr *PartialRanking) BucketPos2(i int) int64 { return pr.pos2[i] }

// BucketIndices returns the element -> bucket-index vector: entry e is
// BucketOf(e). The returned slice is shared with the ranking and must not be
// modified; it exists so the metric kernels can walk rankings without copies
// or per-element method calls.
func (pr *PartialRanking) BucketIndices() []int { return pr.bucketOf }

// BucketPositions2 returns the doubled position of every bucket: entry i is
// BucketPos2(i). The returned slice is shared with the ranking and must not
// be modified. Together with BucketIndices it gives copy-free access to the
// position vector: Pos2(e) = BucketPositions2()[BucketIndices()[e]].
func (pr *PartialRanking) BucketPositions2() []int64 { return pr.pos2 }

// AppendPositions2 appends the doubled position vector to dst and returns
// the extended slice, allocating only when dst lacks capacity. It is the
// reuse-friendly form of Positions2.
func (pr *PartialRanking) AppendPositions2(dst []int64) []int64 {
	for e := 0; e < pr.n; e++ {
		dst = append(dst, pr.pos2[pr.bucketOf[e]])
	}
	return dst
}

// Positions returns the full position vector sigma(0..n-1), the F-profile of
// Section 3.1. The slice is freshly allocated.
func (pr *PartialRanking) Positions() []float64 {
	out := make([]float64, pr.n)
	for e := 0; e < pr.n; e++ {
		out[e] = pr.Pos(e)
	}
	return out
}

// Positions2 returns the doubled position vector as exact integers.
func (pr *PartialRanking) Positions2() []int64 {
	out := make([]int64, pr.n)
	for e := 0; e < pr.n; e++ {
		out[e] = pr.pos2[pr.bucketOf[e]]
	}
	return out
}

// Tied reports whether elements a and b occupy the same bucket.
func (pr *PartialRanking) Tied(a, b int) bool { return pr.bucketOf[a] == pr.bucketOf[b] }

// Ahead reports whether a is ahead of b, i.e. sigma(a) < sigma(b).
func (pr *PartialRanking) Ahead(a, b int) bool { return pr.bucketOf[a] < pr.bucketOf[b] }

// IsFull reports whether every bucket is a singleton, i.e. the ranking is a
// permutation of the domain.
func (pr *PartialRanking) IsFull() bool { return len(pr.buckets) == pr.n }

// IsTopK reports whether the ranking is a top-k list (k singleton buckets
// followed by one bucket with everything else) and returns that k. A full
// ranking is a top-n list (and also a top-(n-1) list; the largest k is
// returned). The empty ranking is a top-0 list.
func (pr *PartialRanking) IsTopK() (k int, ok bool) {
	t := len(pr.buckets)
	for i := 0; i < t; i++ {
		if len(pr.buckets[i]) != 1 {
			if i == t-1 {
				return i, true
			}
			return 0, false
		}
	}
	return pr.n, true
}

// Type returns type(sigma) = |B1|, |B2|, ..., |Bt| (Appendix A.1).
func (pr *PartialRanking) Type() []int {
	out := make([]int, len(pr.buckets))
	for i, b := range pr.buckets {
		out[i] = len(b)
	}
	return out
}

// Order returns the elements best-first, with ties broken by ascending
// element ID. For a full ranking this is the inverse permutation of the
// position vector.
func (pr *PartialRanking) Order() []int {
	out := make([]int, 0, pr.n)
	for _, b := range pr.buckets {
		out = append(out, b...)
	}
	return out
}

// Equal reports whether two partial rankings are identical as bucket orders
// (same domain, same buckets in the same order).
func (pr *PartialRanking) Equal(other *PartialRanking) bool {
	if pr.n != other.n || len(pr.buckets) != len(other.buckets) {
		return false
	}
	for e := 0; e < pr.n; e++ {
		if pr.bucketOf[e] != other.bucketOf[e] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy. Because PartialRanking is immutable this is
// rarely needed; it exists for callers that want defensive ownership.
func (pr *PartialRanking) Clone() *PartialRanking {
	cp := &PartialRanking{
		n:        pr.n,
		buckets:  make([][]int, len(pr.buckets)),
		bucketOf: append([]int(nil), pr.bucketOf...),
		pos2:     append([]int64(nil), pr.pos2...),
	}
	for i, b := range pr.buckets {
		cp.buckets[i] = append([]int(nil), b...)
	}
	return cp
}

// String renders the ranking in the text codec format: buckets best-first
// separated by " | ", elements within a bucket separated by spaces, using
// numeric element IDs.
func (pr *PartialRanking) String() string {
	var sb strings.Builder
	for bi, b := range pr.buckets {
		if bi > 0 {
			sb.WriteString(" | ")
		}
		for ei, e := range b {
			if ei > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", e)
		}
	}
	return sb.String()
}

// ErrDomainMismatch is returned by operations that require two rankings over
// the same domain.
var ErrDomainMismatch = errors.New("ranking: rankings have different domain sizes")

// CheckSameDomain returns ErrDomainMismatch unless all rankings share one
// domain size.
func CheckSameDomain(rs ...*PartialRanking) error {
	for i := 1; i < len(rs); i++ {
		if rs[i].n != rs[0].n {
			return ErrDomainMismatch
		}
	}
	return nil
}
