package ranking

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/guard"
	"repro/internal/telemetry"
)

// corrupt is a corpus with one defect of every recoverable kind: an empty
// bucket, a duplicate element, a name outside the fixed domain, and a line
// covering a strict subset of the domain.
const corrupt = `a b | c | d
a | | d
a a b c d
a | zebra | c d b
c d | a
# comment
d c b a
`

func TestParseLinesWithStrictMatchesParseLines(t *testing.T) {
	clean := "a b | c\nc | a b\nb | c | a\n"
	rs1, dom1, err := ParseLines(strings.NewReader(clean))
	if err != nil {
		t.Fatal(err)
	}
	rs2, dom2, report, err := ParseLinesWith(strings.NewReader(clean), ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Err() != nil {
		t.Errorf("clean corpus produced defects: %v", report)
	}
	if len(rs1) != len(rs2) || dom1.Size() != dom2.Size() {
		t.Fatalf("strict paths disagree: %d/%d rankings, %d/%d names",
			len(rs1), len(rs2), dom1.Size(), dom2.Size())
	}
	for i := range rs1 {
		if !rs1[i].Equal(rs2[i]) {
			t.Errorf("ranking %d differs", i)
		}
	}
}

func TestParseLinesStrictReportsPhysicalLine(t *testing.T) {
	// The defect is on physical line 4 (line 2 is blank, line 3 a comment).
	input := "a b | c\n\n# fine\na | | c\n"
	_, _, err := ParseLines(strings.NewReader(input))
	if err == nil {
		t.Fatal("defective corpus accepted")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error does not name physical line 4: %v", err)
	}
	if strings.Count(err.Error(), "\n") != 0 {
		t.Errorf("parse error spans lines: %q", err.Error())
	}
}

func TestParseLinesWithLenientDropPolicy(t *testing.T) {
	rs, dom, report, err := ParseLinesWith(strings.NewReader(corrupt), ParseOptions{Lenient: true, Repair: guard.DropLine})
	if err != nil {
		t.Fatal(err)
	}
	// Lines 2, 3, 4, 5 are defective; 1 and 7 survive.
	if len(rs) != 2 {
		t.Fatalf("kept %d rankings, want 2:\n%v", len(rs), rs)
	}
	if dom.Size() != 4 {
		t.Errorf("domain size %d, want 4 (defective lines must not pollute it)", dom.Size())
	}
	wantLines := []int{2, 3, 4, 5}
	if len(report.Defects) != len(wantLines) {
		t.Fatalf("got %d defects, want %d: %v", len(report.Defects), len(wantLines), report)
	}
	for i, d := range report.Defects {
		if d.Line != wantLines[i] {
			t.Errorf("defect %d at line %d, want %d (%s)", i, d.Line, wantLines[i], d.Msg)
		}
		if d.Repaired {
			t.Errorf("drop policy marked a defect repaired: %+v", d)
		}
	}
}

func TestParseLinesWithCompleteBottomRepair(t *testing.T) {
	rs, dom, report, err := ParseLinesWith(strings.NewReader(corrupt), ParseOptions{Lenient: true, Repair: guard.CompleteBottom})
	if err != nil {
		t.Fatal(err)
	}
	// Line 5 ("c d | a") is now repaired rather than dropped: b lands in a
	// trailing bottom bucket.
	if len(rs) != 3 {
		t.Fatalf("kept %d rankings, want 3", len(rs))
	}
	repairedCount := 0
	for _, d := range report.Defects {
		if d.Repaired {
			repairedCount++
			if d.Line != 5 {
				t.Errorf("repaired defect at line %d, want 5", d.Line)
			}
		}
	}
	if repairedCount != 1 {
		t.Fatalf("repaired %d lines, want 1: %v", repairedCount, report)
	}
	repaired := rs[1]
	bID, _ := dom.ID("b")
	if repaired.BucketOf(bID) != repaired.NumBuckets()-1 {
		t.Errorf("missing element not in the bottom bucket: %v", dom.Render(repaired))
	}
	if repaired.N() != 4 {
		t.Errorf("repaired ranking over %d elements, want 4", repaired.N())
	}
}

// The acceptance-criterion round trip: a repaired ensemble re-parses
// strictly with zero defects and identical content.
func TestLenientRepairRoundTripsStrict(t *testing.T) {
	for _, policy := range []guard.RepairPolicy{guard.DropLine, guard.CompleteBottom} {
		rs, dom, report, err := ParseLinesWith(strings.NewReader(corrupt), ParseOptions{Lenient: true, Repair: policy})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if report.Len() == 0 {
			t.Fatalf("%v: corrupted corpus produced no defects", policy)
		}
		var buf bytes.Buffer
		if err := WriteLines(&buf, dom, rs); err != nil {
			t.Fatal(err)
		}
		back, dom2, report2, err := ParseLinesWith(bytes.NewReader(buf.Bytes()), ParseOptions{})
		if err != nil {
			t.Fatalf("%v: repaired ensemble failed strict re-parse: %v", policy, err)
		}
		if report2.Len() != 0 {
			t.Errorf("%v: re-parse found %d defects", policy, report2.Len())
		}
		if len(back) != len(rs) || dom2.Size() != dom.Size() {
			t.Fatalf("%v: round trip changed shape", policy)
		}
		for i := range rs {
			if !back[i].Equal(rs[i]) {
				t.Errorf("%v: ranking %d changed in round trip", policy, i)
			}
		}
	}
}

// Lenient parsing is deterministic: same bytes, same result, every time.
func TestLenientParseDeterministic(t *testing.T) {
	parse := func() ([]*PartialRanking, *guard.ErrorList) {
		rs, _, report, err := ParseLinesWith(strings.NewReader(corrupt), ParseOptions{Lenient: true, Repair: guard.CompleteBottom})
		if err != nil {
			t.Fatal(err)
		}
		return rs, report
	}
	rs1, rep1 := parse()
	for trial := 0; trial < 5; trial++ {
		rs2, rep2 := parse()
		if len(rs1) != len(rs2) || rep1.Len() != rep2.Len() {
			t.Fatal("lenient parse not deterministic in shape")
		}
		for i := range rs1 {
			if !rs1[i].Equal(rs2[i]) {
				t.Fatalf("trial %d: ranking %d differs", trial, i)
			}
		}
		for i := range rep1.Defects {
			if rep1.Defects[i] != rep2.Defects[i] {
				t.Fatalf("trial %d: defect %d differs", trial, i)
			}
		}
	}
}

func TestParseTextLeavesDomainCleanOnFailure(t *testing.T) {
	dom := MustDomainOf("a", "b")
	// Duplicate element: interns nothing new, fails, domain untouched.
	if _, err := ParseText(dom, "a a | b"); err == nil {
		t.Fatal("duplicate accepted")
	}
	if dom.Size() != 2 {
		t.Errorf("domain grew to %d after failed parse", dom.Size())
	}
	// New names on a failing line must be rolled back.
	if _, err := ParseText(dom, "a | zebra | | b"); err == nil {
		t.Fatal("empty bucket accepted")
	}
	if _, ok := dom.ID("zebra"); ok {
		t.Error("failed parse interned a new name")
	}
	// A line that interns new names but then under-covers the domain.
	if _, err := ParseText(dom, "zebra yak"); err == nil {
		t.Fatal("partial cover accepted")
	}
	if dom.Size() != 2 {
		t.Errorf("domain polluted: size %d, names %v", dom.Size(), dom.Names())
	}
	// And a successful parse still interns permanently.
	if _, err := ParseText(dom, "b | a | c"); err != nil {
		t.Fatal(err)
	}
	if dom.Size() != 3 {
		t.Errorf("successful parse did not intern: %v", dom.Names())
	}
}

func TestParseLinesTooLongLineHasLocation(t *testing.T) {
	long := strings.Repeat("x", 1<<12)
	input := "a b\n" + long + "\nb a\n"
	_, _, _, err := ParseLinesWith(strings.NewReader(input), ParseOptions{Limits: guard.Limits{MaxLineBytes: 1 << 10}})
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("too-long error lacks line number: %v", err)
	}
	// Lenient mode recovers and keeps the surrounding lines.
	rs, _, report, err := ParseLinesWith(strings.NewReader(input), ParseOptions{
		Limits:  guard.Limits{MaxLineBytes: 1 << 10},
		Lenient: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Errorf("kept %d rankings around the oversized line, want 2", len(rs))
	}
	if len(report.Defects) != 1 || report.Defects[0].Line != 2 {
		t.Errorf("defect report = %v, want one defect at line 2", report)
	}
}

// A truncated final line (no newline before EOF) still parses.
func TestParseLinesNoTrailingNewline(t *testing.T) {
	rs, _, err := ParseLines(strings.NewReader("a b\r\nb a"))
	if err != nil || len(rs) != 2 {
		t.Fatalf("got %d rankings, err %v", len(rs), err)
	}
}

// Mid-stream reader failures surface with the line they occurred on.
func TestParseLinesReaderErrorHasLocation(t *testing.T) {
	boom := errors.New("disk fell over")
	r := io.MultiReader(strings.NewReader("a b\nb a\nju"), &failingReader{err: boom})
	_, _, err := ParseLines(r)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped reader error", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("reader error lacks line location: %v", err)
	}
}

type failingReader struct{ err error }

func (f *failingReader) Read([]byte) (int, error) { return 0, f.err }

func TestParseLinesWithAdmissionLimits(t *testing.T) {
	input := "a b c\nb a c\nc a b\n"
	// Ranking cap.
	rs, _, report, err := ParseLinesWith(strings.NewReader(input), ParseOptions{
		Limits:  guard.Limits{MaxRankings: 2},
		Lenient: true,
	})
	if err != nil || len(rs) != 2 {
		t.Fatalf("rankings cap: kept %d, err %v", len(rs), err)
	}
	if report.Len() != 1 {
		t.Errorf("rankings cap: %v", report)
	}
	if _, _, _, err := ParseLinesWith(strings.NewReader(input), ParseOptions{
		Limits: guard.Limits{MaxRankings: 2},
	}); err == nil {
		t.Error("strict mode accepted over-cap ensemble")
	}
	// Element cap.
	if _, _, _, err := ParseLinesWith(strings.NewReader(input), ParseOptions{
		Limits: guard.Limits{MaxElements: 2},
	}); err == nil {
		t.Error("strict mode accepted over-cap domain")
	}
	rs, _, report, err = ParseLinesWith(strings.NewReader(input), ParseOptions{
		Limits:  guard.Limits{MaxElements: 2},
		Lenient: true,
	})
	if err != nil || len(rs) != 0 || report.Len() != 3 {
		t.Errorf("element cap lenient: %d rankings, report %v, err %v", len(rs), report, err)
	}
	// Bucket cap.
	if _, _, _, err := ParseLinesWith(strings.NewReader("a | b | c\n"), ParseOptions{
		Limits: guard.Limits{MaxBuckets: 2},
	}); err == nil {
		t.Error("strict mode accepted over-cap bucket count")
	}
}

// The defect cap must bound the report even when every line is bad.
func TestLenientDefectReportCapped(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("a b\n")
	for i := 0; i < 50; i++ {
		sb.WriteString("a | | b\n")
	}
	_, _, report, err := ParseLinesWith(strings.NewReader(sb.String()), ParseOptions{
		Limits:  guard.Limits{MaxDefects: 5},
		Lenient: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Defects) != 5 || report.Dropped != 45 {
		t.Errorf("report: %d retained, %d dropped; want 5, 45", len(report.Defects), report.Dropped)
	}
}

// An all-defective corpus yields an empty ensemble, not an error, in lenient
// mode — degraded, but deterministic and usable.
func TestLenientAllLinesBad(t *testing.T) {
	rs, dom, report, err := ParseLinesWith(strings.NewReader("| |\na a\n"), ParseOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 || dom.Size() != 0 {
		t.Errorf("kept %d rankings over %d names from garbage", len(rs), dom.Size())
	}
	if report.Len() != 2 {
		t.Errorf("report %v, want 2 defects", report)
	}
}

// When the first line is defective, the next clean line fixes the domain.
func TestLenientFirstLineDefective(t *testing.T) {
	rs, dom, _, err := ParseLinesWith(strings.NewReader("a a\nx y | z\nz | x y\n"), ParseOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || dom.Size() != 3 {
		t.Fatalf("kept %d over %d names, want 2 over 3", len(rs), dom.Size())
	}
	if _, ok := dom.ID("a"); ok {
		t.Error("dropped first line polluted the domain")
	}
}

func TestDefectColumnsPointAtOffendingBytes(t *testing.T) {
	_, _, report, err := ParseLinesWith(strings.NewReader("a b | c\na b c a\n"), ParseOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Defects) != 1 {
		t.Fatalf("report %v", report)
	}
	d := report.Defects[0]
	// The duplicate "a" starts at column 7 of "a b c a".
	if d.Line != 2 || d.Col != 7 {
		t.Errorf("defect at line %d col %d, want line 2 col 7 (%s)", d.Line, d.Col, d.Msg)
	}
}

func TestLineReaderColdPath(t *testing.T) {
	// Lines longer than the bufio buffer but under the cap reassemble.
	long := strings.Repeat("ab ", 40*1024) // ~120 KiB > 64 KiB buffer
	lr := newLineReader(strings.NewReader(long+"\nshort\n"), 1<<20)
	line, n, tooLong, err := lr.next()
	if err != nil || tooLong || n != 1 {
		t.Fatalf("long line: err %v tooLong %v line %d", err, tooLong, n)
	}
	if line != long {
		t.Fatalf("long line mangled: got %d bytes, want %d", len(line), len(long))
	}
	line, n, _, err = lr.next()
	if err != nil || line != "short" || n != 2 {
		t.Fatalf("after long line: %q %d %v", line, n, err)
	}
	if _, _, _, err := lr.next(); err != io.EOF {
		t.Fatalf("EOF not reported: %v", err)
	}
}

func TestLineReaderDiscardSpansBuffers(t *testing.T) {
	// An over-cap line spanning many buffer fills must be fully discarded.
	input := strings.Repeat("z", 300*1024) + "\na b\n"
	lr := newLineReader(strings.NewReader(input), 1024)
	_, n, tooLong, err := lr.next()
	if err != nil || !tooLong || n != 1 {
		t.Fatalf("oversized: err %v tooLong %v", err, tooLong)
	}
	line, n, tooLong, err := lr.next()
	if err != nil || tooLong || line != "a b" || n != 2 {
		t.Fatalf("resume after discard: %q line %d err %v", line, n, err)
	}
}

func TestGuardCountersAdvanceOnRepair(t *testing.T) {
	droppedBefore := countOf(t, "ranking.parse.lines_dropped")
	repairedBefore := countOf(t, "ranking.parse.lines_repaired")
	_, _, _, err := ParseLinesWith(strings.NewReader(corrupt), ParseOptions{Lenient: true, Repair: guard.CompleteBottom})
	if err != nil {
		t.Fatal(err)
	}
	if got := countOf(t, "ranking.parse.lines_dropped") - droppedBefore; got != 3 {
		t.Errorf("lines_dropped advanced by %d, want 3", got)
	}
	if got := countOf(t, "ranking.parse.lines_repaired") - repairedBefore; got != 1 {
		t.Errorf("lines_repaired advanced by %d, want 1", got)
	}
}

func countOf(t *testing.T, name string) int64 {
	t.Helper()
	return telemetry.GetCounter(name).Value()
}

func ExampleParseLinesWith() {
	input := "sushi | thai bbq | deli\nbad | | line\ndeli | sushi\n"
	rs, dom, report, _ := ParseLinesWith(strings.NewReader(input), ParseOptions{
		Lenient: true,
		Repair:  guard.CompleteBottom,
	})
	for _, pr := range rs {
		fmt.Println(dom.Render(pr))
	}
	for _, d := range report.Defects {
		fmt.Println("defect:", d)
	}
	// Output:
	// sushi | thai bbq | deli
	// deli | sushi | thai bbq
	// defect: line 2, col 6: empty bucket
	// defect: line 3: covers 2 of 4 domain elements; completed 2 missing into a bottom bucket
}
