package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// doReqH is doReq with request headers.
func doReqH(t *testing.T, method, url, body string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestForcedSamplingYieldsSpanTree is the tentpole acceptance check: a topk
// request with sampling forced must yield a retrievable span tree whose root
// carries the response header's trace ID, with an admission span, an engine
// span carrying AccessAccountant totals, and a cache span among the root's
// children.
func TestForcedSamplingYieldsSpanTree(t *testing.T) {
	telemetry.ResetRecentTraces()
	defer telemetry.ResetRecentTraces()
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", corpus, "")

	resp, body := doReqH(t, http.MethodPost,
		ts.URL+"/v1/tenants/acme/catalogs/movies/topk",
		`{"k": 2}`, map[string]string{TraceSampleHeader: "1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk = %d: %s", resp.StatusCode, body)
	}
	traceID := resp.Header.Get(TraceIDHeader)
	if len(traceID) != 16 {
		t.Fatalf("response %s header = %q, want 16 hex digits", TraceIDHeader, traceID)
	}
	if resp.Header.Get(TraceSampledNote) != "1" {
		t.Errorf("forced sampling did not set %s", TraceSampledNote)
	}

	// Retrieve the span tree over the debug surface, as an operator would.
	tresp, tbody := doReqH(t, http.MethodGet, ts.URL+"/debug/traces?trace_id="+traceID, "", nil)
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces = %d: %s", tresp.StatusCode, tbody)
	}
	tr := decode[telemetry.Trace](t, tbody)
	if tr.TraceID != traceID || tr.Tenant != "acme" || tr.Endpoint != "topk" || tr.Status != 200 {
		t.Fatalf("trace meta = %+v", tr)
	}
	root, ok := tr.Root()
	if !ok || root.Name != "http.topk" {
		t.Fatalf("root = %+v, ok=%v", root, ok)
	}
	kids := map[string]telemetry.SpanRecord{}
	for _, k := range tr.Children(root.SpanID) {
		kids[k.Name] = k
	}
	if _, ok := kids["admission"]; !ok {
		t.Errorf("no admission span among root children: %v", kids)
	}
	eng, ok := kids["engine.medrank"]
	if !ok {
		t.Fatalf("no engine span among root children: %v", kids)
	}
	if eng.Attrs["sequential"] <= 0 {
		t.Errorf("engine span lacks AccessAccountant totals: %v", eng.Attrs)
	}
	if _, ok := kids["cache"]; !ok {
		t.Errorf("no cache span among root children: %v", kids)
	}
	// The kernel's own span nests under the engine span.
	if inner := tr.Children(eng.SpanID); len(inner) == 0 || inner[0].Name != "topk.medrank" {
		t.Errorf("engine children = %+v, want topk.medrank", inner)
	}
}

func TestTraceIDPropagationAndUnsampledPath(t *testing.T) {
	telemetry.ResetRecentTraces()
	defer telemetry.ResetRecentTraces()
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", corpus, "")

	// A caller-minted trace ID is echoed back.
	const id = "00c0ffee00c0ffee"
	resp, _ := doReqH(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/topk",
		`{"k": 1}`, map[string]string{TraceIDHeader: id})
	if got := resp.Header.Get(TraceIDHeader); got != id {
		t.Errorf("echoed trace ID = %q, want %q", got, id)
	}
	// Rate 0, no force header: not sampled, no span tree retained.
	if resp.Header.Get(TraceSampledNote) != "" {
		t.Error("unsampled request marked sampled")
	}
	tresp, _ := doReqH(t, http.MethodGet, ts.URL+"/debug/traces?trace_id="+id, "", nil)
	if tresp.StatusCode != http.StatusNotFound {
		t.Errorf("unsampled trace retrievable: %d", tresp.StatusCode)
	}
}

func TestMetricsExpositionLintsCleanWithTenantSeries(t *testing.T) {
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", corpus, "")
	putCatalog(t, ts, "globex", "films", corpus, "")
	for i := 0; i < 3; i++ {
		doReqH(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/topk", `{"k": 2}`, nil)
	}
	doReqH(t, http.MethodPost, ts.URL+"/v1/tenants/globex/catalogs/films/aggregate", `{}`, nil)
	doReqH(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/topk", `{"k": 0}`, nil) // 400

	resp, body := doReqH(t, http.MethodGet, ts.URL+"/metrics", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if probs := telemetry.LintExposition(bytes.NewReader(body)); len(probs) != 0 {
		t.Fatalf("exposition lint: %v", probs)
	}
	out := string(body)
	for _, want := range []string{
		`rankserve_requests_total{tenant="acme",endpoint="topk",status="200"} 3`,
		`rankserve_requests_total{tenant="acme",endpoint="topk",status="400"} 1`,
		`rankserve_request_latency_ns_count{tenant="acme",endpoint="topk"} 4`,
		`rankserve_request_latency_ns_bucket{tenant="globex",endpoint="aggregate",le=`,
		`rankserve_access_sequential_total{tenant="acme"}`,
		`rankserve_cache_misses_total{tenant="globex"}`,
		`rankserve_tenants 2`,
		`# TYPE rankserve_request_latency_ns histogram`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in /metrics", want)
		}
	}
	// Cross-check: scrape-side request count equals /stats' endpoint tally.
	exp, _ := telemetry.ParseExposition(bytes.NewReader(body))
	_, _, count, ok := exp.Histogram("rankserve_request_latency_ns", map[string]string{"tenant": "acme", "endpoint": "topk"})
	if !ok || count != 4 {
		t.Errorf("scraped acme/topk latency count = %v (ok=%v), want 4", count, ok)
	}
}

func TestAccessLogStructuredLines(t *testing.T) {
	var buf bytes.Buffer
	svc := New(Config{AccessLog: &buf})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	putCatalog(t, ts, "acme", "movies", corpus, "")

	resp, _ := doReqH(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/topk",
		`{"k": 2}`, map[string]string{TraceSampleHeader: "1"})
	traceID := resp.Header.Get(TraceIDHeader)
	doReqH(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/aggregate", `{}`, nil)

	var topkLine, aggLine *accessLogLine
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line accessLogLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad access-log line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Endpoint == "topk":
			l := line
			topkLine = &l
		case line.Endpoint == "aggregate":
			l := line
			aggLine = &l
		}
	}
	if topkLine == nil || aggLine == nil {
		t.Fatalf("missing log lines: topk=%v agg=%v in %q", topkLine, aggLine, buf.String())
	}
	if topkLine.TraceID != traceID || !topkLine.Sampled || topkLine.Tenant != "acme" ||
		topkLine.Status != 200 || topkLine.Sequential <= 0 || topkLine.LatencyNs <= 0 {
		t.Errorf("topk line = %+v", *topkLine)
	}
	if aggLine.CacheMisses <= 0 {
		t.Errorf("aggregate line did not attribute cache traffic: %+v", *aggLine)
	}
}

// TestStatsKeepsDeletedTenantForOneSnapshot is the satellite fix: a deleted
// tenant's cache attribution must survive exactly one /stats cycle, marked
// deleted, so churn-heavy load runs don't under-report.
func TestStatsKeepsDeletedTenantForOneSnapshot(t *testing.T) {
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "doomed", "movies", corpus, "")
	// Two aggregates: first misses fill the cache, second hits it.
	doReqH(t, http.MethodPost, ts.URL+"/v1/tenants/doomed/catalogs/movies/aggregate", `{}`, nil)
	doReqH(t, http.MethodPost, ts.URL+"/v1/tenants/doomed/catalogs/movies/aggregate", `{}`, nil)
	resp, _ := doReqH(t, http.MethodDelete, ts.URL+"/v1/tenants/doomed", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete tenant = %d", resp.StatusCode)
	}

	_, body := doReqH(t, http.MethodGet, ts.URL+"/stats", "", nil)
	stats := decode[StatsResponse](t, body)
	var row *TenantStats
	for i := range stats.Tenants {
		if stats.Tenants[i].Name == "doomed" {
			row = &stats.Tenants[i]
		}
	}
	if row == nil {
		t.Fatalf("deleted tenant missing from first post-delete snapshot: %+v", stats.Tenants)
	}
	if !row.Deleted {
		t.Errorf("row not marked deleted: %+v", *row)
	}
	if row.CacheHits <= 0 || row.CacheMisses <= 0 {
		t.Errorf("deleted row lost attribution: %+v", *row)
	}
	// Percentiles self-reported for served endpoints.
	if ep := stats.Endpoints["aggregate"]; ep.Requests < 2 || ep.P50Ns <= 0 || ep.P99Ns < ep.P50Ns {
		t.Errorf("aggregate endpoint stats = %+v", ep)
	}

	// Second snapshot: the departed row is gone.
	_, body = doReqH(t, http.MethodGet, ts.URL+"/stats", "", nil)
	stats = decode[StatsResponse](t, body)
	for _, ten := range stats.Tenants {
		if ten.Name == "doomed" {
			t.Errorf("deleted tenant still present in second snapshot: %+v", ten)
		}
	}
}

func TestRequestMetricsSurviveTenantChurn(t *testing.T) {
	svc, ts := testServer(t, Config{})
	putCatalog(t, ts, "churn", "movies", corpus, "")
	doReqH(t, http.MethodPost, ts.URL+"/v1/tenants/churn/catalogs/movies/aggregate", `{}`, nil)
	doReqH(t, http.MethodDelete, ts.URL+"/v1/tenants/churn", "", nil)
	// The labeled counters are cumulative: deletion must not reset them.
	hits := svc.LabeledRegistry().CounterVec("rankserve_cache_misses_total",
		"Shared distance-cache misses attributed to requests, by tenant.", "tenant").
		With("churn").Value()
	if hits <= 0 {
		t.Errorf("labeled cache-miss counter lost on tenant churn: %d", hits)
	}
	if fmt.Sprint(svc.mTenants.Value()) != "0" {
		t.Errorf("tenants gauge = %d after churn, want 0", svc.mTenants.Value())
	}
}
