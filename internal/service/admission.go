package service

import (
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Overload admission: the layer between "the request parsed" and "an engine
// runs". Under light load it is a pass-through; at saturation it turns
// overload into designed-for behavior instead of collapse:
//
//   - A per-tenant token bucket bounds each tenant's sustained query rate, so
//     one tenant's burst cannot starve the others (disabled by default).
//   - A global concurrency limiter caps engines actually running at
//     Config.Workers; excess requests wait in a bounded LIFO stack. LIFO is
//     deliberate: under overload the newest waiter is the one whose client
//     deadline is furthest from expiry, so serving it first maximizes the
//     fraction of answers that still matter. The oldest waiters are exactly
//     the ones that will shed on deadline anyway.
//   - Deadline-aware shedding: a request whose expected queue wait exceeds
//     its remaining budget is rejected immediately with 429 + Retry-After —
//     a fast honest "no" instead of a slow guaranteed timeout. The estimate
//     is the admitted-work EWMA of engine service time scaled by queue
//     position.
//   - Draining: once BeginDrain is called (SIGINT), queued-but-unstarted
//     requests fail fast with 503 so the listener's graceful shutdown never
//     waits on work that hasn't started, while in-flight engines finish.
//
// Shed decisions carry a machine-readable reason, which feeds the
// rankserve_shed_total{tenant,reason} family, the access log, and the
// admission span.

// Shed reasons (the `reason` label of rankserve_shed_total).
const (
	ShedRateLimit = "rate_limit" // tenant token bucket empty
	ShedQueueFull = "queue_full" // global wait queue at capacity
	ShedDeadline  = "deadline"   // expected wait exceeds remaining budget
	ShedDraining  = "draining"   // server shutting down
)

// shedError is an admission rejection: an HTTP status, a reason label, and a
// client hint for when capacity is expected back.
type shedError struct {
	status     int
	reason     string
	retryAfter time.Duration
	msg        string
}

func (e *shedError) Error() string { return e.msg }

// tokenBucket is one tenant's rate limiter: capacity `burst`, refilled at
// `rate` tokens/second. Guarded by the admitter's mutex.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// waiter is one queued request. Grant closes ch with granted set; drain
// closes ch with drained set; a context abort leaves both false and the
// waiter unlinks itself.
type waiter struct {
	ch      chan struct{}
	granted bool
	drained bool
}

// admitter owns the admission state. All fields are guarded by mu except the
// service-time EWMA, which is its own atomic.
type admitter struct {
	workers    int
	queueDepth int
	rate       float64 // per-tenant tokens/second; <= 0 disables rate limiting
	burst      float64

	mu       sync.Mutex
	free     int
	waiters  []*waiter // LIFO: grants pop from the tail
	draining bool
	buckets  map[string]*tokenBucket

	// serviceNs tracks admitted engine service time (EWMA, nanoseconds); it
	// is the basis of every expected-wait estimate. Zero until the first
	// completed request, during which estimates are skipped — the bootstrap
	// never sheds on a guess.
	serviceNs *telemetry.EWMA

	queueGauge *telemetry.Gauge // rankserve_queue_depth, kept in sync with len(waiters)
}

func newAdmitter(cfg Config, queueGauge *telemetry.Gauge) *admitter {
	burst := cfg.RateBurst
	if burst <= 0 {
		burst = int(math.Ceil(cfg.RatePerSec)) * 2
		if burst < 1 {
			burst = 1
		}
	}
	return &admitter{
		workers:    cfg.Workers,
		queueDepth: cfg.QueueDepth,
		rate:       cfg.RatePerSec,
		burst:      float64(burst),
		free:       cfg.Workers,
		buckets:    make(map[string]*tokenBucket),
		serviceNs:  telemetry.NewEWMA(0.2),
		queueGauge: queueGauge,
	}
}

// observeService folds one completed engine run into the service-time EWMA.
func (a *admitter) observeService(d time.Duration) {
	if d > 0 {
		a.serviceNs.Observe(float64(d.Nanoseconds()))
	}
}

// estimateNs returns the current engine service-time estimate, or 0 when no
// request has completed yet.
func (a *admitter) estimateNs() float64 { return a.serviceNs.Value() }

// expectedWait estimates how long the pos-th waiter (1-based) will sit in
// the queue: the requests ahead of it drain through `workers` parallel slots
// at one EWMA service time each, plus its own service time once scheduled.
func (a *admitter) expectedWait(pos int) time.Duration {
	est := a.estimateNs()
	if est <= 0 {
		return 0
	}
	rounds := float64(pos+a.workers-1) / float64(a.workers)
	return time.Duration((rounds + 1) * est)
}

// takeToken charges one request against the tenant's bucket. Returns the
// wait until the next token when the bucket is empty.
// Caller holds a.mu.
func (a *admitter) takeToken(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	if a.rate <= 0 {
		return true, 0
	}
	b := a.buckets[tenant]
	if b == nil {
		b = &tokenBucket{tokens: a.burst, last: now}
		a.buckets[tenant] = b
	}
	b.tokens = math.Min(a.burst, b.tokens+a.rate*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / a.rate * float64(time.Second))
}

// forgetTenant drops a deleted tenant's bucket so the map stays bounded by
// live tenants (MaxTenants).
func (a *admitter) forgetTenant(tenant string) {
	a.mu.Lock()
	delete(a.buckets, tenant)
	a.mu.Unlock()
}

// admissionState is the admit-time outcome surfaced to spans and /stats.
type admissionState struct {
	queued   bool
	queuePos int // 1-based position at enqueue time; 0 when admitted directly
}

// acquire admits one request for tenant `tenant` under ctx: it charges the
// tenant's token bucket, then either takes a free engine slot, joins the
// bounded LIFO wait queue, or sheds. A nil shedError return means admitted;
// release must then be called exactly once.
func (a *admitter) acquire(ctx contextDeadliner, tenant string) (release func(), state admissionState, shed *shedError) {
	now := time.Now()
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, state, &shedError{
			status: http.StatusServiceUnavailable,
			reason: ShedDraining,
			msg:    "server is draining",
		}
	}
	if ok, wait := a.takeToken(tenant, now); !ok {
		a.mu.Unlock()
		return nil, state, &shedError{
			status:     http.StatusTooManyRequests,
			reason:     ShedRateLimit,
			retryAfter: wait,
			msg:        fmt.Sprintf("tenant %q over its %.3g req/s rate", tenant, a.rate),
		}
	}
	if a.free > 0 {
		a.free--
		a.mu.Unlock()
		return a.release, state, nil
	}
	// No slot free: queue, shed on depth, or shed on hopeless deadline.
	if len(a.waiters) >= a.queueDepth {
		wait := a.expectedWait(len(a.waiters))
		a.mu.Unlock()
		return nil, state, &shedError{
			status:     http.StatusTooManyRequests,
			reason:     ShedQueueFull,
			retryAfter: wait,
			msg:        fmt.Sprintf("wait queue full (%d deep)", a.queueDepth),
		}
	}
	pos := len(a.waiters) + 1
	if dl, ok := ctx.Deadline(); ok {
		if expect := a.expectedWait(pos); expect > 0 && expect > time.Until(dl) {
			a.mu.Unlock()
			return nil, state, &shedError{
				status:     http.StatusTooManyRequests,
				reason:     ShedDeadline,
				retryAfter: expect,
				msg: fmt.Sprintf("expected wait %s exceeds remaining deadline budget %s",
					expect.Round(time.Millisecond), time.Until(dl).Round(time.Millisecond)),
			}
		}
	}
	w := &waiter{ch: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.queueGauge.Set(int64(len(a.waiters)))
	a.mu.Unlock()

	state.queued, state.queuePos = true, pos
	select {
	case <-w.ch:
		if w.drained {
			return nil, state, &shedError{
				status: http.StatusServiceUnavailable,
				reason: ShedDraining,
				msg:    "server is draining; queued request aborted",
			}
		}
		// granted
		return a.release, state, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: the slot is ours, hand it back.
			a.mu.Unlock()
			a.release()
		} else {
			a.unlink(w)
			a.mu.Unlock()
		}
		return nil, state, &shedError{
			status: http.StatusServiceUnavailable,
			reason: ShedDeadline,
			msg:    fmt.Sprintf("abandoned in queue: %v", ctx.Err()),
		}
	}
}

// unlink removes an abandoned waiter from the queue. Caller holds a.mu.
func (a *admitter) unlink(dead *waiter) {
	for i, w := range a.waiters {
		if w == dead {
			a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
			break
		}
	}
	a.queueGauge.Set(int64(len(a.waiters)))
}

// release frees one engine slot, handing it to the newest waiter if any.
func (a *admitter) release() {
	a.mu.Lock()
	if n := len(a.waiters); n > 0 && !a.draining {
		w := a.waiters[n-1] // LIFO
		a.waiters = a.waiters[:n-1]
		a.queueGauge.Set(int64(len(a.waiters)))
		w.granted = true
		close(w.ch)
		a.mu.Unlock()
		return
	}
	a.free++
	a.mu.Unlock()
}

// beginDrain flips the admitter into drain mode: every queued waiter is woken
// with a fast failure, and every future acquire sheds immediately. In-flight
// requests are unaffected; their releases stop granting and just restore
// free slots.
func (a *admitter) beginDrain() {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return
	}
	a.draining = true
	for _, w := range a.waiters {
		w.drained = true
		close(w.ch)
	}
	a.waiters = nil
	a.queueGauge.Set(0)
	a.mu.Unlock()
}

// queueLen reports the current wait-queue depth (tests and /stats).
func (a *admitter) queueLen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.waiters)
}

// inflight reports how many engine slots are taken (tests and /stats).
func (a *admitter) inflight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.workers - a.free
}

// contextDeadliner is the slice of context.Context acquire needs; taking the
// interface keeps the admitter testable with synthetic deadlines.
type contextDeadliner interface {
	Deadline() (time.Time, bool)
	Done() <-chan struct{}
	Err() error
}
