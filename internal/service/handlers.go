package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"time"

	"repro/internal/aggregate"
	"repro/internal/cache"
	"repro/internal/faults"
	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/ranking"
	"repro/internal/robust"
	"repro/internal/service/debugserve"
	"repro/internal/telemetry"
	"repro/internal/topk"
)

// ErrorResponse is the JSON body of every non-2xx answer: a summary line
// plus the structured defects behind it, mirroring the guard layer's
// ErrorList shape so CLI and HTTP clients parse rejections the same way.
type ErrorResponse struct {
	Error   string         `json:"error"`
	Defects []guard.Defect `json:"defects,omitempty"`
	Dropped int            `json:"dropped,omitempty"`
	// RetryAfterS mirrors the Retry-After response header on shed requests:
	// the client's hint for when capacity is expected back, in seconds.
	RetryAfterS int `json:"retry_after_s,omitempty"`
}

// apiError carries a status code and structured defects up from helpers to
// the handler rim, where it is rendered as an ErrorResponse.
type apiError struct {
	status  int
	msg     string
	defects []guard.Defect
	dropped int
	// retryAfter, when positive, adds a Retry-After header (and the
	// RetryAfterS body field) to the rendered error — set on shed requests.
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.msg }

// fail builds an apiError with one optional defect message.
func fail(status int, format string, args ...any) *apiError {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

// IngestResponse reports one catalog submit/append: how much was stored and
// what lenient parsing had to repair or drop.
type IngestResponse struct {
	Tenant   string         `json:"tenant"`
	Catalog  string         `json:"catalog"`
	Rankings int            `json:"rankings"`
	Elements int            `json:"elements"`
	Mode     string         `json:"mode"`
	Appended int            `json:"appended,omitempty"`
	Defects  []guard.Defect `json:"defects,omitempty"`
	Dropped  int            `json:"dropped,omitempty"`
}

// CatalogInfo describes one stored catalog.
type CatalogInfo struct {
	Tenant   string   `json:"tenant"`
	Catalog  string   `json:"catalog"`
	Rankings int      `json:"rankings"`
	Elements int      `json:"elements"`
	Names    []string `json:"names,omitempty"`
}

// ChaosPlan is the optional fault-injection clause of a resilient top-k
// request: it wraps every list source in a deterministic injector, so
// degraded-mode behavior is reachable (and replayable) over HTTP exactly as
// it is in the chaos experiments.
type ChaosPlan struct {
	Seed          int64   `json:"seed"`
	TransientRate float64 `json:"transient_rate,omitempty"`
	DeathRate     float64 `json:"death_rate,omitempty"`
	DeathAfter    int     `json:"death_after,omitempty"`
	// LatencyMs adds a fixed per-access latency to every list source,
	// making query duration deterministic and controllable — the knob the
	// overload and drain tests use to hold engine slots busy.
	LatencyMs int64 `json:"latency_ms,omitempty"`
}

// TopKRequest asks for the top k elements of a catalog.
type TopKRequest struct {
	K int `json:"k"`
	// Algo selects the engine: "medrank" (default), "ta", "nra" (no random
	// access: interval certification from sorted access only), or "ca" (the
	// combined algorithm: NRA accumulation with a random-access resolution
	// every ~CostRatio sorted rounds).
	Algo string `json:"algo,omitempty"`
	// CostRatio is the FLN cR/cS weight used to schedule CA's random accesses
	// and to price the response's middleware cost. 0 means the engine default
	// (10 for ta/ca, 0 — the NRA regime — for medrank/nra); negative is an
	// error.
	CostRatio int `json:"cost_ratio,omitempty"`
	// Resilient runs the degraded-mode engine over fallible sources with
	// bounded retries; with Chaos set, faults are injected deterministically.
	Resilient bool       `json:"resilient,omitempty"`
	Chaos     *ChaosPlan `json:"chaos,omitempty"`
	// Trim drops this many least-reliable lists (by reliability weight under
	// the default kprof metric) before the query runs. Composes with the
	// resilient path: degraded annotations and quality intervals then reflect
	// the post-trim voter set, with lost-list indices reported in the
	// original catalog's index space.
	Trim int `json:"trim,omitempty"`
	// Theta, when set, explicitly requests the θ-approximate engine
	// (ThresholdTopKApprox) with this slack, deadline or not: the response
	// carries the FLN (1+θ) certificate. Theta 0 is the exact engine with a
	// certificate attached. Incompatible with resilient mode.
	Theta *float64 `json:"theta,omitempty"`
}

// TrimSummary annotates a reliability-trimmed query: which lists were
// dropped, how many survived, and every original list's reliability weight.
type TrimSummary struct {
	// Dropped holds the trimmed lists' original catalog indices, ascending.
	Dropped []int `json:"dropped"`
	// Survivors is the number of lists the query actually ran over.
	Survivors int `json:"survivors"`
	// Weights holds every ORIGINAL list's reliability weight (normalized to
	// sum to 1), dropped lists included.
	Weights []float64 `json:"weights"`
}

// AccessSummary is the wire form of a query's access accounting. CostRatio is
// the effective cR/cS weight the query ran under and MiddlewareCost the FLN
// cost cs·sequential + cr·random at (cs=1, cr=CostRatio).
type AccessSummary struct {
	Sequential     int `json:"sequential"`
	Random         int `json:"random"`
	BucketIOs      int `json:"bucket_ios"`
	MaxDepth       int `json:"max_depth"`
	CostRatio      int `json:"cost_ratio"`
	MiddlewareCost int `json:"middleware_cost"`
}

// TopKResponse is the answer to a TopKRequest.
type TopKResponse struct {
	Winners   []string       `json:"winners"`
	Medians   []float64      `json:"medians"`
	TopK      string         `json:"topk"`
	Access    AccessSummary  `json:"access"`
	Degraded  *topk.Degraded `json:"degraded,omitempty"`
	Trim      *TrimSummary   `json:"trim,omitempty"`
	// Ladder annotates answers served under overload-ladder control (a
	// deadline was in force or θ was requested): which rung answered, the
	// approximation certificate, and — for stale answers — the age.
	Ladder    *LadderInfo `json:"ladder,omitempty"`
	ElapsedNs int64       `json:"elapsed_ns"`
}

// RobustClause is the optional hostile-voter-robust clause of an aggregation
// request: score every input list's reliability, drop the trim least-reliable,
// and aggregate the survivors under the selected robust objective.
type RobustClause struct {
	// Mode selects the robust engine: trimmed-borda, weighted-median, or
	// minmax.
	Mode string `json:"mode"`
	// Trim drops this many least-reliable lists before aggregating.
	Trim int `json:"trim,omitempty"`
}

// AggregateRequest asks for a full aggregation of a catalog.
type AggregateRequest struct {
	// Metric names the pairwise distance: kprof (default), fprof, khaus,
	// fhaus.
	Metric string `json:"metric,omitempty"`
	// Kemenize applies local Kemenization to the median aggregate
	// (default true unless explicitly false).
	Kemenize *bool `json:"kemenize,omitempty"`
	// Robust additionally runs a hostile-voter-robust aggregation and
	// annotates the response with per-list reliability weights and the
	// trimmed list indices.
	Robust *RobustClause `json:"robust,omitempty"`
}

// RobustResult is the robust clause's answer: the robust consensus with its
// reliability forensics.
type RobustResult struct {
	Mode    string `json:"mode"`
	Trim    int    `json:"trim"`
	Ranking string `json:"ranking"`
	// SumDistance and MaxDistance are the robust aggregate's summed and worst
	// per-list distance over the SURVIVING lists.
	SumDistance float64 `json:"sum_distance"`
	MaxDistance float64 `json:"max_distance"`
	// Weights holds every original list's reliability weight (normalized to
	// sum to 1), trimmed lists included.
	Weights []float64 `json:"weights"`
	// Trimmed holds the dropped lists' original indices, ascending.
	Trimmed []int `json:"trimmed,omitempty"`
	// Survivors is the number of lists the robust aggregate covers.
	Survivors int `json:"survivors"`
}

// RankedCandidate is one candidate consensus ranking with its summed
// distance to the inputs under the requested metric.
type RankedCandidate struct {
	Ranking     string  `json:"ranking"`
	SumDistance float64 `json:"sum_distance"`
}

// AggregateResponse is the answer to an AggregateRequest: the median
// aggregate, the best single input, and (optionally) the locally Kemenized
// refinement of the median aggregate.
type AggregateResponse struct {
	Metric    string             `json:"metric"`
	Medians   map[string]float64 `json:"medians"`
	Median    RankedCandidate    `json:"median"`
	BestInput int                `json:"best_input"`
	Best      RankedCandidate    `json:"best"`
	Kemenized *RankedCandidate   `json:"kemenized,omitempty"`
	Robust    *RobustResult      `json:"robust,omitempty"`
	ElapsedNs int64              `json:"elapsed_ns"`
}

// TenantStats is one tenant's row in the /stats snapshot. A deleted tenant's
// cache attribution survives for one snapshot cycle with Deleted set, so
// tenant-churning load tests don't under-report cache traffic.
type TenantStats struct {
	Name         string  `json:"name"`
	Catalogs     int     `json:"catalogs"`
	Rankings     int     `json:"rankings"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Deleted      bool    `json:"deleted,omitempty"`
}

// CacheStats is the shared cache's totals plus derived hit rate.
type CacheStats struct {
	cache.Stats
	HitRate float64 `json:"hit_rate"`
}

// EndpointStats is one endpoint's always-on request/error tally plus the
// latency percentiles self-reported from the endpoint's base-2 histogram
// (upper-bound quantiles; zero when telemetry is disabled, since latency
// observations are gated).
type EndpointStats struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	P50Ns    int64 `json:"p50_ns,omitempty"`
	P95Ns    int64 `json:"p95_ns,omitempty"`
	P99Ns    int64 `json:"p99_ns,omitempty"`
}

// OverloadStats is the /stats view of the admission pipeline: always-on shed
// tallies by reason, ladder degradations by level, and the live queue state.
type OverloadStats struct {
	ShedRateLimit int64 `json:"shed_rate_limit"`
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedDeadline  int64 `json:"shed_deadline"`
	ShedDraining  int64 `json:"shed_draining"`
	ApproxAnswers int64 `json:"approx_answers"`
	StaleAnswers  int64 `json:"stale_answers"`
	QueueDepth    int   `json:"queue_depth"`
	Inflight      int   `json:"inflight"`
	// EngineEwmaNs is the admission layer's engine service-time estimate.
	EngineEwmaNs int64 `json:"engine_ewma_ns"`
}

// StatsResponse is the /stats snapshot.
type StatsResponse struct {
	UptimeNs        int64                    `json:"uptime_ns"`
	Tenants         []TenantStats            `json:"tenants"`
	Cache           CacheStats               `json:"cache"`
	Endpoints       map[string]EndpointStats `json:"endpoints"`
	DegradedQueries int64                    `json:"degraded_queries"`
	Overload        OverloadStats            `json:"overload"`
	Telemetry       telemetry.Snapshot       `json:"telemetry"`
	Server          telemetry.Snapshot       `json:"server"`
}

// Handler returns the service's HTTP API mux, with the diagnostics surface
// (expvar, pprof) mounted under /debug/ via debugserve.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("PUT /v1/tenants/{tenant}/catalogs/{catalog}", s.instrument("put_catalog", s.handlePutCatalog))
	mux.HandleFunc("POST /v1/tenants/{tenant}/catalogs/{catalog}/rankings", s.instrument("append_rankings", s.handleAppendRankings))
	mux.HandleFunc("GET /v1/tenants/{tenant}/catalogs/{catalog}", s.instrument("get_catalog", s.handleGetCatalog))
	mux.HandleFunc("DELETE /v1/tenants/{tenant}/catalogs/{catalog}", s.instrument("delete_catalog", s.handleDeleteCatalog))
	mux.HandleFunc("GET /v1/tenants/{tenant}/catalogs", s.instrument("list_catalogs", s.handleListCatalogs))
	mux.HandleFunc("DELETE /v1/tenants/{tenant}", s.instrument("delete_tenant", s.handleDeleteTenant))
	mux.HandleFunc("POST /v1/tenants/{tenant}/catalogs/{catalog}/topk", s.instrument("topk", s.handleTopK))
	mux.HandleFunc("POST /v1/tenants/{tenant}/catalogs/{catalog}/aggregate", s.instrument("aggregate", s.handleAggregate))
	// The metrics scrape is deliberately uninstrumented: scrapers poll it on
	// their own cadence and must not perturb the request series they read.
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	debugserve.Register(mux)
	return mux
}

// apiHandler is a handler that returns its result (or structured failure)
// instead of writing it, so the rim can render, count, and time uniformly.
type apiHandler func(w http.ResponseWriter, r *http.Request) (any, *apiError)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// parseModeOptions reads the ?mode= and ?repair= ingestion query params.
func (s *Service) parseModeOptions(r *http.Request) (ranking.ParseOptions, string, *apiError) {
	opts := ranking.ParseOptions{Limits: s.cfg.Limits}
	mode := r.URL.Query().Get("mode")
	switch mode {
	case "", "strict":
		mode = "strict"
	case "lenient":
		opts.Lenient = true
	default:
		return opts, "", fail(http.StatusBadRequest, "unknown mode %q (want strict or lenient)", mode)
	}
	if rep := r.URL.Query().Get("repair"); rep != "" {
		pol, err := guard.ParseRepairPolicy(rep)
		if err != nil {
			return opts, "", fail(http.StatusBadRequest, "%v", err)
		}
		opts.Repair = pol
	}
	return opts, mode, nil
}

// readBodyErr converts a body-read failure into the right admission error:
// the body cap maps to 413 with a structured defect.
func readBodyErr(err error) *apiError {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		e := fail(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
		e.defects = []guard.Defect{{Msg: e.msg}}
		return e
	}
	return fail(http.StatusBadRequest, "reading request body: %v", err)
}

// ingest parses a request body of ranking lines under the tenant's admission
// limits and parse mode.
func (s *Service) ingest(r *http.Request) ([]*ranking.PartialRanking, *ranking.Domain, *guard.ErrorList, string, *apiError) {
	opts, mode, apiErr := s.parseModeOptions(r)
	if apiErr != nil {
		return nil, nil, nil, "", apiErr
	}
	rankings, dom, report, err := ranking.ParseLinesWith(r.Body, opts)
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return nil, nil, nil, "", readBodyErr(err)
		}
		e := fail(http.StatusBadRequest, "%v", err)
		return nil, nil, nil, "", e
	}
	return rankings, dom, report, mode, nil
}

func (s *Service) handleHealthz(_ http.ResponseWriter, _ *http.Request) (any, *apiError) {
	return map[string]string{"status": "ok"}, nil
}

// handlePutCatalog registers or replaces a catalog from a text-codec body of
// ranking lines.
func (s *Service) handlePutCatalog(_ http.ResponseWriter, r *http.Request) (any, *apiError) {
	tenantName, catalogName := r.PathValue("tenant"), r.PathValue("catalog")
	rankings, dom, report, mode, apiErr := s.ingest(r)
	if apiErr != nil {
		return nil, apiErr
	}
	if len(rankings) == 0 {
		e := fail(http.StatusBadRequest, "no valid ranking lists in request body")
		if report != nil {
			e.defects, e.dropped = report.Defects, report.Dropped
		}
		return nil, e
	}
	t, ok := s.tenantFor(tenantName, true)
	if !ok {
		e := fail(http.StatusTooManyRequests, "tenant limit %d reached", s.cfg.MaxTenants)
		e.defects = []guard.Defect{{Msg: e.msg}}
		return nil, e
	}
	if !t.putCatalog(catalogName, &catalog{dom: dom, rankings: rankings}, s.cfg.MaxCatalogsPerTenant) {
		e := fail(http.StatusTooManyRequests, "catalog limit %d reached for tenant %q", s.cfg.MaxCatalogsPerTenant, tenantName)
		e.defects = []guard.Defect{{Msg: e.msg}}
		return nil, e
	}
	s.stale.invalidate(tenantName, catalogName)
	resp := IngestResponse{
		Tenant:   tenantName,
		Catalog:  catalogName,
		Rankings: len(rankings),
		Elements: dom.Size(),
		Mode:     mode,
	}
	if report != nil {
		resp.Defects, resp.Dropped = report.Defects, report.Dropped
	}
	return resp, nil
}

// handleAppendRankings submits additional ranking lists to an existing
// catalog; the new lists must cover the catalog's domain (by element name).
func (s *Service) handleAppendRankings(_ http.ResponseWriter, r *http.Request) (any, *apiError) {
	tenantName, catalogName := r.PathValue("tenant"), r.PathValue("catalog")
	t, ok := s.tenantFor(tenantName, false)
	if !ok {
		return nil, fail(http.StatusNotFound, "unknown tenant %q", tenantName)
	}
	old, ok := t.getCatalog(catalogName)
	if !ok {
		return nil, fail(http.StatusNotFound, "unknown catalog %q", catalogName)
	}
	newRankings, newDom, report, mode, apiErr := s.ingest(r)
	if apiErr != nil {
		return nil, apiErr
	}
	if len(newRankings) == 0 {
		e := fail(http.StatusBadRequest, "no valid ranking lists in request body")
		if report != nil {
			e.defects, e.dropped = report.Defects, report.Dropped
		}
		return nil, e
	}
	remapped, err := remapToDomain(old.dom, newDom, newRankings)
	if err != nil {
		return nil, fail(http.StatusConflict, "%v", err)
	}
	if !s.cfg.Limits.RankingsOK(len(old.rankings) + len(remapped)) {
		e := fail(http.StatusRequestEntityTooLarge, "catalog would exceed ranking limit %d", s.cfg.Limits.MaxRankings)
		e.defects = []guard.Defect{{Msg: e.msg}}
		return nil, e
	}
	merged := make([]*ranking.PartialRanking, 0, len(old.rankings)+len(remapped))
	merged = append(merged, old.rankings...)
	merged = append(merged, remapped...)
	// Re-fetch under the write path: a concurrent replace wins over a stale
	// append base, but the swap itself is atomic either way.
	if !t.putCatalog(catalogName, &catalog{dom: old.dom, rankings: merged}, s.cfg.MaxCatalogsPerTenant) {
		return nil, fail(http.StatusTooManyRequests, "catalog limit reached")
	}
	s.stale.invalidate(tenantName, catalogName)
	resp := IngestResponse{
		Tenant:   tenantName,
		Catalog:  catalogName,
		Rankings: len(merged),
		Elements: old.dom.Size(),
		Mode:     mode,
		Appended: len(remapped),
	}
	if report != nil {
		resp.Defects, resp.Dropped = report.Defects, report.Dropped
	}
	return resp, nil
}

func (s *Service) handleGetCatalog(_ http.ResponseWriter, r *http.Request) (any, *apiError) {
	t, ok := s.tenantFor(r.PathValue("tenant"), false)
	if !ok {
		return nil, fail(http.StatusNotFound, "unknown tenant %q", r.PathValue("tenant"))
	}
	c, ok := t.getCatalog(r.PathValue("catalog"))
	if !ok {
		return nil, fail(http.StatusNotFound, "unknown catalog %q", r.PathValue("catalog"))
	}
	return CatalogInfo{
		Tenant:   t.name,
		Catalog:  r.PathValue("catalog"),
		Rankings: len(c.rankings),
		Elements: c.dom.Size(),
		Names:    c.dom.Names(),
	}, nil
}

func (s *Service) handleDeleteCatalog(_ http.ResponseWriter, r *http.Request) (any, *apiError) {
	t, ok := s.tenantFor(r.PathValue("tenant"), false)
	if !ok {
		return nil, fail(http.StatusNotFound, "unknown tenant %q", r.PathValue("tenant"))
	}
	if !t.deleteCatalog(r.PathValue("catalog")) {
		return nil, fail(http.StatusNotFound, "unknown catalog %q", r.PathValue("catalog"))
	}
	s.stale.invalidate(t.name, r.PathValue("catalog"))
	return map[string]string{"deleted": r.PathValue("catalog")}, nil
}

func (s *Service) handleListCatalogs(_ http.ResponseWriter, r *http.Request) (any, *apiError) {
	t, ok := s.tenantFor(r.PathValue("tenant"), false)
	if !ok {
		return nil, fail(http.StatusNotFound, "unknown tenant %q", r.PathValue("tenant"))
	}
	return map[string]any{"tenant": t.name, "catalogs": t.catalogNames()}, nil
}

func (s *Service) handleDeleteTenant(_ http.ResponseWriter, r *http.Request) (any, *apiError) {
	if !s.deleteTenant(r.PathValue("tenant")) {
		return nil, fail(http.StatusNotFound, "unknown tenant %q", r.PathValue("tenant"))
	}
	return map[string]string{"deleted": r.PathValue("tenant")}, nil
}

// decodeJSONBody strictly decodes one JSON document into v.
func decodeJSONBody(r *http.Request, v any) *apiError {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if err == io.EOF {
			return fail(http.StatusBadRequest, "empty request body (want a JSON document)")
		}
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return readBodyErr(err)
		}
		return fail(http.StatusBadRequest, "decoding request: %v", err)
	}
	return nil
}

// lookupCatalog resolves the request's tenant and catalog path segments.
func (s *Service) lookupCatalog(r *http.Request) (*tenant, *catalog, *apiError) {
	t, ok := s.tenantFor(r.PathValue("tenant"), false)
	if !ok {
		return nil, nil, fail(http.StatusNotFound, "unknown tenant %q", r.PathValue("tenant"))
	}
	c, ok := t.getCatalog(r.PathValue("catalog"))
	if !ok {
		return nil, nil, fail(http.StatusNotFound, "unknown catalog %q", r.PathValue("catalog"))
	}
	return t, c, nil
}

func (s *Service) handleTopK(_ http.ResponseWriter, r *http.Request) (any, *apiError) {
	t, c, apiErr := s.lookupCatalog(r)
	if apiErr != nil {
		return nil, apiErr
	}
	var req TopKRequest
	if apiErr := decodeJSONBody(r, &req); apiErr != nil {
		return nil, apiErr
	}
	if req.K < 1 || req.K > c.dom.Size() {
		return nil, fail(http.StatusBadRequest, "k=%d out of range [1,%d]", req.K, c.dom.Size())
	}
	switch req.Algo {
	case "", "medrank", "ta", "nra", "ca":
	default:
		return nil, fail(http.StatusBadRequest, "unknown algo %q (want medrank, ta, nra, or ca)", req.Algo)
	}
	if req.CostRatio < 0 {
		return nil, fail(http.StatusBadRequest, "cost_ratio=%d must be non-negative", req.CostRatio)
	}
	if req.Chaos != nil && !req.Resilient {
		return nil, fail(http.StatusBadRequest, "chaos requires resilient mode")
	}
	if req.Trim < 0 || req.Trim >= len(c.rankings) {
		return nil, fail(http.StatusBadRequest, "trim=%d out of range [0,%d] for %d lists",
			req.Trim, len(c.rankings)-1, len(c.rankings))
	}
	if req.Theta != nil {
		if *req.Theta < 0 || math.IsNaN(*req.Theta) || math.IsInf(*req.Theta, 0) {
			return nil, fail(http.StatusBadRequest, "theta=%v out of range [0, +inf)", *req.Theta)
		}
		if req.Resilient {
			return nil, fail(http.StatusBadRequest, "theta is incompatible with resilient mode")
		}
		if req.Algo == "nra" {
			// The θ-approximate engine earns its early stop with random
			// accesses; honoring it would contradict the client's explicit
			// no-random-access choice.
			return nil, fail(http.StatusBadRequest, "theta is incompatible with algo \"nra\" (the approximate engine uses random access)")
		}
	}

	actx, adm := telemetry.Start(r.Context(), "admission")
	release, astate, apiErr := s.admitQuery(actx, t.name)
	if astate.queued {
		adm.SetAttr("queued", 1)
		adm.SetAttr("queue_pos", int64(astate.queuePos))
	}
	if apiErr != nil {
		_, shsp := telemetry.Start(actx, "overload.shed")
		shsp.SetAttr("status", int64(apiErr.status))
		shsp.End()
		adm.End()
		return nil, apiErr
	}
	adm.End()
	defer release()

	algo := req.Algo
	if algo == "" {
		algo = "medrank"
	}
	ratio := effectiveCostRatio(algo, req.CostRatio)
	start := time.Now()
	meta := metaFrom(r.Context())

	// Degradation-ladder selection: with a deadline in force (and on the
	// plain query path — resilient runs own their degraded semantics), pick
	// the cheapest rung that still lands inside the remaining budget. An
	// explicit θ in the request forces the approximate engine outright.
	level, theta, ladderReason := LadderExact, 0.0, ""
	ladderActive := false
	deadline, hasDeadline := r.Context().Deadline()
	skey := staleKey{tenant: t.name, catalog: r.PathValue("catalog"), algo: algo, k: req.K, ratio: ratio}
	if req.Theta != nil {
		level, theta, ladderActive = LadderApprox, *req.Theta, true
		ladderReason = "explicit theta"
	} else if hasDeadline && !req.Resilient {
		ladderActive = true
		est := s.adm.estimateNs()
		remaining := time.Until(deadline)
		level = chooseLevel(remaining, est, true)
		ladderReason = fmt.Sprintf("budget %s vs engine ewma %s",
			remaining.Round(time.Millisecond), time.Duration(est).Round(time.Millisecond))
		if level == LadderApprox {
			theta = s.cfg.ApproxTheta
		}
	}
	if ladderActive {
		_, lsp := telemetry.Start(r.Context(), "overload.ladder")
		lsp.SetAttr("level", ladderLevelCode(level))
		lsp.End()
	}
	if level == LadderStale {
		if req.Trim == 0 {
			if resp, age, ok := s.stale.get(skey); ok {
				return s.finishStale(t.name, meta, resp, age, ladderReason, start), nil
			}
		}
		// No stored answer (or a trim request, which is never cached): the
		// approximate engine is the best remaining effort inside the budget.
		level, theta = LadderApprox, s.cfg.ApproxTheta
		ladderReason += "; no stale answer, attempting approx"
	}
	if algo == "nra" && level == LadderApprox {
		// The approx rung's engine uses random access, which an explicit
		// "nra" forbids; serve exact instead and let the ladder say why.
		level, theta = LadderExact, 0
		ladderReason += "; nra serves exact (approx rung requires random access)"
	}

	// Reliability trim: score every list's centrality in the catalog's
	// pairwise-distance graph (default kprof metric, shared cache) and drop
	// the Trim least reliable BEFORE the engines run, so the query — and on
	// the resilient path the degraded quality intervals, whose median index
	// is derived from the voter count — sees only the post-trim voter set.
	rankings := c.rankings
	keptIdx := []int(nil) // non-nil only when trimming; maps engine index -> catalog index
	var trimSummary *TrimSummary
	if req.Trim > 0 {
		_, tsp := telemetry.Start(r.Context(), "robust.trim")
		d := t.cachedDistance(s.cache, metrics.CacheIDKProf, metrics.KProfWS, meta)
		weights, werr := robust.Weights(c.rankings, d)
		var dropped []int
		if werr == nil {
			dropped, keptIdx, werr = robust.TrimByWeight(weights, req.Trim)
		}
		tsp.End()
		if werr != nil {
			return nil, fail(http.StatusInternalServerError, "reliability trim: %v", werr)
		}
		rankings = make([]*ranking.PartialRanking, len(keptIdx))
		for i, orig := range keptIdx {
			rankings[i] = c.rankings[orig]
		}
		trimSummary = &TrimSummary{Dropped: dropped, Survivors: len(keptIdx), Weights: weights}
		s.mRobustTrim.With(t.name).Add(int64(len(dropped)))
	}

	var res *topk.Result
	var err error
	ectx, eng := telemetry.Start(r.Context(), "engine."+algo)
	switch {
	case req.Resilient:
		res, err = s.runResilientTopK(r.WithContext(ectx), rankings, req, ratio)
	case level == LadderApprox:
		res, err = topk.ThresholdTopKApprox(ectx, rankings, req.K, theta)
	case algo == "ta":
		res, err = topk.ThresholdTopKContext(ectx, rankings, req.K)
	case algo == "nra":
		res, err = topk.NRAContext(ectx, rankings, req.K)
	case algo == "ca":
		res, err = topk.CAContext(ectx, rankings, req.K, ratio)
	default:
		res, err = topk.MedRankContext(ectx, rankings, req.K, topk.GlobalMerge)
	}
	if err != nil {
		eng.End()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The budget ran out mid-engine: one rung remains — a cached
			// answer beats a timeout, if the store has one fresh enough.
			if ladderActive && req.Trim == 0 {
				if resp, age, ok := s.stale.get(skey); ok {
					return s.finishStale(t.name, meta, resp, age, "engine exceeded budget; served cached answer", start), nil
				}
			}
			e := fail(http.StatusServiceUnavailable, "query aborted: %v", err)
			if est := s.adm.estimateNs(); est > 0 {
				e.retryAfter = time.Duration(est)
			}
			return nil, e
		}
		return nil, fail(http.StatusInternalServerError, "top-k query: %v", err)
	}
	// A trimmed resilient run reports lost lists in the trimmed slice's index
	// space; remap to the original catalog indices so clients and the trim
	// summary speak the same coordinates.
	if res.Degraded != nil && keptIdx != nil {
		for i, lost := range res.Degraded.Lost {
			res.Degraded.Lost[i] = keptIdx[lost]
		}
	}
	access := AccessSummary{
		Sequential: res.Stats.Total,
		Random:     res.Stats.Random,
		BucketIOs:  res.Stats.TotalBucketProbes,
		MaxDepth:   res.Stats.MaxDepth,
		CostRatio:  ratio,
	}
	access.MiddlewareCost = res.Stats.MiddlewareCost(1, ratio)
	s.mAlgo.With(t.name, algo).Inc()
	s.mMwCost.With(t.name, algo).Add(int64(access.MiddlewareCost))
	spanAttrsFromAccess(&eng, access, res.Degraded != nil)
	eng.End()
	if res.Degraded != nil {
		s.degraded.Add(1)
	}
	if meta != nil {
		meta.access = access
		meta.degraded = res.Degraded != nil
	}
	// The cache span is zero-traffic unless the reliability trim probed the
	// distance cache; emitting it regardless keeps request span trees
	// structurally uniform across endpoints.
	_, csp := telemetry.Start(r.Context(), "cache")
	if meta != nil {
		csp.SetAttr("hits", meta.cacheHits.Load())
		csp.SetAttr("misses", meta.cacheMisses.Load())
	} else {
		csp.SetAttr("hits", 0)
		csp.SetAttr("misses", 0)
	}
	csp.End()

	resp := TopKResponse{
		Winners:   make([]string, len(res.Winners)),
		Medians:   make([]float64, len(res.Winners)),
		TopK:      c.dom.Render(res.TopK),
		Access:    access,
		Degraded:  res.Degraded,
		Trim:      trimSummary,
		ElapsedNs: time.Since(start).Nanoseconds(),
	}
	for i, e := range res.Winners {
		resp.Winners[i] = c.dom.Name(e)
		resp.Medians[i] = float64(res.Medians2[i]) / 2
	}
	s.adm.observeService(time.Since(start))
	if ladderActive {
		resp.Ladder = &LadderInfo{Level: level, Reason: ladderReason}
		if level == LadderApprox {
			resp.Ladder.Theta = theta
			resp.Ladder.Certificate = res.Approx
			s.ladderApprox.Add(1)
			s.mDegradedAns.With(t.name, LadderApprox).Inc()
			if meta != nil {
				meta.ladderLevel = LadderApprox
			}
		}
	}
	// Exact answers on the plain query path refresh the stale store, the
	// ladder's bottom rung. Resilient, chaos, trim, and approximate answers
	// are never cached: a stale answer must be a previously correct one.
	if !req.Resilient && req.Trim == 0 && level == LadderExact {
		stored := resp
		stored.Ladder = nil
		s.stale.put(skey, stored)
	}
	return resp, nil
}

// finishStale serves a stored answer as the ladder's bottom rung: the access
// summary is zeroed (no engine ran for this request) and the answer is
// age-stamped.
func (s *Service) finishStale(tenantName string, meta *requestMeta, resp TopKResponse, age time.Duration, reason string, start time.Time) TopKResponse {
	resp.Access = AccessSummary{}
	resp.Ladder = &LadderInfo{Level: LadderStale, AgeMs: age.Milliseconds(), Reason: reason}
	resp.ElapsedNs = time.Since(start).Nanoseconds()
	s.ladderStale.Add(1)
	s.mDegradedAns.With(tenantName, LadderStale).Inc()
	if meta != nil {
		meta.ladderLevel = LadderStale
	}
	return resp
}

// ladderLevelCode maps a ladder level to its span-attribute code.
func ladderLevelCode(level string) int64 {
	switch level {
	case LadderExact:
		return 0
	case LadderApprox:
		return 1
	default:
		return 2
	}
}

// effectiveCostRatio resolves a request's cR/cS weight the way internal/db
// does: an explicit positive ratio wins; otherwise ta and ca default to
// defaultCostRatio while medrank and nra run in the NRA regime (random access
// priced out, ratio 0).
func effectiveCostRatio(algo string, explicit int) int {
	if explicit > 0 {
		return explicit
	}
	if algo == "ta" || algo == "ca" {
		return defaultCostRatio
	}
	return 0
}

// defaultCostRatio mirrors db.DefaultCostRatio: random access is typically an
// order of magnitude pricier than a sorted probe.
const defaultCostRatio = 10

// runResilientTopK runs the degraded-mode engines over fallible sources built
// from the given (possibly reliability-trimmed) lists, optionally
// fault-injected per the request's chaos plan. ratio is the effective cR/cS
// weight (CA's random-access schedule).
func (s *Service) runResilientTopK(r *http.Request, rankings []*ranking.PartialRanking, req TopKRequest, ratio int) (*topk.Result, error) {
	acc := telemetry.NewAccessAccountant(len(rankings))
	sources := make([]faults.Source, len(rankings))
	for i, pr := range rankings {
		var src faults.Source = topk.NewListSource(pr, acc, i)
		if req.Chaos != nil {
			src = faults.Inject(src, faults.Plan{
				Seed:          req.Chaos.Seed + int64(i),
				TransientRate: req.Chaos.TransientRate,
				DeathRate:     req.Chaos.DeathRate,
				DeathAfter:    req.Chaos.DeathAfter,
				Latency:       time.Duration(req.Chaos.LatencyMs) * time.Millisecond,
			})
		}
		sources[i] = faults.WithRetry(src, faults.DefaultRetryPolicy(), acc, i)
	}
	switch req.Algo {
	case "ta":
		return topk.ThresholdTopKOver(r.Context(), sources, req.K, acc)
	case "nra":
		return topk.NRAOver(r.Context(), sources, req.K, acc)
	case "ca":
		return topk.CAOver(r.Context(), sources, req.K, ratio, acc)
	}
	return topk.MedRankOver(r.Context(), sources, req.K, topk.GlobalMerge, acc)
}

func (s *Service) handleAggregate(_ http.ResponseWriter, r *http.Request) (any, *apiError) {
	t, c, apiErr := s.lookupCatalog(r)
	if apiErr != nil {
		return nil, apiErr
	}
	var req AggregateRequest
	if apiErr := decodeJSONBody(r, &req); apiErr != nil {
		return nil, apiErr
	}
	id, base, err := metricByName(req.Metric)
	if err != nil {
		return nil, fail(http.StatusBadRequest, "%v", err)
	}
	var robustMode robust.Mode
	if req.Robust != nil {
		robustMode, err = robust.ParseMode(req.Robust.Mode)
		if err != nil {
			return nil, fail(http.StatusBadRequest, "%v", err)
		}
		if req.Robust.Trim < 0 || req.Robust.Trim >= len(c.rankings) {
			return nil, fail(http.StatusBadRequest, "robust trim=%d out of range [0,%d] for %d lists",
				req.Robust.Trim, len(c.rankings)-1, len(c.rankings))
		}
	}
	meta := metaFrom(r.Context())
	d := t.cachedDistance(s.cache, id, base, meta)

	actx, adm := telemetry.Start(r.Context(), "admission")
	release, astate, admErr := s.admitQuery(actx, t.name)
	if astate.queued {
		adm.SetAttr("queued", 1)
		adm.SetAttr("queue_pos", int64(astate.queuePos))
	}
	if admErr != nil {
		_, shsp := telemetry.Start(actx, "overload.shed")
		shsp.SetAttr("status", int64(admErr.status))
		shsp.End()
		adm.End()
		return nil, admErr
	}
	adm.End()
	defer release()

	start := time.Now()
	n := c.dom.Size()
	ectx, eng := telemetry.Start(r.Context(), "engine.aggregate")
	phase := func(name string, f func(ctx context.Context) error) *apiError {
		// Deadline budgets abort aggregation at phase boundaries: the phase
		// kernels are tight parallel loops, so the boundary check is where a
		// canceled request actually stops burning workers.
		if err := r.Context().Err(); err != nil {
			e := fail(http.StatusServiceUnavailable, "query aborted before %s: %v", name, err)
			if est := s.adm.estimateNs(); est > 0 {
				e.retryAfter = time.Duration(est)
			}
			return e
		}
		pctx, sp := telemetry.Start(ectx, "aggregate."+name)
		err := f(pctx)
		sp.End()
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return fail(http.StatusServiceUnavailable, "%s aborted: %v", name, err)
			}
			return fail(http.StatusInternalServerError, "%s: %v", name, err)
		}
		return nil
	}
	var scores []float64
	var median *ranking.PartialRanking
	var medianDist float64
	if apiErr := phase("median_scores", func(context.Context) error {
		var err error
		scores, err = aggregate.MedianScores(c.rankings, aggregate.LowerMedian)
		return err
	}); apiErr != nil {
		eng.End()
		return nil, apiErr
	}
	if apiErr := phase("median_topk", func(context.Context) error {
		var err error
		median, err = aggregate.MedianTopK(c.rankings, n)
		return err
	}); apiErr != nil {
		eng.End()
		return nil, apiErr
	}
	if apiErr := phase("score_median", func(context.Context) error {
		var err error
		medianDist, err = aggregate.SumDistanceParallel(median, c.rankings, d)
		return err
	}); apiErr != nil {
		eng.End()
		return nil, apiErr
	}
	var bestIdx int
	var bestPR *ranking.PartialRanking
	var bestDist float64
	if apiErr := phase("best_of_inputs", func(context.Context) error {
		var err error
		bestIdx, bestPR, bestDist, err = aggregate.BestOfInputsParallel(c.rankings, d)
		return err
	}); apiErr != nil {
		eng.End()
		return nil, apiErr
	}

	resp := AggregateResponse{
		Metric:    req.Metric,
		Medians:   make(map[string]float64, n),
		Median:    RankedCandidate{Ranking: c.dom.Render(median), SumDistance: medianDist},
		BestInput: bestIdx,
		Best:      RankedCandidate{Ranking: c.dom.Render(bestPR), SumDistance: bestDist},
	}
	if resp.Metric == "" {
		resp.Metric = "kprof"
	}
	for e := 0; e < n; e++ {
		resp.Medians[c.dom.Name(e)] = scores[e]
	}
	if req.Kemenize == nil || *req.Kemenize {
		var kem *ranking.PartialRanking
		var kemDist float64
		if apiErr := phase("kemenize", func(context.Context) error {
			var err error
			kem, err = aggregate.LocalKemenize(median, c.rankings)
			if err != nil {
				return err
			}
			kemDist, err = aggregate.SumDistanceParallel(kem, c.rankings, d)
			return err
		}); apiErr != nil {
			eng.End()
			return nil, apiErr
		}
		resp.Kemenized = &RankedCandidate{Ranking: c.dom.Render(kem), SumDistance: kemDist}
	}
	if req.Robust != nil {
		var rres *robust.Result
		if apiErr := phase("robust", func(context.Context) error {
			var err error
			rres, err = robust.Aggregate(c.rankings, robust.Options{
				Mode:     robustMode,
				Trim:     req.Robust.Trim,
				Distance: d,
			})
			return err
		}); apiErr != nil {
			eng.End()
			return nil, apiErr
		}
		s.mRobust.With(t.name, string(robustMode)).Inc()
		s.mRobustTrim.With(t.name).Add(int64(len(rres.Trimmed)))
		resp.Robust = &RobustResult{
			Mode:        string(robustMode),
			Trim:        req.Robust.Trim,
			Ranking:     c.dom.Render(rres.Aggregate),
			SumDistance: rres.SumDistance,
			MaxDistance: rres.MaxDistance,
			Weights:     rres.Weights,
			Trimmed:     rres.Trimmed,
			Survivors:   len(rres.Kept),
		}
	}
	eng.End()
	_, csp := telemetry.Start(r.Context(), "cache")
	if meta != nil {
		csp.SetAttr("hits", meta.cacheHits.Load())
		csp.SetAttr("misses", meta.cacheMisses.Load())
	}
	csp.End()
	resp.ElapsedNs = time.Since(start).Nanoseconds()
	s.adm.observeService(time.Since(start))
	return resp, nil
}

func (s *Service) handleStats(_ http.ResponseWriter, _ *http.Request) (any, *apiError) {
	tenants := s.tenantsSnapshot()
	resp := StatsResponse{
		UptimeNs:        time.Since(s.start).Nanoseconds(),
		Tenants:         make([]TenantStats, 0, len(tenants)),
		DegradedQueries: s.degraded.Load(),
		Overload: OverloadStats{
			ShedRateLimit: s.shedRate.Load(),
			ShedQueueFull: s.shedQueue.Load(),
			ShedDeadline:  s.shedDeadline.Load(),
			ShedDraining:  s.shedDraining.Load(),
			ApproxAnswers: s.ladderApprox.Load(),
			StaleAnswers:  s.ladderStale.Load(),
			QueueDepth:    s.adm.queueLen(),
			Inflight:      s.adm.inflight(),
			EngineEwmaNs:  int64(s.adm.estimateNs()),
		},
		Endpoints: make(map[string]EndpointStats, len(s.endpoints)),
		Telemetry:       telemetry.Default.Snapshot(),
		Server:          s.reg.Snapshot(),
	}
	for _, t := range tenants {
		hits, misses := t.cacheHits.Load(), t.cacheMisses.Load()
		ts := TenantStats{
			Name:        t.name,
			Catalogs:    len(t.catalogNames()),
			Rankings:    t.rankingCount(),
			CacheHits:   hits,
			CacheMisses: misses,
		}
		if total := hits + misses; total > 0 {
			ts.CacheHitRate = float64(hits) / float64(total)
		}
		resp.Tenants = append(resp.Tenants, ts)
	}
	// Recently deleted tenants keep their attribution for one snapshot.
	resp.Tenants = append(resp.Tenants, s.takeDeparted()...)
	sortTenantStats(resp.Tenants)
	cs := s.cache.Stats()
	resp.Cache = CacheStats{Stats: cs, HitRate: cs.HitRate()}
	for name, es := range s.endpoints {
		hist := s.reg.Histogram("http." + name + ".latency_ns")
		resp.Endpoints[name] = EndpointStats{
			Requests: es.requests.Load(),
			Errors:   es.errors.Load(),
			P50Ns:    hist.Quantile(0.50),
			P95Ns:    hist.Quantile(0.95),
			P99Ns:    hist.Quantile(0.99),
		}
	}
	return resp, nil
}

// sortTenantStats orders tenant rows by name for deterministic snapshots.
func sortTenantStats(ts []TenantStats) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Name < ts[j].Name })
}
