package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/guard"
	"repro/internal/ranking"
	"repro/internal/telemetry"
	"repro/internal/topk"
)

func init() {
	// The service's latency histograms are gated like every instrument; a
	// server process enables telemetry at startup, so tests do too.
	telemetry.Enable()
}

// testServer stands up a Service behind httptest.
func testServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

// doReq issues one request and returns status + body.
func doReq(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func decode[T any](t *testing.T, b []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("decoding %s: %v", b, err)
	}
	return v
}

const corpus = "a | b | c | d\nb | a | c | d\na | c | b | d\nd | a b | c\n"

func putCatalog(t *testing.T, ts *httptest.Server, tenant, cat, body, query string) IngestResponse {
	t.Helper()
	status, b := doReq(t, http.MethodPut,
		fmt.Sprintf("%s/v1/tenants/%s/catalogs/%s%s", ts.URL, tenant, cat, query), body)
	if status != http.StatusOK {
		t.Fatalf("PUT catalog = %d: %s", status, b)
	}
	return decode[IngestResponse](t, b)
}

func TestPutCatalogStrict(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp := putCatalog(t, ts, "acme", "movies", corpus, "")
	if resp.Rankings != 4 || resp.Elements != 4 || resp.Mode != "strict" {
		t.Errorf("unexpected ingest response: %+v", resp)
	}
	if len(resp.Defects) != 0 {
		t.Errorf("clean corpus produced defects: %+v", resp.Defects)
	}
}

func TestPutCatalogStrictRejectsMalformed(t *testing.T) {
	_, ts := testServer(t, Config{})
	status, b := doReq(t, http.MethodPut, ts.URL+"/v1/tenants/acme/catalogs/bad",
		"a | b | c\na | a | b\n")
	if status != http.StatusBadRequest {
		t.Fatalf("malformed strict PUT = %d, want 400: %s", status, b)
	}
	er := decode[ErrorResponse](t, b)
	if er.Error == "" {
		t.Error("error response missing summary")
	}
}

func TestPutCatalogLenientRepairs(t *testing.T) {
	_, ts := testServer(t, Config{})
	// Second line covers a strict subset; CompleteBottom repairs it.
	resp := putCatalog(t, ts, "acme", "movies",
		"a | b | c | d\na | b\nw x | y z q\n",
		"?mode=lenient&repair=complete")
	if resp.Mode != "lenient" {
		t.Errorf("mode = %q, want lenient", resp.Mode)
	}
	if resp.Rankings != 2 {
		t.Errorf("rankings = %d, want 2 (one clean, one repaired)", resp.Rankings)
	}
	if len(resp.Defects) == 0 {
		t.Error("lenient ingest of defective corpus reported no defects")
	}
	repaired := false
	for _, d := range resp.Defects {
		if d.Repaired {
			repaired = true
		}
	}
	if !repaired {
		t.Errorf("no repaired defect in %+v", resp.Defects)
	}
}

func TestBodyCapRejectsWithStructuredDefect(t *testing.T) {
	_, ts := testServer(t, Config{MaxBodyBytes: 64})
	big := strings.Repeat("a | b | c | d\n", 100)
	status, b := doReq(t, http.MethodPut, ts.URL+"/v1/tenants/acme/catalogs/big", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413: %s", status, b)
	}
	er := decode[ErrorResponse](t, b)
	if len(er.Defects) == 0 {
		t.Errorf("413 carried no structured defect: %s", b)
	}
}

func TestTenantCapDeterministicRejection(t *testing.T) {
	_, ts := testServer(t, Config{MaxTenants: 2})
	putCatalog(t, ts, "t1", "c", corpus, "")
	putCatalog(t, ts, "t2", "c", corpus, "")
	for i := 0; i < 3; i++ { // rejection must be deterministic across retries
		status, b := doReq(t, http.MethodPut, ts.URL+"/v1/tenants/t3/catalogs/c", corpus)
		if status != http.StatusTooManyRequests {
			t.Fatalf("attempt %d: third tenant = %d, want 429: %s", i, status, b)
		}
		er := decode[ErrorResponse](t, b)
		if len(er.Defects) != 1 || !strings.Contains(er.Defects[0].Msg, "tenant limit 2") {
			t.Errorf("attempt %d: unexpected defects %+v", i, er.Defects)
		}
	}
	// Existing tenants keep working at the cap.
	putCatalog(t, ts, "t1", "c2", corpus, "")
}

func TestRankingLimitRejection(t *testing.T) {
	limits := guard.DefaultLimits()
	limits.MaxRankings = 2
	_, ts := testServer(t, Config{Limits: limits})
	status, b := doReq(t, http.MethodPut, ts.URL+"/v1/tenants/acme/catalogs/over", corpus)
	if status != http.StatusBadRequest {
		t.Fatalf("over-limit strict PUT = %d, want 400: %s", status, b)
	}
}

func TestCatalogLifecycle(t *testing.T) {
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", corpus, "")

	status, b := doReq(t, http.MethodGet, ts.URL+"/v1/tenants/acme/catalogs/movies", "")
	if status != http.StatusOK {
		t.Fatalf("GET catalog = %d: %s", status, b)
	}
	info := decode[CatalogInfo](t, b)
	if info.Rankings != 4 || info.Elements != 4 || len(info.Names) != 4 {
		t.Errorf("catalog info = %+v", info)
	}

	status, b = doReq(t, http.MethodGet, ts.URL+"/v1/tenants/acme/catalogs", "")
	if status != http.StatusOK || !strings.Contains(string(b), "movies") {
		t.Errorf("list catalogs = %d: %s", status, b)
	}

	status, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/tenants/acme/catalogs/movies", "")
	if status != http.StatusOK {
		t.Errorf("DELETE catalog = %d", status)
	}
	status, _ = doReq(t, http.MethodGet, ts.URL+"/v1/tenants/acme/catalogs/movies", "")
	if status != http.StatusNotFound {
		t.Errorf("GET deleted catalog = %d, want 404", status)
	}

	putCatalog(t, ts, "acme", "again", corpus, "")
	status, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/tenants/acme", "")
	if status != http.StatusOK {
		t.Errorf("DELETE tenant = %d", status)
	}
	status, _ = doReq(t, http.MethodGet, ts.URL+"/v1/tenants/acme/catalogs", "")
	if status != http.StatusNotFound {
		t.Errorf("GET catalogs of deleted tenant = %d, want 404", status)
	}
}

func TestAppendRankingsRemapsByName(t *testing.T) {
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", corpus, "")
	// Same domain, different name-encounter order.
	status, b := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/rankings",
		"d | c | b | a\nc | d a | b\n")
	if status != http.StatusOK {
		t.Fatalf("append = %d: %s", status, b)
	}
	resp := decode[IngestResponse](t, b)
	if resp.Rankings != 6 || resp.Appended != 2 {
		t.Errorf("append response = %+v", resp)
	}
	// The appended lists must rank the SAME elements: a top-k query naming
	// element "d" first proves the remap aligned names, not raw IDs.
	status, b = doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/topk",
		`{"k": 4}`)
	if status != http.StatusOK {
		t.Fatalf("topk after append = %d: %s", status, b)
	}

	// Appending lists over a different element set is a conflict.
	status, b = doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/rankings",
		"x | y | z | w\n")
	if status != http.StatusConflict {
		t.Errorf("append foreign domain = %d, want 409: %s", status, b)
	}
}

func TestTopKMatchesEngine(t *testing.T) {
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", corpus, "")

	rankings, dom, err := ranking.ParseLines(strings.NewReader(corpus))
	if err != nil {
		t.Fatal(err)
	}
	want, err := topk.MedRank(rankings, 2, topk.GlobalMerge)
	if err != nil {
		t.Fatal(err)
	}

	status, b := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/topk",
		`{"k": 2}`)
	if status != http.StatusOK {
		t.Fatalf("topk = %d: %s", status, b)
	}
	resp := decode[TopKResponse](t, b)
	if len(resp.Winners) != len(want.Winners) {
		t.Fatalf("winners = %v", resp.Winners)
	}
	for i, e := range want.Winners {
		if resp.Winners[i] != dom.Name(e) {
			t.Errorf("winner %d = %q, want %q", i, resp.Winners[i], dom.Name(e))
		}
		if wantMed := float64(want.Medians2[i]) / 2; resp.Medians[i] != wantMed {
			t.Errorf("median %d = %g, want %g", i, resp.Medians[i], wantMed)
		}
	}
	if resp.Access.Sequential == 0 {
		t.Error("no access accounting in response")
	}

	// TA agrees on the winner set.
	status, b = doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/topk",
		`{"k": 2, "algo": "ta"}`)
	if status != http.StatusOK {
		t.Fatalf("ta topk = %d: %s", status, b)
	}
	ta := decode[TopKResponse](t, b)
	if fmt.Sprint(ta.Winners) != fmt.Sprint(resp.Winners) {
		t.Errorf("ta winners %v != medrank winners %v", ta.Winners, resp.Winners)
	}
}

func TestTopKValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", corpus, "")
	for body, want := range map[string]int{
		`{"k": 0}`:                       http.StatusBadRequest,
		`{"k": 99}`:                      http.StatusBadRequest,
		`{"k": 1, "algo": "quantum"}`:    http.StatusBadRequest,
		`{"k": 1, "chaos": {"seed": 1}}`: http.StatusBadRequest, // chaos without resilient
		`not json`:                       http.StatusBadRequest,
	} {
		status, b := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/topk", body)
		if status != want {
			t.Errorf("topk body %q = %d, want %d: %s", body, status, want, b)
		}
	}
	status, _ := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/nope/topk", `{"k": 1}`)
	if status != http.StatusNotFound {
		t.Errorf("topk on missing catalog = %d, want 404", status)
	}
}

// deepCorpus is disagreeable enough (8 elements, 5 voters with clashing
// orders) that a k=6 query must scan deep, giving injected faults room to
// kill lists mid-query.
const deepCorpus = "a | b | c | d | e | f | g | h\n" +
	"b | a | d | c | f | e | h | g\n" +
	"c | d | a | b | g | h | e | f\n" +
	"h | g | f | e | d | c | b | a\n" +
	"a | c | e | g | b | d | f | h\n"

func TestResilientTopKWithChaosDegrades(t *testing.T) {
	svc, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", deepCorpus, "")
	// With death_rate 0.1 under this seed, some lists die mid-query and some
	// survive: the answer must be degraded but still well-formed, and
	// deterministic for a fixed seed.
	body := `{"k": 6, "resilient": true, "chaos": {"seed": 7, "death_rate": 0.1}}`
	var first TopKResponse
	for i := 0; i < 2; i++ {
		status, b := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/topk", body)
		if status != http.StatusOK {
			t.Fatalf("resilient topk = %d: %s", status, b)
		}
		resp := decode[TopKResponse](t, b)
		if resp.Degraded == nil {
			t.Fatal("chaos run did not degrade")
		}
		if i == 0 {
			first = resp
		} else if fmt.Sprint(resp.Winners) != fmt.Sprint(first.Winners) {
			t.Errorf("degraded answer not deterministic: %v vs %v", resp.Winners, first.Winners)
		}
	}
	if svc.degraded.Load() == 0 {
		t.Error("service did not count the degraded queries")
	}
}

// TestTopKAlgoNRAAndCA covers the FLN middleware engines over HTTP: the
// no-random-access NRA and the combined algorithm CA agree with MEDRANK,
// report cost-weighted access summaries, honor explicit cost ratios, and
// show up in the algo-labeled metric families.
func TestTopKAlgoNRAAndCA(t *testing.T) {
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", deepCorpus, "")
	url := ts.URL + "/v1/tenants/acme/catalogs/movies/topk"

	query := func(body string) TopKResponse {
		t.Helper()
		status, b := doReq(t, http.MethodPost, url, body)
		if status != http.StatusOK {
			t.Fatalf("topk %s = %d: %s", body, status, b)
		}
		return decode[TopKResponse](t, b)
	}

	base := query(`{"k": 4}`)
	nra := query(`{"k": 4, "algo": "nra"}`)
	if fmt.Sprint(nra.Winners) != fmt.Sprint(base.Winners) {
		t.Errorf("nra winners %v != medrank winners %v", nra.Winners, base.Winners)
	}
	if nra.Access.Random != 0 {
		t.Errorf("nra made %d random accesses, want 0", nra.Access.Random)
	}
	if nra.Access.CostRatio != 0 || nra.Access.MiddlewareCost != nra.Access.Sequential {
		t.Errorf("nra access summary %+v: want cost ratio 0 and cost == sequential", nra.Access)
	}

	ca := query(`{"k": 4, "algo": "ca"}`)
	if fmt.Sprint(ca.Winners) != fmt.Sprint(base.Winners) {
		t.Errorf("ca winners %v != medrank winners %v", ca.Winners, base.Winners)
	}
	if ca.Access.CostRatio != defaultCostRatio {
		t.Errorf("ca default cost ratio = %d, want %d", ca.Access.CostRatio, defaultCostRatio)
	}
	if want := ca.Access.Sequential + defaultCostRatio*ca.Access.Random; ca.Access.MiddlewareCost != want {
		t.Errorf("ca middleware cost = %d, want %d", ca.Access.MiddlewareCost, want)
	}
	if got := query(`{"k": 4, "algo": "ca", "cost_ratio": 25}`); got.Access.CostRatio != 25 {
		t.Errorf("explicit cost ratio echoed as %d, want 25", got.Access.CostRatio)
	}

	for _, bad := range []string{
		`{"k": 4, "algo": "ca", "cost_ratio": -1}`,
		`{"k": 4, "algo": "nra", "theta": 0.5}`, // θ engine needs random access
	} {
		if status, b := doReq(t, http.MethodPost, url, bad); status != http.StatusBadRequest {
			t.Errorf("topk %s = %d, want 400: %s", bad, status, b)
		}
	}

	// Resilient dispatch: both engines survive deterministic chaos, and NRA
	// stays random-access-free even on the fallible path.
	rnra := query(`{"k": 4, "algo": "nra", "resilient": true, "chaos": {"seed": 7, "death_rate": 0.1}}`)
	if rnra.Access.Random != 0 {
		t.Errorf("resilient nra made %d random accesses, want 0", rnra.Access.Random)
	}
	if rnra.Degraded == nil {
		t.Error("resilient nra chaos run did not degrade")
	}
	if rca := query(`{"k": 4, "algo": "ca", "resilient": true, "chaos": {"seed": 7, "death_rate": 0.1}}`); len(rca.Winners) != 4 {
		t.Errorf("resilient ca winners = %v, want 4", rca.Winners)
	}

	status, b := doReq(t, http.MethodGet, ts.URL+"/metrics", "")
	if status != http.StatusOK {
		t.Fatalf("/metrics = %d", status)
	}
	out := string(b)
	for _, want := range []string{
		`rankserve_topk_algo_total{tenant="acme",algo="medrank"}`,
		`rankserve_topk_algo_total{tenant="acme",algo="nra"}`,
		`rankserve_topk_algo_total{tenant="acme",algo="ca"}`,
		`rankserve_middleware_cost_total{tenant="acme",algo="ca"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in /metrics", want)
		}
	}
}

func TestAggregateMatchesEngines(t *testing.T) {
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", corpus, "")

	rankings, dom, err := ranking.ParseLines(strings.NewReader(corpus))
	if err != nil {
		t.Fatal(err)
	}
	wantScores, err := aggregate.MedianScores(rankings, aggregate.LowerMedian)
	if err != nil {
		t.Fatal(err)
	}

	status, b := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/aggregate",
		`{"metric": "kprof"}`)
	if status != http.StatusOK {
		t.Fatalf("aggregate = %d: %s", status, b)
	}
	resp := decode[AggregateResponse](t, b)
	for e := 0; e < dom.Size(); e++ {
		if got := resp.Medians[dom.Name(e)]; got != wantScores[e] {
			t.Errorf("median[%s] = %g, want %g", dom.Name(e), got, wantScores[e])
		}
	}
	if resp.Kemenized == nil {
		t.Fatal("kemenized clause missing (default is on)")
	}
	if resp.Kemenized.SumDistance > resp.Median.SumDistance {
		t.Errorf("kemenization increased the objective: %g > %g",
			resp.Kemenized.SumDistance, resp.Median.SumDistance)
	}
	if resp.Best.Ranking == "" || resp.BestInput < 0 || resp.BestInput >= len(rankings) {
		t.Errorf("best-of-inputs clause = %+v", resp)
	}

	status, b = doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/aggregate",
		`{"metric": "nosuch"}`)
	if status != http.StatusBadRequest {
		t.Errorf("unknown metric = %d, want 400: %s", status, b)
	}
}

func TestStatsSnapshot(t *testing.T) {
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", corpus, "")
	doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/aggregate", `{}`)
	doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/topk", `{"k": 1}`)

	status, b := doReq(t, http.MethodGet, ts.URL+"/stats", "")
	if status != http.StatusOK {
		t.Fatalf("stats = %d: %s", status, b)
	}
	resp := decode[StatsResponse](t, b)
	if len(resp.Tenants) != 1 || resp.Tenants[0].Name != "acme" {
		t.Fatalf("tenants = %+v", resp.Tenants)
	}
	if resp.Tenants[0].CacheMisses == 0 {
		t.Error("aggregate query produced no cache traffic")
	}
	if resp.Endpoints["topk"].Requests == 0 || resp.Endpoints["aggregate"].Requests == 0 {
		t.Errorf("endpoint tallies missing: %+v", resp.Endpoints)
	}
	if resp.Server.Histograms["http.topk.latency_ns"].Count == 0 {
		t.Errorf("server registry missing topk latency histogram: %+v", resp.Server.Histograms)
	}
}

func TestDebugSurfaceMounted(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		status, b := doReq(t, http.MethodGet, ts.URL+path, "")
		if status != http.StatusOK {
			t.Errorf("GET %s = %d: %s", path, status, b)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Config{})
	status, b := doReq(t, http.MethodGet, ts.URL+"/healthz", "")
	if status != http.StatusOK || !strings.Contains(string(b), "ok") {
		t.Errorf("healthz = %d: %s", status, b)
	}
}
