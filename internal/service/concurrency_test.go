package service

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentMultiTenantAccess hammers one Service from many goroutines
// across several tenants — submits, appends, top-k, aggregates, stats — and
// then cross-checks the books: per-tenant cache attributions must sum exactly
// to the shared cache's totals, and the endpoint tallies must account for
// every request issued. Run under -race this is the service layer's
// data-race certificate.
func TestConcurrentMultiTenantAccess(t *testing.T) {
	svc, ts := testServer(t, Config{})
	const (
		tenants  = 4
		workers  = 8
		rounds   = 6
		catalogs = 2
	)

	// Seed every tenant/catalog up front so queries never race a 404.
	for ti := 0; ti < tenants; ti++ {
		for ci := 0; ci < catalogs; ci++ {
			putCatalog(t, ts, fmt.Sprintf("t%d", ti), fmt.Sprintf("c%d", ci), corpus, "")
		}
	}

	var issued atomic.Int64
	do := func(method, url, body string, wantStatus int) {
		issued.Add(1)
		status, b := doReq(t, method, url, body)
		if status != wantStatus {
			t.Errorf("%s %s = %d, want %d: %s", method, url, status, wantStatus, b)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				tn := fmt.Sprintf("t%d", (w+r)%tenants)
				cat := fmt.Sprintf("c%d", r%catalogs)
				base := fmt.Sprintf("%s/v1/tenants/%s/catalogs/%s", ts.URL, tn, cat)
				switch r % 4 {
				case 0: // replace the catalog wholesale
					do(http.MethodPut, base, corpus, http.StatusOK)
				case 1: // top-k query
					do(http.MethodPost, base+"/topk", `{"k": 2}`, http.StatusOK)
				case 2: // aggregation (the only path that probes the cache)
					metric := []string{"kprof", "fprof", "khaus", "fhaus"}[w%4]
					do(http.MethodPost, base+"/aggregate",
						fmt.Sprintf(`{"metric": %q}`, metric), http.StatusOK)
				case 3: // stats snapshot races the counters being bumped
					do(http.MethodGet, ts.URL+"/stats", "", http.StatusOK)
				}
			}
		}(w)
	}
	wg.Wait()

	// Per-tenant cache attribution must sum to the shared cache's totals:
	// tenant.cachedDistance is the only service path that probes the cache,
	// and it bumps the tenant's atomics on exactly the probes it makes.
	var tenantHits, tenantMisses int64
	for _, tn := range svc.tenantsSnapshot() {
		tenantHits += tn.cacheHits.Load()
		tenantMisses += tn.cacheMisses.Load()
	}
	cs := svc.Cache().Stats()
	if tenantHits != cs.Hits || tenantMisses != cs.Misses {
		t.Errorf("per-tenant cache stats (hits %d, misses %d) != shared cache totals (hits %d, misses %d)",
			tenantHits, tenantMisses, cs.Hits, cs.Misses)
	}
	if tenantMisses == 0 {
		t.Error("aggregation workload produced no cache traffic")
	}

	// The always-on endpoint tallies must account for every request issued
	// (the seeding PUTs plus the workload), with zero errors.
	var counted, errored int64
	for _, es := range svc.endpoints {
		counted += es.requests.Load()
		errored += es.errors.Load()
	}
	want := issued.Load() + tenants*catalogs
	if counted != want {
		t.Errorf("endpoint tallies count %d requests, want %d", counted, want)
	}
	if errored != 0 {
		t.Errorf("endpoint tallies report %d errors, want 0", errored)
	}
}

// TestConcurrentTenantCapDeterministic races many goroutines creating
// distinct tenants against a cap of 3: exactly 3 creations must win, every
// loser must see the same structured 429, and which-three-won must be the
// only nondeterminism — retrying a loser after the dust settles is still
// deterministically rejected.
func TestConcurrentTenantCapDeterministic(t *testing.T) {
	svc, ts := testServer(t, Config{MaxTenants: 3})
	const contenders = 12

	results := make([]int, contenders)
	var wg sync.WaitGroup
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/v1/tenants/race%d/catalogs/c", ts.URL, i)
			status, _ := doReq(t, http.MethodPut, url, corpus)
			results[i] = status
		}(i)
	}
	wg.Wait()

	ok, rejected := 0, 0
	for i, status := range results {
		switch status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
			// A rejected creation is deterministic: retrying now that the
			// race is over must reject again, with the same defect.
			url := fmt.Sprintf("%s/v1/tenants/race%d/catalogs/c", ts.URL, i)
			st2, b := doReq(t, http.MethodPut, url, corpus)
			if st2 != http.StatusTooManyRequests {
				t.Errorf("retry of rejected tenant race%d = %d, want 429", i, st2)
			}
			er := decode[ErrorResponse](t, b)
			if len(er.Defects) != 1 {
				t.Errorf("rejected tenant race%d: defects = %+v", i, er.Defects)
			}
		default:
			t.Errorf("tenant race%d: unexpected status %d", i, status)
		}
	}
	if ok != 3 || rejected != contenders-3 {
		t.Errorf("cap 3 with %d contenders: %d ok, %d rejected", contenders, ok, rejected)
	}
	if got := len(svc.tenantsSnapshot()); got != 3 {
		t.Errorf("tenant count after race = %d, want 3", got)
	}

	// Winners keep full service at the cap.
	for i, status := range results {
		if status == http.StatusOK {
			url := fmt.Sprintf("%s/v1/tenants/race%d/catalogs/c/topk", ts.URL, i)
			st, b := doReq(t, http.MethodPost, url, `{"k": 1}`)
			if st != http.StatusOK {
				t.Errorf("winner race%d topk = %d: %s", i, st, b)
			}
		}
	}
}

// TestConcurrentAppendAndQuery races appends against queries on one catalog:
// queries must always see a consistent snapshot (the immutable catalog value
// is swapped atomically under the tenant lock), never a torn state.
func TestConcurrentAppendAndQuery(t *testing.T) {
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "hot", corpus, "")
	base := ts.URL + "/v1/tenants/acme/catalogs/hot"

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				if w%2 == 0 {
					status, b := doReq(t, http.MethodPost, base+"/rankings", "d | c | b | a\n")
					if status != http.StatusOK {
						t.Errorf("append = %d: %s", status, b)
					}
				} else {
					status, b := doReq(t, http.MethodPost, base+"/topk", `{"k": 2}`)
					if status != http.StatusOK {
						t.Errorf("topk during appends = %d: %s", status, b)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	status, b := doReq(t, http.MethodGet, base, "")
	if status != http.StatusOK {
		t.Fatalf("GET after race = %d: %s", status, b)
	}
	info := decode[CatalogInfo](t, b)
	// Concurrent appends may overwrite each other (last swap wins; replace
	// beats a stale append base by design), so the count is only bounded.
	if info.Rankings < 5 || info.Rankings > 4+10 {
		t.Errorf("rankings after race = %d, want within [5, 14]", info.Rankings)
	}
	if info.Elements != 4 {
		t.Errorf("elements after race = %d, want 4", info.Elements)
	}
}
