package debugserve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestStartServesExpvarAndPprof(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", s.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("GET %s returned empty body", path)
		}
	}
}

func TestShutdownDrainsAndStops(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/debug/vars"); err == nil {
		t.Error("server still serving after Shutdown")
	}
}

func TestRegisterOnForeignMux(t *testing.T) {
	mux := http.NewServeMux()
	Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "memstats") {
		t.Errorf("expvar handler not mounted: status %d", resp.StatusCode)
	}
}
