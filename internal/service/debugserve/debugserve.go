// Package debugserve is the one place the repo stands up a diagnostics HTTP
// surface: expvar at /debug/vars and net/http/pprof under /debug/pprof/.
// Both dbbench's -debug sidecar and rankserve's main mux mount the same
// handlers through it, replacing the ad-hoc default-mux http.Serve (no
// ReadHeaderTimeout, unchecked error) dbbench used to carry.
package debugserve

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/telemetry"
)

// ReadHeaderTimeout bounds how long a debug server waits for request
// headers, so an idle or hostile connection cannot pin an accept slot
// forever (the slowloris guard the ad-hoc server lacked).
const ReadHeaderTimeout = 5 * time.Second

// Register mounts the diagnostics handlers on mux: expvar's full variable
// dump at /debug/vars and the pprof index, profile, symbol, trace, and
// cmdline endpoints under /debug/pprof/. It registers explicit handlers
// rather than relying on the packages' DefaultServeMux init side effects, so
// any mux — rankserve's API mux included — gets the same surface.
func Register(mux *http.ServeMux) {
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/traces", handleTraces)
}

// handleTraces serves the process-wide recent-traces buffer: the span trees
// of the most recent sampled requests, oldest first. ?trace_id=<16-hex>
// narrows the answer to one trace (404 if it has been evicted or never
// sampled).
func handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if id := r.URL.Query().Get("trace_id"); id != "" {
		tr, ok := telemetry.FindTrace(id)
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "trace " + id + " not retained"}) //nolint:errcheck
			return
		}
		json.NewEncoder(w).Encode(tr) //nolint:errcheck
		return
	}
	json.NewEncoder(w).Encode(struct {
		Traces []telemetry.Trace `json:"traces"`
	}{telemetry.RecentTraces()}) //nolint:errcheck
}

// Server is a standalone diagnostics HTTP server with sane timeouts and
// graceful shutdown, for tools that want a debug sidecar next to their real
// work (dbbench -debug).
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan error
}

// Start listens on addr (host:port; port 0 picks a free one) and serves the
// diagnostics mux in a background goroutine until Shutdown.
func Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debugserve: %w", err)
	}
	mux := http.NewServeMux()
	Register(mux)
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: ReadHeaderTimeout,
		},
		done: make(chan error, 1),
	}
	go func() {
		err := s.srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.done <- err
	}()
	return s, nil
}

// Addr returns the server's bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown gracefully stops the server: no new connections, in-flight
// requests drained until ctx expires. It returns the first error from either
// the serve loop or the shutdown itself.
func (s *Server) Shutdown(ctx context.Context) error {
	shutErr := s.srv.Shutdown(ctx)
	serveErr := <-s.done
	if serveErr != nil {
		return serveErr
	}
	return shutErr
}
