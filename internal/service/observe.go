package service

import (
	"context"
	"encoding/json"
	"math"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Request-scoped observability: every request gets a trace identity (minted
// or propagated via X-Trace-Id), a deterministic sampling decision, a root
// span, labeled Prometheus-style metrics, and — when an access log is
// configured — one structured JSON line. Handlers fill a requestMeta carried
// in the context so the rim can attribute engine access counts, cache
// traffic, and degradation to the request without changing handler return
// types.

// Trace propagation headers. A request may carry its own 16-hex-digit
// X-Trace-Id (e.g. minted by a load balancer or a retrying client); the
// response always echoes the ID actually used. X-Trace-Sample: 1 forces the
// request to be sampled regardless of the configured rate, which is how
// tests and operators pull a span tree on demand.
const (
	TraceIDHeader     = "X-Trace-Id"
	TraceSampleHeader = "X-Trace-Sample"
	TraceSampledNote  = "X-Trace-Sampled"
)

// DeadlineHeader lets a client cap how long the server may spend on its
// request, in whole milliseconds. The resulting deadline propagates through
// the request context into admission (deadline-aware shedding), the topk
// degradation ladder, and the engines themselves (in-flight work stops). A
// missing header falls back to Config.DefaultDeadline; Config.MaxDeadline
// caps whatever the client asks for.
const DeadlineHeader = "X-Deadline-Ms"

// requestBudget resolves the request's deadline budget from the header and
// config. ok is false (with a message) when the header is malformed.
func (s *Service) requestBudget(r *http.Request) (budget time.Duration, ok bool, msg string) {
	budget = s.cfg.DefaultDeadline
	if h := r.Header.Get(DeadlineHeader); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return 0, false, "invalid " + DeadlineHeader + " header (want a positive integer of milliseconds)"
		}
		budget = time.Duration(ms) * time.Millisecond
	}
	if s.cfg.MaxDeadline > 0 && (budget == 0 || budget > s.cfg.MaxDeadline) {
		budget = s.cfg.MaxDeadline
	}
	return budget, true, ""
}

// requestMeta is the per-request accounting handlers fill for the rim.
// Cache counters are atomics because aggregation fans distance probes out
// across ParallelEach workers.
type requestMeta struct {
	access      AccessSummary
	degraded    bool
	defects     int
	shedReason  string // non-empty when admission shed the request
	ladderLevel string // non-empty when the ladder degraded the answer
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

type metaKey struct{}

// metaFrom returns the request's meta, or nil outside an instrumented
// request (direct tenant method calls in tests).
func metaFrom(ctx context.Context) *requestMeta {
	m, _ := ctx.Value(metaKey{}).(*requestMeta)
	return m
}

// accessLogLine is one structured access-log record.
type accessLogLine struct {
	Time        string `json:"time"`
	TraceID     string `json:"trace_id"`
	Sampled     bool   `json:"sampled"`
	Tenant      string `json:"tenant"`
	Endpoint    string `json:"endpoint"`
	Status      int    `json:"status"`
	LatencyNs   int64  `json:"latency_ns"`
	Sequential  int    `json:"sequential"`
	Random      int    `json:"random"`
	CacheHits   int64  `json:"cache_hits"`
	CacheMisses int64  `json:"cache_misses"`
	Degraded    bool   `json:"degraded"`
	Defects     int    `json:"defects"`
	DeadlineMs  int64  `json:"deadline_ms,omitempty"`
	Shed        string `json:"shed,omitempty"`
	Ladder      string `json:"ladder,omitempty"`
}

// logAccess writes one JSON line; the mutex serializes writers so concurrent
// requests never interleave bytes mid-line.
func (s *Service) logAccess(line accessLogLine) {
	if s.cfg.AccessLog == nil {
		return
	}
	b, err := json.Marshal(line)
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.logMu.Lock()
	s.cfg.AccessLog.Write(b) //nolint:errcheck // best-effort log sink
	s.logMu.Unlock()
}

// tenantLabel bounds the tenant label: endpoints without a tenant path
// segment ("/stats", "/healthz") share the "-" series.
func tenantLabel(r *http.Request) string {
	if t := r.PathValue("tenant"); t != "" {
		return t
	}
	return "-"
}

// instrument wraps an apiHandler with the service's per-request plumbing:
// body cap, trace identity + sampling + root span, labeled metrics, latency
// histograms (both the unlabeled service registry and the per-tenant labeled
// family), always-on request/error tallies, the access log, and uniform JSON
// rendering.
func (s *Service) instrument(op string, h apiHandler) http.HandlerFunc {
	hist := s.reg.Histogram("http." + op + ".latency_ns")
	stats := s.endpoints[op]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		stats.requests.Add(1)
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}

		traceID, ok := telemetry.ParseTraceID(r.Header.Get(TraceIDHeader))
		if !ok {
			traceID = rand.Uint64()
		}
		sampled := telemetry.Enabled() &&
			(r.Header.Get(TraceSampleHeader) == "1" ||
				telemetry.SampleTrace(traceID, s.cfg.TraceSampleRate))
		meta := &requestMeta{}
		tctx := telemetry.WithTrace(context.WithValue(r.Context(), metaKey{}, meta), traceID, sampled)
		w.Header().Set(TraceIDHeader, telemetry.TraceIDString(traceID))
		if sampled {
			w.Header().Set(TraceSampledNote, "1")
		}

		rctx, root := telemetry.Start(tctx, "http."+op)
		budget, budgetOK, budgetMsg := s.requestBudget(r)
		var result any
		var apiErr *apiError
		if !budgetOK {
			apiErr = fail(http.StatusBadRequest, "%s", budgetMsg)
		} else if budget > 0 {
			// The deadline budget rides the request context: admission sheds
			// against it, the ladder selects by what remains of it, and the
			// engines abort on it.
			dctx, cancel := context.WithTimeout(rctx, budget)
			result, apiErr = h(w, r.WithContext(dctx))
			cancel()
		} else {
			result, apiErr = h(w, r.WithContext(rctx))
		}
		status := http.StatusOK
		if apiErr != nil {
			status = apiErr.status
			meta.defects += len(apiErr.defects)
		}
		root.End()

		elapsed := time.Since(start).Nanoseconds()
		tenant := tenantLabel(r)
		hist.Observe(elapsed)
		s.mRequests.With(tenant, op, strconv.Itoa(status)).Inc()
		s.mLatency.With(tenant, op).Observe(elapsed)
		if meta.access.Sequential > 0 {
			s.mSequential.With(tenant).Add(int64(meta.access.Sequential))
		}
		if meta.access.Random > 0 {
			s.mRandom.With(tenant).Add(int64(meta.access.Random))
		}
		if hits := meta.cacheHits.Load(); hits > 0 {
			s.mCacheHits.With(tenant).Add(hits)
		}
		if misses := meta.cacheMisses.Load(); misses > 0 {
			s.mCacheMisses.With(tenant).Add(misses)
		}
		if meta.degraded {
			s.mDegraded.With(tenant).Inc()
		}
		telemetry.FinishTrace(tctx, telemetry.TraceMeta{Tenant: tenant, Endpoint: op, Status: status})
		s.logAccess(accessLogLine{
			Time:        start.UTC().Format(time.RFC3339Nano),
			TraceID:     telemetry.TraceIDString(traceID),
			Sampled:     sampled,
			Tenant:      tenant,
			Endpoint:    op,
			Status:      status,
			LatencyNs:   elapsed,
			Sequential:  meta.access.Sequential,
			Random:      meta.access.Random,
			CacheHits:   meta.cacheHits.Load(),
			CacheMisses: meta.cacheMisses.Load(),
			Degraded:    meta.degraded,
			Defects:     meta.defects,
			DeadlineMs:  budget.Milliseconds(),
			Shed:        meta.shedReason,
			Ladder:      meta.ladderLevel,
		})

		if apiErr != nil {
			stats.errors.Add(1)
			resp := ErrorResponse{
				Error:   apiErr.msg,
				Defects: apiErr.defects,
				Dropped: apiErr.dropped,
			}
			// Shed responses tell the client when to come back: Retry-After
			// in whole seconds (minimum 1 — every 429 carries the header).
			if apiErr.retryAfter > 0 || apiErr.status == http.StatusTooManyRequests {
				secs := int(math.Ceil(apiErr.retryAfter.Seconds()))
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				resp.RetryAfterS = secs
			}
			writeJSON(w, apiErr.status, resp)
			return
		}
		writeJSON(w, http.StatusOK, result)
	}
}

// handleMetrics renders the Prometheus text exposition: the service's
// labeled families first, then the service registry's per-endpoint
// instruments under rankserve_server_*, then the process-wide default
// registry under rankties_*. The three prefixes cannot collide, so every
// family appears exactly once per scrape.
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.labeled.WritePrometheus(w); err != nil {
		return
	}
	if err := s.reg.WritePrometheus(w, "rankserve_server_"); err != nil {
		return
	}
	telemetry.Default.WritePrometheus(w, "rankties_") //nolint:errcheck // client gone
}

// spanAttrsFromAccess stamps an engine span with the request's
// AccessAccountant totals, the per-query face of the Fagin–Lotem–Naor
// middleware cost model.
func spanAttrsFromAccess(sp *telemetry.Span, a AccessSummary, degraded bool) {
	sp.SetAttr("sequential", int64(a.Sequential))
	sp.SetAttr("random", int64(a.Random))
	sp.SetAttr("bucket_ios", int64(a.BucketIOs))
	sp.SetAttr("max_depth", int64(a.MaxDepth))
	if degraded {
		sp.SetAttr("degraded", 1)
	}
}
