package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/ranking"
)

// catalog is one immutable ensemble of ranking lists over a shared domain.
// A catalog value is never mutated after it is stored in a tenant: submits
// and appends build a fresh catalog and swap the pointer, so queries that
// snapshotted the old value keep computing on consistent data with no locks
// held.
type catalog struct {
	dom      *ranking.Domain
	rankings []*ranking.PartialRanking
}

// tenant is one isolated namespace of catalogs plus the tenant's always-on
// share of the distance-cache traffic. Cache hit/miss attribution is per
// tenant while the cache itself is shared: the sum of all tenants' hits and
// misses equals the shared cache's totals, because every service-side probe
// goes through cachedDistance below.
type tenant struct {
	name string

	mu       sync.RWMutex
	catalogs map[string]*catalog

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

func newTenant(name string) *tenant {
	return &tenant{name: name, catalogs: make(map[string]*catalog)}
}

// getCatalog snapshots one catalog by name.
func (t *tenant) getCatalog(name string) (*catalog, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c, ok := t.catalogs[name]
	return c, ok
}

// putCatalog stores (or replaces) a catalog, enforcing the per-tenant
// catalog cap on creation. Reports whether the cap admitted it.
func (t *tenant) putCatalog(name string, c *catalog, maxCatalogs int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.catalogs[name]; !exists && len(t.catalogs) >= maxCatalogs {
		return false
	}
	t.catalogs[name] = c
	return true
}

// deleteCatalog removes a catalog; reports whether it existed.
func (t *tenant) deleteCatalog(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.catalogs[name]; !ok {
		return false
	}
	delete(t.catalogs, name)
	return true
}

// catalogNames returns the tenant's catalog names, sorted.
func (t *tenant) catalogNames() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	names := make([]string, 0, len(t.catalogs))
	for n := range t.catalogs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// rankingCount sums the tenant's stored lists across catalogs.
func (t *tenant) rankingCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	total := 0
	for _, c := range t.catalogs {
		total += len(c.rankings)
	}
	return total
}

// cachedDistance wraps a workspace distance with the shared cache, like
// metrics.Cached, but attributes each probe to the tenant: hits and misses
// land in the tenant's always-on counters as well as the cache's own. This
// is the only path service queries use to probe the cache, which is what
// makes per-tenant stats sum exactly to the shared totals. A non-nil meta
// additionally attributes the probes to the current request (per-request
// cache columns in the access log and the request's cache span).
func (t *tenant) cachedDistance(c *cache.Cache, id uint32, d metrics.DistanceWS, meta *requestMeta) metrics.DistanceWS {
	return func(ws *metrics.Workspace, a, b *ranking.PartialRanking) (float64, error) {
		k := cache.PairKey(id, a.Fingerprint(), b.Fingerprint())
		if v, ok := c.Get(k); ok {
			t.cacheHits.Add(1)
			if meta != nil {
				meta.cacheHits.Add(1)
			}
			return v, nil
		}
		t.cacheMisses.Add(1)
		if meta != nil {
			meta.cacheMisses.Add(1)
		}
		v, err := d(ws, a, b)
		if err != nil {
			return 0, err
		}
		c.Put(k, v)
		return v, nil
	}
}

// metricByName resolves the wire name of a distance metric to its cache id
// and workspace kernel. The four names are the paper's pairwise metrics.
func metricByName(name string) (uint32, metrics.DistanceWS, error) {
	switch name {
	case "", "kprof":
		return metrics.CacheIDKProf, metrics.KProfWS, nil
	case "fprof":
		return metrics.CacheIDFProf, metrics.FProfWS, nil
	case "khaus":
		return metrics.CacheIDKHaus, metrics.KHausWS, nil
	case "fhaus":
		return metrics.CacheIDFHaus, metrics.FHausWS, nil
	default:
		return 0, nil, fmt.Errorf("unknown metric %q (want kprof, fprof, khaus, or fhaus)", name)
	}
}

// remapToDomain rebuilds rankings parsed against newDom as rankings over
// oldDom, matching elements by name. Appending to a catalog parses the new
// body with a fresh domain (the text codec interns names in encounter
// order), so element IDs need not line up even when the name sets match;
// remapping by name makes append order-insensitive. Every name must already
// exist in oldDom and the domains must be the same size, since every stored
// ranking covers the whole domain.
func remapToDomain(oldDom, newDom *ranking.Domain, rankings []*ranking.PartialRanking) ([]*ranking.PartialRanking, error) {
	if newDom.Size() != oldDom.Size() {
		return nil, fmt.Errorf("appended lists cover %d elements, catalog has %d", newDom.Size(), oldDom.Size())
	}
	mapID := make([]int, newDom.Size())
	for id := 0; id < newDom.Size(); id++ {
		name := newDom.Name(id)
		old, ok := oldDom.ID(name)
		if !ok {
			return nil, fmt.Errorf("appended lists rank unknown element %q", name)
		}
		mapID[id] = old
	}
	out := make([]*ranking.PartialRanking, len(rankings))
	for i, pr := range rankings {
		buckets := make([][]int, pr.NumBuckets())
		for b := 0; b < pr.NumBuckets(); b++ {
			src := pr.Bucket(b)
			dst := make([]int, len(src))
			for j, e := range src {
				dst[j] = mapID[e]
			}
			buckets[b] = dst
		}
		remapped, err := ranking.FromBuckets(pr.N(), buckets)
		if err != nil {
			return nil, fmt.Errorf("remapping appended list %d: %w", i, err)
		}
		out[i] = remapped
	}
	return out, nil
}
