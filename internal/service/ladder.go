package service

import (
	"sync"
	"time"

	"repro/internal/topk"
)

// The topk degradation ladder: under deadline pressure the service walks
// down exact TA → θ-approximate ThresholdTopK → cached stale answer, trading
// answer quality for the certainty of answering inside the budget. Each
// level is strictly cheaper than the one above:
//
//   - exact: the requested engine (medrank or ta), full answer.
//   - approx: ThresholdTopKApprox with the configured θ — the FLN (1+θ)
//     early-stop variant, whose certificate ships in the response.
//   - stale: the last successful answer for the same (tenant, catalog,
//     algo, k), age-stamped, computed work zero.
//
// Level selection compares the remaining deadline budget against the
// admitted-work EWMA of engine service time: exact needs a comfortable
// 2× margin, approx runs down to half an EWMA, below that only a cached
// answer can land in time. Requests without a deadline always run exact
// (unless they ask for θ explicitly), so the ladder is invisible until the
// operator or client opts into budgets.
const (
	LadderExact  = "exact"
	LadderApprox = "approx"
	LadderStale  = "stale"
)

// Budget factors of chooseLevel, in units of the engine service-time EWMA.
const (
	exactBudgetFactor  = 2.0
	approxBudgetFactor = 0.5
)

// LadderInfo annotates a topk response served under ladder control.
type LadderInfo struct {
	// Level is the rung that produced the answer: exact, approx, or stale.
	Level string `json:"level"`
	// Theta is the approximation slack used (approx level only).
	Theta float64 `json:"theta,omitempty"`
	// Certificate is the FLN (1+θ) early-stop certificate (approx level).
	Certificate *topk.ApproxCertificate `json:"certificate,omitempty"`
	// AgeMs is the served answer's age (stale level only).
	AgeMs int64 `json:"age_ms,omitempty"`
	// Reason explains the selection, e.g. "budget 12ms < 2.0x ewma 31ms".
	Reason string `json:"reason,omitempty"`
}

// chooseLevel picks the ladder rung for a request with `remaining` budget
// given the engine service-time estimate. A zero estimate (no completed
// request yet) or no deadline selects exact: the ladder never degrades on a
// guess it cannot back with data.
func chooseLevel(remaining time.Duration, estNs float64, hasDeadline bool) string {
	if !hasDeadline || estNs <= 0 {
		return LadderExact
	}
	est := time.Duration(estNs)
	switch {
	case remaining >= time.Duration(exactBudgetFactor*float64(est)):
		return LadderExact
	case remaining >= time.Duration(approxBudgetFactor*float64(est)):
		return LadderApprox
	default:
		return LadderStale
	}
}

// staleKey identifies one cacheable topk answer. Theta is part of the key so
// explicit-θ answers never masquerade as exact ones; the effective cost ratio
// is too, because a CA answer's access summary (and its certified medians on
// degraded runs) depends on how often random access was scheduled.
type staleKey struct {
	tenant, catalog, algo string
	k                     int
	theta                 float64
	ratio                 int
}

// staleEntry is one stored answer with its birth time.
type staleEntry struct {
	resp   TopKResponse
	stored time.Time
}

// staleStore is a TTL-bounded map of last-known-good topk answers, the
// ladder's bottom rung. Capacity-bounded with arbitrary eviction: the store
// is a safety net, not a cache with a hit-rate SLO.
type staleStore struct {
	mu  sync.Mutex
	m   map[staleKey]staleEntry
	ttl time.Duration
	cap int
}

func newStaleStore(ttl time.Duration, capacity int) *staleStore {
	return &staleStore{m: make(map[staleKey]staleEntry), ttl: ttl, cap: capacity}
}

// put stores a fresh successful answer.
func (st *staleStore) put(k staleKey, resp TopKResponse) {
	st.mu.Lock()
	if _, exists := st.m[k]; !exists && len(st.m) >= st.cap {
		for victim := range st.m { // arbitrary eviction
			delete(st.m, victim)
			break
		}
	}
	st.m[k] = staleEntry{resp: resp, stored: time.Now()}
	st.mu.Unlock()
}

// get returns a stored answer younger than the TTL and its age.
func (st *staleStore) get(k staleKey) (TopKResponse, time.Duration, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.m[k]
	if !ok {
		return TopKResponse{}, 0, false
	}
	age := time.Since(e.stored)
	if age > st.ttl {
		delete(st.m, k)
		return TopKResponse{}, 0, false
	}
	return e.resp, age, true
}

// invalidate drops every stored answer for a tenant's catalog; called when
// the catalog's contents change so a stale answer is never staler than one
// TTL behind a *deleted or replaced* catalog. (Answers may still trail an
// appended-to catalog within the TTL; that is the documented contract.)
func (st *staleStore) invalidate(tenant, catalog string) {
	st.mu.Lock()
	for k := range st.m {
		if k.tenant == tenant && (catalog == "" || k.catalog == catalog) {
			delete(st.m, k)
		}
	}
	st.mu.Unlock()
}
