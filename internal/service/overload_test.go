package service

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// doReqHeaders is doReq with extra request headers, returning the response
// headers too.
func doReqHeaders(t *testing.T, method, url, body string, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b := make([]byte, 0, 1024)
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		b = append(b, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	return resp.StatusCode, b, resp.Header
}

// waitUntil polls cond until it holds or the deadline trips the test.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDeadlineHeaderValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", corpus, "")
	url := ts.URL + "/v1/tenants/acme/catalogs/movies/topk"

	for _, bad := range []string{"nope", "-5", "0", "1.5"} {
		status, b, _ := doReqHeaders(t, http.MethodPost, url, `{"k": 2}`,
			map[string]string{DeadlineHeader: bad})
		if status != http.StatusBadRequest {
			t.Errorf("%s=%q: status %d, want 400: %s", DeadlineHeader, bad, status, b)
		}
	}
	status, b, _ := doReqHeaders(t, http.MethodPost, url, `{"k": 2}`,
		map[string]string{DeadlineHeader: "5000"})
	if status != http.StatusOK {
		t.Fatalf("valid deadline: status %d: %s", status, b)
	}
	resp := decode[TopKResponse](t, b)
	// A generous budget with a cold EWMA runs exact; the ladder annotation
	// records that the request ran under budget control.
	if resp.Ladder == nil || resp.Ladder.Level != LadderExact {
		t.Errorf("ladder under generous budget = %+v, want exact", resp.Ladder)
	}
}

func TestMaxDeadlineCapsClientBudget(t *testing.T) {
	svc, ts := testServer(t, Config{MaxDeadline: 50 * time.Millisecond})
	putCatalog(t, ts, "acme", "movies", corpus, "")
	// Ask for 60s; the cap must bring it down to 50ms. Verified indirectly:
	// the access-log deadline would show it, but cheaper is to check the
	// request still succeeds and the service config clamped (whitebox).
	budget, ok, _ := svc.requestBudget(&http.Request{Header: http.Header{DeadlineHeader: []string{"60000"}}})
	if !ok || budget != 50*time.Millisecond {
		t.Fatalf("requestBudget = %v ok=%v, want 50ms", budget, ok)
	}
	// And with no header at all, the cap still applies as the default.
	budget, ok, _ = svc.requestBudget(&http.Request{Header: http.Header{}})
	if !ok || budget != 50*time.Millisecond {
		t.Fatalf("requestBudget (no header) = %v ok=%v, want 50ms", budget, ok)
	}
}

func TestRateLimitSheds429WithRetryAfter(t *testing.T) {
	svc, ts := testServer(t, Config{RatePerSec: 0.5, RateBurst: 1})
	putCatalog(t, ts, "acme", "movies", corpus, "")
	url := ts.URL + "/v1/tenants/acme/catalogs/movies/topk"

	status, b, _ := doReqHeaders(t, http.MethodPost, url, `{"k": 2}`, nil)
	if status != http.StatusOK {
		t.Fatalf("first request: %d: %s", status, b)
	}
	status, b, hdr := doReqHeaders(t, http.MethodPost, url, `{"k": 2}`, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429: %s", status, b)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", hdr.Get("Retry-After"))
	}
	er := decode[ErrorResponse](t, b)
	if er.RetryAfterS < 1 {
		t.Errorf("body retry_after_s = %d, want >= 1", er.RetryAfterS)
	}
	if !strings.Contains(er.Error, "rate") {
		t.Errorf("error %q does not mention the rate limit", er.Error)
	}
	if got := svc.shedRate.Load(); got != 1 {
		t.Errorf("shedRate = %d, want 1", got)
	}

	// Rate limiting is per tenant: another tenant is untouched.
	putCatalog(t, ts, "beta", "movies", corpus, "")
	waitUntil(t, "beta's bucket to refill", func() bool {
		status, _, _ := doReqHeaders(t, http.MethodPost,
			ts.URL+"/v1/tenants/beta/catalogs/movies/topk", `{"k": 2}`, nil)
		return status == http.StatusOK
	})
}

// slowTopKBody is a resilient+chaos request whose per-access latency makes
// its duration deterministic-ish and long: it parks an engine slot.
func slowTopKBody(latencyMs int) string {
	return fmt.Sprintf(`{"k": 6, "resilient": true, "chaos": {"seed": 7, "latency_ms": %d}}`, latencyMs)
}

func TestQueueFullShedsAndLIFOServes(t *testing.T) {
	svc, ts := testServer(t, Config{Workers: 1, QueueDepth: 1})
	putCatalog(t, ts, "acme", "movies", deepCorpus, "")
	url := ts.URL + "/v1/tenants/acme/catalogs/movies/topk"

	// Park the only engine slot on a slow chaos-latency query.
	type result struct {
		status int
		body   []byte
	}
	slowDone := make(chan result, 1)
	go func() {
		st, b, _ := doReqHeaders(t, http.MethodPost, url, slowTopKBody(20), nil)
		slowDone <- result{st, b}
	}()
	waitUntil(t, "slot occupied", func() bool { return svc.adm.inflight() == 1 })

	// Fill the single queue slot.
	queuedDone := make(chan result, 1)
	go func() {
		st, b, _ := doReqHeaders(t, http.MethodPost, url, `{"k": 2}`, nil)
		queuedDone <- result{st, b}
	}()
	waitUntil(t, "queue occupied", func() bool { return svc.adm.queueLen() == 1 })

	// The next request must shed: queue_full, 429, Retry-After present.
	status, b, hdr := doReqHeaders(t, http.MethodPost, url, `{"k": 2}`, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-queue request: %d, want 429: %s", status, b)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("queue_full shed missing Retry-After header")
	}
	if got := svc.shedQueue.Load(); got != 1 {
		t.Errorf("shedQueue = %d, want 1", got)
	}

	// Both the parked and the queued request must complete once the slot
	// frees.
	for i, ch := range []chan result{slowDone, queuedDone} {
		select {
		case res := <-ch:
			if res.status != http.StatusOK {
				t.Errorf("request %d finished %d: %s", i, res.status, res.body)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("request %d never completed", i)
		}
	}
}

// TestAdmitterDeadlineShed unit-tests the hopeless-deadline rejection: with
// the engine EWMA seeded and the queue deep, a request whose remaining
// budget is below the expected wait sheds immediately with reason deadline.
func TestAdmitterDeadlineShed(t *testing.T) {
	cfg := Config{Workers: 1, QueueDepth: 8}.withDefaults()
	svc := New(cfg)
	a := svc.adm
	a.serviceNs.Observe(float64(100 * time.Millisecond)) // EWMA: 100ms/job

	// Take the only slot.
	release, _, shed := a.acquire(context.Background(), "t")
	if shed != nil {
		t.Fatalf("first acquire shed: %+v", shed)
	}
	defer release()

	// Remaining budget 20ms, expected wait ~(1+1)*100ms: must shed.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, shed = a.acquire(ctx, "t")
	if shed == nil || shed.reason != ShedDeadline {
		t.Fatalf("hopeless-deadline acquire = %+v, want deadline shed", shed)
	}
	if shed.status != http.StatusTooManyRequests || shed.retryAfter <= 0 {
		t.Errorf("deadline shed status=%d retryAfter=%v, want 429 with positive hint", shed.status, shed.retryAfter)
	}

	// A queue-wait abandoned by cancellation releases its place.
	ctx2, cancel2 := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, shed := a.acquire(ctx2, "t")
		if shed == nil {
			t.Error("canceled waiter was granted")
		}
	}()
	waitUntil(t, "waiter enqueued", func() bool { return a.queueLen() == 1 })
	cancel2()
	wg.Wait()
	if got := a.queueLen(); got != 0 {
		t.Errorf("queue length after abandoned waiter = %d, want 0", got)
	}
}

func TestLadderExplicitTheta(t *testing.T) {
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", deepCorpus, "")
	url := ts.URL + "/v1/tenants/acme/catalogs/movies/topk"

	status, b, _ := doReqHeaders(t, http.MethodPost, url, `{"k": 3, "algo": "ta", "theta": 0.5}`, nil)
	if status != http.StatusOK {
		t.Fatalf("theta topk: %d: %s", status, b)
	}
	resp := decode[TopKResponse](t, b)
	if resp.Ladder == nil || resp.Ladder.Level != LadderApprox {
		t.Fatalf("ladder = %+v, want approx", resp.Ladder)
	}
	if resp.Ladder.Certificate == nil || resp.Ladder.Certificate.Theta != 0.5 {
		t.Fatalf("certificate = %+v, want theta 0.5", resp.Ladder.Certificate)
	}
	if resp.Ladder.Certificate.Ratio > 1.5+1e-9 {
		t.Errorf("certificate ratio %v exceeds 1+theta", resp.Ladder.Certificate.Ratio)
	}

	// theta=0 must be bit-identical to the exact TA answer.
	status, bExact, _ := doReqHeaders(t, http.MethodPost, url, `{"k": 3, "algo": "ta"}`, nil)
	if status != http.StatusOK {
		t.Fatalf("exact topk: %d", status)
	}
	status, bZero, _ := doReqHeaders(t, http.MethodPost, url, `{"k": 3, "algo": "ta", "theta": 0}`, nil)
	if status != http.StatusOK {
		t.Fatalf("theta=0 topk: %d", status)
	}
	exact, zero := decode[TopKResponse](t, bExact), decode[TopKResponse](t, bZero)
	if fmt.Sprint(exact.Winners) != fmt.Sprint(zero.Winners) ||
		fmt.Sprint(exact.Medians) != fmt.Sprint(zero.Medians) ||
		exact.TopK != zero.TopK || exact.Access != zero.Access {
		t.Errorf("theta=0 answer differs from exact:\nexact %+v\nzero  %+v", exact, zero)
	}
	if zero.Ladder == nil || zero.Ladder.Certificate == nil || zero.Ladder.Certificate.EarlyStop {
		t.Errorf("theta=0 certificate = %+v, want present without early stop", zero.Ladder)
	}

	// Validation: negative theta and resilient+theta are 400s.
	for _, bad := range []string{
		`{"k": 3, "theta": -0.1}`,
		`{"k": 3, "resilient": true, "theta": 0.5}`,
	} {
		if status, b, _ := doReqHeaders(t, http.MethodPost, url, bad, nil); status != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400: %s", bad, status, b)
		}
	}
}

func TestLadderStaleServesCachedAnswer(t *testing.T) {
	svc, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", corpus, "")
	url := ts.URL + "/v1/tenants/acme/catalogs/movies/topk"

	// Prime the stale store with an exact answer.
	status, bFresh, _ := doReqHeaders(t, http.MethodPost, url, `{"k": 2}`, nil)
	if status != http.StatusOK {
		t.Fatalf("prime: %d", status)
	}
	fresh := decode[TopKResponse](t, bFresh)

	// Poison the engine estimate so any realistic budget selects stale.
	svc.adm.serviceNs.Observe(float64(1000 * time.Second))
	status, b, _ := doReqHeaders(t, http.MethodPost, url, `{"k": 2}`,
		map[string]string{DeadlineHeader: "250"})
	if status != http.StatusOK {
		t.Fatalf("stale-rung request: %d: %s", status, b)
	}
	resp := decode[TopKResponse](t, b)
	if resp.Ladder == nil || resp.Ladder.Level != LadderStale {
		t.Fatalf("ladder = %+v, want stale", resp.Ladder)
	}
	if resp.Ladder.AgeMs < 0 {
		t.Errorf("stale age = %d, want >= 0", resp.Ladder.AgeMs)
	}
	if resp.TopK != fresh.TopK || fmt.Sprint(resp.Winners) != fmt.Sprint(fresh.Winners) {
		t.Errorf("stale answer differs from the primed one: %+v vs %+v", resp, fresh)
	}
	if got := svc.ladderStale.Load(); got != 1 {
		t.Errorf("ladderStale = %d, want 1", got)
	}

	// A catalog replacement invalidates the stored answer; with no stale
	// available the ladder falls back to the approximate engine.
	putCatalog(t, ts, "acme", "movies", corpus, "")
	status, b, _ = doReqHeaders(t, http.MethodPost, url, `{"k": 2}`,
		map[string]string{DeadlineHeader: "250"})
	if status != http.StatusOK {
		t.Fatalf("post-invalidate request: %d: %s", status, b)
	}
	resp = decode[TopKResponse](t, b)
	if resp.Ladder == nil || resp.Ladder.Level != LadderApprox {
		t.Errorf("ladder after invalidation = %+v, want approx fallback", resp.Ladder)
	}
	if resp.Ladder != nil && resp.Ladder.Certificate == nil {
		t.Error("approx fallback missing certificate")
	}
}

func TestLadderApproxUnderModerateBudget(t *testing.T) {
	svc, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", deepCorpus, "")
	url := ts.URL + "/v1/tenants/acme/catalogs/movies/topk"

	// EWMA 300ms, budget 400ms: under exact's 2x bar, over approx's 0.5x.
	svc.adm.serviceNs.Observe(float64(300 * time.Millisecond))
	status, b, _ := doReqHeaders(t, http.MethodPost, url, `{"k": 3}`,
		map[string]string{DeadlineHeader: "400"})
	if status != http.StatusOK {
		t.Fatalf("approx-rung request: %d: %s", status, b)
	}
	resp := decode[TopKResponse](t, b)
	if resp.Ladder == nil || resp.Ladder.Level != LadderApprox {
		t.Fatalf("ladder = %+v, want approx", resp.Ladder)
	}
	if resp.Ladder.Certificate == nil || resp.Ladder.Theta <= 0 {
		t.Errorf("approx ladder missing certificate/theta: %+v", resp.Ladder)
	}
	if got := svc.ladderApprox.Load(); got < 1 {
		t.Errorf("ladderApprox = %d, want >= 1", got)
	}
}

func TestOverloadStatsAndMetricsExposed(t *testing.T) {
	svc, ts := testServer(t, Config{RatePerSec: 0.1, RateBurst: 1})
	putCatalog(t, ts, "acme", "movies", corpus, "")
	url := ts.URL + "/v1/tenants/acme/catalogs/movies/topk"
	doReqHeaders(t, http.MethodPost, url, `{"k": 2}`, nil) // consumes the burst
	status, _, _ := doReqHeaders(t, http.MethodPost, url, `{"k": 2}`, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429", status)
	}

	st, b := doReq(t, http.MethodGet, ts.URL+"/stats", "")
	if st != http.StatusOK {
		t.Fatalf("/stats: %d", st)
	}
	stats := decode[StatsResponse](t, b)
	if stats.Overload.ShedRateLimit != 1 {
		t.Errorf("stats shed_rate_limit = %d, want 1", stats.Overload.ShedRateLimit)
	}
	if stats.Overload.EngineEwmaNs <= 0 {
		t.Errorf("stats engine_ewma_ns = %d, want > 0 after a served query", stats.Overload.EngineEwmaNs)
	}

	st, b = doReq(t, http.MethodGet, ts.URL+"/metrics", "")
	if st != http.StatusOK {
		t.Fatalf("/metrics: %d", st)
	}
	text := string(b)
	if !strings.Contains(text, `rankserve_shed_total{reason="rate_limit",tenant="acme"}`) &&
		!strings.Contains(text, `rankserve_shed_total{tenant="acme",reason="rate_limit"}`) {
		t.Errorf("/metrics missing rankserve_shed_total series:\n%.2000s", text)
	}
	if !strings.Contains(text, "rankserve_queue_depth") {
		t.Error("/metrics missing rankserve_queue_depth gauge")
	}
	_ = svc
}

// TestDrainUnderSaturation is the graceful-shutdown-under-load regression
// test: with the engine slot parked and the wait queue full, BeginDrain must
// (1) fast-fail every queued-but-unstarted request with 503, (2) reject new
// arrivals with 503, and (3) let the in-flight request run to completion —
// no goroutine may be left waiting.
func TestDrainUnderSaturation(t *testing.T) {
	svc, ts := testServer(t, Config{Workers: 1, QueueDepth: 2})
	putCatalog(t, ts, "acme", "movies", deepCorpus, "")
	url := ts.URL + "/v1/tenants/acme/catalogs/movies/topk"

	type result struct {
		status  int
		body    []byte
		elapsed time.Duration
	}

	// Park the only engine slot on a slow chaos-latency query.
	slowDone := make(chan result, 1)
	go func() {
		start := time.Now()
		st, b, _ := doReqHeaders(t, http.MethodPost, url, slowTopKBody(25), nil)
		slowDone <- result{st, b, time.Since(start)}
	}()
	waitUntil(t, "slot occupied", func() bool { return svc.adm.inflight() == 1 })

	// Fill both queue slots with ordinary queries.
	queuedDone := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			start := time.Now()
			st, b, _ := doReqHeaders(t, http.MethodPost, url, `{"k": 2}`, nil)
			queuedDone <- result{st, b, time.Since(start)}
		}()
	}
	waitUntil(t, "queue saturated", func() bool { return svc.adm.queueLen() == 2 })

	// Saturated: one more request sheds queue_full before the drain begins.
	if status, b, _ := doReqHeaders(t, http.MethodPost, url, `{"k": 2}`, nil); status != http.StatusTooManyRequests {
		t.Fatalf("pre-drain over-queue request: %d, want 429: %s", status, b)
	}

	// Drain. Both queued waiters must return promptly with 503, well before
	// the parked query's chaos latency would have freed the slot for them.
	svc.BeginDrain()
	for i := 0; i < 2; i++ {
		select {
		case res := <-queuedDone:
			if res.status != http.StatusServiceUnavailable {
				t.Errorf("queued request %d after drain: %d, want 503: %s", i, res.status, res.body)
			}
			er := decode[ErrorResponse](t, res.body)
			if !strings.Contains(er.Error, "draining") {
				t.Errorf("queued request %d error %q does not mention draining", i, er.Error)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued request did not fast-fail on drain")
		}
	}
	if got := svc.adm.queueLen(); got != 0 {
		t.Errorf("queue length after drain = %d, want 0", got)
	}

	// New arrivals during the drain are refused outright.
	status, b, _ := doReqHeaders(t, http.MethodPost, url, `{"k": 2}`, nil)
	if status != http.StatusServiceUnavailable {
		t.Errorf("request during drain: %d, want 503: %s", status, b)
	}

	// The in-flight request is not interrupted by the drain.
	select {
	case res := <-slowDone:
		if res.status != http.StatusOK {
			t.Errorf("in-flight request finished %d during drain: %s", res.status, res.body)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight request never completed after drain")
	}

	// The books: one queue_full shed pre-drain, three draining sheds (two
	// queued waiters aborted + one refused arrival).
	if got := svc.shedQueue.Load(); got != 1 {
		t.Errorf("shedQueue = %d, want 1", got)
	}
	if got := svc.shedDraining.Load(); got != 3 {
		t.Errorf("shedDraining = %d, want 3", got)
	}
	// BeginDrain is idempotent.
	svc.BeginDrain()
}
