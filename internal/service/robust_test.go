package service

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/ranking"
	"repro/internal/robust"
	"repro/internal/telemetry"
	"repro/internal/topk"
)

// spamCorpus is deepCorpus's voters: voter 3 is the exact reversal of voter
// 0 and disagrees with everyone, so reliability weighting must rank it least
// reliable and trim=1 must drop exactly index 3.
const spamCorpus = deepCorpus

func TestAggregateRobustModes(t *testing.T) {
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", spamCorpus, "")

	rankings, _, err := ranking.ParseLines(strings.NewReader(spamCorpus))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"trimmed-borda", "weighted-median", "minmax"} {
		body := fmt.Sprintf(`{"robust": {"mode": %q, "trim": 1}}`, mode)
		status, b := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/aggregate", body)
		if status != http.StatusOK {
			t.Fatalf("robust aggregate (%s) = %d: %s", mode, status, b)
		}
		resp := decode[AggregateResponse](t, b)
		if resp.Robust == nil {
			t.Fatalf("%s: no robust result in response", mode)
		}
		if resp.Robust.Mode != mode || resp.Robust.Trim != 1 {
			t.Errorf("%s: echoed mode/trim = %q/%d", mode, resp.Robust.Mode, resp.Robust.Trim)
		}
		if len(resp.Robust.Weights) != len(rankings) {
			t.Errorf("%s: %d weights for %d lists", mode, len(resp.Robust.Weights), len(rankings))
		}
		if fmt.Sprint(resp.Robust.Trimmed) != "[3]" {
			t.Errorf("%s: trimmed %v, want the reversal voter [3]", mode, resp.Robust.Trimmed)
		}
		if resp.Robust.Survivors != len(rankings)-1 {
			t.Errorf("%s: survivors = %d, want %d", mode, resp.Robust.Survivors, len(rankings)-1)
		}
		if resp.Robust.Ranking == "" {
			t.Errorf("%s: empty robust ranking", mode)
		}
		if resp.Robust.MaxDistance > resp.Robust.SumDistance {
			t.Errorf("%s: max distance %v exceeds sum %v", mode, resp.Robust.MaxDistance, resp.Robust.SumDistance)
		}
		// The robust answer must match the library run exactly.
		want, err := robust.Aggregate(rankings, robust.Options{Mode: robust.Mode(mode), Trim: 1})
		if err != nil {
			t.Fatal(err)
		}
		status, b = doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/aggregate", body)
		if status != http.StatusOK {
			t.Fatalf("robust aggregate repeat = %d: %s", status, b)
		}
		again := decode[AggregateResponse](t, b)
		if again.Robust.Ranking != resp.Robust.Ranking {
			t.Errorf("%s: robust answer not deterministic over HTTP", mode)
		}
		for i, w := range want.Weights {
			if resp.Robust.Weights[i] != w {
				t.Errorf("%s: weight[%d] = %v over HTTP, library says %v", mode, i, resp.Robust.Weights[i], w)
			}
		}
	}
}

func TestAggregateRobustValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", spamCorpus, "")
	for _, body := range []string{
		`{"robust": {"mode": "mystery"}}`,
		`{"robust": {"mode": "minmax", "trim": -1}}`,
		`{"robust": {"mode": "minmax", "trim": 5}}`, // would trim every list
	} {
		status, b := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/aggregate", body)
		if status != http.StatusBadRequest {
			t.Errorf("body %s = %d, want 400: %s", body, status, b)
		}
	}
}

func TestTopKTrim(t *testing.T) {
	svc, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", spamCorpus, "")

	status, b := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/topk",
		`{"k": 3, "trim": 1}`)
	if status != http.StatusOK {
		t.Fatalf("trimmed topk = %d: %s", status, b)
	}
	resp := decode[TopKResponse](t, b)
	if resp.Trim == nil {
		t.Fatal("no trim summary in response")
	}
	if fmt.Sprint(resp.Trim.Dropped) != "[3]" || resp.Trim.Survivors != 4 {
		t.Errorf("trim summary %+v, want dropped [3] of 5", resp.Trim)
	}
	if len(resp.Trim.Weights) != 5 {
		t.Errorf("%d weights, want 5 (original lists)", len(resp.Trim.Weights))
	}
	// The answer must equal a direct query over the kept lists.
	rankings, dom, err := ranking.ParseLines(strings.NewReader(spamCorpus))
	if err != nil {
		t.Fatal(err)
	}
	kept := append(append([]*ranking.PartialRanking{}, rankings[:3]...), rankings[4])
	want, err := topk.MedRank(kept, 3, topk.GlobalMerge)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range want.Winners {
		if resp.Winners[i] != dom.Name(e) {
			t.Errorf("winner[%d] = %q, direct run over kept lists says %q", i, resp.Winners[i], dom.Name(e))
		}
	}
	// Trimming probed the distance cache under this tenant's attribution.
	if svc.Cache().Stats().Misses == 0 {
		t.Error("reliability trim did not touch the shared distance cache")
	}

	// An untrimmed query carries no trim summary.
	status, b = doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/topk", `{"k": 3}`)
	if status != http.StatusOK {
		t.Fatalf("plain topk = %d: %s", status, b)
	}
	if plain := decode[TopKResponse](t, b); plain.Trim != nil {
		t.Errorf("plain topk has trim summary %+v", plain.Trim)
	}

	// Out-of-range trims are rejected.
	for _, body := range []string{`{"k": 3, "trim": -1}`, `{"k": 3, "trim": 5}`} {
		status, b := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/topk", body)
		if status != http.StatusBadRequest {
			t.Errorf("body %s = %d, want 400: %s", body, status, b)
		}
	}
}

// TestTopKTrimResilientDegraded: trim composes with the resilient engine —
// the degraded annotation (survivor count, quality intervals) reflects the
// post-trim voter set, and lost-list indices come back in the ORIGINAL
// catalog's index space.
func TestTopKTrimResilientDegraded(t *testing.T) {
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", spamCorpus, "")

	const chaosSeed, k, trim = 7, 6, 1
	body := fmt.Sprintf(`{"k": %d, "resilient": true, "trim": %d, "chaos": {"seed": %d, "death_rate": 0.1}}`,
		k, trim, chaosSeed)
	status, b := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/topk", body)
	if status != http.StatusOK {
		t.Fatalf("trimmed resilient topk = %d: %s", status, b)
	}
	resp := decode[TopKResponse](t, b)
	if resp.Degraded == nil {
		t.Fatal("chaos run did not degrade")
	}
	if resp.Trim == nil || fmt.Sprint(resp.Trim.Dropped) != "[3]" {
		t.Fatalf("trim summary %+v, want dropped [3]", resp.Trim)
	}

	// Reproduce the engine run directly over the kept lists with the same
	// per-source chaos seeds; the service answer must match it exactly.
	rankings, _, err := ranking.ParseLines(strings.NewReader(spamCorpus))
	if err != nil {
		t.Fatal(err)
	}
	keptIdx := []int{0, 1, 2, 4}
	acc := telemetry.NewAccessAccountant(len(keptIdx))
	sources := make([]faults.Source, len(keptIdx))
	for i, orig := range keptIdx {
		src := faults.Inject(topk.NewListSource(rankings[orig], acc, i), faults.Plan{
			Seed:      chaosSeed + int64(i),
			DeathRate: 0.1,
		})
		sources[i] = faults.WithRetry(src, faults.DefaultRetryPolicy(), acc, i)
	}
	want, err := topk.MedRankOver(context.Background(), sources, k, topk.GlobalMerge, acc)
	if err != nil {
		t.Fatal(err)
	}
	if want.Degraded == nil {
		t.Fatal("direct run did not degrade; chaos plans diverged")
	}
	// Post-trim voter set: the direct run over the 4 kept lists and the
	// service agree on survivors and on every quality interval.
	if resp.Degraded.Survivors != want.Degraded.Survivors {
		t.Errorf("survivors = %d, direct run over kept lists says %d",
			resp.Degraded.Survivors, want.Degraded.Survivors)
	}
	if fmt.Sprint(resp.Degraded.MedianIntervals2) != fmt.Sprint(want.Degraded.MedianIntervals2) {
		t.Errorf("quality intervals %v, direct run says %v",
			resp.Degraded.MedianIntervals2, want.Degraded.MedianIntervals2)
	}
	// Original-index-space remap: service indices are keptIdx[direct indices].
	if len(resp.Degraded.Lost) != len(want.Degraded.Lost) {
		t.Fatalf("lost %v, direct run lost %v", resp.Degraded.Lost, want.Degraded.Lost)
	}
	for i, lost := range want.Degraded.Lost {
		if resp.Degraded.Lost[i] != keptIdx[lost] {
			t.Errorf("lost[%d] = %d, want original index %d", i, resp.Degraded.Lost[i], keptIdx[lost])
		}
		if resp.Degraded.Lost[i] == 3 {
			t.Errorf("lost list 3 reported, but list 3 was trimmed before the query")
		}
	}
}

// TestRobustMetricsExposed: the robust label families land on /metrics.
func TestRobustMetricsExposed(t *testing.T) {
	_, ts := testServer(t, Config{})
	putCatalog(t, ts, "acme", "movies", spamCorpus, "")
	status, b := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/aggregate",
		`{"robust": {"mode": "trimmed-borda", "trim": 2}}`)
	if status != http.StatusOK {
		t.Fatalf("robust aggregate = %d: %s", status, b)
	}
	status, b = doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/catalogs/movies/topk",
		`{"k": 3, "trim": 1}`)
	if status != http.StatusOK {
		t.Fatalf("trimmed topk = %d: %s", status, b)
	}
	status, b = doReq(t, http.MethodGet, ts.URL+"/metrics", "")
	if status != http.StatusOK {
		t.Fatalf("metrics = %d", status)
	}
	page := string(b)
	for _, want := range []string{
		`rankserve_robust_requests_total{tenant="acme",mode="trimmed-borda"} 1`,
		`rankserve_robust_trimmed_voters_total{tenant="acme"} 3`, // 2 (aggregate) + 1 (topk)
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}
