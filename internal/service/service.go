// Package service is the multi-tenant ranking-as-a-service layer: the state
// and policy that turn the repo's engines (median/threshold top-k,
// median-rank aggregation, pairwise-distance metrics) into a server the CLIs
// and cmd/rankserve both sit on.
//
// The layer owns what no single engine does:
//
//   - Tenancy: named tenants, each holding named catalogs of ranking lists
//     ingested through the hardened parser (strict or lenient, with
//     deterministic repair), isolated from each other.
//   - Admission: guard.Limits bounds every ingest, a body cap bounds every
//     request, and tenant/catalog counts are capped; every rejection is a
//     structured guard.Defect JSON document, not an opaque string.
//   - Shared compute: one sharded distance cache serves all tenants (the
//     duplicate-heavy workloads that justify the cache cross tenant
//     boundaries) with per-tenant hit/miss attribution, and one worker gate
//     sized to GOMAXPROCS keeps concurrent queries from oversubscribing the
//     machine the parallel engines already saturate.
//   - Observability: every endpoint opens a telemetry span and records its
//     latency into a service-owned registry, which a server publishes under
//     a namespaced expvar slot ("rankties.server") next to the process-wide
//     "rankties" registry.
//
// The package sits above ranking/metrics/aggregate/topk/faults/guard/cache
// and below cmd/rankserve; it knows nothing about flags or listeners.
package service

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"repro/internal/cache"
	"repro/internal/guard"
	"repro/internal/telemetry"
)

// Config bounds one Service. The zero value selects the defaults below.
type Config struct {
	// MaxTenants caps how many tenants may exist at once (default 64).
	MaxTenants int
	// MaxCatalogsPerTenant caps catalogs per tenant (default 64).
	MaxCatalogsPerTenant int
	// MaxBodyBytes caps a single request body (default 8 MiB). Oversized
	// bodies are rejected with a structured defect and HTTP 413.
	MaxBodyBytes int64
	// Limits is the per-tenant ingestion admission policy handed to
	// ranking.ParseLinesWith. Zero-valued fields fall back to
	// guard.DefaultLimits.
	Limits guard.Limits
	// CacheCapacity is the shared distance cache's entry budget
	// (cache.DefaultCapacity when <= 0).
	CacheCapacity int
	// Workers caps concurrently executing queries (default GOMAXPROCS).
	// Excess queries wait in the gate until a slot frees or their context
	// is canceled.
	Workers int
	// TraceSampleRate is the fraction of requests that collect a span tree
	// (deterministic in the trace ID; see telemetry.SampleTrace). 0 disables
	// rate sampling; a request can still force sampling with the
	// X-Trace-Sample header.
	TraceSampleRate float64
	// AccessLog, when non-nil, receives one structured JSON line per
	// request. Writes are serialized by the service.
	AccessLog io.Writer
}

// withDefaults fills the zero fields of a Config.
func (c Config) withDefaults() Config {
	if c.MaxTenants <= 0 {
		c.MaxTenants = 64
	}
	if c.MaxCatalogsPerTenant <= 0 {
		c.MaxCatalogsPerTenant = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if (c.Limits == guard.Limits{}) {
		c.Limits = guard.DefaultLimits()
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// endpointStats is the always-on per-endpoint tally surfaced by /stats,
// independent of whether gated telemetry is enabled.
type endpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64
}

// Service is the multi-tenant aggregation service. Construct with New; all
// methods and handlers are safe for concurrent use.
type Service struct {
	cfg   Config
	cache *cache.Cache
	reg   *telemetry.Registry
	sem   chan struct{}
	start time.Time

	mu      sync.RWMutex
	tenants map[string]*tenant

	// departed holds cache-attribution rows of recently deleted tenants so
	// churn-heavy load tests don't under-report: each row survives until the
	// next /stats snapshot reports it (marked deleted=true), then drops.
	departedMu sync.Mutex
	departed   map[string]TenantStats

	degraded  atomic.Int64 // queries answered in degraded mode
	endpoints map[string]*endpointStats
	inflight  *telemetry.Gauge
	logMu     sync.Mutex // serializes AccessLog writes

	// Labeled metric families backing GET /metrics.
	labeled      *telemetry.LabeledRegistry
	mRequests    telemetry.CounterVec   // {tenant, endpoint, status}
	mLatency     telemetry.HistogramVec // {tenant, endpoint}
	mSequential  telemetry.CounterVec   // {tenant}
	mRandom      telemetry.CounterVec   // {tenant}
	mCacheHits   telemetry.CounterVec   // {tenant}
	mCacheMisses telemetry.CounterVec   // {tenant}
	mDegraded    telemetry.CounterVec   // {tenant}
	mRobust      telemetry.CounterVec   // {tenant, mode}
	mRobustTrim  telemetry.CounterVec   // {tenant}
	mTenants     *telemetry.Gauge
}

// endpointNames is the fixed set of per-endpoint stat rows. Adding a handler
// means adding its operation name here so /stats covers it.
var endpointNames = []string{
	"put_catalog", "append_rankings", "get_catalog", "delete_catalog",
	"list_catalogs", "delete_tenant", "topk", "aggregate", "stats", "healthz",
}

// New builds a Service with the given bounds and a fresh shared distance
// cache. The service's endpoint-latency instruments live in their own
// registry (see Registry) so they can be published under a namespaced expvar
// slot without colliding with the process-wide default registry.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:       cfg,
		cache:     cache.New(cfg.CacheCapacity),
		reg:       telemetry.NewRegistry(),
		sem:       make(chan struct{}, cfg.Workers),
		start:     time.Now(),
		tenants:   make(map[string]*tenant),
		departed:  make(map[string]TenantStats),
		endpoints: make(map[string]*endpointStats, len(endpointNames)),
		labeled:   telemetry.NewLabeledRegistry(),
	}
	for _, name := range endpointNames {
		s.endpoints[name] = &endpointStats{}
	}
	s.mRequests = s.labeled.CounterVec("rankserve_requests_total",
		"Requests served, by tenant, endpoint, and HTTP status.", "tenant", "endpoint", "status")
	s.mLatency = s.labeled.HistogramVec("rankserve_request_latency_ns",
		"Request latency in nanoseconds (base-2 buckets), by tenant and endpoint.", "tenant", "endpoint")
	s.mSequential = s.labeled.CounterVec("rankserve_access_sequential_total",
		"Sequential (sorted) list accesses charged to queries, by tenant.", "tenant")
	s.mRandom = s.labeled.CounterVec("rankserve_access_random_total",
		"Random list accesses charged to queries, by tenant.", "tenant")
	s.mCacheHits = s.labeled.CounterVec("rankserve_cache_hits_total",
		"Shared distance-cache hits attributed to requests, by tenant.", "tenant")
	s.mCacheMisses = s.labeled.CounterVec("rankserve_cache_misses_total",
		"Shared distance-cache misses attributed to requests, by tenant.", "tenant")
	s.mDegraded = s.labeled.CounterVec("rankserve_degraded_queries_total",
		"Queries answered in degraded mode, by tenant.", "tenant")
	s.mRobust = s.labeled.CounterVec("rankserve_robust_requests_total",
		"Robust aggregations served, by tenant and robust mode.", "tenant", "mode")
	s.mRobustTrim = s.labeled.CounterVec("rankserve_robust_trimmed_voters_total",
		"Voters dropped by reliability trimming, by tenant.", "tenant")
	s.mTenants = s.labeled.GaugeVec("rankserve_tenants",
		"Live tenants.").With()
	s.inflight = s.labeled.GaugeVec("rankserve_inflight_requests",
		"Requests currently being served.").With()
	return s
}

// LabeledRegistry returns the labeled families behind GET /metrics (tests
// cross-check series against /stats).
func (s *Service) LabeledRegistry() *telemetry.LabeledRegistry { return s.labeled }

// Registry returns the service-owned telemetry registry holding the
// http.<op>.latency_ns histograms, for publication under a namespaced expvar
// name (telemetry.PublishExpvarNamed("rankties.server", svc.Registry())).
func (s *Service) Registry() *telemetry.Registry { return s.reg }

// Cache returns the shared distance cache (tests cross-check its totals
// against the per-tenant attributions).
func (s *Service) Cache() *cache.Cache { return s.cache }

// acquire takes one worker slot, waiting until a slot frees or ctx is
// canceled. Release by calling the returned func exactly once.
func (s *Service) acquire(ctx context.Context) (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// tenantFor returns the named tenant, creating it if the tenant cap allows.
// The bool reports whether the tenant exists (or was created); a false
// return means the cap rejected creation.
func (s *Service) tenantFor(name string, create bool) (*tenant, bool) {
	s.mu.RLock()
	t, ok := s.tenants[name]
	s.mu.RUnlock()
	if ok || !create {
		return t, ok
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return t, true
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		return nil, false
	}
	t = newTenant(name)
	s.tenants[name] = t
	s.mTenants.Set(int64(len(s.tenants)))
	return t, true
}

// deleteTenant removes a tenant and all its catalogs, parking its cache
// attribution in the departed set so the next /stats snapshot still reports
// it (deleted=true). Reports whether the tenant existed.
func (s *Service) deleteTenant(name string) bool {
	s.mu.Lock()
	t, ok := s.tenants[name]
	if !ok {
		s.mu.Unlock()
		return false
	}
	delete(s.tenants, name)
	s.mTenants.Set(int64(len(s.tenants)))
	s.mu.Unlock()

	s.departedMu.Lock()
	row, seen := s.departed[name]
	// A tenant deleted twice between snapshots (delete, recreate, delete)
	// accumulates: the row must account for all of the name's traffic.
	row.Name = name
	row.Deleted = true
	if seen {
		row.CacheHits += t.cacheHits.Load()
		row.CacheMisses += t.cacheMisses.Load()
	} else {
		row.CacheHits = t.cacheHits.Load()
		row.CacheMisses = t.cacheMisses.Load()
	}
	if total := row.CacheHits + row.CacheMisses; total > 0 {
		row.CacheHitRate = float64(row.CacheHits) / float64(total)
	}
	s.departed[name] = row
	s.departedMu.Unlock()
	return true
}

// takeDeparted drains the departed-tenant rows: each deleted tenant is
// reported in exactly one /stats snapshot.
func (s *Service) takeDeparted() []TenantStats {
	s.departedMu.Lock()
	defer s.departedMu.Unlock()
	if len(s.departed) == 0 {
		return nil
	}
	out := make([]TenantStats, 0, len(s.departed))
	for _, row := range s.departed {
		out = append(out, row)
	}
	s.departed = make(map[string]TenantStats)
	return out
}

// tenantsSnapshot returns the live tenants sorted by name.
func (s *Service) tenantsSnapshot() []*tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	return out
}
