// Package service is the multi-tenant ranking-as-a-service layer: the state
// and policy that turn the repo's engines (median/threshold top-k,
// median-rank aggregation, pairwise-distance metrics) into a server the CLIs
// and cmd/rankserve both sit on.
//
// The layer owns what no single engine does:
//
//   - Tenancy: named tenants, each holding named catalogs of ranking lists
//     ingested through the hardened parser (strict or lenient, with
//     deterministic repair), isolated from each other.
//   - Admission: guard.Limits bounds every ingest, a body cap bounds every
//     request, and tenant/catalog counts are capped; every rejection is a
//     structured guard.Defect JSON document, not an opaque string.
//   - Shared compute: one sharded distance cache serves all tenants (the
//     duplicate-heavy workloads that justify the cache cross tenant
//     boundaries) with per-tenant hit/miss attribution, and one worker gate
//     sized to GOMAXPROCS keeps concurrent queries from oversubscribing the
//     machine the parallel engines already saturate.
//   - Observability: every endpoint opens a telemetry span and records its
//     latency into a service-owned registry, which a server publishes under
//     a namespaced expvar slot ("rankties.server") next to the process-wide
//     "rankties" registry.
//
// The package sits above ranking/metrics/aggregate/topk/faults/guard/cache
// and below cmd/rankserve; it knows nothing about flags or listeners.
package service

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"repro/internal/cache"
	"repro/internal/guard"
	"repro/internal/telemetry"
)

// Config bounds one Service. The zero value selects the defaults below.
type Config struct {
	// MaxTenants caps how many tenants may exist at once (default 64).
	MaxTenants int
	// MaxCatalogsPerTenant caps catalogs per tenant (default 64).
	MaxCatalogsPerTenant int
	// MaxBodyBytes caps a single request body (default 8 MiB). Oversized
	// bodies are rejected with a structured defect and HTTP 413.
	MaxBodyBytes int64
	// Limits is the per-tenant ingestion admission policy handed to
	// ranking.ParseLinesWith. Zero-valued fields fall back to
	// guard.DefaultLimits.
	Limits guard.Limits
	// CacheCapacity is the shared distance cache's entry budget
	// (cache.DefaultCapacity when <= 0).
	CacheCapacity int
	// Workers caps concurrently executing queries (default GOMAXPROCS).
	// Excess queries wait in the gate until a slot frees or their context
	// is canceled.
	Workers int
	// QueueDepth bounds the admission wait queue (default 256): requests
	// beyond Workers in flight wait here (LIFO), and requests beyond the
	// depth are shed with 429.
	QueueDepth int
	// RatePerSec is the per-tenant sustained query rate (token bucket);
	// <= 0 disables rate limiting (the default).
	RatePerSec float64
	// RateBurst is the token bucket's capacity (default 2×RatePerSec, min 1).
	RateBurst int
	// DefaultDeadline is applied to every query request that doesn't carry
	// its own X-Deadline-Ms header; 0 (the default) means no deadline.
	DefaultDeadline time.Duration
	// MaxDeadline caps the deadline a client may request via X-Deadline-Ms;
	// 0 means uncapped.
	MaxDeadline time.Duration
	// ApproxTheta is the approximation slack the topk degradation ladder
	// uses when it steps down from exact to θ-approximate (default 0.5).
	ApproxTheta float64
	// StaleTTL bounds how old a cached answer the ladder's stale rung may
	// serve (default 5m).
	StaleTTL time.Duration
	// TraceSampleRate is the fraction of requests that collect a span tree
	// (deterministic in the trace ID; see telemetry.SampleTrace). 0 disables
	// rate sampling; a request can still force sampling with the
	// X-Trace-Sample header.
	TraceSampleRate float64
	// AccessLog, when non-nil, receives one structured JSON line per
	// request. Writes are serialized by the service.
	AccessLog io.Writer
}

// withDefaults fills the zero fields of a Config.
func (c Config) withDefaults() Config {
	if c.MaxTenants <= 0 {
		c.MaxTenants = 64
	}
	if c.MaxCatalogsPerTenant <= 0 {
		c.MaxCatalogsPerTenant = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if (c.Limits == guard.Limits{}) {
		c.Limits = guard.DefaultLimits()
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.ApproxTheta <= 0 {
		c.ApproxTheta = 0.5
	}
	if c.StaleTTL <= 0 {
		c.StaleTTL = 5 * time.Minute
	}
	return c
}

// endpointStats is the always-on per-endpoint tally surfaced by /stats,
// independent of whether gated telemetry is enabled.
type endpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64
}

// Service is the multi-tenant aggregation service. Construct with New; all
// methods and handlers are safe for concurrent use.
type Service struct {
	cfg   Config
	cache *cache.Cache
	reg   *telemetry.Registry
	adm   *admitter
	stale *staleStore
	start time.Time

	mu      sync.RWMutex
	tenants map[string]*tenant

	// departed holds cache-attribution rows of recently deleted tenants so
	// churn-heavy load tests don't under-report: each row survives until the
	// next /stats snapshot reports it (marked deleted=true), then drops.
	departedMu sync.Mutex
	departed   map[string]TenantStats

	degraded  atomic.Int64 // queries answered in degraded mode
	endpoints map[string]*endpointStats
	inflight  *telemetry.Gauge
	logMu     sync.Mutex // serializes AccessLog writes

	// Always-on overload tallies surfaced by /stats (atomics, not gated).
	shedRate     atomic.Int64
	shedQueue    atomic.Int64
	shedDeadline atomic.Int64
	shedDraining atomic.Int64
	ladderApprox atomic.Int64
	ladderStale  atomic.Int64

	// Labeled metric families backing GET /metrics.
	labeled      *telemetry.LabeledRegistry
	mRequests    telemetry.CounterVec   // {tenant, endpoint, status}
	mLatency     telemetry.HistogramVec // {tenant, endpoint}
	mSequential  telemetry.CounterVec   // {tenant}
	mRandom      telemetry.CounterVec   // {tenant}
	mCacheHits   telemetry.CounterVec   // {tenant}
	mCacheMisses telemetry.CounterVec   // {tenant}
	mDegraded    telemetry.CounterVec   // {tenant}
	mRobust      telemetry.CounterVec   // {tenant, mode}
	mRobustTrim  telemetry.CounterVec   // {tenant}
	mShed        telemetry.CounterVec   // {tenant, reason}
	mDegradedAns telemetry.CounterVec   // {tenant, level}
	mAlgo        telemetry.CounterVec   // {tenant, algo}
	mMwCost      telemetry.CounterVec   // {tenant, algo}
	mTenants     *telemetry.Gauge
	mQueueDepth  *telemetry.Gauge
}

// endpointNames is the fixed set of per-endpoint stat rows. Adding a handler
// means adding its operation name here so /stats covers it.
var endpointNames = []string{
	"put_catalog", "append_rankings", "get_catalog", "delete_catalog",
	"list_catalogs", "delete_tenant", "topk", "aggregate", "stats", "healthz",
}

// New builds a Service with the given bounds and a fresh shared distance
// cache. The service's endpoint-latency instruments live in their own
// registry (see Registry) so they can be published under a namespaced expvar
// slot without colliding with the process-wide default registry.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:       cfg,
		cache:     cache.New(cfg.CacheCapacity),
		reg:       telemetry.NewRegistry(),
		stale:     newStaleStore(cfg.StaleTTL, 1024),
		start:     time.Now(),
		tenants:   make(map[string]*tenant),
		departed:  make(map[string]TenantStats),
		endpoints: make(map[string]*endpointStats, len(endpointNames)),
		labeled:   telemetry.NewLabeledRegistry(),
	}
	for _, name := range endpointNames {
		s.endpoints[name] = &endpointStats{}
	}
	s.mRequests = s.labeled.CounterVec("rankserve_requests_total",
		"Requests served, by tenant, endpoint, and HTTP status.", "tenant", "endpoint", "status")
	s.mLatency = s.labeled.HistogramVec("rankserve_request_latency_ns",
		"Request latency in nanoseconds (base-2 buckets), by tenant and endpoint.", "tenant", "endpoint")
	s.mSequential = s.labeled.CounterVec("rankserve_access_sequential_total",
		"Sequential (sorted) list accesses charged to queries, by tenant.", "tenant")
	s.mRandom = s.labeled.CounterVec("rankserve_access_random_total",
		"Random list accesses charged to queries, by tenant.", "tenant")
	s.mCacheHits = s.labeled.CounterVec("rankserve_cache_hits_total",
		"Shared distance-cache hits attributed to requests, by tenant.", "tenant")
	s.mCacheMisses = s.labeled.CounterVec("rankserve_cache_misses_total",
		"Shared distance-cache misses attributed to requests, by tenant.", "tenant")
	s.mDegraded = s.labeled.CounterVec("rankserve_degraded_queries_total",
		"Queries answered in degraded mode, by tenant.", "tenant")
	s.mRobust = s.labeled.CounterVec("rankserve_robust_requests_total",
		"Robust aggregations served, by tenant and robust mode.", "tenant", "mode")
	s.mRobustTrim = s.labeled.CounterVec("rankserve_robust_trimmed_voters_total",
		"Voters dropped by reliability trimming, by tenant.", "tenant")
	s.mShed = s.labeled.CounterVec("rankserve_shed_total",
		"Requests shed by admission control, by tenant and reason.", "tenant", "reason")
	s.mDegradedAns = s.labeled.CounterVec("rankserve_degraded_answers_total",
		"Topk answers served below the exact ladder level, by tenant and level.", "tenant", "level")
	s.mAlgo = s.labeled.CounterVec("rankserve_topk_algo_total",
		"Top-k queries answered, by tenant and engine (medrank, ta, nra, ca).", "tenant", "algo")
	s.mMwCost = s.labeled.CounterVec("rankserve_middleware_cost_total",
		"FLN middleware cost (cs=1, cr=effective cost ratio) accumulated by top-k queries, by tenant and engine.", "tenant", "algo")
	s.mTenants = s.labeled.GaugeVec("rankserve_tenants",
		"Live tenants.").With()
	s.inflight = s.labeled.GaugeVec("rankserve_inflight_requests",
		"Requests currently being served.").With()
	s.mQueueDepth = s.labeled.GaugeVec("rankserve_queue_depth",
		"Requests waiting in the admission queue.").With()
	s.adm = newAdmitter(cfg, s.mQueueDepth)
	return s
}

// BeginDrain puts the service into drain mode ahead of listener shutdown:
// queued-but-unstarted requests fail fast with 503 and new query admissions
// are refused, while in-flight engines run to completion. Safe to call more
// than once.
func (s *Service) BeginDrain() { s.adm.beginDrain() }

// LabeledRegistry returns the labeled families behind GET /metrics (tests
// cross-check series against /stats).
func (s *Service) LabeledRegistry() *telemetry.LabeledRegistry { return s.labeled }

// Registry returns the service-owned telemetry registry holding the
// http.<op>.latency_ns histograms, for publication under a namespaced expvar
// name (telemetry.PublishExpvarNamed("rankties.server", svc.Registry())).
func (s *Service) Registry() *telemetry.Registry { return s.reg }

// Cache returns the shared distance cache (tests cross-check its totals
// against the per-tenant attributions).
func (s *Service) Cache() *cache.Cache { return s.cache }

// admitQuery runs a query request through the admission pipeline (tenant
// token bucket, concurrency gate with bounded LIFO queue, deadline-aware
// shedding, drain fast-fail) and converts a shed into a rendered apiError
// with its Retry-After hint, charging the shed metrics on the way out.
// On success release must be called exactly once.
func (s *Service) admitQuery(ctx context.Context, tenantName string) (release func(), state admissionState, apiErr *apiError) {
	release, state, shed := s.adm.acquire(ctx, tenantName)
	if shed == nil {
		return release, state, nil
	}
	s.mShed.With(tenantName, shed.reason).Inc()
	switch shed.reason {
	case ShedRateLimit:
		s.shedRate.Add(1)
	case ShedQueueFull:
		s.shedQueue.Add(1)
	case ShedDeadline:
		s.shedDeadline.Add(1)
	case ShedDraining:
		s.shedDraining.Add(1)
	}
	if meta := metaFrom(ctx); meta != nil {
		meta.shedReason = shed.reason
	}
	e := fail(shed.status, "query admission: %s", shed.msg)
	e.retryAfter = shed.retryAfter
	return nil, state, e
}

// tenantFor returns the named tenant, creating it if the tenant cap allows.
// The bool reports whether the tenant exists (or was created); a false
// return means the cap rejected creation.
func (s *Service) tenantFor(name string, create bool) (*tenant, bool) {
	s.mu.RLock()
	t, ok := s.tenants[name]
	s.mu.RUnlock()
	if ok || !create {
		return t, ok
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return t, true
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		return nil, false
	}
	t = newTenant(name)
	s.tenants[name] = t
	s.mTenants.Set(int64(len(s.tenants)))
	return t, true
}

// deleteTenant removes a tenant and all its catalogs, parking its cache
// attribution in the departed set so the next /stats snapshot still reports
// it (deleted=true). Reports whether the tenant existed.
func (s *Service) deleteTenant(name string) bool {
	s.mu.Lock()
	t, ok := s.tenants[name]
	if !ok {
		s.mu.Unlock()
		return false
	}
	delete(s.tenants, name)
	s.mTenants.Set(int64(len(s.tenants)))
	s.mu.Unlock()
	s.adm.forgetTenant(name)
	s.stale.invalidate(name, "")

	s.departedMu.Lock()
	row, seen := s.departed[name]
	// A tenant deleted twice between snapshots (delete, recreate, delete)
	// accumulates: the row must account for all of the name's traffic.
	row.Name = name
	row.Deleted = true
	if seen {
		row.CacheHits += t.cacheHits.Load()
		row.CacheMisses += t.cacheMisses.Load()
	} else {
		row.CacheHits = t.cacheHits.Load()
		row.CacheMisses = t.cacheMisses.Load()
	}
	if total := row.CacheHits + row.CacheMisses; total > 0 {
		row.CacheHitRate = float64(row.CacheHits) / float64(total)
	}
	s.departed[name] = row
	s.departedMu.Unlock()
	return true
}

// takeDeparted drains the departed-tenant rows: each deleted tenant is
// reported in exactly one /stats snapshot.
func (s *Service) takeDeparted() []TenantStats {
	s.departedMu.Lock()
	defer s.departedMu.Unlock()
	if len(s.departed) == 0 {
		return nil
	}
	out := make([]TenantStats, 0, len(s.departed))
	for _, row := range s.departed {
		out = append(out, row)
	}
	s.departed = make(map[string]TenantStats)
	return out
}

// tenantsSnapshot returns the live tenants sorted by name.
func (s *Service) tenantsSnapshot() []*tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	return out
}
