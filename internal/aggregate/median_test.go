package aggregate

import (
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

func TestMedianSet(t *testing.T) {
	if lo, hi := MedianSet([]float64{3}); lo != 3 || hi != 3 {
		t.Errorf("MedianSet single = %v %v", lo, hi)
	}
	if lo, hi := MedianSet([]float64{5, 1, 3}); lo != 3 || hi != 3 {
		t.Errorf("MedianSet odd = %v %v, want 3 3", lo, hi)
	}
	if lo, hi := MedianSet([]float64{4, 1, 3, 2}); lo != 2 || hi != 3 {
		t.Errorf("MedianSet even = %v %v, want 2 3", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("MedianSet empty did not panic")
		}
	}()
	MedianSet(nil)
}

func TestMedianScoresChoices(t *testing.T) {
	// Two rankings over {0,1}: positions of 0 are 1 and 2.
	a := ranking.MustFromOrder([]int{0, 1})
	b := ranking.MustFromOrder([]int{1, 0})
	in := []*ranking.PartialRanking{a, b}
	lower, err := MedianScores(in, LowerMedian)
	if err != nil {
		t.Fatal(err)
	}
	upper, _ := MedianScores(in, UpperMedian)
	mean, _ := MedianScores(in, MeanMedian)
	if lower[0] != 1 || upper[0] != 2 || mean[0] != 1.5 {
		t.Errorf("medians of element 0 = %v %v %v, want 1 2 1.5", lower[0], upper[0], mean[0])
	}
	// Odd m: all choices coincide.
	in3 := []*ranking.PartialRanking{a, a, b}
	l3, _ := MedianScores(in3, LowerMedian)
	u3, _ := MedianScores(in3, UpperMedian)
	m3, _ := MedianScores(in3, MeanMedian)
	for e := 0; e < 2; e++ {
		if l3[e] != u3[e] || l3[e] != m3[e] {
			t.Errorf("odd-m medians disagree at %d: %v %v %v", e, l3[e], u3[e], m3[e])
		}
	}
}

func TestMedianScores2Exact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(15)
		m := 1 + rng.Intn(6)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 4))
		}
		for _, choice := range []MedianChoice{LowerMedian, UpperMedian, MeanMedian} {
			f, err := MedianScores(in, choice)
			if err != nil {
				t.Fatal(err)
			}
			f4, err := MedianScores2(in, choice)
			if err != nil {
				t.Fatal(err)
			}
			for e := 0; e < n; e++ {
				if f[e] != float64(f4[e])/4 {
					t.Fatalf("MedianScores inconsistent with MedianScores2 at %d: %v vs %d/4", e, f[e], f4[e])
				}
			}
			ok, err := InMedianSet(in, f)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("MedianScores output not in median set (choice %v)", choice)
			}
		}
	}
}

// Lemma 8: any median function minimizes the summed L1 distance to the
// inputs over all score functions.
func TestLemma8MedianMinimizesSumL1(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(10)
		m := 1 + rng.Intn(7)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		for _, choice := range []MedianChoice{LowerMedian, UpperMedian, MeanMedian} {
			f, err := MedianScores(in, choice)
			if err != nil {
				t.Fatal(err)
			}
			medObj := SumL1(f, in)
			// Random challengers.
			for g := 0; g < 50; g++ {
				cand := make([]float64, n)
				for e := range cand {
					cand[e] = rng.Float64() * float64(n+1)
				}
				if obj := SumL1(cand, in); obj < medObj-1e-9 {
					t.Fatalf("Lemma 8 violated: median obj %v > candidate obj %v", medObj, obj)
				}
			}
			// The inputs themselves as challengers.
			for _, r := range in {
				if obj := SumL1(r.Positions(), in); obj < medObj-1e-9 {
					t.Fatalf("Lemma 8 violated by an input: %v < %v", obj, medObj)
				}
			}
		}
	}
}

func TestInMedianSetRejects(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1})
	b := ranking.MustFromOrder([]int{1, 0})
	in := []*ranking.PartialRanking{a, b}
	ok, err := InMedianSet(in, []float64{1.7, 1.2})
	if err != nil || ok {
		t.Errorf("InMedianSet accepted non-median (%v, %v)", ok, err)
	}
	if _, err := InMedianSet(in, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := InMedianSet(nil, nil); err == nil {
		t.Error("empty ensemble accepted")
	}
}

func TestAggregatorInputValidation(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1})
	c := ranking.MustFromOrder([]int{0, 1, 2})
	mismatched := []*ranking.PartialRanking{a, c}
	if _, err := MedianScores(nil, LowerMedian); err == nil {
		t.Error("MedianScores accepted empty input")
	}
	if _, err := MedianScores(mismatched, LowerMedian); err == nil {
		t.Error("MedianScores accepted domain mismatch")
	}
	if _, err := MedianTopK(mismatched, 1); err == nil {
		t.Error("MedianTopK accepted domain mismatch")
	}
	if _, err := MedianTopK([]*ranking.PartialRanking{a}, 5); err == nil {
		t.Error("MedianTopK accepted k > n")
	}
	if _, err := MedianFull(nil); err == nil {
		t.Error("MedianFull accepted empty input")
	}
	if _, err := SumL1Ranking(c, []*ranking.PartialRanking{a}); err == nil {
		t.Error("SumL1Ranking accepted domain mismatch")
	}
}

func TestAggregateErrorPaths(t *testing.T) {
	if _, err := OptimalPartialAggregate(nil); err == nil {
		t.Error("OptimalPartialAggregate accepted empty input")
	}
	if _, err := MedianPartialOfType(nil, []int{1}); err == nil {
		t.Error("MedianPartialOfType accepted empty input")
	}
	a := ranking.MustFromOrder([]int{0, 1})
	if _, err := MedianPartialOfType([]*ranking.PartialRanking{a}, []int{5}); err == nil {
		t.Error("MedianPartialOfType accepted bad type")
	}
	if _, err := MedianInduced(nil); err == nil {
		t.Error("MedianInduced accepted empty input")
	}
	if _, err := BordaPartial(nil); err == nil {
		t.Error("BordaPartial accepted empty input")
	}
	if _, err := MedianTopK([]*ranking.PartialRanking{a}, -1); err == nil {
		t.Error("MedianTopK accepted negative k")
	}
}
