package aggregate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/randrank"
	"repro/internal/ranking"
)

func uniformWeights(m int) []float64 {
	w := make([]float64, m)
	for i := range w {
		w[i] = 1
	}
	return w
}

// TestWeightedBordaUniformEqualsBorda: all-ones weights reproduce plain
// Borda exactly — score vector and final ranking.
func TestWeightedBordaUniformEqualsBorda(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		ens := make([]*ranking.PartialRanking, 7)
		for i := range ens {
			ens[i] = randrank.Partial(rng, 12, 3)
		}
		w := uniformWeights(len(ens))
		wf, err := WeightedBordaScores(ens, w)
		if err != nil {
			t.Fatal(err)
		}
		f, err := bordaScores(ens)
		if err != nil {
			t.Fatal(err)
		}
		for e := range f {
			if math.Abs(wf[e]-f[e]) > 1e-12 {
				t.Errorf("trial %d: weighted score[%d] = %v, plain = %v", trial, e, wf[e], f[e])
			}
		}
		wr, err := WeightedBorda(ens, w)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Borda(ens)
		if err != nil {
			t.Fatal(err)
		}
		if !wr.Equal(r) {
			t.Errorf("trial %d: WeightedBorda %v != Borda %v", trial, wr, r)
		}
	}
}

// TestWeightedMedianUniformEqualsLowerMedian: all-ones weights reproduce the
// unweighted lower median exactly (the 2*cum >= total comparison is exact on
// integer weight vectors).
func TestWeightedMedianUniformEqualsLowerMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		m := 4 + trial%4 // cover even and odd ensemble sizes
		ens := make([]*ranking.PartialRanking, m)
		for i := range ens {
			ens[i] = randrank.Partial(rng, 10, 3)
		}
		wf, err := WeightedMedianScores(ens, uniformWeights(m))
		if err != nil {
			t.Fatal(err)
		}
		f, err := MedianScores(ens, LowerMedian)
		if err != nil {
			t.Fatal(err)
		}
		for e := range f {
			if wf[e] != f[e] {
				t.Errorf("trial %d (m=%d): weighted median[%d] = %v, lower median = %v",
					trial, m, e, wf[e], f[e])
			}
		}
	}
}

// TestWeightedMedianDownweightsOutlier: with the outlier's weight crushed,
// the weighted median tracks the majority coordinate exactly.
func TestWeightedMedianDownweightsOutlier(t *testing.T) {
	maj := ranking.MustFromOrder([]int{0, 1, 2, 3})
	out := ranking.MustFromOrder([]int{3, 2, 1, 0})
	ens := []*ranking.PartialRanking{maj, out, out}
	// Outliers outnumber the majority, but carry almost no weight.
	f, err := WeightedMedianScores(ens, []float64{1, 0.01, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 4; e++ {
		if f[e] != maj.Pos(e) {
			t.Errorf("element %d: weighted median %v, want majority position %v", e, f[e], maj.Pos(e))
		}
	}
}

// TestCheckWeightsRejections: the weight validator rejects length mismatch,
// negatives, NaN/Inf, and an all-zero vector.
func TestCheckWeightsRejections(t *testing.T) {
	ens := []*ranking.PartialRanking{
		ranking.MustFromOrder([]int{0, 1}),
		ranking.MustFromOrder([]int{1, 0}),
	}
	bad := [][]float64{
		{1},              // length mismatch
		{1, -0.5},        // negative
		{1, math.NaN()},  // NaN
		{1, math.Inf(1)}, // Inf
		{0, 0},           // zero total
	}
	for _, w := range bad {
		if _, err := WeightedBordaScores(ens, w); err == nil {
			t.Errorf("WeightedBordaScores accepted bad weights %v", w)
		}
		if _, err := WeightedMedianScores(ens, w); err == nil {
			t.Errorf("WeightedMedianScores accepted bad weights %v", w)
		}
	}
}

// TestMaxDistanceWith: the (max, sum) sweep agrees with SumDistanceWith on
// the sum and with a direct per-voter max.
func TestMaxDistanceWith(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ens := make([]*ranking.PartialRanking, 6)
	for i := range ens {
		ens[i] = randrank.Full(rng, 9)
	}
	cand := randrank.Full(rng, 9)
	ws := metrics.GetWorkspace()
	defer metrics.PutWorkspace(ws)
	maxv, sumv, err := MaxDistanceWith(ws, cand, ens, metrics.KProfWS)
	if err != nil {
		t.Fatal(err)
	}
	wantSum, err := SumDistanceWith(ws, cand, ens, metrics.KProfWS)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sumv-wantSum) > 1e-9 {
		t.Errorf("sum = %v, SumDistanceWith = %v", sumv, wantSum)
	}
	var wantMax float64
	for _, r := range ens {
		v, err := metrics.KProfWS(ws, cand, r)
		if err != nil {
			t.Fatal(err)
		}
		if v > wantMax {
			wantMax = v
		}
	}
	if maxv != wantMax {
		t.Errorf("max = %v, direct max = %v", maxv, wantMax)
	}
}
