package aggregate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

var allVariants = []MCVariant{MC1, MC2, MC3, MC4}

func TestTransitionMatricesRowStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(5)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		for _, v := range allVariants {
			P, err := TransitionMatrix(in, v)
			if err != nil {
				t.Fatal(err)
			}
			for i, row := range P {
				var sum float64
				for _, p := range row {
					if p < -1e-12 {
						t.Fatalf("%v: negative transition P[%d] = %v", v, i, row)
					}
					sum += p
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("%v: row %d sums to %v", v, i, sum)
				}
			}
		}
	}
}

// On unanimous full-ranking inputs every chain ranks the elements in the
// input order (better elements accumulate more stationary mass).
func TestMarkovChainsRecoverUnanimous(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	full := randrank.Full(rng, 8)
	in := []*ranking.PartialRanking{full, full, full}
	for _, v := range allVariants {
		got, err := MarkovChain(in, v, MarkovChainOptions{Teleport: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(full) {
			t.Errorf("%v unanimous = %v, want %v", v, got, full)
		}
	}
}

// MC4 has the Condorcet property: an element preferred to every other by a
// majority of the inputs ends up on top.
func TestMC4CondorcetWinner(t *testing.T) {
	// Element 0 beats everything in 2 of 3 rankings.
	a := ranking.MustFromOrder([]int{0, 1, 2, 3})
	b := ranking.MustFromOrder([]int{0, 3, 2, 1})
	c := ranking.MustFromOrder([]int{3, 2, 1, 0})
	got, err := MarkovChain([]*ranking.PartialRanking{a, b, c}, MC4, MarkovChainOptions{Teleport: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos(0) != 1 {
		t.Errorf("MC4 did not rank the Condorcet winner first: %v", got)
	}
}

func TestStationaryDistributionSums(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 6
	var in []*ranking.PartialRanking
	for i := 0; i < 4; i++ {
		in = append(in, randrank.Partial(rng, n, 3))
	}
	for _, v := range allVariants {
		pi, err := StationaryDistribution(in, v, MarkovChainOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range pi {
			if p < 0 {
				t.Fatalf("%v: negative stationary mass", v)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("%v: stationary distribution sums to %v", v, sum)
		}
	}
}

// Stationarity: pi P ~= pi (up to the teleport smoothing).
func TestStationaryFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 5
	var in []*ranking.PartialRanking
	for i := 0; i < 3; i++ {
		in = append(in, randrank.Full(rng, n))
	}
	for _, v := range allVariants {
		opts := MarkovChainOptions{Teleport: 0.05, MaxIterations: 2000, Tolerance: 1e-14}
		pi, err := StationaryDistribution(in, v, opts)
		if err != nil {
			t.Fatal(err)
		}
		P, err := TransitionMatrix(in, v)
		if err != nil {
			t.Fatal(err)
		}
		next := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				next[j] += pi[i] * P[i][j]
			}
		}
		for j := range next {
			next[j] = 0.95*next[j] + 0.05/float64(n)
		}
		for j := range next {
			if math.Abs(next[j]-pi[j]) > 1e-8 {
				t.Fatalf("%v: not a fixed point at %d: %v vs %v", v, j, next[j], pi[j])
			}
		}
	}
}

func TestMarkovChainErrors(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1})
	if _, err := TransitionMatrix([]*ranking.PartialRanking{a}, MCVariant(9)); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := MarkovChain(nil, MC4, MarkovChainOptions{}); err == nil {
		t.Error("empty ensemble accepted")
	}
	if MC2.String() != "MC2" || MCVariant(9).String() == "MC9" {
		t.Error("MCVariant String wrong")
	}
}
