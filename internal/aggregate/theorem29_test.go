package aggregate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

// Theorem 29 is the master theorem behind Theorems 9, 10, and 11: for ANY
// set S of score functions, if f' in S is L1-closest to the median f of the
// inputs, then f' is within factor 3 of every member of S — and within
// factor 2 of EVERY function when the inputs themselves lie in S. This test
// instantiates S with a set the paper never uses — integer-valued score
// vectors — to exercise the theorem's full generality.
func TestTheorem29IntegerGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(6)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		f, err := MedianScores(in, LowerMedian)
		if err != nil {
			t.Fatal(err)
		}
		// S = integer-valued vectors; the L1-closest member of S to f
		// rounds every coordinate to the nearest integer (median positions
		// are half-integers; round half down — any tie-break stays closest).
		fPrime := make([]float64, n)
		for i, v := range f {
			fPrime[i] = math.Floor(v + 0.5)
			if math.Abs(fPrime[i]-v) > 0.5 {
				t.Fatalf("rounding moved more than 1/2: %v -> %v", v, fPrime[i])
			}
		}
		objPrime := SumL1(fPrime, in)
		// Factor 3 against random members of S.
		for g := 0; g < 60; g++ {
			cand := make([]float64, n)
			for i := range cand {
				cand[i] = float64(rng.Intn(n + 2))
			}
			if obj := SumL1(cand, in); objPrime > 3*obj+1e-9 {
				t.Fatalf("Theorem 29 factor-3 violated: f'=%v (%v) vs cand=%v (%v)",
					fPrime, objPrime, cand, obj)
			}
		}
	}
}

// Theorem 29 second part / Corollary 31: when the inputs are partial
// rankings (members of S = partial rankings), f-dagger is within factor 2
// of EVERY score function, not just every partial ranking.
func TestCorollary31FactorTwoVsArbitraryFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(6)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		fd, err := OptimalPartialAggregate(in)
		if err != nil {
			t.Fatal(err)
		}
		objFD, err := SumL1Ranking(fd, in)
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < 60; g++ {
			cand := make([]float64, n)
			for i := range cand {
				cand[i] = rng.Float64() * float64(n+1)
			}
			if obj := SumL1(cand, in); objFD > 2*obj+1e-9 {
				t.Fatalf("Corollary 31 factor-2 violated: f-dagger %v vs g %v (obj %v)",
					objFD, cand, obj)
			}
		}
	}
}

// Corollary 30's second part: when every input shares the output type, the
// type-constrained median aggregation achieves factor 2 against arbitrary
// score functions.
func TestCorollary30SharedTypeFactorTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(5)
		// One shared random type for all inputs and the output.
		var alpha []int
		rem := n
		for rem > 0 {
			s := 1 + rng.Intn(rem)
			alpha = append(alpha, s)
			rem -= s
		}
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.OfType(rng, alpha))
		}
		out, err := MedianPartialOfType(in, alpha)
		if err != nil {
			t.Fatal(err)
		}
		objOut, err := SumL1Ranking(out, in)
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < 60; g++ {
			cand := make([]float64, n)
			for i := range cand {
				cand[i] = rng.Float64() * float64(n+1)
			}
			if obj := SumL1(cand, in); objOut > 2*obj+1e-9 {
				t.Fatalf("Corollary 30 shared-type factor-2 violated: %v vs %v", objOut, obj)
			}
		}
	}
}
