package aggregate

import (
	"math"

	"repro/internal/metrics"
	"repro/internal/permutation"
	"repro/internal/ranking"
)

// kemenizeMarginCap bounds the domain size for which LocalKemenize
// precomputes the full pairwise-margin matrix (n^2 int32 entries: 16 MB at
// the cap); beyond it the swap loop falls back to recomputing majorities on
// the fly rather than risk the quadratic allocation.
const kemenizeMarginCap = 2048

// LocalKemenize applies the local Kemenization of Dwork et al. to a full
// ranking: repeatedly swap adjacent elements when the voters expressing a
// preference favor the swapped order by strict majority (ties abstain),
// until no adjacent swap helps. Every swap strictly reduces the summed
// Kprof objective — the pair's cost is (#against) + (#tied)/2 whichever way
// it is ordered — so the procedure terminates at a locally Kemeny-optimal
// ranking, which in particular satisfies the extended Condorcet criterion
// on adjacent pairs.
func LocalKemenize(candidate *ranking.PartialRanking, rankings []*ranking.PartialRanking) (*ranking.PartialRanking, error) {
	if err := checkInputs(rankings); err != nil {
		return nil, err
	}
	if err := ranking.CheckSameDomain(candidate, rankings[0]); err != nil {
		return nil, err
	}
	if !candidate.IsFull() {
		// Refine ties by element ID first.
		candidate = candidate.RefineBy(identityFull(candidate.N()))
	}
	order := candidate.Order()
	n := len(order)
	// More inputs rank a strictly ahead of b than the reverse. The swap loop
	// below queries the same pairs over and over, so for domains where the
	// matrix fits (n^2 int32), the margins are precomputed once with the pair
	// sweep fanned across the parallel evaluation pool — identical integer
	// margins, so identical swaps — and each query becomes a lookup. Larger
	// domains keep the on-the-fly scan.
	var prefers func(a, b int) bool
	if n > 0 && n <= kemenizeMarginCap {
		margins := make([]int32, n*n)
		if err := metrics.ParallelEach(n, "kemenize_margins", func(_ *metrics.Workspace, a int) error {
			for b := a + 1; b < n; b++ {
				var margin int32
				for _, r := range rankings {
					switch {
					case r.Ahead(a, b):
						margin++
					case r.Ahead(b, a):
						margin--
					}
				}
				// Row a owns cells (a, b) and (b, a) for all b > a, so the
				// antisymmetric mirror write never collides across workers.
				margins[a*n+b] = margin
				margins[b*n+a] = -margin
			}
			return nil
		}); err != nil {
			return nil, err
		}
		prefers = func(a, b int) bool { return margins[a*n+b] > 0 }
	} else {
		prefers = func(a, b int) bool {
			margin := 0
			for _, r := range rankings {
				switch {
				case r.Ahead(a, b):
					margin++
				case r.Ahead(b, a):
					margin--
				}
			}
			return margin > 0
		}
	}
	// Insertion-sort-like passes; each beneficial swap strictly reduces the
	// summed margin over majority-violated pairs, so this terminates.
	for changed := true; changed; {
		changed = false
		for i := 0; i+1 < n; i++ {
			if prefers(order[i+1], order[i]) {
				order[i], order[i+1] = order[i+1], order[i]
				changed = true
			}
		}
	}
	return ranking.FromOrder(order)
}

// KemenyOptimalBrute returns a full ranking minimizing the summed Kprof
// distance to the inputs (the Kemeny optimum generalized to partial-ranking
// inputs), by enumerating all n! candidates. Exponential; reference for the
// approximation experiments.
func KemenyOptimalBrute(rankings []*ranking.PartialRanking) (*ranking.PartialRanking, float64, error) {
	// One workspace serves the entire n! * m objective sweep.
	ws := metrics.GetWorkspace()
	defer metrics.PutWorkspace(ws)
	return bruteOverFull(rankings, func(cand *ranking.PartialRanking) (float64, error) {
		return SumDistanceWith(ws, cand, rankings, metrics.KProfWS)
	})
}

// FootruleOptimalFullBrute returns a full ranking minimizing the summed
// Fprof distance by enumeration; it validates FootruleOptimalFull.
func FootruleOptimalFullBrute(rankings []*ranking.PartialRanking) (*ranking.PartialRanking, float64, error) {
	return bruteOverFull(rankings, func(cand *ranking.PartialRanking) (float64, error) {
		return SumL1Ranking(cand, rankings)
	})
}

// OptimalTopKBrute returns a top-k list minimizing sum_i L1(tau, sigma_i)
// over all top-k lists, by enumerating every ordered selection of k winners.
// Exponential; reference for the Theorem 9 factor-3 experiment.
func OptimalTopKBrute(rankings []*ranking.PartialRanking, k int) (*ranking.PartialRanking, float64, error) {
	if err := checkInputs(rankings); err != nil {
		return nil, 0, err
	}
	n := rankings[0].N()
	bestObj := math.Inf(1)
	var best *ranking.PartialRanking
	sel := make([]int, 0, k)
	used := make([]bool, n)
	var rec func() error
	rec = func() error {
		if len(sel) == k {
			cand, err := ranking.TopKList(n, k, sel)
			if err != nil {
				return err
			}
			obj, err := SumL1Ranking(cand, rankings)
			if err != nil {
				return err
			}
			if obj < bestObj {
				bestObj = obj
				best = cand
			}
			return nil
		}
		for e := 0; e < n; e++ {
			if used[e] {
				continue
			}
			used[e] = true
			sel = append(sel, e)
			if err := rec(); err != nil {
				return err
			}
			sel = sel[:len(sel)-1]
			used[e] = false
		}
		return nil
	}
	if err := rec(); err != nil {
		return nil, 0, err
	}
	return best, bestObj, nil
}

// OptimalPartialRankingBrute returns a partial ranking minimizing
// sum_i L1(tau, sigma_i) over ALL bucket orders of the domain, by
// enumerating the Fubini(n) candidates. Exponential; reference for the
// Theorem 10 factor-2 experiment.
func OptimalPartialRankingBrute(rankings []*ranking.PartialRanking) (*ranking.PartialRanking, float64, error) {
	if err := checkInputs(rankings); err != nil {
		return nil, 0, err
	}
	n := rankings[0].N()
	bestObj := math.Inf(1)
	var best *ranking.PartialRanking
	ranking.ForEachPartialRanking(n, func(cand *ranking.PartialRanking) bool {
		obj := SumL1(cand.Positions(), rankings)
		if obj < bestObj {
			bestObj = obj
			best = cand
		}
		return true
	})
	return best, bestObj, nil
}

// bruteOverFull minimizes an objective over all full rankings of the domain.
func bruteOverFull(rankings []*ranking.PartialRanking, objective func(*ranking.PartialRanking) (float64, error)) (*ranking.PartialRanking, float64, error) {
	if err := checkInputs(rankings); err != nil {
		return nil, 0, err
	}
	n := rankings[0].N()
	bestObj := math.Inf(1)
	var best *ranking.PartialRanking
	var oerr error
	permutation.ForEach(n, func(p []int) bool {
		cand := ranking.MustFromOrder(p)
		obj, err := objective(cand)
		if err != nil {
			oerr = err
			return false
		}
		if obj < bestObj {
			bestObj = obj
			best = cand
		}
		return true
	})
	if oerr != nil {
		return nil, 0, oerr
	}
	return best, bestObj, nil
}

// identityFull returns the full ranking 0 < 1 < ... < n-1.
func identityFull(n int) *ranking.PartialRanking {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return ranking.MustFromOrder(order)
}
