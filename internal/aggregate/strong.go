package aggregate

import (
	"sort"

	"repro/internal/ranking"
)

// This file implements the "stronger notion of optimality" of Appendix
// A.6.3: a partial ranking sigma of type alpha is nearly optimal in the
// strong sense if it is the type-alpha projection <sigma'>_alpha of some
// partial ranking sigma' that is itself nearly optimal among ALL partial
// rankings. Theorem 35 shows the median construction achieves this: take
// f-dagger's type beta (the L1-closest partial ranking to the median f),
// build the Lemma 34 common refinement, and project it to type alpha.

// OrderPreservingMatchingCost returns the minimum total |a_i - b_j| cost of
// a perfect matching between two equal-size multisets — which, by Lemma 26,
// is achieved by the order-preserving matching (i-th smallest to i-th
// smallest). It underlies Lemma 27's proof that consistent rankings
// minimize L1 within a type.
func OrderPreservingMatchingCost(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("aggregate: OrderPreservingMatchingCost size mismatch")
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var total float64
	for i := range as {
		d := as[i] - bs[i]
		if d < 0 {
			d = -d
		}
		total += d
	}
	return total
}

// CommonConsistentRefinement implements Lemma 34's construction rho: the
// partial ranking that refines both sigma and the bucket order induced by
// f, ordering within sigma's ties by f. Any ranking consistent with rho is
// consistent with both sigma and f.
func CommonConsistentRefinement(sigma *ranking.PartialRanking, f []float64) *ranking.PartialRanking {
	return sigma.RefineBy(ranking.FromScores(f))
}

// StrongMedianTopK implements Theorem 35 for top-k types: it returns the
// top-k list sigma read off the median AND the witness partial ranking
// sigma' such that sigma is sigma'-consistent of its type and sigma' is
// within factor 3 of every partial ranking (factor 2 when the inputs are
// partial rankings) under the summed L1 objective. The witness is built by
// projecting the Lemma 34 refinement onto f-dagger's type beta.
func StrongMedianTopK(rankings []*ranking.PartialRanking, k int) (topK, witness *ranking.PartialRanking, err error) {
	if err := checkInputs(rankings); err != nil {
		return nil, nil, err
	}
	f, err := MedianScores(rankings, LowerMedian)
	if err != nil {
		return nil, nil, err
	}
	// sigma: the top-k list consistent with f (Theorem 9's output).
	topK, err = MedianTopK(rankings, k)
	if err != nil {
		return nil, nil, err
	}
	// beta: the type of f-dagger, the L1-closest partial ranking to f.
	res, err := OptimalPartialFigure1(f)
	if err != nil {
		return nil, nil, err
	}
	beta := res.Ranking.Type()
	// rho: a common refinement of sigma and f-bar (Lemma 34); project it to
	// type beta. Consistency with rho implies consistency with both.
	rho := CommonConsistentRefinement(topK, f)
	witness, err = consistentOfTypeWith(rho, f, beta)
	if err != nil {
		return nil, nil, err
	}
	return topK, witness, nil
}

// consistentOfTypeWith carves elements into buckets of sizes beta following
// rho's order (ties inside rho broken by f, then by element ID), producing a
// member of <rho>_beta that is also consistent with f.
func consistentOfTypeWith(rho *ranking.PartialRanking, f []float64, beta []int) (*ranking.PartialRanking, error) {
	n := rho.N()
	idx := make([]int, 0, n)
	for b := 0; b < rho.NumBuckets(); b++ {
		bucket := append([]int(nil), rho.Bucket(b)...)
		sort.Slice(bucket, func(x, y int) bool {
			if f[bucket[x]] != f[bucket[y]] {
				return f[bucket[x]] < f[bucket[y]]
			}
			return bucket[x] < bucket[y]
		})
		idx = append(idx, bucket...)
	}
	buckets := make([][]int, len(beta))
	off := 0
	for i, size := range beta {
		if off+size > n {
			return nil, ranking.ErrDomainMismatch
		}
		buckets[i] = idx[off : off+size]
		off += size
	}
	return ranking.FromBuckets(n, buckets)
}
