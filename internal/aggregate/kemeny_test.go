package aggregate

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/randrank"
	"repro/internal/ranking"
)

func kprofDistance(a, b *ranking.PartialRanking) (float64, error) {
	return metrics.KProf(a, b)
}

// Local Kemenization never increases the Kprof objective and leaves no
// adjacent pair that a strict majority wants swapped.
func TestLocalKemenizeImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(5)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		start := randrank.Full(rng, n)
		out, err := LocalKemenize(start, in)
		if err != nil {
			t.Fatal(err)
		}
		if !out.IsFull() {
			t.Fatal("LocalKemenize returned ties")
		}
		before, err := SumDistance(start, in, kprofDistance)
		if err != nil {
			t.Fatal(err)
		}
		after, err := SumDistance(out, in, kprofDistance)
		if err != nil {
			t.Fatal(err)
		}
		if after > before+1e-9 {
			t.Fatalf("LocalKemenize worsened objective: %v -> %v", before, after)
		}
		// No adjacent majority violation remains.
		order := out.Order()
		for i := 0; i+1 < n; i++ {
			cnt := 0
			for _, r := range in {
				if r.Ahead(order[i+1], order[i]) {
					cnt++
				}
			}
			if 2*cnt > m {
				t.Fatalf("adjacent majority violation survives at %d in %v", i, out)
			}
		}
	}
}

func TestLocalKemenizeAcceptsPartialCandidate(t *testing.T) {
	in := []*ranking.PartialRanking{ranking.MustFromOrder([]int{2, 1, 0})}
	cand := ranking.MustFromBuckets(3, [][]int{{0, 1, 2}})
	out, err := LocalKemenize(cand, in)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(in[0]) {
		t.Errorf("LocalKemenize = %v, want %v", out, in[0])
	}
}

func TestKemenyOptimalBruteUnanimous(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	full := randrank.Full(rng, 5)
	got, obj, err := KemenyOptimalBrute([]*ranking.PartialRanking{full, full})
	if err != nil {
		t.Fatal(err)
	}
	if obj != 0 || !got.Equal(full) {
		t.Errorf("Kemeny unanimous: obj=%v got=%v want=%v", obj, got, full)
	}
}

// The Kemeny optimum must beat or tie every input under the Kprof objective.
func TestKemenyOptimalBeatsInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(4)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Full(rng, n))
		}
		_, opt, err := KemenyOptimalBrute(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range in {
			obj, err := SumDistance(r, in, kprofDistance)
			if err != nil {
				t.Fatal(err)
			}
			if opt > obj+1e-9 {
				t.Fatalf("Kemeny optimum %v worse than input %v", opt, obj)
			}
		}
	}
}

func TestOptimalTopKBruteMatchesFullSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(3)
		var in []*ranking.PartialRanking
		for i := 0; i < 3; i++ {
			in = append(in, randrank.Partial(rng, n, 2))
		}
		k := 1 + rng.Intn(n)
		_, opt, err := OptimalTopKBrute(in, k)
		if err != nil {
			t.Fatal(err)
		}
		// Independent check: enumerate all partial rankings and filter to
		// top-k lists.
		best := -1.0
		ranking.ForEachPartialRanking(n, func(cand *ranking.PartialRanking) bool {
			if ck, ok := cand.IsTopK(); !ok || ck != k {
				// IsTopK reports the largest k; accept full rankings when
				// k == n.
				if !(ok && k == n && ck == n) {
					return true
				}
			}
			obj := SumL1(cand.Positions(), in)
			if best < 0 || obj < best {
				best = obj
			}
			return true
		})
		if best >= 0 && opt != best {
			t.Fatalf("OptimalTopKBrute %v != filtered search %v (n=%d k=%d)", opt, best, n, k)
		}
	}
}

func TestBruteForceErrors(t *testing.T) {
	if _, _, err := KemenyOptimalBrute(nil); err == nil {
		t.Error("empty ensemble accepted")
	}
	if _, _, err := OptimalTopKBrute(nil, 1); err == nil {
		t.Error("empty ensemble accepted")
	}
	if _, _, err := OptimalPartialRankingBrute(nil); err == nil {
		t.Error("empty ensemble accepted")
	}
	if _, err := LocalKemenize(ranking.MustFromOrder([]int{0}), nil); err == nil {
		t.Error("empty ensemble accepted")
	}
}
