package aggregate

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

// genEnsemble draws 1..6 bucket orders over one shared small domain.
type genEnsemble struct {
	In []*ranking.PartialRanking
}

func (genEnsemble) Generate(r *rand.Rand, size int) reflect.Value {
	maxN := size
	if maxN < 1 {
		maxN = 1
	}
	if maxN > 9 {
		maxN = 9
	}
	n := 1 + r.Intn(maxN)
	m := 1 + r.Intn(6)
	in := make([]*ranking.PartialRanking, m)
	for i := range in {
		in[i] = randrank.Partial(r, n, 1+r.Intn(4))
	}
	return reflect.ValueOf(genEnsemble{in})
}

var quickCfg = &quick.Config{MaxCount: 150}

// Lemma 8: every median choice minimizes the summed L1 against random
// challengers drawn alongside the ensemble.
func TestQuickLemma8(t *testing.T) {
	f := func(g genEnsemble, rawG []uint16) bool {
		n := g.In[0].N()
		for _, choice := range []MedianChoice{LowerMedian, UpperMedian, MeanMedian} {
			med, err := MedianScores(g.In, choice)
			if err != nil {
				return false
			}
			medObj := SumL1(med, g.In)
			cand := make([]float64, n)
			for i := range cand {
				v := 0.0
				if len(rawG) > 0 {
					v = float64(rawG[i%len(rawG)]%64) / 4
				}
				cand[i] = v
			}
			if SumL1(cand, g.In) < medObj-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// The DP is never beaten by the induced ranking or by any input, and its
// reported cost matches its returned ranking.
func TestQuickDPDominance(t *testing.T) {
	f := func(g genEnsemble) bool {
		med, err := MedianScores(g.In, LowerMedian)
		if err != nil {
			return false
		}
		res, err := OptimalPartialFigure1(med)
		if err != nil {
			return false
		}
		if l1ToScores(res.Ranking, med) != res.Cost {
			return false
		}
		if res.Cost > l1ToScores(ranking.FromScores(med), med)+1e-9 {
			return false
		}
		for _, r := range g.In {
			if res.Cost > l1ToScores(r, med)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// The two DP engines agree exactly on half-integral scores.
func TestQuickDPEnginesAgree(t *testing.T) {
	f := func(raw []uint8) bool {
		f64 := make([]float64, len(raw))
		for i, v := range raw {
			f64[i] = float64(v%60) / 2
		}
		a, err := OptimalPartial(f64)
		if err != nil {
			return false
		}
		b, err := OptimalPartialFigure1(f64)
		if err != nil {
			return false
		}
		return a.Cost4 == b.Cost4
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Median aggregation outputs are always consistent with the median scores.
func TestQuickMedianOutputsConsistent(t *testing.T) {
	f := func(g genEnsemble) bool {
		med, err := MedianScores(g.In, LowerMedian)
		if err != nil {
			return false
		}
		full, err := MedianFull(g.In)
		if err != nil {
			return false
		}
		if !full.ConsistentWith(med) {
			return false
		}
		k := 1 + len(med)/2
		if k > len(med) {
			k = len(med)
		}
		top, err := MedianTopK(g.In, k)
		if err != nil {
			return false
		}
		// The top-k winners must be k elements of minimal median score.
		order := top.Order()
		winners := order[:k]
		worstWinner := med[winners[0]]
		for _, w := range winners {
			if med[w] > worstWinner {
				worstWinner = med[w]
			}
		}
		for e := 0; e < len(med); e++ {
			if med[e] < worstWinner {
				found := false
				for _, w := range winners {
					if w == e {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Borda and median agree on unanimous ensembles.
func TestQuickUnanimous(t *testing.T) {
	f := func(g genEnsemble) bool {
		base := g.In[0]
		in := []*ranking.PartialRanking{base, base, base}
		med, err := MedianInduced(in)
		if err != nil {
			return false
		}
		if !med.Equal(base) {
			return false
		}
		borda, err := BordaPartial(in)
		if err != nil {
			return false
		}
		return borda.Equal(base)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
