package aggregate

import (
	"errors"
	"fmt"

	"repro/internal/guard"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// This file implements the Markov-chain rank-aggregation heuristics MC1-MC4
// of Dwork, Kumar, Naor, and Sivakumar ("Rank aggregation methods for the
// web", WWW 2001), which the paper cites as the sophisticated baselines that
// median rank aggregation is compared against (Sections 1 and 6: the MC
// methods are effective but admit no instance-optimal sequential-access
// implementation). The chains are generalized to partial rankings in the
// natural way: "ranked higher" means a strictly smaller bucket position, and
// "at least as high" admits ties.
//
// The stationary distribution orders the elements (largest mass first). A
// uniform restart (teleport) with small probability makes every chain
// ergodic, as is standard practice.

// MCVariant selects one of the four Markov-chain constructions.
type MCVariant int

const (
	// MC1: from state i, move to a state chosen uniformly from the multiset
	// of elements ranked at least as high as i in the union of all lists.
	MC1 MCVariant = iota + 1
	// MC2: from state i, pick a list uniformly, then move to an element
	// chosen uniformly among those the list ranks at least as high as i.
	MC2
	// MC3: from state i, pick a list uniformly and an element j uniformly;
	// move to j if the list ranks j strictly higher than i, else stay.
	MC3
	// MC4: from state i, pick j uniformly; move to j if a strict majority
	// of the lists ranks j strictly higher than i, else stay.
	MC4
)

func (v MCVariant) String() string {
	if v >= MC1 && v <= MC4 {
		return fmt.Sprintf("MC%d", int(v))
	}
	return fmt.Sprintf("MCVariant(%d)", int(v))
}

// MarkovChainOptions tunes the stationary-distribution computation.
type MarkovChainOptions struct {
	// Teleport is the uniform-restart probability added for ergodicity.
	// Zero disables it. Default 0.05.
	Teleport float64
	// MaxIterations bounds the power iteration. Default 500.
	MaxIterations int
	// Tolerance is the L1 convergence threshold. Default 1e-10.
	Tolerance float64
}

func (o *MarkovChainOptions) defaults() {
	if o.Teleport == 0 {
		o.Teleport = 0.05
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 500
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-10
	}
}

// MarkovChain aggregates the rankings with the chosen MC variant: it builds
// the transition matrix, computes the stationary distribution by power
// iteration, and returns the full ranking by descending stationary mass
// (ties broken by element ID).
func MarkovChain(rankings []*ranking.PartialRanking, variant MCVariant, opts MarkovChainOptions) (_ *ranking.PartialRanking, err error) {
	defer guard.Capture(&err)
	defer telemetry.StartSpan("aggregate.markov_chain").End()
	pi, err := StationaryDistribution(rankings, variant, opts)
	if err != nil {
		return nil, err
	}
	// Rank by descending mass: score = -pi.
	f := make([]float64, len(pi))
	for i, p := range pi {
		f[i] = -p
	}
	return ranking.MustFromOrder(sortedByScore(f)), nil
}

// StationaryDistribution returns the stationary distribution of the chosen
// Markov chain over the elements.
func StationaryDistribution(rankings []*ranking.PartialRanking, variant MCVariant, opts MarkovChainOptions) ([]float64, error) {
	defer telemetry.StartSpan("aggregate.stationary").End()
	P, err := TransitionMatrix(rankings, variant)
	if err != nil {
		return nil, err
	}
	opts.defaults()
	n := len(P)
	if n == 0 {
		return nil, nil
	}
	pi := make([]float64, n)
	next := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	tp := opts.Teleport
	for iter := 0; iter < opts.MaxIterations; iter++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				next[j] += pi[i] * P[i][j]
			}
		}
		if tp > 0 {
			for j := range next {
				next[j] = (1-tp)*next[j] + tp/float64(n)
			}
		}
		var diff float64
		for j := range next {
			d := next[j] - pi[j]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		pi, next = next, pi
		if diff < opts.Tolerance {
			break
		}
	}
	return pi, nil
}

// TransitionMatrix builds the row-stochastic transition matrix of the
// chosen MC variant over the input rankings.
func TransitionMatrix(rankings []*ranking.PartialRanking, variant MCVariant) ([][]float64, error) {
	if err := checkInputs(rankings); err != nil {
		return nil, err
	}
	n := rankings[0].N()
	m := len(rankings)
	P := make([][]float64, n)
	for i := range P {
		P[i] = make([]float64, n)
	}
	switch variant {
	case MC1:
		for i := 0; i < n; i++ {
			// Multiset of j with sigma(j) <= sigma(i) over all lists.
			total := 0
			counts := make([]int, n)
			for _, r := range rankings {
				for j := 0; j < n; j++ {
					if r.Pos2(j) <= r.Pos2(i) {
						counts[j]++
						total++
					}
				}
			}
			for j := 0; j < n; j++ {
				P[i][j] = float64(counts[j]) / float64(total)
			}
		}
	case MC2:
		for i := 0; i < n; i++ {
			for _, r := range rankings {
				cnt := 0
				for j := 0; j < n; j++ {
					if r.Pos2(j) <= r.Pos2(i) {
						cnt++
					}
				}
				for j := 0; j < n; j++ {
					if r.Pos2(j) <= r.Pos2(i) {
						P[i][j] += 1 / (float64(m) * float64(cnt))
					}
				}
			}
		}
	case MC3:
		for i := 0; i < n; i++ {
			for _, r := range rankings {
				for j := 0; j < n; j++ {
					if r.Pos2(j) < r.Pos2(i) {
						P[i][j] += 1 / (float64(m) * float64(n))
					} else {
						P[i][i] += 1 / (float64(m) * float64(n))
					}
				}
			}
		}
	case MC4:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				better := 0
				for _, r := range rankings {
					if r.Pos2(j) < r.Pos2(i) {
						better++
					}
				}
				if 2*better > m {
					P[i][j] = 1 / float64(n)
				} else {
					P[i][i] += 1 / float64(n)
				}
			}
			P[i][i] += 1 / float64(n) // choosing j = i always stays
		}
	default:
		return nil, errors.New("aggregate: unknown Markov chain variant")
	}
	return P, nil
}
