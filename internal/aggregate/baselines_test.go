package aggregate

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/randrank"
	"repro/internal/ranking"
)

func fprofDistance(a, b *ranking.PartialRanking) (float64, error) {
	return metrics.FProf(a, b)
}

func TestBordaKnown(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1, 2})
	b := ranking.MustFromOrder([]int{0, 2, 1})
	got, err := Borda([]*ranking.PartialRanking{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// Mean positions: 0 -> 1, 1 -> 2.5, 2 -> 2.5; tie broken by ID.
	want := ranking.MustFromOrder([]int{0, 1, 2})
	if !got.Equal(want) {
		t.Errorf("Borda = %v, want %v", got, want)
	}
	gotP, err := BordaPartial([]*ranking.PartialRanking{a, b})
	if err != nil {
		t.Fatal(err)
	}
	wantP := ranking.MustFromBuckets(3, [][]int{{0}, {1, 2}})
	if !gotP.Equal(wantP) {
		t.Errorf("BordaPartial = %v, want %v", gotP, wantP)
	}
}

func TestBordaUnanimous(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	full := randrank.Full(rng, 10)
	got, err := Borda([]*ranking.PartialRanking{full, full})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(full) {
		t.Errorf("Borda unanimous = %v, want %v", got, full)
	}
}

// BestOfInputs under any metric is within factor 2 of the optimal
// aggregation (triangle inequality), here verified for Fprof against the
// brute-force partial-ranking optimum.
func TestBestOfInputsFactorTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		idx, best, obj, err := BestOfInputs(in, fprofDistance)
		if err != nil {
			t.Fatal(err)
		}
		if idx < 0 || idx >= m || !best.Equal(in[idx]) {
			t.Fatalf("BestOfInputs returned inconsistent index")
		}
		_, opt, err := OptimalPartialRankingBrute(in)
		if err != nil {
			t.Fatal(err)
		}
		if obj > 2*opt+1e-9 {
			t.Fatalf("best-of-inputs factor-2 violated: %v > 2x %v", obj, opt)
		}
	}
}

func TestBestOfInputsPicksMinimum(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1, 2})
	b := ranking.MustFromOrder([]int{2, 1, 0})
	in := []*ranking.PartialRanking{a, a, b}
	idx, _, obj, err := BestOfInputs(in, fprofDistance)
	if err != nil {
		t.Fatal(err)
	}
	if idx > 1 {
		t.Errorf("BestOfInputs picked %d, want one of the two copies of a", idx)
	}
	// Objective: 0 + 0 + F(a,b) = 4.
	if obj != 4 {
		t.Errorf("objective = %v, want 4", obj)
	}
}

func TestSumDistance(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1})
	b := ranking.MustFromOrder([]int{1, 0})
	got, err := SumDistance(a, []*ranking.PartialRanking{a, b, b}, fprofDistance)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 { // 0 + 2 + 2
		t.Errorf("SumDistance = %v, want 4", got)
	}
}

func TestBaselineInputValidation(t *testing.T) {
	if _, err := Borda(nil); err == nil {
		t.Error("Borda accepted empty input")
	}
	if _, _, _, err := BestOfInputs(nil, fprofDistance); err == nil {
		t.Error("BestOfInputs accepted empty input")
	}
	mismatch := []*ranking.PartialRanking{
		ranking.MustFromOrder([]int{0, 1}),
		ranking.MustFromOrder([]int{0, 1, 2}),
	}
	if _, err := Borda(mismatch); err == nil {
		t.Error("Borda accepted domain mismatch")
	}
}

// The workspace-aware objective paths must agree exactly with the generic
// closures they replace on the hot paths.
func TestSumDistanceWithMatchesSumDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	in, _ := randrank.MallowsEnsemble(rng, 30, 9, 0.5)
	cand := randrank.Partial(rng, 30, 6)
	want, err := SumDistance(cand, in, fprofDistance)
	if err != nil {
		t.Fatal(err)
	}
	ws := metrics.NewWorkspace()
	got, err := SumDistanceWith(ws, cand, in, metrics.FProfWS)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("SumDistanceWith = %v, SumDistance = %v", got, want)
	}
	wantK, err := SumDistance(cand, in, func(a, b *ranking.PartialRanking) (float64, error) {
		return metrics.KProf(a, b)
	})
	if err != nil {
		t.Fatal(err)
	}
	gotK, err := SumDistanceWith(ws, cand, in, metrics.KProfWS)
	if err != nil {
		t.Fatal(err)
	}
	if gotK != wantK {
		t.Fatalf("KProf objective: with = %v, plain = %v", gotK, wantK)
	}
}

func TestBestOfInputsWithMatchesBestOfInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 10; trial++ {
		var in []*ranking.PartialRanking
		for i := 0; i < 8; i++ {
			in = append(in, randrank.Partial(rng, 20, 4))
		}
		wi, wr, wobj, err := BestOfInputs(in, fprofDistance)
		if err != nil {
			t.Fatal(err)
		}
		ws := metrics.NewWorkspace()
		gi, gr, gobj, err := BestOfInputsWith(ws, in, metrics.FProfWS)
		if err != nil {
			t.Fatal(err)
		}
		if gi != wi || gobj != wobj || !gr.Equal(wr) {
			t.Fatalf("BestOfInputsWith = (%d, %v), BestOfInputs = (%d, %v)", gi, gobj, wi, wobj)
		}
	}
	ws := metrics.NewWorkspace()
	if _, _, _, err := BestOfInputsWith(ws, nil, metrics.FProfWS); err == nil {
		t.Error("empty ensemble accepted by BestOfInputsWith")
	}
}
