package aggregate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

func TestAssignmentSolveAgreesWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(7)
		cost := make([][]int64, n)
		for i := range cost {
			cost[i] = make([]int64, n)
			for j := range cost[i] {
				cost[i][j] = int64(rng.Intn(100))
			}
		}
		_, fast, err := AssignmentSolve(cost)
		if err != nil {
			t.Fatal(err)
		}
		_, slow, err := AssignmentBrute(cost)
		if err != nil {
			t.Fatal(err)
		}
		if fast != slow {
			t.Fatalf("assignment cost %d != brute %d for %v", fast, slow, cost)
		}
	}
}

func TestAssignmentSolveReturnsValidAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(12)
		cost := make([][]int64, n)
		for i := range cost {
			cost[i] = make([]int64, n)
			for j := range cost[i] {
				cost[i][j] = int64(rng.Intn(1000))
			}
		}
		assign, total, err := AssignmentSolve(cost)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, n)
		var check int64
		for r, c := range assign {
			if c < 0 || c >= n || seen[c] {
				t.Fatalf("invalid assignment %v", assign)
			}
			seen[c] = true
			check += cost[r][c]
		}
		if check != total {
			t.Fatalf("reported total %d != recomputed %d", total, check)
		}
	}
}

func TestAssignmentSolveRejectsNonSquare(t *testing.T) {
	if _, _, err := AssignmentSolve([][]int64{{1, 2}, {3}}); err == nil {
		t.Error("non-square matrix accepted")
	}
	if _, _, err := AssignmentBrute([][]int64{{1, 2}}); err == nil {
		t.Error("brute non-square matrix accepted")
	}
}

func TestAssignmentNegativeCosts(t *testing.T) {
	cost := [][]int64{{-5, 2}, {3, -7}}
	_, fast, err := AssignmentSolve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if fast != -12 {
		t.Errorf("assignment with negatives = %d, want -12", fast)
	}
}

// The Hungarian footrule aggregation matches the exhaustive optimum.
func TestFootruleOptimalFullAgreesWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(5)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		got, gotObj, err := FootruleOptimalFull(in)
		if err != nil {
			t.Fatal(err)
		}
		_, wantObj, err := FootruleOptimalFullBrute(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotObj-wantObj) > 1e-9 {
			t.Fatalf("footrule optimum %v != brute %v", gotObj, wantObj)
		}
		// Reported objective matches the returned ranking's objective.
		obj, err := SumL1Ranking(got, in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(obj-gotObj) > 1e-9 {
			t.Fatalf("reported objective %v != achieved %v", gotObj, obj)
		}
		if !got.IsFull() {
			t.Fatal("FootruleOptimalFull returned ties")
		}
	}
}

func TestFootruleOptimalFullUnanimous(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pr := randrank.Full(rng, 15)
	got, obj, err := FootruleOptimalFull([]*ranking.PartialRanking{pr, pr, pr})
	if err != nil {
		t.Fatal(err)
	}
	if obj != 0 || !got.Equal(pr) {
		t.Errorf("unanimous inputs not recovered: obj=%v got=%v", obj, got)
	}
}

func TestFootruleOptimalFullEmptyDomain(t *testing.T) {
	in := []*ranking.PartialRanking{ranking.MustFromBuckets(0, nil)}
	got, obj, err := FootruleOptimalFull(in)
	if err != nil || obj != 0 || got.N() != 0 {
		t.Errorf("empty domain: %v %v %v", got, obj, err)
	}
	if _, _, err := FootruleOptimalFull(nil); err == nil {
		t.Error("empty ensemble accepted")
	}
}
