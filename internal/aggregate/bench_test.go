package aggregate

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

func benchEnsemble(n, m int, theta float64) []*ranking.PartialRanking {
	rng := rand.New(rand.NewSource(int64(n*31 + m)))
	in, _ := randrank.MallowsEnsemble(rng, n, m, theta)
	return in
}

func BenchmarkMedianScores(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		in := benchEnsemble(n, 7, 0.5)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MedianScores(in, LowerMedian); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOptimalPartialEngines(b *testing.B) {
	for _, n := range []int{200, 800, 3200} {
		rng := rand.New(rand.NewSource(int64(n)))
		f := make([]float64, n)
		for i := range f {
			f[i] = float64(rng.Intn(2*n)) / 2
		}
		b.Run(fmt.Sprintf("figure1/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := OptimalPartialFigure1(f); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("prefixsum/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := OptimalPartial(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHungarian(b *testing.B) {
	for _, n := range []int{50, 200} {
		in := benchEnsemble(n, 5, 0.5)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := FootruleOptimalFull(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBaselines(b *testing.B) {
	in := benchEnsemble(500, 5, 0.5)
	b.Run("borda", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Borda(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mc4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MarkovChain(in, MC4, MarkovChainOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("localkemeny", func(b *testing.B) {
		start, err := Borda(in)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := LocalKemenize(start, in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkKemenyOptimalDP(b *testing.B) {
	for _, n := range []int{10, 14, 18} {
		in := benchEnsemble(n, 5, 0.5)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := KemenyOptimalDP(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
