package aggregate

import (
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

func TestMajorityMarginsAntisymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		m := 1 + rng.Intn(6)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		margin, err := MajorityMargins(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if margin[i][i] != 0 {
				t.Fatalf("diagonal nonzero at %d", i)
			}
			for j := 0; j < n; j++ {
				if margin[i][j] != -margin[j][i] {
					t.Fatalf("not antisymmetric at %d,%d", i, j)
				}
				if abs := margin[i][j]; abs > m || abs < -m {
					t.Fatalf("margin out of range: %d", abs)
				}
			}
		}
	}
}

func TestCondorcetWinnerKnown(t *testing.T) {
	// 0 beats everything in 2 of 3 ballots.
	in := []*ranking.PartialRanking{
		ranking.MustFromOrder([]int{0, 1, 2}),
		ranking.MustFromOrder([]int{0, 2, 1}),
		ranking.MustFromOrder([]int{2, 1, 0}),
	}
	w, ok, err := CondorcetWinner(in)
	if err != nil || !ok || w != 0 {
		t.Errorf("CondorcetWinner = %d,%v,%v; want 0,true", w, ok, err)
	}
	l, ok, err := CondorcetLoser(in)
	if err != nil || !ok || l != 1 {
		t.Errorf("CondorcetLoser = %d,%v,%v; want 1,true", l, ok, err)
	}
	// A Condorcet cycle has neither winner nor loser.
	cycle := []*ranking.PartialRanking{
		ranking.MustFromOrder([]int{0, 1, 2}),
		ranking.MustFromOrder([]int{1, 2, 0}),
		ranking.MustFromOrder([]int{2, 0, 1}),
	}
	if _, ok, _ := CondorcetWinner(cycle); ok {
		t.Error("cycle has a Condorcet winner")
	}
	if _, ok, _ := CondorcetLoser(cycle); ok {
		t.Error("cycle has a Condorcet loser")
	}
}

// The classical theorem: the Kemeny optimum ranks a Condorcet winner first
// and a Condorcet loser last. Verified against the brute-force optimum.
func TestKemenyOptimumSatisfiesCondorcet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	checkedW, checkedL := 0, 0
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(4)
		m := 1 + 2*rng.Intn(3) // odd voter counts make majorities decisive
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 2))
		}
		opt, _, err := KemenyOptimalBrute(in)
		if err != nil {
			t.Fatal(err)
		}
		if w, ok, _ := CondorcetWinner(in); ok {
			checkedW++
			if opt.Order()[0] != w {
				t.Fatalf("Kemeny optimum %v does not rank Condorcet winner %d first\ninputs=%v", opt, w, in)
			}
		}
		if l, ok, _ := CondorcetLoser(in); ok {
			checkedL++
			if opt.Order()[n-1] != l {
				t.Fatalf("Kemeny optimum %v does not rank Condorcet loser %d last\ninputs=%v", opt, l, in)
			}
		}
	}
	if checkedW < 20 || checkedL < 20 {
		t.Fatalf("too few Condorcet instances generated (%d winners, %d losers)", checkedW, checkedL)
	}
}

// Dwork et al.: a locally Kemeny-optimal ranking leaves no adjacent pair
// against a strict majority, and in particular ranks a Condorcet winner
// first.
func TestLocalKemenizeSatisfiesExtendedCondorcet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	winners := 0
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		m := 1 + 2*rng.Intn(3)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		out, err := LocalKemenize(randrank.Full(rng, n), in)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := SatisfiesExtendedCondorcet(out, in)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("local Kemenization left a majority-violating adjacent pair: %v\ninputs=%v", out, in)
		}
		if w, has, _ := CondorcetWinner(in); has {
			winners++
			// A Condorcet winner bubbles to the front: any element directly
			// before it would violate a strict majority.
			if out.Order()[0] != w {
				t.Fatalf("Condorcet winner %d not first in %v", w, out)
			}
		}
	}
	if winners < 10 {
		t.Fatalf("too few Condorcet winner instances (%d)", winners)
	}
}

func TestSatisfiesExtendedCondorcetErrors(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1})
	tied := ranking.MustFromBuckets(2, [][]int{{0, 1}})
	if _, err := SatisfiesExtendedCondorcet(tied, []*ranking.PartialRanking{a}); err == nil {
		t.Error("tied candidate accepted")
	}
	if _, _, err := CondorcetWinner(nil); err == nil {
		t.Error("empty ensemble accepted")
	}
	if _, _, err := CondorcetLoser(nil); err == nil {
		t.Error("empty ensemble accepted")
	}
	if _, err := MajorityMargins(nil); err == nil {
		t.Error("empty ensemble accepted")
	}
}

// The flip side of the compliance theorem: median rank aggregation is a
// positional method and genuinely CAN place a non-Condorcet-winner first
// (experiment E14 quantifies how often). This test pins one concrete
// violating instance found by seeded search, so the phenomenon is
// reproducible rather than anecdotal.
func TestMedianCanViolateCondorcet(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 5000; trial++ {
		n := 4 + rng.Intn(3)
		m := 3 + 2*rng.Intn(2)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 2))
		}
		w, ok, err := CondorcetWinner(in)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		med, err := MedianFull(in)
		if err != nil {
			t.Fatal(err)
		}
		if med.Order()[0] != w {
			// Found a violation: verify it is genuine (w really is the
			// Condorcet winner and really is not first).
			margin, _ := MajorityMargins(in)
			for x := 0; x < n; x++ {
				if x != w && margin[w][x] <= 0 {
					t.Fatalf("search returned a non-winner: margin[%d][%d]=%d", w, x, margin[w][x])
				}
			}
			t.Logf("violation found at trial %d: winner %d, median output %v", trial, w, med)
			return
		}
	}
	t.Fatal("no Condorcet violation found in 5000 seeded trials; either the search is broken or median ranks became Condorcet-consistent")
}
