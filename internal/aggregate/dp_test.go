package aggregate

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

// halfIntegralScores draws a random score vector with 2f integral, the
// precondition of the Figure 1 engine.
func halfIntegralScores(rng *rand.Rand, n int) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = float64(rng.Intn(4*n+2)) / 2
	}
	return f
}

// The three DP engines and the exhaustive search agree on optimal cost, and
// the rankings they return achieve that cost.
func TestDPEnginesAgreeWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 80; trial++ {
		n := rng.Intn(8)
		f := halfIntegralScores(rng, n)

		brute, err := OptimalPartialBrute(f)
		if err != nil {
			t.Fatal(err)
		}
		general, err := OptimalPartial(f)
		if err != nil {
			t.Fatal(err)
		}
		fig1, err := OptimalPartialFigure1(f)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(general.Cost-brute.Cost) > 1e-9 {
			t.Fatalf("general DP cost %v != brute %v for f=%v", general.Cost, brute.Cost, f)
		}
		if fig1.Cost4 != brute.Cost4 {
			t.Fatalf("Figure 1 cost4 %d != brute %d for f=%v", fig1.Cost4, brute.Cost4, f)
		}
		// Returned rankings must achieve the reported cost.
		if n > 0 {
			if got := l1ToScores(general.Ranking, f); math.Abs(got-general.Cost) > 1e-9 {
				t.Fatalf("general ranking cost %v != reported %v", got, general.Cost)
			}
			if got := l1ToScores(fig1.Ranking, f); math.Abs(got-fig1.Cost) > 1e-9 {
				t.Fatalf("fig1 ranking cost %v != reported %v", got, fig1.Cost)
			}
		}
	}
}

// The general engine also handles arbitrary (non-half-integral) scores.
func TestDPGeneralArbitraryScores(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(7)
		f := make([]float64, n)
		for i := range f {
			f[i] = rng.Float64() * 10
		}
		brute, err := OptimalPartialBrute(f)
		if err != nil {
			t.Fatal(err)
		}
		general, err := OptimalPartial(f)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(general.Cost-brute.Cost) > 1e-9 {
			t.Fatalf("general DP cost %v != brute %v for f=%v", general.Cost, brute.Cost, f)
		}
	}
}

func TestFigure1RejectsNonHalfIntegral(t *testing.T) {
	_, err := OptimalPartialFigure1([]float64{0.25, 1})
	if !errors.Is(err, ErrNotHalfIntegral) {
		t.Errorf("err = %v, want ErrNotHalfIntegral", err)
	}
	if _, err := OptimalPartialFigure1([]float64{math.Pi}); !errors.Is(err, ErrNotHalfIntegral) {
		t.Errorf("err = %v, want ErrNotHalfIntegral", err)
	}
}

func TestDPEmptyAndSingleton(t *testing.T) {
	for _, engine := range []func([]float64) (DPResult, error){OptimalPartial, OptimalPartialFigure1} {
		res, err := engine(nil)
		if err != nil || res.Cost != 0 || res.Ranking.N() != 0 {
			t.Errorf("empty input: res=%+v err=%v", res, err)
		}
		res, err = engine([]float64{7})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ranking.N() != 1 || res.Cost != 6 { // |1 - 7|
			t.Errorf("singleton: cost=%v ranking=%v", res.Cost, res.Ranking)
		}
	}
}

// When f is itself a valid position vector of some partial ranking, the DP
// recovers cost zero.
func TestDPRecoversExactPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		pr := randrank.Partial(rng, 1+rng.Intn(12), 4)
		res, err := OptimalPartialFigure1(pr.Positions())
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != 0 {
			t.Fatalf("cost %v for exact positions of %v", res.Cost, pr)
		}
		if !res.Ranking.Equal(pr) {
			t.Fatalf("DP returned %v, want %v", res.Ranking, pr)
		}
	}
}

// Theorem 10, second part: with partial-ranking inputs, the DP aggregate is
// within factor 2 of the best partial ranking under sum-of-L1.
func TestTheorem10FactorTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	worst := 0.0
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		fd, err := OptimalPartialAggregate(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SumL1Ranking(fd, in)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := OptimalPartialRankingBrute(in)
		if err != nil {
			t.Fatal(err)
		}
		if got > 2*opt+1e-9 {
			t.Fatalf("Theorem 10 factor violated: got %v, optimal %v", got, opt)
		}
		if opt > 0 && got/opt > worst {
			worst = got / opt
		}
	}
	t.Logf("worst observed Theorem 10 factor: %.3f (bound 2)", worst)
}

// The DP minimizes L1 to the median over all partial rankings, so its
// objective can never exceed that of the median-induced bucket order.
func TestDPBeatsInducedRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		m := 1 + rng.Intn(7)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 5))
		}
		f, err := MedianScores(in, LowerMedian)
		if err != nil {
			t.Fatal(err)
		}
		res, err := OptimalPartialFigure1(f)
		if err != nil {
			t.Fatal(err)
		}
		induced := ranking.FromScores(f)
		if got := l1ToScores(induced, f); res.Cost > got+1e-9 {
			t.Fatalf("DP cost %v worse than induced ranking cost %v", res.Cost, got)
		}
	}
}

// Larger-scale cross-check of the two fast engines (no brute force).
func TestDPEnginesAgreeLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(150)
		f := halfIntegralScores(rng, n)
		general, err := OptimalPartial(f)
		if err != nil {
			t.Fatal(err)
		}
		fig1, err := OptimalPartialFigure1(f)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(general.Cost-fig1.Cost) > 1e-6 {
			t.Fatalf("engines disagree at n=%d: %v vs %v", n, general.Cost, fig1.Cost)
		}
	}
}
