package aggregate

import (
	"testing"

	"repro/internal/ranking"
)

// rankingFromBytes maps a byte string onto a bucket order with common ties.
func rankingFromBytes(data []byte) *ranking.PartialRanking {
	n := len(data)
	groups := map[byte][]int{}
	var labels []byte
	for i, b := range data {
		lbl := b % 7
		if _, ok := groups[lbl]; !ok {
			labels = append(labels, lbl)
		}
		groups[lbl] = append(groups[lbl], i)
	}
	for i := 1; i < len(labels); i++ {
		for j := i; j > 0 && labels[j] < labels[j-1]; j-- {
			labels[j], labels[j-1] = labels[j-1], labels[j]
		}
	}
	buckets := make([][]int, 0, len(labels))
	for _, l := range labels {
		buckets = append(buckets, groups[l])
	}
	return ranking.MustFromBuckets(n, buckets)
}

// FuzzDPEngines checks that the two Figure 1 implementations agree exactly
// on arbitrary half-integral score vectors, and that the returned ranking
// achieves the reported cost.
func FuzzDPEngines(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{255, 0, 255})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		scores := make([]float64, len(data))
		for i, b := range data {
			scores[i] = float64(b%50) / 2
		}
		general, err := OptimalPartial(scores)
		if err != nil {
			t.Fatal(err)
		}
		fig1, err := OptimalPartialFigure1(scores)
		if err != nil {
			t.Fatal(err)
		}
		if general.Cost4 != fig1.Cost4 {
			t.Fatalf("engines disagree: %d vs %d on %v", general.Cost4, fig1.Cost4, scores)
		}
		if len(data) > 0 {
			if got := l1ToScores(fig1.Ranking, scores); got != fig1.Cost {
				t.Fatalf("reported cost %v, ranking achieves %v", fig1.Cost, got)
			}
		}
	})
}

// FuzzMedianScores checks Lemma 8 against byte-derived challengers.
func FuzzMedianScores(f *testing.F) {
	f.Add([]byte{3, 1, 4, 1, 5}, []byte{2, 7, 1, 8, 2})
	f.Add([]byte{0}, []byte{0})
	f.Fuzz(func(t *testing.T, da, db []byte) {
		if len(da) > len(db) {
			da = da[:len(db)]
		} else {
			db = db[:len(da)]
		}
		if len(da) == 0 || len(da) > 32 {
			return
		}
		in := []*ranking.PartialRanking{rankingFromBytes(da), rankingFromBytes(db)}
		med, err := MedianScores(in, LowerMedian)
		if err != nil {
			t.Fatal(err)
		}
		medObj := SumL1(med, in)
		// The byte-derived challenger.
		cand := make([]float64, len(da))
		for i := range cand {
			cand[i] = float64(da[i]%31) / 2
		}
		if obj := SumL1(cand, in); obj < medObj-1e-9 {
			t.Fatalf("Lemma 8 violated by challenger %v: %v < %v", cand, obj, medObj)
		}
	})
}
