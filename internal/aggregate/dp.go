package aggregate

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/guard"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// This file implements the dynamic program of Theorem 10 / Figure 1 of the
// paper: given a score function f (in practice the coordinate-wise median of
// the inputs), find a partial ranking f-dagger minimizing L1(f-dagger, f)
// over ALL partial rankings of the domain, in O(n^2) time.
//
// By Lemma 27 the optimum is consistent with f, so after sorting elements by
// f the problem becomes choosing cut points 0 = s0 < s1 < ... < st = n; a
// bucket covering sorted slots i+1..j (1-based) sits at position (i+j+1)/2
// and costs c(i,j) = sum_{l=i+1..j} |f(l) - (i+j+1)/2|.
//
// Two engines are provided and cross-checked by the tests:
//
//   - OptimalPartial: prefix-sum costs, O(n^2) time, works for arbitrary
//     float64 scores.
//   - OptimalPartialFigure1: the paper's Figure 1 pseudocode verbatim,
//     including the amortized-O(1) incremental cost update of Lemma 37,
//     which requires 2*f(i) to be integral (true for lower/upper medians of
//     bucket positions). Exact integer arithmetic throughout.

// DPResult is the outcome of the optimal-partial-ranking dynamic program.
type DPResult struct {
	// Ranking is the optimal partial ranking f-dagger.
	Ranking *ranking.PartialRanking
	// Cost is L1(f-dagger, f), the minimum over all partial rankings.
	Cost float64
	// Cost4 is the exact quadrupled cost when the engine ran in integer
	// arithmetic (Figure 1 engine); 4*Cost otherwise.
	Cost4 int64
}

// OptimalPartial returns the partial ranking minimizing L1(candidate, f)
// over all partial rankings of {0..len(f)-1}, using O(n^2) dynamic
// programming with prefix-sum bucket costs. Ties in f are broken by element
// ID when assigning elements to sorted slots (the cost is unaffected).
func OptimalPartial(f []float64) (DPResult, error) {
	n := len(f)
	if n == 0 {
		return DPResult{Ranking: ranking.MustFromBuckets(0, nil)}, nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	stableSortByScore(idx, f)
	g := make([]float64, n)
	for i, e := range idx {
		g[i] = f[e]
	}
	// Prefix sums of sorted scores.
	prefix := make([]float64, n+1)
	for i, v := range g {
		prefix[i+1] = prefix[i] + v
	}
	// cost(i, j) for the bucket of sorted slots i..j-1 (0-based, exclusive
	// j), position m = (i+j+1)/2.
	cost := func(i, j int) float64 {
		m := float64(i+j+1) / 2
		s := sort.Search(j-i, func(t int) bool { return g[i+t] >= m }) + i
		return (m*float64(s-i) - (prefix[s] - prefix[i])) +
			((prefix[j] - prefix[s]) - m*float64(j-s))
	}
	S := make([]float64, n+1)
	parent := make([]int, n+1)
	for j := 1; j <= n; j++ {
		S[j] = math.Inf(1)
		for i := 0; i < j; i++ {
			if v := S[i] + cost(i, j); v < S[j] {
				S[j] = v
				parent[j] = i
			}
		}
	}
	pr := bucketsFromCuts(idx, parent)
	return DPResult{Ranking: pr, Cost: S[n], Cost4: int64(math.Round(4 * S[n]))}, nil
}

// ErrNotHalfIntegral is returned by OptimalPartialFigure1 when some score is
// not an integral multiple of 1/2, the precondition of the paper's
// linear-space algorithm ("we make the additional assumption that 2f(i) is
// integral for all i").
var ErrNotHalfIntegral = errors.New("aggregate: Figure 1 DP requires 2*f(i) integral for all i")

// OptimalPartialFigure1 is the faithful implementation of Figure 1 of the
// paper: linear space (beyond the parent pointers needed to emit the
// answer), O(n^2) time, with c(i, j) maintained in amortized O(1) per step
// via Lemma 37. All arithmetic is exact (quadrupled integer units). The
// scores must satisfy the paper's precondition that 2f(i) is integral.
func OptimalPartialFigure1(f []float64) (DPResult, error) {
	n := len(f)
	g4 := make([]int64, n)
	for i, v := range f {
		q := v * 4
		if q != math.Trunc(q) || math.Abs(q) > 1e17 {
			return DPResult{}, ErrNotHalfIntegral
		}
		if int64(q)%2 != 0 {
			return DPResult{}, ErrNotHalfIntegral
		}
		g4[i] = int64(q)
	}
	return optimalPartialFigure1Int(f, g4)
}

// optimalPartialFigure1Int runs Figure 1 on quadrupled integer scores g4
// (indexed by element ID, each divisible by 2); f is used only for the
// tie-broken sort order and must agree with g4.
func optimalPartialFigure1Int(f []float64, g4 []int64) (DPResult, error) {
	n := len(g4)
	if n == 0 {
		return DPResult{Ranking: ranking.MustFromBuckets(0, nil)}, nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	stableSortByScore(idx, f)
	// h is 1-based sorted quadrupled scores, as in the paper's f(1..n);
	// H holds prefix sums so each bucket cost is O(1) once the split
	// pointer k is known.
	h := make([]int64, n+1)
	H := make([]int64, n+1)
	for i, e := range idx {
		h[i+1] = g4[e]
		H[i+1] = H[i] + h[i+1]
	}

	S := make([]int64, n+1) // quadrupled optimal costs
	parent := make([]int, n+1)
	for j := 1; j <= n; j++ {
		best, bestI := int64(-1), 0
		// The paper's pointer k (line 5): the first index with
		// f(k) >= (i+j+1)/2, advanced monotonically as i grows. The
		// published Lemma 37 update implicitly assumes k lands inside the
		// bucket (k >= i+1); clamping to the bucket start keeps the cost
		// exact in the degenerate case where every bucket member already
		// exceeds the midpoint (e.g. repeated scores), at the same
		// amortized O(1) cost.
		k := 1
		for i := 0; i <= j-1; i++ {
			m4 := int64(2 * (i + j + 1)) // quadrupled midpoint (i+j+1)/2
			for k <= j && h[k] < m4 {
				k++
			}
			kk := k
			if kk < i+1 {
				kk = i + 1
			}
			// c(i,j) = sum_{l=i+1..j} |f(l) - (i+j+1)/2| split at kk:
			// entries below the midpoint, then entries at/above it.
			c := (m4*int64(kk-1-i) - (H[kk-1] - H[i])) +
				((H[j] - H[kk-1]) - m4*int64(j-kk+1))
			if v := S[i] + c; best < 0 || v < best {
				best, bestI = v, i
			}
		}
		S[j] = best
		parent[j] = bestI
	}
	pr := bucketsFromCuts(idx, parent)
	return DPResult{Ranking: pr, Cost: float64(S[n]) / 4, Cost4: S[n]}, nil
}

// bucketsFromCuts reconstructs the optimal bucket order from the DP parent
// pointers over the sorted element list.
func bucketsFromCuts(sortedElems []int, parent []int) *ranking.PartialRanking {
	n := len(sortedElems)
	var cuts []int
	for j := n; j > 0; j = parent[j] {
		cuts = append(cuts, j)
	}
	// cuts is descending; reverse into ascending cut points.
	for l, r := 0, len(cuts)-1; l < r; l, r = l+1, r-1 {
		cuts[l], cuts[r] = cuts[r], cuts[l]
	}
	buckets := make([][]int, 0, len(cuts))
	prev := 0
	for _, c := range cuts {
		buckets = append(buckets, sortedElems[prev:c])
		prev = c
	}
	return ranking.MustFromBuckets(n, buckets)
}

// OptimalPartialAggregate implements Theorem 10 end-to-end: compute the
// median position vector f of the inputs and return the L1-closest partial
// ranking f-dagger via the Figure 1 dynamic program. For every partial
// ranking sigma,
//
//	sum_i L1(f-dagger, sigma_i) <= 2 * sum_i L1(sigma, sigma_i),
//
// and the same bound with factor 3 holds against arbitrary score functions.
func OptimalPartialAggregate(rankings []*ranking.PartialRanking) (_ *ranking.PartialRanking, err error) {
	defer guard.Capture(&err)
	defer telemetry.StartSpan("aggregate.optimal_partial").End()
	if err := checkInputs(rankings); err != nil {
		return nil, err
	}
	f, err := MedianScores(rankings, LowerMedian)
	if err != nil {
		return nil, err
	}
	res, err := OptimalPartialFigure1(f)
	if err != nil {
		return nil, fmt.Errorf("aggregate: %w", err)
	}
	return res.Ranking, nil
}

// OptimalPartialBrute finds the true L1-closest partial ranking to f by
// enumerating all Fubini(n) bucket orders. Exponential; test/experiment
// reference for the DP engines.
func OptimalPartialBrute(f []float64) (DPResult, error) {
	n := len(f)
	best := DPResult{Cost: math.Inf(1)}
	ranking.ForEachPartialRanking(n, func(pr *ranking.PartialRanking) bool {
		c := l1ToScores(pr, f)
		if c < best.Cost {
			best.Cost = c
			best.Ranking = pr
		}
		return true
	})
	if n == 0 {
		best = DPResult{Ranking: ranking.MustFromBuckets(0, nil)}
	}
	best.Cost4 = int64(math.Round(4 * best.Cost))
	return best, nil
}

func l1ToScores(pr *ranking.PartialRanking, f []float64) float64 {
	var sum float64
	for e := 0; e < pr.N(); e++ {
		d := pr.Pos(e) - f[e]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// stableSortByScore sorts an initially-ascending index slice by score,
// breaking ties by element ID.
func stableSortByScore(idx []int, f []float64) {
	sort.SliceStable(idx, func(a, b int) bool { return f[idx[a]] < f[idx[b]] })
}
