package aggregate

import (
	"errors"

	"repro/internal/ranking"
)

// Majority-graph machinery. Dwork et al. (whose heuristics Section 6
// benchmarks against) analyze aggregation through pairwise majorities: the
// extended Condorcet criterion says that whenever the electorate splits
// into a block T each of whose members beats each member of U by strict
// majority, T must precede U in the aggregate. Local Kemenization (and the
// exact Kemeny optimum) satisfy it; the tests pin both.

// MajorityMargins returns the matrix margin[i][j] = (#rankings with i
// strictly ahead of j) - (#rankings with j strictly ahead of i). Ties count
// toward neither side. margin is antisymmetric.
func MajorityMargins(rankings []*ranking.PartialRanking) ([][]int, error) {
	if err := checkInputs(rankings); err != nil {
		return nil, err
	}
	n := rankings[0].N()
	margin := make([][]int, n)
	for i := range margin {
		margin[i] = make([]int, n)
	}
	for _, r := range rankings {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				switch {
				case r.Ahead(i, j):
					margin[i][j]++
					margin[j][i]--
				case r.Ahead(j, i):
					margin[j][i]++
					margin[i][j]--
				}
			}
		}
	}
	return margin, nil
}

// CondorcetWinner returns the element that beats every other element by
// strict majority, if one exists.
func CondorcetWinner(rankings []*ranking.PartialRanking) (int, bool, error) {
	margin, err := MajorityMargins(rankings)
	if err != nil {
		return 0, false, err
	}
	n := len(margin)
	for w := 0; w < n; w++ {
		wins := true
		for x := 0; x < n && wins; x++ {
			if x != w && margin[w][x] <= 0 {
				wins = false
			}
		}
		if wins {
			return w, true, nil
		}
	}
	return 0, false, nil
}

// CondorcetLoser returns the element beaten by every other element by
// strict majority, if one exists.
func CondorcetLoser(rankings []*ranking.PartialRanking) (int, bool, error) {
	margin, err := MajorityMargins(rankings)
	if err != nil {
		return 0, false, err
	}
	n := len(margin)
	for l := 0; l < n; l++ {
		loses := true
		for x := 0; x < n && loses; x++ {
			if x != l && margin[l][x] >= 0 {
				loses = false
			}
		}
		if loses {
			return l, true, nil
		}
	}
	return 0, false, nil
}

// SatisfiesExtendedCondorcet reports whether a full ranking respects every
// strict-majority edge "transitively closed at the top": for every pair
// (i, j) with margin[i][j] > 0 AND no majority cycle forcing otherwise, the
// check here is the simple pairwise one used by Dwork et al.'s local
// Kemenization analysis — no adjacent pair may violate a strict majority,
// and any element beaten by a strict majority of a block cannot precede the
// whole block. The practical (and testable) consequence implemented here:
// no ADJACENT pair of the candidate violates a strict majority.
func SatisfiesExtendedCondorcet(candidate *ranking.PartialRanking, rankings []*ranking.PartialRanking) (bool, error) {
	if !candidate.IsFull() {
		return false, errNotFullCandidate
	}
	margin, err := MajorityMargins(rankings)
	if err != nil {
		return false, err
	}
	order := candidate.Order()
	for i := 0; i+1 < len(order); i++ {
		if margin[order[i+1]][order[i]] > 0 {
			return false, nil
		}
	}
	return true, nil
}

// errNotFullCandidate reports a tied candidate where a full ranking is
// required.
var errNotFullCandidate = errors.New("aggregate: extended-Condorcet check requires a full candidate ranking")
