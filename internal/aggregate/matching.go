package aggregate

import (
	"errors"
	"fmt"

	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// This file implements the footrule-optimal full aggregation the paper uses
// as its exact-but-heavy comparator (footnote 4): minimizing
// sum_i L1(sigma, sigma_i) over full rankings sigma is an assignment problem
// between elements and positions 1..n with cost(e, r) = sum_i |r -
// sigma_i(e)|, solved exactly by a minimum-cost perfect matching. The
// Hungarian algorithm below is O(n^3).

const infCost = int64(1) << 62

// AssignmentSolve solves the linear assignment problem for a square cost
// matrix: it returns assign with assign[row] = col minimizing the total
// cost, and the minimum total. The matrix must be square and costs must be
// small enough that n*max|cost| fits in int64.
func AssignmentSolve(cost [][]int64) ([]int, int64, error) {
	defer telemetry.StartSpan("aggregate.assignment").End()
	n := len(cost)
	for _, row := range cost {
		if len(row) != n {
			return nil, 0, errors.New("aggregate: assignment cost matrix not square")
		}
	}
	if n == 0 {
		return nil, 0, nil
	}
	// Hungarian algorithm with potentials (shortest augmenting paths);
	// 1-based internally, p[j] is the row matched to column j.
	u := make([]int64, n+1)
	v := make([]int64, n+1)
	p := make([]int, n+1)
	way := make([]int, n+1)
	minv := make([]int64, n+1)
	used := make([]bool, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			minv[j] = infCost
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := infCost
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign := make([]int, n)
	var total int64
	for j := 1; j <= n; j++ {
		if p[j] == 0 {
			return nil, 0, errors.New("aggregate: assignment failed to saturate")
		}
		assign[p[j]-1] = j - 1
		total += cost[p[j]-1][j-1]
	}
	return assign, total, nil
}

// AssignmentBrute solves the assignment problem by enumerating all
// permutations; exponential, used to validate AssignmentSolve.
func AssignmentBrute(cost [][]int64) ([]int, int64, error) {
	n := len(cost)
	for _, row := range cost {
		if len(row) != n {
			return nil, 0, errors.New("aggregate: assignment cost matrix not square")
		}
	}
	best := infCost
	var bestAssign []int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			var total int64
			for r, c := range perm {
				total += cost[r][c]
			}
			if total < best {
				best = total
				bestAssign = append([]int(nil), perm...)
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if n == 0 {
		return []int{}, 0, nil
	}
	return bestAssign, best, nil
}

// FootruleOptimalFull returns the full ranking sigma minimizing
// sum_i L1(sigma, sigma_i) over all full rankings, computed exactly via the
// Hungarian algorithm, together with the optimal objective value. This is
// the paper's "computationally simple it is not" exact footrule aggregation
// that median rank aggregation 2-approximates (Theorem 11).
func FootruleOptimalFull(rankings []*ranking.PartialRanking) (_ *ranking.PartialRanking, _ float64, err error) {
	defer guard.Capture(&err)
	defer telemetry.StartSpan("aggregate.footrule_full").End()
	if err := checkInputs(rankings); err != nil {
		return nil, 0, err
	}
	n := rankings[0].N()
	if n == 0 {
		return ranking.MustFromBuckets(0, nil), 0, nil
	}
	// cost2[e][r] = sum_i |2*(r+1) - pos2_i(e)|, in doubled units. Rows are
	// independent, so the n*n*m fill fans out across the parallel evaluation
	// pool; the costs are exact integers, so the parallel fill is identical
	// to the serial one and only the Hungarian solve below stays sequential.
	cost := make([][]int64, n)
	for e := 0; e < n; e++ {
		cost[e] = make([]int64, n)
	}
	if err := metrics.ParallelEach(n, "footrule_cost", func(_ *metrics.Workspace, e int) error {
		row := cost[e]
		for r := 0; r < n; r++ {
			var c int64
			target := int64(2 * (r + 1))
			for _, rk := range rankings {
				c += abs64(target - rk.Pos2(e))
			}
			row[r] = c
		}
		return nil
	}); err != nil {
		return nil, 0, err
	}
	assign, total2, err := AssignmentSolve(cost)
	if err != nil {
		return nil, 0, fmt.Errorf("aggregate: footrule matching: %w", err)
	}
	order := make([]int, n)
	for e, r := range assign {
		order[r] = e
	}
	pr, err := ranking.FromOrder(order)
	if err != nil {
		return nil, 0, err
	}
	return pr, float64(total2) / 2, nil
}
