package aggregate

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/randrank"
	"repro/internal/ranking"
)

// dupEnsemble draws `distinct` random partial rankings and inflates them to m
// voters by cloning, so cached runs see heavy fingerprint-level duplication.
func dupEnsemble(rng *rand.Rand, n, distinct, m int) []*ranking.PartialRanking {
	base := make([]*ranking.PartialRanking, distinct)
	for i := range base {
		base[i] = randrank.Partial(rng, n, 3)
	}
	out := make([]*ranking.PartialRanking, m)
	for i := range out {
		out[i] = base[rng.Intn(distinct)].Clone()
	}
	return out
}

// SumDistanceParallel must be bit-for-bit identical to SumDistanceWith for
// every paper metric, with and without the memoization layer.
func TestSumDistanceParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	in := dupEnsemble(rng, 15, 5, 40)
	cand := randrank.Partial(rng, 15, 3)
	ws := metrics.GetWorkspace()
	defer metrics.PutWorkspace(ws)
	dists := []struct {
		name string
		d    metrics.DistanceWS
	}{
		{"kprof", metrics.KProfWS},
		{"fprof", metrics.FProfWS},
		{"khaus", metrics.KHausWS},
		{"fhaus", metrics.FHausWS},
		{"kprof_cached", metrics.CachedKProf(cache.New(1024))},
		{"fhaus_cached", metrics.CachedFHaus(cache.New(1024))},
	}
	for _, tc := range dists {
		want, err := SumDistanceWith(ws, cand, in, tc.d)
		if err != nil {
			t.Fatalf("%s serial: %v", tc.name, err)
		}
		got, err := SumDistanceParallel(cand, in, tc.d)
		if err != nil {
			t.Fatalf("%s parallel: %v", tc.name, err)
		}
		if got != want {
			t.Errorf("%s: parallel %v != serial %v", tc.name, got, want)
		}
	}
}

// BestOfInputsParallel must return the same winner index, struct, and
// objective as the serial sweep — including the first-minimum tie-break,
// which duplicate-heavy ensembles exercise hard (clones tie exactly).
func TestBestOfInputsParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	ws := metrics.GetWorkspace()
	defer metrics.PutWorkspace(ws)
	for trial := 0; trial < 10; trial++ {
		in := dupEnsemble(rng, 12, 4, 24)
		for _, d := range []metrics.DistanceWS{metrics.KProfWS, metrics.CachedKProf(cache.New(1024))} {
			wantIdx, wantR, wantObj, err := BestOfInputsWith(ws, in, d)
			if err != nil {
				t.Fatal(err)
			}
			gotIdx, gotR, gotObj, err := BestOfInputsParallel(in, d)
			if err != nil {
				t.Fatal(err)
			}
			if gotIdx != wantIdx || gotR != wantR || gotObj != wantObj {
				t.Fatalf("trial %d: parallel (%d, %p, %v) != serial (%d, %p, %v)",
					trial, gotIdx, gotR, gotObj, wantIdx, wantR, wantObj)
			}
		}
	}
	// Degenerate inputs behave like the serial path.
	if _, _, _, err := BestOfInputsParallel(nil, metrics.KProfWS); !errors.Is(err, ErrNoInput) {
		t.Errorf("empty ensemble err = %v, want ErrNoInput", err)
	}
}

// Errors inside a parallel objective term short-circuit and surface.
func TestSumDistanceParallelPropagatesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	in := dupEnsemble(rng, 10, 3, 16)
	boom := errors.New("boom")
	_, err := SumDistanceParallel(in[0], in, func(_ *metrics.Workspace, a, b *ranking.PartialRanking) (float64, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

// MedianScores2's chunked parallel sweep must produce exactly the integers
// the serial fill does, for every tie policy, above and below the fan-out
// threshold.
func TestMedianScores2ParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	// n=600 > chunk size 256 and n*m = 60000 >= 1<<15: the parallel path runs.
	const n, m = 600, 100
	var in []*ranking.PartialRanking
	for i := 0; i < m; i++ {
		in = append(in, randrank.Partial(rng, n, 8))
	}
	for _, choice := range []MedianChoice{LowerMedian, UpperMedian, MeanMedian} {
		got, err := MedianScores2(in, choice)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]int64, n)
		if err := medianFill2(in, choice, want, 0, n); err != nil {
			t.Fatal(err)
		}
		for e := range want {
			if got[e] != want[e] {
				t.Fatalf("choice %d: coordinate %d = %d, want %d", choice, e, got[e], want[e])
			}
		}
	}
}

// refKemenize is a direct serial transcription of the local Kemenization
// swap loop with on-the-fly majority scans — the reference the margin-matrix
// fast path must match swap for swap.
func refKemenize(t *testing.T, candidate *ranking.PartialRanking, rankings []*ranking.PartialRanking) *ranking.PartialRanking {
	t.Helper()
	if !candidate.IsFull() {
		candidate = candidate.RefineBy(identityFull(candidate.N()))
	}
	order := candidate.Order()
	n := len(order)
	prefers := func(a, b int) bool {
		margin := 0
		for _, r := range rankings {
			switch {
			case r.Ahead(a, b):
				margin++
			case r.Ahead(b, a):
				margin--
			}
		}
		return margin > 0
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i+1 < n; i++ {
			if prefers(order[i+1], order[i]) {
				order[i], order[i+1] = order[i+1], order[i]
				changed = true
			}
		}
	}
	return ranking.MustFromOrder(order)
}

// LocalKemenize's precomputed-margin path must land on exactly the ranking
// the on-the-fly reference produces.
func TestLocalKemenizeMarginPathMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(30)
		m := 3 + rng.Intn(8)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 4))
		}
		cand := randrank.Full(rng, n)
		got, err := LocalKemenize(cand, in)
		if err != nil {
			t.Fatal(err)
		}
		want := refKemenize(t, cand.Clone(), in)
		if !got.Equal(want) {
			t.Fatalf("trial %d (n=%d, m=%d): margin path %v != reference %v",
				trial, n, m, got, want)
		}
	}
}
