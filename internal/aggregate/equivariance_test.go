package aggregate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/randrank"
	"repro/internal/ranking"
	"repro/internal/topk"
)

// Metamorphic properties: relabeling the domain consistently must relabel
// the outputs; duplicating every voter must not change them; and metrics
// must be invariant. These hold for every algorithm in the library and
// catch symmetry-breaking bugs (e.g. an accidental dependence on element
// IDs beyond the documented deterministic tie-breaks).

// relabelAll applies one permutation to a whole ensemble.
func relabelAll(t *testing.T, in []*ranking.PartialRanking, perm []int) []*ranking.PartialRanking {
	t.Helper()
	out := make([]*ranking.PartialRanking, len(in))
	for i, r := range in {
		rl, err := r.Relabel(perm)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = rl
	}
	return out
}

func TestMetricsRelabelInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(12)
		a := randrank.Partial(rng, n, 4)
		b := randrank.Partial(rng, n, 4)
		perm := rng.Perm(n)
		ar, err := a.Relabel(perm)
		if err != nil {
			t.Fatal(err)
		}
		br, err := b.Relabel(perm)
		if err != nil {
			t.Fatal(err)
		}
		kp, _ := metrics.KProf(a, b)
		kpr, _ := metrics.KProf(ar, br)
		fp, _ := metrics.FProf(a, b)
		fpr, _ := metrics.FProf(ar, br)
		kh, _ := metrics.KHaus(a, b)
		khr, _ := metrics.KHaus(ar, br)
		fh, _ := metrics.FHaus(a, b)
		fhr, _ := metrics.FHaus(ar, br)
		if kp != kpr || fp != fpr || kh != khr || fh != fhr {
			t.Fatalf("metric not relabel-invariant:\na=%v b=%v perm=%v\nK %v/%v F %v/%v KH %d/%d FH %d/%d",
				a, b, perm, kp, kpr, fp, fpr, kh, khr, fh, fhr)
		}
	}
}

// Exact optimizers must be relabel-equivariant in achieved objective: the
// relabeled output of the original instance scores exactly like the output
// on the relabeled instance. (Tie-broken heuristics like MedianFull are
// equivariant only up to the element-ID tie-break — different labelings can
// legitimately pick different refinements of the median bucket order, all
// within Theorem 11's bound — so they are checked separately below.)
func TestAggregationRelabelEquivariantObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	exact := map[string]func([]*ranking.PartialRanking) (*ranking.PartialRanking, error){
		"dp": OptimalPartialAggregate,
		"hungarian": func(in []*ranking.PartialRanking) (*ranking.PartialRanking, error) {
			pr, _, err := FootruleOptimalFull(in)
			return pr, err
		},
	}
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(5)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		perm := rng.Perm(n)
		inR := relabelAll(t, in, perm)
		for name, run := range exact {
			orig, err := run(in)
			if err != nil {
				t.Fatal(err)
			}
			rel, err := run(inR)
			if err != nil {
				t.Fatal(err)
			}
			origMapped, err := orig.Relabel(perm)
			if err != nil {
				t.Fatal(err)
			}
			objA, err := SumL1Ranking(origMapped, inR)
			if err != nil {
				t.Fatal(err)
			}
			objB, err := SumL1Ranking(rel, inR)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(objA-objB) > 1e-9 {
				t.Fatalf("%s not equivariant: relabeled-original obj %v, relabeled-instance obj %v\nperm=%v inputs=%v",
					name, objA, objB, perm, in)
			}
		}
	}
}

// Tie-broken methods are fully equivariant whenever their score vector has
// no ties (the ID tie-break never fires); with ties, both labelings must
// still satisfy their theorem bounds.
func TestTieBrokenMethodsRelabel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	exactChecks, boundChecks := 0, 0
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(5)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		perm := rng.Perm(n)
		inR := relabelAll(t, in, perm)

		f, err := MedianScores(in, LowerMedian)
		if err != nil {
			t.Fatal(err)
		}
		distinct := true
		seen := map[float64]bool{}
		for _, v := range f {
			if seen[v] {
				distinct = false
				break
			}
			seen[v] = true
		}
		orig, err := MedianFull(in)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := MedianFull(inR)
		if err != nil {
			t.Fatal(err)
		}
		if distinct {
			exactChecks++
			origMapped, err := orig.Relabel(perm)
			if err != nil {
				t.Fatal(err)
			}
			if !origMapped.Equal(rel) {
				t.Fatalf("MedianFull with distinct medians not equivariant:\nperm=%v in=%v\nmapped=%v rel=%v",
					perm, in, origMapped, rel)
			}
		} else {
			boundChecks++
			// Both labelings must obey Theorem 9's factor-3 bound against
			// the best FULL ranking (a top-n list); the DP optimum over
			// partial rankings is not the right reference, since tied
			// candidates can be unboundedly better on tied inputs.
			objRel, err := SumL1Ranking(rel, inR)
			if err != nil {
				t.Fatal(err)
			}
			_, objOpt, err := FootruleOptimalFull(inR)
			if err != nil {
				t.Fatal(err)
			}
			if objOpt > 0 && objRel > 3*objOpt+1e-9 {
				t.Fatalf("relabeled median output violates factor 3: %v vs %v", objRel, objOpt)
			}
		}
	}
	// Distinct medians are rare with heavy ties; require a handful of each.
	if exactChecks < 3 || boundChecks < 10 {
		t.Fatalf("unbalanced coverage: %d exact, %d bound checks", exactChecks, boundChecks)
	}
}

// Duplicating every voter must leave median-family outputs unchanged.
func TestVoterDuplicationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(10)
		m := 1 + rng.Intn(5)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 4))
		}
		doubled := append(append([]*ranking.PartialRanking{}, in...), in...)

		f1, err := MedianScores(in, LowerMedian)
		if err != nil {
			t.Fatal(err)
		}
		f2, err := MedianScores(doubled, LowerMedian)
		if err != nil {
			t.Fatal(err)
		}
		for e := range f1 {
			if f1[e] != f2[e] {
				t.Fatalf("median moved under voter duplication at %d: %v vs %v", e, f1[e], f2[e])
			}
		}
		a1, err := MedianFull(in)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := MedianFull(doubled)
		if err != nil {
			t.Fatal(err)
		}
		if !a1.Equal(a2) {
			t.Fatalf("MedianFull moved under voter duplication: %v vs %v", a1, a2)
		}
		b1, err := Borda(in)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := Borda(doubled)
		if err != nil {
			t.Fatal(err)
		}
		if !b1.Equal(b2) {
			t.Fatalf("Borda moved under voter duplication: %v vs %v", b1, b2)
		}
	}
}

// The streaming engine inherits relabel equivariance from the offline
// median: winners map through the permutation up to equal-median ties.
func TestMedRankRelabelObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(10)
		m := 1 + rng.Intn(5)
		k := 1 + rng.Intn(n)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 4))
		}
		perm := rng.Perm(n)
		inR := relabelAll(t, in, perm)

		orig, err := topk.MedRank(in, k, topk.GlobalMerge)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := topk.MedRank(inR, k, topk.GlobalMerge)
		if err != nil {
			t.Fatal(err)
		}
		// The multisets of winner medians must agree.
		medCount := map[int64]int{}
		for _, m2 := range orig.Medians2 {
			medCount[m2]++
		}
		for _, m2 := range rel.Medians2 {
			medCount[m2]--
		}
		for med, c := range medCount {
			if c != 0 {
				t.Fatalf("winner median multiset changed under relabeling: median %d off by %d", med, c)
			}
		}
	}
}
