package aggregate

import (
	"fmt"

	"repro/internal/guard"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// MedianTopK implements the aggregation of Theorem 9: compute the median
// position vector f, take the k elements with the smallest medians ordered
// by f (ties among the top k broken deterministically by element ID), and
// return the resulting top-k list. For every top-k list tau,
//
//	sum_i L1(result, sigma_i) <= 3 * sum_i L1(tau, sigma_i).
//
// The streaming MEDRANK engine in internal/topk computes the same output
// while reading only a prefix of each input.
func MedianTopK(rankings []*ranking.PartialRanking, k int) (_ *ranking.PartialRanking, err error) {
	defer guard.Capture(&err)
	defer telemetry.StartSpan("aggregate.median_topk").End()
	if err := checkInputs(rankings); err != nil {
		return nil, err
	}
	n := rankings[0].N()
	if k < 0 || k > n {
		return nil, fmt.Errorf("aggregate: k=%d out of range [0,%d]", k, n)
	}
	f, err := MedianScores(rankings, LowerMedian)
	if err != nil {
		return nil, err
	}
	order := sortedByScore(f)
	return ranking.TopKList(n, k, order)
}

// MedianFull implements the aggregation of Theorem 11: return a full
// ranking that refines the bucket order induced by the median position
// vector, breaking ties deterministically by element ID. When the inputs
// are full rankings, for every partial ranking tau,
//
//	sum_i L1(result, sigma_i) <= 2 * sum_i L1(tau, sigma_i).
//
// For general partial-ranking inputs the factor-3 guarantee of Theorem 9
// (with k = n) applies instead.
func MedianFull(rankings []*ranking.PartialRanking) (_ *ranking.PartialRanking, err error) {
	defer guard.Capture(&err)
	defer telemetry.StartSpan("aggregate.median_full").End()
	if err := checkInputs(rankings); err != nil {
		return nil, err
	}
	f, err := MedianScores(rankings, LowerMedian)
	if err != nil {
		return nil, err
	}
	return ranking.MustFromOrder(sortedByScore(f)), nil
}

// MedianPartialOfType implements the generalized Theorem 9 (Corollary 30):
// return a partial ranking of the given type consistent with the median
// position vector. For every partial ranking tau of the same type the
// factor-3 bound holds, and when all inputs share that type the factor
// improves to 2.
func MedianPartialOfType(rankings []*ranking.PartialRanking, alpha []int) (*ranking.PartialRanking, error) {
	if err := checkInputs(rankings); err != nil {
		return nil, err
	}
	f, err := MedianScores(rankings, LowerMedian)
	if err != nil {
		return nil, err
	}
	return ranking.ConsistentOfType(f, alpha)
}

// MedianInduced returns the bucket order f-bar induced by the median
// position vector itself: elements with equal medians are tied. This is the
// partial ranking whose refinements Theorem 11 speaks about.
func MedianInduced(rankings []*ranking.PartialRanking) (*ranking.PartialRanking, error) {
	if err := checkInputs(rankings); err != nil {
		return nil, err
	}
	f, err := MedianScores(rankings, LowerMedian)
	if err != nil {
		return nil, err
	}
	return ranking.FromScores(f), nil
}

// sortedByScore returns element IDs sorted by ascending score, ties broken
// by ascending ID (deterministic "arbitrary" tie-break).
func sortedByScore(f []float64) []int {
	idx := make([]int, len(f))
	for i := range idx {
		idx[i] = i
	}
	// Stable sort on an initially-ascending slice breaks ties by ID.
	stableSortByScore(idx, f)
	return idx
}
