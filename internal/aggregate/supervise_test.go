package aggregate

import (
	"testing"

	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/ranking"
)

// A panicking distance callback must surface from the baseline evaluators as
// a typed *guard.PanicError, not crash the caller.
func TestBaselinesContainDistancePanics(t *testing.T) {
	in := []*ranking.PartialRanking{
		ranking.MustFromOrder([]int{0, 1, 2}),
		ranking.MustFromOrder([]int{2, 1, 0}),
	}
	bomb := func(a, b *ranking.PartialRanking) (float64, error) { panic("distance bug") }
	bombWS := func(ws *metrics.Workspace, a, b *ranking.PartialRanking) (float64, error) {
		panic("distance bug")
	}

	if _, err := SumDistance(in[0], in, bomb); err == nil {
		t.Error("SumDistance swallowed a panic")
	} else if pe, ok := guard.Recovered(err); !ok || pe.Value != "distance bug" {
		t.Errorf("SumDistance: %v, want *guard.PanicError", err)
	}
	if _, _, _, err := BestOfInputs(in, bomb); err == nil {
		t.Error("BestOfInputs swallowed a panic")
	} else if _, ok := guard.Recovered(err); !ok {
		t.Errorf("BestOfInputs: %v, want *guard.PanicError", err)
	}

	ws := metrics.NewWorkspace()
	if _, err := SumDistanceWith(ws, in[0], in, bombWS); err == nil {
		t.Error("SumDistanceWith swallowed a panic")
	} else if _, ok := guard.Recovered(err); !ok {
		t.Errorf("SumDistanceWith: %v, want *guard.PanicError", err)
	}
	if _, _, _, err := BestOfInputsWith(ws, in, bombWS); err == nil {
		t.Error("BestOfInputsWith swallowed a panic")
	} else if _, ok := guard.Recovered(err); !ok {
		t.Errorf("BestOfInputsWith: %v, want *guard.PanicError", err)
	}
}

// The guarded aggregators still work and still validate inputs: supervision
// must not change the error contract of ordinary failures.
func TestGuardedAggregatorsKeepErrorContract(t *testing.T) {
	in := []*ranking.PartialRanking{
		ranking.MustFromOrder([]int{0, 1, 2}),
		ranking.MustFromBuckets(3, [][]int{{2, 1}, {0}}),
	}
	if _, err := Borda(in); err != nil {
		t.Errorf("Borda: %v", err)
	}
	if _, err := MedianFull(in); err != nil {
		t.Errorf("MedianFull: %v", err)
	}
	if _, err := OptimalPartialAggregate(in); err != nil {
		t.Errorf("OptimalPartialAggregate: %v", err)
	}
	if _, _, err := KemenyOptimalDP(in); err != nil {
		t.Errorf("KemenyOptimalDP: %v", err)
	}
	if _, _, err := FootruleOptimalFull(in); err != nil {
		t.Errorf("FootruleOptimalFull: %v", err)
	}
	if _, err := MarkovChain(in, MC4, MarkovChainOptions{}); err != nil {
		t.Errorf("MarkovChain: %v", err)
	}
	// Ordinary validation errors pass through untyped.
	if _, err := Borda(nil); err == nil {
		t.Error("empty ensemble accepted")
	} else if _, ok := guard.Recovered(err); ok {
		t.Error("validation error misreported as a panic")
	}
	mismatched := []*ranking.PartialRanking{
		ranking.MustFromOrder([]int{0, 1}),
		ranking.MustFromOrder([]int{0, 1, 2}),
	}
	if _, err := MedianFull(mismatched); err == nil {
		t.Error("domain mismatch accepted")
	} else if _, ok := guard.Recovered(err); ok {
		t.Error("mismatch error misreported as a panic")
	}
}
