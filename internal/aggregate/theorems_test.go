package aggregate

import (
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

// Theorem 9: the median top-k list is within factor 3 of the optimal top-k
// list under the summed L1 (Fprof) objective, for partial-ranking inputs.
func TestTheorem9FactorThree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	worst := 0.0
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		k := 1 + rng.Intn(n)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		got, err := MedianTopK(in, k)
		if err != nil {
			t.Fatal(err)
		}
		gotObj, err := SumL1Ranking(got, in)
		if err != nil {
			t.Fatal(err)
		}
		_, optObj, err := OptimalTopKBrute(in, k)
		if err != nil {
			t.Fatal(err)
		}
		if gotObj > 3*optObj+1e-9 {
			t.Fatalf("Theorem 9 violated: median obj %v > 3x optimal %v\nk=%d inputs=%v",
				gotObj, optObj, k, in)
		}
		if optObj > 0 && gotObj/optObj > worst {
			worst = gotObj / optObj
		}
		// IsTopK reports the largest valid k (a top-(n-1) list is also a
		// full ranking), so the returned k may exceed the requested one.
		if gotK, ok := got.IsTopK(); !ok || gotK < min(k, n) {
			t.Fatalf("MedianTopK returned non-top-%d list %v", k, got)
		}
	}
	t.Logf("worst observed Theorem 9 factor: %.3f (bound 3)", worst)
}

// Theorem 11: with full-ranking inputs, the median-refinement full ranking
// is within factor 2 of the best partial ranking under summed L1.
func TestTheorem11FactorTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	worst := 0.0
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Full(rng, n))
		}
		got, err := MedianFull(in)
		if err != nil {
			t.Fatal(err)
		}
		if !got.IsFull() {
			t.Fatal("MedianFull returned ties")
		}
		gotObj, err := SumL1Ranking(got, in)
		if err != nil {
			t.Fatal(err)
		}
		_, optObj, err := OptimalPartialRankingBrute(in)
		if err != nil {
			t.Fatal(err)
		}
		if gotObj > 2*optObj+1e-9 {
			t.Fatalf("Theorem 11 violated: %v > 2x %v for %v", gotObj, optObj, in)
		}
		if optObj > 0 && gotObj/optObj > worst {
			worst = gotObj / optObj
		}
	}
	t.Logf("worst observed Theorem 11 factor: %.3f (bound 2)", worst)
}

// MedianFull is also within factor 2 of the footrule-optimal FULL ranking
// (the open problem of Dwork et al. answered by Theorem 11), checked against
// the exact Hungarian optimum at larger scale.
func TestTheorem11AgainstHungarian(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	worst := 0.0
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(25)
		m := 3 + rng.Intn(5)
		in, _ := randrank.MallowsEnsemble(rng, n, m, 0.3)
		got, err := MedianFull(in)
		if err != nil {
			t.Fatal(err)
		}
		gotObj, err := SumL1Ranking(got, in)
		if err != nil {
			t.Fatal(err)
		}
		_, optObj, err := FootruleOptimalFull(in)
		if err != nil {
			t.Fatal(err)
		}
		if gotObj > 2*optObj+1e-9 {
			t.Fatalf("factor-2 vs Hungarian violated: %v > 2x %v", gotObj, optObj)
		}
		if optObj > 0 && gotObj/optObj > worst {
			worst = gotObj / optObj
		}
	}
	t.Logf("worst observed factor vs Hungarian optimum: %.3f (bound 2)", worst)
}

// Corollary 30: the median-consistent partial ranking of any fixed type is
// within factor 3 of the best partial ranking of that type.
func TestCorollary30FixedType(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		// Random type alpha.
		var alpha []int
		rem := n
		for rem > 0 {
			s := 1 + rng.Intn(rem)
			alpha = append(alpha, s)
			rem -= s
		}
		got, err := MedianPartialOfType(in, alpha)
		if err != nil {
			t.Fatal(err)
		}
		gotObj, err := SumL1Ranking(got, in)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over all partial rankings of type alpha.
		optObj := -1.0
		ranking.ForEachPartialRanking(n, func(cand *ranking.PartialRanking) bool {
			if !sameType(cand.Type(), alpha) {
				return true
			}
			obj := SumL1(cand.Positions(), in)
			if optObj < 0 || obj < optObj {
				optObj = obj
			}
			return true
		})
		if gotObj > 3*optObj+1e-9 {
			t.Fatalf("Corollary 30 violated: %v > 3x %v (type %v)", gotObj, optObj, alpha)
		}
	}
}

// MedianInduced returns the bucket order of the median score vector itself.
func TestMedianInduced(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1, 2})
	in := []*ranking.PartialRanking{a, a, a.Reverse()}
	got, err := MedianInduced(in)
	if err != nil {
		t.Fatal(err)
	}
	// Medians: element 0: positions 1,1,3 -> 1; element 1: 2,2,2 -> 2;
	// element 2: 3,3,1 -> 3. Induced ranking is just a.
	if !got.Equal(a) {
		t.Errorf("MedianInduced = %v, want %v", got, a)
	}

	// With an even ensemble forcing equal medians.
	b := ranking.MustFromOrder([]int{1, 0, 2})
	got, err = MedianInduced([]*ranking.PartialRanking{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// Lower medians: element 0: {1,2}->1; element 1: {1,2}->1; element 2: 3.
	want := ranking.MustFromBuckets(3, [][]int{{0, 1}, {2}})
	if !got.Equal(want) {
		t.Errorf("MedianInduced = %v, want %v", got, want)
	}
}

// Unanimous ensembles are recovered exactly by every aggregation entry
// point that can express them.
func TestUnanimousRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	full := randrank.Full(rng, 12)
	in := []*ranking.PartialRanking{full, full, full}
	got, err := MedianFull(in)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(full) {
		t.Errorf("MedianFull unanimous = %v, want %v", got, full)
	}
	partial := randrank.Partial(rng, 12, 4)
	inP := []*ranking.PartialRanking{partial, partial, partial}
	gotP, err := OptimalPartialAggregate(inP)
	if err != nil {
		t.Fatal(err)
	}
	if !gotP.Equal(partial) {
		t.Errorf("OptimalPartialAggregate unanimous = %v, want %v", gotP, partial)
	}
}

func sameType(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
