package aggregate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

// The subset DP matches the exhaustive Kemeny optimum wherever both run.
func TestKemenyDPMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(7)
		m := 1 + rng.Intn(5)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		_, wantObj, err := KemenyOptimalBrute(in)
		if err != nil {
			t.Fatal(err)
		}
		got, gotObj, err := KemenyOptimalDP(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotObj-wantObj) > 1e-9 {
			t.Fatalf("DP objective %v != brute %v\ninputs=%v", gotObj, wantObj, in)
		}
		// The returned ranking achieves the reported objective.
		achieved, err := SumDistance(got, in, kprofDistance)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(achieved-gotObj) > 1e-9 {
			t.Fatalf("reported objective %v, ranking achieves %v", gotObj, achieved)
		}
	}
}

// Beyond the brute-force range the DP still beats every heuristic and
// respects Condorcet winners.
func TestKemenyDPLargerDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 12 + rng.Intn(4)
		m := 3 + 2*rng.Intn(2)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		opt, obj, err := KemenyOptimalDP(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, heur := range []func([]*ranking.PartialRanking) (*ranking.PartialRanking, error){
			MedianFull, Borda,
		} {
			h, err := heur(in)
			if err != nil {
				t.Fatal(err)
			}
			hObj, err := SumDistance(h, in, kprofDistance)
			if err != nil {
				t.Fatal(err)
			}
			if obj > hObj+1e-9 {
				t.Fatalf("DP optimum %v beaten by heuristic %v", obj, hObj)
			}
		}
		if w, ok, _ := CondorcetWinner(in); ok && opt.Order()[0] != w {
			t.Fatalf("DP Kemeny optimum does not rank Condorcet winner %d first: %v", w, opt)
		}
	}
}

func TestKemenyDPEdges(t *testing.T) {
	empty := ranking.MustFromBuckets(0, nil)
	pr, obj, err := KemenyOptimalDP([]*ranking.PartialRanking{empty})
	if err != nil || obj != 0 || pr.N() != 0 {
		t.Errorf("empty domain: %v %v %v", pr, obj, err)
	}
	if _, _, err := KemenyOptimalDP(nil); err == nil {
		t.Error("empty ensemble accepted")
	}
	big := make([]int, KemenyMaxDP+1)
	for i := range big {
		big[i] = i
	}
	if _, _, err := KemenyOptimalDP([]*ranking.PartialRanking{ranking.MustFromOrder(big)}); err == nil {
		t.Error("n > KemenyMaxDP accepted")
	}
	// Unanimous recovery at a size the brute force cannot touch.
	rng := rand.New(rand.NewSource(3))
	full := randrank.Full(rng, 15)
	got, obj, err := KemenyOptimalDP([]*ranking.PartialRanking{full, full})
	if err != nil || obj != 0 || !got.Equal(full) {
		t.Errorf("unanimous n=15: obj=%v got=%v err=%v", obj, got, err)
	}
}
