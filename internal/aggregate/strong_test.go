package aggregate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

// Lemma 26: the order-preserving matching is a minimum-cost perfect
// matching under |a - b| costs, verified against the Hungarian solver.
func TestLemma26OrderPreservingMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(7)
		a := make([]float64, n)
		b := make([]float64, n)
		cost := make([][]int64, n)
		for i := 0; i < n; i++ {
			a[i] = float64(rng.Intn(40))
			b[i] = float64(rng.Intn(40))
		}
		for i := 0; i < n; i++ {
			cost[i] = make([]int64, n)
			for j := 0; j < n; j++ {
				cost[i][j] = int64(math.Abs(a[i] - b[j]))
			}
		}
		_, want, err := AssignmentSolve(cost)
		if err != nil {
			t.Fatal(err)
		}
		if got := OrderPreservingMatchingCost(a, b); got != float64(want) {
			t.Fatalf("order-preserving cost %v != optimal %d for a=%v b=%v", got, want, a, b)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("size mismatch did not panic")
		}
	}()
	OrderPreservingMatchingCost([]float64{1}, []float64{1, 2})
}

// Lemma 27 via Lemma 26: among all partial rankings of a fixed type, the
// f-consistent one minimizes L1 to f.
func TestLemma27ConsistentMinimizesWithinType(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		f := make([]float64, n)
		for i := range f {
			f[i] = float64(rng.Intn(2*n)) / 2
		}
		// Random type.
		var alpha []int
		rem := n
		for rem > 0 {
			s := 1 + rng.Intn(rem)
			alpha = append(alpha, s)
			rem -= s
		}
		cons, err := ranking.ConsistentOfType(f, alpha)
		if err != nil {
			t.Fatal(err)
		}
		consCost := l1ToScores(cons, f)
		ranking.ForEachPartialRanking(n, func(cand *ranking.PartialRanking) bool {
			if !sameType(cand.Type(), alpha) {
				return true
			}
			if c := l1ToScores(cand, f); c < consCost-1e-9 {
				t.Fatalf("Lemma 27 violated: consistent cost %v, candidate %v cost %v (f=%v, alpha=%v)",
					consCost, cand, c, f, alpha)
			}
			return true
		})
	}
}

// Theorem 35: the strong witness sigma' satisfies (a) the top-k list is
// consistent with sigma' (sigma in <sigma'>_alpha), and (b) sigma' is
// within factor 2 of every partial ranking when the inputs are partial
// rankings (and 3 in general).
func TestTheorem35StrongOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		k := 1 + rng.Intn(n)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		topK, witness, err := StrongMedianTopK(in, k)
		if err != nil {
			t.Fatal(err)
		}
		// (a) sigma is consistent with sigma': the witness's positions,
		// read as scores, must admit topK as a consistent ranking.
		if !topK.ConsistentWith(witness.Positions()) {
			t.Fatalf("top-k %v not consistent with witness %v", topK, witness)
		}
		// (b) witness within factor 2 of the best partial ranking.
		got, err := SumL1Ranking(witness, in)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := OptimalPartialRankingBrute(in)
		if err != nil {
			t.Fatal(err)
		}
		if got > 2*opt+1e-9 {
			t.Fatalf("Theorem 35 factor violated: witness %v opt %v\ninputs=%v", got, opt, in)
		}
	}
}

// The Lemma 34 common refinement refines both inputs' structures.
func TestCommonConsistentRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		sigma := randrank.Partial(rng, n, 4)
		f := make([]float64, n)
		for i := range f {
			f[i] = float64(rng.Intn(n))
		}
		rho := CommonConsistentRefinement(sigma, f)
		if !rho.IsRefinementOf(sigma) {
			t.Fatalf("rho %v does not refine sigma %v", rho, sigma)
		}
		if !rho.ConsistentWith(f) {
			// rho orders within sigma's buckets by f, so inside each sigma
			// bucket it is f-consistent; across buckets sigma's order rules.
			// Full consistency with f holds only when sigma is consistent
			// with f, so check that implication instead.
			if sigma.ConsistentWith(f) {
				t.Fatalf("sigma consistent with f but rho is not: sigma=%v f=%v rho=%v", sigma, f, rho)
			}
		}
	}
}

func TestStrongMedianTopKErrors(t *testing.T) {
	if _, _, err := StrongMedianTopK(nil, 1); err == nil {
		t.Error("empty ensemble accepted")
	}
	a := ranking.MustFromOrder([]int{0, 1})
	if _, _, err := StrongMedianTopK([]*ranking.PartialRanking{a}, 5); err == nil {
		t.Error("k > n accepted")
	}
}
