// Package aggregate implements the rank-aggregation algorithms of Section 6
// of Fagin, Kumar, Mahdian, Sivakumar, and Vee, "Comparing and Aggregating
// Rankings with Ties" (PODS 2004), together with the baselines they are
// measured against.
//
// The centerpiece is median rank aggregation: the coordinate-wise median of
// the input position vectors minimizes the summed L1 distance (Lemma 8), and
// rounding it into a top-k list, full ranking, or optimal partial ranking
// yields the paper's approximation guarantees:
//
//   - Theorem 9: a top-k list read off the median is a 3-approximation to
//     the best top-k list under sum-of-Fprof.
//   - Theorem 10: the L1-closest partial ranking to the median (computed by
//     the Figure 1 dynamic program in O(n^2)) is a 2-approximation over all
//     partial rankings when the inputs are partial rankings, and a
//     3-approximation in general.
//   - Theorem 11: with full-ranking inputs, any refinement of the median's
//     induced bucket order is a 2-approximation over all partial rankings —
//     answering the open question of Dwork et al. and Fagin et al.
//
// Baselines: the footrule-optimal full aggregation via minimum-cost perfect
// matching (Hungarian algorithm), Borda / average rank, best-of-inputs, the
// Markov-chain heuristics MC1-MC4 of Dwork et al., local Kemenization, and
// exhaustive optima for small domains.
package aggregate

import (
	"errors"
	"sort"

	"repro/internal/metrics"
	"repro/internal/ranking"
)

// The parallel candidate-evaluation paths in this package (MedianScores2,
// FootruleOptimalFull's cost fill, LocalKemenize's margin sweep,
// BestOfInputsParallel, SumDistanceParallel) all ride metrics.ParallelEach
// and share its determinism contract: parallel fill of disjoint slots,
// serial reduce in index order.

// ErrNoInput is returned by aggregators called with no rankings.
var ErrNoInput = errors.New("aggregate: no input rankings")

// checkInputs validates a non-empty same-domain ensemble.
func checkInputs(rankings []*ranking.PartialRanking) error {
	if len(rankings) == 0 {
		return ErrNoInput
	}
	return ranking.CheckSameDomain(rankings...)
}

// MedianSet returns the paper's median(a_1, ..., a_m) set boundaries for a
// non-empty list: for odd m the single middle value is returned as lo = hi;
// for even m, lo and hi are the two central order statistics (the set also
// contains their mean). The input is not modified.
func MedianSet(values []float64) (lo, hi float64) {
	if len(values) == 0 {
		panic("aggregate: MedianSet of empty list")
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	m := len(s)
	if m%2 == 1 {
		return s[m/2], s[m/2]
	}
	return s[m/2-1], s[m/2]
}

// MedianChoice selects which member of the median set MedianScores uses at
// every coordinate when m is even.
type MedianChoice int

const (
	// LowerMedian takes the lower central order statistic a_{m/2}. It keeps
	// doubled positions integral, which the linear-space Figure 1 DP relies
	// on, and is the choice the paper suggests ("a_{floor((m+1)/2)}").
	LowerMedian MedianChoice = iota
	// UpperMedian takes a_{m/2+1}.
	UpperMedian
	// MeanMedian takes (a_{m/2} + a_{m/2+1})/2.
	MeanMedian
)

// MedianScores returns the coordinate-wise median position vector
// f(d) = median(sigma_1(d), ..., sigma_m(d)) of the input rankings, with the
// given even-m tie policy. By Lemma 8 every such f minimizes
// sum_i L1(f, sigma_i) over all functions g: D -> R.
func MedianScores(rankings []*ranking.PartialRanking, choice MedianChoice) ([]float64, error) {
	f2, err := MedianScores2(rankings, choice)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(f2))
	for i, v := range f2 {
		out[i] = float64(v) / 4
	}
	return out, nil
}

// MedianScores2 returns the median position vector scaled by 4 as exact
// integers (positions are half-integral, and MeanMedian can halve once
// more). LowerMedian and UpperMedian outputs are always multiples of 2.
//
// Coordinates are independent, so sweeps big enough to matter (n*m position
// reads above medianParallelCells) are chunked across the parallel
// evaluation pool; every coordinate's value is the same exact integer either
// way, so the parallel fill is indistinguishable from the serial one.
func MedianScores2(rankings []*ranking.PartialRanking, choice MedianChoice) ([]int64, error) {
	if err := checkInputs(rankings); err != nil {
		return nil, err
	}
	n := rankings[0].N()
	m := len(rankings)
	out := make([]int64, n)
	const chunk = 256
	if n*m >= medianParallelCells && n > chunk {
		chunks := (n + chunk - 1) / chunk
		if err := metrics.ParallelEach(chunks, "median_scores", func(_ *metrics.Workspace, c int) error {
			lo, hi := c*chunk, (c+1)*chunk
			if hi > n {
				hi = n
			}
			return medianFill2(rankings, choice, out, lo, hi)
		}); err != nil {
			return nil, err
		}
		return out, nil
	}
	if err := medianFill2(rankings, choice, out, 0, n); err != nil {
		return nil, err
	}
	return out, nil
}

// medianParallelCells is the n*m size past which MedianScores2 fans its
// coordinate sweep out across the worker pool.
const medianParallelCells = 1 << 15

// medianFill2 fills out[lo:hi] with quadrupled coordinate-wise medians; each
// call owns its sort buffer, so chunks run concurrently.
func medianFill2(rankings []*ranking.PartialRanking, choice MedianChoice, out []int64, lo, hi int) error {
	m := len(rankings)
	buf := make([]int64, m)
	for e := lo; e < hi; e++ {
		for i, r := range rankings {
			buf[i] = r.Pos2(e)
		}
		sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
		// buf holds doubled positions; out holds quadrupled medians.
		if m%2 == 1 {
			out[e] = 2 * buf[m/2]
		} else {
			switch choice {
			case LowerMedian:
				out[e] = 2 * buf[m/2-1]
			case UpperMedian:
				out[e] = 2 * buf[m/2]
			case MeanMedian:
				out[e] = buf[m/2-1] + buf[m/2]
			default:
				panic("aggregate: unknown MedianChoice")
			}
		}
	}
	return nil
}

// InMedianSet reports whether g(d) lies in median(sigma_1(d), ..., sigma_m(d))
// for every d, i.e. whether g is a valid median function in the paper's
// set-valued sense.
func InMedianSet(rankings []*ranking.PartialRanking, g []float64) (bool, error) {
	if err := checkInputs(rankings); err != nil {
		return false, err
	}
	n := rankings[0].N()
	if len(g) != n {
		return false, errors.New("aggregate: score vector length mismatch")
	}
	m := len(rankings)
	buf := make([]float64, m)
	for e := 0; e < n; e++ {
		for i, r := range rankings {
			buf[i] = r.Pos(e)
		}
		lo, hi := MedianSet(buf)
		v := g[e]
		if m%2 == 1 {
			if v != lo {
				return false, nil
			}
			continue
		}
		if v != lo && v != hi && v != (lo+hi)/2 {
			return false, nil
		}
	}
	return true, nil
}

// SumL1 returns sum_i L1(g, sigma_i), the objective of Lemma 8 and of all
// the approximation theorems, for a candidate score vector g.
func SumL1(g []float64, rankings []*ranking.PartialRanking) float64 {
	var sum float64
	for _, r := range rankings {
		for e := 0; e < r.N(); e++ {
			d := g[e] - r.Pos(e)
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

// SumL1Ranking returns sum_i L1(candidate, sigma_i) for a candidate partial
// ranking, i.e. the summed Fprof objective. The position sweep reads the
// candidate through its copy-free accessors, so no position vector is
// materialized.
func SumL1Ranking(candidate *ranking.PartialRanking, rankings []*ranking.PartialRanking) (float64, error) {
	var sum2 int64
	for _, r := range rankings {
		d2, err := metrics.FProf2(candidate, r)
		if err != nil {
			return 0, err
		}
		sum2 += d2
	}
	return float64(sum2) / 2, nil
}
