package aggregate

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// Weighted aggregation primitives: the per-voter-weight generalizations of
// Borda and median-rank aggregation that the robust layer (internal/robust)
// builds on. A weight vector scales each voter's influence; weights need not
// be normalized, only non-negative with a positive sum. With uniform weights
// every function below reproduces its unweighted counterpart exactly
// (WeightedBorda ≡ Borda, WeightedMedianScores ≡ MedianScores with
// LowerMedian), which is what lets trimming and down-weighting compose with
// the paper's approximation machinery: a trimmed run is just a weighted run
// with 0/1 weights.

// checkWeights validates a weight vector against an ensemble: one
// non-negative finite weight per voter, positive total.
func checkWeights(rankings []*ranking.PartialRanking, weights []float64) (total float64, err error) {
	if len(weights) != len(rankings) {
		return 0, fmt.Errorf("aggregate: %d weights for %d rankings", len(weights), len(rankings))
	}
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return 0, fmt.Errorf("aggregate: weight %d is %v, want finite and >= 0", i, w)
		}
		total += w
	}
	if total <= 0 {
		return 0, fmt.Errorf("aggregate: weights sum to %v, want > 0", total)
	}
	return total, nil
}

// WeightedBordaScores returns the weighted mean position vector
// f(d) = sum_i w_i sigma_i(d) / sum_i w_i. With uniform weights this is
// exactly bordaScores.
func WeightedBordaScores(rankings []*ranking.PartialRanking, weights []float64) ([]float64, error) {
	if err := checkInputs(rankings); err != nil {
		return nil, err
	}
	total, err := checkWeights(rankings, weights)
	if err != nil {
		return nil, err
	}
	n := rankings[0].N()
	f := make([]float64, n)
	for e := 0; e < n; e++ {
		var sum float64
		for i, r := range rankings {
			sum += weights[i] * float64(r.Pos2(e))
		}
		f[e] = sum / (2 * total)
	}
	return f, nil
}

// WeightedBorda returns the full ranking sorting elements on their weighted
// mean position, ties broken by element ID.
func WeightedBorda(rankings []*ranking.PartialRanking, weights []float64) (_ *ranking.PartialRanking, err error) {
	defer guard.Capture(&err)
	defer telemetry.StartSpan("aggregate.weighted_borda").End()
	f, err := WeightedBordaScores(rankings, weights)
	if err != nil {
		return nil, err
	}
	return ranking.MustFromOrder(sortedByScore(f)), nil
}

// WeightedMedianScores returns the coordinate-wise weighted lower median:
// for each element, the smallest position p among the voters' positions such
// that the voters at or below p carry at least half the total weight. This
// minimizes sum_i w_i |f(d) - sigma_i(d)| coordinate-wise (the weighted
// Lemma 8), and with uniform weights equals MedianScores(LowerMedian)
// exactly: the comparison 2*cum >= total is evaluated on the raw weights, so
// integer weight vectors stay exact.
func WeightedMedianScores(rankings []*ranking.PartialRanking, weights []float64) ([]float64, error) {
	if err := checkInputs(rankings); err != nil {
		return nil, err
	}
	total, err := checkWeights(rankings, weights)
	if err != nil {
		return nil, err
	}
	n := rankings[0].N()
	m := len(rankings)
	type pw struct {
		pos2 int64
		w    float64
	}
	buf := make([]pw, m)
	out := make([]float64, n)
	for e := 0; e < n; e++ {
		for i, r := range rankings {
			buf[i] = pw{r.Pos2(e), weights[i]}
		}
		sort.Slice(buf, func(a, b int) bool { return buf[a].pos2 < buf[b].pos2 })
		cum := 0.0
		med := buf[m-1].pos2
		for _, p := range buf {
			cum += p.w
			if 2*cum >= total {
				med = p.pos2
				break
			}
		}
		out[e] = float64(med) / 2
	}
	return out, nil
}

// WeightedMedianFull returns a full ranking refining the weighted-median
// bucket order, ties broken by element ID — the weighted analogue of
// MedianFull.
func WeightedMedianFull(rankings []*ranking.PartialRanking, weights []float64) (_ *ranking.PartialRanking, err error) {
	defer guard.Capture(&err)
	defer telemetry.StartSpan("aggregate.weighted_median").End()
	f, err := WeightedMedianScores(rankings, weights)
	if err != nil {
		return nil, err
	}
	return ranking.MustFromOrder(sortedByScore(f)), nil
}

// MaxDistanceWith returns (max_i d(candidate, sigma_i), sum_i d(...)): the
// MinMax aggregation objective of Li–Milenkovic next to the classical sum,
// evaluated in one sweep over the caller's workspace. The sum rides along
// because the MinMax local search breaks objective ties lexicographically on
// it.
func MaxDistanceWith(ws *metrics.Workspace, candidate *ranking.PartialRanking, rankings []*ranking.PartialRanking, d metrics.DistanceWS) (maxv, sumv float64, err error) {
	defer guard.Capture(&err)
	for _, r := range rankings {
		v, err := d(ws, candidate, r)
		if err != nil {
			return 0, 0, err
		}
		sumv += v
		if v > maxv {
			maxv = v
		}
	}
	return maxv, sumv, nil
}
