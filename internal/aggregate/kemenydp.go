package aggregate

import (
	"fmt"
	"math"

	"repro/internal/guard"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// Exact Kemeny aggregation by dynamic programming over subsets. The summed
// Kprof objective of a FULL candidate decomposes over ordered pairs: placing
// a before b costs
//
//	w(a, b) = #(voters with b strictly ahead of a) + (#(voters tying a, b))/2,
//
// independent of everything else, so the optimal order is the minimum-cost
// linear ordering of the weighted tournament — computable in O(2^n * n^2)
// time and O(2^n) space (Held-Karp style). This extends the exact optimum
// from the n <= 10 of naive enumeration to n <= ~18.

// KemenyMaxDP bounds the domain size accepted by KemenyOptimalDP (2^n
// uint32 states ~ 1 GiB at n = 28; 18 keeps runs under a second and memory
// in the megabytes).
const KemenyMaxDP = 18

// KemenyOptimalDP returns a full ranking minimizing the summed Kprof
// distance to the inputs, exactly, for domains up to KemenyMaxDP elements.
// It matches KemenyOptimalBrute wherever both run and obeys the Condorcet
// criterion.
func KemenyOptimalDP(rankings []*ranking.PartialRanking) (_ *ranking.PartialRanking, _ float64, err error) {
	defer guard.Capture(&err)
	defer telemetry.StartSpan("aggregate.kemeny_dp").End()
	if err := checkInputs(rankings); err != nil {
		return nil, 0, err
	}
	n := rankings[0].N()
	if n > KemenyMaxDP {
		return nil, 0, fmt.Errorf("aggregate: KemenyOptimalDP supports n <= %d, got %d", KemenyMaxDP, n)
	}
	if n == 0 {
		return ranking.MustFromBuckets(0, nil), 0, nil
	}
	// Doubled pair costs: w2[a][b] = 2*(#voters b ahead of a) + #ties.
	w2 := make([][]int64, n)
	for a := range w2 {
		w2[a] = make([]int64, n)
	}
	for _, r := range rankings {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				switch {
				case r.Ahead(b, a):
					w2[a][b] += 2
				case r.Tied(a, b):
					w2[a][b]++
				}
			}
		}
	}

	size := 1 << n
	const inf = int64(math.MaxInt64) / 2
	dp := make([]int64, size)
	choice := make([]int8, size)
	for s := 1; s < size; s++ {
		dp[s] = inf
	}
	for s := 0; s < size-1; s++ {
		if dp[s] == inf {
			continue
		}
		// Place element x next (after the members of s, before the rest).
		for x := 0; x < n; x++ {
			if s&(1<<x) != 0 {
				continue
			}
			var add int64
			for y := 0; y < n; y++ {
				if y == x || s&(1<<y) != 0 {
					continue
				}
				add += w2[x][y]
			}
			ns := s | 1<<x
			if v := dp[s] + add; v < dp[ns] {
				dp[ns] = v
				choice[ns] = int8(x)
			}
		}
	}

	// choice[s] is the element at position popcount(s) of the prefix s;
	// peel the full set from the back.
	order := make([]int, n)
	s := size - 1
	for i := n - 1; i >= 0; i-- {
		x := int(choice[s])
		order[i] = x
		s &^= 1 << x
	}
	pr, err := ranking.FromOrder(order)
	if err != nil {
		return nil, 0, err
	}
	return pr, float64(dp[size-1]) / 2, nil
}
