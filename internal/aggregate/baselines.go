package aggregate

import (
	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// Borda returns the full ranking obtained by sorting elements on their mean
// position across the inputs (Borda's method adapted to partial rankings:
// the position of a bucket is the average rank of its members, so summing
// positions is exactly the classical Borda count). Ties are broken by
// element ID. The paper (Section 1) notes that, unlike median rank
// aggregation, average-rank aggregation admits no instance-optimal
// sequential-access algorithm.
func Borda(rankings []*ranking.PartialRanking) (_ *ranking.PartialRanking, err error) {
	defer guard.Capture(&err)
	defer telemetry.StartSpan("aggregate.borda").End()
	f, err := bordaScores(rankings)
	if err != nil {
		return nil, err
	}
	return ranking.MustFromOrder(sortedByScore(f)), nil
}

// BordaPartial is Borda without tie-breaking: elements with exactly equal
// mean positions stay tied, yielding a partial ranking.
func BordaPartial(rankings []*ranking.PartialRanking) (*ranking.PartialRanking, error) {
	f, err := bordaScores(rankings)
	if err != nil {
		return nil, err
	}
	return ranking.FromScores(f), nil
}

func bordaScores(rankings []*ranking.PartialRanking) ([]float64, error) {
	if err := checkInputs(rankings); err != nil {
		return nil, err
	}
	n := rankings[0].N()
	f := make([]float64, n)
	for e := 0; e < n; e++ {
		var sum2 int64
		for _, r := range rankings {
			sum2 += r.Pos2(e)
		}
		f[e] = float64(sum2) / float64(2*len(rankings))
	}
	return f, nil
}

// Distance is a distance measure between partial rankings, as consumed by
// BestOfInputs and the experiment harnesses.
type Distance func(a, b *ranking.PartialRanking) (float64, error)

// BestOfInputs returns the input ranking minimizing the summed distance to
// the whole ensemble, together with its index and objective value. Since
// some input is always within factor 2 of the optimal aggregation under any
// metric (triangle inequality), this is the paper's "trivial" baseline that
// non-trivial aggregation algorithms must beat (footnote 4).
func BestOfInputs(rankings []*ranking.PartialRanking, d Distance) (_ int, _ *ranking.PartialRanking, _ float64, err error) {
	defer guard.Capture(&err)
	if err := checkInputs(rankings); err != nil {
		return 0, nil, 0, err
	}
	bestIdx, bestObj := -1, 0.0
	for i, cand := range rankings {
		var obj float64
		for _, r := range rankings {
			v, err := d(cand, r)
			if err != nil {
				return 0, nil, 0, err
			}
			obj += v
		}
		if bestIdx < 0 || obj < bestObj {
			bestIdx, bestObj = i, obj
		}
	}
	return bestIdx, rankings[bestIdx], bestObj, nil
}

// SumDistance returns sum_i d(candidate, sigma_i), the generic aggregation
// objective.
func SumDistance(candidate *ranking.PartialRanking, rankings []*ranking.PartialRanking, d Distance) (_ float64, err error) {
	defer guard.Capture(&err)
	var sum float64
	for _, r := range rankings {
		v, err := d(candidate, r)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum, nil
}

// SumDistanceWith is SumDistance for workspace-aware distances: all m terms
// of the objective reuse the caller's scratch state, so evaluating a
// candidate against an ensemble performs O(1) allocations instead of O(m).
// Objective-evaluation loops (best-of-inputs, Kemeny enumeration, MEDRANK
// scoring) hold one workspace for their whole run.
func SumDistanceWith(ws *metrics.Workspace, candidate *ranking.PartialRanking, rankings []*ranking.PartialRanking, d metrics.DistanceWS) (_ float64, err error) {
	defer guard.Capture(&err)
	var sum float64
	for _, r := range rankings {
		v, err := d(ws, candidate, r)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum, nil
}

// BestOfInputsWith is BestOfInputs for workspace-aware distances: the whole
// m^2 sweep shares the caller's workspace.
func BestOfInputsWith(ws *metrics.Workspace, rankings []*ranking.PartialRanking, d metrics.DistanceWS) (_ int, _ *ranking.PartialRanking, _ float64, err error) {
	defer guard.Capture(&err)
	if err := checkInputs(rankings); err != nil {
		return 0, nil, 0, err
	}
	bestIdx, bestObj := -1, 0.0
	for i, cand := range rankings {
		obj, err := SumDistanceWith(ws, cand, rankings, d)
		if err != nil {
			return 0, nil, 0, err
		}
		if bestIdx < 0 || obj < bestObj {
			bestIdx, bestObj = i, obj
		}
	}
	return bestIdx, rankings[bestIdx], bestObj, nil
}

// SumDistanceParallel is SumDistanceWith with the m objective terms fanned
// across the parallel evaluation pool: each term lands in its own slot and
// the slots are summed serially in input order, so the result is bit-for-bit
// identical to the serial evaluation. Compose d with metrics.Cached to also
// memoize repeat pairs of duplicate-heavy ensembles.
func SumDistanceParallel(candidate *ranking.PartialRanking, rankings []*ranking.PartialRanking, d metrics.DistanceWS) (_ float64, err error) {
	defer guard.Capture(&err)
	vals := make([]float64, len(rankings))
	if err := metrics.ParallelEach(len(rankings), "sum_distance", func(ws *metrics.Workspace, i int) error {
		v, err := d(ws, candidate, rankings[i])
		if err != nil {
			return err
		}
		vals[i] = v
		return nil
	}); err != nil {
		return 0, err
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum, nil
}

// BestOfInputsParallel is BestOfInputsWith with candidate scoring fanned
// across the parallel evaluation pool: one worker evaluates each candidate's
// full objective (the same serial inner sum as SumDistanceWith, so each
// objective is bit-for-bit identical), and the argmin scan runs serially in
// candidate order with the same strict-improvement tie-break. The output is
// therefore exactly the serial result, at GOMAXPROCS times the throughput on
// the m^2 distance sweep.
func BestOfInputsParallel(rankings []*ranking.PartialRanking, d metrics.DistanceWS) (_ int, _ *ranking.PartialRanking, _ float64, err error) {
	defer guard.Capture(&err)
	if err := checkInputs(rankings); err != nil {
		return 0, nil, 0, err
	}
	objs := make([]float64, len(rankings))
	if err := metrics.ParallelEach(len(rankings), "best_of_inputs", func(ws *metrics.Workspace, i int) error {
		obj, err := SumDistanceWith(ws, rankings[i], rankings, d)
		if err != nil {
			return err
		}
		objs[i] = obj
		return nil
	}); err != nil {
		return 0, nil, 0, err
	}
	bestIdx := 0
	for i, obj := range objs {
		if obj < objs[bestIdx] {
			bestIdx = i
		}
	}
	return bestIdx, rankings[bestIdx], objs[bestIdx], nil
}
