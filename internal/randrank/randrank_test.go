package randrank

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/ranking"
)

func TestFullIsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		pr := Full(rng, 1+rng.Intn(30))
		if !pr.IsFull() {
			t.Fatalf("Full produced non-full ranking %v", pr)
		}
	}
}

func TestPartialRespectsMaxBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		maxB := 1 + rng.Intn(5)
		pr := Partial(rng, 1+rng.Intn(40), maxB)
		for bi := 0; bi < pr.NumBuckets(); bi++ {
			if pr.BucketSize(bi) > maxB {
				t.Fatalf("bucket size %d exceeds max %d", pr.BucketSize(bi), maxB)
			}
		}
	}
	if Partial(rng, 10, 1).NumBuckets() != 10 {
		t.Error("maxBucket=1 should give a full ranking")
	}
	defer func() {
		if recover() == nil {
			t.Error("maxBucket=0 did not panic")
		}
	}()
	Partial(rng, 5, 0)
}

func TestOfType(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alpha := []int{3, 1, 4, 2}
	pr := OfType(rng, alpha)
	typ := pr.Type()
	if len(typ) != len(alpha) {
		t.Fatalf("type length %d, want %d", len(typ), len(alpha))
	}
	for i := range alpha {
		if typ[i] != alpha[i] {
			t.Fatalf("type %v, want %v", typ, alpha)
		}
	}
}

func TestTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pr := TopK(rng, 20, 5)
	if k, ok := pr.IsTopK(); !ok || k != 5 {
		t.Fatalf("IsTopK = (%d,%v), want (5,true)", k, ok)
	}
}

func TestMallowsFullConcentration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	center := Full(rng, 40)
	avgK := func(theta float64) float64 {
		var sum int64
		const trials = 100
		for i := 0; i < trials; i++ {
			s := MallowsFull(rng, center, theta)
			if !s.IsFull() {
				t.Fatal("MallowsFull produced ties")
			}
			k, err := metrics.Kendall(center, s)
			if err != nil {
				t.Fatal(err)
			}
			sum += k
		}
		return float64(sum) / trials
	}
	if loose, tight := avgK(0.1), avgK(2); loose <= tight {
		t.Errorf("Mallows not concentrating: theta=0.1 -> %.1f, theta=2 -> %.1f", loose, tight)
	}
}

func TestCoarsen(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	full := Full(rng, 17)
	pr := Coarsen(full, 4)
	if pr.NumBuckets() != 4 {
		t.Fatalf("Coarsen gave %d buckets, want 4", pr.NumBuckets())
	}
	if !full.IsRefinementOf(pr) {
		t.Error("full ranking should refine its coarsening")
	}
	// Clamping.
	if Coarsen(full, 0).NumBuckets() != 1 {
		t.Error("t=0 should clamp to one bucket")
	}
	if Coarsen(full, 99).NumBuckets() != 17 {
		t.Error("t>n should clamp to n buckets")
	}
}

func TestMallowsPartialEnsemble(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rs, center := MallowsPartialEnsemble(rng, 30, 5, 1.0, 4)
	if len(rs) != 5 {
		t.Fatalf("ensemble size %d, want 5", len(rs))
	}
	if err := ranking.CheckSameDomain(append(rs, center)...); err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.NumBuckets() != 4 {
			t.Errorf("member has %d buckets, want 4", r.NumBuckets())
		}
	}
}

func TestZipfValuesSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	vals := ZipfValues(rng, 10000, 5, 1.5)
	counts := make([]int, 5)
	for _, v := range vals {
		if v < 0 || v >= 5 {
			t.Fatalf("value %d out of range", v)
		}
		counts[v]++
	}
	if !(counts[0] > counts[1] && counts[1] > counts[2]) {
		t.Errorf("Zipf counts not skewed: %v", counts)
	}
	// s = 0 should be roughly uniform.
	uniform := ZipfValues(rng, 10000, 5, 0)
	counts0 := make([]int, 5)
	for _, v := range uniform {
		counts0[v]++
	}
	for v, c := range counts0 {
		if c < 1600 || c > 2400 {
			t.Errorf("uniform Zipf count[%d] = %d, expected near 2000", v, c)
		}
	}
}

func TestFromValues(t *testing.T) {
	pr := FromValues([]int{2, 0, 2, 1, 0})
	want := ranking.MustFromBuckets(5, [][]int{{1, 4}, {3}, {0, 2}})
	if !pr.Equal(want) {
		t.Errorf("FromValues = %v, want %v", pr, want)
	}
}

func TestCatalogEnsemble(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ens := CatalogEnsemble(rng, 200, 4, 5, 1.0, 2.0)
	if len(ens.Rankings) != 4 || ens.Center == nil {
		t.Fatalf("bad ensemble shape")
	}
	if err := ranking.CheckSameDomain(append(ens.Rankings, ens.Center)...); err != nil {
		t.Fatal(err)
	}
	for i, r := range ens.Rankings {
		if r.NumBuckets() > 5 {
			t.Errorf("attribute %d has %d buckets, want <= 5", i, r.NumBuckets())
		}
		if r.NumBuckets() < 2 {
			t.Errorf("attribute %d degenerate with %d buckets", i, r.NumBuckets())
		}
		// Attribute sorts should correlate with the hidden order: gamma > 0.
		g, err := metrics.GoodmanKruskalGamma(ens.Center, r)
		if err != nil {
			t.Fatal(err)
		}
		if g <= 0 {
			t.Errorf("attribute %d uncorrelated with hidden order (gamma=%.3f)", i, g)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Partial(rand.New(rand.NewSource(42)), 25, 4)
	b := Partial(rand.New(rand.NewSource(42)), 25, 4)
	if !a.Equal(b) {
		t.Error("same seed produced different rankings")
	}
}

// UniformPartial must be exactly uniform over the Fubini(n) bucket orders:
// chi-squared-style tolerance over all 13 orders at n=3, plus shape checks
// at larger n.
func TestUniformPartialIsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, trials = 3, 130000
	counts := map[string]int{}
	for i := 0; i < trials; i++ {
		pr, err := UniformPartial(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		counts[pr.String()]++
	}
	if len(counts) != 13 {
		t.Fatalf("saw %d distinct bucket orders, want Fubini(3)=13", len(counts))
	}
	want := float64(trials) / 13
	for key, c := range counts {
		if dev := (float64(c) - want) / want; dev < -0.05 || dev > 0.05 {
			t.Errorf("order %q frequency off by %.1f%% (count %d, want %.0f)", key, 100*dev, c, want)
		}
	}
}

func TestUniformPartialShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{0, 1, 7, 18} {
		pr, err := UniformPartial(rng, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if pr.N() != n {
			t.Fatalf("n=%d: got domain %d", n, pr.N())
		}
	}
	if _, err := UniformPartial(rng, 19); err == nil {
		t.Error("n=19 accepted (Fubini(19) overflows int64)")
	}
	if _, err := UniformPartial(rng, -1); err == nil {
		t.Error("negative n accepted")
	}
}

// The singleton-vs-tie balance of UniformPartial matches theory: at n=2 the
// three orders are {01}, 0|1, 1|0, so ties appear with probability 1/3.
func TestUniformPartialTieRate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tied := 0
	const trials = 60000
	for i := 0; i < trials; i++ {
		pr, err := UniformPartial(rng, 2)
		if err != nil {
			t.Fatal(err)
		}
		if pr.NumBuckets() == 1 {
			tied++
		}
	}
	rate := float64(tied) / trials
	if rate < 0.31 || rate > 0.36 {
		t.Errorf("tie rate %.4f, want ~1/3", rate)
	}
}
