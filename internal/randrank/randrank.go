// Package randrank generates randomized ranking workloads for tests,
// experiments, and benchmarks: uniform random bucket orders, bucket orders
// of a prescribed type, Mallows-model judge ensembles, and the few-valued
// (Zipf-distributed) categorical attributes that motivate the paper's
// database scenario — sorting a catalog on a "type of cuisine" or "number of
// connections" field yields a partial ranking with a handful of huge
// buckets.
//
// Every generator takes an explicit *rand.Rand so workloads are reproducible
// from a seed.
package randrank

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/permutation"
	"repro/internal/ranking"
)

// Full returns a uniformly random full ranking of n elements.
func Full(rng *rand.Rand, n int) *ranking.PartialRanking {
	return ranking.MustFromOrder(rng.Perm(n))
}

// Partial returns a random bucket order over n elements: a uniformly random
// permutation carved into buckets whose sizes are uniform on
// {1, ..., maxBucket}. maxBucket = 1 yields a full ranking.
func Partial(rng *rand.Rand, n, maxBucket int) *ranking.PartialRanking {
	if maxBucket < 1 {
		panic("randrank: maxBucket must be >= 1")
	}
	perm := rng.Perm(n)
	var buckets [][]int
	for i := 0; i < n; {
		size := 1 + rng.Intn(maxBucket)
		if i+size > n {
			size = n - i
		}
		buckets = append(buckets, perm[i:i+size])
		i += size
	}
	return ranking.MustFromBuckets(n, buckets)
}

// OfType returns a random bucket order with exactly the given type: a
// uniformly random permutation carved into buckets of sizes alpha[0],
// alpha[1], ... The sizes must sum to the domain size, which is returned by
// the ranking.
func OfType(rng *rand.Rand, alpha []int) *ranking.PartialRanking {
	n := 0
	for _, a := range alpha {
		n += a
	}
	perm := rng.Perm(n)
	buckets := make([][]int, len(alpha))
	off := 0
	for i, a := range alpha {
		buckets[i] = perm[off : off+a]
		off += a
	}
	return ranking.MustFromBuckets(n, buckets)
}

// TopK returns a uniformly random top-k list over n elements.
func TopK(rng *rand.Rand, n, k int) *ranking.PartialRanking {
	pr, err := ranking.TopKList(n, k, rng.Perm(n))
	if err != nil {
		panic(err)
	}
	return pr
}

// MallowsFull draws a full ranking from the Mallows model with dispersion
// theta centered at the given full ranking. theta = 0 is uniform; large
// theta concentrates near the center.
func MallowsFull(rng *rand.Rand, center *ranking.PartialRanking, theta float64) *ranking.PartialRanking {
	if !center.IsFull() {
		panic("randrank: MallowsFull center must be a full ranking")
	}
	n := center.N()
	// Sample a displacement permutation around the identity and apply it to
	// the center's order: noisy[i] = centerOrder[pi[i]].
	pi := permutation.Mallows(rng, n, theta)
	centerOrder := center.Order()
	order := make([]int, n)
	for i, p := range pi {
		order[i] = centerOrder[p]
	}
	return ranking.MustFromOrder(order)
}

// MallowsEnsemble draws m full rankings independently from the Mallows model
// around a common uniformly random center, the standard noisy-judges
// workload for aggregation experiments. It returns the ensemble and the
// center.
func MallowsEnsemble(rng *rand.Rand, n, m int, theta float64) ([]*ranking.PartialRanking, *ranking.PartialRanking) {
	center := Full(rng, n)
	out := make([]*ranking.PartialRanking, m)
	for i := range out {
		out[i] = MallowsFull(rng, center, theta)
	}
	return out, center
}

// Coarsen collapses a full ranking into t contiguous buckets of near-equal
// size, simulating a few-valued attribute derived from an underlying total
// order (e.g. star ratings binned from a continuous quality score). t is
// clamped to [1, n].
func Coarsen(full *ranking.PartialRanking, t int) *ranking.PartialRanking {
	if !full.IsFull() {
		panic("randrank: Coarsen input must be a full ranking")
	}
	n := full.N()
	if t < 1 {
		t = 1
	}
	if t > n {
		t = n
	}
	order := full.Order()
	buckets := make([][]int, 0, t)
	base := n / t
	extra := n % t
	off := 0
	for i := 0; i < t; i++ {
		size := base
		if i < extra {
			size++
		}
		buckets = append(buckets, order[off:off+size])
		off += size
	}
	return ranking.MustFromBuckets(n, buckets)
}

// MallowsPartialEnsemble draws m partial rankings: each is a Mallows sample
// around a shared center, coarsened into t buckets. This is the paper's
// database workload — m few-valued attribute sorts that mostly agree on an
// underlying order.
func MallowsPartialEnsemble(rng *rand.Rand, n, m int, theta float64, t int) ([]*ranking.PartialRanking, *ranking.PartialRanking) {
	center := Full(rng, n)
	out := make([]*ranking.PartialRanking, m)
	for i := range out {
		out[i] = Coarsen(MallowsFull(rng, center, theta), t)
	}
	return out, center
}

// ZipfValues assigns each of n elements one of numValues categorical values
// with Zipf(s) frequencies (value v has probability proportional to
// 1/(v+1)^s). s = 0 is uniform. This models database attributes like "type
// of cuisine" where a few values dominate.
func ZipfValues(rng *rand.Rand, n, numValues int, s float64) []int {
	if numValues < 1 {
		panic("randrank: numValues must be >= 1")
	}
	weights := make([]float64, numValues)
	total := 0.0
	for v := range weights {
		weights[v] = 1 / math.Pow(float64(v+1), s)
		total += weights[v]
	}
	out := make([]int, n)
	for i := range out {
		u := rng.Float64() * total
		for v, w := range weights {
			u -= w
			if u <= 0 || v == numValues-1 {
				out[i] = v
				break
			}
		}
	}
	return out
}

// FromValues builds the partial ranking obtained by sorting elements on a
// categorical attribute: ascending attribute value, equal values tied. This
// is exactly how a database index scan on a few-valued column produces a
// bucket order.
func FromValues(values []int) *ranking.PartialRanking {
	scores := make([]float64, len(values))
	for i, v := range values {
		scores[i] = float64(v)
	}
	return ranking.FromScores(scores)
}

// Ensemble bundles a set of partial rankings over one domain with the
// ground-truth center they were derived from (nil when there is none).
type Ensemble struct {
	Rankings []*ranking.PartialRanking
	Center   *ranking.PartialRanking
}

// CatalogEnsemble generates the database-catalog workload of experiment E9:
// m attributes over n items, each attribute Zipf-categorical with the given
// number of distinct values, where attribute values are correlated with a
// hidden quality order (probability corr of ranking an item pair
// consistently with the hidden order). It returns the attribute-sort
// rankings and the hidden full ranking.
func CatalogEnsemble(rng *rand.Rand, n, m, numValues int, zipfS, theta float64) Ensemble {
	center := Full(rng, n)
	rankings := make([]*ranking.PartialRanking, m)
	for a := 0; a < m; a++ {
		// Draw a noisy copy of the hidden order, then quantize it onto a
		// Zipf-skewed value scale: the value of an item is determined by
		// which quantile of the noisy order it falls in, with quantile
		// widths proportional to Zipf weights.
		noisy := MallowsFull(rng, center, theta)
		weights := make([]float64, numValues)
		total := 0.0
		for v := range weights {
			weights[v] = 1 / math.Pow(float64(v+1), zipfS)
			total += weights[v]
		}
		values := make([]int, n)
		order := noisy.Order()
		idx := 0
		acc := 0.0
		for v := 0; v < numValues; v++ {
			acc += weights[v] / total
			hi := int(math.Round(acc * float64(n)))
			if v == numValues-1 {
				hi = n
			}
			for ; idx < hi && idx < n; idx++ {
				values[order[idx]] = v
			}
		}
		rankings[a] = FromValues(values)
	}
	return Ensemble{Rankings: rankings, Center: center}
}

// UniformPartial draws a bucket order uniformly at random among ALL
// Fubini(n) ordered set partitions of {0..n-1}, by sampling the first
// bucket's size k with probability proportional to C(n,k)*Fubini(n-k) and
// recursing. Exact integer weights limit n to 18 (Fubini(19) overflows
// int64); Partial remains the generator for larger domains, at the cost of
// a non-uniform shape distribution.
func UniformPartial(rng *rand.Rand, n int) (*ranking.PartialRanking, error) {
	if n < 0 || n > 18 {
		return nil, fmt.Errorf("randrank: UniformPartial supports 0 <= n <= 18, got %d", n)
	}
	// fub[i] = Fubini(i); binom via Pascal rows on demand.
	fub := make([]int64, n+1)
	for i := 0; i <= n; i++ {
		f, ok := ranking.Fubini(i)
		if !ok {
			return nil, fmt.Errorf("randrank: Fubini(%d) overflows", i)
		}
		fub[i] = f
	}
	remaining := rng.Perm(n)
	var buckets [][]int
	for len(remaining) > 0 {
		r := len(remaining)
		// Sample first-bucket size k with weight C(r,k)*fub[r-k].
		total := fub[r]
		u := rng.Int63n(total)
		k := 0
		binom := int64(1) // C(r,k), starting at k=0 -> 1; advance to k=1 first.
		for k = 1; k <= r; k++ {
			binom = binom * int64(r-k+1) / int64(k)
			w := binom * fub[r-k]
			if u < w {
				break
			}
			u -= w
		}
		buckets = append(buckets, remaining[:k])
		remaining = remaining[k:]
	}
	return ranking.FromBuckets(n, buckets)
}
