// Package envstamp stamps benchmark artifacts with the environment they were
// produced in, so two JSON reports (BENCH_PR1.json .. BENCH_PR6.json) are
// only compared when they come from comparable runs. Every benchmark-emitting
// binary (benchjson, rankload) embeds one Stamp at the top of its report,
// which keeps the perf trajectory diffable across PRs.
package envstamp

import (
	"runtime"
	"runtime/debug"
)

// Stamp is the environment header shared by all benchmark artifacts. The
// JSON keys match the historical benchjson schema, so older artifacts stay
// directly comparable.
type Stamp struct {
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// GOMAXPROCS is the worker parallelism the run had available.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Commit is the vcs revision baked in by the Go linker ("+dirty"
	// appended when the worktree had uncommitted changes), empty when the
	// binary was built outside a checkout.
	Commit string `json:"commit,omitempty"`
}

// New captures the current process's environment stamp.
func New() Stamp {
	return Stamp{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Commit:     vcsRevision(),
	}
}

// vcsRevision reads the commit hash the binary was built from out of the
// build info, if the toolchain recorded one.
func vcsRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev string
	dirty := false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" && dirty {
		rev += "+dirty"
	}
	return rev
}
