package envstamp

import (
	"encoding/json"
	"runtime"
	"testing"
)

func TestNewStampFields(t *testing.T) {
	s := New()
	if s.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", s.GoVersion, runtime.Version())
	}
	if s.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("GOMAXPROCS = %d, want %d", s.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
}

func TestStampJSONKeysMatchBenchjsonSchema(t *testing.T) {
	// The JSON keys are load-bearing: BENCH_PR1..PR6 artifacts share them.
	b, err := json.Marshal(Stamp{GoVersion: "go1.x", GOMAXPROCS: 4, Commit: "abc"})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"go_version", "gomaxprocs", "commit"} {
		if _, ok := m[key]; !ok {
			t.Errorf("stamp JSON missing key %q: %s", key, b)
		}
	}
}
