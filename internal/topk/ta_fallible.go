package topk

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/faults"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// ThresholdTopKOver is the TA-style baseline over fallible sources. Sorted
// accesses proceed round-robin over the lists that are still alive; every
// newly discovered element is resolved by random access in every other alive
// list. Any non-context access error permanently kills the offending list:
// the algorithm drops it from the aggregation, recomputes every resolved
// median over the survivors (each resolved element's positions in all
// currently-alive lists are known, so the recomputation is exact), and keeps
// going. The answer is then the exact lower-median top-k over the surviving
// lists and Result.Degraded is non-nil.
//
// Unlike MedRankOver, a truncated sorted scan costs TA nothing but
// discovery: elements the scan never reveals are resolved by random access
// once every survivor is exhausted, because random access by identity still
// works on a source whose scan ended early.
//
// When acc is non-nil it must be the accountant the sources charge to; nil
// allocates a fresh one.
func ThresholdTopKOver(ctx context.Context, sources []faults.Source, k int, acc *telemetry.AccessAccountant) (*Result, error) {
	m := len(sources)
	if m == 0 {
		return nil, fmt.Errorf("topk: no input sources")
	}
	n := sources[0].N()
	for i, s := range sources {
		if s.N() != n {
			return nil, fmt.Errorf("topk: source %d has domain size %d, want %d", i, s.N(), n)
		}
	}
	if k < 0 || k > n {
		return nil, fmt.Errorf("topk: k=%d out of range [0,%d]", k, n)
	}
	if acc == nil {
		acc = telemetry.NewAccessAccountant(m)
	}

	t := &taFallibleRun{
		sources:  sources,
		acc:      acc,
		n:        n,
		m:        m,
		k:        k,
		alive:    make([]bool, m),
		aliveCnt: m,
		needed:   (m + 1) / 2,
		frontier: make([]int64, m),
		pos:      make([][]int64, n),
		med:      make([]int64, n),
		kSmall:   &int64MaxHeap{},
	}
	for i, s := range sources {
		t.alive[i] = true
		t.frontier[i] = s.Peek2()
	}
	for e := range t.med {
		t.med[e] = math.MaxInt64
	}

	var derr error
	sctx, sp := telemetry.Start(ctx, "topk.ta_fallible")
	telemetry.Do(sctx, "kernel", "ta", func(ctx context.Context) {
		derr = t.drive(ctx)
	})
	sp.End()
	if derr != nil {
		return nil, derr
	}

	winners, medians2 := selectTopK(t.med, k)
	top, err := ranking.TopKList(n, k, winners)
	if err != nil {
		return nil, err
	}
	stats := statsFromReport(acc.Report())
	tTARuns.Inc()
	tTAProbes.Add(int64(stats.Total))
	tTARandom.Add(int64(stats.Random))
	return &Result{
		TopK:     top,
		Winners:  winners,
		Medians2: medians2,
		Stats:    stats,
		Degraded: t.degraded(winners),
	}, nil
}

type taFallibleRun struct {
	sources  []faults.Source
	acc      *telemetry.AccessAccountant
	n, m, k  int
	alive    []bool
	aliveCnt int
	needed   int // (aliveCnt+1)/2, the survivor median index
	frontier []int64
	pos      [][]int64 // per resolved element: positions, MaxInt64 = unknown
	med      []int64   // per element: lower median over alive lists
	kSmall   *int64MaxHeap
	resolved int
	lost     []int
	rrNext   int
}

func (t *taFallibleRun) drive(ctx context.Context) error {
	if t.k == 0 {
		return nil
	}
	for t.resolved < t.n {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Threshold test: dead and exhausted lists both sit at MaxInt64, so
		// the needed-th smallest over the full frontier array is the
		// needed-th smallest alive frontier.
		if t.resolved >= t.k && t.kSmall.Peek() < kthSmallest(t.frontier, t.needed) {
			return nil
		}
		i := -1
		for tries := 0; tries < t.m; tries++ {
			c := t.rrNext
			t.rrNext = (t.rrNext + 1) % t.m
			if t.alive[c] && t.frontier[c] < math.MaxInt64 {
				i = c
				break
			}
		}
		if i < 0 {
			// Every survivor's scan has ended. Lists that merely truncated
			// still answer random accesses, so resolve the undiscovered rest
			// by identity.
			return t.finalizeByRandomAccess(ctx)
		}
		e, ok, err := t.sources[i].Next(ctx)
		if err != nil {
			if faults.IsContextErr(err) {
				return err
			}
			if kerr := t.kill(i, err); kerr != nil {
				return kerr
			}
			continue
		}
		if !ok {
			t.frontier[i] = math.MaxInt64
			continue
		}
		t.frontier[i] = t.sources[i].Peek2()
		if t.med[e.Elem] != math.MaxInt64 {
			continue // already resolved
		}
		if err := t.resolve(ctx, e.Elem, i, e.Pos2); err != nil {
			return err
		}
	}
	return nil
}

// resolve random-accesses elem's position in every alive list (except seedList
// when its position arrived by sorted access) and records the element's exact
// lower median over the survivors. A list dying mid-resolution is killed and
// the resolution continues over the rest.
func (t *taFallibleRun) resolve(ctx context.Context, elem, seedList int, seedPos2 int64) error {
	row := make([]int64, t.m)
	for j := range row {
		row[j] = math.MaxInt64
	}
	if seedList >= 0 {
		row[seedList] = seedPos2
	}
	for j := 0; j < t.m; j++ {
		if j == seedList || !t.alive[j] {
			continue
		}
		v, err := t.sources[j].Pos2(ctx, elem)
		if err != nil {
			if faults.IsContextErr(err) {
				return err
			}
			if kerr := t.kill(j, err); kerr != nil {
				return kerr
			}
			continue
		}
		row[j] = v
	}
	t.pos[elem] = row
	t.med[elem] = kthAlive(row, t.alive, t.needed)
	t.resolved++
	heap.Push(t.kSmall, t.med[elem])
	if t.kSmall.Len() > t.k {
		heap.Pop(t.kSmall)
	}
	return nil
}

func (t *taFallibleRun) finalizeByRandomAccess(ctx context.Context) error {
	for e := 0; e < t.n && t.resolved < t.n; e++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if t.med[e] != math.MaxInt64 {
			continue
		}
		if err := t.resolve(ctx, e, -1, 0); err != nil {
			return err
		}
	}
	return nil
}

// kill drops list j from the aggregation and recomputes every resolved median
// over the survivors. The recomputation is exact: a resolved element's row
// holds its true position in every list that was alive at resolution time, a
// superset of the lists alive now.
func (t *taFallibleRun) kill(j int, cause error) error {
	t.alive[j] = false
	t.aliveCnt--
	t.frontier[j] = math.MaxInt64
	t.lost = append(t.lost, j)
	tListDeaths.Inc()
	if t.aliveCnt == 0 {
		return fmt.Errorf("topk: all %d input lists died mid-query (last: %w)", t.m, cause)
	}
	t.needed = (t.aliveCnt + 1) / 2
	*t.kSmall = (*t.kSmall)[:0]
	for e := 0; e < t.n; e++ {
		if t.pos[e] == nil {
			continue
		}
		t.med[e] = kthAlive(t.pos[e], t.alive, t.needed)
		heap.Push(t.kSmall, t.med[e])
		if t.kSmall.Len() > t.k {
			heap.Pop(t.kSmall)
		}
	}
	return nil
}

func (t *taFallibleRun) degraded(winners []int) *Degraded {
	if len(t.lost) == 0 {
		return nil
	}
	rep := t.acc.Report()
	d := &Degraded{
		Lost:             append([]int(nil), t.lost...),
		Survivors:        t.aliveCnt,
		Retried:          int(rep.Retried),
		MedianIntervals2: make([][2]int64, len(winners)),
	}
	sort.Ints(d.Lost)
	for _, li := range t.lost {
		if li < len(rep.PerList) {
			d.WastedSequential += int(rep.PerList[li])
		}
		if li < len(rep.RandomPerList) {
			d.WastedRandom += int(rep.RandomPerList[li])
		}
	}
	// Certificate on the fault-free median: positions resolved before a death
	// are exact, positions in lists dead before resolution are unknown.
	j := (t.m + 1) / 2
	for i, w := range winners {
		row := t.pos[w]
		known := make([]int64, 0, t.m)
		unknown := 0
		for l := 0; l < t.m; l++ {
			if row[l] != math.MaxInt64 {
				known = append(known, row[l])
			} else {
				unknown++
			}
		}
		lo := int64(0)
		if j-unknown >= 1 {
			lo = kthSmallest(known, j-unknown)
		}
		hi := int64(math.MaxInt64)
		if len(known) >= j {
			hi = kthSmallest(known, j)
		}
		d.MedianIntervals2[i] = [2]int64{lo, hi}
	}
	return d
}

// kthAlive returns the needed-th smallest of row restricted to alive lists.
func kthAlive(row []int64, alive []bool, needed int) int64 {
	vals := make([]int64, 0, len(row))
	for j, v := range row {
		if alive[j] {
			vals = append(vals, v)
		}
	}
	return kthSmallest(vals, needed)
}
