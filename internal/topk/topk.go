// Package topk implements the database-friendly top-k aggregation engine of
// Section 6 of the paper: the MEDRANK algorithm of Fagin, Kumar, and
// Sivakumar (SIGMOD 2003) generalized to partial rankings, under the
// sequential-access model in which it is instance-optimal in the sense of
// Fagin, Lotem, and Naor.
//
// Each input partial ranking is exposed as a cursor that yields elements in
// non-decreasing position order (a database index scan: one probe reveals
// the next element and its bucket position). The engine reads as few entries
// as it can while still certifying the exact median top-k — "as few elements
// of each partial ranking as are necessary to determine the winner(s)".
// Every probe is counted, so experiments can compare the access cost against
// a full scan and against a per-instance certificate lower bound.
package topk

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/faults"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// Gated telemetry instruments of the top-k engines. Access accounting itself
// is always on (it is the experimental result); these counters only feed the
// process-wide registry snapshot.
var (
	tMedRankRuns   = telemetry.GetCounter("topk.medrank.runs")
	tMedRankProbes = telemetry.GetCounter("topk.medrank.probes")
	tTARuns        = telemetry.GetCounter("topk.ta.runs")
	tTAProbes      = telemetry.GetCounter("topk.ta.probes")
	tTARandom      = telemetry.GetCounter("topk.ta.random")
	tNRARuns       = telemetry.GetCounter("topk.nra.runs")
	tNRAProbes     = telemetry.GetCounter("topk.nra.probes")
	tCARuns        = telemetry.GetCounter("topk.ca.runs")
	tCAProbes      = telemetry.GetCounter("topk.ca.probes")
	tCARandom      = telemetry.GetCounter("topk.ca.random")
)

// Entry is one probed item of a list: an element and its (doubled) bucket
// position in that list. It is the access layer's wire type, aliased so the
// infallible cursors here and the fallible sources of internal/faults share
// one value type.
type Entry = faults.Entry

// Cursor provides sequential access to one partial ranking: entries arrive
// in non-decreasing position order, ties within a bucket by ascending
// element ID. Next returns false when the list is exhausted. Every
// successful probe is charged to the cursor's access accountant — engines
// that drive several cursors share one accountant, so a whole run's
// sequential, bucket-granular, and random accesses land in a single
// telemetry.AccessReport.
type Cursor struct {
	pr     *ranking.PartialRanking
	bucket int
	offset int
	acc    *telemetry.AccessAccountant
	list   int
}

// NewCursor opens a standalone sequential cursor over a partial ranking,
// with its own single-list access accountant.
func NewCursor(pr *ranking.PartialRanking) *Cursor {
	return &Cursor{pr: pr, acc: telemetry.NewAccessAccountant(1)}
}

// newCursorAt opens a cursor that charges its probes to list `list` of a
// shared accountant.
func newCursorAt(pr *ranking.PartialRanking, acc *telemetry.AccessAccountant, list int) *Cursor {
	return &Cursor{pr: pr, acc: acc, list: list}
}

// Next probes the next entry. Every successful probe is counted.
func (c *Cursor) Next() (Entry, bool) {
	for c.bucket < c.pr.NumBuckets() {
		b := c.pr.Bucket(c.bucket)
		if c.offset < len(b) {
			e := Entry{Elem: b[c.offset], Pos2: c.pr.BucketPos2(c.bucket)}
			c.offset++
			c.acc.Sequential(c.list)
			return e, true
		}
		c.bucket++
		c.offset = 0
	}
	return Entry{}, false
}

// Peek2 returns the doubled position of the next unprobed entry (the
// frontier), or math.MaxInt64 when exhausted. Peeking is free: a sequential
// scan knows it has not yet passed a given position.
func (c *Cursor) Peek2() int64 {
	b, off := c.bucket, c.offset
	for b < c.pr.NumBuckets() {
		if off < c.pr.BucketSize(b) {
			return c.pr.BucketPos2(b)
		}
		b++
		off = 0
	}
	return math.MaxInt64
}

// Probes returns how many entries this cursor has yielded.
func (c *Cursor) Probes() int { return int(c.acc.SequentialIn(c.list)) }

// seenIn reports whether element e has already been probed by this cursor.
// Entries arrive in bucket order, within a bucket by ascending element ID.
func (c *Cursor) seenIn(e int) bool {
	b := c.pr.BucketOf(e)
	if b != c.bucket {
		return b < c.bucket
	}
	bucket := c.pr.Bucket(b)
	return sort.SearchInts(bucket, e) < c.offset
}

// AccessStats records the access cost of a run under the middleware cost
// model of Fagin, Lotem, and Naor: sequential accesses (sorted scans),
// bucket-granular I/Os, and random accesses (element lookups by identity).
// It is the snapshot form of the run's telemetry.AccessAccountant, the one
// accounting type every engine — MEDRANK, the TA-style baseline, and the
// database query layer — reports through.
type AccessStats struct {
	// PerList is the number of entries probed from each input list.
	PerList []int
	// Total is the sum of PerList.
	Total int
	// MaxDepth is the deepest probe into any single list.
	MaxDepth int
	// BucketProbes counts bucket-granular I/Os per list; it equals PerList
	// under element-granular policies (each element costs one probe) and is
	// smaller under the *Buckets policies, where one probe returns a whole
	// run of tied entries.
	BucketProbes []int
	// TotalBucketProbes is the sum of BucketProbes.
	TotalBucketProbes int
	// Random is the number of random accesses. MEDRANK makes none; the
	// TA-style baseline pays one per list per newly discovered element.
	Random int
	// RandomPerList is the number of random accesses per list.
	RandomPerList []int
	// Failed counts access attempts that returned an error (always 0 on the
	// infallible in-memory paths; chaos runs report injected failures here).
	Failed int
	// Retried counts access attempts a retry policy re-issued after a
	// transient failure.
	Retried int
}

// MiddlewareCost returns the FLN middleware cost cs*Total + cr*Random.
func (st AccessStats) MiddlewareCost(cs, cr int) int {
	return cs*st.Total + cr*st.Random
}

// OptimalityRatio divides the run's total accesses (sequential plus random)
// by a per-instance lower bound such as CertificateLowerBound.
//
// Deprecated: this is the equal-weights special case — it prices a random
// access the same as a sequential probe, contradicting the FLN cost model
// that MiddlewareCost encodes, and divides by a sequential-only bound. It is
// kept for comparability with historical numbers; new code should use
// CostOptimalityRatio with a CertificateLowerBoundCost bound at the same
// (cs, cr) weights.
func (st AccessStats) OptimalityRatio(lowerBound int) float64 {
	if lowerBound <= 0 {
		return 0
	}
	return float64(st.Total+st.Random) / float64(lowerBound)
}

// CostOptimalityRatio divides the run's middleware cost at weights (cs, cr)
// by a cost-aware per-instance lower bound — CertificateLowerBoundCost at
// the SAME weights, or the ratio compares incommensurable currencies. A
// ratio near 1 witnesses instance optimality under that cost model
// (Theorems 30-32 of the paper; FLN Theorems 8.5/9.1 for the weighted
// variants). Returns 0 when the bound is not positive (undefined, e.g.
// k = 0).
func (st AccessStats) CostOptimalityRatio(cs, cr, lowerBound int) float64 {
	if lowerBound <= 0 {
		return 0
	}
	return float64(st.MiddlewareCost(cs, cr)) / float64(lowerBound)
}

// statsFromReport converts an accountant snapshot into AccessStats.
func statsFromReport(r telemetry.AccessReport) AccessStats {
	st := AccessStats{
		PerList:           make([]int, len(r.PerList)),
		BucketProbes:      make([]int, len(r.BucketPerList)),
		RandomPerList:     make([]int, len(r.RandomPerList)),
		Total:             int(r.Sequential),
		MaxDepth:          int(r.MaxDepth),
		TotalBucketProbes: int(r.BucketIOs),
		Random:            int(r.Random),
		Failed:            int(r.Failed),
		Retried:           int(r.Retried),
	}
	for i, v := range r.PerList {
		st.PerList[i] = int(v)
	}
	for i, v := range r.BucketPerList {
		st.BucketProbes[i] = int(v)
	}
	for i, v := range r.RandomPerList {
		st.RandomPerList[i] = int(v)
	}
	return st
}

// Policy selects the probe-scheduling strategy.
type Policy int

const (
	// GlobalMerge always probes the list with the smallest frontier
	// position, consuming entries in globally non-decreasing position
	// order. It certifies medians with the fewest probes.
	GlobalMerge Policy = iota
	// RoundRobin probes every list once per round, the schedule described
	// in Section 6 of the paper ("access each of the partial rankings, one
	// element at a time"). It reads at most one round more than necessary
	// per list and matches the database setting of one cheap cursor per
	// index.
	RoundRobin
	// GlobalMergeBuckets is GlobalMerge at bucket granularity: one probe
	// consumes an entire bucket (an index scan over a few-valued attribute
	// returns the whole run of tied rows in one I/O). Element counts still
	// accumulate in AccessStats.PerList; AccessStats.BucketProbes counts
	// the I/Os.
	GlobalMergeBuckets
	// RoundRobinBuckets is RoundRobin at bucket granularity.
	RoundRobinBuckets
)

// Result is the outcome of a MEDRANK run.
type Result struct {
	// TopK is the aggregated top-k list over the full domain, identical to
	// aggregate.MedianTopK's offline answer (lower medians, ties broken by
	// element ID).
	TopK *ranking.PartialRanking
	// Winners lists the k winning elements best-first.
	Winners []int
	// Medians2 holds the doubled lower-median position of each winner.
	Medians2 []int64
	// Stats is the access accounting.
	Stats AccessStats
	// Degraded is non-nil when one or more input lists died mid-query and
	// the answer is the exact aggregation of the surviving lists only. It
	// carries which lists were lost, the accesses wasted on them, and a
	// conservative per-winner quality certificate. Nil on fault-free runs.
	Degraded *Degraded
	// Approx is non-nil when the run came from ThresholdTopKApprox: the FLN
	// (1+θ) early-stop certificate. Nil on exact engine paths.
	Approx *ApproxCertificate
	// Intervals2 is non-nil on NRA/CA runs: per winner, the certified doubled
	// median interval [best, worst] at stop time. The winner SET is exact even
	// when intervals are open — interval domination certifies set membership
	// without pinning each median; Medians2 then holds the certified upper
	// bounds. The hi endpoint is MaxInt64-1 (the bottom-of-order sentinel)
	// for under-observed winners of degraded runs.
	Intervals2 [][2]int64
	// BufferPeak is the peak number of simultaneously held candidate position
	// buffers on NRA/CA runs — the engine's working-set bound, which interval
	// clearing keeps below n. Zero on other engines.
	BufferPeak int
}

// medrankRun carries the certification state of one MEDRANK run; the engine
// lives in run.go. The certification core is access-agnostic: it sees lists
// only through frontier positions and the seenIn predicate, so the same core
// drives the infallible cursor path (MedRank) and the fallible source path
// (MedRankOver), which rebuilds a fresh run when a list dies.
type medrankRun struct {
	n, m, k, needed int
	cursors         []*Cursor
	seenIn          func(list, e int) bool // has list already yielded e?
	frontier        []int64                // per list: doubled position of next unprobed entry
	seen            [][]int64              // per element: probed doubled positions
	exactMed        []int64                // per element: exact doubled median, MaxInt64 if unknown
	exactCount      int
	probedDistinct  int
	pending         []int         // probed, not yet exact or cleared
	inPend          []bool        // membership in pending
	cleared         []bool        // provably outside the top k
	kSmall          *int64MaxHeap // k smallest exact medians (max-heap)
	bucketGranular  bool          // *Buckets policies: one probe = one bucket
	acc             *telemetry.AccessAccountant
}

// MedRank runs the streaming median-rank top-k aggregation over the inputs
// with the given probe policy. It returns the exact lower-median top-k list
// while probing only a prefix of each list — enough to certify the answer.
func MedRank(rankings []*ranking.PartialRanking, k int, policy Policy) (*Result, error) {
	return MedRankContext(context.Background(), rankings, k, policy)
}

// MedRankContext is MedRank under a caller context: the context's pprof
// labels and spans attach to the certification kernel (so a db.TopK span
// covers the engine it drove), and cancellation or deadline expiry aborts
// the run between probes with ctx.Err(). The in-memory cursors themselves
// cannot block; for sources that can, see MedRankOver.
func MedRankContext(ctx context.Context, rankings []*ranking.PartialRanking, k int, policy Policy) (*Result, error) {
	if len(rankings) == 0 {
		return nil, fmt.Errorf("topk: no input rankings")
	}
	if err := ranking.CheckSameDomain(rankings...); err != nil {
		return nil, err
	}
	n := rankings[0].N()
	if k < 0 || k > n {
		return nil, fmt.Errorf("topk: k=%d out of range [0,%d]", k, n)
	}
	m := len(rankings)

	acc := telemetry.NewAccessAccountant(m)
	run := &medrankRun{
		n: n, m: m, k: k,
		needed:   (m + 1) / 2, // index of the lower median
		cursors:  make([]*Cursor, m),
		frontier: make([]int64, m),
		seen:     make([][]int64, n),
		exactMed: make([]int64, n),
		inPend:   make([]bool, n),
		cleared:  make([]bool, n),
		kSmall:   &int64MaxHeap{},
		acc:      acc,
	}
	for e := 0; e < n; e++ {
		run.exactMed[e] = math.MaxInt64
	}
	for i, r := range rankings {
		run.cursors[i] = newCursorAt(r, acc, i)
		run.frontier[i] = run.cursors[i].Peek2()
	}
	run.seenIn = func(list, e int) bool { return run.cursors[list].seenIn(e) }

	pickMerge := func() int {
		best, bestPos := -1, int64(math.MaxInt64)
		for i, f := range run.frontier {
			if f < bestPos {
				best, bestPos = i, f
			}
		}
		return best
	}
	next := 0
	pickRR := func() int {
		for tries := 0; tries < m; tries++ {
			i := next
			next = (next + 1) % m
			if run.frontier[i] < math.MaxInt64 {
				return i
			}
		}
		return -1
	}
	var pick func() int
	switch policy {
	case GlobalMerge:
		pick = pickMerge
	case RoundRobin:
		pick = pickRR
	case GlobalMergeBuckets:
		run.bucketGranular = true
		pick = pickMerge
	case RoundRobinBuckets:
		run.bucketGranular = true
		pick = pickRR
	default:
		return nil, fmt.Errorf("topk: unknown policy %d", policy)
	}
	// With telemetry enabled the whole certification loop carries the pprof
	// label "kernel"="medrank", so CPU profiles attribute its samples (under
	// the caller's own labels), and the run is timed as a trace span.
	var derr error
	sctx, sp := telemetry.Start(ctx, "topk.medrank")
	telemetry.Do(sctx, "kernel", "medrank", func(ctx context.Context) {
		derr = run.drive(ctx, pick)
	})
	sp.End()
	if derr != nil {
		return nil, derr
	}

	winners, medians2 := run.finalTopK()
	top, err := ranking.TopKList(n, k, winners)
	if err != nil {
		return nil, err
	}
	stats := statsFromReport(acc.Report())
	tMedRankRuns.Inc()
	tMedRankProbes.Add(int64(stats.Total))
	return &Result{
		TopK:     top,
		Winners:  winners,
		Medians2: medians2,
		Stats:    stats,
	}, nil
}

// int64MaxHeap is a max-heap of int64 used to track the k smallest exact
// medians (the root is the current k-th smallest).
type int64MaxHeap []int64

func (h int64MaxHeap) Len() int            { return len(h) }
func (h int64MaxHeap) Less(i, j int) bool  { return h[i] > h[j] }
func (h int64MaxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *int64MaxHeap) Push(x interface{}) { *h = append(*h, x.(int64)) }
func (h *int64MaxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Peek returns the root (the largest tracked value).
func (h *int64MaxHeap) Peek() int64 { return (*h)[0] }

// FullScanCost returns the access cost of the naive approach that reads
// every list completely: n entries per list.
func FullScanCost(rankings []*ranking.PartialRanking) AccessStats {
	st := AccessStats{PerList: make([]int, len(rankings))}
	for i, r := range rankings {
		st.PerList[i] = r.N()
		st.Total += r.N()
		if r.N() > st.MaxDepth {
			st.MaxDepth = r.N()
		}
	}
	return st
}

// CertificateLowerBound returns a conservative lower bound on the total
// number of sequential probes ANY correct deterministic algorithm must
// spend on this instance: for each winner w, the algorithm has to observe w
// in at least ceil(m/2) lists to pin its median, and observing w in list i
// costs at least the number of entries that precede w there (sequential
// access cannot skip). The cheapest choice is the ceil(m/2) lists where w is
// shallowest; the bound takes the most expensive winner. The
// instance-optimality ratio reported by experiment E7 is MEDRANK probes
// divided by this bound.
func CertificateLowerBound(rankings []*ranking.PartialRanking, winners []int) int {
	return CertificateLowerBoundCost(rankings, winners, 1, 0)
}

// CertificateLowerBoundCost generalizes CertificateLowerBound to the FLN
// middleware cost model: learning a winner's position in list i costs at
// least min(cs·depth_i, cr) — a sequential scan down to its bucket or a
// single random access, whichever is cheaper on that list. cr <= 0 selects
// the NRA regime (random access unavailable), degenerating to the
// sequential-only bound; CertificateLowerBound is exactly this at
// (cs, cr) = (1, 0). A winner outside a list's domain contributes nothing
// there: no access of either kind can observe it, so it is skipped instead
// of indexed (the unconditional BucketOf it replaced panicked on such
// inputs).
func CertificateLowerBoundCost(rankings []*ranking.PartialRanking, winners []int, cs, cr int) int {
	m := len(rankings)
	needed := (m + 1) / 2
	best := 0
	for _, w := range winners {
		costs := make([]int, 0, m)
		for _, r := range rankings {
			if w < 0 || w >= r.N() {
				continue // absent from this list: unobservable at any price
			}
			// Entries strictly before w's bucket, plus the probe that
			// reveals w itself.
			depth := 1
			for b := 0; b < r.BucketOf(w); b++ {
				depth += r.BucketSize(b)
			}
			c := cs * depth
			if cr > 0 && cr < c {
				c = cr
			}
			costs = append(costs, c)
		}
		sort.Ints(costs)
		total := 0
		for i := 0; i < needed && i < len(costs); i++ {
			total += costs[i]
		}
		if total > best {
			best = total
		}
	}
	return best
}
