package topk

import (
	"container/heap"
	"context"
	"math"
	"sort"
)

// This file holds the certification engine shared by both probe policies.
//
// An element's lower median is the needed-th smallest of its m positions.
// Once an element has been probed `needed` times and its needed-th smallest
// seen position is at most the frontier of every list where it is still
// unseen, that value is its exact median — unseen positions are at least
// their frontiers, so they cannot enter the needed smallest — and it never
// changes afterwards.
//
// Certification of the top k requires: at least k exact elements, and every
// other element's median lower bound strictly exceeding the k-th smallest
// exact median. Two monotonicity facts make this cheap to maintain:
//
//   - an element's median lower bound only grows (frontiers advance, and a
//     probed position is at least the frontier it replaces);
//   - the k-th smallest exact median only shrinks as elements become exact.
//
// Hence once an element's bound clears the bar it is out of the race for
// good ("cleared"), and each element is charged O(m log m) work a constant
// number of times plus one examination per failed certification.

// promote records e's exact median.
func (r *medrankRun) promote(e int, med int64) {
	r.exactMed[e] = med
	r.exactCount++
	if r.k > 0 {
		heap.Push(r.kSmall, med)
		if r.kSmall.Len() > r.k {
			heap.Pop(r.kSmall)
		}
	}
}

// onProbed is called after element e gained a new seen position.
func (r *medrankRun) onProbed(e int) {
	if r.exactMed[e] != math.MaxInt64 || r.cleared[e] {
		return
	}
	if med, ok := r.tryExact(e); ok {
		r.promote(e, med)
		return
	}
	if !r.inPend[e] {
		r.pending = append(r.pending, e)
		r.inPend[e] = true
	}
}

func (r *medrankRun) certified() bool {
	if r.k == 0 {
		return true
	}
	if r.exactCount < r.k {
		return false
	}
	kth := r.kSmall.Peek()
	if r.probedDistinct < r.n && r.unseenLB() <= kth {
		return false
	}
	// Examine pending elements; compact out the ones that are promoted,
	// already exact, or cleared. Bail out at the first genuine blocker.
	keep := r.pending[:0]
	blocked := false
	for idx, e := range r.pending {
		if blocked {
			keep = append(keep, r.pending[idx:]...)
			break
		}
		if r.exactMed[e] != math.MaxInt64 || r.cleared[e] {
			r.inPend[e] = false
			continue
		}
		if r.medianLB(e) > kth {
			r.cleared[e] = true
			r.inPend[e] = false
			continue
		}
		if med, ok := r.tryExact(e); ok {
			r.promote(e, med)
			r.inPend[e] = false
			// Promotion can only shrink kth, so prior clearances stand.
			kth = r.kSmall.Peek()
			continue
		}
		// e genuinely blocks certification; keep it and everything after.
		keep = append(keep, e)
		blocked = true
	}
	r.pending = keep
	return !blocked
}

// finalizeExhausted promotes every remaining element after all lists have
// been fully read (every element then has all m positions seen).
func (r *medrankRun) finalizeExhausted() {
	for e := 0; e < r.n; e++ {
		if r.exactMed[e] != math.MaxInt64 {
			continue
		}
		if len(r.seen[e]) != r.m {
			// Unreachable when every cursor is exhausted.
			panic("topk: finalize with unseen positions")
		}
		r.promote(e, kthSmallest(r.seen[e], r.needed))
	}
	r.pending = r.pending[:0]
}

// ctxCheckStride bounds how many probes may pass between context checks in
// the infallible drive loop: frequent enough that a deadline aborts a long
// certification promptly, sparse enough that the atomic-ish Err call stays
// invisible on the hot path.
const ctxCheckStride = 1024

// drive repeatedly asks pick for a list to probe (-1 when none remains) and
// stops as soon as the top k is certified, or with ctx.Err() when the caller
// cancels mid-run.
func (r *medrankRun) drive(ctx context.Context, pick func() int) error {
	for it := 0; !r.certified(); it++ {
		if it%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		i := pick()
		if i < 0 {
			r.finalizeExhausted()
			return nil
		}
		r.probe(i)
	}
	return nil
}

func (r *medrankRun) probe(i int) {
	e, ok := r.cursors[i].Next()
	if !ok {
		r.frontier[i] = math.MaxInt64
		return
	}
	r.acc.BucketIO(i)
	r.consume(i, e, r.cursors[i].Peek2())
	if !r.bucketGranular {
		return
	}
	// Bucket granularity: the probe returned the whole run of entries tied
	// at this position (one index-scan I/O).
	for r.cursors[i].Peek2() == e.Pos2 {
		next, ok := r.cursors[i].Next()
		if !ok {
			break
		}
		r.consume(i, next, r.cursors[i].Peek2())
	}
}

// consume registers one revealed entry from list i, whose frontier has
// advanced to frontier2.
func (r *medrankRun) consume(i int, e Entry, frontier2 int64) {
	r.frontier[i] = frontier2
	r.replay(e)
}

// replay registers an entry without touching the frontier: the fallible
// engine uses it to re-feed already-probed entries into a fresh
// certification state after a list death, under the frontiers of the moment
// (unseen positions are bounded by the current frontiers, so replaying under
// the newest — largest — frontiers is exact, not just safe).
func (r *medrankRun) replay(e Entry) {
	if len(r.seen[e.Elem]) == 0 {
		r.probedDistinct++
	}
	r.seen[e.Elem] = append(r.seen[e.Elem], e.Pos2)
	r.onProbed(e.Elem)
}

// tryExact reports the exact median of e if certifiable now.
func (r *medrankRun) tryExact(e int) (int64, bool) {
	s := r.seen[e]
	if len(s) < r.needed {
		return 0, false
	}
	med := kthSmallest(s, r.needed)
	if len(s) == r.m {
		return med, true
	}
	for i := range r.frontier {
		if r.frontier[i] < med && !r.seenIn(i, e) {
			return 0, false
		}
	}
	return med, true
}

// medianLB returns a lower bound on e's median: the needed-th smallest of
// its seen positions merged with the frontiers of its unseen lists.
func (r *medrankRun) medianLB(e int) int64 {
	s := r.seen[e]
	all := make([]int64, 0, r.m)
	all = append(all, s...)
	if len(s) < r.m {
		for i := range r.frontier {
			if !r.seenIn(i, e) {
				all = append(all, r.frontier[i])
			}
		}
	}
	return kthSmallest(all, r.needed)
}

// unseenLB returns the median lower bound shared by all never-probed
// elements: the needed-th smallest frontier.
func (r *medrankRun) unseenLB() int64 {
	return kthSmallest(r.frontier, r.needed)
}

// finalTopK ranks the exact elements by (median, element ID) and returns the
// first k. By construction of certified(), every element that could precede
// the k-th winner is exact.
func (r *medrankRun) finalTopK() (winners []int, medians2 []int64) {
	type cand struct {
		e    int
		med2 int64
	}
	cands := make([]cand, 0, r.exactCount)
	for e := 0; e < r.n; e++ {
		if r.exactMed[e] < math.MaxInt64 {
			cands = append(cands, cand{e, r.exactMed[e]})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].med2 != cands[b].med2 {
			return cands[a].med2 < cands[b].med2
		}
		return cands[a].e < cands[b].e
	})
	if len(cands) > r.k {
		cands = cands[:r.k]
	}
	winners = make([]int, 0, len(cands))
	for _, c := range cands {
		winners = append(winners, c.e)
		medians2 = append(medians2, c.med2)
	}
	return winners, medians2
}

// kthSmallest returns the k-th smallest (1-based) of xs without modifying
// it. k must be in [1, len(xs)].
func kthSmallest(xs []int64, k int) int64 {
	cp := append([]int64(nil), xs...)
	sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
	return cp[k-1]
}
