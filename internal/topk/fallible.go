package topk

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/faults"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// tListDeaths counts lists that died permanently mid-query (gated).
var tListDeaths = telemetry.GetCounter("topk.list_deaths")

// Degraded annotates a Result whose input lists partially died mid-query: the
// answer is the exact lower-median top-k over the surviving lists only, which
// is schedule-independent and hence deterministic for a fixed fault plan.
type Degraded struct {
	// Lost holds the original indices of the lists that died, ascending.
	Lost []int `json:"lost"`
	// Survivors is the number of lists the answer aggregates.
	Survivors int `json:"survivors"`
	// WastedSequential counts sequential accesses charged to lists that later
	// died — work the degraded answer could not use.
	WastedSequential int `json:"wasted_sequential"`
	// WastedRandom counts random accesses charged to lists that later died.
	WastedRandom int `json:"wasted_random"`
	// Retried is the total number of access attempts re-issued by retry
	// policies during the run.
	Retried int `json:"retried"`
	// MedianIntervals2 holds, per winner, a conservative interval [lo, hi]
	// (doubled positions) that provably contains the winner's fault-free
	// median — the median it would have had if no list had died. With
	// j = (m+1)/2 the original median index and u the number of dead lists
	// where the winner was never observed: the j-th smallest of the m true
	// positions is at least the (j-u)-th smallest of the m-u positions we can
	// lower-bound (observed values are exact, unobserved survivors sit at or
	// beyond their frontier), and at most the j-th smallest of the observed
	// values alone (hi is MaxInt64 when fewer than j were observed).
	MedianIntervals2 [][2]int64 `json:"median_intervals2"`
}

// fallibleRun drives the access-agnostic certification core of medrankRun
// over fallible sources. It keeps a per-original-list log of every consumed
// entry; when a list dies it rebuilds a fresh certification state over the
// survivors by replaying the surviving logs under the current frontiers
// (exact, since unseen positions are bounded below by the frontier of the
// moment, see medrankRun.replay).
type fallibleRun struct {
	sources []faults.Source
	acc     *telemetry.AccessAccountant
	n, m, k int
	policy  Policy
	granul  bool

	alive    []bool    // per original list
	aliveIdx []int     // survivor slot -> original list index
	logs     [][]Entry // per original list: every entry consumed from it
	bits     [][]uint64
	lost     []int

	run    *medrankRun
	rrNext int
}

// MedRankOver runs MEDRANK over fallible sources: sequential accesses may
// fail, stall, or end early, and whole lists may die mid-query. Transient
// failures should be absorbed below the engine (faults.WithRetry); any
// non-context error reaching the engine permanently kills that list. The run
// then degrades to the exact aggregation of the surviving lists and the
// Result carries a non-nil Degraded annotation. Context cancellation or
// deadline expiry aborts the whole run with ctx.Err().
//
// When acc is non-nil it must be the same accountant the sources charge to,
// so Stats and the Degraded waste accounting see every access; nil allocates
// a fresh one (then sources built elsewhere are invisible to Stats).
func MedRankOver(ctx context.Context, sources []faults.Source, k int, policy Policy, acc *telemetry.AccessAccountant) (*Result, error) {
	m := len(sources)
	if m == 0 {
		return nil, fmt.Errorf("topk: no input sources")
	}
	n := sources[0].N()
	for i, s := range sources {
		if s.N() != n {
			return nil, fmt.Errorf("topk: source %d has domain size %d, want %d", i, s.N(), n)
		}
	}
	if k < 0 || k > n {
		return nil, fmt.Errorf("topk: k=%d out of range [0,%d]", k, n)
	}
	granular := false
	switch policy {
	case GlobalMerge, RoundRobin:
	case GlobalMergeBuckets, RoundRobinBuckets:
		granular = true
	default:
		return nil, fmt.Errorf("topk: unknown policy %d", policy)
	}
	if acc == nil {
		acc = telemetry.NewAccessAccountant(m)
	}

	f := &fallibleRun{
		sources:  sources,
		acc:      acc,
		n:        n,
		m:        m,
		k:        k,
		policy:   policy,
		granul:   granular,
		alive:    make([]bool, m),
		aliveIdx: make([]int, m),
		logs:     make([][]Entry, m),
		bits:     make([][]uint64, m),
	}
	words := (n + 63) / 64
	for i := range f.alive {
		f.alive[i] = true
		f.aliveIdx[i] = i
		f.bits[i] = make([]uint64, words)
	}
	f.rebuild()

	var derr error
	sctx, sp := telemetry.Start(ctx, "topk.medrank_fallible")
	telemetry.Do(sctx, "kernel", "medrank", func(ctx context.Context) {
		derr = f.drive(ctx)
	})
	sp.End()
	if derr != nil {
		return nil, derr
	}

	winners, medians2 := f.run.finalTopK()
	top, err := ranking.TopKList(n, k, winners)
	if err != nil {
		return nil, err
	}
	stats := statsFromReport(acc.Report())
	tMedRankRuns.Inc()
	tMedRankProbes.Add(int64(stats.Total))
	return &Result{
		TopK:     top,
		Winners:  winners,
		Medians2: medians2,
		Stats:    stats,
		Degraded: f.degraded(winners),
	}, nil
}

// seen reports whether original list orig has yielded element e.
func (f *fallibleRun) seen(orig, e int) bool {
	return f.bits[orig][e>>6]&(1<<(uint(e)&63)) != 0
}

func (f *fallibleRun) markSeen(orig, e int) {
	f.bits[orig][e>>6] |= 1 << (uint(e) & 63)
}

// rebuild constructs a fresh certification state over the currently alive
// lists and replays their logged entries into it. The replay is exact, not
// merely conservative: every unseen position of a surviving list is at least
// that list's current frontier, so certifications made under the rebuilt
// frontiers hold.
func (f *fallibleRun) rebuild() {
	m := len(f.aliveIdx)
	run := &medrankRun{
		n: f.n, m: m, k: f.k,
		needed:         (m + 1) / 2,
		frontier:       make([]int64, m),
		seen:           make([][]int64, f.n),
		exactMed:       make([]int64, f.n),
		inPend:         make([]bool, f.n),
		cleared:        make([]bool, f.n),
		kSmall:         &int64MaxHeap{},
		bucketGranular: f.granul,
		acc:            f.acc,
	}
	for e := 0; e < f.n; e++ {
		run.exactMed[e] = math.MaxInt64
	}
	for li, orig := range f.aliveIdx {
		run.frontier[li] = f.sources[orig].Peek2()
	}
	run.seenIn = func(li, e int) bool { return f.seen(f.aliveIdx[li], e) }
	f.run = run
	for _, orig := range f.aliveIdx {
		for _, e := range f.logs[orig] {
			run.replay(e)
		}
	}
	if f.rrNext >= m {
		f.rrNext = 0
	}
}

// pick returns the survivor slot to probe next, or -1 when every surviving
// list is exhausted.
func (f *fallibleRun) pick() int {
	fr := f.run.frontier
	if f.policy == GlobalMerge || f.policy == GlobalMergeBuckets {
		best, bestPos := -1, int64(math.MaxInt64)
		for i, p := range fr {
			if p < bestPos {
				best, bestPos = i, p
			}
		}
		return best
	}
	for tries := 0; tries < len(fr); tries++ {
		i := f.rrNext
		f.rrNext = (f.rrNext + 1) % len(fr)
		if fr[i] < math.MaxInt64 {
			return i
		}
	}
	return -1
}

// drive loops probe-and-certify until the top k is certified over the
// surviving lists, every survivor is exhausted, or the context ends. The
// context is checked every iteration: fallible accesses can block (latency,
// backoff), so there is no hot-loop stride to amortize.
func (f *fallibleRun) drive(ctx context.Context) error {
	for !f.run.certified() {
		if err := ctx.Err(); err != nil {
			return err
		}
		li := f.pick()
		if li < 0 {
			f.finalizePartial()
			return nil
		}
		if err := f.probe(ctx, li); err != nil {
			return err
		}
	}
	return nil
}

// probe performs one (possibly bucket-granular) sequential access on survivor
// slot li. An access error either aborts the run (context) or kills the list
// and rebuilds the certification state over the remaining survivors.
func (f *fallibleRun) probe(ctx context.Context, li int) error {
	orig := f.aliveIdx[li]
	e, ok, err := f.sources[orig].Next(ctx)
	if err != nil {
		return f.handleErr(orig, err)
	}
	if !ok {
		f.run.frontier[li] = math.MaxInt64
		return nil
	}
	f.acc.BucketIO(orig)
	f.record(li, orig, e)
	if !f.granul {
		return nil
	}
	for f.sources[orig].Peek2() == e.Pos2 {
		next, ok, err := f.sources[orig].Next(ctx)
		if err != nil {
			return f.handleErr(orig, err)
		}
		if !ok {
			break
		}
		f.record(li, orig, next)
	}
	return nil
}

// record logs one consumed entry and feeds it to the certification core.
func (f *fallibleRun) record(li, orig int, e Entry) {
	f.logs[orig] = append(f.logs[orig], e)
	f.markSeen(orig, e.Elem)
	f.run.consume(li, e, f.sources[orig].Peek2())
}

// handleErr classifies an access error: context errors abort the run, any
// other error permanently kills the list (transients are expected to be
// absorbed below the engine by faults.WithRetry).
func (f *fallibleRun) handleErr(orig int, err error) error {
	if faults.IsContextErr(err) {
		return err
	}
	f.kill(orig)
	if len(f.aliveIdx) == 0 {
		return fmt.Errorf("topk: all %d input lists died mid-query (last: %w)", f.m, err)
	}
	f.rebuild()
	return nil
}

func (f *fallibleRun) kill(orig int) {
	f.alive[orig] = false
	f.lost = append(f.lost, orig)
	tListDeaths.Inc()
	keep := f.aliveIdx[:0]
	for _, i := range f.aliveIdx {
		if f.alive[i] {
			keep = append(keep, i)
		}
	}
	f.aliveIdx = keep
}

// finalizePartial promotes every remaining element once all surviving lists
// are exhausted or truncated. Missing positions are treated as +infinity (an
// element absent from a truncated tail ranks after everything observed), so
// an element observed in at least `needed` surviving lists has an exact lower
// median; one observed in fewer has a lower median of +infinity and is
// promoted with a bottom-of-order sentinel so it can still fill out the top-k
// list deterministically (by element ID, behind every known median).
func (f *fallibleRun) finalizePartial() {
	r := f.run
	for e := 0; e < f.n; e++ {
		if r.exactMed[e] != math.MaxInt64 {
			continue
		}
		if len(r.seen[e]) >= r.needed {
			r.promote(e, kthSmallest(r.seen[e], r.needed))
		} else {
			r.promote(e, math.MaxInt64-1)
		}
	}
	r.pending = r.pending[:0]
}

// degraded builds the Degraded annotation, nil when no list died.
func (f *fallibleRun) degraded(winners []int) *Degraded {
	if len(f.lost) == 0 {
		return nil
	}
	rep := f.acc.Report()
	d := &Degraded{
		Lost:             append([]int(nil), f.lost...),
		Survivors:        len(f.aliveIdx),
		Retried:          int(rep.Retried),
		MedianIntervals2: make([][2]int64, len(winners)),
	}
	sort.Ints(d.Lost)
	for _, li := range f.lost {
		if li < len(rep.PerList) {
			d.WastedSequential += int(rep.PerList[li])
		}
		if li < len(rep.RandomPerList) {
			d.WastedRandom += int(rep.RandomPerList[li])
		}
	}

	// Per-winner certificate: collect the winner's observed positions from
	// every log (dead lists included — entries observed before a death are
	// exact fault-free positions).
	winIdx := make(map[int]int, len(winners))
	for i, w := range winners {
		winIdx[w] = i
	}
	known := make([][]int64, len(winners))
	for orig := 0; orig < f.m; orig++ {
		for _, e := range f.logs[orig] {
			if i, ok := winIdx[e.Elem]; ok {
				known[i] = append(known[i], e.Pos2)
			}
		}
	}
	j := (f.m + 1) / 2
	for i, w := range winners {
		bounded := append([]int64(nil), known[i]...)
		unknown := 0
		for orig := 0; orig < f.m; orig++ {
			if f.seen(orig, w) {
				continue
			}
			if f.alive[orig] {
				bounded = append(bounded, f.sources[orig].Peek2())
			} else {
				unknown++
			}
		}
		lo := int64(0)
		if j-unknown >= 1 {
			lo = kthSmallest(bounded, j-unknown)
		}
		hi := int64(math.MaxInt64)
		if len(known[i]) >= j {
			hi = kthSmallest(known[i], j)
		}
		d.MedianIntervals2[i] = [2]int64{lo, hi}
	}
	return d
}
