package topk

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/randrank"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// faultSeed returns the chaos seed: RANKTIES_FAULT_SEED when set (the CI
// chaos job runs the suite under a small seed matrix), 1 otherwise.
func faultSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("RANKTIES_FAULT_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("RANKTIES_FAULT_SEED=%q: %v", s, err)
	}
	return v
}

// chaosSources wraps every ranking as an accounted source, passing each
// through wrap (identity when nil).
func chaosSources(rankings []*ranking.PartialRanking, acc *telemetry.AccessAccountant,
	wrap func(i int, s faults.Source) faults.Source) []faults.Source {
	srcs := make([]faults.Source, len(rankings))
	for i, r := range rankings {
		s := NewListSource(r, acc, i)
		if wrap != nil {
			s = wrap(i, s)
		}
		srcs[i] = s
	}
	return srcs
}

func chaosEnsemble(t *testing.T, n, m int) []*ranking.PartialRanking {
	t.Helper()
	rng := rand.New(rand.NewSource(faultSeed(t)))
	return randrank.CatalogEnsemble(rng, n, m, 6, 1.0, 1.5).Rankings
}

func TestMedRankOverFaultFreeMatchesMedRank(t *testing.T) {
	in := chaosEnsemble(t, 400, 5)
	for _, pol := range []Policy{GlobalMerge, RoundRobin, GlobalMergeBuckets, RoundRobinBuckets} {
		want, err := MedRank(in, 10, pol)
		if err != nil {
			t.Fatal(err)
		}
		acc := telemetry.NewAccessAccountant(len(in))
		got, err := MedRankOver(context.Background(), chaosSources(in, acc, nil), 10, pol, acc)
		if err != nil {
			t.Fatal(err)
		}
		if got.Degraded != nil {
			t.Fatalf("policy %d: fault-free run reported Degraded", pol)
		}
		if !reflect.DeepEqual(got.Winners, want.Winners) || !reflect.DeepEqual(got.Medians2, want.Medians2) {
			t.Fatalf("policy %d: source path diverged from cursor path:\n got %v %v\nwant %v %v",
				pol, got.Winners, got.Medians2, want.Winners, want.Medians2)
		}
		if !got.TopK.Equal(want.TopK) {
			t.Fatalf("policy %d: TopK lists differ", pol)
		}
		if got.Stats.Total != want.Stats.Total {
			t.Errorf("policy %d: source path probed %d, cursor path %d",
				pol, got.Stats.Total, want.Stats.Total)
		}
	}
}

// TestMedRankOverSingleDeathDeterministic is the acceptance chaos test:
// killing any single list out of m=5 mid-query yields a Degraded result that
// is identical across runs and answer-equivalent to a fault-free MEDRANK over
// the four surviving lists.
func TestMedRankOverSingleDeathDeterministic(t *testing.T) {
	const n, m, k = 300, 5, 8
	in := chaosEnsemble(t, n, m)
	for _, pol := range []Policy{GlobalMerge, RoundRobin, GlobalMergeBuckets, RoundRobinBuckets} {
		for victim := 0; victim < m; victim++ {
			run := func() *Result {
				acc := telemetry.NewAccessAccountant(m)
				srcs := chaosSources(in, acc, func(i int, s faults.Source) faults.Source {
					if i != victim {
						return s
					}
					return faults.Inject(s, faults.Plan{DeathAfter: 1})
				})
				res, err := MedRankOver(context.Background(), srcs, k, pol, acc)
				if err != nil {
					t.Fatalf("policy %d victim %d: %v", pol, victim, err)
				}
				return res
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a.Winners, b.Winners) || !reflect.DeepEqual(a.Medians2, b.Medians2) ||
				!reflect.DeepEqual(a.Degraded, b.Degraded) || !reflect.DeepEqual(a.Stats, b.Stats) {
				t.Fatalf("policy %d victim %d: two identical chaos runs diverged", pol, victim)
			}
			if a.Degraded == nil {
				// Merge and bucket-granular scheduling may certify without
				// ever probing the victim twice (three drained first buckets
				// can already certify the top k); element-granular
				// round-robin cannot — it needs k distinct exact elements,
				// far more than one round — so there a missing death is a bug.
				if pol == RoundRobin {
					t.Fatalf("policy %d victim %d: death not reported", pol, victim)
				}
				want, err := MedRank(in, k, pol)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a.Winners, want.Winners) {
					t.Fatalf("policy %d victim %d: unprobed victim changed the answer", pol, victim)
				}
				continue
			}
			if !reflect.DeepEqual(a.Degraded.Lost, []int{victim}) || a.Degraded.Survivors != m-1 {
				t.Fatalf("policy %d victim %d: Degraded = %+v", pol, victim, a.Degraded)
			}
			if a.Degraded.WastedSequential <= 0 {
				t.Errorf("policy %d victim %d: no wasted accesses recorded for the dead list", pol, victim)
			}

			survivors := make([]*ranking.PartialRanking, 0, m-1)
			for i, r := range in {
				if i != victim {
					survivors = append(survivors, r)
				}
			}
			want, err := MedRank(survivors, k, pol)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Winners, want.Winners) || !reflect.DeepEqual(a.Medians2, want.Medians2) {
				t.Fatalf("policy %d victim %d: degraded answer differs from fault-free MEDRANK over survivors:\n got %v %v\nwant %v %v",
					pol, victim, a.Winners, a.Medians2, want.Winners, want.Medians2)
			}
			if !a.TopK.Equal(want.TopK) {
				t.Fatalf("policy %d victim %d: degraded TopK differs from survivors' TopK", pol, victim)
			}
		}
	}
}

// TestMedRankOverQualityInterval checks the Degraded certificate: every
// winner's interval must contain the median the winner would have had on the
// full fault-free instance.
func TestMedRankOverQualityInterval(t *testing.T) {
	const n, m, k = 300, 5, 8
	in := chaosEnsemble(t, n, m)
	j := (m + 1) / 2
	for victim := 0; victim < m; victim++ {
		acc := telemetry.NewAccessAccountant(m)
		srcs := chaosSources(in, acc, func(i int, s faults.Source) faults.Source {
			if i != victim {
				return s
			}
			return faults.Inject(s, faults.Plan{DeathAfter: 1})
		})
		res, err := MedRankOver(context.Background(), srcs, k, RoundRobin, acc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded == nil {
			t.Fatal("death not reported")
		}
		if len(res.Degraded.MedianIntervals2) != len(res.Winners) {
			t.Fatalf("got %d intervals for %d winners", len(res.Degraded.MedianIntervals2), len(res.Winners))
		}
		for i, w := range res.Winners {
			all := make([]int64, m)
			for l, r := range in {
				all[l] = r.Pos2(w)
			}
			truth := kthSmallest(all, j)
			iv := res.Degraded.MedianIntervals2[i]
			if truth < iv[0] || truth > iv[1] {
				t.Errorf("victim %d winner %d: fault-free median %d outside certified [%d, %d]",
					victim, w, truth, iv[0], iv[1])
			}
		}
	}
}

func TestMedRankOverTransientsAbsorbed(t *testing.T) {
	in := chaosEnsemble(t, 300, 5)
	want, err := MedRank(in, 10, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	seed := faultSeed(t)
	acc := telemetry.NewAccessAccountant(len(in))
	sl := &faults.FakeSleeper{}
	srcs := chaosSources(in, acc, func(i int, s faults.Source) faults.Source {
		s = faults.Inject(s, faults.Plan{Seed: seed + int64(i), TransientRate: 0.05})
		return faults.WithRetry(s, faults.RetryPolicy{
			MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: time.Second,
			Multiplier: 2, JitterSeed: seed, Sleeper: sl,
		}, acc, i)
	})
	got, err := MedRankOver(context.Background(), srcs, 10, RoundRobin, acc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded != nil {
		t.Fatal("retry-absorbed transients must not degrade the answer")
	}
	if !reflect.DeepEqual(got.Winners, want.Winners) || !reflect.DeepEqual(got.Medians2, want.Medians2) {
		t.Fatalf("answer under absorbed transients diverged:\n got %v\nwant %v", got.Winners, want.Winners)
	}
	if got.Stats.Failed == 0 || got.Stats.Retried == 0 {
		t.Errorf("expected injected failures in stats, got failed=%d retried=%d",
			got.Stats.Failed, got.Stats.Retried)
	}
}

func TestMedRankOverRetryExhaustionKillsList(t *testing.T) {
	in := chaosEnsemble(t, 200, 5)
	const victim = 2
	acc := telemetry.NewAccessAccountant(len(in))
	srcs := chaosSources(in, acc, func(i int, s faults.Source) faults.Source {
		if i != victim {
			return s
		}
		s = faults.Inject(s, faults.Plan{Seed: 1, TransientRate: 1})
		return faults.WithRetry(s, faults.RetryPolicy{
			MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Second,
			Multiplier: 2, JitterSeed: 1, Sleeper: &faults.FakeSleeper{},
		}, acc, i)
	})
	res, err := MedRankOver(context.Background(), srcs, 5, RoundRobin, acc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded == nil || !reflect.DeepEqual(res.Degraded.Lost, []int{victim}) {
		t.Fatalf("Degraded = %+v, want lost=[%d]", res.Degraded, victim)
	}
	if res.Stats.Failed < 3 {
		t.Errorf("Stats.Failed = %d, want >= MaxAttempts", res.Stats.Failed)
	}
}

func TestMedRankOverTruncatedListNoDeath(t *testing.T) {
	in := chaosEnsemble(t, 200, 5)
	run := func() *Result {
		acc := telemetry.NewAccessAccountant(len(in))
		srcs := chaosSources(in, acc, func(i int, s faults.Source) faults.Source {
			if i != 1 {
				return s
			}
			return faults.Inject(s, faults.Plan{TruncateAt: 30})
		})
		res, err := MedRankOver(context.Background(), srcs, 5, RoundRobin, acc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Degraded != nil {
		t.Fatal("a truncated list is not a dead list")
	}
	if len(a.Winners) != 5 {
		t.Fatalf("got %d winners, want 5", len(a.Winners))
	}
	if !reflect.DeepEqual(a.Winners, b.Winners) || !reflect.DeepEqual(a.Medians2, b.Medians2) {
		t.Fatal("truncated runs not deterministic")
	}
}

func TestMedRankOverAllListsDead(t *testing.T) {
	in := chaosEnsemble(t, 100, 3)
	acc := telemetry.NewAccessAccountant(len(in))
	srcs := chaosSources(in, acc, func(i int, s faults.Source) faults.Source {
		return faults.Inject(s, faults.Plan{DeathAfter: 5})
	})
	_, err := MedRankOver(context.Background(), srcs, 5, RoundRobin, acc)
	if err == nil {
		t.Fatal("all lists dead: expected an error")
	}
	if !errors.Is(err, faults.ErrSourceDead) {
		t.Errorf("error %v does not wrap ErrSourceDead", err)
	}
}

// TestMedRankOverDeadline checks that a deadline aborts an in-flight run
// (injected latency makes every access slow) and leaks no goroutines.
func TestMedRankOverDeadline(t *testing.T) {
	in := chaosEnsemble(t, 2000, 4)
	before := runtime.NumGoroutine()

	acc := telemetry.NewAccessAccountant(len(in))
	srcs := chaosSources(in, acc, func(i int, s faults.Source) faults.Source {
		return faults.Inject(s, faults.Plan{Latency: 2 * time.Millisecond})
	})
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := MedRankOver(ctx, srcs, 50, RoundRobin, acc)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline abort took %v", elapsed)
	}

	deadlineFree := false
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before {
			deadlineFree = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !deadlineFree {
		t.Errorf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
	}
}

func TestMedRankContextCancelled(t *testing.T) {
	in := chaosEnsemble(t, 500, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MedRankContext(ctx, in, 10, GlobalMerge); !errors.Is(err, context.Canceled) {
		t.Fatalf("MedRankContext under canceled ctx: %v", err)
	}
	if _, err := ThresholdTopKContext(ctx, in, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("ThresholdTopKContext under canceled ctx: %v", err)
	}
}

func TestThresholdTopKOverFaultFreeMatchesTA(t *testing.T) {
	in := chaosEnsemble(t, 400, 5)
	want, err := ThresholdTopK(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	acc := telemetry.NewAccessAccountant(len(in))
	got, err := ThresholdTopKOver(context.Background(), chaosSources(in, acc, nil), 10, acc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded != nil {
		t.Fatal("fault-free TA run reported Degraded")
	}
	if !reflect.DeepEqual(got.Winners, want.Winners) || !reflect.DeepEqual(got.Medians2, want.Medians2) {
		t.Fatalf("TA source path diverged:\n got %v %v\nwant %v %v",
			got.Winners, got.Medians2, want.Winners, want.Medians2)
	}
	if got.Stats.Random != want.Stats.Random {
		t.Errorf("random accesses: source path %d, ranking path %d", got.Stats.Random, want.Stats.Random)
	}
}

func TestThresholdTopKOverDeathDeterministic(t *testing.T) {
	const n, m, k = 300, 5, 8
	in := chaosEnsemble(t, n, m)
	j := (m + 1) / 2
	for victim := 0; victim < m; victim++ {
		run := func() *Result {
			acc := telemetry.NewAccessAccountant(m)
			srcs := chaosSources(in, acc, func(i int, s faults.Source) faults.Source {
				if i != victim {
					return s
				}
				return faults.Inject(s, faults.Plan{DeathAfter: 25})
			})
			res, err := ThresholdTopKOver(context.Background(), srcs, k, acc)
			if err != nil {
				t.Fatalf("victim %d: %v", victim, err)
			}
			return res
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a.Winners, b.Winners) || !reflect.DeepEqual(a.Degraded, b.Degraded) {
			t.Fatalf("victim %d: chaos TA runs diverged", victim)
		}
		if a.Degraded == nil || !reflect.DeepEqual(a.Degraded.Lost, []int{victim}) || a.Degraded.Survivors != m-1 {
			t.Fatalf("victim %d: Degraded = %+v", victim, a.Degraded)
		}

		survivors := make([]*ranking.PartialRanking, 0, m-1)
		for i, r := range in {
			if i != victim {
				survivors = append(survivors, r)
			}
		}
		want, err := ThresholdTopK(survivors, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Winners, want.Winners) || !reflect.DeepEqual(a.Medians2, want.Medians2) {
			t.Fatalf("victim %d: degraded TA answer differs from fault-free TA over survivors:\n got %v %v\nwant %v %v",
				victim, a.Winners, a.Medians2, want.Winners, want.Medians2)
		}

		for i, w := range a.Winners {
			all := make([]int64, m)
			for l, r := range in {
				all[l] = r.Pos2(w)
			}
			truth := kthSmallest(all, j)
			iv := a.Degraded.MedianIntervals2[i]
			if truth < iv[0] || truth > iv[1] {
				t.Errorf("victim %d winner %d: fault-free median %d outside certified [%d, %d]",
					victim, w, truth, iv[0], iv[1])
			}
		}
	}
}

func TestThresholdTopKOverTruncatedResolvesByRandomAccess(t *testing.T) {
	in := chaosEnsemble(t, 200, 5)
	// Truncating a scan hides elements from discovery but not from random
	// access, so TA's degraded-free answer must equal the fault-free one.
	want, err := ThresholdTopK(in, 5)
	if err != nil {
		t.Fatal(err)
	}
	acc := telemetry.NewAccessAccountant(len(in))
	srcs := chaosSources(in, acc, func(i int, s faults.Source) faults.Source {
		return faults.Inject(s, faults.Plan{TruncateAt: 10})
	})
	got, err := ThresholdTopKOver(context.Background(), srcs, 5, acc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded != nil {
		t.Fatal("truncation reported as death")
	}
	if !reflect.DeepEqual(got.Winners, want.Winners) || !reflect.DeepEqual(got.Medians2, want.Medians2) {
		t.Fatalf("truncated TA diverged:\n got %v %v\nwant %v %v",
			got.Winners, got.Medians2, want.Winners, want.Medians2)
	}
}

func TestMedRankOverValidation(t *testing.T) {
	in := chaosEnsemble(t, 50, 3)
	acc := telemetry.NewAccessAccountant(3)
	if _, err := MedRankOver(context.Background(), nil, 1, RoundRobin, nil); err == nil {
		t.Error("no sources accepted")
	}
	if _, err := MedRankOver(context.Background(), chaosSources(in, acc, nil), 51, RoundRobin, acc); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := MedRankOver(context.Background(), chaosSources(in, acc, nil), 1, Policy(99), acc); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := ThresholdTopKOver(context.Background(), nil, 1, nil); err == nil {
		t.Error("TA: no sources accepted")
	}
	// MedRankOver with k=0 certifies immediately.
	res, err := MedRankOver(context.Background(), chaosSources(in, acc, nil), 0, GlobalMerge, acc)
	if err != nil || len(res.Winners) != 0 {
		t.Errorf("k=0: res=%v err=%v", res, err)
	}
}
