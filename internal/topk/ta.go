package topk

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// Gated telemetry instruments of the θ-approximate variant.
var (
	tTAApproxRuns  = telemetry.GetCounter("topk.ta_approx.runs")
	tTAApproxEarly = telemetry.GetCounter("topk.ta_approx.early_stops")
)

// ApproxCertificate is the quality certificate of a θ-approximate TA run, in
// the sense of Fagin–Lotem–Naor's approximation variant of the Threshold
// Algorithm: for every reported winner y and every element z NOT reported,
// the doubled median of y is at most (1+θ) times the doubled median of z.
// The certificate carries the two quantities the guarantee is derived from at
// the moment the run stopped, so clients (and tests) can re-verify it.
type ApproxCertificate struct {
	// Theta is the requested slack; the run is a (1+θ)-approximation.
	Theta float64 `json:"theta"`
	// Threshold2 is τ at stop: the needed-th smallest frontier position, a
	// lower bound on the doubled median of any element the run never
	// resolved. Zero when the run resolved every element (the threshold never
	// gated the answer and the result is exact).
	Threshold2 int64 `json:"threshold2"`
	// KthMedian2 is the doubled median of the worst reported winner.
	KthMedian2 int64 `json:"kth_median2"`
	// Ratio is the certified approximation factor actually achieved,
	// max(1, KthMedian2/Threshold2) ≤ 1+θ. Exact answers report 1.
	Ratio float64 `json:"ratio"`
	// EarlyStop reports whether the θ-relaxed test fired before the exact
	// threshold test would have: false means the answer is exact (the
	// approximation budget was never spent).
	EarlyStop bool `json:"early_stop"`
}

// ThresholdTopK is a TA-style baseline in the spirit of the Threshold
// Algorithm of Fagin, Lotem, and Naor, adapted to median-rank aggregation
// over partial rankings: lists are read round-robin under sorted access, and
// every newly discovered element is immediately resolved by random access to
// its position in every other list, so its exact lower median is known the
// moment it is first seen. The run stops once k resolved elements have
// medians strictly below the threshold — the needed-th smallest frontier
// position, a lower bound on the median of any still-unseen element.
//
// The answer is identical to MedRank's. The cost profile is the interesting
// part: TA trades MEDRANK's extra sorted accesses for m-1 random accesses
// per distinct element it touches, which is exactly the trade-off the FLN
// middleware cost model (AccessStats.MiddlewareCost) prices. MEDRANK is the
// paper's instance-optimal choice when random accesses are impossible or
// expensive; ThresholdTopK exists so experiments can report both regimes
// through the same unified access accounting.
func ThresholdTopK(rankings []*ranking.PartialRanking, k int) (*Result, error) {
	return ThresholdTopKContext(context.Background(), rankings, k)
}

// ThresholdTopKContext is ThresholdTopK under a caller context: telemetry
// labels attach to it and cancellation or deadline expiry aborts the run
// between accesses with ctx.Err().
func ThresholdTopKContext(ctx context.Context, rankings []*ranking.PartialRanking, k int) (*Result, error) {
	res, _, err := thresholdTopK(ctx, rankings, k, 0)
	if err != nil {
		return nil, err
	}
	tTARuns.Inc()
	tTAProbes.Add(int64(res.Stats.Total))
	tTARandom.Add(int64(res.Stats.Random))
	return res, nil
}

// ThresholdTopKApprox is the θ-approximation variant of ThresholdTopKContext
// (FLN's approximate TA): the run may stop as soon as the k-th best resolved
// median is within a (1+θ) factor of the threshold, instead of strictly
// below it. The Result carries an ApproxCertificate proving the (1+θ) bound;
// with θ = 0 the relaxed test never fires and the run — probe schedule,
// accesses, and answer — is bit-identical to the exact engine.
//
// The point of the variant is graceful degradation: under deadline pressure
// a (1+θ)-certified answer now beats an exact answer that never arrives.
func ThresholdTopKApprox(ctx context.Context, rankings []*ranking.PartialRanking, k int, theta float64) (*Result, error) {
	if theta < 0 || math.IsNaN(theta) || math.IsInf(theta, 0) {
		return nil, fmt.Errorf("topk: theta=%v out of range [0, +inf)", theta)
	}
	res, cert, err := thresholdTopK(ctx, rankings, k, theta)
	if err != nil {
		return nil, err
	}
	res.Approx = &cert
	tTAApproxRuns.Inc()
	if cert.EarlyStop {
		tTAApproxEarly.Inc()
	}
	return res, nil
}

// thresholdTopK is the shared TA loop. theta == 0 runs the exact strict
// stopping rule and nothing else; theta > 0 additionally stops early once the
// k-th best resolved median is ≤ (1+θ)·τ. The exact test is evaluated first
// each iteration, so a θ = 0 run takes exactly the exact engine's branch
// sequence.
func thresholdTopK(ctx context.Context, rankings []*ranking.PartialRanking, k int, theta float64) (*Result, ApproxCertificate, error) {
	cert := ApproxCertificate{Theta: theta, Ratio: 1}
	if len(rankings) == 0 {
		return nil, cert, fmt.Errorf("topk: no input rankings")
	}
	if err := ranking.CheckSameDomain(rankings...); err != nil {
		return nil, cert, err
	}
	n := rankings[0].N()
	if k < 0 || k > n {
		return nil, cert, fmt.Errorf("topk: k=%d out of range [0,%d]", k, n)
	}
	m := len(rankings)
	needed := (m + 1) / 2

	acc := telemetry.NewAccessAccountant(m)
	cursors := make([]*Cursor, m)
	frontier := make([]int64, m)
	for i, r := range rankings {
		cursors[i] = newCursorAt(r, acc, i)
		frontier[i] = cursors[i].Peek2()
	}

	med := make([]int64, n)
	for e := range med {
		med[e] = math.MaxInt64
	}
	positions := make([]int64, m)
	kSmall := &int64MaxHeap{}
	resolved := 0

	var derr error
	sctx, sp := telemetry.Start(ctx, "topk.ta")
	if theta > 0 {
		sp.SetAttr("theta_milli", int64(theta*1000))
	}
	telemetry.Do(sctx, "kernel", "ta", func(ctx context.Context) {
		if k == 0 {
			return
		}
		next := 0
		for it := 0; resolved < n; it++ {
			if it%ctxCheckStride == 0 {
				if derr = ctx.Err(); derr != nil {
					return
				}
			}
			if resolved >= k {
				tau := kthSmallest(frontier, needed)
				kth := kSmall.Peek()
				// Threshold test: with k exact medians strictly below the best
				// median any unseen element could achieve, the answer is final
				// (strictness sidesteps ties, which break by element ID).
				if kth < tau {
					cert.Threshold2, cert.KthMedian2 = tau, kth
					return
				}
				// θ-relaxed test: the k-th best resolved median is within a
				// (1+θ) factor of τ, so any element the run has not resolved
				// can beat a reported winner by at most that factor.
				if theta > 0 && tau < math.MaxInt64 &&
					float64(kth) <= (1+theta)*float64(tau) {
					cert.Threshold2, cert.KthMedian2 = tau, kth
					cert.EarlyStop = true
					if tau > 0 && kth > tau {
						cert.Ratio = float64(kth) / float64(tau)
					}
					return
				}
			}
			// Round-robin sorted access over the non-exhausted lists.
			i := -1
			for tries := 0; tries < m; tries++ {
				c := next
				next = (next + 1) % m
				if frontier[c] < math.MaxInt64 {
					i = c
					break
				}
			}
			if i < 0 {
				return // all lists exhausted: every element resolved
			}
			e, ok := cursors[i].Next()
			if !ok {
				frontier[i] = math.MaxInt64
				continue
			}
			frontier[i] = cursors[i].Peek2()
			if med[e.Elem] != math.MaxInt64 {
				continue // already resolved via random access
			}
			// Random-access the element's position in every other list.
			positions[i] = e.Pos2
			for j, r := range rankings {
				if j == i {
					continue
				}
				acc.Random(j)
				positions[j] = r.Pos2(e.Elem)
			}
			med[e.Elem] = kthSmallest(positions, needed)
			resolved++
			heap.Push(kSmall, med[e.Elem])
			if kSmall.Len() > k {
				heap.Pop(kSmall)
			}
		}
	})
	sp.End()
	if derr != nil {
		return nil, cert, derr
	}

	winners, medians2 := selectTopK(med, k)
	top, err := ranking.TopKList(n, k, winners)
	if err != nil {
		return nil, cert, err
	}
	if cert.KthMedian2 == 0 && len(medians2) > 0 {
		// The run resolved everything (or stopped by exhaustion): the
		// certificate is exact, anchored on the reported worst winner.
		cert.KthMedian2 = medians2[len(medians2)-1]
	}
	stats := statsFromReport(acc.Report())
	return &Result{
		TopK:     top,
		Winners:  winners,
		Medians2: medians2,
		Stats:    stats,
	}, cert, nil
}

// selectTopK ranks resolved elements by (median, element ID) and returns the
// first k with their doubled medians.
func selectTopK(med []int64, k int) (winners []int, medians2 []int64) {
	type cand struct {
		e    int
		med2 int64
	}
	cands := make([]cand, 0, len(med))
	for e, v := range med {
		if v < math.MaxInt64 {
			cands = append(cands, cand{e, v})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].med2 != cands[b].med2 {
			return cands[a].med2 < cands[b].med2
		}
		return cands[a].e < cands[b].e
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	winners = make([]int, 0, len(cands))
	for _, c := range cands {
		winners = append(winners, c.e)
		medians2 = append(medians2, c.med2)
	}
	return winners, medians2
}
