package topk

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// ThresholdTopK is a TA-style baseline in the spirit of the Threshold
// Algorithm of Fagin, Lotem, and Naor, adapted to median-rank aggregation
// over partial rankings: lists are read round-robin under sorted access, and
// every newly discovered element is immediately resolved by random access to
// its position in every other list, so its exact lower median is known the
// moment it is first seen. The run stops once k resolved elements have
// medians strictly below the threshold — the needed-th smallest frontier
// position, a lower bound on the median of any still-unseen element.
//
// The answer is identical to MedRank's. The cost profile is the interesting
// part: TA trades MEDRANK's extra sorted accesses for m-1 random accesses
// per distinct element it touches, which is exactly the trade-off the FLN
// middleware cost model (AccessStats.MiddlewareCost) prices. MEDRANK is the
// paper's instance-optimal choice when random accesses are impossible or
// expensive; ThresholdTopK exists so experiments can report both regimes
// through the same unified access accounting.
func ThresholdTopK(rankings []*ranking.PartialRanking, k int) (*Result, error) {
	return ThresholdTopKContext(context.Background(), rankings, k)
}

// ThresholdTopKContext is ThresholdTopK under a caller context: telemetry
// labels attach to it and cancellation or deadline expiry aborts the run
// between accesses with ctx.Err().
func ThresholdTopKContext(ctx context.Context, rankings []*ranking.PartialRanking, k int) (*Result, error) {
	if len(rankings) == 0 {
		return nil, fmt.Errorf("topk: no input rankings")
	}
	if err := ranking.CheckSameDomain(rankings...); err != nil {
		return nil, err
	}
	n := rankings[0].N()
	if k < 0 || k > n {
		return nil, fmt.Errorf("topk: k=%d out of range [0,%d]", k, n)
	}
	m := len(rankings)
	needed := (m + 1) / 2

	acc := telemetry.NewAccessAccountant(m)
	cursors := make([]*Cursor, m)
	frontier := make([]int64, m)
	for i, r := range rankings {
		cursors[i] = newCursorAt(r, acc, i)
		frontier[i] = cursors[i].Peek2()
	}

	med := make([]int64, n)
	for e := range med {
		med[e] = math.MaxInt64
	}
	positions := make([]int64, m)
	kSmall := &int64MaxHeap{}
	resolved := 0

	var derr error
	sctx, sp := telemetry.Start(ctx, "topk.ta")
	telemetry.Do(sctx, "kernel", "ta", func(ctx context.Context) {
		if k == 0 {
			return
		}
		next := 0
		for it := 0; resolved < n; it++ {
			if it%ctxCheckStride == 0 {
				if derr = ctx.Err(); derr != nil {
					return
				}
			}
			// Threshold test: with k exact medians strictly below the best
			// median any unseen element could achieve, the answer is final
			// (strictness sidesteps ties, which break by element ID).
			if resolved >= k && kSmall.Peek() < kthSmallest(frontier, needed) {
				return
			}
			// Round-robin sorted access over the non-exhausted lists.
			i := -1
			for tries := 0; tries < m; tries++ {
				c := next
				next = (next + 1) % m
				if frontier[c] < math.MaxInt64 {
					i = c
					break
				}
			}
			if i < 0 {
				return // all lists exhausted: every element resolved
			}
			e, ok := cursors[i].Next()
			if !ok {
				frontier[i] = math.MaxInt64
				continue
			}
			frontier[i] = cursors[i].Peek2()
			if med[e.Elem] != math.MaxInt64 {
				continue // already resolved via random access
			}
			// Random-access the element's position in every other list.
			positions[i] = e.Pos2
			for j, r := range rankings {
				if j == i {
					continue
				}
				acc.Random(j)
				positions[j] = r.Pos2(e.Elem)
			}
			med[e.Elem] = kthSmallest(positions, needed)
			resolved++
			heap.Push(kSmall, med[e.Elem])
			if kSmall.Len() > k {
				heap.Pop(kSmall)
			}
		}
	})
	sp.End()
	if derr != nil {
		return nil, derr
	}

	winners, medians2 := selectTopK(med, k)
	top, err := ranking.TopKList(n, k, winners)
	if err != nil {
		return nil, err
	}
	stats := statsFromReport(acc.Report())
	tTARuns.Inc()
	tTAProbes.Add(int64(stats.Total))
	tTARandom.Add(int64(stats.Random))
	return &Result{
		TopK:     top,
		Winners:  winners,
		Medians2: medians2,
		Stats:    stats,
	}, nil
}

// selectTopK ranks resolved elements by (median, element ID) and returns the
// first k with their doubled medians.
func selectTopK(med []int64, k int) (winners []int, medians2 []int64) {
	type cand struct {
		e    int
		med2 int64
	}
	cands := make([]cand, 0, len(med))
	for e, v := range med {
		if v < math.MaxInt64 {
			cands = append(cands, cand{e, v})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].med2 != cands[b].med2 {
			return cands[a].med2 < cands[b].med2
		}
		return cands[a].e < cands[b].e
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	winners = make([]int, 0, len(cands))
	for _, c := range cands {
		winners = append(winners, c.e)
		medians2 = append(medians2, c.med2)
	}
	return winners, medians2
}
