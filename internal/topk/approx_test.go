package topk

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

// exactMedians2 computes every element's doubled lower-median position
// offline, independently of any engine, as the ground truth the certificate
// is checked against.
func exactMedians2(t *testing.T, rankings []*ranking.PartialRanking) []int64 {
	t.Helper()
	m := len(rankings)
	needed := (m + 1) / 2
	n := rankings[0].N()
	med := make([]int64, n)
	pos := make([]int64, m)
	for e := 0; e < n; e++ {
		for i, r := range rankings {
			pos[i] = r.Pos2(e)
		}
		med[e] = kthSmallest(pos, needed)
	}
	return med
}

// approxSeedMatrix is the shared seed × shape matrix of the equivalence and
// certificate tests; run under -race by the CI chaos/robustness suites.
func approxSeedMatrix() []struct {
	seed         int64
	n, m, k      int
	mallowsTheta float64
	coarsen      int
} {
	return []struct {
		seed         int64
		n, m, k      int
		mallowsTheta float64
		coarsen      int
	}{
		{seed: 1, n: 24, m: 5, k: 3, mallowsTheta: 0.9, coarsen: 0},
		{seed: 2, n: 40, m: 7, k: 5, mallowsTheta: 0.4, coarsen: 0},
		{seed: 7, n: 40, m: 7, k: 1, mallowsTheta: 0.1, coarsen: 0},
		{seed: 42, n: 64, m: 9, k: 8, mallowsTheta: 0.2, coarsen: 6},
		{seed: 2004, n: 32, m: 4, k: 6, mallowsTheta: 0.05, coarsen: 4},
		{seed: 77, n: 50, m: 11, k: 10, mallowsTheta: 0.6, coarsen: 0},
	}
}

func approxEnsemble(seed int64, n, m int, mallowsTheta float64, coarsen int) []*ranking.PartialRanking {
	rng := rand.New(rand.NewSource(seed))
	if coarsen > 0 {
		rs, _ := randrank.MallowsPartialEnsemble(rng, n, m, mallowsTheta, coarsen)
		return rs
	}
	rs, _ := randrank.MallowsEnsemble(rng, n, m, mallowsTheta)
	return rs
}

// TestApproxThetaZeroBitIdentical is the serial≡degraded equivalence
// satellite: with θ=0 the relaxed stop test can never fire, so the approx
// engine must return the same answer AND the same access schedule as the
// exact engine — winners, medians, top-k list, and every access counter.
func TestApproxThetaZeroBitIdentical(t *testing.T) {
	ctx := context.Background()
	for _, tc := range approxSeedMatrix() {
		rs := approxEnsemble(tc.seed, tc.n, tc.m, tc.mallowsTheta, tc.coarsen)
		exact, err := ThresholdTopKContext(ctx, rs, tc.k)
		if err != nil {
			t.Fatalf("seed %d: exact: %v", tc.seed, err)
		}
		approx, err := ThresholdTopKApprox(ctx, rs, tc.k, 0)
		if err != nil {
			t.Fatalf("seed %d: approx: %v", tc.seed, err)
		}
		if approx.Approx == nil {
			t.Fatalf("seed %d: approx run missing certificate", tc.seed)
		}
		if approx.Approx.EarlyStop {
			t.Errorf("seed %d: theta=0 run reported an early stop", tc.seed)
		}
		if approx.Approx.Ratio != 1 {
			t.Errorf("seed %d: theta=0 ratio = %v, want 1", tc.seed, approx.Approx.Ratio)
		}
		if !reflect.DeepEqual(exact.Winners, approx.Winners) {
			t.Errorf("seed %d: winners differ: exact %v approx %v", tc.seed, exact.Winners, approx.Winners)
		}
		if !reflect.DeepEqual(exact.Medians2, approx.Medians2) {
			t.Errorf("seed %d: medians differ: exact %v approx %v", tc.seed, exact.Medians2, approx.Medians2)
		}
		if !reflect.DeepEqual(exact.Stats, approx.Stats) {
			t.Errorf("seed %d: access stats differ:\nexact  %+v\napprox %+v", tc.seed, exact.Stats, approx.Stats)
		}
		if !exact.TopK.Equal(approx.TopK) {
			t.Errorf("seed %d: top-k lists differ", tc.seed)
		}
	}
}

// TestApproxCertificateHolds checks the FLN (1+θ) guarantee against offline
// ground truth: every reported winner's doubled median is within (1+θ) of
// every omitted element's, the reported Ratio is consistent and within
// budget, and τ really lower-bounds the unreported elements.
func TestApproxCertificateHolds(t *testing.T) {
	ctx := context.Background()
	sawEarlyStop := false
	for _, tc := range approxSeedMatrix() {
		rs := approxEnsemble(tc.seed, tc.n, tc.m, tc.mallowsTheta, tc.coarsen)
		truth := exactMedians2(t, rs)
		for _, theta := range []float64{0.1, 0.25, 0.5, 1.0} {
			res, err := ThresholdTopKApprox(ctx, rs, tc.k, theta)
			if err != nil {
				t.Fatalf("seed %d theta %v: %v", tc.seed, theta, err)
			}
			cert := res.Approx
			if cert == nil || cert.Theta != theta {
				t.Fatalf("seed %d theta %v: bad certificate %+v", tc.seed, theta, cert)
			}
			if cert.EarlyStop {
				sawEarlyStop = true
			}
			if cert.Ratio > 1+theta+1e-9 {
				t.Errorf("seed %d theta %v: ratio %v exceeds budget", tc.seed, theta, cert.Ratio)
			}
			reported := make(map[int]bool, len(res.Winners))
			var worst int64
			for i, w := range res.Winners {
				reported[w] = true
				if res.Medians2[i] != truth[w] {
					t.Errorf("seed %d theta %v: winner %d median %d != truth %d",
						tc.seed, theta, w, res.Medians2[i], truth[w])
				}
				if res.Medians2[i] > worst {
					worst = res.Medians2[i]
				}
			}
			if len(res.Winners) != tc.k {
				t.Fatalf("seed %d theta %v: got %d winners, want %d", tc.seed, theta, len(res.Winners), tc.k)
			}
			if cert.KthMedian2 != worst {
				t.Errorf("seed %d theta %v: KthMedian2 %d != worst winner %d",
					tc.seed, theta, cert.KthMedian2, worst)
			}
			for z := 0; z < rs[0].N(); z++ {
				if reported[z] {
					continue
				}
				// The (1+θ) guarantee: no omitted element beats a reported
				// winner by more than the certified factor.
				if float64(worst) > (1+theta)*float64(truth[z])+1e-9 {
					t.Errorf("seed %d theta %v: omitted %d med %d beats worst winner %d beyond (1+θ)",
						tc.seed, theta, z, truth[z], worst)
				}
				if cert.EarlyStop && cert.Threshold2 > 0 && truth[z] < cert.Threshold2 {
					// τ lower-bounds unseen elements only; a resolved-but-
					// omitted element may sit below τ, but then it lost on
					// the (median, ID) order, which the guarantee above
					// already covers. Nothing more to assert here.
					_ = z
				}
			}
		}
	}
	if !sawEarlyStop {
		t.Error("no seed in the matrix triggered a θ early stop; matrix is not exercising the relaxed test")
	}
}

// TestApproxEarlyStopSavesAccesses pins the point of the variant: when the
// relaxed test fires, the run performs no more accesses than the exact run.
func TestApproxEarlyStopSavesAccesses(t *testing.T) {
	ctx := context.Background()
	saved := false
	for _, tc := range approxSeedMatrix() {
		rs := approxEnsemble(tc.seed, tc.n, tc.m, tc.mallowsTheta, tc.coarsen)
		exact, err := ThresholdTopKContext(ctx, rs, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ThresholdTopKApprox(ctx, rs, tc.k, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Total > exact.Stats.Total {
			t.Errorf("seed %d: approx total accesses %d > exact %d", tc.seed, res.Stats.Total, exact.Stats.Total)
		}
		if res.Approx.EarlyStop && res.Stats.Total < exact.Stats.Total {
			saved = true
		}
	}
	if !saved {
		t.Error("theta=1.0 never saved accesses over exact TA across the matrix")
	}
}

func TestApproxRejectsBadTheta(t *testing.T) {
	rs := approxEnsemble(1, 10, 3, 0.5, 0)
	for _, theta := range []float64{-0.1, math.NaN(), math.Inf(1)} {
		if _, err := ThresholdTopKApprox(context.Background(), rs, 2, theta); err == nil {
			t.Errorf("theta=%v: want error", theta)
		}
	}
}

func TestApproxHonorsContextCancel(t *testing.T) {
	rs := approxEnsemble(3, 2000, 5, 0.1, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ThresholdTopKApprox(ctx, rs, 10, 0.5); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
