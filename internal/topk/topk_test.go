package topk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/randrank"
	"repro/internal/ranking"
)

var policies = []struct {
	name string
	p    Policy
}{
	{"GlobalMerge", GlobalMerge},
	{"RoundRobin", RoundRobin},
}

func TestCursorYieldsPositionOrder(t *testing.T) {
	pr := ranking.MustFromBuckets(5, [][]int{{2, 4}, {0}, {1, 3}})
	c := NewCursor(pr)
	var elems []int
	var prev int64 = -1
	for {
		e, ok := c.Next()
		if !ok {
			break
		}
		if e.Pos2 < prev {
			t.Fatalf("positions decreased: %d after %d", e.Pos2, prev)
		}
		prev = e.Pos2
		elems = append(elems, e.Elem)
	}
	want := []int{2, 4, 0, 1, 3}
	if len(elems) != len(want) {
		t.Fatalf("cursor yielded %v", elems)
	}
	for i := range want {
		if elems[i] != want[i] {
			t.Fatalf("cursor order %v, want %v", elems, want)
		}
	}
	if c.Probes() != 5 {
		t.Errorf("probes = %d, want 5", c.Probes())
	}
	if c.Peek2() != int64(math.MaxInt64) {
		t.Errorf("exhausted Peek2 = %d, want MaxInt64", c.Peek2())
	}
}

func TestCursorSeenIn(t *testing.T) {
	pr := ranking.MustFromBuckets(4, [][]int{{1, 3}, {0, 2}})
	c := NewCursor(pr)
	if c.seenIn(1) {
		t.Error("element seen before any probe")
	}
	c.Next() // probes element 1
	if !c.seenIn(1) || c.seenIn(3) || c.seenIn(0) {
		t.Error("seenIn wrong after first probe")
	}
	c.Next() // probes element 3
	c.Next() // probes element 0
	if !c.seenIn(3) || !c.seenIn(0) || c.seenIn(2) {
		t.Error("seenIn wrong after three probes")
	}
}

// MEDRANK must return exactly the offline median top-k, for both policies,
// across random partial-ranking ensembles.
func TestMedRankMatchesOfflineRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		m := 1 + rng.Intn(6)
		k := rng.Intn(n + 1)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 4))
		}
		want, err := aggregate.MedianTopK(in, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range policies {
			got, err := MedRank(in, k, pol.p)
			if err != nil {
				t.Fatal(err)
			}
			if !got.TopK.Equal(want) {
				t.Fatalf("%s mismatch (n=%d m=%d k=%d):\ngot  %v\nwant %v\ninputs %v",
					pol.name, n, m, k, got.TopK, want, in)
			}
			// Reported medians must match the offline lower medians.
			f4, err := aggregate.MedianScores2(in, aggregate.LowerMedian)
			if err != nil {
				t.Fatal(err)
			}
			for wi, w := range got.Winners {
				if got.Medians2[wi]*2 != f4[w] {
					t.Fatalf("%s median of %d = %d/2, offline %d/4",
						pol.name, w, got.Medians2[wi], f4[w])
				}
			}
		}
	}
}

// Exhaustive cross-check on all pairs of bucket orders over small domains.
func TestMedRankMatchesOfflineExhaustive(t *testing.T) {
	for n := 1; n <= 3; n++ {
		var all []*ranking.PartialRanking
		ranking.ForEachPartialRanking(n, func(pr *ranking.PartialRanking) bool {
			all = append(all, pr)
			return true
		})
		for _, a := range all {
			for _, b := range all {
				in := []*ranking.PartialRanking{a, b}
				for k := 0; k <= n; k++ {
					want, err := aggregate.MedianTopK(in, k)
					if err != nil {
						t.Fatal(err)
					}
					for _, pol := range policies {
						got, err := MedRank(in, k, pol.p)
						if err != nil {
							t.Fatal(err)
						}
						if !got.TopK.Equal(want) {
							t.Fatalf("%s mismatch k=%d:\na=%v b=%v\ngot %v want %v",
								pol.name, k, a, b, got.TopK, want)
						}
					}
				}
			}
		}
	}
}

// Probes never exceed a full scan, and the certificate lower bound never
// exceeds the probes of either policy.
func TestMedRankAccessBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(30)
		m := 1 + rng.Intn(7)
		k := 1 + rng.Intn(n)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 4))
		}
		full := FullScanCost(in)
		for _, pol := range policies {
			res, err := MedRank(in, k, pol.p)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Total > full.Total {
				t.Fatalf("%s read %d > full scan %d", pol.name, res.Stats.Total, full.Total)
			}
			lb := CertificateLowerBound(in, res.Winners)
			if lb > res.Stats.Total {
				t.Fatalf("%s certificate bound %d exceeds probes %d (n=%d m=%d k=%d)",
					pol.name, lb, res.Stats.Total, n, m, k)
			}
			var sum int
			maxd := 0
			for _, d := range res.Stats.PerList {
				sum += d
				if d > maxd {
					maxd = d
				}
			}
			if sum != res.Stats.Total || maxd != res.Stats.MaxDepth {
				t.Fatalf("%s stats inconsistent: %+v", pol.name, res.Stats)
			}
		}
	}
}

// On strongly correlated inputs the engine reads a tiny prefix: the paper's
// "as few elements as necessary" behaviour.
func TestMedRankSublinearOnCorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, m := 2000, 5
	in, _ := randrank.MallowsEnsemble(rng, n, m, 2.0)
	res, err := MedRank(in, 1, GlobalMerge)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total > n {
		t.Errorf("correlated top-1 read %d probes out of %d; expected strongly sublinear", res.Stats.Total, n*m)
	}
}

// On unanimous inputs the top-1 is certified after roughly one probe per
// list.
func TestMedRankUnanimousMinimalProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	full := randrank.Full(rng, 100)
	in := []*ranking.PartialRanking{full, full, full}
	res, err := MedRank(in, 1, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winners[0] != full.Order()[0] {
		t.Fatalf("wrong winner %d", res.Winners[0])
	}
	// Needs the winner in 2 lists plus evidence that nothing else can beat
	// it; round-robin reads at most a few entries per list.
	if res.Stats.Total > 9 {
		t.Errorf("unanimous top-1 used %d probes", res.Stats.Total)
	}
}

func TestMedRankEdgeCases(t *testing.T) {
	a := ranking.MustFromBuckets(3, [][]int{{0, 1, 2}})
	res, err := MedRank([]*ranking.PartialRanking{a}, 0, GlobalMerge)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total != 0 || len(res.Winners) != 0 {
		t.Errorf("k=0 should probe nothing: %+v", res.Stats)
	}
	// k = n over a single everything-tied list.
	res, err = MedRank([]*ranking.PartialRanking{a}, 3, GlobalMerge)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Winners) != 3 {
		t.Errorf("k=n winners = %v", res.Winners)
	}

	if _, err := MedRank(nil, 1, GlobalMerge); err == nil {
		t.Error("empty ensemble accepted")
	}
	if _, err := MedRank([]*ranking.PartialRanking{a}, 4, GlobalMerge); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := MedRank([]*ranking.PartialRanking{a}, -1, GlobalMerge); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := MedRank([]*ranking.PartialRanking{a}, 1, Policy(7)); err == nil {
		t.Error("unknown policy accepted")
	}
	b := ranking.MustFromOrder([]int{0, 1})
	if _, err := MedRank([]*ranking.PartialRanking{a, b}, 1, GlobalMerge); err == nil {
		t.Error("domain mismatch accepted")
	}
}

func TestFullScanCost(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1, 2})
	st := FullScanCost([]*ranking.PartialRanking{a, a})
	if st.Total != 6 || st.MaxDepth != 3 {
		t.Errorf("FullScanCost = %+v", st)
	}
}

// Bucket-granular policies return the same answer as element-granular ones
// while charging fewer I/Os on tied inputs.
func TestMedRankBucketGranular(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(15)
		m := 1 + rng.Intn(5)
		k := rng.Intn(n + 1)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 5))
		}
		want, err := aggregate.MedianTopK(in, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []Policy{GlobalMergeBuckets, RoundRobinBuckets} {
			got, err := MedRank(in, k, pol)
			if err != nil {
				t.Fatal(err)
			}
			if !got.TopK.Equal(want) {
				t.Fatalf("policy %d mismatch (n=%d m=%d k=%d):\ngot  %v\nwant %v",
					pol, n, m, k, got.TopK, want)
			}
			if got.Stats.TotalBucketProbes > got.Stats.Total {
				t.Fatalf("bucket probes %d exceed element reads %d",
					got.Stats.TotalBucketProbes, got.Stats.Total)
			}
			var sum int
			for _, b := range got.Stats.BucketProbes {
				sum += b
			}
			if sum != got.Stats.TotalBucketProbes {
				t.Fatalf("bucket probe stats inconsistent: %+v", got.Stats)
			}
		}
	}
}

// On a heavily tied catalog, bucket I/Os are dramatically cheaper than
// element reads.
func TestMedRankBucketGranularSavesIO(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	in := randrank.CatalogEnsemble(rng, 2000, 5, 5, 1.0, 1.5).Rankings
	res, err := MedRank(in, 10, GlobalMergeBuckets)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalBucketProbes*10 > res.Stats.Total {
		t.Errorf("expected >=10x I/O saving on 5-valued catalog: %d bucket probes for %d elements",
			res.Stats.TotalBucketProbes, res.Stats.Total)
	}
	// Element-granular stats count one I/O per element.
	resEl, err := MedRank(in, 10, GlobalMerge)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resEl.Stats.PerList {
		if resEl.Stats.BucketProbes[i] != resEl.Stats.PerList[i] {
			t.Fatalf("element policy should charge one I/O per element: %+v", resEl.Stats)
		}
	}
}
