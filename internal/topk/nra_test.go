package topk

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/faults"
	"repro/internal/randrank"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// sortedSet returns a sorted copy, the set view of a winner list (NRA/CA
// order winners by certified upper bound, which can differ from the exact
// engines' (median, id) order while the SET is identical).
func sortedSet(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

// equivalenceMatrix is the seed-matrix instance pool of the TA ≡ NRA ≡ CA
// suite: tie-heavy catalogs, near-sorted Mallows ensembles, coarse partial
// Mallows, and unstructured random bucket orders, across domain sizes and m.
func equivalenceMatrix(seed int64) []struct {
	name string
	in   []*ranking.PartialRanking
	k    int
} {
	var cases []struct {
		name string
		in   []*ranking.PartialRanking
		k    int
	}
	add := func(name string, in []*ranking.PartialRanking, k int) {
		cases = append(cases, struct {
			name string
			in   []*ranking.PartialRanking
			k    int
		}{name, in, k})
	}
	rng := rand.New(rand.NewSource(seed))
	add("catalog_tieheavy", randrank.CatalogEnsemble(rng, 300, 5, 6, 1.0, 1.5).Rankings, 8)
	add("catalog_fine", randrank.CatalogEnsemble(rng, 200, 7, 40, 0.5, 0.8).Rankings, 5)
	mal, _ := randrank.MallowsEnsemble(rng, 150, 5, 1.0)
	add("mallows_full", mal, 10)
	malp, _ := randrank.MallowsPartialEnsemble(rng, 150, 3, 0.3, 12)
	add("mallows_partial", malp, 7)
	uni := make([]*ranking.PartialRanking, 4)
	for i := range uni {
		uni[i] = randrank.Partial(rng, 120, 9)
	}
	add("random_buckets", uni, 120) // k = n: every interval must close or dominate
	tiny := make([]*ranking.PartialRanking, 3)
	for i := range tiny {
		tiny[i] = randrank.Partial(rng, 9, 4)
	}
	add("tiny", tiny, 3)
	return cases
}

// TestNRACAEquivalence is the seed-matrix equivalence suite: on every
// instance the TA, NRA, and CA (at ratios 1, 10, 100) top-k answer SETS must
// equal MEDRANK's exactly — interval domination certifies membership with
// the same (median, element) tie-breaks the exact engines use — and NRA must
// make zero random accesses.
func TestNRACAEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		for _, tc := range equivalenceMatrix(seed) {
			t.Run(fmt.Sprintf("seed%d/%s", seed, tc.name), func(t *testing.T) {
				want, err := MedRank(tc.in, tc.k, RoundRobin)
				if err != nil {
					t.Fatal(err)
				}
				wantSet := sortedSet(want.Winners)

				ta, err := ThresholdTopK(tc.in, tc.k)
				if err != nil {
					t.Fatal(err)
				}
				if got := sortedSet(ta.Winners); !reflect.DeepEqual(got, wantSet) {
					t.Fatalf("TA answer set %v != MEDRANK %v", got, wantSet)
				}

				nra, err := NRA(tc.in, tc.k)
				if err != nil {
					t.Fatal(err)
				}
				if got := sortedSet(nra.Winners); !reflect.DeepEqual(got, wantSet) {
					t.Fatalf("NRA answer set %v != MEDRANK %v", got, wantSet)
				}
				if nra.Stats.Random != 0 {
					t.Fatalf("NRA made %d random accesses, want 0", nra.Stats.Random)
				}
				if len(nra.Intervals2) != len(nra.Winners) {
					t.Fatalf("NRA returned %d intervals for %d winners", len(nra.Intervals2), len(nra.Winners))
				}
				if nra.BufferPeak <= 0 && tc.k > 0 {
					t.Fatalf("NRA reported BufferPeak %d", nra.BufferPeak)
				}
				// The certified intervals must contain the exact medians.
				exact := make(map[int]int64, len(want.Winners))
				for i, w := range want.Winners {
					exact[w] = want.Medians2[i]
				}
				for i, w := range nra.Winners {
					iv := nra.Intervals2[i]
					if med := exact[w]; med < iv[0] || med > iv[1] {
						t.Fatalf("winner %d: exact median %d outside certified [%d, %d]", w, med, iv[0], iv[1])
					}
					if nra.Medians2[i] != iv[1] {
						t.Fatalf("winner %d: Medians2 %d != interval hi %d", w, nra.Medians2[i], iv[1])
					}
				}

				for _, ratio := range []int{1, 10, 100} {
					ca, err := CA(tc.in, tc.k, ratio)
					if err != nil {
						t.Fatal(err)
					}
					if got := sortedSet(ca.Winners); !reflect.DeepEqual(got, wantSet) {
						t.Fatalf("CA(ratio=%d) answer set %v != MEDRANK %v", ratio, got, wantSet)
					}
				}
				// CA at ratio 0 is the NRA regime: same run, zero random.
				ca0, err := CA(tc.in, tc.k, 0)
				if err != nil {
					t.Fatal(err)
				}
				if ca0.Stats.Random != 0 {
					t.Fatalf("CA(ratio=0) made %d random accesses, want 0", ca0.Stats.Random)
				}
				if !reflect.DeepEqual(ca0.Winners, nra.Winners) {
					t.Fatalf("CA(ratio=0) diverged from NRA: %v vs %v", ca0.Winners, nra.Winners)
				}
			})
		}
	}
}

// TestNRACAOverDeathEquivalence kills each list in turn and checks the
// degraded NRA/CA answers: deterministic across runs, and the answer set
// equals fault-free MEDRANK over that run's surviving lists (survivors are
// complete streams, so the degraded answer is still an exact aggregation).
func TestNRACAOverDeathEquivalence(t *testing.T) {
	const n, m, k = 300, 5, 8
	in := chaosEnsemble(t, n, m)
	engines := []struct {
		name string
		run  func(srcs []faults.Source, acc *telemetry.AccessAccountant) (*Result, error)
	}{
		{"nra", func(srcs []faults.Source, acc *telemetry.AccessAccountant) (*Result, error) {
			return NRAOver(context.Background(), srcs, k, acc)
		}},
		{"ca10", func(srcs []faults.Source, acc *telemetry.AccessAccountant) (*Result, error) {
			return CAOver(context.Background(), srcs, k, 10, acc)
		}},
	}
	for _, eng := range engines {
		for victim := 0; victim < m; victim++ {
			run := func() *Result {
				acc := telemetry.NewAccessAccountant(m)
				srcs := chaosSources(in, acc, func(i int, s faults.Source) faults.Source {
					if i != victim {
						return s
					}
					return faults.Inject(s, faults.Plan{DeathAfter: 1})
				})
				res, err := eng.run(srcs, acc)
				if err != nil {
					t.Fatalf("%s victim %d: %v", eng.name, victim, err)
				}
				return res
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a.Winners, b.Winners) || !reflect.DeepEqual(a.Degraded, b.Degraded) ||
				!reflect.DeepEqual(a.Stats, b.Stats) {
				t.Fatalf("%s victim %d: two identical chaos runs diverged", eng.name, victim)
			}
			if a.Degraded == nil {
				// NRA's first certification check runs before any probe, so a
				// DeathAfter:1 victim is always probed at least once: the
				// death cannot go unnoticed under round-robin rounds.
				t.Fatalf("%s victim %d: death not reported", eng.name, victim)
			}
			if !reflect.DeepEqual(a.Degraded.Lost, []int{victim}) || a.Degraded.Survivors != m-1 {
				t.Fatalf("%s victim %d: Degraded = %+v", eng.name, victim, a.Degraded)
			}
			survivors := make([]*ranking.PartialRanking, 0, m-1)
			for i, r := range in {
				if i != victim {
					survivors = append(survivors, r)
				}
			}
			want, err := MedRank(survivors, k, RoundRobin)
			if err != nil {
				t.Fatal(err)
			}
			if got, wantSet := sortedSet(a.Winners), sortedSet(want.Winners); !reflect.DeepEqual(got, wantSet) {
				t.Fatalf("%s victim %d: degraded answer set %v != survivors' MEDRANK %v",
					eng.name, victim, got, wantSet)
			}
		}
	}
}

// TestNRACAOverChaosMatrix runs NRA and CA under randomized transient+death
// plans (retry-wrapped, like the E15 pipeline) and checks the degraded
// answers against fault-free MEDRANK over each run's own surviving lists.
func TestNRACAOverChaosMatrix(t *testing.T) {
	const n, m, k = 250, 5, 8
	in := chaosEnsemble(t, n, m)
	seed := faultSeed(t)
	for trial := int64(0); trial < 4; trial++ {
		for _, ratio := range []int{0, 10} {
			sl := &faults.FakeSleeper{}
			acc := telemetry.NewAccessAccountant(m)
			srcs := chaosSources(in, acc, func(i int, s faults.Source) faults.Source {
				s = faults.Inject(s, faults.Plan{
					Seed: seed + trial*100 + int64(i), TransientRate: 0.01, DeathRate: 0.004, Sleeper: sl,
				})
				pol := faults.DefaultRetryPolicy()
				pol.JitterSeed = seed + trial
				pol.Sleeper = sl
				return faults.WithRetry(s, pol, acc, i)
			})
			res, err := CAOver(context.Background(), srcs, k, ratio, acc)
			if err != nil {
				// All lists dying is a legal outcome of an aggressive plan.
				continue
			}
			survivors := make([]*ranking.PartialRanking, 0, m)
			if res.Degraded == nil {
				survivors = in
			} else {
				lost := make(map[int]bool, len(res.Degraded.Lost))
				for _, l := range res.Degraded.Lost {
					lost[l] = true
				}
				for i, r := range in {
					if !lost[i] {
						survivors = append(survivors, r)
					}
				}
			}
			want, err := MedRank(survivors, k, RoundRobin)
			if err != nil {
				t.Fatal(err)
			}
			if got, wantSet := sortedSet(res.Winners), sortedSet(want.Winners); !reflect.DeepEqual(got, wantSet) {
				t.Fatalf("trial %d ratio %d: degraded set %v != survivors' MEDRANK %v (lost %v)",
					trial, ratio, got, wantSet, res.Degraded)
			}
			if ratio == 0 && res.Stats.Random != 0 {
				t.Fatalf("trial %d: NRA regime made %d random accesses", trial, res.Stats.Random)
			}
		}
	}
}

// TestCACostMonotonicity checks the design property that motivates CA: at
// its design ratio, CA's middleware cost never exceeds BOTH TA's and NRA's —
// it blends toward whichever access mix is cheaper on the instance.
func TestCACostMonotonicity(t *testing.T) {
	const cs, cr = 1, 10
	for seed := int64(1); seed <= 3; seed++ {
		for _, tc := range equivalenceMatrix(seed) {
			ta, err := ThresholdTopK(tc.in, tc.k)
			if err != nil {
				t.Fatal(err)
			}
			nra, err := NRA(tc.in, tc.k)
			if err != nil {
				t.Fatal(err)
			}
			ca, err := CA(tc.in, tc.k, cr/cs)
			if err != nil {
				t.Fatal(err)
			}
			taCost := ta.Stats.MiddlewareCost(cs, cr)
			nraCost := nra.Stats.MiddlewareCost(cs, cr)
			caCost := ca.Stats.MiddlewareCost(cs, cr)
			worst := taCost
			if nraCost > worst {
				worst = nraCost
			}
			if caCost > worst {
				t.Errorf("seed %d %s: CA cost %d exceeds both TA (%d) and NRA (%d)",
					seed, tc.name, caCost, taCost, nraCost)
			}
		}
	}
}

// TestCertificateLowerBoundAbsentElements pins the hardening: winners outside
// a list's domain no longer panic the bound, they simply cannot be charged
// for on that list.
func TestCertificateLowerBoundAbsentElements(t *testing.T) {
	r5, err := ranking.FromBuckets(5, [][]int{{0, 1}, {2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := ranking.FromBuckets(3, [][]int{{2}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Winner 4 exists only in r5; winner 7 in neither. The old code indexed
	// BucketOf unconditionally and panicked on both.
	in := []*ranking.PartialRanking{r5, r3}
	got := CertificateLowerBound(in, []int{4, 7})
	// needed = 1; winner 4's only observable list is r5 at depth 1+|{0,1}|+|{2}| = 4.
	if got != 4 {
		t.Fatalf("CertificateLowerBound = %d, want 4", got)
	}
	if CertificateLowerBound(in, []int{7}) != 0 {
		t.Fatal("a winner absent everywhere must contribute a zero bound")
	}
}

// TestCertificateLowerBoundCost pins the cost-weighted bound and its
// degenerate cases.
func TestCertificateLowerBoundCost(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randrank.CatalogEnsemble(rng, 200, 5, 6, 1.0, 1.5).Rankings
	res, err := MedRank(in, 8, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Winners
	seqOnly := CertificateLowerBound(in, w)
	if got := CertificateLowerBoundCost(in, w, 1, 0); got != seqOnly {
		t.Fatalf("cr<=0 must degenerate to the sequential bound: got %d want %d", got, seqOnly)
	}
	// With random access priced at cr, no per-list charge exceeds cr, and
	// cheaper random access can only lower the bound.
	needed := (len(in) + 1) / 2
	for _, cr := range []int{1, 10, 100} {
		got := CertificateLowerBoundCost(in, w, 1, cr)
		if got > seqOnly {
			t.Fatalf("cr=%d bound %d exceeds sequential-only bound %d", cr, got, seqOnly)
		}
		if got > needed*cr {
			t.Fatalf("cr=%d bound %d exceeds the all-random ceiling %d", cr, got, needed*cr)
		}
	}
	if a, b := CertificateLowerBoundCost(in, w, 1, 1), CertificateLowerBoundCost(in, w, 1, 10); a > b {
		t.Fatalf("bound must be monotone in cr: cost(cr=1)=%d > cost(cr=10)=%d", a, b)
	}
	// Ratio plumbing: cost-weighted ratio = MiddlewareCost / bound.
	st := AccessStats{Total: 30, Random: 4}
	if got := st.CostOptimalityRatio(1, 10, 70); got != 1.0 {
		t.Fatalf("CostOptimalityRatio = %v, want 1.0", got)
	}
	if st.CostOptimalityRatio(1, 10, 0) != 0 {
		t.Fatal("non-positive bound must yield ratio 0")
	}
}

// TestNRAExhaustsCompleteInstance pins the k = n boundary: with every
// interval forced closed the certified answer must be the full exact order.
func TestNRAExhaustsCompleteInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := randrank.CatalogEnsemble(rng, 60, 3, 5, 1.0, 1.0).Rankings
	want, err := MedRank(in, 60, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	for _, ratio := range []int{0, 5} {
		got, err := CA(in, 60, ratio)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sortedSet(got.Winners), sortedSet(want.Winners)) {
			t.Fatalf("ratio %d: k=n answer set differs", ratio)
		}
	}
	if _, err := CA(in, 3, -1); err == nil {
		t.Fatal("negative ratio must be rejected")
	}
	if _, err := NRA(nil, 3); err == nil {
		t.Fatal("empty input must be rejected")
	}
}
