package topk

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/faults"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// nraFallibleRun drives the interval-certification core (nraCore) over
// fallible sources, for both NRA (ratio 0: sorted access only) and CA
// (ratio > 0: a random-access resolution every ~ratio sorted rounds). Like
// fallibleRun it keeps per-original-list logs of every consumed entry —
// sequential AND random, since CA's random lookups are real knowledge the
// rebuilt core must not lose — and rebuilds a fresh core over the survivors
// when a list dies. Rebuilding from scratch also re-derives every buffer
// clearance: a clearance proved against the old instance (all m lists) need
// not hold against the survivor instance, so none of them are carried over.
type nraFallibleRun struct {
	sources []faults.Source
	acc     *telemetry.AccessAccountant
	n, m, k int
	ratio   int // sorted rounds between random-access resolutions; 0 = never (NRA)

	alive    []bool    // per original list
	aliveIdx []int     // survivor slot -> original list index
	seqLogs  [][]Entry // per original list: every entry consumed sequentially
	randLogs [][]Entry // per original list: every position fetched by random access
	lost     []int

	core       *nraCore
	rrNext     int
	sinceRA    int // sorted rounds since the last random-access resolution
	bufferPeak int // max over rebuilds of the core's candidate-buffer peak
}

// NRAOver runs the no-random-access engine over fallible sources: the
// fault-tolerant contract of MedRankOver (transients absorbed below by
// faults.WithRetry, any error reaching the engine permanently kills that
// list, the run degrades to the exact answer over the survivors) with NRA's
// access pattern (sorted access only — the source stack's Pos2 is never
// called). acc follows the MedRankOver convention: non-nil must be the
// accountant the sources charge to; nil allocates a fresh one.
func NRAOver(ctx context.Context, sources []faults.Source, k int, acc *telemetry.AccessAccountant) (*Result, error) {
	return caOver(ctx, sources, k, 0, acc)
}

// CAOver runs the combined algorithm over fallible sources at the given
// random:sequential cost ratio (see CA). Random accesses that fail kill
// their list exactly like sequential ones.
func CAOver(ctx context.Context, sources []faults.Source, k, ratio int, acc *telemetry.AccessAccountant) (*Result, error) {
	return caOver(ctx, sources, k, ratio, acc)
}

// caOver is the single implementation behind NRA/CA/NRAOver/CAOver.
func caOver(ctx context.Context, sources []faults.Source, k, ratio int, acc *telemetry.AccessAccountant) (*Result, error) {
	m := len(sources)
	if m == 0 {
		return nil, fmt.Errorf("topk: no input sources")
	}
	if ratio < 0 {
		return nil, fmt.Errorf("topk: negative cost ratio %d", ratio)
	}
	n := sources[0].N()
	for i, s := range sources {
		if s.N() != n {
			return nil, fmt.Errorf("topk: source %d has domain size %d, want %d", i, s.N(), n)
		}
	}
	if k < 0 || k > n {
		return nil, fmt.Errorf("topk: k=%d out of range [0,%d]", k, n)
	}
	if acc == nil {
		acc = telemetry.NewAccessAccountant(m)
	}

	f := &nraFallibleRun{
		sources:  sources,
		acc:      acc,
		n:        n,
		m:        m,
		k:        k,
		ratio:    ratio,
		alive:    make([]bool, m),
		aliveIdx: make([]int, m),
		seqLogs:  make([][]Entry, m),
		randLogs: make([][]Entry, m),
	}
	for i := range f.alive {
		f.alive[i] = true
		f.aliveIdx[i] = i
	}
	f.rebuild()

	span, kernel := "topk.nra", "nra"
	if ratio > 0 {
		span, kernel = "topk.ca", "ca"
	}
	var derr error
	sctx, sp := telemetry.Start(ctx, span)
	telemetry.Do(sctx, "kernel", kernel, func(ctx context.Context) {
		derr = f.drive(ctx)
	})
	sp.End()
	if derr != nil {
		return nil, derr
	}

	winners, medians2, intervals := f.core.finalTopK()
	top, err := ranking.TopKList(n, k, winners)
	if err != nil {
		return nil, err
	}
	stats := statsFromReport(acc.Report())
	if f.core.bufferPeak > f.bufferPeak {
		f.bufferPeak = f.core.bufferPeak
	}
	if ratio > 0 {
		tCARuns.Inc()
		tCAProbes.Add(int64(stats.Total))
		tCARandom.Add(int64(stats.Random))
	} else {
		tNRARuns.Inc()
		tNRAProbes.Add(int64(stats.Total))
	}
	return &Result{
		TopK:       top,
		Winners:    winners,
		Medians2:   medians2,
		Stats:      stats,
		Degraded:   f.degraded(winners),
		Intervals2: intervals,
		BufferPeak: f.bufferPeak,
	}, nil
}

// rebuild constructs a fresh certification core over the currently alive
// lists and replays both logs of every survivor into it. Exact for the same
// reason fallibleRun.rebuild is: every unseen position of a survivor is at
// least that list's current frontier.
func (f *nraFallibleRun) rebuild() {
	if f.core != nil && f.core.bufferPeak > f.bufferPeak {
		f.bufferPeak = f.core.bufferPeak
	}
	m := len(f.aliveIdx)
	core := newNRACore(f.n, m, f.k)
	for li, orig := range f.aliveIdx {
		core.frontier[li] = f.sources[orig].Peek2()
	}
	for li, orig := range f.aliveIdx {
		for _, e := range f.seqLogs[orig] {
			core.add(li, e.Elem, e.Pos2)
		}
		for _, e := range f.randLogs[orig] {
			core.add(li, e.Elem, e.Pos2)
		}
	}
	f.core = core
	if f.rrNext >= m {
		f.rrNext = 0
	}
	f.sinceRA = 0
}

// drive alternates certification checks with work: a random-access
// resolution when one is due and useful, otherwise one sorted round over the
// survivors. The check runs at round granularity (the textbook NRA schedule)
// rather than per probe: a per-probe check would cost O(candidates·m) per
// entry consumed.
func (f *nraFallibleRun) drive(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		done, blocker := f.core.check()
		if done {
			return nil
		}
		if f.ratio > 0 && blocker >= 0 && f.sinceRA >= f.ratio {
			if err := f.resolve(ctx, blocker); err != nil {
				return err
			}
			f.sinceRA = 0
			continue
		}
		progressed, err := f.round(ctx)
		if err != nil {
			return err
		}
		if !progressed {
			// Every survivor exhausted or truncated without a certificate:
			// finalTopK promotes by the missing-positions-are-infinite
			// convention, matching MedRankOver's degraded semantics. (With
			// complete lists this is unreachable — full knowledge certifies.)
			return nil
		}
		f.sinceRA++
	}
}

// round performs one sorted access on each live survivor list in round-robin
// order. A death mid-round aborts the round (the rebuilt core must be
// re-checked before more work is scheduled against it).
func (f *nraFallibleRun) round(ctx context.Context) (bool, error) {
	progressed := false
	for t, m := 0, len(f.aliveIdx); t < m; t++ {
		if f.rrNext >= len(f.aliveIdx) {
			f.rrNext = 0
		}
		li := f.rrNext
		f.rrNext = (f.rrNext + 1) % len(f.aliveIdx)
		if f.core.frontier[li] == math.MaxInt64 {
			continue
		}
		orig := f.aliveIdx[li]
		e, ok, err := f.sources[orig].Next(ctx)
		if err != nil {
			rebuilt, herr := f.handleErr(orig, err)
			if herr != nil {
				return false, herr
			}
			if rebuilt {
				return true, nil
			}
			continue
		}
		if !ok {
			f.core.frontier[li] = math.MaxInt64
			continue
		}
		f.acc.BucketIO(orig)
		progressed = true
		f.seqLogs[orig] = append(f.seqLogs[orig], e)
		f.core.add(li, e.Elem, e.Pos2)
		f.core.frontier[li] = f.sources[orig].Peek2()
	}
	return progressed, nil
}

// resolve closes the blocking candidate's interval: one random access per
// surviving list where its position is still unknown. Fetched positions are
// logged so a later rebuild replays them — random-access knowledge survives
// list deaths just like sorted knowledge.
func (f *nraFallibleRun) resolve(ctx context.Context, e int) error {
	for li := 0; li < len(f.aliveIdx); li++ {
		if f.core.knownIn(li, e) {
			continue
		}
		orig := f.aliveIdx[li]
		v, err := f.sources[orig].Pos2(ctx, e)
		if err != nil {
			rebuilt, herr := f.handleErr(orig, err)
			if herr != nil {
				return herr
			}
			if rebuilt {
				return nil // survivor slots shifted; caller re-checks
			}
			continue
		}
		f.randLogs[orig] = append(f.randLogs[orig], Entry{Elem: e, Pos2: v})
		f.core.add(li, e, v)
	}
	return nil
}

// handleErr classifies an access error exactly like fallibleRun.handleErr:
// context errors abort the run, anything else kills the list. rebuilt reports
// whether the certification core was replaced (survivor slots renumbered).
func (f *nraFallibleRun) handleErr(orig int, err error) (bool, error) {
	if faults.IsContextErr(err) {
		return false, err
	}
	f.kill(orig)
	if len(f.aliveIdx) == 0 {
		return false, fmt.Errorf("topk: all %d input lists died mid-query (last: %w)", f.m, err)
	}
	f.rebuild()
	return true, nil
}

func (f *nraFallibleRun) kill(orig int) {
	f.alive[orig] = false
	f.lost = append(f.lost, orig)
	tListDeaths.Inc()
	keep := f.aliveIdx[:0]
	for _, i := range f.aliveIdx {
		if f.alive[i] {
			keep = append(keep, i)
		}
	}
	f.aliveIdx = keep
}

// degraded builds the Degraded annotation, nil when no list died. Same
// certificate as fallibleRun.degraded, except a winner's observed positions
// come from both logs (a random-accessed position is exactly as authoritative
// as a scanned one).
func (f *nraFallibleRun) degraded(winners []int) *Degraded {
	if len(f.lost) == 0 {
		return nil
	}
	rep := f.acc.Report()
	d := &Degraded{
		Lost:             append([]int(nil), f.lost...),
		Survivors:        len(f.aliveIdx),
		Retried:          int(rep.Retried),
		MedianIntervals2: make([][2]int64, len(winners)),
	}
	sort.Ints(d.Lost)
	for _, li := range f.lost {
		if li < len(rep.PerList) {
			d.WastedSequential += int(rep.PerList[li])
		}
		if li < len(rep.RandomPerList) {
			d.WastedRandom += int(rep.RandomPerList[li])
		}
	}

	winIdx := make(map[int]int, len(winners))
	for i, w := range winners {
		winIdx[w] = i
	}
	known := make([][]int64, len(winners))
	observed := make([][]bool, f.m) // per original list, per winner
	for orig := 0; orig < f.m; orig++ {
		observed[orig] = make([]bool, len(winners))
		for _, log := range [2][]Entry{f.seqLogs[orig], f.randLogs[orig]} {
			for _, e := range log {
				if i, ok := winIdx[e.Elem]; ok && !observed[orig][i] {
					observed[orig][i] = true
					known[i] = append(known[i], e.Pos2)
				}
			}
		}
	}
	j := (f.m + 1) / 2
	for i := range winners {
		bounded := append([]int64(nil), known[i]...)
		unknown := 0
		for orig := 0; orig < f.m; orig++ {
			if observed[orig][i] {
				continue
			}
			if f.alive[orig] {
				bounded = append(bounded, f.sources[orig].Peek2())
			} else {
				unknown++
			}
		}
		lo := int64(0)
		if j-unknown >= 1 {
			lo = kthSmallest(bounded, j-unknown)
		}
		hi := int64(math.MaxInt64)
		if len(known[i]) >= j {
			hi = kthSmallest(known[i], j)
		}
		d.MedianIntervals2[i] = [2]int64{lo, hi}
	}
	return d
}
