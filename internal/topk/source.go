package topk

import (
	"context"

	"repro/internal/faults"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// listSource is the infallible faults.Source: a cursor over an in-memory
// partial ranking. Its accesses never fail; it exists so the fallible engines
// (MedRankOver, ThresholdTopKOver) and the chaos wrappers of internal/faults
// all speak one interface.
type listSource struct {
	c    *Cursor
	pr   *ranking.PartialRanking
	acc  *telemetry.AccessAccountant
	list int
}

// NewListSource exposes a partial ranking as a faults.Source that charges its
// sequential and random accesses to list `list` of acc. Wrap it with
// faults.Inject and faults.WithRetry to build a chaos pipeline.
func NewListSource(pr *ranking.PartialRanking, acc *telemetry.AccessAccountant, list int) faults.Source {
	return &listSource{
		c:    newCursorAt(pr, acc, list),
		pr:   pr,
		acc:  acc,
		list: list,
	}
}

func (s *listSource) Next(ctx context.Context) (Entry, bool, error) {
	e, ok := s.c.Next() // the cursor charges the sequential access itself
	return e, ok, nil
}

func (s *listSource) Peek2() int64 { return s.c.Peek2() }

func (s *listSource) Pos2(ctx context.Context, elem int) (int64, error) {
	s.acc.Random(s.list)
	return s.pr.Pos2(elem), nil
}

func (s *listSource) N() int { return s.pr.N() }
