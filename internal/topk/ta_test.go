package topk

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

// TestThresholdTopKMatchesMedRank pins the TA-style baseline's answer to
// MEDRANK's on random ensembles: same winners, same medians.
func TestThresholdTopKMatchesMedRank(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(40)
		m := 1 + rng.Intn(6)
		k := rng.Intn(n + 1)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 1+rng.Intn(5)))
		}
		want, err := MedRank(in, k, RoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ThresholdTopK(in, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Winners) != len(want.Winners) {
			t.Fatalf("n=%d m=%d k=%d: TA winners %v, MedRank %v", n, m, k, got.Winners, want.Winners)
		}
		for i := range want.Winners {
			if got.Winners[i] != want.Winners[i] || got.Medians2[i] != want.Medians2[i] {
				t.Fatalf("n=%d m=%d k=%d: TA (%v, %v), MedRank (%v, %v)",
					n, m, k, got.Winners, got.Medians2, want.Winners, want.Medians2)
			}
		}
	}
}

// TestThresholdTopKAccessProfile checks the cost-model shape of a TA run:
// random accesses are exactly (m-1) per distinct element resolved via sorted
// access, MEDRANK makes none, and both report through the same AccessStats.
func TestThresholdTopKAccessProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var in []*ranking.PartialRanking
	const n, m = 200, 5
	for i := 0; i < m; i++ {
		in = append(in, randrank.Partial(rng, n, 4))
	}
	res, err := ThresholdTopK(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Random == 0 {
		t.Fatal("TA run made no random accesses")
	}
	if res.Stats.Random%(m-1) != 0 {
		t.Errorf("random accesses %d not a multiple of m-1 = %d", res.Stats.Random, m-1)
	}
	if res.Stats.Total > n*m {
		t.Errorf("sequential accesses %d exceed the full scan %d", res.Stats.Total, n*m)
	}
	mr, err := MedRank(in, 3, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Stats.Random != 0 {
		t.Errorf("MEDRANK made %d random accesses, want 0", mr.Stats.Random)
	}
	// The FLN middleware cost prices the two access modes: with random
	// accesses present, raising their unit cost must raise the total.
	cheap := res.Stats.MiddlewareCost(1, 0)
	dear := res.Stats.MiddlewareCost(1, 1000)
	if cheap <= 0 || dear <= cheap {
		t.Errorf("middleware cost not increasing in cr: %d vs %d", cheap, dear)
	}
}

// TestOptimalityRatioAtLeastOne checks MEDRANK's probes against the
// certificate lower bound through the AccessStats helper: the ratio is >= 1
// whenever the bound is defined, and 0 when it is not.
func TestOptimalityRatioAtLeastOne(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(30)
		m := 1 + 2*rng.Intn(3) // odd voter counts
		k := 1 + rng.Intn(n-1)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		res, err := MedRank(in, k, GlobalMerge)
		if err != nil {
			t.Fatal(err)
		}
		lb := CertificateLowerBound(in, res.Winners)
		if lb <= 0 {
			t.Fatalf("certificate bound %d for k=%d", lb, k)
		}
		if ratio := res.Stats.OptimalityRatio(lb); ratio < 1 {
			t.Errorf("optimality ratio %v < 1 (probes %d, bound %d)", ratio, res.Stats.Total, lb)
		}
	}
	var st AccessStats
	if st.OptimalityRatio(0) != 0 {
		t.Error("ratio with zero bound should be 0")
	}
}

// TestTAThetaExhaustedListNoStaleStop is the regression pin for the
// round-robin exhausted-list edge case under the θ-relaxed stop. The audit
// outcome it pins: frontiers cannot go stale, because a successful probe
// refreshes its list's frontier immediately (Peek2 returns MaxInt64 the
// instant the last entry is consumed) and τ is recomputed from the live
// frontier array before every probe. A consequence worth keeping on the
// record: since medians never exceed the bottom position, the relaxed test
// necessarily fires no later than the state where every frontier reaches the
// last bucket — a θ > 0 run can never early-stop against a threshold the
// instance has advanced past. The test stresses the late-round states (k
// near n, so certification happens while lists drain) and re-verifies the
// (1+θ) guarantee offline against the exact medians; it would fail if
// exhausted lists ever contributed stale finite positions to τ.
func TestTAThetaExhaustedListNoStaleStop(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(20)
		m := 1 + 2*rng.Intn(3)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 4))
		}
		exact, err := MedRank(in, n, GlobalMerge)
		if err != nil {
			t.Fatal(err)
		}
		medOf := make(map[int]int64, n)
		for i, w := range exact.Winners {
			medOf[w] = exact.Medians2[i]
		}
		for _, k := range []int{n - 1, n - 2} {
			for _, theta := range []float64{0.1, 0.5, 10} {
				res, err := ThresholdTopKApprox(context.Background(), in, k, theta)
				if err != nil {
					t.Fatal(err)
				}
				reported := make(map[int]bool, k)
				worst := int64(0)
				for i, w := range res.Winners {
					reported[w] = true
					if res.Medians2[i] > worst {
						worst = res.Medians2[i]
					}
				}
				// The FLN guarantee: no excluded element beats a reported
				// winner by more than (1+θ).
				for e := 0; e < n; e++ {
					if reported[e] {
						continue
					}
					if float64(worst) > (1+theta)*float64(medOf[e]) {
						t.Fatalf("k=%d theta=%v: reported median %d exceeds (1+θ)·%d of excluded element %d",
							k, theta, worst, medOf[e], e)
					}
				}
				c := res.Approx
				if c == nil {
					t.Fatalf("approx run returned no certificate")
				}
				if c.EarlyStop {
					// A stop against a stale (finite) frontier of an already
					// exhausted list would surface here: τ must be a real
					// doubled position of the instance, and the certificate
					// must satisfy its own bound.
					if c.Threshold2 <= 0 || c.Threshold2 > int64(2*n) {
						t.Fatalf("early stop with out-of-instance threshold %d (n=%d)", c.Threshold2, n)
					}
					if float64(c.KthMedian2) > (1+theta)*float64(c.Threshold2) {
						t.Fatalf("certificate violates its own bound: kth=%d τ=%d θ=%v",
							c.KthMedian2, c.Threshold2, theta)
					}
				}
			}
		}
		// k = n drives the loop to its exhaustion exit (every element
		// resolved, lists fully drained): the relaxed test must never fire
		// there — the MaxInt64 guard keeps θ away from an all-exhausted
		// frontier — and the answer must be exact.
		res, err := ThresholdTopKApprox(context.Background(), in, n, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.Approx.EarlyStop {
			t.Fatal("k=n exhaustion run reported an early stop")
		}
		if !reflect.DeepEqual(res.Winners, exact.Winners) {
			t.Fatalf("k=n theta run diverged from exact: %v vs %v", res.Winners, exact.Winners)
		}
	}
}
