package topk

import (
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

// TestThresholdTopKMatchesMedRank pins the TA-style baseline's answer to
// MEDRANK's on random ensembles: same winners, same medians.
func TestThresholdTopKMatchesMedRank(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(40)
		m := 1 + rng.Intn(6)
		k := rng.Intn(n + 1)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 1+rng.Intn(5)))
		}
		want, err := MedRank(in, k, RoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ThresholdTopK(in, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Winners) != len(want.Winners) {
			t.Fatalf("n=%d m=%d k=%d: TA winners %v, MedRank %v", n, m, k, got.Winners, want.Winners)
		}
		for i := range want.Winners {
			if got.Winners[i] != want.Winners[i] || got.Medians2[i] != want.Medians2[i] {
				t.Fatalf("n=%d m=%d k=%d: TA (%v, %v), MedRank (%v, %v)",
					n, m, k, got.Winners, got.Medians2, want.Winners, want.Medians2)
			}
		}
	}
}

// TestThresholdTopKAccessProfile checks the cost-model shape of a TA run:
// random accesses are exactly (m-1) per distinct element resolved via sorted
// access, MEDRANK makes none, and both report through the same AccessStats.
func TestThresholdTopKAccessProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var in []*ranking.PartialRanking
	const n, m = 200, 5
	for i := 0; i < m; i++ {
		in = append(in, randrank.Partial(rng, n, 4))
	}
	res, err := ThresholdTopK(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Random == 0 {
		t.Fatal("TA run made no random accesses")
	}
	if res.Stats.Random%(m-1) != 0 {
		t.Errorf("random accesses %d not a multiple of m-1 = %d", res.Stats.Random, m-1)
	}
	if res.Stats.Total > n*m {
		t.Errorf("sequential accesses %d exceed the full scan %d", res.Stats.Total, n*m)
	}
	mr, err := MedRank(in, 3, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Stats.Random != 0 {
		t.Errorf("MEDRANK made %d random accesses, want 0", mr.Stats.Random)
	}
	// The FLN middleware cost prices the two access modes: with random
	// accesses present, raising their unit cost must raise the total.
	cheap := res.Stats.MiddlewareCost(1, 0)
	dear := res.Stats.MiddlewareCost(1, 1000)
	if cheap <= 0 || dear <= cheap {
		t.Errorf("middleware cost not increasing in cr: %d vs %d", cheap, dear)
	}
}

// TestOptimalityRatioAtLeastOne checks MEDRANK's probes against the
// certificate lower bound through the AccessStats helper: the ratio is >= 1
// whenever the bound is defined, and 0 when it is not.
func TestOptimalityRatioAtLeastOne(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(30)
		m := 1 + 2*rng.Intn(3) // odd voter counts
		k := 1 + rng.Intn(n-1)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 3))
		}
		res, err := MedRank(in, k, GlobalMerge)
		if err != nil {
			t.Fatal(err)
		}
		lb := CertificateLowerBound(in, res.Winners)
		if lb <= 0 {
			t.Fatalf("certificate bound %d for k=%d", lb, k)
		}
		if ratio := res.Stats.OptimalityRatio(lb); ratio < 1 {
			t.Errorf("optimality ratio %v < 1 (probes %d, bound %d)", ratio, res.Stats.Total, lb)
		}
	}
	var st AccessStats
	if st.OptimalityRatio(0) != 0 {
		t.Error("ratio with zero bound should be 0")
	}
}
