package topk

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/faults"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// This file implements the remaining two corners of the Fagin–Lotem–Naor
// middleware design space over median-rank aggregation:
//
//   - NRA ("no random access"): per-element [best, worst] median intervals
//     maintained from sorted access only. An element's worst case is the
//     needed-th smallest of its observed positions (infinite until `needed`
//     positions are known); its best case merges the observed positions with
//     the frontiers of the lists where it is still unseen. The run stops once
//     k intervals dominate every other element's interval, so the certified
//     answer SET equals the exact engines' even though individual medians may
//     remain intervals.
//   - CA ("combined algorithm"): the same interval accumulation, plus a
//     random-access resolution of the most blocking candidate once every
//     ~cR/cS sorted rounds, so expensive random accesses are paid only when
//     they amortize against the sorted work they save.
//
// Both engines share one certification core (nraCore) and one fallible driver
// (nraFallibleRun, nra_fallible.go); the infallible entry points below are
// thin wrappers that run the fallible driver over infallible list sources, so
// there is exactly one code path to trust.

// nraInf is the sentinel for an unknown worst-case bound: strictly larger
// than any real doubled position and than the bottom-of-order sentinel
// (math.MaxInt64 - 1) used for under-observed elements on degraded runs.
const nraInf = int64(math.MaxInt64)

// lexLT orders (value, element) pairs lexicographically — the tie-break every
// engine in this package uses. Strict interval domination under this order is
// what makes NRA's certified set identical to the exact engines': if
// (worst(w), w) < (best(z), z) then (median(w), w) < (median(z), z), because
// median(w) <= worst(w) and best(z) <= median(z), and at equal bounds the
// element IDs decide exactly as they do in the exact answer.
func lexLT(v1 int64, e1 int, v2 int64, e2 int) bool {
	return v1 < v2 || (v1 == v2 && e1 < e2)
}

// pairMaxHeap is a max-heap of (value, element) pairs under lexLT; the root
// is the largest tracked pair. It tracks the k lexicographically smallest
// worst-case bounds, whose root is the domination bar.
type pairMaxHeap []struct {
	v int64
	e int
}

func (h pairMaxHeap) Len() int           { return len(h) }
func (h pairMaxHeap) Less(i, j int) bool { return lexLT(h[j].v, h[j].e, h[i].v, h[i].e) }
func (h pairMaxHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pairMaxHeap) Push(x interface{}) {
	*h = append(*h, x.(struct {
		v int64
		e int
	}))
}
func (h *pairMaxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// nraCore is the interval-certification state shared by NRA and CA. Like
// medrankRun it is access-agnostic: it sees lists only through frontier
// positions and per-slot known bitmaps, so the fallible driver can rebuild a
// fresh core over the survivors after a list death and replay the logs.
//
// Monotonicity makes bounded buffers sound: a candidate's worst-case bound
// only shrinks as positions arrive, its best-case bound only grows (frontiers
// advance, and an observed position is at least the frontier it replaces), so
// the domination bar only shrinks. Once a candidate's best case clears the
// bar it can never re-enter the race and its position buffer is freed.
type nraCore struct {
	n, m, k, needed int
	frontier        []int64    // per slot: doubled position of next unprobed entry
	known           [][]uint64 // per slot: bitmap of elements with a known position
	seen            [][]int64  // per element: known doubled positions (nil once cleared)
	probed          []bool     // per element: ever had a position recorded
	probedDistinct  int
	minUnprobed     int    // smallest never-probed element ID
	cleared         []bool // provably outside the top k
	live            []int  // probed, not cleared (compacted on checks)
	bufferPeak      int    // peak number of simultaneously held candidate buffers
}

func newNRACore(n, m, k int) *nraCore {
	words := (n + 63) / 64
	c := &nraCore{
		n: n, m: m, k: k,
		needed:   (m + 1) / 2,
		frontier: make([]int64, m),
		known:    make([][]uint64, m),
		seen:     make([][]int64, n),
		probed:   make([]bool, n),
		cleared:  make([]bool, n),
	}
	for i := range c.known {
		c.known[i] = make([]uint64, words)
	}
	return c
}

// knownIn reports whether slot li already holds element e's position.
func (c *nraCore) knownIn(li, e int) bool {
	return c.known[li][e>>6]&(1<<(uint(e)&63)) != 0
}

// add registers element e's doubled position in slot li, whether it arrived
// by sorted or by random access — once known, a position is a position, which
// is what lets CA feed its random-access lookups into the same state (and the
// fallible driver replay both kinds of log after a list death). Duplicates
// are ignored: a sorted scan re-revealing a random-accessed entry changes
// nothing.
func (c *nraCore) add(li, e int, pos2 int64) {
	if c.knownIn(li, e) {
		return
	}
	c.known[li][e>>6] |= 1 << (uint(e) & 63)
	if !c.probed[e] {
		c.probed[e] = true
		c.probedDistinct++
		for c.minUnprobed < c.n && c.probed[c.minUnprobed] {
			c.minUnprobed++
		}
		if !c.cleared[e] {
			c.live = append(c.live, e)
			if len(c.live) > c.bufferPeak {
				c.bufferPeak = len(c.live)
			}
		}
	}
	if c.cleared[e] {
		return
	}
	c.seen[e] = append(c.seen[e], pos2)
}

// worst2 is the certified upper bound on e's doubled median: the needed-th
// smallest observed position, nraInf until `needed` positions are known
// (missing positions could be arbitrarily deep).
func (c *nraCore) worst2(e int) int64 {
	if len(c.seen[e]) < c.needed {
		return nraInf
	}
	return kthSmallest(c.seen[e], c.needed)
}

// best2 is the certified lower bound on e's doubled median: the needed-th
// smallest of its observed positions merged with the frontiers of the slots
// where it is unknown (an unseen position is at least that list's frontier).
func (c *nraCore) best2(e int) int64 {
	s := c.seen[e]
	if len(s) == c.m {
		return kthSmallest(s, c.needed)
	}
	all := make([]int64, 0, c.m)
	all = append(all, s...)
	for li := range c.frontier {
		if !c.knownIn(li, e) {
			all = append(all, c.frontier[li])
		}
	}
	return kthSmallest(all, c.needed)
}

// clear drops e from the race for good and frees its position buffer. Sound
// by monotonicity (see the type comment); the fallible driver's logs retain
// the raw entries for replay after a list death, when the instance — and
// hence every clearance — is recomputed from scratch.
func (c *nraCore) clear(e int) {
	c.cleared[e] = true
	c.seen[e] = nil
}

// minIncompleteBest returns the live candidate with the lexicographically
// smallest (best2, id) among those missing at least one position — the most
// useful random-access target — or -1 when every live candidate is complete.
func (c *nraCore) minIncompleteBest() int {
	best := -1
	var bestV int64
	for _, e := range c.live {
		if c.cleared[e] || len(c.seen[e]) == c.m {
			continue
		}
		if v := c.best2(e); best == -1 || lexLT(v, e, bestV, best) {
			best, bestV = e, v
		}
	}
	return best
}

// check runs the round-granular certification test: done reports whether k
// intervals strictly dominate every other element (probed or not), and
// blocker names the most blocking resolvable candidate (-1 when only
// never-probed elements block, which no random access can help — only deeper
// sorted scanning raises their shared frontier bound).
func (c *nraCore) check() (done bool, blocker int) {
	if c.k == 0 {
		return true, -1
	}
	// Compact out candidates cleared on earlier checks.
	keep := c.live[:0]
	for _, e := range c.live {
		if !c.cleared[e] {
			keep = append(keep, e)
		}
	}
	c.live = keep

	// The domination bar: the k-th lexicographically smallest (worst2, id).
	var h pairMaxHeap
	for _, e := range c.live {
		w := c.worst2(e)
		if w == nraInf {
			continue
		}
		if h.Len() < c.k {
			heap.Push(&h, struct {
				v int64
				e int
			}{w, e})
		} else if lexLT(w, e, h[0].v, h[0].e) {
			h[0] = struct {
				v int64
				e int
			}{w, e}
			heap.Fix(&h, 0)
		}
	}
	if h.Len() < c.k {
		// Fewer than k closed worst-case bounds: no bar to dominate yet.
		return false, c.minIncompleteBest()
	}
	barV, barID := h[0].v, h[0].e

	// Never-probed elements share the bound (needed-th smallest frontier,
	// smallest unprobed ID); checked first because it is O(m).
	done = true
	if c.probedDistinct < c.n {
		u := kthSmallest(c.frontier, c.needed)
		if !lexLT(barV, barID, u, c.minUnprobed) {
			done = false
		}
	}
	var blockV int64
	blocker = -1
	for _, e := range c.live {
		w := c.worst2(e)
		if !lexLT(barV, barID, w, e) {
			continue // member of the current top-k set
		}
		bv := c.best2(e)
		if lexLT(barV, barID, bv, e) {
			c.clear(e) // can never re-enter: best2 only grows, the bar only shrinks
			continue
		}
		done = false
		if blocker == -1 || lexLT(bv, e, blockV, blocker) {
			blocker, blockV = e, bv
		}
	}
	return done, blocker
}

// finalTopK extracts the answer: the k lexicographically smallest
// (median-bound, id) pairs over every non-cleared element. At a certified
// stop this is exactly the dominating set (everything else was cleared); at
// exhaustion or truncation it matches MedRankOver's degraded convention —
// elements observed in at least `needed` lists carry their exact survivor
// median, under-observed elements carry the bottom-of-order sentinel and fill
// the list by ID.
func (c *nraCore) finalTopK() (winners []int, medians2 []int64, intervals [][2]int64) {
	type cand struct {
		e          int
		med2, lo2 int64
	}
	cands := make([]cand, 0, len(c.live)+c.n-c.probedDistinct)
	for e := 0; e < c.n; e++ {
		if c.cleared[e] {
			continue
		}
		med := c.worst2(e)
		if med == nraInf {
			med = nraInf - 1 // bottom-of-order sentinel, ties broken by ID
		}
		cands = append(cands, cand{e, med, c.best2(e)})
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.med2 != b.med2 {
			return a.med2 < b.med2
		}
		if a.lo2 != b.lo2 {
			return a.lo2 < b.lo2
		}
		return a.e < b.e
	})
	if len(cands) > c.k {
		cands = cands[:c.k]
	}
	winners = make([]int, 0, len(cands))
	medians2 = make([]int64, 0, len(cands))
	intervals = make([][2]int64, 0, len(cands))
	for _, cd := range cands {
		winners = append(winners, cd.e)
		medians2 = append(medians2, cd.med2)
		hi := c.worst2(cd.e)
		lo := cd.lo2
		if lo > hi {
			lo = hi
		}
		intervals = append(intervals, [2]int64{lo, hi})
	}
	return winners, medians2, intervals
}

// NRA runs the no-random-access engine of Fagin, Lotem, and Naor over the
// inputs: median-rank top-k from sorted access only, certified by interval
// domination. The winner SET equals MedRank's and ThresholdTopK's exactly
// (including ID tie-breaks); individual winners may carry open median
// intervals, reported in Result.Intervals2 with Medians2 holding the
// certified upper bounds. AccessStats.Random is always 0.
func NRA(rankings []*ranking.PartialRanking, k int) (*Result, error) {
	return NRAContext(context.Background(), rankings, k)
}

// NRAContext is NRA under a caller context; cancellation or deadline expiry
// aborts the run between accesses with ctx.Err().
func NRAContext(ctx context.Context, rankings []*ranking.PartialRanking, k int) (*Result, error) {
	return caRankings(ctx, rankings, k, 0)
}

// CA runs the combined algorithm of Fagin, Lotem, and Naor at the given
// random:sequential cost ratio: NRA-style interval accumulation with a
// random-access resolution of the most blocking candidate scheduled once
// every ~ratio sorted rounds, so the extra cR spend stays proportional to the
// cS spend it replaces. ratio 0 is the NRA regime (random access unavailable;
// the run makes none); ratio 1 resolves every round, approaching TA's
// behavior at TA's prices. The winner set equals the exact engines'.
func CA(rankings []*ranking.PartialRanking, k, ratio int) (*Result, error) {
	return CAContext(context.Background(), rankings, k, ratio)
}

// CAContext is CA under a caller context.
func CAContext(ctx context.Context, rankings []*ranking.PartialRanking, k, ratio int) (*Result, error) {
	return caRankings(ctx, rankings, k, ratio)
}

// caRankings adapts in-memory rankings onto the shared fallible driver: the
// infallible engines are the fallible ones over infallible sources, so the
// certified-stop logic has exactly one implementation.
func caRankings(ctx context.Context, rankings []*ranking.PartialRanking, k, ratio int) (*Result, error) {
	if len(rankings) == 0 {
		return nil, fmt.Errorf("topk: no input rankings")
	}
	if err := ranking.CheckSameDomain(rankings...); err != nil {
		return nil, err
	}
	acc := telemetry.NewAccessAccountant(len(rankings))
	sources := make([]faults.Source, len(rankings))
	for i, r := range rankings {
		sources[i] = NewListSource(r, acc, i)
	}
	return caOver(ctx, sources, k, ratio, acc)
}
