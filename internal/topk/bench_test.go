package topk

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

// The instance-optimality story in numbers: probes on correlated inputs
// stay near the certificate bound; uniform inputs force deep reads.
func BenchmarkMedRankPolicies(b *testing.B) {
	for _, theta := range []float64{2.0, 0.0} {
		rng := rand.New(rand.NewSource(9))
		in, _ := randrank.MallowsEnsemble(rng, 5000, 5, theta)
		for _, pol := range []struct {
			name string
			p    Policy
		}{{"merge", GlobalMerge}, {"roundrobin", RoundRobin}} {
			b.Run(fmt.Sprintf("theta=%.0f/%s", theta, pol.name), func(b *testing.B) {
				var total int
				for i := 0; i < b.N; i++ {
					res, err := MedRank(in, 10, pol.p)
					if err != nil {
						b.Fatal(err)
					}
					total = res.Stats.Total
				}
				b.ReportMetric(float64(total), "probes")
			})
		}
	}
}

func BenchmarkCursorScan(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pr := randrank.Partial(rng, 100000, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCursor(pr)
		for {
			if _, ok := c.Next(); !ok {
				break
			}
		}
	}
}

func BenchmarkMedRankFewValuedCatalog(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	ens := randrank.CatalogEnsemble(rng, 10000, 5, 5, 1.0, 1.5)
	var in []*ranking.PartialRanking = ens.Rankings
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MedRank(in, 10, RoundRobin); err != nil {
			b.Fatal(err)
		}
	}
}
