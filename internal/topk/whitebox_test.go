package topk

import (
	"context"
	"math"
	"testing"

	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// newExhaustedRun builds a medrankRun whose cursors have been fully
// consumed without any certification bookkeeping, to exercise the
// finalizeExhausted defensive path directly (the drive loop promotes
// everything at probe time, so the path is unreachable through the public
// API).
func newExhaustedRun(t *testing.T, rankings []*ranking.PartialRanking, k int) *medrankRun {
	t.Helper()
	n := rankings[0].N()
	m := len(rankings)
	run := &medrankRun{
		n: n, m: m, k: k,
		needed:   (m + 1) / 2,
		cursors:  make([]*Cursor, m),
		frontier: make([]int64, m),
		seen:     make([][]int64, n),
		exactMed: make([]int64, n),
		inPend:   make([]bool, n),
		cleared:  make([]bool, n),
		kSmall:   &int64MaxHeap{},
		acc:      telemetry.NewAccessAccountant(m),
	}
	for e := 0; e < n; e++ {
		run.exactMed[e] = math.MaxInt64
	}
	for i, r := range rankings {
		run.cursors[i] = newCursorAt(r, run.acc, i)
		for {
			e, ok := run.cursors[i].Next()
			if !ok {
				break
			}
			run.seen[e.Elem] = append(run.seen[e.Elem], e.Pos2)
		}
		run.frontier[i] = math.MaxInt64
	}
	run.probedDistinct = n
	run.seenIn = func(list, e int) bool { return run.cursors[list].seenIn(e) }
	return run
}

func TestFinalizeExhaustedPromotesEverything(t *testing.T) {
	a := ranking.MustFromBuckets(4, [][]int{{0, 1, 2, 3}})
	b := ranking.MustFromOrder([]int{3, 2, 1, 0})
	run := newExhaustedRun(t, []*ranking.PartialRanking{a, b}, 2)
	run.finalizeExhausted()
	if run.exactCount != 4 {
		t.Fatalf("exactCount = %d, want 4", run.exactCount)
	}
	winners, medians := run.finalTopK()
	if len(winners) != 2 || len(medians) != 2 {
		t.Fatalf("finalTopK = %v %v", winners, medians)
	}
	// Lower median (m=2) is the min of the two positions: element 3 has
	// positions {2.5, 1} -> min doubled = 2.
	if winners[0] != 3 || medians[0] != 2 {
		t.Errorf("winner = %d med2 = %d, want 3 and 2", winners[0], medians[0])
	}
	if !run.certified() {
		t.Error("fully promoted run not certified")
	}
}

func TestFinalizeExhaustedPanicsOnMissingPositions(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1})
	run := newExhaustedRun(t, []*ranking.PartialRanking{a, a}, 1)
	run.seen[0] = run.seen[0][:1] // corrupt: one position missing
	defer func() {
		if recover() == nil {
			t.Error("finalizeExhausted with missing positions did not panic")
		}
	}()
	run.finalizeExhausted()
}

func TestDriveExitsViaFinalize(t *testing.T) {
	// A pick function that immediately reports exhaustion forces drive
	// through the finalize path.
	a := ranking.MustFromOrder([]int{1, 0})
	run := newExhaustedRun(t, []*ranking.PartialRanking{a}, 1)
	if err := run.drive(context.Background(), func() int { return -1 }); err != nil {
		t.Fatalf("drive: %v", err)
	}
	if run.exactCount != 2 {
		t.Fatalf("drive+finalize promoted %d, want 2", run.exactCount)
	}
	winners, _ := run.finalTopK()
	if len(winners) != 1 || winners[0] != 1 {
		t.Errorf("winners = %v, want [1]", winners)
	}
}

func TestProbeOnExhaustedCursor(t *testing.T) {
	a := ranking.MustFromOrder([]int{0})
	run := newExhaustedRun(t, []*ranking.PartialRanking{a}, 0)
	// Probing an exhausted list must be a safe no-op that pins the frontier.
	run.probe(0)
	if run.frontier[0] != math.MaxInt64 {
		t.Error("frontier not pinned at exhaustion")
	}
}
