package guard

import (
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/telemetry"
)

// tPanics counts every panic the guard layer converted into an error. It is
// recorded unconditionally (ForceInc), not gated on telemetry.Enabled():
// a contained panic is a supervision event operators must be able to count
// after the fact even when tracing was off.
var tPanics = telemetry.GetCounter("guard.panics_recovered")

// PanicError is a panic converted into an error by Recover, Capture, or
// Safe: the recovered value plus the goroutine stack at the panic site.
// Batch engines flow it through their normal error short-circuit paths
// (e.g. metrics.SweepError wraps it), so one panicking callback degrades a
// sweep the same way an error-returning callback does.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the formatted goroutine stack captured at recovery.
	Stack []byte
}

// Error renders the panic value; the stack is available on the field for
// loggers that want it.
func (e *PanicError) Error() string {
	return fmt.Sprintf("guard: recovered panic: %v", e.Value)
}

// newPanicError captures the stack and bumps the supervision counter.
func newPanicError(v any) *PanicError {
	tPanics.ForceInc()
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Capture converts an in-flight panic into a *PanicError written to *errp.
// Use it as a deferred call with a named return value:
//
//	func work() (err error) {
//		defer guard.Capture(&err)
//		return riskyCallback()
//	}
//
// A panic overwrites whatever error was about to be returned; if no panic is
// in flight, *errp is left untouched. Runtime aborts that recover cannot
// intercept (deadlock, out of memory, explicit runtime.Goexit) are out of
// scope.
func Capture(errp *error) {
	if r := recover(); r != nil {
		*errp = newPanicError(r)
	}
}

// Safe runs fn, converting a panic into a *PanicError. It is Capture for
// call sites without a named return.
func Safe(fn func() error) (err error) {
	defer Capture(&err)
	return fn()
}

// Recovered reports whether err is (or wraps) a contained panic.
func Recovered(err error) (*PanicError, bool) {
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}

// PanicsRecovered returns the process-wide count of contained panics.
func PanicsRecovered() int64 { return tPanics.Value() }
