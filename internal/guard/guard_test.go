package guard

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestLimitsZeroValueIsUnlimited(t *testing.T) {
	var l Limits
	if !l.LineOK(1<<30) || !l.ElementsOK(1<<30) || !l.RankingsOK(1<<30) || !l.BucketsOK(1<<30) {
		t.Error("zero-value Limits rejected input")
	}
	if l.DefectCap() != DefaultMaxDefects {
		t.Errorf("zero-value DefectCap = %d, want %d", l.DefectCap(), DefaultMaxDefects)
	}
}

func TestDefaultLimitsBound(t *testing.T) {
	l := DefaultLimits()
	if l.LineOK(l.MaxLineBytes + 1) {
		t.Error("LineOK above cap")
	}
	if !l.LineOK(l.MaxLineBytes) {
		t.Error("LineOK at cap")
	}
	if l.ElementsOK(l.MaxElements+1) || l.RankingsOK(l.MaxRankings+1) || l.BucketsOK(l.MaxBuckets+1) {
		t.Error("caps not enforced")
	}
}

func TestRepairPolicyRoundTrip(t *testing.T) {
	for _, p := range []RepairPolicy{DropLine, CompleteBottom} {
		got, err := ParseRepairPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseRepairPolicy("nonsense"); err == nil {
		t.Error("bad policy name accepted")
	}
}

func TestErrorListCapAndDropped(t *testing.T) {
	el := NewErrorList(3)
	for i := 1; i <= 10; i++ {
		el.Addf(i, 0, "defect %d", i)
	}
	if len(el.Defects) != 3 {
		t.Fatalf("retained %d defects, want 3", len(el.Defects))
	}
	if el.Dropped != 7 || el.Len() != 10 {
		t.Errorf("Dropped = %d, Len = %d; want 7, 10", el.Dropped, el.Len())
	}
	msg := el.Error()
	if !strings.Contains(msg, "10 defects") || !strings.Contains(msg, "line 1") {
		t.Errorf("Error() = %q", msg)
	}
	if !strings.Contains(msg, "and 7 more") {
		t.Errorf("Error() does not count the dropped tail: %q", msg)
	}
}

func TestErrorListErrNilWhenEmpty(t *testing.T) {
	var nilList *ErrorList
	if nilList.Err() != nil || nilList.Len() != 0 {
		t.Error("nil list should read as no defects")
	}
	el := NewErrorList(0)
	if el.Err() != nil {
		t.Error("empty list Err() != nil")
	}
	el.Addf(1, 2, "bad")
	if el.Err() == nil {
		t.Error("non-empty list Err() == nil")
	}
}

func TestDefectString(t *testing.T) {
	cases := []struct {
		d    Defect
		want string
	}{
		{Defect{Line: 3, Col: 7, Msg: "boom"}, "line 3, col 7: boom"},
		{Defect{Line: 3, Msg: "boom"}, "line 3: boom"},
		{Defect{Msg: "boom"}, "boom"},
	}
	for _, tc := range cases {
		if got := tc.d.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestCaptureConvertsPanic(t *testing.T) {
	before := PanicsRecovered()
	work := func() (err error) {
		defer Capture(&err)
		panic("cell 17 exploded")
	}
	err := work()
	pe, ok := Recovered(err)
	if !ok {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "cell 17 exploded" {
		t.Errorf("Value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "guard") {
		t.Error("stack not captured")
	}
	if PanicsRecovered() != before+1 {
		t.Errorf("panic counter %d, want %d (must count even with telemetry disabled)",
			PanicsRecovered(), before+1)
	}
}

func TestCaptureLeavesErrorsAlone(t *testing.T) {
	boom := errors.New("plain failure")
	work := func() (err error) {
		defer Capture(&err)
		return boom
	}
	if err := work(); !errors.Is(err, boom) {
		t.Errorf("Capture rewrote a non-panic error: %v", err)
	}
	ok := func() (err error) {
		defer Capture(&err)
		return nil
	}
	if err := ok(); err != nil {
		t.Errorf("Capture invented an error: %v", err)
	}
}

func TestSafe(t *testing.T) {
	if err := Safe(func() error { return nil }); err != nil {
		t.Errorf("Safe(ok) = %v", err)
	}
	err := Safe(func() error { panic(fmt.Errorf("wrapped")) })
	if _, ok := Recovered(err); !ok {
		t.Errorf("Safe(panic) = %v", err)
	}
}

// Recovered must see a PanicError through wrapping, the contract the sweep
// engine relies on (SweepError wraps the panic).
func TestRecoveredThroughWrapping(t *testing.T) {
	inner := Safe(func() error { panic(42) })
	wrapped := fmt.Errorf("sweep aborted: %w", inner)
	pe, ok := Recovered(wrapped)
	if !ok || pe.Value != 42 {
		t.Errorf("Recovered(wrapped) = %v, %v", pe, ok)
	}
	if _, ok := Recovered(errors.New("no panic")); ok {
		t.Error("Recovered on a plain error")
	}
	if _, ok := Recovered(nil); ok {
		t.Error("Recovered(nil)")
	}
}

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bitmap: len %d count %d", b.Len(), b.Count())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 129} {
		b.Set(i)
		if !b.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if b.Count() != 6 {
		t.Errorf("Count = %d, want 6", b.Count())
	}
	if b.Get(2) || b.Get(128) {
		t.Error("unset bit reads true")
	}
	// Idempotent set.
	b.Set(64)
	if b.Count() != 6 {
		t.Errorf("re-set changed count to %d", b.Count())
	}
}

func TestBitmapNilAndRangeSemantics(t *testing.T) {
	var nilMap *Bitmap
	if nilMap.Get(0) || nilMap.Count() != 0 || nilMap.Len() != 0 {
		t.Error("nil bitmap should read empty")
	}
	if cl := nilMap.Clone(); cl == nil || cl.Len() != 0 {
		t.Error("nil Clone")
	}
	b := NewBitmap(10)
	if b.Get(-1) || b.Get(10) {
		t.Error("out-of-range Get should be false")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Set did not panic")
		}
	}()
	b.Set(10)
}

func TestBitmapClone(t *testing.T) {
	b := NewBitmap(100)
	b.Set(5)
	b.Set(99)
	cp := b.Clone()
	cp.Set(50)
	if b.Get(50) {
		t.Error("clone aliases original")
	}
	if !cp.Get(5) || !cp.Get(99) {
		t.Error("clone lost bits")
	}
}

// Concurrent setters must never lose a bit (the property the sweep's
// completed-cell accounting depends on under -race).
func TestBitmapConcurrentSet(t *testing.T) {
	const n = 4096
	b := NewBitmap(n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				b.Set(i)
			}
			// Overlapping writer stripes the same words.
			for i := (w + 1) % 8; i < n; i += 8 {
				b.Set(i)
			}
		}(w)
	}
	wg.Wait()
	if got := b.Count(); got != n {
		t.Errorf("lost bits: count %d, want %d", got, n)
	}
}
