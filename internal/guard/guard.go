// Package guard is the supervision-and-admission layer of the system: the
// pieces every trust boundary shares when it stops assuming its inputs are
// well-formed and its callbacks are well-behaved.
//
// Three concerns live here, deliberately together, because they are the same
// concern — graceful degradation — applied to three boundaries:
//
//   - Admission: Limits bounds what the ingestion codecs (ranking.ParseLines,
//     db.LoadCSV) will accept from hostile or corrupted input, and ErrorList
//     is the structured, capped multi-defect report lenient parsing returns
//     alongside whatever it could repair.
//   - Supervision: Recover/Capture/Safe convert panics in user-supplied
//     callbacks (distance functions, experiment bodies) into a typed
//     *PanicError carrying the stack, so a bug in one cell of a batch sweep
//     degrades into an error instead of killing the process or deadlocking a
//     worker pool.
//   - Resumption: Bitmap is the concurrent completed-cell set a batch engine
//     records into, so an interrupted m x m sweep can be finished
//     incrementally instead of restarted.
//
// The package sits below ranking, db, metrics, and aggregate in the layering
// and imports only telemetry.
package guard

import "fmt"

// Limits bounds the resources an ingestion codec will commit to a single
// input before giving up. The zero value means "no limit" for every field;
// use DefaultLimits for the generous-but-bounded defaults the CLI layers use.
type Limits struct {
	// MaxLineBytes caps the byte length of one input line (text codec) or
	// one field (CSV codec). Longer lines are a defect: fatal in strict
	// mode, dropped in lenient mode.
	MaxLineBytes int
	// MaxElements caps the domain size (text codec: distinct element
	// names; CSV codec: columns).
	MaxElements int
	// MaxRankings caps the number of rankings parsed from one input
	// (CSV codec: data rows). Input past the cap is dropped with a defect.
	MaxRankings int
	// MaxBuckets caps the bucket count of a single parsed ranking.
	MaxBuckets int
	// MaxDefects caps the number of defects an ErrorList retains; further
	// defects are counted but not stored. Zero means DefaultMaxDefects.
	MaxDefects int
}

// DefaultMaxDefects is the ErrorList cap used when Limits.MaxDefects is zero.
const DefaultMaxDefects = 100

// DefaultLimits returns the admission limits the command-line tools use:
// large enough for any plausible legitimate corpus, small enough that one
// hostile input cannot exhaust memory.
func DefaultLimits() Limits {
	return Limits{
		MaxLineBytes: 16 << 20, // the text codec's historical scanner cap
		MaxElements:  1 << 20,
		MaxRankings:  1 << 20,
		MaxBuckets:   1 << 20,
		MaxDefects:   DefaultMaxDefects,
	}
}

// LineOK reports whether a line of n bytes passes MaxLineBytes.
func (l Limits) LineOK(n int) bool { return l.MaxLineBytes <= 0 || n <= l.MaxLineBytes }

// ElementsOK reports whether a domain of n elements passes MaxElements.
func (l Limits) ElementsOK(n int) bool { return l.MaxElements <= 0 || n <= l.MaxElements }

// RankingsOK reports whether an ensemble of n rankings (or a table of n rows)
// passes MaxRankings.
func (l Limits) RankingsOK(n int) bool { return l.MaxRankings <= 0 || n <= l.MaxRankings }

// BucketsOK reports whether a ranking of n buckets passes MaxBuckets.
func (l Limits) BucketsOK(n int) bool { return l.MaxBuckets <= 0 || n <= l.MaxBuckets }

// DefectCap returns the ErrorList capacity the limits imply.
func (l Limits) DefectCap() int {
	if l.MaxDefects <= 0 {
		return DefaultMaxDefects
	}
	return l.MaxDefects
}

// RepairPolicy selects how lenient parsing repairs a defective line.
type RepairPolicy int

const (
	// DropLine discards any line that does not parse as a complete ranking
	// over the shared domain. The surviving ensemble is exactly the set of
	// clean lines.
	DropLine RepairPolicy = iota
	// CompleteBottom repairs a line that covers a strict subset of the
	// domain by appending the missing elements as one trailing bottom
	// bucket, the paper's Section 2 convention for top-k lists (the k
	// ranked elements followed by one bucket holding the rest of the
	// domain). Lines that are malformed in any other way (empty buckets,
	// duplicates, names outside the domain) are still dropped.
	CompleteBottom
)

// String returns the policy's flag-friendly name.
func (p RepairPolicy) String() string {
	switch p {
	case DropLine:
		return "drop"
	case CompleteBottom:
		return "complete"
	default:
		return fmt.Sprintf("RepairPolicy(%d)", int(p))
	}
}

// ParseRepairPolicy parses the flag-friendly names of String.
func ParseRepairPolicy(s string) (RepairPolicy, error) {
	switch s {
	case "drop":
		return DropLine, nil
	case "complete":
		return CompleteBottom, nil
	default:
		return 0, fmt.Errorf("guard: unknown repair policy %q (want drop or complete)", s)
	}
}
