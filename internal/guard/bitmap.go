package guard

import (
	"math/bits"
	"sync/atomic"
)

// Bitmap is a fixed-size concurrent bitset. Batch engines use one as a
// completed-cell map: every worker sets the bit of a cell it finished, and a
// resume pass skips the set bits. Set and Get are lock-free and safe for
// concurrent use; sizing and snapshot methods (Clone, Count) assume the
// writers have quiesced, which is the state a returned SweepError is in.
//
// The zero value is an empty bitmap of size 0; use NewBitmap.
type Bitmap struct {
	n     int
	words []atomic.Uint64
}

// NewBitmap returns an all-zero bitmap over n bits.
func NewBitmap(n int) *Bitmap {
	if n < 0 {
		n = 0
	}
	return &Bitmap{n: n, words: make([]atomic.Uint64, (n+63)/64)}
}

// Len returns the number of bits.
func (b *Bitmap) Len() int {
	if b == nil {
		return 0
	}
	return b.n
}

// Set sets bit i. It panics if i is out of range.
func (b *Bitmap) Set(i int) {
	if i < 0 || i >= b.n {
		panic("guard: Bitmap.Set out of range")
	}
	w := &b.words[i>>6]
	mask := uint64(1) << (uint(i) & 63)
	for {
		old := w.Load()
		if old&mask != 0 || w.CompareAndSwap(old, old|mask) {
			return
		}
	}
}

// Get reports bit i. A nil bitmap or out-of-range index reads as false, so
// engines can treat "no bitmap" as "nothing completed".
func (b *Bitmap) Get(i int) bool {
	if b == nil || i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6].Load()&(uint64(1)<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	if b == nil {
		return 0
	}
	total := 0
	for i := range b.words {
		total += bits.OnesCount64(b.words[i].Load())
	}
	return total
}

// Clone returns an independent copy. A nil receiver clones to an empty
// bitmap of size 0.
func (b *Bitmap) Clone() *Bitmap {
	if b == nil {
		return NewBitmap(0)
	}
	cp := NewBitmap(b.n)
	for i := range b.words {
		cp.words[i].Store(b.words[i].Load())
	}
	return cp
}
