package guard

import (
	"fmt"
	"strings"
)

// Defect is one localized problem in an input: where it was found and what
// was wrong. Line and Col are 1-based; zero means "not applicable" (a
// whole-input defect has no line, a whole-line defect has no column).
type Defect struct {
	// Line is the 1-based physical line (text codec) or record line (CSV)
	// of the defect.
	Line int `json:"line,omitempty"`
	// Col is the 1-based byte column at which the defect starts, when the
	// codec can attribute it that precisely.
	Col int `json:"col,omitempty"`
	// Msg describes the defect and, for repaired lines, the repair applied.
	Msg string `json:"msg"`
	// Repaired reports whether lenient parsing salvaged the line (true) or
	// dropped it (false).
	Repaired bool `json:"repaired,omitempty"`
}

// String renders the defect as "line L, col C: msg".
func (d Defect) String() string {
	var sb strings.Builder
	if d.Line > 0 {
		fmt.Fprintf(&sb, "line %d", d.Line)
		if d.Col > 0 {
			fmt.Fprintf(&sb, ", col %d", d.Col)
		}
		sb.WriteString(": ")
	}
	sb.WriteString(d.Msg)
	return sb.String()
}

// ErrorList is a capped, ordered collection of input defects. Lenient codecs
// accumulate one Defect per problem and return the list alongside the
// repaired result; strict codecs fail on the first defect instead. The cap
// keeps a pathological input (a million bad lines) from turning the defect
// report itself into a memory bomb: defects past the cap are counted in
// Dropped but not stored.
//
// An ErrorList is an error; a nil or empty list means "no defects" and
// should be surfaced via Err, which maps both to nil.
type ErrorList struct {
	// Defects holds the first DefectCap defects in input order.
	Defects []Defect `json:"defects"`
	// Dropped counts defects beyond the cap that were observed but not
	// retained.
	Dropped int `json:"dropped,omitempty"`

	cap int
}

// NewErrorList returns an empty list retaining at most cap defects
// (DefaultMaxDefects when cap <= 0).
func NewErrorList(cap int) *ErrorList {
	if cap <= 0 {
		cap = DefaultMaxDefects
	}
	return &ErrorList{cap: cap}
}

// Add records a defect, retaining it only while the list is under its cap.
func (el *ErrorList) Add(d Defect) {
	if el.cap <= 0 {
		el.cap = DefaultMaxDefects
	}
	if len(el.Defects) < el.cap {
		el.Defects = append(el.Defects, d)
		return
	}
	el.Dropped++
}

// Addf formats and records an unrepaired defect at the given position.
func (el *ErrorList) Addf(line, col int, format string, args ...any) {
	el.Add(Defect{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)})
}

// Len returns the number of defects observed, including dropped ones.
func (el *ErrorList) Len() int {
	if el == nil {
		return 0
	}
	return len(el.Defects) + el.Dropped
}

// Err returns the list as an error, or nil when no defects were observed.
// Codecs return (*ErrorList, error) pairs; callers that only care about
// pass/fail use Err.
func (el *ErrorList) Err() error {
	if el.Len() == 0 {
		return nil
	}
	return el
}

// Error renders the first few defects plus a count of the rest.
func (el *ErrorList) Error() string {
	const show = 3
	n := el.Len()
	if n == 0 {
		return "guard: no defects"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "guard: %d defect", n)
	if n != 1 {
		sb.WriteByte('s')
	}
	for i, d := range el.Defects {
		if i == show {
			break
		}
		sb.WriteString("; ")
		sb.WriteString(d.String())
	}
	if rest := n - min(show, len(el.Defects)); rest > 0 {
		fmt.Fprintf(&sb, "; and %d more", rest)
	}
	return sb.String()
}
