package robust

import (
	"repro/internal/aggregate"
	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// minMaxMaxPasses bounds the adjacent-swap local search. The lexicographic
// (max, sum) objective strictly decreases on every accepted swap over a
// finite candidate set, so the search terminates on its own; the cap is a
// supervision backstop against a pathological number of passes on large
// domains, mirroring the spirit of the guard layer's admission bounds.
const minMaxMaxPasses = 256

// MinMaxKemenize locally optimizes a full ranking for the MinMax objective
// of Li–Milenkovic: repeatedly swap adjacent elements whenever the swap
// lexicographically reduces (max_i d(candidate, sigma_i),
// sum_i d(candidate, sigma_i)), until no adjacent swap helps. The sum
// tie-break keeps the search from wandering across the typically large
// plateau where the single worst voter pins the max, and makes the result
// deterministic. The candidate's ties, if any, are first refined by element
// ID, exactly like LocalKemenize.
//
// Every swap evaluates the full per-voter distance sweep, so one pass costs
// (n-1) * m distance evaluations; callers aggregating large ensembles should
// pass a cached distance.
func MinMaxKemenize(candidate *ranking.PartialRanking, rankings []*ranking.PartialRanking, d metrics.DistanceWS) (_ *ranking.PartialRanking, err error) {
	defer guard.Capture(&err)
	defer telemetry.StartSpan("robust.minmax").End()
	if len(rankings) == 0 {
		return nil, aggregate.ErrNoInput
	}
	if err := ranking.CheckSameDomain(append([]*ranking.PartialRanking{candidate}, rankings...)...); err != nil {
		return nil, err
	}
	if d == nil {
		d = metrics.KProfWS
	}
	if !candidate.IsFull() {
		order := make([]int, candidate.N())
		for i := range order {
			order[i] = i
		}
		candidate = candidate.RefineBy(ranking.MustFromOrder(order))
	}
	order := append([]int(nil), candidate.Order()...)
	n := len(order)

	ws := metrics.GetWorkspace()
	defer metrics.PutWorkspace(ws)
	eval := func(ord []int) (float64, float64, error) {
		cand, err := ranking.FromOrder(ord)
		if err != nil {
			return 0, 0, err
		}
		return aggregate.MaxDistanceWith(ws, cand, rankings, d)
	}
	bestMax, bestSum, err := eval(order)
	if err != nil {
		return nil, err
	}
	for pass := 0; pass < minMaxMaxPasses; pass++ {
		changed := false
		for i := 0; i+1 < n; i++ {
			order[i], order[i+1] = order[i+1], order[i]
			maxv, sumv, err := eval(order)
			if err != nil {
				return nil, err
			}
			if maxv < bestMax || (maxv == bestMax && sumv < bestSum) {
				bestMax, bestSum = maxv, sumv
				changed = true
				tMinMaxSwaps.Inc()
			} else {
				order[i], order[i+1] = order[i+1], order[i]
			}
		}
		if !changed {
			break
		}
	}
	return ranking.FromOrder(order)
}
