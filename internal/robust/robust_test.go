package robust

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/metrics"
	"repro/internal/randrank"
	"repro/internal/ranking"
)

// TestWeightsUniformOnSymmetricEnsemble: an ensemble of identical voters has
// a perfectly symmetric distance graph, so every voter must get exactly the
// same weight.
func TestWeightsUniformOnSymmetricEnsemble(t *testing.T) {
	r := ranking.MustFromOrder([]int{2, 0, 1, 3})
	ens := []*ranking.PartialRanking{r, r.Clone(), r.Clone(), r.Clone(), r.Clone()}
	w, err := Weights(ens, metrics.KProfWS)
	if err != nil {
		t.Fatal(err)
	}
	for i, wi := range w {
		if math.Abs(wi-1.0/float64(len(ens))) > 1e-12 {
			t.Errorf("weight[%d] = %v, want uniform %v", i, wi, 1.0/float64(len(ens)))
		}
	}
}

// TestWeightsNormalizedAndPositive: weights sum to 1 and are strictly
// positive on arbitrary ensembles.
func TestWeightsNormalizedAndPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		ens := make([]*ranking.PartialRanking, 6)
		for i := range ens {
			ens[i] = randrank.Partial(rng, 12, 3)
		}
		w, err := Weights(ens, metrics.KProfWS)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i, wi := range w {
			if wi <= 0 {
				t.Errorf("trial %d: weight[%d] = %v, want > 0", trial, i, wi)
			}
			sum += wi
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("trial %d: weights sum to %v, want 1", trial, sum)
		}
	}
}

// TestWeightsPermutationEquivariant: permuting the voters permutes the
// weights the same way — reliability depends on the ranking, not the slot.
func TestWeightsPermutationEquivariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ens := make([]*ranking.PartialRanking, 7)
	for i := range ens {
		ens[i] = randrank.Full(rng, 10)
	}
	w, err := Weights(ens, metrics.KProfWS)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(len(ens))
	shuffled := make([]*ranking.PartialRanking, len(ens))
	for i, p := range perm {
		shuffled[i] = ens[p]
	}
	ws, err := Weights(shuffled, metrics.KProfWS)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range perm {
		if math.Abs(ws[i]-w[p]) > 1e-12 {
			t.Errorf("shuffled weight[%d] = %v, want original weight[%d] = %v", i, ws[i], p, w[p])
		}
	}
}

// TestWeightsOutlierGetsLeastWeight: a voter ranking the exact reverse of an
// otherwise agreeing crowd must be the least reliable.
func TestWeightsOutlierGetsLeastWeight(t *testing.T) {
	n := 8
	fwd := make([]int, n)
	for i := range fwd {
		fwd[i] = i
	}
	rev := make([]int, n)
	for i := range rev {
		rev[i] = n - 1 - i
	}
	ens := []*ranking.PartialRanking{
		ranking.MustFromOrder(fwd),
		ranking.MustFromOrder(fwd),
		ranking.MustFromOrder([]int{1, 0, 2, 3, 4, 5, 6, 7}),
		ranking.MustFromOrder(rev), // the outlier
	}
	w, err := Weights(ens, metrics.KProfWS)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if w[3] >= w[i] {
			t.Errorf("outlier weight %v not below voter %d weight %v", w[3], i, w[i])
		}
	}
	trimmed, kept, err := TrimByWeight(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(trimmed) != 1 || trimmed[0] != 3 {
		t.Errorf("trimmed = %v, want [3]", trimmed)
	}
	if len(kept) != 3 {
		t.Errorf("kept = %v, want the three honest voters", kept)
	}
}

// TestTrimZeroEqualsPlainBorda: the trim-k=0 trimmed-Borda aggregate is
// byte-identical to plain Borda — trimming is a strict generalization.
func TestTrimZeroEqualsPlainBorda(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ens := make([]*ranking.PartialRanking, 9)
	for i := range ens {
		ens[i] = randrank.Partial(rng, 15, 4)
	}
	res, err := Aggregate(ens, Options{Mode: ModeTrimmedBorda, Trim: 0})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := aggregate.Borda(ens)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aggregate.Equal(plain) {
		t.Errorf("trim-0 trimmed Borda %v != plain Borda %v", res.Aggregate, plain)
	}
	if len(res.Trimmed) != 0 || len(res.Kept) != len(ens) {
		t.Errorf("trim-0 dropped voters: trimmed=%v kept=%v", res.Trimmed, res.Kept)
	}
}

// TestTrimByWeightValidation: trims that leave no voter are rejected.
func TestTrimByWeightValidation(t *testing.T) {
	w := []float64{0.5, 0.5}
	if _, _, err := TrimByWeight(w, 2); err == nil {
		t.Error("TrimByWeight(2 of 2) should fail")
	}
	if _, _, err := TrimByWeight(w, -1); err == nil {
		t.Error("TrimByWeight(-1) should fail")
	}
}

// TestAggregateDeterministic: the full robust pipeline is a pure function of
// (ensemble, options) for every mode.
func TestAggregateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ens := make([]*ranking.PartialRanking, 8)
	for i := range ens {
		ens[i] = randrank.Full(rng, 10)
	}
	for _, mode := range []Mode{ModeTrimmedBorda, ModeWeightedMedian, ModeMinMax} {
		a, err := Aggregate(ens, Options{Mode: mode, Trim: 2})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		b, err := Aggregate(ens, Options{Mode: mode, Trim: 2})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !a.Aggregate.Equal(b.Aggregate) {
			t.Errorf("%s: two runs disagree: %v vs %v", mode, a.Aggregate, b.Aggregate)
		}
		for i := range a.Weights {
			if a.Weights[i] != b.Weights[i] {
				t.Errorf("%s: weight[%d] differs across runs", mode, i)
			}
		}
	}
}

// TestMinMaxNeverWorseThanStart: the local search only accepts strict
// lexicographic improvements, so the MinMax objective of the result is never
// above the start's.
func TestMinMaxNeverWorseThanStart(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5; trial++ {
		ens := make([]*ranking.PartialRanking, 7)
		for i := range ens {
			ens[i] = randrank.Full(rng, 9)
		}
		start, err := aggregate.Borda(ens)
		if err != nil {
			t.Fatal(err)
		}
		out, err := MinMaxKemenize(start, ens, metrics.KProfWS)
		if err != nil {
			t.Fatal(err)
		}
		ws := metrics.GetWorkspace()
		startMax, startSum, err := aggregate.MaxDistanceWith(ws, start, ens, metrics.KProfWS)
		if err != nil {
			t.Fatal(err)
		}
		outMax, outSum, err := aggregate.MaxDistanceWith(ws, out, ens, metrics.KProfWS)
		metrics.PutWorkspace(ws)
		if err != nil {
			t.Fatal(err)
		}
		if outMax > startMax || (outMax == startMax && outSum > startSum) {
			t.Errorf("trial %d: minmax worsened (max, sum): (%v, %v) -> (%v, %v)",
				trial, startMax, startSum, outMax, outSum)
		}
	}
}

// TestMinMaxReducesWorstVoterDistance: with one voter far from an otherwise
// unanimous crowd, MinMax must land strictly closer to the outlier than the
// crowd's own ranking does — the fairness objective at work.
func TestMinMaxReducesWorstVoterDistance(t *testing.T) {
	n := 7
	fwd := make([]int, n)
	rev := make([]int, n)
	for i := range fwd {
		fwd[i], rev[i] = i, n-1-i
	}
	crowd := ranking.MustFromOrder(fwd)
	outlier := ranking.MustFromOrder(rev)
	ens := []*ranking.PartialRanking{crowd, crowd.Clone(), outlier}
	out, err := MinMaxKemenize(crowd, ens, metrics.KProfWS)
	if err != nil {
		t.Fatal(err)
	}
	ws := metrics.GetWorkspace()
	defer metrics.PutWorkspace(ws)
	crowdMax, _, err := aggregate.MaxDistanceWith(ws, crowd, ens, metrics.KProfWS)
	if err != nil {
		t.Fatal(err)
	}
	outMax, _, err := aggregate.MaxDistanceWith(ws, out, ens, metrics.KProfWS)
	if err != nil {
		t.Fatal(err)
	}
	if outMax >= crowdMax {
		t.Errorf("minmax max distance %v not below crowd ranking's %v", outMax, crowdMax)
	}
}

// TestAggregateAnnotations: Sum/MaxDistance cover exactly the kept voters
// and PerVoter covers everyone, so a trimmed spam voter's huge distance is
// visible without influencing the objective.
func TestAggregateAnnotations(t *testing.T) {
	n := 10
	fwd := make([]int, n)
	rev := make([]int, n)
	for i := range fwd {
		fwd[i], rev[i] = i, n-1-i
	}
	ens := []*ranking.PartialRanking{
		ranking.MustFromOrder(fwd),
		ranking.MustFromOrder(fwd),
		ranking.MustFromOrder(fwd),
		ranking.MustFromOrder(rev),
	}
	res, err := Aggregate(ens, Options{Mode: ModeTrimmedBorda, Trim: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trimmed) != 1 || res.Trimmed[0] != 3 {
		t.Fatalf("trimmed = %v, want the reversal voter [3]", res.Trimmed)
	}
	if len(res.PerVoter) != len(ens) {
		t.Fatalf("PerVoter has %d entries, want %d", len(res.PerVoter), len(ens))
	}
	if res.MaxDistance != 0 || res.SumDistance != 0 {
		t.Errorf("objective over kept voters = (max %v, sum %v), want 0 (aggregate equals the crowd)",
			res.MaxDistance, res.SumDistance)
	}
	if res.PerVoter[3] == 0 {
		t.Error("trimmed voter's PerVoter distance is 0, want the full reversal distance")
	}
}

// TestParseMode rejects unknown modes and accepts the three engines.
func TestParseMode(t *testing.T) {
	for _, s := range []string{"trimmed-borda", "weighted-median", "minmax"} {
		if _, err := ParseMode(s); err != nil {
			t.Errorf("ParseMode(%q): %v", s, err)
		}
	}
	if _, err := ParseMode("kemeny"); err == nil {
		t.Error("ParseMode(kemeny) should fail")
	}
	if _, err := Aggregate([]*ranking.PartialRanking{ranking.MustFromOrder([]int{0, 1})}, Options{Mode: "nope"}); err == nil {
		t.Error("Aggregate with unknown mode should fail")
	}
}
