// Package robust implements hostile-voter-robust rank aggregation: the
// engines that keep a consensus meaningful when some input rankings are spam
// or colluding rather than noisy-but-honest.
//
// The pipeline has three independently useful stages:
//
//  1. Reliability weights (Weights): each voter is scored by its closeness
//     centrality in the pairwise-distance graph of the ensemble — voters
//     whose rankings sit near the crowd get high weight, outliers get low
//     weight. This is the proximity-based reliability of trimmed partial
//     Borda (Amazon's ums-tsad rank_aggregation exemplar), computed exactly
//     on the distance matrix the sharded cache makes cheap.
//  2. Trimming (TrimByWeight): drop the k least-reliable voters outright, or
//     keep everyone and let the weights down-weight continuously.
//  3. A robust objective: trimmed Borda and weighted median reuse the
//     paper's sum-minimizing machinery over the surviving/reweighted voters;
//     MinMax (Li–Milenkovic, "Multiclass MinMax Rank Aggregation") instead
//     minimizes the *worst* surviving voter's distance by lexicographic
//     (max, sum) adjacent-swap local search.
//
// MinMax is a fairness objective, not an outlier filter: run un-trimmed over
// an ensemble containing adversaries it caters to them (the adversary IS the
// worst-off voter). The robust composition is therefore trim-then-MinMax,
// which Aggregate wires together; experiment E16 measures all three variants
// against plain Borda under injected reversal spam and colluding cliques.
//
// The package sits above aggregate/metrics/ranking and below the service
// layer and the CLIs; callers inject the distance (typically a cached one)
// so reliability sweeps share the process-wide distance cache.
package robust

import (
	"fmt"
	"sort"

	"repro/internal/aggregate"
	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// Gated telemetry instruments of the robust layer.
var (
	tWeightSweeps  = telemetry.GetCounter("robust.weight.sweeps")
	tTrimmedVoters = telemetry.GetCounter("robust.trim.dropped")
	tMinMaxSwaps   = telemetry.GetCounter("robust.minmax.swaps")
)

// Mode selects a robust aggregation engine.
type Mode string

const (
	// ModeTrimmedBorda drops the Trim least-reliable voters and runs plain
	// Borda over the survivors (with Trim = 0 it IS plain Borda).
	ModeTrimmedBorda Mode = "trimmed-borda"
	// ModeWeightedMedian aggregates by the coordinate-wise weighted median,
	// down-weighting unreliable voters continuously (after any trim).
	ModeWeightedMedian Mode = "weighted-median"
	// ModeMinMax minimizes the maximum per-voter distance over the post-trim
	// voter set by adjacent-swap local search from the trimmed Borda ranking.
	ModeMinMax Mode = "minmax"
)

// ParseMode resolves the wire/CLI name of a robust mode.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeTrimmedBorda, ModeWeightedMedian, ModeMinMax:
		return Mode(s), nil
	default:
		return "", fmt.Errorf("robust: unknown mode %q (want %s, %s, or %s)",
			s, ModeTrimmedBorda, ModeWeightedMedian, ModeMinMax)
	}
}

// Options configures one robust aggregation.
type Options struct {
	// Mode selects the engine; required.
	Mode Mode
	// Trim drops this many least-reliable voters before aggregating. Must
	// leave at least one voter. 0 keeps everyone.
	Trim int
	// Distance scores voter proximity for the reliability weights and
	// evaluates the objective annotations; nil means metrics.KProfWS. Inject
	// a cached distance (metrics.Cached or the service's tenant-attributed
	// wrapper) to share the process-wide distance cache.
	Distance metrics.DistanceWS
}

// Result is one robust aggregation with its reliability annotations.
type Result struct {
	// Aggregate is the robust consensus ranking.
	Aggregate *ranking.PartialRanking
	// Weights holds every original voter's reliability weight (normalized to
	// sum to 1), trimmed voters included.
	Weights []float64
	// Trimmed holds the original indices of dropped voters, ascending.
	Trimmed []int
	// Kept holds the original indices of surviving voters, ascending.
	Kept []int
	// SumDistance and MaxDistance are the aggregate's summed and worst
	// per-voter distance over the KEPT voters — the two objectives the
	// engines trade off.
	SumDistance float64
	MaxDistance float64
	// PerVoter is the aggregate's distance to every ORIGINAL voter (trimmed
	// included), for spam forensics: a trimmed voter with a huge distance is
	// the annotation that justifies the trim.
	PerVoter []float64
}

// Weights returns the reliability weight of every voter: with
// mu_i = mean_{j != i} d(sigma_i, sigma_j) and mubar the mean of the mu_i,
// voter i's raw reliability is 1/(mu_i + mubar) — closeness centrality in
// the pairwise-distance graph, damped by the ensemble scale so the weights
// are invariant under rescaling the metric — normalized to sum to 1. A
// perfectly symmetric ensemble (all mu_i equal, in particular m == 1 or all
// voters identical) yields uniform weights.
func Weights(rankings []*ranking.PartialRanking, d metrics.DistanceWS) (_ []float64, err error) {
	defer guard.Capture(&err)
	defer telemetry.StartSpan("robust.weights").End()
	if len(rankings) == 0 {
		return nil, aggregate.ErrNoInput
	}
	if err := ranking.CheckSameDomain(rankings...); err != nil {
		return nil, err
	}
	if d == nil {
		d = metrics.KProfWS
	}
	M, err := metrics.DistanceMatrixWith(rankings, d)
	if err != nil {
		return nil, err
	}
	tWeightSweeps.Inc()
	return WeightsFromMatrix(M), nil
}

// WeightsFromMatrix computes the reliability weights from a precomputed
// symmetric pairwise-distance matrix (see Weights for the formula). Callers
// that already hold a matrix (experiments, resumable sweeps) skip the
// distance pass entirely.
func WeightsFromMatrix(M [][]float64) []float64 {
	m := len(M)
	w := make([]float64, m)
	if m == 0 {
		return w
	}
	mu := make([]float64, m)
	var mubar float64
	for i := range M {
		var sum float64
		for j, v := range M[i] {
			if j != i {
				sum += v
			}
		}
		if m > 1 {
			mu[i] = sum / float64(m-1)
		}
		mubar += mu[i]
	}
	mubar /= float64(m)
	if mubar == 0 {
		// Degenerate ensemble (single voter, or all voters identical): every
		// voter is equally central.
		for i := range w {
			w[i] = 1 / float64(m)
		}
		return w
	}
	var total float64
	for i := range w {
		w[i] = 1 / (mu[i] + mubar)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// TrimByWeight returns the original indices of the k least-reliable voters
// (trimmed, ascending) and of the survivors (kept, ascending). Ties on
// weight are broken by voter index, lower index trimmed first, so the trim
// is deterministic. k must satisfy 0 <= k < len(weights).
func TrimByWeight(weights []float64, k int) (trimmed, kept []int, err error) {
	m := len(weights)
	if k < 0 || k >= m {
		return nil, nil, fmt.Errorf("robust: trim %d out of range [0,%d] for %d voters", k, m-1, m)
	}
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return weights[idx[a]] < weights[idx[b]] })
	trimmed = append([]int(nil), idx[:k]...)
	sort.Ints(trimmed)
	dropped := make([]bool, m)
	for _, i := range trimmed {
		dropped[i] = true
	}
	kept = make([]int, 0, m-k)
	for i := 0; i < m; i++ {
		if !dropped[i] {
			kept = append(kept, i)
		}
	}
	tTrimmedVoters.Add(int64(k))
	return trimmed, kept, nil
}

// Aggregate runs one robust aggregation: score every voter's reliability,
// trim, aggregate the survivors under the selected objective, and annotate
// the result with the weights and per-voter distances. Deterministic: same
// ensemble, same options, same result.
func Aggregate(rankings []*ranking.PartialRanking, opts Options) (_ *Result, err error) {
	defer guard.Capture(&err)
	defer telemetry.StartSpan("robust.aggregate").End()
	if _, err := ParseMode(string(opts.Mode)); err != nil {
		return nil, err
	}
	d := opts.Distance
	if d == nil {
		d = metrics.KProfWS
	}
	weights, err := Weights(rankings, d)
	if err != nil {
		return nil, err
	}
	trimmed, keptIdx, err := TrimByWeight(weights, opts.Trim)
	if err != nil {
		return nil, err
	}
	kept := make([]*ranking.PartialRanking, len(keptIdx))
	for i, orig := range keptIdx {
		kept[i] = rankings[orig]
	}

	var agg *ranking.PartialRanking
	switch opts.Mode {
	case ModeTrimmedBorda:
		agg, err = aggregate.Borda(kept)
	case ModeWeightedMedian:
		keptWeights := make([]float64, len(keptIdx))
		for i, orig := range keptIdx {
			keptWeights[i] = weights[orig]
		}
		agg, err = aggregate.WeightedMedianFull(kept, keptWeights)
	case ModeMinMax:
		var start *ranking.PartialRanking
		start, err = aggregate.Borda(kept)
		if err == nil {
			agg, err = MinMaxKemenize(start, kept, d)
		}
	}
	if err != nil {
		return nil, err
	}

	res := &Result{
		Aggregate: agg,
		Weights:   weights,
		Trimmed:   trimmed,
		Kept:      keptIdx,
		PerVoter:  make([]float64, len(rankings)),
	}
	ws := metrics.GetWorkspace()
	defer metrics.PutWorkspace(ws)
	keptSet := make([]bool, len(rankings))
	for _, i := range keptIdx {
		keptSet[i] = true
	}
	for i, r := range rankings {
		v, err := d(ws, agg, r)
		if err != nil {
			return nil, err
		}
		res.PerVoter[i] = v
		if keptSet[i] {
			res.SumDistance += v
			if v > res.MaxDistance {
				res.MaxDistance = v
			}
		}
	}
	return res, nil
}
