package permutation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPermutationAndValidate(t *testing.T) {
	good := [][]int{{}, {0}, {1, 0}, {2, 0, 1}}
	bad := [][]int{{1}, {0, 0}, {0, 2}, {-1, 0}}
	for _, p := range good {
		if !IsPermutation(p) {
			t.Errorf("IsPermutation(%v) = false", p)
		}
		if err := Validate(p); err != nil {
			t.Errorf("Validate(%v) = %v", p, err)
		}
	}
	for _, p := range bad {
		if IsPermutation(p) {
			t.Errorf("IsPermutation(%v) = true", p)
		}
		if err := Validate(p); err == nil {
			t.Errorf("Validate(%v) accepted", p)
		}
	}
}

func TestInverseCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(20)
		p := rng.Perm(n)
		inv := Inverse(p)
		if got := Compose(p, inv); !equalInts(got, Identity(n)) {
			t.Fatalf("p∘p⁻¹ = %v, want identity", got)
		}
		if got := Compose(inv, p); !equalInts(got, Identity(n)) {
			t.Fatalf("p⁻¹∘p = %v, want identity", got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Inverse of non-permutation did not panic")
		}
	}()
	Inverse([]int{0, 0})
}

func TestComposeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Compose length mismatch did not panic")
		}
	}()
	Compose([]int{0}, []int{0, 1})
}

func TestForEachCountsFactorial(t *testing.T) {
	for n := 0; n <= 6; n++ {
		want, _ := Factorial(n)
		seen := map[string]bool{}
		count := int64(0)
		ForEach(n, func(p []int) bool {
			count++
			key := ""
			for _, v := range p {
				key += string(rune('a' + v))
			}
			seen[key] = true
			if !IsPermutation(p) {
				t.Fatalf("enumerated non-permutation %v", p)
			}
			return true
		})
		if count != want || int64(len(seen)) != want {
			t.Errorf("n=%d: enumerated %d (%d distinct), want %d", n, count, len(seen), want)
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	count := 0
	ForEach(5, func([]int) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Errorf("early stop visited %d, want 7", count)
	}
}

func TestFactorialOverflow(t *testing.T) {
	if f, ok := Factorial(20); !ok || f != 2432902008176640000 {
		t.Errorf("Factorial(20) = (%d,%v)", f, ok)
	}
	if _, ok := Factorial(21); ok {
		t.Error("Factorial(21) should overflow int64")
	}
}

func TestCountInversionsAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(10) // many ties
		}
		want := CountInversionsNaive(xs)
		if got := CountInversions(xs); got != want {
			t.Fatalf("Fenwick count = %d, want %d for %v", got, want, xs)
		}
		if got := CountInversionsMerge(xs); got != want {
			t.Fatalf("merge count = %d, want %d for %v", got, want, xs)
		}
	}
}

func TestCountInversionsQuick(t *testing.T) {
	f := func(xs []int16) bool {
		ys := make([]int, len(xs))
		for i, v := range xs {
			ys[i] = int(v)
		}
		want := CountInversionsNaive(ys)
		return CountInversions(ys) == want && CountInversionsMerge(ys) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCountInversionsKnown(t *testing.T) {
	cases := []struct {
		xs   []int
		want int64
	}{
		{nil, 0},
		{[]int{1}, 0},
		{[]int{1, 2, 3}, 0},
		{[]int{3, 2, 1}, 3},
		{[]int{2, 2, 2}, 0}, // ties are not inversions
		{[]int{2, 1, 2, 1}, 3},
	}
	for _, tc := range cases {
		if got := CountInversions(tc.xs); got != tc.want {
			t.Errorf("CountInversions(%v) = %d, want %d", tc.xs, got, tc.want)
		}
	}
}

func TestCountInversionsMergeDoesNotMutate(t *testing.T) {
	xs := []int{3, 1, 2}
	CountInversionsMerge(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestFenwick(t *testing.T) {
	f := NewFenwick(10)
	f.Add(3, 5)
	f.Add(7, 2)
	f.Add(3, 1)
	if got := f.PrefixSum(2); got != 0 {
		t.Errorf("PrefixSum(2) = %d, want 0", got)
	}
	if got := f.PrefixSum(3); got != 6 {
		t.Errorf("PrefixSum(3) = %d, want 6", got)
	}
	if got := f.PrefixSum(9); got != 8 {
		t.Errorf("PrefixSum(9) = %d, want 8", got)
	}
	if got := f.RangeSum(4, 9); got != 2 {
		t.Errorf("RangeSum(4,9) = %d, want 2", got)
	}
	if got := f.RangeSum(5, 4); got != 0 {
		t.Errorf("RangeSum(5,4) = %d, want 0", got)
	}
}

func TestFenwickAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 50
	naive := make([]int64, n)
	f := NewFenwick(n)
	for step := 0; step < 500; step++ {
		i := rng.Intn(n)
		d := int64(rng.Intn(11) - 5)
		naive[i] += d
		f.Add(i, d)
		lo, hi := rng.Intn(n), rng.Intn(n)
		if lo > hi {
			lo, hi = hi, lo
		}
		var want int64
		for j := lo; j <= hi; j++ {
			want += naive[j]
		}
		if got := f.RangeSum(lo, hi); got != want {
			t.Fatalf("step %d: RangeSum(%d,%d) = %d, want %d", step, lo, hi, got, want)
		}
	}
}

func TestMallowsValidAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 30
	avgInv := func(theta float64) float64 {
		const trials = 200
		var sum int64
		for i := 0; i < trials; i++ {
			p := Mallows(rng, n, theta)
			if !IsPermutation(p) {
				t.Fatalf("Mallows produced non-permutation %v", p)
			}
			// Inversions of the inverse ranks measure distance to identity.
			sum += CountInversions(Inverse(p))
		}
		return float64(sum) / trials
	}
	loose := avgInv(0)
	mid := avgInv(0.5)
	tight := avgInv(3)
	if !(loose > mid && mid > tight) {
		t.Errorf("Mallows dispersion not monotone: theta 0 -> %.1f, 0.5 -> %.1f, 3 -> %.1f", loose, mid, tight)
	}
	// Uniform case should be near n(n-1)/4 = 217.5 expected inversions.
	if loose < 170 || loose > 270 {
		t.Errorf("Mallows(theta=0) mean inversions %.1f far from uniform expectation 217.5", loose)
	}
	// Strongly concentrated case should be near identity.
	if tight > 40 {
		t.Errorf("Mallows(theta=3) mean inversions %.1f too dispersed", tight)
	}
}

func TestMallowsPanicsOnNegativeTheta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative theta did not panic")
		}
	}()
	Mallows(rand.New(rand.NewSource(1)), 5, -1)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
